//! Integration soak of the device-resident build-side cache: skewed
//! serving traffic against the multi-tenant join service with the cache
//! on. Covers the acceptance properties end to end — every result
//! oracle-correct, hits with strictly fewer transfers than the uncached
//! baseline of the *same* stream, a hand-computed eviction trace, version
//! bumps invalidating stale tables, reservations never exceeding
//! capacity, and byte-identical summaries across `--jobs` and under an
//! armed-but-zeroed fault layer.

use hashjoin_gpu::prelude::*;

/// The serve-binary regime: the paper's GTX 1080 scaled to 512 KB so a
/// handful of requests contend, buckets tuned for the largest build side.
fn soak_service(cache: bool) -> JoinService {
    let device = DeviceSpec::gtx1080().scaled_capacity(1 << 14);
    let engine = HcjEngine::new(
        GpuJoinConfig::paper_default(device).with_radix_bits(8).with_tuned_buckets(4_000),
    );
    let cache_config = cache.then(BuildCacheConfig::default);
    JoinService::new(engine, ServiceConfig::default().with_cache(cache_config))
}

/// The skewed-popularity stream the cache exists for: 8 clients x 25
/// requests over a 12-relation catalog, Zipf 1.0, a content update every
/// 40 draws (`serve --quick --cache --popularity-skew 1.0`).
fn skewed() -> Vec<ClientSpec> {
    skewed_workload(8, 25, 1_000, 12, 1.0, 40, 7)
}

#[test]
fn skewed_soak_hits_evicts_and_stays_correct() {
    let workload = skewed();
    let total: usize = workload.iter().map(|c| c.requests.len()).sum();
    let report = soak_service(true).run(&workload);
    let summary = report.summary();
    assert_eq!(report.completed(), total, "every request completes:\n{summary}");
    assert_eq!(report.checks_passed(), total, "every oracle check passes:\n{summary}");
    let cache = report.cache.expect("cache was enabled");
    assert!(cache.counters.hits > 0, "skew must produce reuse:\n{summary}");
    assert!(cache.counters.misses > 0);
    assert!(
        cache.counters.evictions + cache.counters.reclaims > 0,
        "a 512 KB device must pressure the cache:\n{summary}"
    );
    assert!(cache.counters.invalidations > 0, "version bumps must invalidate:\n{summary}");
    assert!(cache.peak_bytes > 0);
    // Admission control covers cached bytes: reservations (tenants plus
    // resident cache entries) never exceed capacity, and nothing leaks.
    assert!(report.device_peak <= report.device_capacity, "{summary}");
    assert_eq!(report.device_used_at_end, 0, "cache must release its reservations:\n{summary}");
    assert!(report.invariant_violations.is_empty(), "{:?}", report.invariant_violations);
    // Hit accounting is coherent between the per-request rollups and the
    // service-level cache counters.
    let rollup_hits: u64 = report.requests.iter().map(|m| m.counters.cache.hits).sum();
    assert_eq!(rollup_hits, cache.counters.hits, "{summary}");
    let hit_requests =
        report.requests.iter().filter(|m| m.cache_role == CacheRole::Hit).count() as u64;
    assert_eq!(hit_requests, cache.counters.hits);
}

#[test]
fn cache_strictly_reduces_transfers_on_the_same_stream() {
    let workload = skewed();
    let uncached = soak_service(false).run(&workload);
    let cached = soak_service(true).run(&workload);
    let (u, c) = (uncached.counters_total(), cached.counters_total());
    let hits = cached.cache.expect("cache on").counters.hits;
    assert!(hits > 0, "no reuse, nothing to compare");
    assert!(uncached.cache.is_none(), "cache off reports no cache");
    // Every request stages its inputs from the host; a hit skips the
    // build side entirely, so the cached run moves strictly fewer bytes
    // over PCIe and issues strictly less device-memory traffic.
    assert!(c.h2d_bytes < u.h2d_bytes, "h2d: {} !< {}", c.h2d_bytes, u.h2d_bytes);
    assert!(c.transfers < u.transfers, "transfers: {} !< {}", c.transfers, u.transfers);
    assert!(c.device_bytes < u.device_bytes, "device: {} !< {}", c.device_bytes, u.device_bytes);
    assert!(c.kernel_launches < u.kernel_launches, "hits skip the build/partition kernels");
    // Both runs compute identical joins.
    assert_eq!(uncached.checks_passed(), cached.checks_passed());
}

/// One client, equal-size relations A, B, C and a budget of exactly two
/// tables: the closed-loop sequence A B A C B A A' must produce the
/// hand-computed GreedyDual/LRU trace (equal costs degrade GDS to LRU):
///
/// | # | req | result            | cache after |
/// |---|-----|-------------------|-------------|
/// | 1 | A   | miss, install     | A           |
/// | 2 | B   | miss, install     | A B         |
/// | 3 | A   | hit (A touched)   | A B         |
/// | 4 | C   | miss, evict B     | A C         |
/// | 5 | B   | miss, evict A     | C B         |
/// | 6 | A   | miss, evict C     | B A         |
/// | 7 | A'  | stale: invalidate A, install A' | B A' |
#[test]
fn eviction_sequence_matches_hand_computed_trace() {
    let a = CatalogRelation { id: 0, version: 0, base_tuples: 2_000, payload_width: 4, seed: 101 };
    let b = CatalogRelation { id: 1, version: 0, base_tuples: 2_000, payload_width: 4, seed: 202 };
    let c = CatalogRelation { id: 2, version: 0, base_tuples: 2_000, payload_width: 4, seed: 303 };
    let a2 = CatalogRelation { version: 1, ..a }; // content update of A
    let request = |rel: &CatalogRelation, probe_seed: u64| RequestSpec {
        r: rel.spec(),
        s: RelationSpec {
            tuples: rel.tuples() * 2,
            distribution: KeyDistribution::UniformFk { distinct: rel.tuples() as u64 },
            payload_width: 4,
            seed: probe_seed,
        },
        build: Some(rel.build_ref()),
    };

    // A roomy device (128 MB) so admission never pressures the cache;
    // the policy budget alone drives evictions. Size it to two tables by
    // measuring a real build.
    let device = DeviceSpec::gtx1080().scaled_capacity(1 << 6);
    let config = GpuJoinConfig::paper_default(device).with_radix_bits(8).with_tuned_buckets(2_000);
    let (_, measured) = CachedBuildJoin::new(config.clone())
        .execute_cold(&a.spec().generate(), &request(&a, 9).s.generate())
        .expect("fits easily");
    let table_bytes = measured.table_bytes;
    assert!(table_bytes > 0);

    let cache_config =
        BuildCacheConfig { max_bytes: Some(table_bytes * 5 / 2), ..BuildCacheConfig::default() };
    let service = JoinService::new(
        HcjEngine::new(config),
        ServiceConfig::default().with_cache(Some(cache_config)),
    );
    let workload = vec![ClientSpec {
        requests: vec![
            request(&a, 11).into(),
            request(&b, 12).into(),
            request(&a, 13).into(),
            request(&c, 14).into(),
            request(&b, 15).into(),
            request(&a, 16).into(),
            request(&a2, 17).into(),
        ],
    }];
    let report = service.run(&workload);
    let summary = report.summary();
    assert_eq!(report.completed(), 7, "{summary}");
    assert_eq!(report.checks_passed(), 7, "stale reuse would fail the oracle:\n{summary}");
    let roles: Vec<CacheRole> = report.requests.iter().map(|m| m.cache_role).collect();
    assert_eq!(
        roles,
        vec![
            CacheRole::Install, // 1: A cold
            CacheRole::Install, // 2: B cold
            CacheRole::Hit,     // 3: A reused
            CacheRole::Install, // 4: C cold (evicts B)
            CacheRole::Install, // 5: B cold (evicts A)
            CacheRole::Install, // 6: A cold (evicts C)
            CacheRole::Install, // 7: A' invalidates stale A, installs
        ],
        "{summary}"
    );
    let cache = report.cache.expect("cache on");
    assert_eq!(cache.counters.hits, 1, "{summary}");
    assert_eq!(cache.counters.misses, 6, "{summary}");
    assert_eq!(cache.counters.evictions, 3, "{summary}");
    assert_eq!(cache.counters.invalidations, 1, "{summary}");
    assert_eq!(cache.counters.reclaims, 0, "no admission pressure on a 128 MB device");
    assert_eq!(cache.entries_at_end, 2, "B and A' resident at the end");
    assert!(report.invariant_violations.is_empty(), "{:?}", report.invariant_violations);
}

#[test]
fn cached_summaries_are_byte_identical_across_jobs() {
    let workload = skewed();
    let mut summaries: Vec<String> = Vec::new();
    for jobs in [1usize, 2, 2, 4] {
        hashjoin_gpu::host::pool::set_jobs(jobs);
        summaries.push(soak_service(true).run(&workload).summary());
    }
    hashjoin_gpu::host::pool::set_jobs(1);
    assert_eq!(summaries[1], summaries[2], "same seed, same jobs: identical");
    assert_eq!(summaries[0], summaries[1], "jobs 1 vs 2: identical");
    assert_eq!(summaries[0], summaries[3], "jobs 1 vs 4: identical");
}

#[test]
fn armed_but_zeroed_fault_layer_changes_nothing_cached() {
    let workload = skewed();
    let base = soak_service(true).run(&workload).summary();
    let device = DeviceSpec::gtx1080().scaled_capacity(1 << 14);
    let engine = HcjEngine::new(
        GpuJoinConfig::paper_default(device)
            .with_radix_bits(8)
            .with_tuned_buckets(4_000)
            .with_faults(FaultConfig::disabled(0)),
    );
    let armed = JoinService::new(
        engine,
        ServiceConfig::default().with_cache(Some(BuildCacheConfig::default())),
    )
    .run(&workload)
    .summary();
    assert_eq!(base, armed, "chaos seed 0 must be a no-op with the cache on");
}

#[test]
fn chaos_run_with_cache_stays_accounted_and_leak_free() {
    let workload = skewed();
    let device = DeviceSpec::gtx1080().scaled_capacity(1 << 14);
    let engine = HcjEngine::new(
        GpuJoinConfig::paper_default(device)
            .with_radix_bits(8)
            .with_tuned_buckets(4_000)
            .with_faults(FaultConfig::chaos(23)),
    );
    let report = JoinService::new(
        engine,
        ServiceConfig::default().with_cache(Some(BuildCacheConfig::default())),
    )
    .run(&workload);
    let total: usize = workload.iter().map(|c| c.requests.len()).sum();
    let summary = report.summary();
    // Under chaos (including co-tenant capacity shrinks squeezing the
    // cache) every request still resolves typed, every finished result is
    // oracle-correct, and no reservation — cached or not — leaks.
    let accounted = report.completed() + report.deadline_exceeded() + report.errored();
    assert_eq!(accounted, total, "{summary}");
    assert_eq!(report.checks_passed(), report.completed(), "{summary}");
    assert!(report.device_peak <= report.device_capacity, "{summary}");
    assert_eq!(report.device_used_at_end, 0, "{summary}");
    assert!(report.invariant_violations.is_empty(), "{:?}", report.invariant_violations);
}

#[test]
fn cache_is_inert_for_anonymous_build_sides() {
    // The legacy mixed workload names no build relations: with the cache
    // on it must count nothing and cache nothing — and the summary must
    // differ from the uncached run only by the (all-zero) cache lines.
    let workload = mixed_workload(4, 3, 1_000, 7);
    let cached = soak_service(true).run(&workload);
    let uncached = soak_service(false).run(&workload);
    let cache = cached.cache.expect("cache on");
    assert!(cache.counters.is_empty(), "no named builds, no cache events: {:?}", cache.counters);
    assert_eq!(cache.peak_bytes, 0);
    assert_eq!(cache.entries_at_end, 0);
    let stripped: String = cached
        .summary()
        .lines()
        .filter(|l| !l.starts_with("cache "))
        .map(|l| format!("{l}\n"))
        .collect();
    assert_eq!(stripped, uncached.summary(), "cache off == cache on minus cache lines");
}
