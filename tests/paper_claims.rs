//! Integration: the paper's headline claims hold in the reproduction
//! (shapes, crossovers and orderings — not absolute numbers; those are
//! recorded per-figure in EXPERIMENTS.md).

use hashjoin_gpu::core::nonpart::{NonPartitionedJoin, NonPartitionedKind};
use hashjoin_gpu::prelude::*;

fn gpu_config(bits: u32, tuples: usize) -> GpuJoinConfig {
    GpuJoinConfig::paper_default(DeviceSpec::gtx1080())
        .with_radix_bits(bits)
        .with_tuned_buckets(tuples)
}

fn partitioned_tput(r: &Relation, s: &Relation, bits: u32) -> f64 {
    GpuPartitionedJoin::new(gpu_config(bits, r.len()))
        .execute(r, s)
        .unwrap()
        .throughput_tuples_per_s()
}

fn nonpartitioned_tput(r: &Relation, s: &Relation) -> f64 {
    let out =
        NonPartitionedJoin::new(NonPartitionedKind::Chaining, OutputMode::Aggregate).execute(r, s);
    (r.len() + s.len()) as f64 / out.kernel_seconds(&DeviceSpec::gtx1080())
}

/// Claim (abstract): "our join algorithms can process 4.5 billion
/// tuples/second when data is GPU resident" — we accept the right order
/// of magnitude (± the cost model).
#[test]
fn gpu_resident_throughput_is_billions_of_tuples_per_second() {
    let (r, s) = canonical_pair(1 << 21, 1 << 21, 4001);
    let tput = partitioned_tput(&r, &s, 11);
    assert!(tput > 1.0e9 && tput < 20.0e9, "GPU-resident partitioned join: {tput:.3e} tuples/s");
}

/// Claim (Fig. 8): partitioned overtakes non-partitioned as relations
/// grow; non-partitioned is fine when small.
#[test]
fn partitioned_vs_nonpartitioned_crossover() {
    // Small: 64K tuples/side — non-partitioned competitive or better.
    let (r0, s0) = canonical_pair(1 << 16, 1 << 16, 4002);
    let p_small = partitioned_tput(&r0, &s0, 7);
    let np_small = nonpartitioned_tput(&r0, &s0);
    // Large: 8M tuples/side — partitioned clearly ahead.
    let (r1, s1) = canonical_pair(1 << 23, 1 << 23, 4003);
    let p_large = partitioned_tput(&r1, &s1, 13);
    let np_large = nonpartitioned_tput(&r1, &s1);
    assert!(
        p_large > 1.5 * np_large,
        "at 8M tuples partitioned ({p_large:.3e}) must beat non-partitioned ({np_large:.3e})"
    );
    // The *relative advantage* of partitioning must grow with size.
    assert!(
        p_large / np_large > p_small / np_small,
        "partitioning advantage must grow: small {:.2}x, large {:.2}x",
        p_small / np_small,
        np_large.max(1.0) / np_large * (p_large / np_large)
    );
}

/// Claim (Fig. 8): GPU partitioned beats the best CPU joins on resident
/// data by a large factor (paper: ~4x over PRO).
#[test]
fn gpu_beats_cpu_on_resident_data() {
    let (r, s) = canonical_pair(1 << 21, 1 << 21, 4004);
    let gpu = partitioned_tput(&r, &s, 11);
    let pro = ProJoin::paper_default().execute(&r, &s).throughput_tuples_per_s();
    let npo = NpoJoin::paper_default().execute(&r, &s).throughput_tuples_per_s();
    assert!(gpu > 2.0 * pro, "gpu {gpu:.3e} vs PRO {pro:.3e}");
    assert!(gpu > 2.0 * npo, "gpu {gpu:.3e} vs NPO {npo:.3e}");
}

/// Claim (abstract/Fig. 12): ~1 billion tuples/s even when no data is GPU
/// resident, and co-processing beats the CPU joins.
#[test]
fn out_of_gpu_still_beats_cpu() {
    let device = DeviceSpec::gtx1080().scaled_capacity(1 << 11);
    let (r, s) = canonical_pair(1 << 20, 1 << 20, 4005);
    let config =
        GpuJoinConfig::paper_default(device).with_radix_bits(12).with_tuned_buckets((1 << 20) / 16);
    let out =
        CoProcessingJoin::new(CoProcessingConfig::paper_default(config)).execute(&r, &s).unwrap();
    let co = out.throughput_tuples_per_s();
    let pro = ProJoin::paper_default().execute(&r, &s).throughput_tuples_per_s();
    assert!(co > pro, "co-processing {co:.3e} must beat PRO {pro:.3e}");
}

/// Claim (Fig. 13): co-processing with ~6 threads matches/overtakes the
/// fastest CPU configuration; more threads plateau (PCIe-bound).
#[test]
fn few_coprocessing_threads_beat_full_cpu() {
    let device = DeviceSpec::gtx1080().scaled_capacity(1 << 11);
    let (r, s) = canonical_pair(1 << 20, 1 << 20, 4006);
    let mk = |threads| {
        let config = GpuJoinConfig::paper_default(device.clone())
            .with_radix_bits(12)
            .with_tuned_buckets((1 << 20) / 16);
        CoProcessingJoin::new(CoProcessingConfig::paper_default(config).with_threads(threads))
            .execute(&r, &s)
            .unwrap()
            .throughput_tuples_per_s()
    };
    let with6 = mk(6);
    let with16 = mk(16);
    let with26 = mk(26);
    let pro48 = ProJoin::paper_default().with_threads(48).execute(&r, &s).throughput_tuples_per_s();
    assert!(with6 > pro48, "6-thread co-processing {with6:.3e} vs 48-thread PRO {pro48:.3e}");
    // Plateau: 16 → 26 threads gains little (< 25%).
    assert!(with26 < with16 * 1.25, "16t {with16:.3e}, 26t {with26:.3e}");
}

/// Claim (Fig. 17): probe-side skew barely hurts GPU-resident joins;
/// identical skew collapses performance at high zipf factors.
#[test]
fn skew_behaviour_matches_fig17() {
    let n = 1 << 19;
    let uniform_build = RelationSpec::unique(n, 4007).generate();
    let tput = |r: &Relation, s: &Relation| partitioned_tput(r, s, 10);

    let uniform_probe = RelationSpec::zipf(n, n as u64, 0.0, 4008).generate();
    let skewed_probe = RelationSpec::zipf(n, n as u64, 0.75, 4009).generate();
    let base = tput(&uniform_build, &uniform_probe);
    let probe_skew = tput(&uniform_build, &skewed_probe);
    assert!(
        probe_skew > 0.5 * base,
        "probe-side skew 0.75 should have low impact: {probe_skew:.3e} vs {base:.3e}"
    );

    // Identical skew at zipf 1.0: matches explode and co-partitions stop
    // fitting shared memory → collapse.
    let zr = RelationSpec::zipf(n, n as u64, 1.0, 4010).generate();
    let zs = RelationSpec::zipf(n, n as u64, 1.0, 4010).generate();
    let collapsed = tput(&zr, &zs);
    assert!(
        collapsed < 0.25 * base,
        "identical zipf-1.0 must collapse: {collapsed:.3e} vs base {base:.3e}"
    );
}

/// Claim (Fig. 16): NUMA staging beats direct far-socket copies.
#[test]
fn numa_staging_beats_direct() {
    let device = DeviceSpec::gtx1080().scaled_capacity(1 << 11);
    let (r, s) = canonical_pair(1 << 20, 1 << 20, 4011);
    let mk = |staging| {
        let config = GpuJoinConfig::paper_default(device.clone())
            .with_radix_bits(12)
            .with_tuned_buckets((1 << 20) / 16);
        CoProcessingJoin::new(CoProcessingConfig::paper_default(config).with_staging(staging))
            .execute(&r, &s)
            .unwrap()
            .throughput_gbps()
    };
    let staged = mk(true);
    let direct = mk(false);
    assert!(staged > direct, "staging {staged} GB/s vs direct {direct} GB/s");
}

/// Claim (Fig. 7): materialization "traces" aggregation — the overhead is
/// visible but not catastrophic for 1:1 joins.
#[test]
fn materialization_overhead_is_bounded() {
    let (r, s) = canonical_pair(1 << 20, 1 << 20, 4012);
    let agg =
        GpuPartitionedJoin::new(gpu_config(10, 1 << 20)).execute(&r, &s).unwrap().total_seconds();
    let mat = GpuPartitionedJoin::new(gpu_config(10, 1 << 20).with_output(OutputMode::Materialize))
        .execute(&r, &s)
        .unwrap()
        .total_seconds();
    assert!(mat >= agg);
    assert!(mat < 1.8 * agg, "agg {agg}, mat {mat}");
}
