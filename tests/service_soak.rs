//! Integration soak of the multi-tenant join service: the CI acceptance
//! run, in-process. 200 seeded closed-loop requests against a 512 KB
//! device must all complete with oracle-correct results, with observable
//! queueing and at least one strategy degradation under memory pressure —
//! and the summary must be byte-identical across runs and worker counts.

use hashjoin_gpu::prelude::*;

/// The same regime as `serve --quick --seed 7`: 8 clients x 25 requests,
/// builds of 1-4 k tuples, device scaled to 512 KB.
fn soak_service() -> JoinService {
    let device = DeviceSpec::gtx1080().scaled_capacity(1 << 14);
    let engine = HcjEngine::new(
        GpuJoinConfig::paper_default(device).with_radix_bits(8).with_tuned_buckets(4_000),
    );
    JoinService::new(engine, ServiceConfig::default())
}

#[test]
fn soak_200_requests_complete_queue_and_degrade() {
    let workload = mixed_workload(8, 25, 1_000, 7);
    let total: usize = workload.iter().map(|c| c.requests.len()).sum();
    assert_eq!(total, 200);
    let report = soak_service().run(&workload);
    let summary = report.summary();
    assert_eq!(report.completed(), 200, "every request completes:\n{summary}");
    assert_eq!(report.checks_passed(), 200, "every oracle check passes:\n{summary}");
    assert!(report.queued() >= 1, "at least one request observably queues:\n{summary}");
    assert!(report.degraded() >= 1, "at least one request degrades:\n{summary}");
    assert!(report.retries_total() >= 1, "backoff must trigger:\n{summary}");
    assert!(report.device_peak <= report.device_capacity, "admission control holds:\n{summary}");
    assert!(report.makespan.as_nanos() > 0);
    // The whole run renders as one Chrome timeline: at least one span per
    // request plus the wait spans of everything that queued.
    assert!(report.timeline.span_count() >= 200 + report.queued());
}

#[test]
fn soak_summary_is_byte_identical_across_runs_and_jobs() {
    let workload = mixed_workload(8, 25, 1_000, 7);
    let mut summaries: Vec<String> = Vec::new();
    for jobs in [1usize, 2, 2, 4] {
        hashjoin_gpu::host::pool::set_jobs(jobs);
        summaries.push(soak_service().run(&workload).summary());
    }
    hashjoin_gpu::host::pool::set_jobs(1);
    assert_eq!(summaries[1], summaries[2], "same seed, same jobs: identical");
    assert_eq!(summaries[0], summaries[1], "jobs 1 vs 2: identical");
    assert_eq!(summaries[0], summaries[3], "jobs 1 vs 4: identical");
}

#[test]
fn per_request_metrics_are_coherent() {
    let workload = mixed_workload(4, 5, 1_000, 11);
    let report = soak_service().run(&workload);
    for m in &report.requests {
        assert!(m.submitted_at <= m.admitted_at, "client {} #{}", m.client, m.index);
        assert!(m.admitted_at < m.completed_at, "execution takes simulated time");
        assert!(m.check_ok, "client {} #{}", m.client, m.index);
        assert!(m.matches > 0, "canonical probe sides always match");
        assert!(m.device_used_at_admit <= report.device_capacity);
        let executed = m.executed.expect("request completed");
        assert!(
            executed.rank() >= m.planned.rank(),
            "execution never runs *above* the plan (client {} #{})",
            m.client,
            m.index
        );
        if m.retries == 0 && !m.blocked {
            assert_eq!(
                m.queue_wait(),
                hashjoin_gpu::sim::SimTime::ZERO,
                "no retries and no backpressure means immediate admission"
            );
        }
    }
    // Closed loop: each client's requests complete in order.
    for c in 0..4 {
        let mut times: Vec<_> = report
            .requests
            .iter()
            .filter(|m| m.client == c)
            .map(|m| (m.index, m.completed_at))
            .collect();
        times.sort_unstable();
        for pair in times.windows(2) {
            assert!(
                pair[0].1 < pair[1].1,
                "client {c}: request {} before {}",
                pair[0].0,
                pair[1].0
            );
        }
    }
}

#[test]
fn service_trace_renders_as_valid_chrome_json() {
    let workload = mixed_workload(2, 3, 1_000, 5);
    let report = soak_service().run(&workload);
    let json = TraceExporter::new().timeline_to_json(&report.timeline);
    // Structural sanity without a JSON parser dependency: balanced
    // braces, the two client tracks, and the device counter all present.
    assert!(json.trim_start().starts_with('{') && json.trim_end().ends_with('}'));
    assert!(json.contains("\"client 0\""));
    assert!(json.contains("\"client 1\""));
    assert!(json.contains("device reserved (B)"));
    assert!(json.contains("\"ph\":\"X\""), "duration events present");
    assert!(json.contains("\"ph\":\"C\""), "counter samples present");
}
