//! Integration: end-to-end invariants of the hardware model that every
//! strategy must respect — throughput ceilings, accounting conservation,
//! determinism, and scale-invariance of bandwidth-bound results.

use hashjoin_gpu::core::nonpart::{NonPartitionedJoin, NonPartitionedKind};
use hashjoin_gpu::prelude::*;

fn gpu_config(bits: u32, tuples: usize) -> GpuJoinConfig {
    GpuJoinConfig::paper_default(DeviceSpec::gtx1080())
        .with_radix_bits(bits)
        .with_tuned_buckets(tuples)
}

/// No strategy can beat the device's memory bandwidth: a resident join
/// must read both inputs at least once, so throughput is bounded by
/// `mem_bw / 8 bytes` tuples/s (counting both sides in the numerator,
/// the paper's metric, doubles it).
#[test]
fn resident_throughput_respects_memory_bandwidth() {
    let (r, s) = canonical_pair(1 << 21, 1 << 21, 6001);
    let out = GpuPartitionedJoin::new(gpu_config(11, 1 << 21)).execute(&r, &s).unwrap();
    let device = DeviceSpec::gtx1080();
    let ceiling = 2.0 * device.mem_bandwidth / 8.0;
    assert!(
        out.throughput_tuples_per_s() < ceiling,
        "throughput {:.3e} exceeds the physical ceiling {ceiling:.3e}",
        out.throughput_tuples_per_s()
    );
    // And the non-partitioned comparator respects it too.
    let np = NonPartitionedJoin::new(NonPartitionedKind::PerfectHash, OutputMode::Aggregate)
        .execute(&r, &s);
    let np_tput = (r.len() + s.len()) as f64 / np.kernel_seconds(&device);
    assert!(np_tput < ceiling);
}

/// Out-of-GPU strategies cannot beat the PCIe link: every S byte crosses
/// once, so `(|R|+|S|) / time <= pcie/8 * (1 + |R|/|S|)`.
#[test]
fn streamed_probe_respects_the_link() {
    let (r, s) = canonical_pair(1 << 16, 1 << 21, 6002);
    let out = StreamedProbeJoin::new(StreamedProbeConfig::paper_default(gpu_config(9, 1 << 16)))
        .execute(&r, &s)
        .unwrap();
    let pcie = DeviceSpec::gtx1080().pcie_bandwidth;
    let ceiling = (r.len() + s.len()) as f64 / (s.bytes() as f64 / pcie);
    assert!(
        out.throughput_tuples_per_s() <= ceiling * 1.001,
        "throughput {:.3e} vs link ceiling {ceiling:.3e}",
        out.throughput_tuples_per_s()
    );
}

/// Co-processing cannot beat the link either: both relations cross once.
#[test]
fn coprocessing_respects_the_link() {
    let device = DeviceSpec::gtx1080().scaled_capacity(1 << 11);
    let (r, s) = canonical_pair(1 << 19, 1 << 20, 6003);
    let config =
        GpuJoinConfig::paper_default(device).with_radix_bits(12).with_tuned_buckets((1 << 19) / 16);
    let out =
        CoProcessingJoin::new(CoProcessingConfig::paper_default(config)).execute(&r, &s).unwrap();
    let pcie = 12.0e9;
    let ceiling = (r.len() + s.len()) as f64 / ((r.bytes() + s.bytes()) as f64 / pcie);
    assert!(
        out.throughput_tuples_per_s() <= ceiling * 1.001,
        "throughput {:.3e} vs link ceiling {ceiling:.3e}",
        out.throughput_tuples_per_s()
    );
}

/// The whole stack is deterministic: same inputs, same schedule, same
/// nanosecond timings, across strategies.
#[test]
fn end_to_end_determinism() {
    let (r, s) = canonical_pair(60_000, 120_000, 6004);
    let run_resident =
        || GpuPartitionedJoin::new(gpu_config(9, 60_000)).execute(&r, &s).unwrap().total_seconds();
    assert_eq!(run_resident(), run_resident());

    let device = DeviceSpec::gtx1080().scaled_capacity(1 << 13);
    let run_coproc = || {
        let config = GpuJoinConfig::paper_default(device.clone())
            .with_radix_bits(10)
            .with_tuned_buckets(60_000 / 16);
        CoProcessingJoin::new(CoProcessingConfig::paper_default(config))
            .execute(&r, &s)
            .unwrap()
            .total_seconds()
    };
    assert_eq!(run_coproc(), run_coproc());
}

/// Scale-invariance of bandwidth-bound results: running the same
/// out-of-GPU experiment at half the data and half the device capacity
/// changes throughput by only a few percent.
#[test]
fn bandwidth_bound_results_are_scale_invariant() {
    let tput_at = |k: u64| {
        let device = DeviceSpec::gtx1080().scaled_capacity(1024 * k);
        let n = (1 << 20) / k as usize;
        let (r, s) = canonical_pair(n, n, 6005);
        let config =
            GpuJoinConfig::paper_default(device).with_radix_bits(12).with_tuned_buckets(n / 16);
        CoProcessingJoin::new(CoProcessingConfig::paper_default(config))
            .execute(&r, &s)
            .unwrap()
            .throughput_tuples_per_s()
    };
    let full = tput_at(1);
    let half = tput_at(2);
    let ratio = full / half;
    assert!((0.8..1.25).contains(&ratio), "scale-variance too high: {full:.3e} vs {half:.3e}");
}

/// Device-memory accounting balances: after a strategy completes, its
/// Gpu (and all reservations) are dropped; a second run on a device sized
/// exactly to the first run's peak succeeds, proving nothing leaked.
#[test]
fn accounting_has_no_leaks_across_runs() {
    let (r, s) = canonical_pair(30_000, 30_000, 6006);
    // Find a capacity that barely admits the join...
    let mut lo = 1u64 << 18;
    let mut hi = 1u64 << 26;
    while lo + 4096 < hi {
        let mid = (lo + hi) / 2;
        let mut config = gpu_config(9, 30_000);
        config.device.device_mem_bytes = mid;
        match GpuPartitionedJoin::new(config).execute(&r, &s) {
            Ok(_) => hi = mid,
            Err(_) => lo = mid,
        }
    }
    // ...and verify it keeps admitting it, run after run.
    let mut config = gpu_config(9, 30_000);
    config.device.device_mem_bytes = hi;
    let join = GpuPartitionedJoin::new(config);
    for _ in 0..3 {
        join.execute(&r, &s).expect("repeat runs must not accumulate reservations");
    }
}

/// Materialized output is identical across all strategies — byte-for-byte
/// after sorting — on a many-to-many workload.
#[test]
fn materialized_outputs_are_identical_across_strategies() {
    let r = RelationSpec::zipf(8_000, 512, 0.7, 6007).generate();
    let s = RelationSpec::zipf(16_000, 512, 0.7, 6008).generate();
    let mut want = reference_join(&r, &s);
    want.sort_unstable();

    let mut resident =
        GpuPartitionedJoin::new(gpu_config(6, 8_000).with_output(OutputMode::Materialize))
            .execute(&r, &s)
            .unwrap()
            .rows
            .unwrap();
    resident.sort_unstable();
    assert_eq!(resident, want);

    let mut streamed = StreamedProbeJoin::new(StreamedProbeConfig::paper_default(
        gpu_config(6, 8_000).with_output(OutputMode::Materialize),
    ))
    .execute(&r, &s)
    .unwrap()
    .rows
    .unwrap();
    streamed.sort_unstable();
    assert_eq!(streamed, want);
}
