//! Chaos differential suite: every strategy, engine ladder and the
//! service layer under the deterministic fault plan, diffed against the
//! host oracle. The contract everywhere: for any fault seed the system
//! either produces the oracle-correct answer or a *typed* error — it
//! never panics, never silently corrupts a result, and never leaks
//! device reservations. Fixed seeds also pin determinism: the same seed
//! yields byte-identical service summaries at any worker count.

use hashjoin_gpu::prelude::*;
use hashjoin_gpu::sim::SimTime;

const FAULT_SEEDS: [u64; 6] = [1, 2, 3, 5, 8, 13];

/// A device comfortably larger than the test working sets, so the only
/// errors chaos can produce are injected ones (or shrink-induced OOM).
fn chaos_config(tuples: usize, seed: u64) -> GpuJoinConfig {
    let device = DeviceSpec::gtx1080().scaled_capacity(1 << 12); // 2 MB
    GpuJoinConfig::paper_default(device)
        .with_radix_bits(8)
        .with_tuned_buckets(tuples)
        .with_faults(FaultConfig::chaos(seed))
}

/// Strip the retry suffix: `join ws0 c3 [retry 2]` → `join ws0 c3`.
fn base_label(label: &str) -> &str {
    match label.find(" [retry") {
        Some(i) => &label[..i],
        None => label,
    }
}

/// Grid: fault seeds × all three GPU strategies, run directly. Each run
/// must end in an oracle-correct outcome or a typed error.
#[test]
fn strategies_are_oracle_correct_or_typed_under_chaos() {
    let (r, s) = canonical_pair(4_000, 16_000, 9001);
    let expected = JoinCheck::compute(&r, &s);
    for seed in FAULT_SEEDS {
        let cfg = chaos_config(4_000, seed);
        let runs: [(&str, Result<JoinOutcome, JoinError>); 3] = [
            ("resident", GpuPartitionedJoin::new(cfg.clone()).execute(&r, &s)),
            (
                "streamed",
                StreamedProbeJoin::new(StreamedProbeConfig::paper_default(cfg.clone()))
                    .execute(&r, &s),
            ),
            (
                "coprocess",
                CoProcessingJoin::new(CoProcessingConfig::paper_default(cfg)).execute(&r, &s),
            ),
        ];
        for (name, result) in runs {
            match result {
                Ok(out) => {
                    assert_eq!(
                        out.check, expected,
                        "seed {seed}: {name} survived chaos but returned a wrong join"
                    );
                }
                Err(err) => {
                    // Typed, classifiable, and displayable — the service
                    // layer relies on all three.
                    assert!(!err.tag().is_empty(), "seed {seed}: {name} untagged error");
                    assert!(!err.to_string().is_empty());
                    let _ = err.class();
                }
            }
        }
    }
}

/// The engine ladder under chaos: device-lost and exhausted transient
/// faults recover onto the CPU, so with a device that fits the workload
/// the only acceptable error is (shrink-induced) out-of-memory — and any
/// success must be oracle-correct whatever rung it landed on.
#[test]
fn engine_ladder_lands_somewhere_correct_under_chaos() {
    let (r, s) = canonical_pair(4_000, 16_000, 9002);
    let expected = JoinCheck::compute(&r, &s);
    for seed in FAULT_SEEDS {
        let engine = HcjEngine::new(chaos_config(4_000, seed));
        match engine.execute(&r, &s) {
            Ok((strategy, out)) => {
                assert_eq!(out.check, expected, "seed {seed}: wrong join via {strategy}");
            }
            Err(JoinError::OutOfDeviceMemory(_)) => {} // co-tenant shrink won
            Err(err) => panic!("seed {seed}: ladder leaked a recoverable error: {err}"),
        }
    }
}

/// Partition-granular recovery in co-processing: a transient kernel fault
/// re-runs only the faulted working-set chunk. Completed chunks are never
/// recomputed — the faulted run executes exactly the same set of join
/// kernels as the fault-free run, once each, plus the charged partial
/// work of the faulted attempts.
#[test]
fn coprocessing_does_not_recompute_completed_work_after_faults() {
    let (r, s) = canonical_pair(8_000, 32_000, 9003);
    let expected = JoinCheck::compute(&r, &s);

    let clean_cfg = chaos_config(8_000, 0); // seed irrelevant below
    let clean = CoProcessingJoin::new(CoProcessingConfig::paper_default(GpuJoinConfig {
        faults: None,
        ..clean_cfg.clone()
    }))
    .execute(&r, &s)
    .expect("fault-free co-processing run");
    let clean_joins: Vec<String> = clean
        .schedule
        .spans()
        .iter()
        .filter(|sp| sp.label.starts_with("join ws"))
        .map(|sp| sp.label.clone())
        .collect();
    assert!(!clean_joins.is_empty(), "co-processing issued no join kernels");
    let clean_join_work: f64 = clean
        .schedule
        .spans()
        .iter()
        .filter(|sp| sp.label.starts_with("join ws"))
        .map(|sp| sp.work)
        .sum();

    // Deterministically find a seed whose kernel faults are transient and
    // recovered (no device-lost, no exhausted retry chains).
    let mut exercised = false;
    for seed in 1..=60u64 {
        let faults =
            FaultConfig { kernel_fault_p: 0.15, device_lost_p: 0.0, ..FaultConfig::disabled(seed) };
        let cfg = GpuJoinConfig { faults: None, ..clean_cfg.clone() }.with_faults(faults);
        let Ok(out) = CoProcessingJoin::new(CoProcessingConfig::paper_default(cfg)).execute(&r, &s)
        else {
            continue; // retry chain exhausted under this seed; try the next
        };
        if out.faults.summary().kernel_faults == 0 {
            continue;
        }
        // Every join kernel from the clean run completes exactly once
        // (possibly as a `[retry n]` re-issue); nothing runs twice.
        let mut completed: Vec<String> = Vec::new();
        let mut completed_work = 0.0f64;
        let mut faulted = 0usize;
        for sp in out.schedule.spans() {
            if !sp.label.starts_with("join ws") {
                continue;
            }
            if sp.label.contains("[fault]") {
                faulted += 1;
            } else if !sp.label.contains("[backoff") {
                completed.push(base_label(&sp.label).to_string());
                completed_work += sp.work;
            }
        }
        if faulted == 0 {
            continue; // this seed only faulted partitioning kernels
        }
        exercised = true;
        assert_eq!(out.check, expected, "seed {seed}: recovered run is wrong");
        let mut clean_sorted = clean_joins.clone();
        clean_sorted.sort();
        let mut completed_sorted = completed.clone();
        completed_sorted.sort();
        assert_eq!(
            completed_sorted, clean_sorted,
            "seed {seed}: completed join kernels differ from the fault-free run — \
             a finished chunk was recomputed or dropped"
        );
        // Charged-cost accounting: with stalls disarmed, the completed
        // join work equals the fault-free run's exactly — recovery re-ran
        // only the faulted chunk, and charged nothing else twice.
        assert!(
            (completed_work - clean_join_work).abs() <= 1e-12 * clean_join_work.max(1.0),
            "seed {seed}: completed join work {completed_work} != clean {clean_join_work}"
        );
        break;
    }
    assert!(exercised, "no seed in 1..=60 produced a recovered kernel fault");
}

/// Service soak under chaos: summaries are byte-identical across worker
/// counts for a fixed fault seed, every request is accounted for, and no
/// device bytes leak.
#[test]
fn service_chaos_summaries_identical_across_worker_counts() {
    for fault_seed in [7u64, 9] {
        let workload = mixed_workload(4, 2, 1_000, 21);
        let total: usize = workload.iter().map(|c| c.requests.len()).sum();
        let mut summaries = Vec::new();
        for jobs in [1usize, 2, 4] {
            hashjoin_gpu::host::pool::set_jobs(jobs);
            let device = DeviceSpec::gtx1080().scaled_capacity(1 << 14);
            let engine = HcjEngine::new(
                GpuJoinConfig::paper_default(device)
                    .with_radix_bits(8)
                    .with_tuned_buckets(4_000)
                    .with_faults(FaultConfig::chaos(fault_seed)),
            );
            let report = JoinService::new(engine, ServiceConfig::default()).run(&workload);
            assert!(report.invariant_violations.is_empty(), "{:?}", report.invariant_violations);
            assert_eq!(report.device_used_at_end, 0, "leaked device bytes");
            assert_eq!(
                report.completed() + report.deadline_exceeded() + report.errored(),
                total,
                "fault seed {fault_seed}: unaccounted requests"
            );
            assert_eq!(report.checks_passed(), report.completed());
            summaries.push(report.summary());
        }
        hashjoin_gpu::host::pool::set_jobs(1);
        assert_eq!(summaries[0], summaries[1], "fault seed {fault_seed}: jobs 1 vs 2");
        assert_eq!(summaries[0], summaries[2], "fault seed {fault_seed}: jobs 1 vs 4");
    }
}

/// Deadlines and chaos together: expired or errored requests release
/// their reservations, the accounting always closes, and peak device use
/// never exceeds capacity even with co-tenant shrink events armed.
#[test]
fn deadline_plus_chaos_releases_everything() {
    let workload = mixed_workload(6, 3, 1_500, 33);
    let total: usize = workload.iter().map(|c| c.requests.len()).sum();
    let capacity = DeviceSpec::gtx1080().scaled_capacity(1 << 14).device_mem_bytes;
    for fault_seed in FAULT_SEEDS {
        let device = DeviceSpec::gtx1080().scaled_capacity(1 << 14);
        let engine = HcjEngine::new(
            GpuJoinConfig::paper_default(device)
                .with_radix_bits(8)
                .with_tuned_buckets(6_000)
                .with_faults(FaultConfig::chaos(fault_seed)),
        );
        let config = ServiceConfig::default().with_deadline(Some(SimTime::from_nanos(60_000)));
        let report = JoinService::new(engine, config).run(&workload);
        assert!(report.invariant_violations.is_empty(), "{:?}", report.invariant_violations);
        assert_eq!(report.device_used_at_end, 0, "fault seed {fault_seed}: leaked reservation");
        assert_eq!(
            report.completed() + report.deadline_exceeded() + report.errored(),
            total,
            "fault seed {fault_seed}: unaccounted requests"
        );
        assert_eq!(report.checks_passed(), report.completed(), "finished request failed oracle");
        assert!(report.device_peak <= capacity, "peak above capacity under shrink");
        for m in &report.requests {
            if m.error == Some("deadline-exceeded") {
                assert!(!m.check_ok, "cancelled request cannot claim a correct join");
            }
        }
    }
}
