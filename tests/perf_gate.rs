//! Tier-1 regression tests for the perf gate (`repro --write-baseline` /
//! `--check-baseline`): the green write→check round-trip on two quick
//! figures, the negative path (a perturbed metric must fail naming the
//! figure and the metric), and the degraded paths (missing or corrupt
//! baseline files are typed errors and a nonzero exit — never a panic).

use std::path::PathBuf;
use std::process::Command;

use hcj_bench::figures::{fig05, fig09_10};
use hcj_bench::perfgate::{self, GateResult};
use hcj_bench::{RunConfig, Table};
use hcj_sim::baseline::{BaselineError, Metric};

fn cfg() -> RunConfig {
    RunConfig { scale: 64, quick: true, out_dir: None, trace_dir: None, profile: false }
}

/// A fresh scratch directory under the system temp dir (removed on entry
/// so reruns start clean; best-effort removal on exit).
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hcj-perf-gate-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn first_cycles_probe(table: &Table) -> usize {
    table
        .probes
        .iter()
        .position(|(name, _)| name.starts_with("cycles["))
        .expect("every figure records at least one cycles[...] probe")
}

#[test]
fn write_then_check_round_trips_on_two_quick_figures() {
    let cfg = cfg();
    let dir = scratch("roundtrip");
    for table in [fig05::run(&cfg), fig09_10::run_fig09(&cfg)] {
        perfgate::write_table(&cfg, &dir, &table).expect("baseline write succeeds");
        assert!(dir.join(format!("{}.json", table.id)).is_file());
        assert!(
            matches!(perfgate::check_table(&cfg, &dir, &table), GateResult::Pass),
            "{}: freshly written baseline must pass its own check",
            table.id
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn perturbed_cycles_fail_the_gate_naming_figure_and_metric() {
    let cfg = cfg();
    let dir = scratch("perturbed");
    let table = fig05::run(&cfg);
    perfgate::write_table(&cfg, &dir, &table).unwrap();

    let mut inflated = fig05::run(&cfg);
    let i = first_cycles_probe(&inflated);
    let metric_name = inflated.probes[i].0.clone();
    let Metric::Exact(cycles) = inflated.probes[i].1 else {
        panic!("cycles probes are exact");
    };
    inflated.probes[i].1 = Metric::Exact(cycles + cycles / 10 + 1);

    match perfgate::check_table(&cfg, &dir, &inflated) {
        GateResult::Diffs(diffs) => {
            let d = diffs
                .iter()
                .find(|d| d.metric == metric_name)
                .unwrap_or_else(|| panic!("no diff names {metric_name}: {diffs:?}"));
            assert_eq!(d.figure, "fig05");
            let line = d.to_string();
            assert!(line.contains("fig05") && line.contains(&metric_name), "{line}");
        }
        GateResult::Pass => panic!("inflated cycles must fail the gate"),
        GateResult::Error(e) => panic!("unexpected load error: {e}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn missing_baseline_is_a_typed_error() {
    let cfg = cfg();
    let dir = scratch("missing");
    std::fs::create_dir_all(&dir).unwrap();
    let table = fig05::run(&cfg);
    match perfgate::check_table(&cfg, &dir, &table) {
        GateResult::Error(BaselineError::Missing { path }) => {
            assert_eq!(path, dir.join("fig05.json"));
        }
        _ => panic!("missing baseline must surface as BaselineError::Missing"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_baseline_is_a_typed_parse_error() {
    let cfg = cfg();
    let dir = scratch("corrupt");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("fig05.json"), "{ \"figure\": \"fig05\", truncated").unwrap();
    let table = fig05::run(&cfg);
    match perfgate::check_table(&cfg, &dir, &table) {
        GateResult::Error(BaselineError::Parse { path, .. }) => {
            assert_eq!(path, dir.join("fig05.json"));
        }
        GateResult::Error(e) => panic!("corrupt baseline must parse-fail, got: {e}"),
        _ => panic!("corrupt baseline must surface as BaselineError::Parse"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Drive the real binary end to end: a missing baseline directory exits
/// nonzero with the typed message on stderr (no panic), and a fresh
/// write→check cycle through the CLI exits zero.
#[test]
fn repro_cli_check_baseline_exits_nonzero_on_missing_and_zero_after_write() {
    let repro = env!("CARGO_BIN_EXE_repro");
    let dir = scratch("cli");
    std::fs::create_dir_all(&dir).unwrap();

    let run = |extra: &[&str]| {
        let out = Command::new(repro)
            .args(["fig5", "--quick", "--scale", "64"])
            .args(extra)
            .output()
            .expect("repro binary runs");
        (out.status, String::from_utf8_lossy(&out.stderr).into_owned())
    };

    let dir_s = dir.to_str().unwrap();
    let (status, stderr) = run(&["--check-baseline", dir_s]);
    assert!(!status.success(), "missing baseline must fail the gate:\n{stderr}");
    assert!(stderr.contains("does not exist"), "typed message expected:\n{stderr}");
    assert!(stderr.contains("perf gate FAILED"), "{stderr}");

    let (status, stderr) = run(&["--write-baseline", dir_s]);
    assert!(status.success(), "baseline write must succeed:\n{stderr}");

    let (status, stderr) = run(&["--check-baseline", dir_s]);
    assert!(status.success(), "freshly written baseline must pass:\n{stderr}");
    assert!(stderr.contains("perf gate passed"), "{stderr}");

    // Corrupt the golden on disk: still a clean failure, not a panic.
    std::fs::write(dir.join("fig05.json"), "not json at all").unwrap();
    let (status, stderr) = run(&["--check-baseline", dir_s]);
    assert!(!status.success(), "corrupt baseline must fail the gate:\n{stderr}");
    assert!(stderr.contains("is corrupt"), "typed message expected:\n{stderr}");
    assert!(!stderr.contains("panicked"), "must never panic:\n{stderr}");

    let _ = std::fs::remove_dir_all(&dir);
}
