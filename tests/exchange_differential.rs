//! Differential suite for cross-device exchange joins
//! (`hcj_engines::exchange`): the executor against the composed
//! partition-by-partition oracle across input shapes and fleet widths, a
//! pinned chaos seed that kills a participant mid-exchange, and
//! byte-identity of the whole exchange fleet across `--jobs` counts.

use hashjoin_gpu::prelude::*;

fn engine(faults: Option<FaultConfig>) -> HcjEngine {
    let device = DeviceSpec::gtx1080().scaled_capacity(1 << 14); // 512 KB
    let mut cfg = GpuJoinConfig::paper_default(device).with_radix_bits(8).with_tuned_buckets(8_000);
    if let Some(f) = faults {
        cfg = cfg.with_faults(f);
    }
    HcjEngine::new(cfg)
}

fn participants(n: usize) -> Vec<ExchangeParticipant> {
    (0..n)
        .map(|device| ExchangeParticipant {
            device,
            spec: DeviceSpec::gtx1080().scaled_capacity(1 << 14),
        })
        .collect()
}

/// Uniform and zipf-skewed inputs, across 2/3/4-device fleets: the
/// exchange join must equal both the composed per-partition oracle and
/// the whole-input ground truth, and every shuffled byte must arrive
/// (egress == ingress — conservation is the executor's leak audit).
#[test]
fn exchange_matches_the_composed_oracle_across_shapes_and_widths() {
    let shapes: Vec<(&str, Relation, Relation)> = vec![
        {
            let (r, s) = canonical_pair(24_000, 48_000, 11);
            ("uniform", r, s)
        },
        (
            "zipf",
            RelationSpec::zipf(24_000, 2_000, 1.0, 12).generate(),
            RelationSpec::zipf(48_000, 2_000, 1.0, 13).generate(),
        ),
    ];
    let cfg = ExchangeConfig::default();
    let host = HostSpec::dual_xeon_e5_2650l_v3();
    let engine = engine(None);
    for (name, r, s) in &shapes {
        let full = JoinCheck::compute(r, s);
        assert_eq!(
            composed_join_check(r, s, 1 << cfg.radix_bits),
            full,
            "{name}: composed oracle is sound"
        );
        for n in [2usize, 3, 4] {
            let out = execute_exchange(&engine, &participants(n), r, s, &cfg, &host, 7)
                .unwrap_or_else(|e| panic!("{name} x {n} devices failed: {e:?}"));
            assert_eq!(out.check, full, "{name} x {n} devices diverges from the oracle");
            assert!(out.lost.is_empty(), "{name} x {n}: no faults armed");
            assert_eq!(
                out.counters.exchange_out.bytes, out.counters.exchange_in.bytes,
                "{name} x {n}: every shuffled byte must arrive"
            );
            assert!(
                out.counters.exchange_out.bytes > 0,
                "{name} x {n}: a multi-device exchange moves bytes"
            );
            // Wider fleets shuffle a larger share of the inputs.
            assert_eq!(out.owners.len(), 1 << cfg.radix_bits);
            assert_eq!(out.per_device.len(), n);
        }
    }
}

/// The exchange fleet under a pinned chaos seed: every request is big
/// enough that only a cross-device plan admits it, and the seed's fault
/// draws kill at least one participant while its exchange is in flight.
/// The exchange re-runs the lost partitions on an adopter, so every
/// completed request stays oracle-correct; the fleet drains the dead
/// device and the run ends with zero leaked bytes.
fn chaos_exchange_fleet() -> FleetService {
    let faults =
        FaultConfig { kernel_fault_p: 0.05, device_lost_p: 0.3, ..FaultConfig::disabled(21) };
    FleetService::new(
        engine(Some(faults)),
        ServiceConfig::default(),
        FleetConfig::new(3).with_exchange(),
    )
}

fn oversized_workload() -> Vec<ClientSpec> {
    // Two closed-loop clients, five joins each; every join's inputs
    // (480 KB) overflow one 512 KB device, so admission is cross-device
    // or nothing.
    (0..2)
        .map(|c| ClientSpec {
            requests: (0..5)
                .map(|i| {
                    let seed = 100 + (c * 5 + i) as u64;
                    QuerySpec::Join(RequestSpec {
                        r: RelationSpec::unique(20_000, seed),
                        s: RelationSpec::zipf(40_000, 20_000, 0.75, seed ^ 0xff),
                        build: None,
                    })
                })
                .collect(),
        })
        .collect()
}

#[test]
fn pinned_chaos_seed_kills_a_participant_mid_exchange() {
    let report = chaos_exchange_fleet().run(&oversized_workload());
    let summary = report.summary();
    let fleet = report.fleet.as_ref().expect("fleet runs attach a rollup");

    // The seed must actually kill hardware, and since every request is
    // cross-device, the loss was observed by an in-flight exchange.
    assert!(fleet.lost() >= 1, "seed 21 must kill at least one participant:\n{summary}");
    assert!(fleet.lost() < 3, "at least one device survives:\n{summary}");
    assert!(report.cross_device() >= 1, "requests must run as exchanges:\n{summary}");

    // Completes correctly: the adopter re-run keeps every finished
    // request oracle-correct.
    let accounted = report.completed() + report.deadline_exceeded() + report.errored();
    assert_eq!(accounted, 10, "no request vanishes:\n{summary}");
    assert_eq!(
        report.checks_passed(),
        report.completed(),
        "every finished request is oracle-correct:\n{summary}"
    );
    assert!(report.completed() >= 1, "the fleet keeps serving:\n{summary}");

    // Zero leaked bytes: the lost device drained its envelopes, the
    // audits stayed clean, and nothing is reserved at the end.
    assert!(
        report.invariant_violations.is_empty(),
        "leak/accounting audit is clean: {:?}",
        report.invariant_violations
    );
    assert_eq!(report.device_used_at_end, 0, "no envelope survives the run:\n{summary}");
    for d in &fleet.devices {
        assert_eq!(d.used_at_end, 0, "device {} leaks {} B:\n{summary}", d.id, d.used_at_end);
        assert!(d.peak_bytes <= d.capacity, "device {} over-reserved:\n{summary}", d.id);
    }
}

/// The exchange fleet — chaos seed, participant losses, adopter re-runs
/// and all — renders byte-identical summaries at `--jobs` 1, 2 and 4.
#[test]
fn exchange_fleet_summary_is_byte_identical_across_jobs() {
    let workload = oversized_workload();
    let mut summaries: Vec<String> = Vec::new();
    for jobs in [1usize, 2, 4, 4] {
        hashjoin_gpu::host::pool::set_jobs(jobs);
        summaries.push(chaos_exchange_fleet().run(&workload).summary());
    }
    hashjoin_gpu::host::pool::set_jobs(1);
    assert_eq!(summaries[0], summaries[1], "jobs 1 vs 2: identical");
    assert_eq!(summaries[0], summaries[2], "jobs 1 vs 4: identical");
    assert_eq!(summaries[2], summaries[3], "same seed, same jobs: identical");
    assert!(summaries[0].contains("executed cross-device"), "{}", summaries[0]);
    assert!(summaries[0].contains("exchange out / in"), "{}", summaries[0]);
}

/// A heterogeneous exchange fleet (GTX 1080 + V100 + GTX 1080) completes
/// the oversized workload with throughput-weighted partition ownership,
/// and stays deterministic run to run.
#[test]
fn heterogeneous_exchange_fleet_completes_and_is_deterministic() {
    let mix = vec![
        DeviceSpec::gtx1080().scaled_capacity(1 << 14),
        DeviceSpec::v100().scaled_capacity(1 << 14),
        DeviceSpec::gtx1080().scaled_capacity(1 << 14),
    ];
    let svc = || {
        FleetService::new(
            engine(None),
            ServiceConfig::default(),
            FleetConfig::new(0).with_device_mix(mix.clone()).with_exchange(),
        )
    };
    let workload = oversized_workload();
    let a = svc().run(&workload);
    let b = svc().run(&workload);
    assert_eq!(a.summary(), b.summary(), "mixed fleet is deterministic");
    assert_eq!(a.completed(), 10, "{}", a.summary());
    assert_eq!(a.checks_passed(), 10, "{}", a.summary());
    assert!(a.cross_device() >= 1, "{}", a.summary());
    assert!(a.invariant_violations.is_empty(), "{:?}", a.invariant_violations);
    assert_eq!(a.device_used_at_end, 0, "{}", a.summary());
}
