//! Integration: the *timelines* of the out-of-GPU strategies have the
//! pipeline structure the paper describes — transfers overlap execution,
//! double buffering works, drains ride the second DMA engine, and the
//! bottleneck resource is the one the paper names.

use hashjoin_gpu::prelude::*;

fn gpu_config(bits: u32, tuples: usize) -> GpuJoinConfig {
    GpuJoinConfig::paper_default(DeviceSpec::gtx1080())
        .with_radix_bits(bits)
        .with_tuned_buckets(tuples)
}

#[test]
fn streamed_probe_hides_execution_behind_transfers() {
    // Large probe side: per paper §IV-A, total time ≈ S transfer time +
    // the last chunk's processing.
    let (r, s) = canonical_pair(1 << 17, 1 << 21, 3001);
    let out = StreamedProbeJoin::new(StreamedProbeConfig::paper_default(gpu_config(10, 1 << 17)))
        .execute(&r, &s)
        .unwrap();
    let transfer_s = out.phases.time(Phase::TransferIn).as_secs_f64();
    let total_s = out.total_seconds();
    // The whole S side crosses once: at least bytes/bw of transfer.
    let min_transfer = s.bytes() as f64 / 12.0e9;
    assert!(transfer_s >= min_transfer * 0.99, "transfer {transfer_s} < {min_transfer}");
    // Execution is hidden: the makespan is within 40% of pure transfer
    // time (R partitioning up front + last chunk keep it above 1.0x).
    assert!(
        total_s < transfer_s * 1.4,
        "makespan {total_s} not transfer-bound (transfers {transfer_s})"
    );
}

#[test]
fn streamed_probe_double_buffering_serializes_buffer_reuse() {
    let (r, s) = canonical_pair(1 << 14, 1 << 18, 3002);
    let mut config = StreamedProbeConfig::paper_default(gpu_config(9, 1 << 14));
    config.chunk_tuples = Some(1 << 14);
    let out = StreamedProbeJoin::new(config).execute(&r, &s).unwrap();
    // Copy of chunk k must start no earlier than join of chunk k-2 ends.
    let spans = out.schedule.spans();
    let find = |label: &str| spans.iter().find(|sp| sp.label == label).unwrap();
    for k in 2..16 {
        let copy = find(&format!("h2d s chunk{k}"));
        let join = find(&format!("join chunk{}", k - 2));
        assert!(
            copy.start >= join.end,
            "chunk {k} copy started at {} before join {} ended at {}",
            copy.start,
            k - 2,
            join.end
        );
    }
}

#[test]
fn materialization_drains_on_the_second_dma_engine() {
    let (r, s) = canonical_pair(1 << 14, 1 << 18, 3003);
    let out = StreamedProbeJoin::new(StreamedProbeConfig::paper_default(
        gpu_config(9, 1 << 14).with_output(OutputMode::Materialize),
    ))
    .execute(&r, &s)
    .unwrap();
    // D2H drains exist and overlap H2D input transfers (full duplex).
    let d2h = out.phases.time(Phase::TransferOut);
    assert!(d2h.as_nanos() > 0, "no result drain recorded");
    let overlap = out
        .schedule
        .overlap_time(|sp| sp.label.starts_with("d2h"), |sp| sp.label.starts_with("h2d"));
    assert!(
        overlap.as_secs_f64() > 0.3 * d2h.as_secs_f64(),
        "result drains should overlap input transfers (full duplex): overlap {overlap} of {d2h}"
    );
}

#[test]
fn coprocessing_pipeline_overlaps_all_three_phases() {
    let device = DeviceSpec::gtx1080().scaled_capacity(1 << 11); // 4 MB
    let (r, s) = canonical_pair(400_000, 1_600_000, 3004);
    let config =
        GpuJoinConfig::paper_default(device).with_radix_bits(12).with_tuned_buckets(400_000 / 16);
    let out =
        CoProcessingJoin::new(CoProcessingConfig::paper_default(config)).execute(&r, &s).unwrap();
    assert_eq!(out.check, JoinCheck::compute(&r, &s));
    let cpu_with_h2d = out
        .schedule
        .overlap_time(|sp| sp.label.starts_with("cpu-Partition"), |sp| sp.label.starts_with("h2d"));
    let join_with_h2d = out
        .schedule
        .overlap_time(|sp| sp.label.starts_with("join"), |sp| sp.label.starts_with("h2d"));
    assert!(cpu_with_h2d.as_nanos() > 0, "CPU partitioning must overlap transfers");
    assert!(join_with_h2d.as_nanos() > 0, "GPU joins must overlap transfers");
}

#[test]
fn coprocessing_throughput_is_transfer_bound_with_enough_threads() {
    let device = DeviceSpec::gtx1080().scaled_capacity(1 << 11);
    let (r, s) = canonical_pair(1 << 19, 1 << 20, 3005);
    let config =
        GpuJoinConfig::paper_default(device).with_radix_bits(12).with_tuned_buckets((1 << 19) / 16);
    let out = CoProcessingJoin::new(CoProcessingConfig::paper_default(config).with_threads(16))
        .execute(&r, &s)
        .unwrap();
    // Paper: ~1.2 B tuples/s when nothing is GPU-resident; PCIe-bound
    // means (R+S)/time close to pcie_bw/8 within a factor ~2 (both
    // relations must cross, plus pipeline fill).
    let tput = out.throughput_tuples_per_s();
    let ceiling = 12.0e9 / 8.0;
    assert!(
        tput > ceiling * 0.4 && tput < ceiling * 1.5,
        "tput {tput:.3e} vs PCIe ceiling {ceiling:.3e}"
    );
}

#[test]
fn every_strategy_schedule_passes_the_validator() {
    // Explicit (release-mode-proof) audit: every out-of-GPU strategy's
    // timeline satisfies the simulator's invariants — FIFO lane limits,
    // shared-resource conservation, dependency ordering, work conservation.
    let validator = ScheduleValidator::new();

    let (r, s) = canonical_pair(1 << 15, 1 << 18, 3007);
    let resident = GpuPartitionedJoin::new(gpu_config(9, 1 << 15)).execute(&r, &s).unwrap();
    validator.validate(&resident.schedule).expect("gpu-resident schedule");

    let streamed = StreamedProbeJoin::new(StreamedProbeConfig::paper_default(
        gpu_config(9, 1 << 15).with_output(OutputMode::Materialize),
    ))
    .execute(&r, &s)
    .unwrap();
    validator.validate(&streamed.schedule).expect("streamed-probe schedule");

    let device = DeviceSpec::gtx1080().scaled_capacity(1 << 11);
    let config =
        GpuJoinConfig::paper_default(device).with_radix_bits(12).with_tuned_buckets((1 << 15) / 16);
    let co =
        CoProcessingJoin::new(CoProcessingConfig::paper_default(config)).execute(&r, &s).unwrap();
    validator.validate(&co.schedule).expect("co-processing schedule");
}

#[test]
fn gpu_resident_timeline_is_strictly_sequential_kernels() {
    let (r, s) = canonical_pair(1 << 15, 1 << 15, 3006);
    let out = GpuPartitionedJoin::new(gpu_config(9, 1 << 15)).execute(&r, &s).unwrap();
    // All spans on the compute resource, no overlaps: each kernel starts
    // when the previous ends.
    let mut spans: Vec<_> =
        out.schedule.spans().iter().filter(|sp| sp.resource.is_some()).collect();
    spans.sort_by_key(|sp| sp.start);
    for w in spans.windows(2) {
        assert!(w[1].start >= w[0].end, "{} overlaps {}", w[1].label, w[0].label);
    }
    assert!(spans.len() >= 3, "partition passes + join kernels expected");
}
