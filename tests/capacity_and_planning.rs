//! Integration: device-memory pressure drives strategy selection — the
//! planner's whole reason to exist (paper §IV: "a one-size-fits-all
//! approach is not suitable for GPU joins").

use hashjoin_gpu::prelude::*;

fn config_for(device: DeviceSpec, build_tuples: usize) -> GpuJoinConfig {
    GpuJoinConfig::paper_default(device).with_radix_bits(10).with_tuned_buckets(build_tuples / 8)
}

#[test]
fn shrinking_device_walks_through_all_three_strategies() {
    let (r, s) = canonical_pair(40_000, 160_000, 2001);
    // Total input 1.6 MB. Walk capacity from plenty down to almost none.
    let mut seen = Vec::new();
    for scale_pow in [0u32, 13, 15] {
        let device = DeviceSpec::gtx1080().scaled_capacity(1 << scale_pow);
        let engine = HcjEngine::new(config_for(device, r.len()));
        let (strategy, out) = engine.execute(&r, &s).unwrap();
        assert_eq!(out.check, JoinCheck::compute(&r, &s), "{strategy:?}");
        seen.push(strategy);
    }
    assert_eq!(
        seen,
        vec![
            PlannedStrategy::GpuResident,
            PlannedStrategy::StreamedProbe,
            PlannedStrategy::CoProcessing
        ],
        "capacity pressure must escalate the strategy"
    );
}

#[test]
fn gpu_resident_join_reports_oom_rather_than_lying() {
    let device = DeviceSpec::gtx1080().scaled_capacity(1 << 16); // 128 KB
    let (r, s) = canonical_pair(40_000, 40_000, 2002); // 640 KB
    let err = GpuPartitionedJoin::new(config_for(device, r.len())).execute(&r, &s).unwrap_err();
    let JoinError::OutOfDeviceMemory(oom) = &err else {
        panic!("expected a typed OOM, got {err:?}");
    };
    assert!(oom.requested > 0);
    assert!(oom.capacity <= 128 * 1024);
}

#[test]
fn device_memory_is_returned_after_execution() {
    let device = DeviceSpec::gtx1080();
    let config = config_for(device, 10_000);
    let (r, s) = canonical_pair(10_000, 10_000, 2003);
    let join = GpuPartitionedJoin::new(config);
    // Two consecutive executions: if reservations leaked, the second
    // would see less capacity. (The Gpu is constructed inside execute(),
    // so the stronger check is simply that repeated runs succeed and
    // agree.)
    let a = join.execute(&r, &s).unwrap();
    let b = join.execute(&r, &s).unwrap();
    assert_eq!(a.check, b.check);
    assert_eq!(a.total_seconds(), b.total_seconds(), "simulation must be deterministic");
}

#[test]
fn streamed_probe_requires_only_the_build_side_resident() {
    // Device fits R (+pools +buffers) but not R+S.
    let device = DeviceSpec::gtx1080().scaled_capacity(1 << 11); // 4 MB
    let (r, s) = canonical_pair(50_000, 1_000_000, 2004); // R 400 KB, S 8 MB
    let out = StreamedProbeJoin::new(StreamedProbeConfig::paper_default(config_for(
        device.clone(),
        r.len(),
    )))
    .execute(&r, &s)
    .unwrap();
    assert_eq!(out.check, JoinCheck::compute(&r, &s));
    // And the in-GPU strategy must refuse the same workload.
    assert!(GpuPartitionedJoin::new(config_for(device, r.len())).execute(&r, &s).is_err());
}

#[test]
fn coprocessing_works_with_tiny_devices() {
    // 64 KB of device memory: working sets become single partitions.
    let device = DeviceSpec::gtx1080().scaled_capacity(1 << 17);
    let (r, s) = canonical_pair(30_000, 30_000, 2005);
    let config = GpuJoinConfig::paper_default(device).with_radix_bits(12).with_tuned_buckets(64);
    let out =
        CoProcessingJoin::new(CoProcessingConfig::paper_default(config)).execute(&r, &s).unwrap();
    assert_eq!(out.check, JoinCheck::compute(&r, &s));
}

#[test]
fn engine_models_fail_where_the_paper_says_they_fail() {
    use hashjoin_gpu::engines::{CoGaDbLike, DbmsXLike, EngineError};
    // Working sets beyond the device: CoGaDB cannot run at all; DBMS-X
    // past its caching limit falls back to CPU-resident execution (slow
    // but functional); DBMS-X *within* its caching limit but beyond the
    // allocator errors out (the paper's SF100-orders failure).
    let device = DeviceSpec::gtx1080().scaled_capacity(1 << 12); // 2 MB
    let (r, s) = canonical_pair(100_000, 400_000, 2006); // 4 MB total
    let cog = CoGaDbLike::new(device.clone()).execute(&r, &s);
    assert!(matches!(cog, Err(EngineError::WorkingSetTooLarge { .. })));
    let dx_resident_attempt = DbmsXLike::new(device.clone()).execute(&r, &s);
    assert!(matches!(dx_resident_attempt, Err(EngineError::WorkingSetTooLarge { .. })));
    let dx = DbmsXLike::new(device).with_cache_limit(50_000).execute(&r, &s).unwrap();
    assert_eq!(dx.check, JoinCheck::compute(&r, &s));
}

// --- Planner property tests (seeded loops, the repo's vendored-rng -------
// --- replacement for proptest) -------------------------------------------

/// Property: escalation always terminates. The ladder is finite and every
/// `degraded()` step strictly increases the rank, so `execute_from` can
/// attempt at most `LADDER.len()` strategies from any start.
#[test]
fn property_escalation_terminates_from_any_start() {
    use hashjoin_gpu::workload::rng::{Rng, SmallRng};
    for case in 0..12u64 {
        let mut p = SmallRng::seed_from_u64(0x7E21 ^ case.wrapping_mul(0x9E37_79B9));
        let r_tuples = p.gen_range_u64(500, 4999) as usize;
        let s_tuples = p.gen_range_u64(500, 9999) as usize;
        let scale_pow = p.gen_range_u64(0, 16) as u32;
        let (r, s) = canonical_pair(r_tuples, s_tuples, p.next_u64());
        let device = DeviceSpec::gtx1080().scaled_capacity(1u64 << scale_pow);
        let engine = HcjEngine::new(config_for(device, r_tuples));
        // The ladder itself strictly descends...
        for strategy in PlannedStrategy::LADDER {
            if let Some(next) = strategy.degraded() {
                assert!(next.rank() > strategy.rank(), "case {case}");
            }
        }
        // ...and execution from every rung returns (Ok here: these
        // capacities keep the co-processing floor viable).
        for start in PlannedStrategy::LADDER {
            let (landed, out) = engine
                .execute_from(start, &r, &s)
                .unwrap_or_else(|e| panic!("case {case} from {start}: {e}"));
            assert!(landed.rank() >= start.rank(), "case {case}: no upward escalation");
            assert_eq!(out.check, JoinCheck::compute(&r, &s), "case {case} from {start}");
        }
    }
}

/// Property: whatever the planner picks, the picked strategy's own
/// footprint estimate fits device capacity (co-processing, the floor, is
/// always admissible by construction).
#[test]
fn property_chosen_estimate_fits_capacity() {
    use hashjoin_gpu::workload::rng::{Rng, SmallRng};
    for case in 0..64u64 {
        let mut p = SmallRng::seed_from_u64(0xF17 ^ case.wrapping_mul(0x9E37_79B9));
        let r_tuples = p.gen_range_u64(100, 49_999) as usize;
        let s_tuples = p.gen_range_u64(100, 99_999) as usize;
        let scale_pow = p.gen_range_u64(0, 24) as u32;
        let (r, s) = canonical_pair(r_tuples, s_tuples, p.next_u64());
        let device = DeviceSpec::gtx1080().scaled_capacity(1u64 << scale_pow);
        let capacity = device.device_mem_bytes;
        let engine = HcjEngine::new(config_for(device, r_tuples));
        let plan = engine.plan(&r, &s);
        assert!(
            engine.footprint_estimate(plan, &r, &s) <= capacity,
            "case {case}: {plan} estimated over capacity (2^{scale_pow})"
        );
    }
}

/// Property: monotonicity. Growing `device_mem_bytes` (shrinking the
/// scale divisor) never moves `plan()` to a *more* degraded strategy —
/// more memory can only help.
#[test]
fn property_plan_is_monotone_in_capacity() {
    use hashjoin_gpu::workload::rng::{Rng, SmallRng};
    for case in 0..24u64 {
        let mut p = SmallRng::seed_from_u64(0x0A07 ^ case.wrapping_mul(0x9E37_79B9));
        let r_tuples = p.gen_range_u64(100, 79_999) as usize;
        let s_tuples = p.gen_range_u64(100, 159_999) as usize;
        let (r, s) = canonical_pair(r_tuples, s_tuples, p.next_u64());
        let mut last_rank: Option<usize> = None;
        // Walk capacity upward: 8 GB / 2^20 ... 8 GB.
        for scale_pow in (0..=20u32).rev() {
            let device = DeviceSpec::gtx1080().scaled_capacity(1u64 << scale_pow);
            let engine = HcjEngine::new(config_for(device, r_tuples));
            let rank = engine.plan(&r, &s).rank();
            if let Some(prev) = last_rank {
                assert!(
                    rank <= prev,
                    "case {case}: capacity grew (2^{}→2^{scale_pow} divisor) but the plan \
                     degraded from rank {prev} to {rank}",
                    scale_pow + 1
                );
            }
            last_rank = Some(rank);
        }
        // And at full capacity the paper's device always runs resident
        // workloads this small.
        assert_eq!(last_rank, Some(PlannedStrategy::GpuResident.rank()), "case {case}");
    }
}

#[test]
fn planner_swaps_sides_so_the_smaller_relation_builds() {
    let (big, small) = canonical_pair(60_000, 6_000, 2007);
    let engine = HcjEngine::new(config_for(DeviceSpec::gtx1080(), 6_000));
    let (_, out) = engine.execute(&big, &small).unwrap();
    // canonical_pair makes `small`'s keys a subset of `big`'s domain...
    // actually it generates small as FK into big's keyspace; regardless,
    // the join result must match the oracle with either orientation.
    assert_eq!(out.check, JoinCheck::compute(&big, &small));
}
