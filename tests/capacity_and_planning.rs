//! Integration: device-memory pressure drives strategy selection — the
//! planner's whole reason to exist (paper §IV: "a one-size-fits-all
//! approach is not suitable for GPU joins").

use hashjoin_gpu::prelude::*;

fn config_for(device: DeviceSpec, build_tuples: usize) -> GpuJoinConfig {
    GpuJoinConfig::paper_default(device).with_radix_bits(10).with_tuned_buckets(build_tuples / 8)
}

#[test]
fn shrinking_device_walks_through_all_three_strategies() {
    let (r, s) = canonical_pair(40_000, 160_000, 2001);
    // Total input 1.6 MB. Walk capacity from plenty down to almost none.
    let mut seen = Vec::new();
    for scale_pow in [0u32, 13, 15] {
        let device = DeviceSpec::gtx1080().scaled_capacity(1 << scale_pow);
        let engine = HcjEngine::new(config_for(device, r.len()));
        let (strategy, out) = engine.execute(&r, &s);
        assert_eq!(out.check, JoinCheck::compute(&r, &s), "{strategy:?}");
        seen.push(strategy);
    }
    assert_eq!(
        seen,
        vec![
            PlannedStrategy::GpuResident,
            PlannedStrategy::StreamedProbe,
            PlannedStrategy::CoProcessing
        ],
        "capacity pressure must escalate the strategy"
    );
}

#[test]
fn gpu_resident_join_reports_oom_rather_than_lying() {
    let device = DeviceSpec::gtx1080().scaled_capacity(1 << 16); // 128 KB
    let (r, s) = canonical_pair(40_000, 40_000, 2002); // 640 KB
    let err = GpuPartitionedJoin::new(config_for(device, r.len())).execute(&r, &s).unwrap_err();
    assert!(err.requested > 0);
    assert!(err.capacity <= 128 * 1024);
}

#[test]
fn device_memory_is_returned_after_execution() {
    let device = DeviceSpec::gtx1080();
    let config = config_for(device, 10_000);
    let (r, s) = canonical_pair(10_000, 10_000, 2003);
    let join = GpuPartitionedJoin::new(config);
    // Two consecutive executions: if reservations leaked, the second
    // would see less capacity. (The Gpu is constructed inside execute(),
    // so the stronger check is simply that repeated runs succeed and
    // agree.)
    let a = join.execute(&r, &s).unwrap();
    let b = join.execute(&r, &s).unwrap();
    assert_eq!(a.check, b.check);
    assert_eq!(a.total_seconds(), b.total_seconds(), "simulation must be deterministic");
}

#[test]
fn streamed_probe_requires_only_the_build_side_resident() {
    // Device fits R (+pools +buffers) but not R+S.
    let device = DeviceSpec::gtx1080().scaled_capacity(1 << 11); // 4 MB
    let (r, s) = canonical_pair(50_000, 1_000_000, 2004); // R 400 KB, S 8 MB
    let out = StreamedProbeJoin::new(StreamedProbeConfig::paper_default(config_for(
        device.clone(),
        r.len(),
    )))
    .execute(&r, &s)
    .unwrap();
    assert_eq!(out.check, JoinCheck::compute(&r, &s));
    // And the in-GPU strategy must refuse the same workload.
    assert!(GpuPartitionedJoin::new(config_for(device, r.len())).execute(&r, &s).is_err());
}

#[test]
fn coprocessing_works_with_tiny_devices() {
    // 64 KB of device memory: working sets become single partitions.
    let device = DeviceSpec::gtx1080().scaled_capacity(1 << 17);
    let (r, s) = canonical_pair(30_000, 30_000, 2005);
    let config = GpuJoinConfig::paper_default(device).with_radix_bits(12).with_tuned_buckets(64);
    let out =
        CoProcessingJoin::new(CoProcessingConfig::paper_default(config)).execute(&r, &s).unwrap();
    assert_eq!(out.check, JoinCheck::compute(&r, &s));
}

#[test]
fn engine_models_fail_where_the_paper_says_they_fail() {
    use hashjoin_gpu::engines::{CoGaDbLike, DbmsXLike, EngineError};
    // Working sets beyond the device: CoGaDB cannot run at all; DBMS-X
    // past its caching limit falls back to CPU-resident execution (slow
    // but functional); DBMS-X *within* its caching limit but beyond the
    // allocator errors out (the paper's SF100-orders failure).
    let device = DeviceSpec::gtx1080().scaled_capacity(1 << 12); // 2 MB
    let (r, s) = canonical_pair(100_000, 400_000, 2006); // 4 MB total
    let cog = CoGaDbLike::new(device.clone()).execute(&r, &s);
    assert!(matches!(cog, Err(EngineError::WorkingSetTooLarge { .. })));
    let dx_resident_attempt = DbmsXLike::new(device.clone()).execute(&r, &s);
    assert!(matches!(dx_resident_attempt, Err(EngineError::WorkingSetTooLarge { .. })));
    let dx = DbmsXLike::new(device).with_cache_limit(50_000).execute(&r, &s).unwrap();
    assert_eq!(dx.check, JoinCheck::compute(&r, &s));
}

#[test]
fn planner_swaps_sides_so_the_smaller_relation_builds() {
    let (big, small) = canonical_pair(60_000, 6_000, 2007);
    let engine = HcjEngine::new(config_for(DeviceSpec::gtx1080(), 6_000));
    let (_, out) = engine.execute(&big, &small);
    // canonical_pair makes `small`'s keys a subset of `big`'s domain...
    // actually it generates small as FK into big's keyspace; regardless,
    // the join result must match the oracle with either orientation.
    assert_eq!(out.check, JoinCheck::compute(&big, &small));
}
