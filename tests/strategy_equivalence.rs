//! Integration: every join strategy in the workspace computes the same
//! join as the reference oracle, across workload classes, output modes and
//! configurations — including seeded randomized cross-validation sweeps.

use hashjoin_gpu::core::nonpart::{NonPartitionedJoin, NonPartitionedKind};
use hashjoin_gpu::core::uva_exec::{run_with_mechanism, TransferMechanism};
use hashjoin_gpu::prelude::*;
use hashjoin_gpu::workload::rng::{Rng, SmallRng};

fn gpu_config(bits: u32, tuples: usize) -> GpuJoinConfig {
    GpuJoinConfig::paper_default(DeviceSpec::gtx1080())
        .with_radix_bits(bits)
        .with_tuned_buckets(tuples)
}

fn workloads() -> Vec<(&'static str, Relation, Relation)> {
    let n = 30_000;
    let (u_r, u_s) = canonical_pair(n, 2 * n, 1001);
    let zr = RelationSpec::zipf(n, 4096, 0.9, 1002).generate();
    let zs = RelationSpec::zipf(2 * n, 4096, 0.9, 1003).generate();
    let rep = RelationSpec {
        tuples: n,
        distribution: KeyDistribution::Replicated { replicas: 4 },
        payload_width: 4,
        seed: 1004,
    }
    .generate();
    let rep_probe = RelationSpec {
        tuples: n,
        distribution: KeyDistribution::UniformFk { distinct: (n / 4) as u64 },
        payload_width: 4,
        seed: 1005,
    }
    .generate();
    vec![
        ("unique-uniform", u_r, u_s),
        ("identical-zipf-0.9", zr, zs),
        ("replicated-4x", rep, rep_probe),
    ]
}

#[test]
fn gpu_partitioned_join_agrees_with_oracle_on_all_workloads() {
    for (name, r, s) in workloads() {
        let want = JoinCheck::compute(&r, &s);
        for probe in [ProbeKind::HashJoin, ProbeKind::NestedLoop, ProbeKind::DeviceHashJoin] {
            let out = GpuPartitionedJoin::new(gpu_config(8, r.len()).with_probe(probe))
                .execute(&r, &s)
                .unwrap();
            assert_eq!(out.check, want, "{name} with {probe:?}");
        }
    }
}

#[test]
fn all_strategies_agree_with_each_other() {
    for (name, r, s) in workloads() {
        let want = JoinCheck::compute(&r, &s);
        let resident = GpuPartitionedJoin::new(gpu_config(8, r.len())).execute(&r, &s).unwrap();
        let streamed =
            StreamedProbeJoin::new(StreamedProbeConfig::paper_default(gpu_config(8, r.len())))
                .execute(&r, &s)
                .unwrap();
        let scaled = DeviceSpec::gtx1080().scaled_capacity(1 << 12);
        let coproc = CoProcessingJoin::new(CoProcessingConfig::paper_default(
            GpuJoinConfig::paper_default(scaled)
                .with_radix_bits(10)
                .with_tuned_buckets(r.len() / 16),
        ))
        .execute(&r, &s)
        .unwrap();
        let pro = ProJoin::paper_default().execute(&r, &s);
        let npo = NpoJoin::paper_default().execute(&r, &s);
        let nonpart = NonPartitionedJoin::new(NonPartitionedKind::Chaining, OutputMode::Aggregate)
            .execute(&r, &s);
        for (algo, check) in [
            ("gpu-resident", resident.check),
            ("streamed-probe", streamed.check),
            ("co-processing", coproc.check),
            ("cpu-pro", pro.check),
            ("cpu-npo", npo.check),
            ("non-partitioned", nonpart.check),
        ] {
            assert_eq!(check, want, "{algo} on {name}");
        }
    }
}

#[test]
fn materialized_rows_match_reference_join_rows() {
    let (r, s) = canonical_pair(8_000, 24_000, 1010);
    let mut want = reference_join(&r, &s);
    want.sort_unstable();

    let resident =
        GpuPartitionedJoin::new(gpu_config(7, r.len()).with_output(OutputMode::Materialize))
            .execute(&r, &s)
            .unwrap();
    let mut got = resident.rows.unwrap();
    got.sort_unstable();
    assert_eq!(got, want, "gpu-resident rows");

    let streamed = StreamedProbeJoin::new(StreamedProbeConfig::paper_default(
        gpu_config(7, r.len()).with_output(OutputMode::Materialize),
    ))
    .execute(&r, &s)
    .unwrap();
    let mut got = streamed.rows.unwrap();
    got.sort_unstable();
    assert_eq!(got, want, "streamed-probe rows");

    let scaled = DeviceSpec::gtx1080().scaled_capacity(1 << 13);
    let coproc = CoProcessingJoin::new(CoProcessingConfig::paper_default(
        GpuJoinConfig::paper_default(scaled)
            .with_radix_bits(10)
            .with_tuned_buckets(512)
            .with_output(OutputMode::Materialize),
    ))
    .execute(&r, &s)
    .unwrap();
    let mut got = coproc.rows.unwrap();
    got.sort_unstable();
    assert_eq!(got, want, "co-processing rows");
}

#[test]
fn transfer_mechanisms_agree_with_oracle() {
    let (r, s) = canonical_pair(20_000, 20_000, 1011);
    let want = JoinCheck::compute(&r, &s);
    let config = gpu_config(8, r.len());
    for m in [
        TransferMechanism::GpuResident,
        TransferMechanism::UvaLoad,
        TransferMechanism::UvaPartition,
        TransferMechanism::UvaJoin,
        TransferMechanism::UnifiedLoad,
    ] {
        assert_eq!(run_with_mechanism(&config, &r, &s, m).check, want, "{m:?}");
    }
}

#[test]
fn probe_misses_and_empty_partitions_are_handled() {
    // Build keys 1..=1000, probe keys 2000..3000: zero matches, and many
    // co-partitions are empty on one side.
    let r = RelationSpec::unique(1000, 1012).generate();
    let s: Relation = (2000..3000u32).map(|k| Tuple { key: k, payload: k }).collect();
    let out = GpuPartitionedJoin::new(gpu_config(6, 1000)).execute(&r, &s).unwrap();
    assert_eq!(out.check.matches, 0);
    let pro = ProJoin::paper_default().execute(&r, &s);
    assert_eq!(pro.check.matches, 0);
}

/// Randomized cross-validation: random sizes, domains and skew; the GPU
/// partitioned join, the CPU baselines and the oracle must agree. Cases
/// are seeded by index, so a failure replays exactly.
#[test]
fn random_workloads_all_agree() {
    for case in 0..16u64 {
        let mut p = SmallRng::seed_from_u64(0x57A7 ^ case.wrapping_mul(0x9E37_79B9));
        let r_tuples = p.gen_range_u64(64, 3999) as usize;
        let s_tuples = p.gen_range_u64(64, 7999) as usize;
        let distinct = p.gen_range_u64(16, 1999);
        let theta = p.gen_f64() * 1.2;
        let bits = p.gen_range_u64(2, 9) as u32;
        let seed = p.next_u64();
        let r = RelationSpec::zipf(r_tuples, distinct, theta, seed).generate();
        let s = RelationSpec::zipf(s_tuples, distinct, theta, seed ^ 0xABCD).generate();
        let want = JoinCheck::compute(&r, &s);
        let out = GpuPartitionedJoin::new(gpu_config(bits, r_tuples)).execute(&r, &s).unwrap();
        assert_eq!(out.check, want, "case {case}: gpu-resident");
        let pro = ProJoin::paper_default().execute(&r, &s);
        assert_eq!(pro.check, want, "case {case}: cpu-pro");
        let npo = NpoJoin::paper_default().execute(&r, &s);
        assert_eq!(npo.check, want, "case {case}: cpu-npo");
    }
}

/// The engine facade picks some strategy and is always correct, whatever
/// the device capacity.
#[test]
fn facade_correct_at_any_capacity() {
    for case in 0..16u64 {
        let mut p = SmallRng::seed_from_u64(0xFACADE ^ case.wrapping_mul(0x9E37_79B9));
        let scale_pow = p.gen_range_u64(0, 17) as u32;
        let r_tuples = p.gen_range_u64(500, 4999) as usize;
        let s_tuples = p.gen_range_u64(500, 9999) as usize;
        let device = DeviceSpec::gtx1080().scaled_capacity(1u64 << scale_pow);
        let (r, s) = canonical_pair(r_tuples, s_tuples, p.next_u64());
        let config = GpuJoinConfig::paper_default(device)
            .with_radix_bits(9)
            .with_tuned_buckets(r_tuples / 8);
        let engine = HcjEngine::new(config);
        let (_, out) = engine.execute(&r, &s).unwrap();
        assert_eq!(out.check, JoinCheck::compute(&r, &s), "case {case}, capacity 2^{scale_pow}");
    }
}
