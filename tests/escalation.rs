//! Integration: the facade's runtime escalation loop — what happens when
//! the planner's estimate is wrong and the chosen strategy reports
//! out-of-device-memory *during* execution (paper §V-C: the system
//! "reverts into the streaming variant" when residency fails).
//!
//! The planner's estimate is deliberately perturbable: `HcjEngine`
//! exposes `pool_factor`, so a test can make `plan()` optimistic (choose
//! GPU-resident) while the strategies' real reservations still fail,
//! exercising every edge of the degradation ladder.

use hashjoin_gpu::prelude::*;

fn engine_with_pool_factor(scale: u64, tuples: usize, pool_factor: f64) -> HcjEngine {
    let device = DeviceSpec::gtx1080().scaled_capacity(scale);
    let mut engine = HcjEngine::new(
        GpuJoinConfig::paper_default(device).with_radix_bits(10).with_tuned_buckets(tuples / 8),
    );
    engine.pool_factor = pool_factor;
    engine
}

/// Regression for the old `.expect()` panic in the co-processing arm: on
/// an absurdly tiny device even the co-processing floor cannot reserve
/// its chunk buffers, and the engine must report the error, not panic.
#[test]
fn coprocessing_floor_oom_propagates_instead_of_panicking() {
    // 8 GB / 2^30 = 8 bytes of device memory: nothing can reserve.
    let engine = engine_with_pool_factor(1 << 30, 4_000, 1.3);
    let (r, s) = canonical_pair(4_000, 8_000, 3001);
    let err = engine.execute(&r, &s).unwrap_err();
    let JoinError::OutOfDeviceMemory(oom) = &err else {
        panic!("expected a typed OOM, got {err:?}");
    };
    assert!(oom.requested > oom.capacity, "{err}");
    assert_eq!(oom.capacity, 8);
    // OOM is transient: the service's admission loop may retry it later.
    assert!(err.is_transient());
    // The Display form is the service layer's log line; keep it stable.
    assert!(err.to_string().contains("out of device memory"));
}

/// Edge 1 of the ladder: plan says GPU-resident, the resident join OOMs
/// at run time, and the engine lands on the streamed probe with a correct
/// result.
#[test]
fn optimistic_resident_plan_escalates_to_streamed() {
    // Device 2 MB. R 80 KB + S 3.2 MB: residency is impossible (inputs
    // alone exceed capacity), but a pool_factor of 0.05 estimates the
    // resident footprint at ~164 KB, so the planner picks GpuResident.
    let engine = engine_with_pool_factor(1 << 12, 10_000, 0.05);
    let (r, s) = canonical_pair(10_000, 400_000, 3002);
    assert_eq!(engine.plan(&r, &s), PlannedStrategy::GpuResident);
    let (strategy, out) = engine.execute(&r, &s).unwrap();
    assert_eq!(strategy, PlannedStrategy::StreamedProbe, "must degrade exactly one rung");
    assert_eq!(out.check, JoinCheck::compute(&r, &s));
}

/// Edge 2: plan says GPU-resident, both the resident join *and* the
/// streamed probe OOM at run time, and the engine walks the whole ladder
/// down to co-processing — still correct.
#[test]
fn optimistic_resident_plan_escalates_to_coprocessing() {
    // Device 256 KB. Both sides 1.6 MB: the build side alone dwarfs the
    // device, so residency and streaming both fail; co-processing chunks
    // through. pool_factor 0.01 keeps the plan optimistic (~32 KB).
    let engine = engine_with_pool_factor(1 << 15, 200_000, 0.01);
    let (r, s) = canonical_pair(200_000, 200_000, 3003);
    assert_eq!(engine.plan(&r, &s), PlannedStrategy::GpuResident);
    let (strategy, out) = engine.execute(&r, &s).unwrap();
    assert_eq!(strategy, PlannedStrategy::CoProcessing, "must walk both rungs");
    assert_eq!(out.check, JoinCheck::compute(&r, &s));
}

/// Edge 3: plan says streamed probe, the stream's build-side residency
/// OOMs at run time, and the engine lands on co-processing.
#[test]
fn streamed_plan_escalates_to_coprocessing() {
    // Device 256 KB, build side 128 KB, probe side 3.2 MB. pool_factor
    // 0.6 estimates the streamed footprint at ~205 KB (fits) and the
    // resident footprint at ~2 MB (does not), so the plan starts at
    // StreamedProbe — but the build's real partitions + chunk buffers
    // need ~384 KB, the reservation fails, and co-processing takes over.
    let engine = engine_with_pool_factor(1 << 15, 16_000, 0.6);
    let (r, s) = canonical_pair(16_000, 400_000, 3004);
    assert_eq!(engine.plan(&r, &s), PlannedStrategy::StreamedProbe);
    let (strategy, out) = engine.execute(&r, &s).unwrap();
    assert_eq!(strategy, PlannedStrategy::CoProcessing);
    assert_eq!(out.check, JoinCheck::compute(&r, &s));
}

/// `execute_from` lets a caller (the service's admission control) start
/// anywhere on the ladder; starting below the plan must not re-escalate
/// upward.
#[test]
fn execute_from_respects_a_degraded_start() {
    let device = DeviceSpec::gtx1080(); // full 8 GB: everything fits
    let engine = HcjEngine::new(
        GpuJoinConfig::paper_default(device).with_radix_bits(8).with_tuned_buckets(2_000),
    );
    let (r, s) = canonical_pair(8_000, 16_000, 3005);
    assert_eq!(engine.plan(&r, &s), PlannedStrategy::GpuResident);
    for start in PlannedStrategy::LADDER {
        let (strategy, out) = engine.execute_from(start, &r, &s).unwrap();
        assert_eq!(strategy, start, "an admissible start must run as-is");
        assert_eq!(out.check, JoinCheck::compute(&r, &s), "start {start}");
    }
}
