//! Differential suite for the query-DAG execution layer: multi-join
//! chain and star plans served end to end, checked op by op against the
//! composed CPU plan oracle, across uniform/skewed dimension popularity,
//! cache on/off, worker counts and an armed fault plan.

use hashjoin_gpu::gpu::CounterRollup;
use hashjoin_gpu::prelude::*;

/// Service in the serve-binary regime, with enough headroom that plan
/// envelopes admit (plans reserve a whole-join footprint at once).
fn plan_service(capacity_div: u64, cache: bool) -> JoinService {
    let device = DeviceSpec::gtx1080().scaled_capacity(capacity_div);
    let engine = HcjEngine::new(
        GpuJoinConfig::paper_default(device).with_radix_bits(8).with_tuned_buckets(8_000),
    );
    let cache_config = cache.then(BuildCacheConfig::default);
    JoinService::new(engine, ServiceConfig::default().with_cache(cache_config))
}

fn chaos_service(capacity_div: u64, cache: bool, fault_seed: u64) -> JoinService {
    let device = DeviceSpec::gtx1080().scaled_capacity(capacity_div);
    let engine = HcjEngine::new(
        GpuJoinConfig::paper_default(device)
            .with_radix_bits(8)
            .with_tuned_buckets(8_000)
            .with_faults(if fault_seed == 0 {
                FaultConfig::disabled(0)
            } else {
                FaultConfig::chaos(fault_seed)
            }),
    );
    let cache_config = cache.then(BuildCacheConfig::default);
    JoinService::new(engine, ServiceConfig::default().with_cache(cache_config))
}

/// `serve --plan` traffic: both shapes, uniform (theta 0) and skewed
/// (theta 1) dimension popularity.
fn plan_traffic(shape: PlanShape, theta: f64) -> Vec<ClientSpec> {
    plan_workload(shape, 3, 3, 1_200, 8, theta, 10, 13)
}

#[test]
fn chain_and_star_plans_match_the_composed_oracle_op_by_op() {
    let catalog = BuildCatalog::dimension_tables(5, 1_500, 21);
    for plan in
        [chain_plan(&catalog, &[0, 1, 2], 5_000, 17), star_plan(&catalog, &[1, 3, 4], 5_000, 17)]
    {
        let oracle = plan_oracle(&plan);
        let workload = vec![ClientSpec { requests: vec![plan.clone().into()] }];
        let report = plan_service(1 << 8, false).run(&workload);
        let summary = report.summary();
        assert_eq!(report.completed(), 1, "{summary}");
        assert_eq!(report.checks_passed(), 1, "{summary}");
        assert_eq!(report.plan_requests(), 1, "{summary}");
        let m = &report.requests[0];
        assert_eq!(m.matches, oracle.final_matches, "{summary}");
        assert_eq!(m.plan_ops.len(), plan.ops.len(), "one report per op:\n{summary}");
        for rep in &m.plan_ops {
            assert!(rep.check_ok, "op {} failed its oracle check:\n{summary}", rep.op);
            assert!(rep.error.is_none(), "op {}: {:?}", rep.op, rep.error);
            if let Some(check) = oracle.checks[rep.op] {
                assert_eq!(rep.kind, "join");
                assert_eq!(rep.matches, check.matches, "op {} matches:\n{summary}", rep.op);
                assert!(rep.executed.is_some(), "joins record a strategy");
            }
            assert!(rep.finish >= rep.start, "op {} spans forward in time", rep.op);
        }
        // Nothing held after completion: pins and cache entries released.
        assert_eq!(report.device_used_at_end, 0, "{summary}");
        assert!(report.invariant_violations.is_empty(), "{:?}", report.invariant_violations);
    }
}

#[test]
fn plan_traffic_is_oracle_correct_across_shape_skew_and_cache() {
    for shape in [PlanShape::Chain, PlanShape::Star] {
        for theta in [0.0, 1.0] {
            for cache in [false, true] {
                let workload = plan_traffic(shape, theta);
                let total: usize = workload.iter().map(|c| c.requests.len()).sum();
                let report = plan_service(1 << 13, cache).run(&workload);
                let summary = report.summary();
                let tag = format!("shape {shape:?} theta {theta} cache {cache}");
                assert_eq!(report.completed(), total, "{tag}:\n{summary}");
                assert_eq!(report.checks_passed(), total, "{tag}:\n{summary}");
                assert_eq!(report.plan_requests(), total, "{tag}:\n{summary}");
                assert!(report.plan_ops_executed() >= total * 4, "{tag}:\n{summary}");
                assert_eq!(report.device_used_at_end, 0, "{tag}:\n{summary}");
                assert!(
                    report.invariant_violations.is_empty(),
                    "{tag}: {:?}",
                    report.invariant_violations
                );
                if cache {
                    let c = report.cache.as_ref().expect("cache enabled");
                    assert!(c.counters.misses > 0, "{tag}: dims install:\n{summary}");
                } else {
                    assert!(report.cache.is_none(), "{tag}");
                }
            }
        }
    }
}

#[test]
fn chain_traffic_pins_or_spills_every_intermediate() {
    // Chain joins feed further joins, so every non-root join output is an
    // intermediate that is either pinned device-resident or spilled; the
    // two summary counters partition them.
    let workload = plan_traffic(PlanShape::Chain, 0.75);
    let report = plan_service(1 << 13, false).run(&workload);
    let summary = report.summary();
    let intermediates: usize = report
        .requests
        .iter()
        .flat_map(|m| &m.plan_ops)
        .filter(|rep| rep.feeds_join && rep.kind == "join")
        .count();
    assert!(intermediates > 0, "chains must produce intermediates:\n{summary}");
    assert_eq!(
        report.pinned_intermediates() + report.spilled_intermediates(),
        intermediates,
        "{summary}"
    );
    assert!(summary.contains("plan requests"), "{summary}");
    assert!(summary.contains("intermediates pinned"), "{summary}");
}

#[test]
fn plan_summaries_are_byte_identical_across_jobs() {
    for shape in [PlanShape::Chain, PlanShape::Star] {
        let workload = plan_traffic(shape, 1.0);
        let mut summaries: Vec<String> = Vec::new();
        for jobs in [1usize, 2, 4] {
            hashjoin_gpu::host::pool::set_jobs(jobs);
            summaries.push(plan_service(1 << 13, true).run(&workload).summary());
        }
        hashjoin_gpu::host::pool::set_jobs(1);
        assert_eq!(summaries[0], summaries[1], "{shape:?}: jobs 1 vs 2");
        assert_eq!(summaries[0], summaries[2], "{shape:?}: jobs 1 vs 4");
    }
}

#[test]
fn counter_rollups_are_identical_across_jobs_field_by_field() {
    // The perf gate pins counter totals, so they must not depend on the
    // worker count: every rollup field — per request and in aggregate —
    // is identical for jobs 1/2/4, both plan shapes, cache on.
    for shape in [PlanShape::Chain, PlanShape::Star] {
        let workload = plan_traffic(shape, 1.0);
        let mut runs: Vec<(CounterRollup, Vec<CounterRollup>)> = Vec::new();
        for jobs in [1usize, 2, 4] {
            hashjoin_gpu::host::pool::set_jobs(jobs);
            let report = plan_service(1 << 13, true).run(&workload);
            runs.push((
                report.counters_total(),
                report.requests.iter().map(|m| m.counters).collect(),
            ));
        }
        hashjoin_gpu::host::pool::set_jobs(1);
        let (base_total, base_requests) = &runs[0];
        for (run, jobs) in runs[1..].iter().zip([2usize, 4]) {
            let (total, requests) = run;
            let tag = |field: &str| format!("{shape:?}: {field}, jobs 1 vs {jobs}");
            assert_eq!(base_total.kernel_launches, total.kernel_launches, "{}", tag("launches"));
            assert_eq!(base_total.transfers, total.transfers, "{}", tag("transfers"));
            assert_eq!(base_total.device_bytes, total.device_bytes, "{}", tag("device_bytes"));
            assert_eq!(base_total.h2d_bytes, total.h2d_bytes, "{}", tag("h2d_bytes"));
            assert_eq!(base_total.d2h_bytes, total.d2h_bytes, "{}", tag("d2h_bytes"));
            assert_eq!(
                base_total.issued_transactions,
                total.issued_transactions,
                "{}",
                tag("issued_transactions")
            );
            assert_eq!(
                base_total.minimum_transactions,
                total.minimum_transactions,
                "{}",
                tag("minimum_transactions")
            );
            assert_eq!(base_total.cache.hits, total.cache.hits, "{}", tag("cache.hits"));
            assert_eq!(base_total.cache.misses, total.cache.misses, "{}", tag("cache.misses"));
            assert_eq!(
                base_total.cache.evictions,
                total.cache.evictions,
                "{}",
                tag("cache.evictions")
            );
            assert_eq!(base_total.cache.reclaims, total.cache.reclaims, "{}", tag("reclaims"));
            assert_eq!(
                base_total.cache.invalidations,
                total.cache.invalidations,
                "{}",
                tag("invalidations")
            );
            assert_eq!(
                base_total.cache.reclaimed_bytes,
                total.cache.reclaimed_bytes,
                "{}",
                tag("reclaimed_bytes")
            );
            // ...and per request, not just in aggregate (Eq covers every
            // field at once here; the aggregate asserts above localize
            // which field drifted when this fires).
            assert_eq!(base_requests, requests, "{}", tag("per-request rollups"));
        }
    }
}

#[test]
fn armed_but_zeroed_fault_layer_changes_no_plan_output() {
    let workload = plan_traffic(PlanShape::Chain, 1.0);
    let base = plan_service(1 << 13, true).run(&workload).summary();
    let armed = chaos_service(1 << 13, true, 0).run(&workload).summary();
    assert_eq!(base, armed, "chaos seed 0 must be a no-op for plans");
}

#[test]
fn chaos_plans_stay_accounted_correct_and_leak_free() {
    for shape in [PlanShape::Chain, PlanShape::Star] {
        let workload = plan_traffic(shape, 1.0);
        let total: usize = workload.iter().map(|c| c.requests.len()).sum();
        let report = chaos_service(1 << 13, true, 23).run(&workload);
        let summary = report.summary();
        // Faults may fail individual plans, but every request resolves
        // typed, every finished plan is oracle-correct op by op, and no
        // reservation — pin, tenant or cache — leaks.
        let accounted = report.completed() + report.deadline_exceeded() + report.errored();
        assert_eq!(accounted, total, "{shape:?}:\n{summary}");
        assert_eq!(report.checks_passed(), report.completed(), "{shape:?}:\n{summary}");
        assert!(report.device_peak <= report.device_capacity, "{shape:?}:\n{summary}");
        assert_eq!(report.device_used_at_end, 0, "{shape:?}:\n{summary}");
        assert!(
            report.invariant_violations.is_empty(),
            "{shape:?}: {:?}",
            report.invariant_violations
        );
        // Determinism holds under chaos too.
        let again = chaos_service(1 << 13, true, 23).run(&workload).summary();
        assert_eq!(summary, again, "{shape:?}: chaos runs replay exactly");
    }
}
