//! Chaos soak of the multi-device join fleet (`hcj_engines::fleet`): the
//! PR's acceptance run, in-process. A seeded fault plan kills devices of
//! a 3-GPU fleet mid-run; the fleet must drain the dead devices, re-route
//! their admitted requests to survivors, keep every result
//! oracle-correct, leak nothing, and stay byte-identical across worker
//! counts.

use hashjoin_gpu::prelude::*;

/// The `serve --devices 3 --chaos 8 --cache` regime: 16 clients x 25
/// mixed requests against three 512 KB devices, the chaos fault plan
/// armed. Seed 8 is pinned because its fault draws provably kill devices
/// mid-run with requests still in flight on them (asserted below, so a
/// behaviour change that defuses the seed fails loudly instead of
/// quietly testing nothing).
fn chaos_fleet() -> FleetService {
    let device = DeviceSpec::gtx1080().scaled_capacity(1 << 14);
    let engine = HcjEngine::new(
        GpuJoinConfig::paper_default(device)
            .with_radix_bits(8)
            .with_tuned_buckets(8_000)
            .with_faults(FaultConfig::chaos(8)),
    );
    FleetService::new(
        engine,
        ServiceConfig::default().with_cache(Some(BuildCacheConfig::default())),
        FleetConfig::new(3),
    )
}

fn chaos_workload() -> Vec<ClientSpec> {
    mixed_workload(16, 25, 2_000, 1)
}

#[test]
fn fleet_survives_losing_devices_mid_run() {
    let workload = chaos_workload();
    let total: usize = workload.iter().map(|c| c.requests.len()).sum();
    assert_eq!(total, 400);
    let report = chaos_fleet().run(&workload);
    let summary = report.summary();
    let fleet = report.fleet.as_ref().expect("fleet runs attach a rollup");

    // The seed really kills hardware mid-run: at least one of the three
    // devices ends Lost, with requests drained off it.
    assert!(fleet.lost() >= 1, "seed 8 must kill at least one device:\n{summary}");
    assert!(fleet.lost() < 3, "at least one device survives:\n{summary}");
    assert!(fleet.drained >= 1, "the lost device had requests in flight:\n{summary}");
    assert!(
        fleet.rerouted >= 1,
        "at least one drained request re-admits on a survivor:\n{summary}"
    );

    // Every request is accounted for with a typed outcome, and every
    // request that finished produced the oracle join.
    let accounted = report.completed() + report.deadline_exceeded() + report.errored();
    assert_eq!(accounted, total, "no request vanishes:\n{summary}");
    assert_eq!(
        report.checks_passed(),
        report.completed(),
        "every finished request is oracle-correct:\n{summary}"
    );

    // At least one drained request completed on the device that adopted
    // it — failover produced a correct result, not just an error.
    let adopted_ok = report
        .requests
        .iter()
        .any(|m| m.rerouted > 0 && m.finished() && m.check_ok && m.device.is_some());
    assert!(adopted_ok, "a re-routed request completes on its adopter:\n{summary}");

    // Zero leaks, audited as typed invariant entries (never panics):
    // lost devices account zero bytes after their drain, the fleet never
    // exceeds its capacity, and the run ends with nothing reserved.
    assert!(
        report.invariant_violations.is_empty(),
        "leak/accounting audit is clean: {:?}",
        report.invariant_violations
    );
    assert_eq!(report.device_used_at_end, 0, "no reservation survives the run:\n{summary}");
    for d in &fleet.devices {
        assert_eq!(d.used_at_end, 0, "device {} leaks {} B:\n{summary}", d.id, d.used_at_end);
        assert!(d.peak_bytes <= d.capacity, "device {} over-reserved:\n{summary}", d.id);
        if d.health == DeviceHealth::Lost {
            assert!(!d.transitions.is_empty(), "a lost device records its transition:\n{summary}");
        }
    }

    // The rollup's books balance against the per-request metrics.
    let completed_on_devices: u64 = fleet.devices.iter().map(|d| d.completed).sum();
    let device_completions =
        report.requests.iter().filter(|m| m.finished() && m.device.is_some()).count() as u64;
    assert_eq!(completed_on_devices, device_completions, "completion books balance:\n{summary}");
    let adopted: u64 = fleet.devices.iter().map(|d| d.adopted).sum();
    assert_eq!(adopted, fleet.rerouted, "every re-route has an adopter:\n{summary}");
}

#[test]
fn fleet_chaos_summary_is_byte_identical_across_runs_and_jobs() {
    let workload = chaos_workload();
    let mut summaries: Vec<String> = Vec::new();
    for jobs in [1usize, 2, 4, 4] {
        hashjoin_gpu::host::pool::set_jobs(jobs);
        summaries.push(chaos_fleet().run(&workload).summary());
    }
    hashjoin_gpu::host::pool::set_jobs(1);
    assert_eq!(summaries[0], summaries[1], "jobs 1 vs 2: identical");
    assert_eq!(summaries[0], summaries[2], "jobs 1 vs 4: identical");
    assert_eq!(summaries[2], summaries[3], "same seed, same jobs: identical");
}

#[test]
fn armed_but_disabled_faults_match_the_unfaulted_fleet() {
    // `--chaos 0`: the fault layer is compiled in and consulted but every
    // probability is zero. The summary must be byte-identical to a fleet
    // run with no fault layer at all.
    let workload = chaos_workload();
    let device = DeviceSpec::gtx1080().scaled_capacity(1 << 14);
    let base = GpuJoinConfig::paper_default(device).with_radix_bits(8).with_tuned_buckets(8_000);
    let plain = FleetService::new(
        HcjEngine::new(base.clone()),
        ServiceConfig::default(),
        FleetConfig::new(3),
    )
    .run(&workload);
    let armed = FleetService::new(
        HcjEngine::new(base.with_faults(FaultConfig::disabled(0))),
        ServiceConfig::default(),
        FleetConfig::new(3),
    )
    .run(&workload);
    assert_eq!(plain.summary(), armed.summary(), "disabled faults are a no-op");
    assert_eq!(plain.completed(), 400);
    assert_eq!(plain.checks_passed(), 400);
    assert!(plain.fleet.as_ref().is_some_and(|f| f.lost() == 0));
}

#[test]
fn unfaulted_fleet_spreads_tenants_and_completes_everything() {
    let workload = chaos_workload();
    let device = DeviceSpec::gtx1080().scaled_capacity(1 << 14);
    let engine = HcjEngine::new(
        GpuJoinConfig::paper_default(device).with_radix_bits(8).with_tuned_buckets(8_000),
    );
    let report =
        FleetService::new(engine, ServiceConfig::default(), FleetConfig::new(3)).run(&workload);
    let summary = report.summary();
    assert_eq!(report.completed(), 400, "everything completes:\n{summary}");
    assert_eq!(report.checks_passed(), 400, "everything oracle-correct:\n{summary}");
    let fleet = report.fleet.as_ref().expect("rollup present");
    // Consistent hashing spreads the 16 tenants: no device sits idle and
    // no device serves everyone.
    for d in &fleet.devices {
        assert!(d.admitted > 0, "device {} starved:\n{summary}", d.id);
        assert!((d.admitted as usize) < 400, "device {} hogged the fleet:\n{summary}", d.id);
        assert_eq!(d.health, DeviceHealth::Healthy, "no faults, no transitions:\n{summary}");
    }
    assert_eq!(fleet.drained, 0);
    assert_eq!(fleet.breaker_trips, 0);
    // Cache affinity precondition: a tenant's requests always land on the
    // same device unless pressure or failover moved them — with neither
    // here, each client maps to exactly one device.
    for c in 0..16 {
        let mut devices: Vec<_> = report
            .requests
            .iter()
            .filter(|m| m.client == c && m.device.is_some())
            .map(|m| m.device.unwrap())
            .collect();
        devices.sort_unstable();
        devices.dedup();
        assert!(
            devices.len() <= 1,
            "client {c} bounced across devices {devices:?} with no pressure:\n{summary}"
        );
    }
}
