//! Integration: the simulated hardware counters (`hcj_gpu::counters`) are
//! arithmetically sound, recomputable from first principles, deterministic,
//! and reproduce the paper's qualitative profiling claims (the coalescing
//! gap that motivates partitioning, and the shared-memory fit that makes
//! the SM-resident kernel fast).

use hashjoin_gpu::core::nonpart::{NonPartitionedJoin, NonPartitionedKind};
use hashjoin_gpu::gpu::counters::RANDOM_USEFUL_BYTES;
use hashjoin_gpu::gpu::SECTOR_BYTES;
use hashjoin_gpu::prelude::*;

fn device() -> DeviceSpec {
    DeviceSpec::gtx1080()
}

fn config(bits: u32, tuples: usize) -> GpuJoinConfig {
    GpuJoinConfig::paper_default(device()).with_radix_bits(bits).with_tuned_buckets(tuples)
}

fn resident_outcome(tuples: usize) -> hashjoin_gpu::core::JoinOutcome {
    let (r, s) = canonical_pair(tuples, tuples * 4, 7);
    GpuPartitionedJoin::new(config(8, tuples)).execute(&r, &s).expect("fits device memory")
}

/// Every kernel's derived counters obey their defining identities:
/// issued >= minimum transactions, coalescing efficiency in (0, 1],
/// device bytes = coalesced + one full sector per random/L2 access,
/// occupancy <= 1, achieved bandwidth <= the device's roofline.
#[test]
fn kernel_counters_recompute_from_first_principles() {
    let dev = device();
    let outcome = resident_outcome(64 * 1024);
    let counters = &outcome.counters;
    assert!(!counters.is_empty(), "a GPU join must record counters");

    for (label, k) in counters.kernels() {
        // Recompute transactions from the raw cost the model charged.
        let issued = k.cost.coalesced_bytes.div_ceil(SECTOR_BYTES)
            + k.cost.random_transactions
            + k.cost.l2_transactions;
        let useful = k.cost.coalesced_bytes
            + RANDOM_USEFUL_BYTES * (k.cost.random_transactions + k.cost.l2_transactions);
        assert_eq!(k.issued_transactions(), issued, "{label}: issued transactions");
        assert_eq!(k.minimum_transactions(), useful.div_ceil(SECTOR_BYTES), "{label}: minimum");
        assert!(
            k.issued_transactions() >= k.minimum_transactions(),
            "{label}: a kernel cannot beat the coalesced minimum"
        );
        let eff = k.coalescing_efficiency();
        assert!(eff > 0.0 && eff <= 1.0, "{label}: coalescing efficiency {eff} outside (0,1]");

        // Bus bytes: coalesced traffic plus a full sector per scattered access.
        let bus = k.cost.coalesced_bytes
            + SECTOR_BYTES * (k.cost.random_transactions + k.cost.l2_transactions);
        assert_eq!(k.device_bytes(), bus, "{label}: device bytes conservation");

        if let Some(occ) = k.occupancy {
            assert!(occ > 0.0 && occ <= 1.0, "{label}: occupancy {occ} outside (0,1]");
        }
        // Charged seconds already include non-memory roofline terms, so
        // achieved bandwidth can never exceed the device peak.
        assert!(
            k.achieved_bandwidth() <= dev.mem_bandwidth * (1.0 + 1e-9),
            "{label}: achieved bandwidth above the roofline"
        );
    }

    // The rollup is exactly the sum of its parts.
    let roll = counters.rollup();
    let issued_sum: u64 = counters.kernels().values().map(|k| k.issued_transactions()).sum();
    let device_sum: u64 = counters.kernels().values().map(|k| k.device_bytes()).sum();
    assert_eq!(roll.issued_transactions, issued_sum);
    assert_eq!(roll.device_bytes, device_sum);
    assert_eq!(roll.h2d_bytes, counters.h2d.bytes);
    assert_eq!(roll.d2h_bytes, counters.d2h.bytes);
}

/// PCIe counters conserve bytes: a streamed-probe join must ship the
/// build relation plus every probe chunk host-to-device, and every
/// recorded transfer's achieved bandwidth stays at or below the link
/// rate.
#[test]
fn transfer_counters_conserve_bytes() {
    let tuples = 64 * 1024;
    let (r, s) = canonical_pair(tuples, tuples * 4, 7);
    let outcome = StreamedProbeJoin::new(StreamedProbeConfig::paper_default(config(8, tuples)))
        .execute(&r, &s)
        .expect("build side fits device memory");
    let c = &outcome.counters;
    assert!(c.h2d.transfers > 0, "inputs must cross PCIe");
    assert!(
        c.h2d.bytes >= r.bytes() + s.bytes(),
        "h2d bytes {} cannot be less than the input relations {}",
        c.h2d.bytes,
        r.bytes() + s.bytes()
    );
    for dir in [&c.h2d, &c.d2h] {
        assert!(dir.pageable_bytes <= dir.bytes, "pageable subset of total");
        assert!(
            dir.achieved_bandwidth() <= device().pcie_bandwidth * (1.0 + 1e-9),
            "PCIe achieved bandwidth above link rate"
        );
    }
}

/// Paper claim (§III, Figs. 5–7): the non-partitioned chaining probe
/// scatters through a global hash table, so its device-memory accesses are
/// far from coalesced — the counter gap partitioning exists to close. The
/// partitioned join's kernels, probing SM-resident tables, stay near the
/// coalesced minimum.
#[test]
fn paper_claim_nonpartitioned_probe_coalescing_gap() {
    let tuples = 64 * 1024;
    let (r, s) = canonical_pair(tuples, tuples * 4, 7);
    let dev = device();

    let np = NonPartitionedJoin::new(NonPartitionedKind::Chaining, OutputMode::Aggregate)
        .execute(&r, &s);
    let np_counters = np.counters(&dev);
    let probe = np_counters.kernel("probe global table").expect("probe kernel recorded");
    let probe_eff = probe.coalescing_efficiency();

    let part = resident_outcome(tuples);
    let join = part.counters.kernel("join copartitions").expect("join kernel recorded");
    let join_eff = join.coalescing_efficiency();

    // The global-table probe wastes most of every random sector
    // (8 useful bytes of 32), while the partitioned join's device traffic
    // is dominated by sequential partition reads.
    assert!(probe_eff < 0.5, "non-partitioned probe should be badly coalesced, got {probe_eff}");
    assert!(
        join_eff > 0.9,
        "partitioned join should be near the coalesced minimum, got {join_eff}"
    );
    assert!(
        join_eff > 2.0 * probe_eff,
        "partitioning must widen the coalescing gap: {join_eff} vs {probe_eff}"
    );
}

/// Paper claim (§III-B, Fig. 5): the partitioned join keeps each
/// co-partition's hash table in shared memory — the recorded launch
/// reserves a non-zero slice that fits the per-block budget, and under
/// the paper's Fig. 5 block configuration (1024 threads, 2048-element
/// tables at full load, 256 buckets) the kernel's roofline bottleneck is
/// shared memory, not device memory.
#[test]
fn paper_claim_join_kernel_is_shared_memory_resident() {
    let tuples = 128 * 1024;
    let (r, s) = canonical_pair(tuples, tuples, 505);
    let mut cfg = GpuJoinConfig::paper_default(device());
    cfg.radix_bits = hashjoin_gpu::core::radix::bits_for_partition_size(tuples, 2048);
    cfg.smem_elements = 2048;
    cfg.hash_buckets = 256;
    cfg.join_block_threads = 1024;
    let outcome = GpuPartitionedJoin::new(cfg.with_tuned_buckets(tuples))
        .execute(&r, &s)
        .expect("fits device memory");
    let join = outcome.counters.kernel("join copartitions").expect("join kernel recorded");
    let smem = join.shape.shared_bytes_per_block;
    assert!(smem > 0, "the SM-resident kernel must reserve shared memory");
    assert!(
        smem <= device().shared_mem_per_block,
        "reserved {smem} B exceeds the {} B block budget",
        device().shared_mem_per_block
    );
    assert!(join.cost.shared_bytes > 0, "build+probe traffic must hit shared memory");
    assert_eq!(
        join.bottleneck, "shared-mem",
        "the paper's SM-resident kernel is bound by shared-memory bandwidth"
    );
}

/// Counters are deterministic by construction: identical runs produce
/// byte-identical profiles, and arming the fault layer with the all-zero
/// chaos control (seed 0) changes nothing.
#[test]
fn counters_byte_identical_across_runs_and_under_chaos_zero() {
    let a = resident_outcome(16 * 1024);
    let b = resident_outcome(16 * 1024);
    assert_eq!(a.counters.to_json(), b.counters.to_json());
    assert_eq!(a.counters.render_table(), b.counters.render_table());

    hashjoin_gpu::gpu::faults::set_ambient(Some(FaultConfig::disabled(0)));
    let c = resident_outcome(16 * 1024);
    hashjoin_gpu::gpu::faults::set_ambient(None);
    assert_eq!(
        a.counters.to_json(),
        c.counters.to_json(),
        "the chaos-0 control must not perturb counters"
    );
}
