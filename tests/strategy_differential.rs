//! Oracle-differential suite: every join strategy in the workspace ×
//! every skew class × payload widths, all validated against the reference
//! oracle (`hcj_workload::oracle`). Each cell's inputs derive from one
//! printed seed, so any mismatch replays with a one-line reproducer.
//!
//! Strategies covered (the full menu the engine facade and the service
//! can dispatch to):
//!
//! * GPU-resident partitioned join with all three probe kernels
//!   (shared-memory hash, device-memory hash, ballot nested-loop);
//! * streamed probe (build resident, probe chunks over PCIe);
//! * CPU–GPU co-processing (CPU pre-partitions, working sets beyond the
//!   device);
//! * the CPU baselines NPO and PRO;
//! * the non-partitioned GPU join.

use hashjoin_gpu::core::nonpart::{NonPartitionedJoin, NonPartitionedKind};
use hashjoin_gpu::prelude::*;

/// The skew grid the ISSUE mandates: uniform plus three zipf exponents.
const SKEWS: [(&str, f64); 4] =
    [("uniform", 0.0), ("zipf-0.25", 0.25), ("zipf-0.75", 0.75), ("zipf-1.0", 1.0)];

/// Payload widths: the narrow 8-byte tuple of the micro-benchmarks and a
/// wide tuple that stresses the cost model's byte accounting.
const WIDTHS: [u32; 2] = [4, 64];

/// One probe-side relation per (skew, width) cell over a unique build
/// side; the seed is derived from the cell so failures print it.
fn cell(skew: f64, width: u32, seed: u64) -> (Relation, Relation) {
    let r_tuples = 6_000;
    let s_tuples = 18_000;
    let r = RelationSpec::unique(r_tuples, seed).with_payload_width(width).generate();
    let s = RelationSpec {
        tuples: s_tuples,
        distribution: if skew == 0.0 {
            KeyDistribution::UniformFk { distinct: r_tuples as u64 }
        } else {
            KeyDistribution::Zipf { distinct: r_tuples as u64, theta: skew }
        },
        payload_width: width,
        seed: seed ^ 0x00DD_BA11,
    }
    .generate();
    (r, s)
}

fn gpu_config(tuples: usize) -> GpuJoinConfig {
    GpuJoinConfig::paper_default(DeviceSpec::gtx1080())
        .with_radix_bits(8)
        .with_tuned_buckets(tuples)
}

/// Run every strategy on one cell and compare each against the oracle.
fn differential(name: &str, skew: f64, width: u32) {
    let seed = 0xD1FF ^ (((skew * 100.0) as u64) << 8) ^ u64::from(width);
    let (r, s) = cell(skew, width, seed);
    let want = JoinCheck::compute(&r, &s);
    let reproduce = format!("cell {name} width {width}: seed {seed:#x}");

    for probe in [ProbeKind::HashJoin, ProbeKind::DeviceHashJoin, ProbeKind::NestedLoop] {
        let out = GpuPartitionedJoin::new(gpu_config(r.len()).with_probe(probe))
            .execute(&r, &s)
            .unwrap_or_else(|e| panic!("resident {probe:?} OOM ({reproduce}): {e}"));
        assert_eq!(out.check, want, "resident {probe:?} ({reproduce})");
    }

    let streamed = StreamedProbeJoin::new(StreamedProbeConfig::paper_default(gpu_config(r.len())))
        .execute(&r, &s)
        .unwrap_or_else(|e| panic!("streamed OOM ({reproduce}): {e}"));
    assert_eq!(streamed.check, want, "streamed-probe ({reproduce})");

    // Co-processing on a scaled-down device so its chunking really cuts.
    let scaled = DeviceSpec::gtx1080().scaled_capacity(1 << 13);
    let coproc = CoProcessingJoin::new(CoProcessingConfig::paper_default(
        GpuJoinConfig::paper_default(scaled).with_radix_bits(10).with_tuned_buckets(r.len() / 16),
    ))
    .execute(&r, &s)
    .unwrap_or_else(|e| panic!("co-processing OOM ({reproduce}): {e}"));
    assert_eq!(coproc.check, want, "co-processing ({reproduce})");

    let npo = NpoJoin::paper_default().execute(&r, &s);
    assert_eq!(npo.check, want, "cpu-npo ({reproduce})");
    let pro = ProJoin::paper_default().execute(&r, &s);
    assert_eq!(pro.check, want, "cpu-pro ({reproduce})");

    let nonpart = NonPartitionedJoin::new(NonPartitionedKind::Chaining, OutputMode::Aggregate)
        .execute(&r, &s);
    assert_eq!(nonpart.check, want, "non-partitioned ({reproduce})");

    // Materialized rows must also agree, not just the aggregates (one
    // strategy per cell keeps the suite fast; the resident join is the
    // one whose output layout is most intricate).
    let mat = GpuPartitionedJoin::new(gpu_config(r.len()).with_output(OutputMode::Materialize))
        .execute(&r, &s)
        .unwrap_or_else(|e| panic!("materialize OOM ({reproduce}): {e}"));
    let mut got = mat.rows.expect("materialize mode returns rows");
    got.sort_unstable();
    assert_eq!(got, reference_join(&r, &s), "materialized rows ({reproduce})");
}

// One #[test] per skew class: cells run (and fail) independently, and a
// full-suite run covers the whole strategy × skew × width grid.

#[test]
fn differential_uniform() {
    for width in WIDTHS {
        differential(SKEWS[0].0, SKEWS[0].1, width);
    }
}

#[test]
fn differential_zipf_025() {
    for width in WIDTHS {
        differential(SKEWS[1].0, SKEWS[1].1, width);
    }
}

#[test]
fn differential_zipf_075() {
    for width in WIDTHS {
        differential(SKEWS[2].0, SKEWS[2].1, width);
    }
}

#[test]
fn differential_zipf_100() {
    for width in WIDTHS {
        differential(SKEWS[3].0, SKEWS[3].1, width);
    }
}

/// The facade must agree with the oracle on every cell too (it adds the
/// planner and the escalation loop on top of the strategies above).
#[test]
fn differential_facade_over_all_cells() {
    for (name, skew) in SKEWS {
        for width in WIDTHS {
            let seed = 0xFACE ^ (((skew * 100.0) as u64) << 8) ^ u64::from(width);
            let (r, s) = cell(skew, width, seed);
            let engine = HcjEngine::new(gpu_config(r.len()));
            let (strategy, out) = engine.execute(&r, &s).unwrap_or_else(|e| {
                panic!("facade OOM (cell {name} width {width}, seed {seed:#x}): {e}")
            });
            assert_eq!(
                out.check,
                JoinCheck::compute(&r, &s),
                "facade via {strategy} (cell {name} width {width}, seed {seed:#x})"
            );
        }
    }
}
