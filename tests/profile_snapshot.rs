//! Golden snapshot of the nvprof-style `--profile` rendering: fig05's
//! rendered table — rows, notes, probes aside, and the per-kernel counter
//! profile block — must match the checked-in text byte for byte. The
//! profile block is the profiler's user-facing contract (column set,
//! alignment, derived metrics), so formatting drift fails loudly here
//! instead of silently reaching users.
//!
//! Regenerate after an intentional change with:
//!
//! ```text
//! cargo test -p hcj-bench --test profile_snapshot -- --ignored rewrite
//! ```

use hcj_bench::figures::fig05;
use hcj_bench::RunConfig;

const GOLDEN: &str = include_str!("golden/fig05_profile.txt");

fn cfg() -> RunConfig {
    RunConfig { scale: 64, quick: true, out_dir: None, trace_dir: None, profile: true }
}

fn rendered() -> String {
    fig05::run(&cfg()).render()
}

#[test]
fn fig05_profile_rendering_matches_the_golden_snapshot() {
    let got = rendered();
    assert!(
        got.contains("profile [fig05-hash]:"),
        "--profile must attach the counter table:\n{got}"
    );
    if got != GOLDEN {
        let diff_at = got
            .lines()
            .zip(GOLDEN.lines())
            .position(|(a, b)| a != b)
            .map(|i| {
                format!(
                    "first differing line {}:\n  got:    {:?}\n  golden: {:?}",
                    i + 1,
                    got.lines().nth(i).unwrap_or(""),
                    GOLDEN.lines().nth(i).unwrap_or("")
                )
            })
            .unwrap_or_else(|| "line counts differ".into());
        panic!(
            "fig05 --profile rendering drifted from tests/golden/fig05_profile.txt\n{diff_at}\n\
             if intentional, regenerate with:\n  cargo test -p hcj-bench --test \
             profile_snapshot -- --ignored rewrite"
        );
    }
}

/// Not a test: rewrites the golden in place (`-- --ignored rewrite`).
#[test]
#[ignore = "golden rewriter, run explicitly"]
fn rewrite() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden/fig05_profile.txt");
    std::fs::write(path, rendered()).unwrap();
    eprintln!("rewrote {path}");
}
