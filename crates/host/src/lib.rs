//! Host (CPU side) machine model.
//!
//! The paper's out-of-GPU co-processing strategy (§IV-B) lives or dies on
//! host details: the partitioning threads' aggregate throughput, the near
//! socket's memory bandwidth being shared between partitioning and the
//! GPU's DMA reads, and QPI congestion when DMA pulls data homed on the far
//! socket. This crate models a dual-socket machine matching the paper's
//! testbed (2 × 12-core Xeon E5-2650L v3, 256 GB) and provides task
//! helpers that charge CPU work to *both* a thread lane and the right
//! memory links, so interference emerges rather than being hard-coded.

#![warn(missing_docs)]

pub mod numa;
pub mod pool;
pub mod spec;
pub mod tasks;

pub use numa::{HostMachine, Socket};
pub use pool::{DisjointSlice, Pool};
pub use spec::HostSpec;
pub use tasks::{CpuTaskKind, CLASS_CPU_COMPUTE, CLASS_DMA_READ};
