//! Host machine parameters.

/// Parameters of the modeled dual-socket host.
#[derive(Clone, Debug, PartialEq)]
pub struct HostSpec {
    /// Human-readable machine name (testbed identifier in figure notes).
    pub name: &'static str,
    /// Socket count; the model covers the paper's dual-socket topology.
    pub sockets: u32,
    /// Physical cores per socket.
    pub cores_per_socket: u32,
    /// Hardware threads per core (the paper runs PRO/NPO on 48 threads of
    /// 24 cores).
    pub smt: u32,
    /// Host DRAM capacity in bytes (whole machine).
    pub dram_bytes: u64,
    /// Effective DRAM bandwidth per socket, bytes/second.
    pub socket_mem_bandwidth: f64,
    /// Effective QPI/UPI bandwidth between the sockets, per direction.
    pub qpi_bandwidth: f64,
    /// Total-rate multiplier applied to a socket's DRAM while traffic of
    /// different classes (partitioning vs. DMA reads) overlaps; models the
    /// throughput collapse the paper observed under intense multithreading
    /// (§IV-B).
    pub mem_contention_factor: f64,
    /// Same penalty on QPI (coherence traffic interfering with transfers;
    /// paper Fig. 16).
    pub qpi_contention_factor: f64,
    /// Fraction of the PCIe link rate a DMA engine achieves when reading
    /// across QPI even without contention: peer reads over the socket
    /// interconnect pipeline poorly (the standing reason the paper stages
    /// far-socket data, §IV-B).
    pub qpi_dma_efficiency: f64,
    /// Output throughput of one partitioning thread using software-managed
    /// buffers + non-temporal stores, bytes/second of *input consumed*.
    /// The paper reports ~40 GB/s with 16 threads → 2.5 GB/s per thread.
    pub per_thread_partition_bw: f64,
    /// DRAM traffic amplification of partitioning with non-temporal hints:
    /// read input + write output = 2x the input bytes.
    pub partition_mem_amplification: f64,
    /// Same without non-temporal hints (write-allocate reads the output
    /// cache lines first): 3x.
    pub partition_mem_amplification_no_nt: f64,
    /// memcpy throughput of one staging thread (far-socket → near-socket
    /// pinned buffer), bytes/second.
    pub per_thread_copy_bw: f64,
    /// Per-core share of the last-level cache, bytes (bounds PRO's
    /// cache-sized partitions).
    pub llc_bytes_per_core: u64,
    /// Data-TLB entries; bounds the per-pass fanout of CPU radix
    /// partitioning (Boncz et al.'s argument, paper §II-B).
    pub tlb_entries: u32,
    /// Single-thread hash-join build+probe throughput over a cache-resident
    /// partition, tuples/second (used by the CPU baselines' cost model).
    pub per_thread_join_tuples_per_s: f64,
    /// Single-thread probe throughput when the hash table misses cache on
    /// every lookup (NPO on large tables), tuples/second.
    pub per_thread_uncached_probe_tuples_per_s: f64,
}

impl HostSpec {
    /// The paper's testbed: 2 × 12-core Intel Xeon E5-2650L v3, 256 GB.
    pub fn dual_xeon_e5_2650l_v3() -> Self {
        HostSpec {
            name: "2x Xeon E5-2650L v3",
            sockets: 2,
            cores_per_socket: 12,
            smt: 2,
            dram_bytes: 256 * (1 << 30),
            socket_mem_bandwidth: 55.0e9,
            qpi_bandwidth: 19.2e9,
            mem_contention_factor: 0.8,
            qpi_contention_factor: 0.55,
            qpi_dma_efficiency: 0.6,
            per_thread_partition_bw: 2.5e9,
            partition_mem_amplification: 2.0,
            partition_mem_amplification_no_nt: 3.0,
            per_thread_copy_bw: 6.0e9,
            llc_bytes_per_core: 2560 * 1024, // 30 MB LLC / 12 cores
            tlb_entries: 64,
            per_thread_join_tuples_per_s: 14.0e6,
            per_thread_uncached_probe_tuples_per_s: 5.0e6,
        }
    }

    /// Total hardware threads across the machine.
    pub fn total_threads(&self) -> u32 {
        self.sockets * self.cores_per_socket * self.smt
    }

    /// Total physical cores.
    pub fn total_cores(&self) -> u32 {
        self.sockets * self.cores_per_socket
    }

    /// Aggregate partitioning throughput of `threads` threads, before any
    /// memory-bandwidth ceiling (the ceiling is enforced by the simulated
    /// DRAM resources, not here).
    pub fn partition_bw(&self, threads: u32) -> f64 {
        f64::from(threads) * self.per_thread_partition_bw
    }

    /// Maximum per-pass radix fanout on the CPU (TLB-bound).
    pub fn max_cpu_fanout(&self) -> u32 {
        self.tlb_entries
    }

    /// The paper's thread-selection rule (§IV-B): the maximum number of
    /// partitioning threads that still leaves the near socket enough DRAM
    /// bandwidth for PCIe transfers to run at full rate. Threads alternate
    /// sockets, so the near socket carries half of their traffic; its
    /// effective bandwidth under mixed traffic is degraded by the
    /// contention factor.
    pub fn recommended_partition_threads(&self, pcie_bw: f64) -> u32 {
        // Constraint 1 (§IV-B): the partitioning output must outrun the
        // link, or transfers starve — a hard lower bound.
        let feed = (pcie_bw / self.per_thread_partition_bw).ceil() as u32 + 1;
        // Constraint 2: leave the near socket DRAM headroom for the
        // transfers — the upper bound, when the link leaves any.
        let usable = self.socket_mem_bandwidth * self.mem_contention_factor.max(0.5);
        let headroom = (usable - pcie_bw).max(0.0);
        let per_thread_near = self.per_thread_partition_bw * self.partition_mem_amplification / 2.0;
        let room = (headroom / per_thread_near).floor() as u32;
        // When the link is faster than the DRAM headroom allows, feeding
        // it wins (transfers will contend either way).
        feed.max(room).clamp(1, self.total_threads())
    }

    /// Scale DRAM capacity for reduced-scale experiments.
    pub fn scaled_capacity(mut self, k: u64) -> Self {
        assert!(k >= 1, "scale factor must be >= 1");
        self.dram_bytes /= k;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_dimensions() {
        let h = HostSpec::dual_xeon_e5_2650l_v3();
        assert_eq!(h.total_cores(), 24);
        assert_eq!(h.total_threads(), 48);
        assert_eq!(h.dram_bytes, 256 << 30);
    }

    #[test]
    fn sixteen_threads_reach_the_papers_40_gbps() {
        let h = HostSpec::dual_xeon_e5_2650l_v3();
        let bw = h.partition_bw(16);
        assert!((39.0e9..=41.0e9).contains(&bw), "bw = {bw}");
    }

    #[test]
    fn partition_bw_exceeds_pcie_with_few_threads() {
        // The pipeline needs the CPU side to outrun the 12 GB/s link; with
        // the paper's constants that takes 5 threads.
        let h = HostSpec::dual_xeon_e5_2650l_v3();
        assert!(h.partition_bw(5) > 12.0e9);
        assert!(h.partition_bw(4) < 12.0e9);
    }

    #[test]
    fn recommended_threads_land_in_the_papers_plateau() {
        // Fig. 13: throughput plateaus from ~12-16 threads and dips past
        // ~26; the rule must pick from the plateau.
        let h = HostSpec::dual_xeon_e5_2650l_v3();
        let t = h.recommended_partition_threads(12.0e9);
        assert!((10..=20).contains(&t), "recommended {t}");
        // A link faster than the DRAM headroom flips to the feeding
        // constraint: enough threads to outrun the link.
        let t_nvlink = h.recommended_partition_threads(45.0e9);
        assert!(
            f64::from(t_nvlink) * h.per_thread_partition_bw > 45.0e9,
            "{t_nvlink} threads cannot feed a 45 GB/s link"
        );
        // Zero-bandwidth link: bounded by the machine.
        let t_max = h.recommended_partition_threads(0.0);
        assert!(t_max <= h.total_threads());
    }

    #[test]
    fn scaling_touches_only_dram() {
        let h = HostSpec::dual_xeon_e5_2650l_v3().scaled_capacity(4);
        assert_eq!(h.dram_bytes, 64 << 30);
        assert_eq!(h.socket_mem_bandwidth, 55.0e9);
    }
}
