//! The NUMA machine: per-socket DRAM resources, the QPI link, thread pools.

use hcj_sim::{ResourceId, Sim};

use crate::spec::HostSpec;

/// Which socket a buffer is homed on / a thread runs on. The GPU is
/// attached to the PCIe root complex of [`Socket::Near`], as in the paper's
/// testbed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Socket {
    /// Socket 0: the GPU's socket.
    Near,
    /// Socket 1: reachable from the GPU only across QPI.
    Far,
}

impl Socket {
    pub fn index(self) -> usize {
        match self {
            Socket::Near => 0,
            Socket::Far => 1,
        }
    }

    pub fn other(self) -> Socket {
        match self {
            Socket::Near => Socket::Far,
            Socket::Far => Socket::Near,
        }
    }
}

/// The modeled host: registers DRAM and QPI resources with the simulator.
pub struct HostMachine {
    pub spec: HostSpec,
    dram: Vec<ResourceId>,
    qpi: ResourceId,
}

impl HostMachine {
    pub fn new(sim: &mut Sim, spec: HostSpec) -> Self {
        assert_eq!(spec.sockets, 2, "the model covers the paper's dual-socket topology");
        let dram = (0..spec.sockets)
            .map(|s| {
                sim.shared_resource(
                    format!("dram-socket{s}"),
                    spec.socket_mem_bandwidth,
                    spec.mem_contention_factor,
                )
            })
            .collect();
        let qpi = sim.shared_resource("qpi", spec.qpi_bandwidth, spec.qpi_contention_factor);
        HostMachine { spec, dram, qpi }
    }

    /// DRAM resource of `socket`.
    pub fn dram(&self, socket: Socket) -> ResourceId {
        self.dram[socket.index()]
    }

    /// The inter-socket link.
    pub fn qpi(&self) -> ResourceId {
        self.qpi
    }

    /// Create a pool of `threads` worker lanes. Work submitted to the pool
    /// is expressed in seconds (rate 1.0) so tasks of different kinds can
    /// share the pool; [`crate::tasks`] computes the durations.
    pub fn thread_pool(&self, sim: &mut Sim, name: impl Into<String>, threads: u32) -> ThreadPool {
        assert!(threads >= 1, "a pool needs at least one thread");
        assert!(
            threads <= self.spec.total_threads(),
            "pool of {threads} exceeds the machine's {} hardware threads",
            self.spec.total_threads()
        );
        let resource = sim.fifo_resource(name, 1.0, threads);
        ThreadPool { resource, threads }
    }
}

/// A set of CPU worker lanes registered with the simulator.
#[derive(Clone, Copy, Debug)]
pub struct ThreadPool {
    pub(crate) resource: ResourceId,
    pub(crate) threads: u32,
}

impl ThreadPool {
    pub fn threads(&self) -> u32 {
        self.threads
    }

    pub fn resource(&self) -> ResourceId {
        self.resource
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcj_sim::Op;

    #[test]
    fn sockets_are_distinct_resources() {
        let mut sim = Sim::new();
        let m = HostMachine::new(&mut sim, HostSpec::dual_xeon_e5_2650l_v3());
        assert_ne!(m.dram(Socket::Near), m.dram(Socket::Far));
        assert_eq!(Socket::Near.other(), Socket::Far);
        assert_eq!(Socket::Far.other(), Socket::Near);
    }

    #[test]
    fn pool_limits_parallelism() {
        let mut sim = Sim::new();
        let m = HostMachine::new(&mut sim, HostSpec::dual_xeon_e5_2650l_v3());
        let pool = m.thread_pool(&mut sim, "workers", 2);
        // Three 1-second tasks on 2 threads: makespan 2 s.
        for i in 0..3 {
            sim.op(Op::new(pool.resource(), 1.0).label(format!("t{i}")));
        }
        let s = sim.run();
        assert_eq!(s.makespan().as_secs_f64(), 2.0);
    }

    #[test]
    #[should_panic(expected = "exceeds the machine")]
    fn oversized_pool_rejected() {
        let mut sim = Sim::new();
        let m = HostMachine::new(&mut sim, HostSpec::dual_xeon_e5_2650l_v3());
        let _ = m.thread_pool(&mut sim, "too-big", 49);
    }

    #[test]
    fn dram_is_processor_shared() {
        let mut sim = Sim::new();
        let m = HostMachine::new(&mut sim, HostSpec::dual_xeon_e5_2650l_v3());
        let bw = m.spec.socket_mem_bandwidth;
        // Two same-class flows of 1 socket-second each → both take 2 s.
        let a = sim.op(Op::new(m.dram(Socket::Near), bw).class(1));
        let b = sim.op(Op::new(m.dram(Socket::Near), bw).class(1));
        let s = sim.run();
        assert!((s.finish(a).as_secs_f64() - 2.0).abs() < 1e-9);
        assert!((s.finish(b).as_secs_f64() - 2.0).abs() < 1e-9);
    }
}
