//! The NUMA machine: per-socket DRAM resources, the QPI link, thread pools.

use hcj_sim::{ResourceId, Sim};

use crate::spec::HostSpec;

/// Which socket a buffer is homed on / a thread runs on. The GPU is
/// attached to the PCIe root complex of [`Socket::Near`], as in the paper's
/// testbed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Socket {
    /// Socket 0: the GPU's socket.
    Near,
    /// Socket 1: reachable from the GPU only across QPI.
    Far,
}

impl Socket {
    /// The socket's index in the machine's DRAM resource table.
    pub fn index(self) -> usize {
        match self {
            Socket::Near => 0,
            Socket::Far => 1,
        }
    }

    /// The other socket of the dual-socket machine.
    pub fn other(self) -> Socket {
        match self {
            Socket::Near => Socket::Far,
            Socket::Far => Socket::Near,
        }
    }

    /// The socket device `device` is locally attached to: devices
    /// alternate PCIe root complexes across sockets (device 0 and 2 on
    /// [`Socket::Near`], device 1 and 3 on [`Socket::Far`]), mirroring a
    /// dual-socket server with two GPUs per riser.
    pub fn of_device(device: usize) -> Socket {
        if device % 2 == 0 {
            Socket::Near
        } else {
            Socket::Far
        }
    }

    /// NUMA node distance in hops: 1 to the local node's DRAM, 2 when the
    /// access crosses the inter-socket link.
    pub fn distance(self, other: Socket) -> u32 {
        if self == other {
            1
        } else {
            2
        }
    }
}

/// Seconds to stage `bytes` of host-resident data homed on `home` for DMA
/// into a device attached to `local`, on the machine described by `spec`.
///
/// A local staging pass (distance 1) only reads the socket's own DRAM. A
/// remote pass (distance 2) reads the home socket's DRAM *and* crosses the
/// inter-socket link at DMA efficiency — QPI DMA reads sustain only a
/// fraction of the link's nominal bandwidth (`qpi_dma_efficiency`, the
/// paper's measured far-socket penalty) — so remote staging is strictly
/// more expensive and cross-device joins charge each participant's H2D
/// traffic from that device's own node.
pub fn staging_seconds(spec: &HostSpec, home: Socket, local: Socket, bytes: u64) -> f64 {
    let dram = bytes as f64 / spec.socket_mem_bandwidth;
    match home.distance(local) {
        1 => dram,
        _ => dram + bytes as f64 / (spec.qpi_bandwidth * spec.qpi_dma_efficiency),
    }
}

/// The modeled host: registers DRAM and QPI resources with the simulator.
pub struct HostMachine {
    /// The machine parameters this instance was registered with.
    pub spec: HostSpec,
    dram: Vec<ResourceId>,
    qpi: ResourceId,
}

impl HostMachine {
    /// Register the host's DRAM and QPI resources with the simulator.
    pub fn new(sim: &mut Sim, spec: HostSpec) -> Self {
        assert_eq!(spec.sockets, 2, "the model covers the paper's dual-socket topology");
        let dram = (0..spec.sockets)
            .map(|s| {
                sim.shared_resource(
                    format!("dram-socket{s}"),
                    spec.socket_mem_bandwidth,
                    spec.mem_contention_factor,
                )
            })
            .collect();
        let qpi = sim.shared_resource("qpi", spec.qpi_bandwidth, spec.qpi_contention_factor);
        HostMachine { spec, dram, qpi }
    }

    /// DRAM resource of `socket`.
    pub fn dram(&self, socket: Socket) -> ResourceId {
        self.dram[socket.index()]
    }

    /// The inter-socket link.
    pub fn qpi(&self) -> ResourceId {
        self.qpi
    }

    /// Create a pool of `threads` worker lanes. Work submitted to the pool
    /// is expressed in seconds (rate 1.0) so tasks of different kinds can
    /// share the pool; [`crate::tasks`] computes the durations.
    pub fn thread_pool(&self, sim: &mut Sim, name: impl Into<String>, threads: u32) -> ThreadPool {
        assert!(threads >= 1, "a pool needs at least one thread");
        assert!(
            threads <= self.spec.total_threads(),
            "pool of {threads} exceeds the machine's {} hardware threads",
            self.spec.total_threads()
        );
        let resource = sim.fifo_resource(name, 1.0, threads);
        ThreadPool { resource, threads }
    }
}

/// A set of CPU worker lanes registered with the simulator.
#[derive(Clone, Copy, Debug)]
pub struct ThreadPool {
    pub(crate) resource: ResourceId,
    pub(crate) threads: u32,
}

impl ThreadPool {
    /// Number of hardware threads in this lane.
    pub fn threads(&self) -> u32 {
        self.threads
    }

    /// The simulator resource the lane's work is charged to.
    pub fn resource(&self) -> ResourceId {
        self.resource
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcj_sim::Op;

    #[test]
    fn sockets_are_distinct_resources() {
        let mut sim = Sim::new();
        let m = HostMachine::new(&mut sim, HostSpec::dual_xeon_e5_2650l_v3());
        assert_ne!(m.dram(Socket::Near), m.dram(Socket::Far));
        assert_eq!(Socket::Near.other(), Socket::Far);
        assert_eq!(Socket::Far.other(), Socket::Near);
    }

    #[test]
    fn pool_limits_parallelism() {
        let mut sim = Sim::new();
        let m = HostMachine::new(&mut sim, HostSpec::dual_xeon_e5_2650l_v3());
        let pool = m.thread_pool(&mut sim, "workers", 2);
        // Three 1-second tasks on 2 threads: makespan 2 s.
        for i in 0..3 {
            sim.op(Op::new(pool.resource(), 1.0).label(format!("t{i}")));
        }
        let s = sim.run();
        assert_eq!(s.makespan().as_secs_f64(), 2.0);
    }

    #[test]
    #[should_panic(expected = "exceeds the machine")]
    fn oversized_pool_rejected() {
        let mut sim = Sim::new();
        let m = HostMachine::new(&mut sim, HostSpec::dual_xeon_e5_2650l_v3());
        let _ = m.thread_pool(&mut sim, "too-big", 49);
    }

    #[test]
    fn node_distance_charging_is_pinned() {
        // Distance is 1 on-node and 2 across the link, both directions.
        assert_eq!(Socket::Near.distance(Socket::Near), 1);
        assert_eq!(Socket::Far.distance(Socket::Far), 1);
        assert_eq!(Socket::Near.distance(Socket::Far), 2);
        assert_eq!(Socket::Far.distance(Socket::Near), 2);
        // Device→socket attachment alternates root complexes.
        assert_eq!(Socket::of_device(0), Socket::Near);
        assert_eq!(Socket::of_device(1), Socket::Far);
        assert_eq!(Socket::of_device(2), Socket::Near);
        assert_eq!(Socket::of_device(3), Socket::Far);
    }

    #[test]
    fn local_staging_is_a_pure_dram_read() {
        let spec = HostSpec::dual_xeon_e5_2650l_v3();
        let bytes = 1u64 << 26;
        let local = staging_seconds(&spec, Socket::Near, Socket::Near, bytes);
        let expect = bytes as f64 / spec.socket_mem_bandwidth;
        assert!((local - expect).abs() < 1e-15, "local={local} expect={expect}");
        // Same cost on the far socket's own node: locality is relative.
        let far = staging_seconds(&spec, Socket::Far, Socket::Far, bytes);
        assert_eq!(local, far);
        assert_eq!(staging_seconds(&spec, Socket::Near, Socket::Near, 0), 0.0);
    }

    #[test]
    fn remote_staging_pays_the_qpi_dma_penalty_exactly() {
        let spec = HostSpec::dual_xeon_e5_2650l_v3();
        let bytes = 1u64 << 26;
        let local = staging_seconds(&spec, Socket::Near, Socket::Near, bytes);
        let remote = staging_seconds(&spec, Socket::Far, Socket::Near, bytes);
        assert!(remote > local, "crossing the link is never free");
        let qpi_term = bytes as f64 / (spec.qpi_bandwidth * spec.qpi_dma_efficiency);
        assert!(
            (remote - (local + qpi_term)).abs() < 1e-15,
            "remote staging is DRAM read + QPI DMA hop: remote={remote}"
        );
        // Symmetric: far-homed→near device costs the same as near→far.
        assert_eq!(remote, staging_seconds(&spec, Socket::Near, Socket::Far, bytes));
        // Monotone in bytes on both paths.
        assert!(staging_seconds(&spec, Socket::Far, Socket::Near, 2 * bytes) > remote);
    }

    #[test]
    fn dram_is_processor_shared() {
        let mut sim = Sim::new();
        let m = HostMachine::new(&mut sim, HostSpec::dual_xeon_e5_2650l_v3());
        let bw = m.spec.socket_mem_bandwidth;
        // Two same-class flows of 1 socket-second each → both take 2 s.
        let a = sim.op(Op::new(m.dram(Socket::Near), bw).class(1));
        let b = sim.op(Op::new(m.dram(Socket::Near), bw).class(1));
        let s = sim.run();
        assert!((s.finish(a).as_secs_f64() - 2.0).abs() < 1e-9);
        assert!((s.finish(b).as_secs_f64() - 2.0).abs() < 1e-9);
    }
}
