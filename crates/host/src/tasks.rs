//! Compound CPU tasks: work that occupies a thread lane *and* generates
//! memory traffic on the right DRAM/QPI links.
//!
//! Each helper returns a single [`OpId`] that completes when both the
//! thread's compute and all memory traffic are done; downstream operations
//! depend on that combiner. Because the DRAM links are processor-shared
//! resources, running many partitioning tasks while the GPU's DMA engine
//! reads from the same socket slows *both* down — the interference at the
//! heart of the paper's Figures 13 and 16.

use hcj_sim::{Op, OpId, Sim};

use crate::numa::{HostMachine, Socket, ThreadPool};

/// Traffic class for CPU-generated memory traffic.
pub const CLASS_CPU_COMPUTE: u32 = 10;
/// Traffic class for GPU DMA reads/writes against host DRAM.
pub const CLASS_DMA_READ: u32 = 11;

/// Kinds of CPU work with calibrated per-thread throughput.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CpuTaskKind {
    /// Radix-partition `bytes` of input with software-managed buffers.
    /// `non_temporal` selects streaming stores (the paper's choice) which
    /// avoid reading output cache lines and cut DRAM traffic from 3x to 2x.
    Partition {
        /// Use streaming (non-temporal) stores for the output buffers.
        non_temporal: bool,
    },
    /// Stage (memcpy) bytes from the far socket into near-socket pinned
    /// memory (paper §IV-B's NUMA-aware copy).
    StagingCopy,
    /// Arbitrary compute at `bytes_per_s` per thread with
    /// `mem_amplification` DRAM bytes per input byte.
    Custom {
        /// Per-thread processing rate in bytes per second.
        bytes_per_s: f64,
        /// DRAM bytes moved per input byte processed.
        mem_amplification: f64,
    },
}

/// Submit one task of `kind` over `bytes` of data homed on `socket`,
/// executed by a single thread from `pool`. Returns the combiner op.
pub fn cpu_task(
    sim: &mut Sim,
    machine: &HostMachine,
    pool: ThreadPool,
    kind: CpuTaskKind,
    bytes: u64,
    socket: Socket,
    deps: &[OpId],
) -> OpId {
    let spec = &machine.spec;
    let (rate, amp) = match kind {
        CpuTaskKind::Partition { non_temporal: true } => {
            (spec.per_thread_partition_bw, spec.partition_mem_amplification)
        }
        CpuTaskKind::Partition { non_temporal: false } => {
            (spec.per_thread_partition_bw, spec.partition_mem_amplification_no_nt)
        }
        CpuTaskKind::StagingCopy => (spec.per_thread_copy_bw, 1.0),
        CpuTaskKind::Custom { bytes_per_s, mem_amplification } => (bytes_per_s, mem_amplification),
    };
    let label = format!("cpu-{kind:?}");
    let compute = sim.op(Op::new(pool.resource(), bytes as f64 / rate)
        .label(label.clone())
        .class(CLASS_CPU_COMPUTE)
        .after_all(deps.iter().copied()));
    let mem = sim.op(Op::new(machine.dram(socket), bytes as f64 * amp)
        .rate_cap(rate * amp)
        .label(format!("{label}-dram"))
        .class(CLASS_CPU_COMPUTE)
        .after_all(deps.iter().copied()));
    let mut combiner = Op::latency(hcj_sim::SimTime::ZERO).label(format!("{label}-done"));
    combiner = combiner.after(compute).after(mem);
    // Partitioning threads on either socket keep cache lines bouncing:
    // a fraction of their traffic crosses QPI as coherence noise. This is
    // the interference the paper dodges with NUMA staging (Fig. 16): while
    // this class shares QPI with DMA reads, the contention factor throttles
    // both.
    if matches!(kind, CpuTaskKind::Partition { .. }) {
        let coherence = sim.op(Op::new(machine.qpi(), bytes as f64 * 0.25)
            .rate_cap(rate * 0.25)
            .label(format!("{label}-qpi-coherence"))
            .class(CLASS_CPU_COMPUTE)
            .after_all(deps.iter().copied()));
        combiner = combiner.after(coherence);
    }
    // A staging copy from the far socket also writes the near socket and
    // crosses QPI.
    if kind == CpuTaskKind::StagingCopy && socket == Socket::Far {
        let qpi = sim.op(Op::new(machine.qpi(), bytes as f64)
            .rate_cap(rate)
            .label("staging-qpi")
            .class(CLASS_CPU_COMPUTE)
            .after_all(deps.iter().copied()));
        let near = sim.op(Op::new(machine.dram(Socket::Near), bytes as f64)
            .rate_cap(rate)
            .label("staging-near-write")
            .class(CLASS_CPU_COMPUTE)
            .after_all(deps.iter().copied()));
        combiner = combiner.after(qpi).after(near);
    }
    sim.op(combiner)
}

/// Shadow traffic of a GPU DMA engine reading (or writing) `bytes` of host
/// memory homed on `socket`: charges the socket's DRAM and, when the data
/// is on the far socket, the QPI link — with the DMA traffic class, so the
/// contention penalty applies while CPU work overlaps. Returns a combiner
/// to join with the PCIe copy op.
pub fn dma_host_traffic(
    sim: &mut Sim,
    machine: &HostMachine,
    bytes: u64,
    socket: Socket,
    link_rate: f64,
    deps: &[OpId],
) -> OpId {
    let dram = sim.op(Op::new(machine.dram(socket), bytes as f64)
        .rate_cap(link_rate)
        .label("dma-host-dram")
        .class(CLASS_DMA_READ)
        .after_all(deps.iter().copied()));
    let mut combiner = Op::latency(hcj_sim::SimTime::ZERO).label("dma-host-done").after(dram);
    if socket == Socket::Far {
        let qpi = sim.op(Op::new(machine.qpi(), bytes as f64)
            .rate_cap(link_rate * machine.spec.qpi_dma_efficiency)
            .label("dma-qpi")
            .class(CLASS_DMA_READ)
            .after_all(deps.iter().copied()));
        combiner = combiner.after(qpi);
    }
    sim.op(combiner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::HostSpec;

    fn setup(sim: &mut Sim) -> HostMachine {
        HostMachine::new(sim, HostSpec::dual_xeon_e5_2650l_v3())
    }

    #[test]
    fn partition_task_duration_matches_per_thread_rate() {
        let mut sim = Sim::new();
        let m = setup(&mut sim);
        let pool = m.thread_pool(&mut sim, "p", 1);
        let bytes = 2_500_000_000; // one thread-second of partitioning
        let t = cpu_task(
            &mut sim,
            &m,
            pool,
            CpuTaskKind::Partition { non_temporal: true },
            bytes,
            Socket::Near,
            &[],
        );
        let s = sim.run();
        // Thread takes 1 s; DRAM traffic 2x2.5 GB at 55 GB/s ≈ 0.09 s.
        assert!((s.finish(t).as_secs_f64() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn many_threads_saturate_socket_bandwidth() {
        // 22 partitioning tasks at once: thread demand = 22 * 2.5 * 2 =
        // 110 GB of DRAM traffic on one 55 GB/s socket → DRAM-bound, not
        // thread-bound.
        let mut sim = Sim::new();
        let m = setup(&mut sim);
        let pool = m.thread_pool(&mut sim, "p", 22);
        let per_task_bytes = 2_500_000_000u64;
        let mut last = None;
        for _ in 0..22 {
            last = Some(cpu_task(
                &mut sim,
                &m,
                pool,
                CpuTaskKind::Partition { non_temporal: true },
                per_task_bytes,
                Socket::Near,
                &[],
            ));
        }
        let s = sim.run();
        let total = s.finish(last.unwrap()).as_secs_f64();
        // DRAM time: 22 tasks * 5 GB = 110 GB at 55 GB/s = 2 s > 1 s thread time.
        assert!(total > 1.5, "total={total}");
    }

    #[test]
    fn non_temporal_stores_reduce_dram_time() {
        let bytes = 50_000_000_000u64; // large enough for DRAM to dominate
        let run = |nt: bool| {
            let mut sim = Sim::new();
            let m = setup(&mut sim);
            let pool = m.thread_pool(&mut sim, "p", 48);
            // Split across many threads so the DRAM link is the bottleneck.
            let mut ids = Vec::new();
            for _ in 0..48 {
                ids.push(cpu_task(
                    &mut sim,
                    &m,
                    pool,
                    CpuTaskKind::Partition { non_temporal: nt },
                    bytes / 48,
                    Socket::Near,
                    &[],
                ));
            }
            let s = sim.run();
            s.makespan().as_secs_f64()
        };
        let with_nt = run(true);
        let without = run(false);
        assert!(without > with_nt * 1.3, "nt={with_nt} no-nt={without}");
    }

    #[test]
    fn staging_copy_from_far_socket_charges_qpi_and_both_sockets() {
        let mut sim = Sim::new();
        let m = setup(&mut sim);
        let pool = m.thread_pool(&mut sim, "p", 8);
        let bytes = 19_200_000_000; // one QPI-second
        let t = cpu_task(&mut sim, &m, pool, CpuTaskKind::StagingCopy, bytes, Socket::Far, &[]);
        let s = sim.run();
        // QPI is the slowest leg: ~1 s (thread memcpy at 6 GB/s x ... wait,
        // one thread at 6 GB/s over 19.2 GB = 3.2 s is actually slower).
        let total = s.finish(t).as_secs_f64();
        assert!(total >= 3.0, "total={total}");
        assert!(s.busy_time(m.qpi()).as_secs_f64() >= 0.9);
        assert!(s.busy_time(m.dram(Socket::Near)).as_secs_f64() > 0.0);
        assert!(s.busy_time(m.dram(Socket::Far)).as_secs_f64() > 0.0);
    }

    #[test]
    fn dma_from_far_socket_crosses_qpi() {
        let mut sim = Sim::new();
        let m = setup(&mut sim);
        let near = dma_host_traffic(&mut sim, &m, 1_000_000, Socket::Near, 12.0e9, &[]);
        let far = dma_host_traffic(&mut sim, &m, 1_000_000, Socket::Far, 12.0e9, &[]);
        let s = sim.run();
        assert!(s.busy_time(m.qpi()).as_nanos() > 0);
        let _ = (near, far);
    }

    #[test]
    fn dma_interferes_with_partitioning_on_shared_socket() {
        // DMA alone.
        let bytes = 55_000_000_000u64; // one socket-second
        let mut sim = Sim::new();
        let m = setup(&mut sim);
        let d = dma_host_traffic(&mut sim, &m, bytes, Socket::Near, 12.0e9, &[]);
        let s = sim.run();
        let alone = s.finish(d).as_secs_f64();

        // DMA while a partitioning task hammers the same socket: the
        // shared + contention-penalized link must slow the DMA down.
        let mut sim = Sim::new();
        let m = setup(&mut sim);
        let pool = m.thread_pool(&mut sim, "p", 16);
        for _ in 0..16 {
            cpu_task(
                &mut sim,
                &m,
                pool,
                CpuTaskKind::Partition { non_temporal: true },
                bytes / 4,
                Socket::Near,
                &[],
            );
        }
        let d = dma_host_traffic(&mut sim, &m, bytes, Socket::Near, 12.0e9, &[]);
        let s = sim.run();
        let contended = s.finish(d).as_secs_f64();
        assert!(contended > 1.5 * alone, "alone={alone} contended={contended}");
    }
}
