//! A std-only work-stealing thread pool for the *real* execution of the
//! simulated kernels and the repro harness.
//!
//! Everything in this repository runs the actual join on real data while a
//! discrete-event model computes how long the hardware would take. The
//! model's clock is unaffected by how the host executes that work — which
//! means the host side is free to use every core it has, as long as the
//! results stay deterministic. This module provides that: a chunked,
//! work-stealing `map` built on [`std::thread::scope`] whose output is
//! **bit-identical for every worker count**, because each item's result is
//! stored at the item's own index and merged in input order.
//!
//! The worker count comes from (highest priority first) an explicit
//! [`Pool::new`], the process-wide [`set_jobs`] override (the `repro
//! --jobs N` flag), the `HCJ_JOBS` environment variable, and finally
//! [`std::thread::available_parallelism`].
//!
//! Nested parallelism is flattened: a `map` issued from inside a pool
//! worker runs inline on that worker. The outermost layer that asks for
//! parallelism gets it (figures under `repro all`, sweep points within a
//! single figure, or kernel blocks within a single join), and inner layers
//! do not oversubscribe the machine with threads-spawning-threads.

use std::cell::Cell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide worker-count override; 0 = unset (fall back to the
/// environment).
static GLOBAL_JOBS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// True on threads spawned by [`Pool::map`]: nested maps run inline.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Set the process-wide worker count (the `repro --jobs N` flag).
/// Clamped to at least 1. Overrides `HCJ_JOBS`.
pub fn set_jobs(jobs: usize) {
    GLOBAL_JOBS.store(jobs.max(1), Ordering::SeqCst);
}

/// The effective process-wide worker count: [`set_jobs`] if called, else
/// `HCJ_JOBS`, else the machine's available parallelism.
pub fn jobs() -> usize {
    match GLOBAL_JOBS.load(Ordering::SeqCst) {
        0 => default_jobs(),
        n => n,
    }
}

/// The worker count before any [`set_jobs`] override: `HCJ_JOBS` when set
/// to a positive integer, else [`std::thread::available_parallelism`].
/// Resolved once per process (kernels consult it per block).
pub fn default_jobs() -> usize {
    static DEFAULT: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("HCJ_JOBS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
    })
}

/// A handle expressing "run with this many workers". Cheap to construct;
/// threads are scoped per [`Pool::map`] call, so nothing persists between
/// calls and the pool can be created anywhere without lifetime plumbing.
#[derive(Clone, Copy, Debug)]
pub struct Pool {
    jobs: usize,
}

impl Pool {
    /// A pool of exactly `jobs` workers (clamped to ≥ 1; 1 = inline).
    pub fn new(jobs: usize) -> Pool {
        Pool { jobs: jobs.max(1) }
    }

    /// The pool implied by the process-wide setting (see [`jobs`]).
    pub fn current() -> Pool {
        Pool::new(jobs())
    }

    /// Worker count this pool was built with.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Whether this map call would actually spawn workers (false inside a
    /// worker or with 1 job) — callers can use it to pick chunk counts.
    pub fn is_parallel(&self) -> bool {
        self.jobs > 1 && !IN_WORKER.with(Cell::get)
    }

    /// Apply `f` to every item, returning results **in item order** no
    /// matter how work was distributed. Work is handed out in contiguous
    /// index chunks from a shared atomic cursor (work stealing without
    /// queues); each result is written to its item's slot, so the output —
    /// and therefore everything downstream — is identical for every worker
    /// count, including 1.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let workers = self.jobs.min(n);
        if workers == 1 || IN_WORKER.with(Cell::get) {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let mut out: Vec<Option<R>> = Vec::new();
        out.resize_with(n, || None);
        {
            let slots = DisjointSlice::new(&mut out);
            let cursor = AtomicUsize::new(0);
            // Chunks small enough that uneven items still balance, large
            // enough that the cursor is not contended per item.
            let chunk = (n / (workers * 4)).max(1);
            std::thread::scope(|s| {
                for _ in 0..workers {
                    s.spawn(|| {
                        IN_WORKER.with(|w| w.set(true));
                        loop {
                            let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                            if start >= n {
                                break;
                            }
                            let end = (start + chunk).min(n);
                            for (i, item) in items.iter().enumerate().take(end).skip(start) {
                                let r = f(i, item);
                                // SAFETY: the cursor hands out every index
                                // exactly once, so slot `i` has a single
                                // writer and no concurrent reader.
                                unsafe { slots.write(i, Some(r)) };
                            }
                        }
                    });
                }
            });
        }
        out.into_iter().map(|r| r.expect("every map slot filled")).collect()
    }

    /// Split `0..len` into chunks suited to this pool: one per worker slice
    /// of roughly `len / (4 * jobs)` items (at least `min_chunk`), in
    /// order. A serial pool returns the full range as one chunk.
    pub fn chunks(&self, len: usize, min_chunk: usize) -> Vec<std::ops::Range<usize>> {
        if len == 0 {
            return Vec::new();
        }
        let target =
            if self.is_parallel() { (len / (self.jobs * 4)).max(min_chunk.max(1)) } else { len };
        let mut ranges = Vec::with_capacity(len.div_ceil(target));
        let mut start = 0;
        while start < len {
            let end = (start + target).min(len);
            ranges.push(start..end);
            start = end;
        }
        ranges
    }
}

/// A shared view of a mutable slice that workers write at **provably
/// disjoint** indices — the scatter side of the two-phase parallel
/// partitioners, where every output position is computed from exclusive
/// prefix sums before any worker starts.
///
/// Writes overwrite without reading or dropping the previous value, so the
/// slice should hold plain data (`Copy` types or freshly-initialized
/// `Option`s, as in [`Pool::map`]).
pub struct DisjointSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: sharing is sound because writers promise disjoint indices (the
// `write` contract); `T: Send` moves values across threads.
unsafe impl<T: Send> Send for DisjointSlice<'_, T> {}
unsafe impl<T: Send> Sync for DisjointSlice<'_, T> {}

impl<'a, T> DisjointSlice<'a, T> {
    /// Wrap a mutable slice for disjoint-range sharing across workers.
    pub fn new(slice: &'a mut [T]) -> Self {
        DisjointSlice { ptr: slice.as_mut_ptr(), len: slice.len(), _marker: PhantomData }
    }

    /// Length of the wrapped slice.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the wrapped slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Write `value` at `index` (bounds-checked).
    ///
    /// # Safety
    /// Each index must be written by at most one thread while the slice is
    /// shared, and not read until all writers are done. The previous value
    /// is overwritten without being dropped.
    pub unsafe fn write(&self, index: usize, value: T) {
        assert!(index < self.len, "DisjointSlice write out of bounds");
        // SAFETY: in-bounds by the assert; exclusivity is the caller's
        // contract.
        unsafe { self.ptr.add(index).write(value) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_item_order() {
        let items: Vec<u64> = (0..1000).collect();
        let got = Pool::new(4).map(&items, |i, &x| {
            assert_eq!(i as u64, x);
            x * 3
        });
        let want: Vec<u64> = (0..1000).map(|x| x * 3).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn map_is_identical_across_worker_counts() {
        let items: Vec<u64> = (0..4097).collect();
        let serial = Pool::new(1).map(&items, |_, &x| x.wrapping_mul(0x9E37_79B1));
        for jobs in [2, 3, 8, 64] {
            let parallel = Pool::new(jobs).map(&items, |_, &x| x.wrapping_mul(0x9E37_79B1));
            assert_eq!(serial, parallel, "jobs={jobs}");
        }
    }

    #[test]
    fn map_balances_uneven_work() {
        // One item is 1000x the others; with chunked stealing the other
        // workers drain the rest. (Correctness, not timing, is asserted.)
        let items: Vec<u32> = (0..64).collect();
        let got = Pool::new(4).map(&items, |_, &x| {
            let spins = if x == 0 { 100_000 } else { 100 };
            (0..spins).fold(x, |acc, _| acc.wrapping_mul(31).wrapping_add(1))
        });
        assert_eq!(got.len(), 64);
    }

    #[test]
    fn nested_maps_run_inline_without_deadlock() {
        let outer: Vec<usize> = (0..8).collect();
        let got = Pool::new(4).map(&outer, |_, &i| {
            let inner: Vec<usize> = (0..16).collect();
            Pool::new(4).map(&inner, |_, &j| i * 100 + j).iter().sum::<usize>()
        });
        let want: Vec<usize> = (0..8).map(|i| (0..16).map(|j| i * 100 + j).sum()).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(Pool::new(8).map(&empty, |_, &x| x).is_empty());
        assert_eq!(Pool::new(8).map(&[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn disjoint_slice_scatter() {
        let mut data = vec![0u32; 256];
        {
            let slice = DisjointSlice::new(&mut data);
            let idx: Vec<usize> = (0..256).collect();
            Pool::new(4).map(&idx, |_, &i| {
                // Permuted target: still one writer per index.
                let target = (i * 97) % 256;
                // SAFETY: i -> (i*97)%256 is a bijection on 0..256 (97 is
                // coprime with 256), so each target index has one writer.
                unsafe { slice.write(target, i as u32) };
            });
        }
        for (target, &v) in data.iter().enumerate() {
            assert_eq!((v as usize * 97) % 256, target);
        }
    }

    #[test]
    fn chunks_cover_range_in_order() {
        let pool = Pool::new(3);
        let chunks = pool.chunks(1000, 16);
        assert_eq!(chunks.first().unwrap().start, 0);
        assert_eq!(chunks.last().unwrap().end, 1000);
        for pair in chunks.windows(2) {
            assert_eq!(pair[0].end, pair[1].start);
        }
        assert!(Pool::new(1).chunks(1000, 16).len() == 1);
        assert!(pool.chunks(0, 16).is_empty());
    }

    #[test]
    fn jobs_clamp_to_one() {
        assert_eq!(Pool::new(0).jobs(), 1);
    }
}
