//! Benches, one per paper table/figure: each times the full regeneration
//! of that figure at a deep scale (shape-preserving but small), so
//! `cargo bench` exercises every experiment path end to end. The headline
//! reproduction numbers come from `repro` (simulated clock); these benches
//! track the harness's own host-side cost.

use hcj_bench::figures::registry;
use hcj_bench::microbench::bench;
use hcj_bench::RunConfig;

fn main() {
    let config = RunConfig { scale: 512, quick: true, ..RunConfig::default() };
    for (id, runner) in registry() {
        bench("figures", id, || runner(&config));
    }
}
