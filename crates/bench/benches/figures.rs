//! Criterion benches, one per paper table/figure: each times the full
//! regeneration of that figure at a deep scale (shape-preserving but
//! small), so `cargo bench` exercises every experiment path end to end.
//! The headline reproduction numbers come from `repro` (simulated clock);
//! these benches track the harness's own host-side cost.

use criterion::{criterion_group, criterion_main, Criterion};
use hcj_bench::figures::registry;
use hcj_bench::RunConfig;

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    let config = RunConfig { scale: 512, quick: true, out_dir: None };
    for (id, runner) in registry() {
        g.bench_function(id, |b| b.iter(|| runner(&config)));
    }
    g.finish();
}

criterion_group!(figures, bench_figures);
criterion_main!(figures);
