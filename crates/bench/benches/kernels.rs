//! Criterion microbenchmarks of the hot kernels and substrate pieces
//! (host wall time of the library itself — the simulated-clock results
//! live in the `repro` binary).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use hcj_core::join::sm_hash::sm_hash_join;
use hcj_core::join::ballot_nl::ballot_nl_join;
use hcj_core::output::OutputSink;
use hcj_core::packing::{pack_working_sets, PartitionSize};
use hcj_core::partition::GpuPartitioner;
use hcj_core::{GpuJoinConfig, OutputMode};
use hcj_gpu::warp::{ballot_match, Lanes};
use hcj_gpu::DeviceSpec;
use hcj_workload::generate::canonical_pair;
use hcj_workload::{RelationSpec, ZipfSampler};
use rand_like::*;

/// Tiny deterministic value streams without pulling `rand` into benches.
mod rand_like {
    pub struct Lcg(pub u64);
    impl Lcg {
        pub fn next_u32(&mut self) -> u32 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (self.0 >> 33) as u32
        }
    }
}

fn bench_partitioning(c: &mut Criterion) {
    let mut g = c.benchmark_group("gpu-radix-partition");
    let n = 1 << 20;
    let rel = RelationSpec::unique(n, 1).generate();
    g.throughput(Throughput::Elements(n as u64));
    for bits in [8u32, 12, 15] {
        let config = GpuJoinConfig::paper_default(DeviceSpec::gtx1080())
            .with_radix_bits(bits)
            .with_tuned_buckets(n);
        g.bench_function(format!("1M-tuples-{bits}bits"), |b| {
            b.iter(|| GpuPartitioner::new(&config).partition(&rel))
        });
    }
    g.finish();
}

fn bench_probe_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("probe-kernels");
    let n = 4096;
    let config = GpuJoinConfig::paper_default(DeviceSpec::gtx1080());
    let keys: Vec<u32> = (0..n as u32).collect();
    let pays = keys.clone();
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("sm-hash-4k-copartition", |b| {
        b.iter_batched(
            || OutputSink::new(OutputMode::Aggregate, 512),
            |mut sink| sm_hash_join(&config, 0, &keys, &pays, &keys, &pays, &mut sink),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("ballot-nl-4k-copartition", |b| {
        b.iter_batched(
            || OutputSink::new(OutputMode::Aggregate, 512),
            |mut sink| ballot_nl_join(&config, 0, &keys, &pays, &keys, &pays, &mut sink),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_warp_primitives(c: &mut Criterion) {
    let mut g = c.benchmark_group("warp");
    let mut lcg = Lcg(7);
    let mut r: Lanes<u32> = [0; 32];
    let mut s: Lanes<u32> = [0; 32];
    for i in 0..32 {
        r[i] = lcg.next_u32() & 0xFFFF;
        s[i] = lcg.next_u32() & 0xFFFF;
    }
    let bits: Vec<u32> = (0..16).collect();
    g.bench_function("ballot-match-16bits", |b| {
        b.iter(|| ballot_match(std::hint::black_box(&r), std::hint::black_box(&s), &bits, u32::MAX))
    });
    g.finish();
}

fn bench_zipf(c: &mut Criterion) {
    let mut g = c.benchmark_group("workload");
    g.throughput(Throughput::Elements(1));
    let z = ZipfSampler::new(1 << 24, 0.9);
    g.bench_function("zipf-sample", |b| {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(3);
        b.iter(|| z.sample(&mut rng))
    });
    g.finish();
}

fn bench_packing(c: &mut Criterion) {
    let mut g = c.benchmark_group("working-set-packing");
    let mut lcg = Lcg(11);
    let parts: Vec<PartitionSize> = (0..64)
        .map(|id| {
            let t = u64::from(lcg.next_u32() % 10_000) + 1;
            PartitionSize { id, tuples: t, padded_bytes: t * 24 }
        })
        .collect();
    let budget = parts.iter().map(|p| p.padded_bytes).max().unwrap() * 6;
    g.bench_function("knapsack-64-partitions", |b| {
        b.iter(|| pack_working_sets(&parts, budget, budget / 4))
    });
    g.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("end-to-end");
    g.sample_size(10);
    let n = 1 << 18;
    let (r, s) = canonical_pair(n, n, 5);
    let config = GpuJoinConfig::paper_default(DeviceSpec::gtx1080())
        .with_radix_bits(9)
        .with_tuned_buckets(n);
    g.throughput(Throughput::Elements(2 * n as u64));
    g.bench_function("gpu-partitioned-join-256k", |b| {
        b.iter(|| {
            hcj_core::GpuPartitionedJoin::new(config.clone())
                .execute(&r, &s)
                .unwrap()
        })
    });
    g.finish();
}

fn bench_cpu_baselines(c: &mut Criterion) {
    let mut g = c.benchmark_group("cpu-baselines");
    g.sample_size(10);
    let n = 1 << 17;
    let (r, s) = canonical_pair(n, n, 6);
    g.throughput(Throughput::Elements(2 * n as u64));
    g.bench_function("pro-128k", |b| {
        b.iter(|| hcj_cpu_join::ProJoin::paper_default().execute(&r, &s))
    });
    g.bench_function("npo-128k", |b| {
        b.iter(|| hcj_cpu_join::NpoJoin::paper_default().execute(&r, &s))
    });
    g.finish();
}

fn bench_partitioner_variants(c: &mut Criterion) {
    let mut g = c.benchmark_group("partitioner-variants");
    g.sample_size(10);
    let n = 1 << 19;
    let rel = RelationSpec::unique(n, 7).generate();
    let config = GpuJoinConfig::paper_default(DeviceSpec::gtx1080())
        .with_radix_bits(12)
        .with_tuned_buckets(n);
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("atomic-chains-512k", |b| {
        b.iter(|| GpuPartitioner::new(&config).partition(&rel))
    });
    g.bench_function("histogram-512k", |b| {
        b.iter(|| hcj_core::partition::HistogramPartitioner::new(&config).partition(&rel))
    });
    g.finish();
}

fn bench_workload_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("workload-generation");
    g.sample_size(10);
    let n = 1 << 18;
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("unique-256k", |b| {
        b.iter(|| RelationSpec::unique(n, 8).generate())
    });
    g.bench_function("zipf-0.9-256k", |b| {
        b.iter(|| RelationSpec::zipf(n, 1 << 20, 0.9, 9).generate())
    });
    g.bench_function("tpch-sf0.01", |b| {
        b.iter(|| hcj_workload::tpch::TpchTables::generate(0.01, 10))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_partitioning,
    bench_probe_kernels,
    bench_warp_primitives,
    bench_zipf,
    bench_packing,
    bench_end_to_end,
    bench_cpu_baselines,
    bench_partitioner_variants,
    bench_workload_generation
);
criterion_main!(benches);
