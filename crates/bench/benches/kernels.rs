//! Microbenchmarks of the hot kernels and substrate pieces (host wall
//! time of the library itself — the simulated-clock results live in the
//! `repro` binary). Runs on the dependency-free harness in
//! `hcj_bench::microbench`; pace with `HCJ_BENCH_BUDGET_MS`.

use hcj_bench::microbench::{bench, bench_with_setup};

use hcj_core::join::ballot_nl::ballot_nl_join;
use hcj_core::join::sm_hash::sm_hash_join;
use hcj_core::output::OutputSink;
use hcj_core::packing::{pack_working_sets, PartitionSize};
use hcj_core::partition::GpuPartitioner;
use hcj_core::{GpuJoinConfig, OutputMode};
use hcj_gpu::warp::{ballot_match, Lanes};
use hcj_gpu::DeviceSpec;
use hcj_workload::generate::canonical_pair;
use hcj_workload::rng::{Rng, SmallRng};
use hcj_workload::{RelationSpec, ZipfSampler};

fn bench_partitioning() {
    let n = 1 << 20;
    let rel = RelationSpec::unique(n, 1).generate();
    for bits in [8u32, 12, 15] {
        let config = GpuJoinConfig::paper_default(DeviceSpec::gtx1080())
            .with_radix_bits(bits)
            .with_tuned_buckets(n);
        bench("gpu-radix-partition", &format!("1M-tuples-{bits}bits"), || {
            GpuPartitioner::new(&config).partition(&rel)
        });
    }
}

fn bench_probe_kernels() {
    let n = 4096;
    let config = GpuJoinConfig::paper_default(DeviceSpec::gtx1080());
    let keys: Vec<u32> = (0..n as u32).collect();
    let pays = keys.clone();
    bench_with_setup(
        "probe-kernels",
        "sm-hash-4k-copartition",
        || OutputSink::new(OutputMode::Aggregate, 512),
        |mut sink| sm_hash_join(&config, 0, &keys, &pays, &keys, &pays, &mut sink),
    );
    bench_with_setup(
        "probe-kernels",
        "ballot-nl-4k-copartition",
        || OutputSink::new(OutputMode::Aggregate, 512),
        |mut sink| ballot_nl_join(&config, 0, &keys, &pays, &keys, &pays, &mut sink),
    );
}

fn bench_warp_primitives() {
    let mut rng = SmallRng::seed_from_u64(7);
    let mut r: Lanes<u32> = [0; 32];
    let mut s: Lanes<u32> = [0; 32];
    for i in 0..32 {
        r[i] = rng.next_u64() as u32 & 0xFFFF;
        s[i] = rng.next_u64() as u32 & 0xFFFF;
    }
    let bits: Vec<u32> = (0..16).collect();
    bench("warp", "ballot-match-16bits", || {
        ballot_match(std::hint::black_box(&r), std::hint::black_box(&s), &bits, u32::MAX)
    });
}

fn bench_zipf() {
    let z = ZipfSampler::new(1 << 24, 0.9);
    let mut rng = SmallRng::seed_from_u64(3);
    bench("workload", "zipf-sample", || z.sample(&mut rng));
}

fn bench_packing() {
    let mut rng = SmallRng::seed_from_u64(11);
    let parts: Vec<PartitionSize> = (0..64)
        .map(|id| {
            let t = rng.next_u64() % 10_000 + 1;
            PartitionSize { id, tuples: t, padded_bytes: t * 24 }
        })
        .collect();
    let budget = parts.iter().map(|p| p.padded_bytes).max().unwrap() * 6;
    bench("working-set-packing", "knapsack-64-partitions", || {
        pack_working_sets(&parts, budget, budget / 4)
    });
}

fn bench_end_to_end() {
    let n = 1 << 18;
    let (r, s) = canonical_pair(n, n, 5);
    let config = GpuJoinConfig::paper_default(DeviceSpec::gtx1080())
        .with_radix_bits(9)
        .with_tuned_buckets(n);
    bench("end-to-end", "gpu-partitioned-join-256k", || {
        hcj_core::GpuPartitionedJoin::new(config.clone()).execute(&r, &s).unwrap()
    });
}

fn bench_cpu_baselines() {
    let n = 1 << 17;
    let (r, s) = canonical_pair(n, n, 6);
    bench("cpu-baselines", "pro-128k", || hcj_cpu_join::ProJoin::paper_default().execute(&r, &s));
    bench("cpu-baselines", "npo-128k", || hcj_cpu_join::NpoJoin::paper_default().execute(&r, &s));
}

fn bench_partitioner_variants() {
    let n = 1 << 19;
    let rel = RelationSpec::unique(n, 7).generate();
    let config = GpuJoinConfig::paper_default(DeviceSpec::gtx1080())
        .with_radix_bits(12)
        .with_tuned_buckets(n);
    bench("partitioner-variants", "atomic-chains-512k", || {
        GpuPartitioner::new(&config).partition(&rel)
    });
    bench("partitioner-variants", "histogram-512k", || {
        hcj_core::partition::HistogramPartitioner::new(&config).partition(&rel)
    });
}

fn bench_workload_generation() {
    let n = 1 << 18;
    bench("workload-generation", "unique-256k", || RelationSpec::unique(n, 8).generate());
    bench("workload-generation", "zipf-0.9-256k", || {
        RelationSpec::zipf(n, 1 << 20, 0.9, 9).generate()
    });
    bench("workload-generation", "tpch-sf0.01", || {
        hcj_workload::tpch::TpchTables::generate(0.01, 10)
    });
}

fn main() {
    bench_partitioning();
    bench_probe_kernels();
    bench_warp_primitives();
    bench_zipf();
    bench_packing();
    bench_end_to_end();
    bench_cpu_baselines();
    bench_partitioner_variants();
    bench_workload_generation();
}
