//! The worker count may only change wall-clock time — never a match
//! count, a simulated schedule, or a rendered byte. These tests pin that
//! guarantee by running representative work at `--jobs 1` and `--jobs 4`
//! and comparing everything observable.

use std::sync::Mutex;

use hcj_bench::figures::common::{resident_config, run_resident};
use hcj_bench::figures::{fig05, fig13};
use hcj_bench::RunConfig;
use hcj_host::pool;
use hcj_workload::generate::canonical_pair;

/// `pool::set_jobs` is process-global; tests in this binary serialize
/// their mutations so a parallel test run cannot interleave them.
static JOBS_LOCK: Mutex<()> = Mutex::new(());

fn with_jobs<R>(jobs: usize, f: impl FnOnce() -> R) -> R {
    let _guard = JOBS_LOCK.lock().unwrap();
    let prev = pool::jobs();
    pool::set_jobs(jobs);
    let result = f();
    pool::set_jobs(prev);
    result
}

fn cfg() -> RunConfig {
    RunConfig { scale: 64, quick: true, out_dir: None, trace_dir: None, profile: false }
}

/// An in-GPU figure (kernel-level parallelism: partitioning + probe).
#[test]
fn in_gpu_figure_renders_identically_across_jobs() {
    let serial = with_jobs(1, || fig05::run(&cfg()));
    let parallel = with_jobs(4, || fig05::run(&cfg()));
    assert_eq!(serial.render(), parallel.render(), "rendered table must not depend on --jobs");
    assert_eq!(serial.to_csv(), parallel.to_csv(), "CSV bytes must not depend on --jobs");
}

/// An out-of-GPU figure (sweep-level parallelism over thread counts).
#[test]
fn out_of_gpu_figure_renders_identically_across_jobs() {
    let serial = with_jobs(1, || fig13::run(&cfg()));
    let parallel = with_jobs(4, || fig13::run(&cfg()));
    assert_eq!(serial.render(), parallel.render(), "rendered table must not depend on --jobs");
    assert_eq!(serial.to_csv(), parallel.to_csv(), "CSV bytes must not depend on --jobs");
}

/// The join outcome itself: match counts, checksums and the simulated
/// schedule, span by span. Host-side parallelism must not perturb the
/// modeled timeline, and the parallel-built schedule must still pass the
/// structural validator.
#[test]
fn join_outcome_and_schedule_are_identical_across_jobs() {
    let n = 1 << 17;
    let (r, s) = canonical_pair(n, n, 42);
    let config = resident_config(&cfg(), 15, n);
    let serial = with_jobs(1, || run_resident(config.clone(), &r, &s));
    let parallel = with_jobs(4, || run_resident(config.clone(), &r, &s));

    assert_eq!(serial.check, parallel.check, "match count / checksum diverged");
    assert_eq!(serial.tuples_in, parallel.tuples_in);
    assert_eq!(serial.schedule.makespan(), parallel.schedule.makespan());

    let a = serial.schedule.spans();
    let b = parallel.schedule.spans();
    assert_eq!(a.len(), b.len(), "span count diverged");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.op, y.op);
        assert_eq!(x.label, y.label, "op {:?}", x.op);
        assert_eq!(x.resource, y.resource, "op {} ({})", x.label, "resource");
        assert_eq!(x.start, y.start, "op {} start", x.label);
        assert_eq!(x.end, y.end, "op {} end", x.label);
        assert_eq!(x.deps, y.deps, "op {} deps", x.label);
    }

    parallel.schedule.validate().expect("parallel-built schedule must stay structurally valid");
}

/// `--profile` output: the rendered per-kernel counter tables and the
/// profile JSON are byte-identical across worker counts, run-to-run, and
/// under the chaos-0 control (the armed-but-all-zero fault layer).
#[test]
fn profile_output_is_stable_across_jobs_runs_and_chaos_zero() {
    let profiled = RunConfig { profile: true, ..cfg() };
    let serial = with_jobs(1, || fig05::run(&profiled));
    let parallel = with_jobs(4, || fig05::run(&profiled));
    assert!(
        serial.render().contains("profile [fig05-hash]"),
        "--profile must attach a counter table"
    );
    assert_eq!(serial.render(), parallel.render(), "profiled render must not depend on --jobs");

    let again = with_jobs(1, || fig05::run(&profiled));
    assert_eq!(serial.render(), again.render(), "profiled render must be stable run-to-run");

    // Counter JSON, straight from a join outcome (what --out writes).
    let n = 1 << 16;
    let (r, s) = canonical_pair(n, n, 42);
    let config = resident_config(&profiled, 15, n);
    let baseline = with_jobs(1, || run_resident(config.clone(), &r, &s));
    let rerun = with_jobs(4, || run_resident(config.clone(), &r, &s));
    assert_eq!(baseline.counters.to_json(), rerun.counters.to_json());

    let chaos_zero = with_jobs(1, || {
        hcj_gpu::faults::set_ambient(Some(hcj_gpu::FaultConfig::disabled(0)));
        let out = run_resident(config.clone(), &r, &s);
        hcj_gpu::faults::set_ambient(None);
        out
    });
    assert_eq!(
        baseline.counters.to_json(),
        chaos_zero.counters.to_json(),
        "chaos-0 control must not perturb profile JSON"
    );
}
