//! Figure 15: state-of-the-art GPU systems across relation sizes
//! (paper §V-C).
//!
//! Equally-sized tables from 1 M to 512 M tuples. Expected shape: every
//! engine is fastest while data fits its GPU caching policy; DBMS-X stops
//! caching past (scaled) 32 M tuples and collapses ~10x; CoGaDB cannot run
//! the two largest sizes; our engine stays on top throughout, reverting to
//! out-of-GPU strategies when residency ends (scaled 128 M).

use hcj_engines::{CoGaDbLike, DbmsXLike, HcjEngine};
use hcj_workload::generate::canonical_pair;

use crate::figures::common::{
    fmt_tuples, parallel_points, record_outcome, scaled_bits, scaled_device,
};
use crate::{btps, RunConfig, Table};

pub fn run(cfg: &RunConfig) -> Table {
    let device = scaled_device(cfg);
    let mut table = Table::new(
        "fig15",
        "State-of-the-art GPU systems across build/probe sizes",
        "build/probe relation size (tuples)",
        "billion tuples/s",
        vec!["gpu-partitioned (ours)".into(), "dbms-x (model)".into(), "cogadb (model)".into()],
    );
    table.note(format!(
        "paper sizes 1M-512M divided by {}; device + engine limits scaled alike",
        cfg.scale
    ));

    let points = cfg.sweep(&[1u64, 2, 4, 8, 16, 32, 64, 128, 256, 512]);
    let results = parallel_points(&points, |&millions| {
        let tuples = cfg.mtuples(millions);
        let (r, s) = canonical_pair(tuples, tuples, 1500 + millions);
        let join_cfg = hcj_core::GpuJoinConfig::paper_default(device.clone())
            .with_radix_bits(scaled_bits(15, cfg.scale))
            .with_tuned_buckets(tuples / 4);
        let (_, ours) = HcjEngine::new(join_cfg)
            .execute(&r, &s)
            .expect("the hcj engine runs every table size (Fig. 15 claim)");
        let mut dx =
            DbmsXLike::new(device.clone()).with_cache_limit((32_000_000 / cfg.scale) as usize);
        dx.query_overhead_s /= cfg.scale as f64;
        let dbmsx = dx.execute(&r, &s);
        let mut cg = CoGaDbLike::new(device.clone()).with_load_limit((4u64 << 30) / cfg.scale);
        cg.operator_overhead_s /= cfg.scale as f64;
        let cogadb = cg.execute(&r, &s);
        let row = vec![
            Some(btps(ours.throughput_tuples_per_s())),
            dbmsx.ok().map(|x| btps(x.throughput_tuples_per_s())),
            cogadb.ok().map(|x| btps(x.throughput_tuples_per_s())),
        ];
        (fmt_tuples(tuples), row, ours)
    });
    for (label, row, _) in &results {
        table.row(label.clone(), row.clone());
    }
    if let Some((_, _, out)) = results.last() {
        record_outcome(cfg, &mut table, "fig15-hcj", out);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig15_cliffs_and_failures_match() {
        let cfg =
            RunConfig { scale: 16, quick: false, out_dir: None, trace_dir: None, profile: false };
        let t = run(&cfg);
        // Ours leads wherever a comparator has a value.
        for (x, v) in &t.rows {
            if let Some(dx) = v[1] {
                assert!(v[0].unwrap() > dx, "{x}: ours {} vs dbms-x {dx}", v[0].unwrap());
            }
        }
        // DBMS-X's out-of-cache cliff: the 64M row (scaled 4M > 2M limit)
        // runs ~10x slower than its 16M row (scaled 1M, cached).
        let val =
            |label: &str, col: usize| t.rows.iter().find(|(x, _)| x == label).map(|(_, v)| v[col]);
        let cached = val("1M", 1).flatten().expect("16M-paper row runs cached");
        let cliff = val("4M", 1).flatten().expect("64M-paper row runs uncached");
        assert!(cached > 3.0 * cliff, "DBMS-X cliff: cached {cached} vs uncached {cliff}");
        // CoGaDB is absent at the largest sizes.
        let last = &t.rows.last().unwrap().1;
        assert!(last[2].is_none(), "CoGaDB cannot run the 512M-paper point");
        // Ours runs everything.
        assert!(t.rows.iter().all(|(_, v)| v[0].is_some()));
    }
}
