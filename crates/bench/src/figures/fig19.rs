//! Figure 19: uniform numbers of replicas per key, for GPU-resident and
//! CPU-resident data (paper §V-E).
//!
//! Both sides hold every key exactly `k` times (k = 1..4), so the result
//! has `k` matches per probe tuple. Expected shape: throughput declines
//! gently with the replica count (more matches per probe, longer chains),
//! with the out-of-GPU variant flatter (PCIe-bound).

use hcj_core::{
    CoProcessingConfig, CoProcessingJoin, GpuJoinConfig, GpuPartitionedJoin, OutputMode,
};
use hcj_workload::{KeyDistribution, RelationSpec};

use crate::figures::common::{
    parallel_points, record_outcome, resident_config, scaled_bits, scaled_device,
};
use crate::{btps, RunConfig, Table};

pub fn run(cfg: &RunConfig) -> Table {
    let n_resident = cfg.mtuples(32);
    let extra = 64;
    let n_out = cfg.tuples(512_000_000 / extra);
    let device_out = scaled_device(cfg).scaled_capacity(extra);
    let mut table = Table::new(
        "fig19",
        "Uniform number of replicas per key",
        "avg. number of replicas",
        "billion tuples/s",
        vec![
            "gpu-resident agg".into(),
            "gpu-resident mat".into(),
            "cpu-resident agg".into(),
            "cpu-resident mat".into(),
        ],
    );
    table.note(format!("GPU-resident at {n_resident} tuples/side; CPU-resident at {n_out}"));

    let points = cfg.sweep(&[1u32, 2, 3, 4]);
    let results = parallel_points(&points, |&replicas| {
        let gen = |n: usize, seed: u64| {
            RelationSpec {
                tuples: n,
                distribution: KeyDistribution::Replicated { replicas },
                payload_width: 4,
                seed,
            }
            .generate()
        };
        let mut values = Vec::new();
        // GPU-resident.
        let (r, s) = (gen(n_resident, 1900), gen(n_resident, 1901));
        for mode in [OutputMode::Aggregate, OutputMode::Materialize] {
            let config =
                resident_config(cfg, 15, n_resident).with_output(mode).with_row_cap(1 << 18);
            let out = GpuPartitionedJoin::new(config).execute(&r, &s).unwrap();
            // ~k matches per probe tuple (the generator tops up non-divisible
            // cardinalities with a few extra replicas).
            let expect = (n_resident as u64) * u64::from(replicas);
            assert!(
                out.check.matches >= expect
                    && out.check.matches < expect + 8 * u64::from(replicas) + 8,
                "matches {} vs expected ~{expect}",
                out.check.matches
            );
            values.push(Some(btps(out.throughput_tuples_per_s())));
        }
        // CPU-resident (co-processing).
        let (r, s) = (gen(n_out, 1902), gen(n_out, 1903));
        let mut rep = None;
        for mode in [OutputMode::Aggregate, OutputMode::Materialize] {
            let join_cfg = GpuJoinConfig::paper_default(device_out.clone())
                .with_radix_bits(scaled_bits(15, cfg.scale))
                .with_tuned_buckets(n_out / 16)
                .with_output(mode)
                .with_row_cap(1 << 18);
            let out = CoProcessingJoin::new(CoProcessingConfig::paper_default(join_cfg))
                .execute(&r, &s)
                .expect("co-processing needs only buffers");
            values.push(Some(btps(out.throughput_tuples_per_s())));
            rep = Some(out);
        }
        (replicas.to_string(), values, rep)
    });
    for (label, values, _) in &results {
        table.row(label.clone(), values.clone());
    }
    if let Some((_, _, Some(out))) = results.last() {
        record_outcome(cfg, &mut table, "fig19-coproc-replicas", out);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig19_gentle_decline_with_replicas() {
        let cfg =
            RunConfig { scale: 64, quick: false, out_dir: None, trace_dir: None, profile: false };
        let t = run(&cfg);
        let first = &t.rows.first().unwrap().1;
        let last = &t.rows.last().unwrap().1;
        // In-GPU throughput declines with replicas but does not collapse.
        assert!(last[0].unwrap() <= first[0].unwrap() * 1.02);
        assert!(last[0].unwrap() > 0.3 * first[0].unwrap());
        // Out-of-GPU is flatter than in-GPU.
        let in_drop = first[0].unwrap() / last[0].unwrap();
        let out_drop = first[2].unwrap() / last[2].unwrap();
        assert!(out_drop <= in_drop * 1.1, "out {out_drop} vs in {in_drop}");
    }
}
