//! Ablations of the design choices DESIGN.md calls out (not figures in
//! the paper, but each backs a design argument the paper makes in prose):
//!
//! 1. bucket-at-a-time vs partition-at-a-time pass assignment under skew
//!    and under uniform data (§III-A's trade-off);
//! 2. knapsack vs naive working-set packing under skew (§IV-D);
//! 3. pinned vs pageable transfer buffers (§IV-B);
//! 4. double vs single buffering in the streamed-probe pipeline (§IV-A);
//! 5. warp-buffered vs per-thread direct materialization (§III-C);
//! 6. non-temporal vs regular stores in CPU partitioning (§IV-B).

use hcj_core::coprocess::PackingPolicy;
use hcj_core::output::ROW_BYTES;
use hcj_core::partition::GpuPartitioner;
use hcj_core::{
    CoProcessingConfig, CoProcessingJoin, GpuJoinConfig, PassAssignment, StreamedProbeConfig,
    StreamedProbeJoin,
};
use hcj_gpu::{KernelCost, TransferKind};
use hcj_workload::generate::canonical_pair;
use hcj_workload::RelationSpec;

use crate::figures::common::{resident_config, scaled_bits, scaled_device};
use crate::{RunConfig, Table};

pub fn run(cfg: &RunConfig) -> Table {
    let mut table = Table::new(
        "ablations",
        "Design-choice ablations (speedup of the paper's choice over the alternative)",
        "ablation",
        "speedup (x)",
        vec!["paper choice (s)".into(), "alternative (s)".into(), "speedup".into()],
    );

    let push = |table: &mut Table, name: &str, choice_s: f64, alt_s: f64| {
        table.row(name, vec![Some(choice_s), Some(alt_s), Some(alt_s / choice_s)]);
    };

    // 1a. pass assignment under skew (bucket-at-a-time must win).
    {
        let n = cfg.mtuples(8);
        let rel = RelationSpec::zipf(n, 1 << 22, 1.0, 3000).generate();
        let t = |assignment| {
            let mut config = resident_config(cfg, 15, n).with_assignment(assignment);
            // Keep the refinement pass's parent fanout physical (2^8) so
            // chain-granularity effects reflect the paper's configuration
            // rather than the scaled-down one. This ablation studies the
            // refinement pass itself, so early stopping must not skip it.
            config.radix_bits = 16;
            config.bucket_capacity = 64;
            config.fuse_small_partitions = false;
            GpuPartitioner::new(&config).partition(&rel).total_seconds()
        };
        push(
            &mut table,
            "pass assignment, zipf 1.0 (bucket vs chain)",
            t(PassAssignment::BucketAtATime),
            t(PassAssignment::PartitionAtATime),
        );
    }
    // 1b. ...and its cost on uniform data (chain-at-a-time wins there;
    // the paper accepts the loss for skew robustness).
    {
        let n = cfg.mtuples(8);
        let rel = RelationSpec::unique(n, 3001).generate();
        let t = |assignment| {
            let mut config = resident_config(cfg, 15, n).with_assignment(assignment);
            // Physical parent fanout (see above); several buckets per
            // chain, so the per-bucket metadata re-initialization and
            // descriptor fetches of bucket-at-a-time are visible. As in
            // 1a, the refinement pass under study must actually run.
            config.radix_bits = 16;
            config.bucket_capacity = 64;
            config.fuse_small_partitions = false;
            GpuPartitioner::new(&config).partition(&rel).total_seconds()
        };
        push(
            &mut table,
            "pass assignment, uniform (bucket vs chain)",
            t(PassAssignment::BucketAtATime),
            t(PassAssignment::PartitionAtATime),
        );
    }

    // 2. knapsack vs naive working-set packing under skew.
    {
        let extra = 64;
        let n = cfg.tuples(512_000_000 / extra);
        let device = scaled_device(cfg).scaled_capacity(extra);
        let r = RelationSpec::zipf(n, 1 << 22, 0.9, 3002).generate();
        let s = RelationSpec::zipf(2 * n, 1 << 22, 0.9, 3003).generate();
        let t = |packing| {
            let join_cfg = GpuJoinConfig::paper_default(device.clone())
                .with_radix_bits(scaled_bits(15, cfg.scale))
                .with_tuned_buckets(n / 16);
            CoProcessingJoin::new(CoProcessingConfig::paper_default(join_cfg).with_packing(packing))
                .execute(&r, &s)
                .expect("buffers fit")
                .total_seconds()
        };
        push(
            &mut table,
            "working-set packing, zipf 0.9 (knapsack vs naive)",
            t(PackingPolicy::Knapsack),
            t(PackingPolicy::Naive),
        );
    }

    // 3. pinned vs pageable transfers (streamed probe).
    // 4. double vs single buffering (streamed probe).
    {
        let n = cfg.mtuples(4);
        let (r, s) = canonical_pair(n, 8 * n, 3004);
        let t = |kind, buffers| {
            let config = StreamedProbeConfig::paper_default(resident_config(cfg, 15, n))
                .with_transfer(kind)
                .with_buffers(buffers);
            StreamedProbeJoin::new(config).execute(&r, &s).expect("build fits").total_seconds()
        };
        push(
            &mut table,
            "transfer buffers (pinned vs pageable)",
            t(TransferKind::Pinned, 2),
            t(TransferKind::Pageable, 2),
        );
        push(
            &mut table,
            "buffering (double vs single)",
            t(TransferKind::Pinned, 2),
            t(TransferKind::Pinned, 1),
        );
    }

    // 5. warp-buffered vs per-thread direct materialization: compare the
    // output-path traffic analytically on the measured match count.
    {
        let n = cfg.mtuples(8);
        let matches = n as u64; // 1:1 unique join
        let device = hcj_gpu::DeviceSpec::gtx1080();
        let mut warp = KernelCost::ZERO;
        warp.add_shared(matches * ROW_BYTES);
        warp.add_global_atomics(matches.div_ceil(512));
        warp.add_coalesced(matches * ROW_BYTES);
        let mut direct = KernelCost::ZERO;
        // Each thread writes its row wherever its private cursor points:
        // one random transaction per row plus a global atomic for the slot.
        direct.add_random(matches);
        direct.add_global_atomics(matches);
        push(
            &mut table,
            "materialization (warp-buffered vs direct)",
            warp.time(&device),
            direct.time(&device),
        );
    }

    // 6. non-temporal vs regular stores in CPU partitioning.
    {
        let extra = 64;
        let n = cfg.tuples(512_000_000 / extra);
        let device = scaled_device(cfg).scaled_capacity(extra);
        let (r, s) = canonical_pair(n, n, 3005);
        let t = |nt| {
            let join_cfg = GpuJoinConfig::paper_default(device.clone())
                .with_radix_bits(scaled_bits(15, cfg.scale))
                .with_tuned_buckets(n / 16);
            CoProcessingJoin::new(
                CoProcessingConfig::paper_default(join_cfg).with_threads(24).with_non_temporal(nt),
            )
            .execute(&r, &s)
            .expect("buffers fit")
            .total_seconds()
        };
        push(&mut table, "CPU stores (non-temporal vs regular)", t(true), t(false));
    }

    // 7. chained-bucket (atomics) vs histogram partitioning — the §VI
    // argument against the two-phase approach of Rui & Tu. Early-stop
    // fusion is pinned off: the histogram partitioner has no equivalent,
    // and the comparison is about the per-pass mechanism.
    {
        let n = cfg.mtuples(8);
        let rel = RelationSpec::unique(n, 3007).generate();
        let mut config = resident_config(cfg, 15, n);
        config.fuse_small_partitions = false;
        let chained = GpuPartitioner::new(&config).partition(&rel).total_seconds();
        let histogram =
            hcj_core::partition::HistogramPartitioner::new(&config).partition(&rel).total_seconds();
        push(&mut table, "partitioning (atomic chains vs histogram)", chained, histogram);
    }

    // 9. software write-combining in the partitioning kernels: the paper's
    // shared-memory shuffle vs a naive kernel scattering from registers.
    {
        let n = cfg.mtuples(8);
        let rel = RelationSpec::unique(n, 3008).generate();
        let mut config = resident_config(cfg, 15, n);
        config.fuse_small_partitions = false; // isolate the write path
        let combined = GpuPartitioner::new(&config).partition(&rel).total_seconds();
        let naive_cfg = config.with_write_combining(false);
        let naive = GpuPartitioner::new(&naive_cfg).partition(&rel).total_seconds();
        push(&mut table, "partition writes (combined vs naive scatter)", combined, naive);
    }

    // 10. fused early-stop refinement (the profiler-driven speed campaign)
    // vs the paper's full pass plan, on a cardinality whose refinement
    // parents already fit the shared-memory budget (where early stopping
    // can bite; at full scale the paper's configuration genuinely needs
    // every pass and the two coincide).
    {
        let n = cfg.mtuples(2);
        let rel = RelationSpec::unique(n, 3009).generate();
        let fused_cfg = resident_config(cfg, 15, n);
        let fused = GpuPartitioner::new(&fused_cfg).partition(&rel).total_seconds();
        let mut full_cfg = fused_cfg.clone();
        full_cfg.fuse_small_partitions = false;
        let full = GpuPartitioner::new(&full_cfg).partition(&rel).total_seconds();
        push(&mut table, "refinement early-stop (fused vs full plan)", fused, full);
    }

    // 8. probe-chunk sizing in co-processing: the paper streams chunks
    // "through the remaining GPU memory"; tiny chunks re-stage the working
    // set's R co-partitions once per chunk and turn the pipeline GPU-bound.
    {
        let extra = 64;
        let n = cfg.tuples(512_000_000 / extra);
        let device = scaled_device(cfg).scaled_capacity(extra);
        let (r, s) = canonical_pair(n, 2 * n, 3006);
        let t = |chunk_tuples: Option<usize>| {
            let join_cfg = GpuJoinConfig::paper_default(device.clone())
                .with_radix_bits(scaled_bits(15, cfg.scale))
                .with_tuned_buckets(n / 16);
            let mut config = CoProcessingConfig::paper_default(join_cfg);
            config.s_chunk_tuples = chunk_tuples;
            CoProcessingJoin::new(config).execute(&r, &s).expect("buffers fit").total_seconds()
        };
        let tiny = ((device.device_mem_bytes / 256) / 8) as usize;
        push(
            &mut table,
            "probe chunk sizing (remaining-memory vs tiny chunks)",
            t(None),
            t(Some(tiny.max(64))),
        );
    }

    table.note("speedup > 1 means the paper's choice wins; < 1 means it pays a deliberate cost");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablations_vindicate_the_papers_choices_where_claimed() {
        let cfg =
            RunConfig { scale: 64, quick: true, out_dir: None, trace_dir: None, profile: false };
        let t = run(&cfg);
        let speedup = |name: &str| {
            t.rows
                .iter()
                .find(|(x, _)| x.starts_with(name))
                .unwrap_or_else(|| panic!("missing ablation {name}"))
                .1[2]
                .unwrap()
        };
        // Skew: bucket-at-a-time wins clearly.
        assert!(speedup("pass assignment, zipf") > 1.2);
        // Uniform: the paper concedes bucket-at-a-time "fares worse".
        assert!(speedup("pass assignment, uniform") < 1.0);
        // Pinned beats pageable.
        assert!(speedup("transfer buffers") > 1.2);
        // Double buffering beats single.
        assert!(speedup("buffering") > 1.1);
        // Warp buffering beats direct writes by a lot.
        assert!(speedup("materialization") > 3.0);
        // Knapsack packing does not lose.
        assert!(speedup("working-set packing") >= 0.99);
        // Remaining-memory chunks beat tiny chunks.
        assert!(speedup("probe chunk sizing") > 1.1);
        // Atomic bucket chains beat the two-phase histogram approach.
        assert!(speedup("partitioning (atomic chains") > 1.05);
        // Software write-combining beats the naive scatter kernel.
        assert!(speedup("partition writes") > 1.2);
        // Early-stop refinement wins when parents already fit the budget.
        assert!(speedup("refinement early-stop") > 1.05);
    }
}
