//! Figure 6: hash table in shared memory vs device memory while the
//! relation size grows (paper §V-B).
//!
//! Paper setup: 2 partitioning passes to 2^15 partitions; 4096-element
//! shared memory, 512 threads, 2048 buckets; sizes 1–128 M per side.
//! Expected shape: shared memory wins throughout; the gap widens as
//! partitions fill up and (for device memory) chains form; totals differ
//! ~30% at the largest size because partitioning dominates both.

use hcj_core::ProbeKind;
use hcj_workload::generate::canonical_pair;

use crate::figures::common::{
    fmt_tuples, parallel_points, record_outcome, record_probes, resident_config, run_resident,
};
use crate::{btps, RunConfig, Table};

pub fn run(cfg: &RunConfig) -> Table {
    let mut table = Table::new(
        "fig06",
        "Hash table in shared vs device memory",
        "build/probe relation size (tuples)",
        "billion tuples/s",
        vec![
            "shared total".into(),
            "shared join-copart".into(),
            "device total".into(),
            "device join-copart".into(),
        ],
    );
    table.note(format!(
        "paper sizes 1M-128M divided by {}; radix bits shrunk with scale to keep partition sizes",
        cfg.scale
    ));

    let points = cfg.sweep(&[1u64, 2, 4, 8, 16, 32, 64, 128]);
    let results = parallel_points(&points, |&millions| {
        let tuples = cfg.mtuples(millions);
        let (r, s) = canonical_pair(tuples, tuples, 600 + millions);
        let base = resident_config(cfg, 15, tuples);
        let shared = run_resident(base.clone().with_probe(ProbeKind::HashJoin), &r, &s);
        let device = run_resident(base.with_probe(ProbeKind::DeviceHashJoin), &r, &s);
        assert_eq!(shared.check, device.check);
        let row = vec![
            Some(btps(shared.throughput_tuples_per_s())),
            Some(btps(shared.join_phase_throughput())),
            Some(btps(device.throughput_tuples_per_s())),
            Some(btps(device.join_phase_throughput())),
        ];
        (fmt_tuples(tuples), row, shared)
    });
    for (label, row, _) in &results {
        table.row(label.clone(), row.clone());
    }
    if let Some((_, _, out)) = results.last() {
        record_outcome(cfg, &mut table, "fig06-shared", out);
    }
    // Gate both ends of the sweep: the smallest size is where the radix
    // plan over-refines (partitions far below the shared-memory budget),
    // so its cycles pin the fused early-stop win; the largest size above
    // pins the full pass plan.
    if let Some((_, _, out)) = results.first() {
        record_probes(&mut table, "fig06-shared-small", out);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig06_shared_memory_wins() {
        let cfg =
            RunConfig { scale: 64, quick: true, out_dir: None, trace_dir: None, profile: false };
        let t = run(&cfg);
        for (x, vals) in &t.rows {
            let (sh_join, dev_join) = (vals[1].unwrap(), vals[3].unwrap());
            assert!(sh_join > dev_join, "{x}: shared {sh_join} vs device {dev_join}");
        }
        // Total gap at the largest size is significant but bounded
        // (partitioning dominates): paper quotes ~30%+.
        let last = &t.rows.last().unwrap().1;
        let (sh_total, dev_total) = (last[0].unwrap(), last[2].unwrap());
        assert!(sh_total > 1.1 * dev_total);
        assert!(sh_total < 5.0 * dev_total);
    }
}
