//! Figure 7: partitioned hash join with and without output
//! materialization (paper §V-B).
//!
//! Equally-sized in-GPU relations, 1–128 M tuples; one match per probe
//! tuple (same distinct values on both sides). Expected shape: the
//! materializing run traces the aggregating run closely — warp-level
//! output buffering keeps the overhead small.

use hcj_core::OutputMode;
use hcj_workload::generate::canonical_pair;

use crate::figures::common::{
    fmt_tuples, parallel_points, record_outcome, resident_config, run_resident,
};
use crate::{btps, RunConfig, Table};

pub fn run(cfg: &RunConfig) -> Table {
    let mut table = Table::new(
        "fig07",
        "Partitioned hash join with and without output materialization",
        "build/probe relation size (tuples)",
        "billion tuples/s",
        vec!["aggregation".into(), "materialization".into()],
    );
    table.note(format!("paper sizes 1M-128M divided by {}", cfg.scale));

    let points = cfg.sweep(&[1u64, 2, 4, 8, 16, 32, 64, 128]);
    let results = parallel_points(&points, |&millions| {
        let tuples = cfg.mtuples(millions);
        let (r, s) = canonical_pair(tuples, tuples, 700 + millions);
        let base = resident_config(cfg, 15, tuples);
        let agg = run_resident(base.clone().with_output(OutputMode::Aggregate), &r, &s);
        // Cap retained rows: the figure measures throughput, not the
        // result's host-side copy; device traffic is accounted in full.
        let mat =
            run_resident(base.with_output(OutputMode::Materialize).with_row_cap(1 << 20), &r, &s);
        assert_eq!(agg.check, mat.check);
        let row = vec![
            Some(btps(agg.throughput_tuples_per_s())),
            Some(btps(mat.throughput_tuples_per_s())),
        ];
        (fmt_tuples(tuples), row, agg)
    });
    for (label, row, _) in &results {
        table.row(label.clone(), row.clone());
    }
    if let Some((_, _, out)) = results.last() {
        record_outcome(cfg, &mut table, "fig07-aggregate", out);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig07_materialization_traces_aggregation() {
        let cfg =
            RunConfig { scale: 64, quick: true, out_dir: None, trace_dir: None, profile: false };
        let t = run(&cfg);
        for (x, vals) in &t.rows {
            let (agg, mat) = (vals[0].unwrap(), vals[1].unwrap());
            assert!(mat <= agg * 1.001, "{x}: materialization cannot be faster");
            assert!(mat > agg * 0.55, "{x}: overhead must stay bounded ({mat} vs {agg})");
        }
    }
}
