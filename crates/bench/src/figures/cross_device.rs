//! Cross-device partitioned exchange: one join too big for any single
//! GPU, served by 1–4 devices (`hcj_engines::exchange`).
//!
//! Beyond the paper's single-GPU testbed, in the direction its conclusion
//! points (scaling hardware-conscious joins past one device's memory):
//! both inputs are radix-partitioned on the host, partitions are assigned
//! to devices by a bandwidth-weighted consistent-hash ring, non-local
//! partitions shuffle over the modeled peer interconnect, and each device
//! joins its partitions with the paper's partitioned join. The sweep
//! reports end-to-end throughput and the shuffled volume as the fleet
//! widens, plus a heterogeneous GTX 1080 + V100 row showing
//! bandwidth-weighted ownership.

use hcj_engines::exchange::{execute_exchange, ExchangeConfig, ExchangeParticipant};
use hcj_engines::HcjEngine;
use hcj_gpu::DeviceSpec;
use hcj_host::HostSpec;
use hcj_workload::generate::canonical_pair;

use crate::figures::common::parallel_points;
use crate::{btps, RunConfig, Table};

/// Sweep points: homogeneous fleets of 1–4 GTX 1080s, then the mixed
/// fleet. `None` widths mark the heterogeneous row.
const POINTS: [(&str, Option<usize>); 5] = [
    ("1 device", Some(1)),
    ("2 devices", Some(2)),
    ("3 devices", Some(3)),
    ("4 devices", Some(4)),
    ("gtx1080+v100+gtx1080", None),
];

fn participants(point: Option<usize>, capacity_div: u64) -> Vec<ExchangeParticipant> {
    let specs: Vec<DeviceSpec> = match point {
        Some(n) => (0..n).map(|_| DeviceSpec::gtx1080()).collect(),
        None => vec![DeviceSpec::gtx1080(), DeviceSpec::v100(), DeviceSpec::gtx1080()],
    };
    specs
        .into_iter()
        .enumerate()
        .map(|(device, spec)| ExchangeParticipant {
            device,
            spec: spec.scaled_capacity(capacity_div),
        })
        .collect()
}

pub fn run(cfg: &RunConfig) -> Table {
    let mut table = Table::new(
        "cross-device",
        "Cross-device partitioned exchange join, 1-4 GPUs",
        "fleet",
        "billion tuples/s",
        vec!["throughput".into(), "exchange MB".into()],
    );
    table.note(
        "inputs overflow every single device; the exchange radix-partitions both sides, \
         shuffles non-local partitions over the peer link and joins per device",
    );
    table.note("partition ownership is weighted by device memory bandwidth (V100 ~2.8x GTX 1080)");

    // Inputs several times one device's capacity: devices shrink with the
    // run scale times an extra factor so the 1-device row must stream its
    // partitions through a device it overflows, exactly the regime the
    // exchange exists for.
    let build = cfg.mtuples(16);
    let probe = 4 * build;
    let extra = 64;
    let capacity_div = cfg.scale * extra;
    let (r, s) = canonical_pair(build, probe, 6000);
    let host = HostSpec::dual_xeon_e5_2650l_v3();
    let exchange_cfg = ExchangeConfig::default();

    let results = parallel_points(&POINTS, |&(name, point)| {
        let parts = participants(point, capacity_div);
        let join_cfg = hcj_core::GpuJoinConfig::paper_default(parts[0].spec.clone())
            .with_radix_bits(6)
            .with_tuned_buckets(build >> exchange_cfg.radix_bits.min(10));
        let engine = HcjEngine::new(join_cfg);
        let out = execute_exchange(&engine, &parts, &r, &s, &exchange_cfg, &host, 6000)
            .expect("exchange figure inputs partition to fit every device");
        assert_eq!(out.check.matches as usize, probe, "exchange join must be exact");
        (name, out)
    });

    let clock_hz = DeviceSpec::gtx1080().clock_hz;
    for ((name, point), (_, out)) in POINTS.iter().zip(&results) {
        let tuples = (build + probe) as f64;
        let roll = out.counters.rollup();
        let shuffled_mb = roll.exchange_out_bytes as f64 / (1 << 20) as f64;
        table.row(*name, vec![Some(btps(tuples / out.seconds)), Some(shuffled_mb)]);

        // Perf-gate probes: simulated cycles plus the exact per-direction
        // exchange volume of every width.
        use hcj_sim::baseline::Metric;
        let tag = match point {
            Some(n) => format!("n{n}"),
            None => "mix".into(),
        };
        let cycles = (out.seconds * clock_hz).round() as u64;
        table.probe(format!("cycles[{tag}]"), Metric::Exact(cycles));
        table.probe(format!("exchange_out_bytes[{tag}]"), Metric::Exact(roll.exchange_out_bytes));
        table.probe(format!("exchange_in_bytes[{tag}]"), Metric::Exact(roll.exchange_in_bytes));
        if point.is_none() {
            // Ownership split of the heterogeneous fleet: the V100 (device
            // 1) should own the majority of the 2^radix_bits partitions.
            let v100_owned = out.owners.iter().filter(|&&d| d == 1).count();
            table.probe("mix_v100_partitions", Metric::Exact(v100_owned as u64));
            table.note(format!(
                "mixed fleet: V100 owns {v100_owned}/{} partitions",
                out.owners.len()
            ));
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> RunConfig {
        RunConfig { scale: 64, quick: true, out_dir: None, trace_dir: None, profile: false }
    }

    #[test]
    fn single_device_shuffles_nothing_and_wider_fleets_shuffle_more() {
        let t = run(&cfg());
        assert_eq!(t.rows.len(), 5);
        let shuffled: Vec<f64> = t.rows.iter().map(|(_, v)| v[1].unwrap()).collect();
        assert_eq!(shuffled[0], 0.0, "one device owns every partition locally");
        assert!(shuffled[1] > 0.0, "two devices must shuffle");
        assert!(
            shuffled[3] > shuffled[1],
            "4 devices shuffle more than 2: {} vs {}",
            shuffled[3],
            shuffled[1]
        );
    }

    #[test]
    fn every_width_reports_positive_throughput() {
        let t = run(&cfg());
        for (name, vals) in &t.rows {
            assert!(vals[0].unwrap() > 0.0, "{name} throughput");
        }
    }

    #[test]
    fn the_v100_owns_the_majority_of_mixed_fleet_partitions() {
        let t = run(&cfg());
        let (_, metric) = t
            .probes
            .iter()
            .find(|(n, _)| n == "mix_v100_partitions")
            .expect("mix row records its ownership split");
        let hcj_sim::baseline::Metric::Exact(v100) = metric else {
            panic!("ownership probe is exact");
        };
        let total = 1u64 << ExchangeConfig::default().radix_bits;
        assert!(
            *v100 > total / 2,
            "V100 owns {v100}/{total}, expected the bandwidth-weighted majority"
        );
    }
}
