//! What-if studies beyond the paper's testbed — the extensions its
//! conclusion points at:
//!
//! * **Interconnects** (§V-C: "under faster interconnects, like NVLink or
//!   PCIe 4.0, our join algorithms would provide higher throughput"): the
//!   out-of-GPU strategies swept across PCIe 3.0 / PCIe 4.0 / NVLink2-class
//!   link rates;
//! * **Devices**: the GPU-resident join on a V100-class part (more SMs,
//!   HBM2, bigger shared memory and L2) vs the paper's GTX 1080;
//! * **Thread auto-selection** (§IV-B's rule; the paper configures threads
//!   statically and leaves adaptivity as future work): the machine-model
//!   rule vs the paper's static 16.

use hcj_core::{
    CoProcessingConfig, CoProcessingJoin, GpuJoinConfig, GpuPartitionedJoin, StreamedProbeConfig,
    StreamedProbeJoin,
};
use hcj_gpu::DeviceSpec;
use hcj_workload::generate::canonical_pair;

use crate::figures::common::{parallel_points, scaled_bits, scaled_device};
use crate::{btps, RunConfig, Table};

/// Interconnect sweep for the out-of-GPU strategies.
pub fn run_interconnect(cfg: &RunConfig) -> Table {
    let mut table = Table::new(
        "whatif-interconnect",
        "Out-of-GPU strategies under faster interconnects",
        "interconnect",
        "billion tuples/s",
        vec!["streamed probe".into(), "co-processing".into()],
    );
    table.note("the paper predicts out-of-GPU throughput scales with the link (§V-C)");
    table.note(
        "streamed probe scales ~linearly; co-processing scales sublinearly because \
         CPU partitioning throughput becomes the next bottleneck",
    );

    let links: [(&str, f64); 3] = [
        ("PCIe 3.0 x16 (12 GB/s)", 12.0e9),
        ("PCIe 4.0 x16 (24 GB/s)", 24.0e9),
        ("NVLink2 (45 GB/s)", 45.0e9),
    ];
    let extra = 16;
    let n = cfg.tuples(512_000_000 / extra);
    let (r, s) = canonical_pair(n, 4 * n, 5000);
    let results = parallel_points(&links, |&(name, bw)| {
        let mut device = scaled_device(cfg).scaled_capacity(extra);
        device.pcie_bandwidth = bw;
        device.pcie_pageable_bandwidth = bw / 2.0;
        let join_cfg = GpuJoinConfig::paper_default(device)
            .with_radix_bits(scaled_bits(15, cfg.scale))
            .with_tuned_buckets(n / 16);
        let streamed = StreamedProbeJoin::new(StreamedProbeConfig::paper_default(join_cfg.clone()))
            .execute(&r, &s)
            .ok()
            .map(|o| btps(o.throughput_tuples_per_s()));
        let co =
            CoProcessingJoin::new(CoProcessingConfig::paper_default(join_cfg).with_auto_threads())
                .execute(&r, &s)
                .ok()
                .map(|o| btps(o.throughput_tuples_per_s()));
        (name, vec![streamed, co])
    });
    for (name, row) in &results {
        table.row(*name, row.clone());
    }
    table
}

/// Device sweep for the GPU-resident join.
pub fn run_devices(cfg: &RunConfig) -> Table {
    let mut table = Table::new(
        "whatif-devices",
        "GPU-resident partitioned join across device generations",
        "device",
        "billion tuples/s",
        vec!["gpu-partitioned".into()],
    );
    let n = cfg.mtuples(64);
    let (r, s) = canonical_pair(n, n, 5001);
    let devices = [DeviceSpec::gtx1080(), DeviceSpec::v100()];
    let results = parallel_points(&devices, |device| {
        let name = device.name;
        let join_cfg = GpuJoinConfig::paper_default(device.clone())
            .with_radix_bits(scaled_bits(15, cfg.scale))
            .with_tuned_buckets(n);
        let out = GpuPartitionedJoin::new(join_cfg).execute(&r, &s).unwrap();
        (name, vec![Some(btps(out.throughput_tuples_per_s()))])
    });
    for (name, row) in &results {
        table.row(*name, row.clone());
    }
    table.note(format!("{n} tuples/side, unique uniform keys"));
    table
}

/// Static 16 threads (the paper's choice) vs the §IV-B selection rule.
pub fn run_auto_threads(cfg: &RunConfig) -> Table {
    let mut table = Table::new(
        "whatif-threads",
        "Co-processing thread count: paper's static 16 vs the machine-model rule",
        "policy",
        "billion tuples/s",
        vec!["throughput".into(), "threads used".into()],
    );
    let extra = 16;
    let n = cfg.tuples(512_000_000 / extra);
    let (r, s) = canonical_pair(n, n, 5002);
    let device = scaled_device(cfg).scaled_capacity(extra);
    let mk = |config: CoProcessingConfig| {
        let threads = config.cpu_threads;
        let out = CoProcessingJoin::new(config).execute(&r, &s).unwrap();
        (btps(out.throughput_tuples_per_s()), threads)
    };
    let join_cfg = GpuJoinConfig::paper_default(device)
        .with_radix_bits(scaled_bits(15, cfg.scale))
        .with_tuned_buckets(n / 16);
    let (static_tput, static_threads) = mk(CoProcessingConfig::paper_default(join_cfg.clone()));
    let (auto_tput, auto_threads) =
        mk(CoProcessingConfig::paper_default(join_cfg).with_auto_threads());
    table.row("static (paper)", vec![Some(static_tput), Some(f64::from(static_threads))]);
    table.row("auto (§IV-B rule)", vec![Some(auto_tput), Some(f64::from(auto_threads))]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> RunConfig {
        RunConfig { scale: 64, quick: true, out_dir: None, trace_dir: None, profile: false }
    }

    #[test]
    fn faster_interconnects_raise_out_of_gpu_throughput() {
        let t = run_interconnect(&cfg());
        assert_eq!(t.rows.len(), 3);
        for col in 0..2 {
            let pcie3 = t.rows[0].1[col].unwrap();
            let nvlink = t.rows[2].1[col].unwrap();
            assert!(
                nvlink > 1.5 * pcie3,
                "col {col}: NVLink {nvlink} should be well above PCIe3 {pcie3}"
            );
        }
    }

    #[test]
    fn v100_beats_gtx1080_on_resident_data() {
        let t = run_devices(&cfg());
        let gtx = t.rows[0].1[0].unwrap();
        let v100 = t.rows[1].1[0].unwrap();
        assert!(v100 > 1.5 * gtx, "V100 {v100} vs GTX 1080 {gtx}");
    }

    #[test]
    fn auto_thread_rule_matches_the_static_plateau() {
        let t = run_auto_threads(&cfg());
        let static_tput = t.rows[0].1[0].unwrap();
        let auto_tput = t.rows[1].1[0].unwrap();
        // The rule must land in the same plateau (within 15%).
        assert!(
            (auto_tput / static_tput - 1.0).abs() < 0.15,
            "auto {auto_tput} vs static {static_tput}"
        );
        let auto_threads = t.rows[1].1[1].unwrap();
        assert!((4.0..=48.0).contains(&auto_threads));
    }
}
