//! Figures 21 & 22: alternative data-transfer mechanisms (paper §V-F).
//!
//! Fig. 21 (GPU-sized working set): throughput when the *last* step using
//! UVA/UM moves from nothing (GPU-resident) through loading, partitioning
//! and the whole join. Fig. 22 (out-of-GPU): Unified Memory vs UVA vs the
//! explicit co-processing strategy. Expected shapes: resident ≫ UVA-load
//! ≫ UVA-partition ≥ UVA-join; UM below resident; out of GPU, both
//! transparent mechanisms collapse while co-processing holds the PCIe
//! bound.

use hcj_core::uva_exec::{run_out_of_gpu_mechanisms, run_with_mechanism, TransferMechanism};
use hcj_core::{CoProcessingConfig, CoProcessingJoin, GpuJoinConfig};
use hcj_workload::generate::canonical_pair;

use crate::figures::common::{
    parallel_points, record_outcome, resident_config, scaled_bits, scaled_device,
};
use crate::{btps, RunConfig, Table};

/// Figure 21: in-GPU-sized data, bar per mechanism.
pub fn run_fig21(cfg: &RunConfig) -> Table {
    let n = cfg.mtuples(32);
    let (r, s) = canonical_pair(n, n, 2100);
    let config = resident_config(cfg, 15, n);
    let mut table = Table::new(
        "fig21",
        "Effect of UVA and UM (GPU-sized working set)",
        "last step using technique",
        "billion tuples/s",
        vec!["throughput".into()],
    );
    table.note(format!("{n} tuples/side, uniform unique keys"));
    let points = [
        ("GPU data load", TransferMechanism::GpuResident),
        ("UVA load", TransferMechanism::UvaLoad),
        ("UVA part.", TransferMechanism::UvaPartition),
        ("UVA join", TransferMechanism::UvaJoin),
        ("UM", TransferMechanism::UnifiedLoad),
    ];
    let results = parallel_points(&points, |&(label, mech)| {
        let out = run_with_mechanism(&config, &r, &s, mech);
        (label, vec![Some(btps(out.throughput_tuples_per_s()))])
    });
    for (label, row) in &results {
        table.row(*label, row.clone());
    }
    table
}

/// Figure 22: out-of-GPU data, bar per mechanism.
pub fn run_fig22(cfg: &RunConfig) -> Table {
    let extra = 64;
    let n = cfg.tuples(512_000_000 / extra);
    let device = scaled_device(cfg).scaled_capacity(extra);
    let (r, s) = canonical_pair(n, n, 2200);
    let mut table = Table::new(
        "fig22",
        "Throughput with UVA/UM vs co-processing (out-of-GPU data)",
        "transfer technique",
        "billion tuples/s",
        vec!["throughput".into()],
    );
    table.note(format!(
        "{n} tuples/side against a device of {} MB (scaled)",
        device.device_mem_bytes >> 20
    ));

    let mech_cfg = GpuJoinConfig { device: device.clone(), ..resident_config(cfg, 15, n) };
    let (um, uva) = run_out_of_gpu_mechanisms(&mech_cfg, &r, &s);
    table.row("UM", vec![Some(btps(um.throughput_tuples_per_s()))]);
    table.row("UVA", vec![Some(btps(uva.throughput_tuples_per_s()))]);
    let join_cfg = GpuJoinConfig::paper_default(device)
        .with_radix_bits(scaled_bits(15, cfg.scale))
        .with_tuned_buckets(n / 16);
    let co = CoProcessingJoin::new(CoProcessingConfig::paper_default(join_cfg))
        .execute(&r, &s)
        .expect("co-processing needs only buffers");
    assert_eq!(co.check, um.check);
    table.row("Co-processing", vec![Some(btps(co.throughput_tuples_per_s()))]);
    record_outcome(cfg, &mut table, "fig22-coproc", &co);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig21_bar_ordering() {
        let cfg =
            RunConfig { scale: 64, quick: false, out_dir: None, trace_dir: None, profile: false };
        let t = run_fig21(&cfg);
        let v: Vec<f64> = t.rows.iter().map(|(_, v)| v[0].unwrap()).collect();
        // resident >= uva-load > uva-part >= uva-join; um < resident.
        assert!(v[0] >= v[1]);
        assert!(v[1] > 2.0 * v[2], "UVA partitioning must collapse");
        assert!(v[2] >= v[3] * 0.99);
        assert!(v[4] < v[0]);
    }

    #[test]
    fn fig22_coprocessing_dominates() {
        let cfg =
            RunConfig { scale: 64, quick: false, out_dir: None, trace_dir: None, profile: false };
        let t = run_fig22(&cfg);
        let um = t.rows[0].1[0].unwrap();
        let uva = t.rows[1].1[0].unwrap();
        let co = t.rows[2].1[0].unwrap();
        assert!(co > 2.0 * um, "co-processing {co} vs UM {um}");
        assert!(co > 2.0 * uva, "co-processing {co} vs UVA {uva}");
    }
}
