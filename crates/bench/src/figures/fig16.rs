//! Figure 16: NUMA staging vs direct far-socket copies (paper §V-D).
//!
//! A 1:1 join executed by the co-processing strategy, with the far-socket
//! half of the data either staged into near-socket pinned memory by CPU
//! threads (the paper's approach) or DMA-read directly across QPI while
//! partitioning's coherence traffic competes for the link. Expected
//! shape: staging wins at every size; the y-axis is GB/s of input
//! consumed, matching the paper.

use hcj_core::{CoProcessingConfig, CoProcessingJoin, GpuJoinConfig};
use hcj_workload::generate::canonical_pair;

use crate::figures::common::{
    fmt_tuples, parallel_points, record_outcome, scaled_bits, scaled_device,
};
use crate::{RunConfig, Table};

pub fn run(cfg: &RunConfig) -> Table {
    let extra = 16;
    let device = scaled_device(cfg).scaled_capacity(extra);
    let mut table = Table::new(
        "fig16",
        "Staging vs direct copies (NUMA effect)",
        "build/probe relation size (tuples)",
        "GB/s",
        vec!["staging".into(), "direct copy".into()],
    );
    table.note(format!("paper sizes 256M-2048M divided by {}", cfg.scale * extra));

    let points = cfg.sweep(&[256u64, 512, 1024, 2048]);
    let results = parallel_points(&points, |&millions| {
        let tuples = cfg.tuples(millions * 1_000_000 / extra);
        let (r, s) = canonical_pair(tuples, tuples, 1600 + millions);
        let mk = |staging: bool| {
            let join_cfg = GpuJoinConfig::paper_default(device.clone())
                .with_radix_bits(scaled_bits(15, cfg.scale))
                .with_tuned_buckets(tuples / 16);
            CoProcessingJoin::new(CoProcessingConfig::paper_default(join_cfg).with_staging(staging))
                .execute(&r, &s)
                .expect("co-processing needs only buffers")
        };
        let staged = mk(true);
        let direct = mk(false);
        assert_eq!(staged.check, direct.check);
        let row = vec![Some(staged.throughput_gbps()), Some(direct.throughput_gbps())];
        (fmt_tuples(tuples), row, staged)
    });
    for (label, row, _) in &results {
        table.row(label.clone(), row.clone());
    }
    if let Some((_, _, out)) = results.last() {
        record_outcome(cfg, &mut table, "fig16-staging", out);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig16_staging_wins_everywhere() {
        let cfg =
            RunConfig { scale: 64, quick: true, out_dir: None, trace_dir: None, profile: false };
        let t = run(&cfg);
        for (x, v) in &t.rows {
            let (staged, direct) = (v[0].unwrap(), v[1].unwrap());
            assert!(staged > direct, "{x}: staging {staged} vs direct {direct}");
        }
    }
}
