//! Figure 14: TPC-H joins of `lineitem` with `customer` and with `orders`
//! at SF 10 and SF 100, across engines (paper §V-C).
//!
//! Expected shape: our partitioned join leads on every runnable case;
//! at SF 100 DBMS-X errors on the orders join (allocator) and CoGaDB
//! fails to load at all; our engine handles SF 100's orders join by
//! reverting to the streamed variant.

use hcj_engines::{CoGaDbLike, DbmsXLike, HcjEngine};
use hcj_gpu::DeviceSpec;
use hcj_workload::tpch::TpchTables;

use crate::figures::common::{parallel_points, record_outcome, scaled_bits};
use crate::{btps, RunConfig, Table};

pub fn run(cfg: &RunConfig) -> Table {
    // SF is scaled like cardinalities; the device and the engine-model
    // limits scale alike so every failure threshold is preserved.
    let tpch_scale = cfg.scale * 10;
    let device = DeviceSpec::gtx1080().scaled_capacity(tpch_scale);
    let mut table = Table::new(
        "fig14",
        "Joins on TPC-H tables across engines",
        "TPC-H join @ scale factor",
        "billion tuples/s",
        vec!["gpu-partitioned (ours)".into(), "dbms-x (model)".into(), "cogadb (model)".into()],
    );
    table.note(format!("SF 10/100 divided by {tpch_scale}; device + engine limits scaled alike"));
    table.note("'-' = the engine failed, matching the paper's reported failures");

    let points = [10u64, 100];
    let per_sf = parallel_points(&points, |&paper_sf| {
        let sf = paper_sf as f64 / tpch_scale as f64;
        let t = TpchTables::generate(sf, 1400 + paper_sf);
        let mut rows = Vec::new();
        for (join_name, build, probe) in [
            ("customer", &t.customer, &t.lineitem_custkey),
            ("orders", &t.orders, &t.lineitem_orderkey),
        ] {
            let join_cfg = hcj_core::GpuJoinConfig::paper_default(device.clone())
                .with_radix_bits(scaled_bits(15, tpch_scale))
                .with_tuned_buckets(build.len());
            let (_, ours) = HcjEngine::new(join_cfg)
                .execute(build, probe)
                .expect("the hcj engine runs every TPC-H size (Fig. 14 claim)");
            // The caching cardinality limit stays physical: TPC-H's
            // build tables are well within it at both scale factors; the
            // SF100-orders failure is the *allocator*, which scales with
            // the device.
            let mut dx = DbmsXLike::new(device.clone());
            // Fixed driver overheads dilate with the scaled workload.
            dx.query_overhead_s /= tpch_scale as f64;
            let dbmsx = dx.execute(build, probe);
            let mut cg = CoGaDbLike::new(device.clone()).with_load_limit((4u64 << 30) / tpch_scale);
            cg.operator_overhead_s /= tpch_scale as f64;
            let cogadb = cg.execute(build, probe);
            if let Ok(x) = &dbmsx {
                assert_eq!(x.check, ours.check, "{join_name}@SF{paper_sf}");
            }
            let row = vec![
                Some(btps(ours.throughput_tuples_per_s())),
                dbmsx.ok().map(|x| btps(x.throughput_tuples_per_s())),
                cogadb.ok().map(|x| btps(x.throughput_tuples_per_s())),
            ];
            rows.push((format!("{join_name} SF{paper_sf}"), row, ours));
        }
        rows
    });
    let results: Vec<_> = per_sf.into_iter().flatten().collect();
    for (label, row, _) in &results {
        table.row(label.clone(), row.clone());
    }
    if let Some((_, _, out)) = results.last() {
        record_outcome(cfg, &mut table, "fig14-hcj", out);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig14_failures_and_ordering_match_the_paper() {
        let cfg =
            RunConfig { scale: 16, quick: false, out_dir: None, trace_dir: None, profile: false };
        let t = run(&cfg);
        assert_eq!(t.rows.len(), 4);
        let by_name: std::collections::HashMap<&str, &Vec<Option<f64>>> =
            t.rows.iter().map(|(x, v)| (x.as_str(), v)).collect();
        // SF10: all three engines run; ours leads.
        for name in ["customer SF10", "orders SF10"] {
            let v = by_name[name];
            let (ours, dx, cog) = (v[0].unwrap(), v[1], v[2]);
            assert!(dx.is_some() && cog.is_some(), "{name}: comparators must run at SF10");
            assert!(ours > dx.unwrap(), "{name}: ours must lead DBMS-X");
            assert!(ours > cog.unwrap(), "{name}: ours must lead CoGaDB");
        }
        // SF100: DBMS-X errors on orders (not customer); CoGaDB fails both.
        assert!(by_name["customer SF100"][1].is_some(), "DBMS-X runs customer at SF100");
        assert!(by_name["orders SF100"][1].is_none(), "DBMS-X errors on orders at SF100");
        assert!(by_name["customer SF100"][2].is_none(), "CoGaDB fails to load SF100");
        assert!(by_name["orders SF100"][2].is_none(), "CoGaDB fails to load SF100");
        // Ours always produces a result.
        assert!(t.rows.iter().all(|(_, v)| v[0].is_some()));
    }
}
