//! Shared helpers for the figure runners.

use hcj_core::{GpuJoinConfig, GpuPartitionedJoin, JoinOutcome};
use hcj_gpu::DeviceSpec;
use hcj_workload::generate::canonical_pair;
use hcj_workload::Relation;

use crate::report::Table;
use crate::RunConfig;

/// The paper's GPU, full capacity (in-GPU figures keep it physical).
pub fn device() -> DeviceSpec {
    DeviceSpec::gtx1080()
}

/// The paper's GPU with capacity divided by the run scale (out-of-GPU
/// figures shrink the device with the data so capacity ratios hold).
pub fn scaled_device(cfg: &RunConfig) -> DeviceSpec {
    DeviceSpec::gtx1080().scaled_capacity(cfg.scale)
}

/// Radix depth preserving the paper's partition *sizes* when cardinality
/// is divided by `scale`: the paper's 2^15 partitions of an `n`-tuple
/// relation keep their size if the scaled relation uses `15 - log2(scale)`
/// bits.
pub fn scaled_bits(paper_bits: u32, scale: u64) -> u32 {
    let shrink = 63 - scale.max(1).leading_zeros() as u64; // floor(log2)
    paper_bits.saturating_sub(shrink as u32).max(1)
}

/// The paper-default join config at a scaled radix depth, buckets tuned.
/// Fused early-stop refinement is on for the figures: a refinement pass
/// skips parents that already fit the shared-memory build budget (the
/// profiler-driven partitioner optimization; library defaults keep it off
/// so unit tests exercise the paper's full pass plan).
pub fn resident_config(cfg: &RunConfig, paper_bits: u32, tuples: usize) -> GpuJoinConfig {
    GpuJoinConfig::paper_default(device())
        .with_radix_bits(scaled_bits(paper_bits, cfg.scale))
        .with_tuned_buckets(tuples)
        .with_fused_refinement(true)
}

/// Run the in-GPU partitioned join; panics on OOM (in-GPU figures are
/// sized to fit).
pub fn run_resident(config: GpuJoinConfig, r: &Relation, s: &Relation) -> JoinOutcome {
    GpuPartitionedJoin::new(config)
        .execute(r, s)
        .expect("in-GPU figure working set must fit device memory")
}

/// Record a representative outcome of a figure run: append a per-resource
/// utilization note to the table (the saturation evidence behind the
/// paper's pipelining claims); when `--trace` is active, export the
/// outcome's schedule as a Chrome trace named `<name>.trace.json`; when
/// `--profile` is active, additionally attach the nvprof-style per-kernel
/// counter table, write `<name>.profile.json` next to the CSVs and overlay
/// counter tracks on the trace.
pub fn record_outcome(cfg: &RunConfig, table: &mut Table, name: &str, outcome: &JoinOutcome) {
    let util: Vec<String> = outcome
        .resource_report()
        .into_iter()
        .map(|(res, frac)| format!("{res} {:.0}%", frac * 100.0))
        .collect();
    table.note(format!("utilization [{name}]: {}", util.join(", ")));
    record_probes(table, name, outcome);
    if cfg.profile && !outcome.counters.is_empty() {
        table.profile(name, &outcome.counters.render_table());
        cfg.write_profile(name, &outcome.counters);
    }
    cfg.trace_schedule_profiled(name, &outcome.schedule, &outcome.counters);
}

/// Attach the perf-gate baseline probes of one representative outcome:
/// simulated cycles (at the paper device's clock — makespans are computed
/// on GTX 1080-class specs throughout the figures), exact counter totals
/// per interconnect direction, and the derived ratios the gate holds
/// within a tolerance band.
pub fn record_probes(table: &mut Table, name: &str, outcome: &JoinOutcome) {
    use hcj_sim::baseline::Metric;
    let clock_hz = device().clock_hz;
    let cycles = (outcome.total_seconds() * clock_hz).round() as u64;
    table.probe(format!("cycles[{name}]"), Metric::Exact(cycles));
    let counters = &outcome.counters;
    if counters.is_empty() {
        return;
    }
    let roll = counters.rollup();
    table.probe(format!("device_bytes[{name}]"), Metric::Exact(roll.device_bytes));
    table.probe(format!("h2d_bytes[{name}]"), Metric::Exact(roll.h2d_bytes));
    table.probe(format!("d2h_bytes[{name}]"), Metric::Exact(roll.d2h_bytes));
    table.probe(format!("issued_transactions[{name}]"), Metric::Exact(roll.issued_transactions));
    table.probe(format!("minimum_transactions[{name}]"), Metric::Exact(roll.minimum_transactions));
    table.probe(format!("kernel_launches[{name}]"), Metric::Exact(roll.kernel_launches));
    table.probe(format!("transfers[{name}]"), Metric::Exact(roll.transfers));
    table.probe(format!("coalescing[{name}]"), Metric::Float(roll.coalescing_efficiency()));
    if let Some(occ) = counters.mean_occupancy() {
        table.probe(format!("occupancy[{name}]"), Metric::Float(occ));
    }
    let totals = counters.kernel_totals();
    if counters.roofline_bandwidth() > 0.0 && totals.seconds > 0.0 {
        table.probe(
            format!("roofline[{name}]"),
            Metric::Float(totals.achieved_bandwidth() / counters.roofline_bandwidth()),
        );
    }
}

/// The canonical workload at a build:probe ratio (`ratio` = probe/build).
pub fn ratio_pair(build: usize, ratio: usize, seed: u64) -> (Relation, Relation) {
    canonical_pair(build, build * ratio, seed)
}

/// Run one closure per sweep point on pool workers, returning results in
/// point order — figures buffer their rows through this so the rendered
/// table is byte-identical for every `--jobs` value. Under `repro all`'s
/// figure-level parallelism the points of a figure run inline on that
/// figure's worker (the pool flattens nesting).
pub fn parallel_points<T, R, F>(points: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    hcj_host::Pool::current().map(points, |_, p| f(p))
}

/// Label like `4M` / `512K` for tuple counts; non-multiples keep one
/// decimal (`1.5M`), so 1 500 000 is no longer mislabeled `1500K`.
pub fn fmt_tuples(n: usize) -> String {
    let with_unit = |unit: usize, suffix: &str| {
        if n % unit == 0 {
            format!("{}{suffix}", n / unit)
        } else {
            format!("{:.1}{suffix}", n as f64 / unit as f64)
        }
    };
    if n >= 1_000_000 {
        with_unit(1_000_000, "M")
    } else if n >= 1_000 {
        with_unit(1_000, "K")
    } else {
        n.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_bits_preserve_partition_sizes() {
        assert_eq!(scaled_bits(15, 1), 15);
        assert_eq!(scaled_bits(15, 16), 11);
        assert_eq!(scaled_bits(15, 128), 8);
        assert_eq!(scaled_bits(4, 1 << 20), 1); // floor at 1 bit
    }

    #[test]
    fn scaled_bits_edge_scales() {
        // Non-power-of-two scales round down: floor(log2(3)) = 1.
        assert_eq!(scaled_bits(15, 3), 14);
        assert_eq!(scaled_bits(15, 1 << 15), 1); // exactly consumed → floor
        assert_eq!(scaled_bits(15, u64::MAX), 1); // absurd scale stays sane
        assert_eq!(scaled_bits(1, 1), 1);
    }

    #[test]
    fn tuple_formatting() {
        assert_eq!(fmt_tuples(4_000_000), "4M");
        assert_eq!(fmt_tuples(512_000), "512K");
        assert_eq!(fmt_tuples(999), "999");
    }

    #[test]
    fn tuple_formatting_non_multiples_keep_a_decimal() {
        assert_eq!(fmt_tuples(1_500_000), "1.5M"); // was "1500K"
        assert_eq!(fmt_tuples(62_500), "62.5K");
        assert_eq!(fmt_tuples(1_536), "1.5K");
        assert_eq!(fmt_tuples(1_000_000), "1M");
        assert_eq!(fmt_tuples(1_000), "1K");
    }

    #[test]
    fn parallel_points_preserve_order() {
        let points: Vec<u64> = (0..9).collect();
        assert_eq!(parallel_points(&points, |&p| p * 7), (0..9).map(|p| p * 7).collect::<Vec<_>>());
    }

    #[test]
    fn ratio_pairs_have_the_right_sizes() {
        let (r, s) = ratio_pair(1000, 4, 1);
        assert_eq!(r.len(), 1000);
        assert_eq!(s.len(), 4000);
    }
}
