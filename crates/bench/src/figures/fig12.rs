//! Figure 12: the co-processing join (neither side GPU-resident) vs CPU
//! PRO and NPO, across sizes and build:probe ratios (paper §V-C).
//!
//! Paper setup: 256–1024(–2048) M tuples, 16 CPU threads, 16-way CPU
//! partitioning, knapsack-packed working sets. Expected shape: the
//! co-processing throughput is flat in the relation size (transfer-bound
//! robustness) at ~1.2 B tuples/s; PRO and NPO decline with size; the gap
//! widens with the probe ratio.

use hcj_core::{CoProcessingConfig, CoProcessingJoin, GpuJoinConfig};
use hcj_cpu_join::{NpoJoin, ProJoin};

use crate::figures::common::{
    fmt_tuples, parallel_points, ratio_pair, record_outcome, scaled_bits, scaled_device,
};
use crate::{btps, RunConfig, Table};

pub fn run(cfg: &RunConfig) -> Table {
    let extra = 16; // the paper's sizes are huge; scale co-processing more
    let mut table = Table::new(
        "fig12",
        "Co-processing join vs CPU joins",
        "build relation size (tuples)",
        "billion tuples/s",
        vec![
            "co-proc 1:1".into(),
            "co-proc 1:2".into(),
            "co-proc 1:4".into(),
            "cpu-pro 1:1".into(),
            "cpu-npo 1:1".into(),
        ],
    );
    table.note(format!(
        "paper sizes 256M-2048M divided by {}; device capacity scaled alike",
        cfg.scale * extra
    ));
    table.note("16 CPU threads, 16-way CPU partitioning, non-temporal stores (paper config)");

    let device = scaled_device(cfg).scaled_capacity(extra);
    let points = cfg.sweep(&[256u64, 512, 1024, 2048]);
    let results = parallel_points(&points, |&millions| {
        let build = cfg.tuples(millions * 1_000_000 / extra);
        let mut values = Vec::new();
        let mut rep = None;
        for ratio in [1usize, 2, 4] {
            let (r, s) = ratio_pair(build, ratio, 1200 + millions + ratio as u64);
            let join_cfg = GpuJoinConfig::paper_default(device.clone())
                .with_radix_bits(scaled_bits(15, cfg.scale))
                .with_tuned_buckets(build / 16);
            let out = CoProcessingJoin::new(CoProcessingConfig::paper_default(join_cfg))
                .execute(&r, &s)
                .expect("co-processing needs only buffers");
            values.push(Some(btps(out.throughput_tuples_per_s())));
            rep = Some(out);
        }
        let (r, s) = ratio_pair(build, 1, 1200 + millions + 1);
        let pro = ProJoin::paper_default().execute(&r, &s);
        let npo = NpoJoin::paper_default().execute(&r, &s);
        values.push(Some(btps(pro.throughput_tuples_per_s())));
        values.push(Some(btps(npo.throughput_tuples_per_s())));
        (fmt_tuples(build), values, rep)
    });
    for (label, values, _) in &results {
        table.row(label.clone(), values.clone());
    }
    if let Some((_, _, Some(out))) = results.last() {
        record_outcome(cfg, &mut table, "fig12-coproc", out);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig12_coprocessing_is_flat_and_ahead() {
        let cfg =
            RunConfig { scale: 64, quick: true, out_dir: None, trace_dir: None, profile: false };
        let t = run(&cfg);
        let first = &t.rows.first().unwrap().1;
        let last = &t.rows.last().unwrap().1;
        // Flat: largest vs smallest within 30%.
        let (a, b) = (first[0].unwrap(), last[0].unwrap());
        assert!((a / b).max(b / a) < 1.3, "co-processing not flat: {a} vs {b}");
        // Ahead of both CPU joins at every size.
        for (x, vals) in &t.rows {
            assert!(vals[0].unwrap() > vals[3].unwrap(), "{x}: co-proc vs PRO");
            assert!(vals[0].unwrap() > vals[4].unwrap(), "{x}: co-proc vs NPO");
        }
    }
}
