//! Figure 8: GPU partitioned vs GPU non-partitioned (chaining and perfect
//! hash) vs CPU PRO/NPO, for build:probe ratios 1:1, 1:2 and 1:4
//! (paper §V-B and §V-D).
//!
//! Expected shape: non-partitioned variants start strong at small sizes
//! and decay; the partitioned join overtakes them past ~8 M build tuples
//! (scaled); every GPU variant beats its CPU counterpart; larger probe
//! ratios steepen the partitioned join's advantage.

use hcj_core::nonpart::{NonPartitionedJoin, NonPartitionedKind};
use hcj_core::OutputMode;
use hcj_cpu_join::{NpoJoin, ProJoin};

use crate::figures::common::{
    device, fmt_tuples, parallel_points, ratio_pair, record_outcome, record_probes,
    resident_config, run_resident,
};
use crate::{btps, RunConfig, Table};

pub fn run(cfg: &RunConfig) -> Table {
    let ratios = [1usize, 2, 4];
    let algos = ["gpu-part", "gpu-nonpart", "gpu-perfect", "cpu-pro", "cpu-npo"];
    let series: Vec<String> =
        ratios.iter().flat_map(|r| algos.iter().map(move |a| format!("{a} 1:{r}"))).collect();
    let mut table = Table::new(
        "fig08",
        "Hash joins across build-to-probe ratios: GPU partitioned vs non-partitioned vs CPU",
        "build relation size (tuples)",
        "billion tuples/s",
        series,
    );
    table.note(format!("paper build sizes 1M-128M divided by {}", cfg.scale));
    table.note("CPU PRO/NPO run the model of the paper's 48-thread dual Xeon");

    let points = cfg.sweep(&[1u64, 2, 4, 8, 16, 32, 64, 128]);
    let results = parallel_points(&points, |&millions| {
        let build = cfg.mtuples(millions);
        let mut values = Vec::new();
        let mut rep = None;
        for &ratio in &ratios {
            let (r, s) = ratio_pair(build, ratio, 800 + millions * 10 + ratio as u64);
            let part = run_resident(resident_config(cfg, 15, build), &r, &s);
            let nonpart =
                NonPartitionedJoin::new(NonPartitionedKind::Chaining, OutputMode::Aggregate)
                    .execute(&r, &s);
            let perfect =
                NonPartitionedJoin::new(NonPartitionedKind::PerfectHash, OutputMode::Aggregate)
                    .execute(&r, &s);
            let pro = ProJoin::paper_default().execute(&r, &s);
            let npo = NpoJoin::paper_default().execute(&r, &s);
            assert_eq!(part.check, nonpart.check);
            assert_eq!(part.check, perfect.check);
            assert_eq!(part.check, pro.check);
            let tuples_in = (r.len() + s.len()) as f64;
            values.extend([
                Some(btps(part.throughput_tuples_per_s())),
                Some(btps(tuples_in / nonpart.kernel_seconds(&device()))),
                Some(btps(tuples_in / perfect.kernel_seconds(&device()))),
                Some(btps(pro.throughput_tuples_per_s())),
                Some(btps(npo.throughput_tuples_per_s())),
            ]);
            rep = Some(part);
        }
        (fmt_tuples(build), values, rep)
    });
    for (label, values, _) in &results {
        table.row(label.clone(), values.clone());
    }
    if let Some((_, _, Some(out))) = results.last() {
        record_outcome(cfg, &mut table, "fig08-gpu-part", out);
    }
    // Second gate probe at the smallest build size, where the fixed radix
    // plan over-refines and the fused early-stop refinement pays off.
    if let Some((_, _, Some(out))) = results.first() {
        record_probes(&mut table, "fig08-gpu-part-small", out);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig08_orderings_hold_at_scale() {
        let cfg =
            RunConfig { scale: 64, quick: true, out_dir: None, trace_dir: None, profile: false };
        let t = run(&cfg);
        // Columns per ratio block: part, nonpart, perfect, pro, npo.
        let first = &t.rows.first().unwrap().1;
        let last = &t.rows.last().unwrap().1;
        let (part, nonpart, pro) = (last[0].unwrap(), last[1].unwrap(), last[3].unwrap());
        // At the largest size the partitioned GPU join leads its
        // non-partitioned counterpart and the CPU joins.
        assert!(part > nonpart, "partitioned {part} vs non-partitioned {nonpart}");
        assert!(part > 2.0 * pro, "partitioned {part} vs PRO {pro}");
        // The crossover: at the smallest size the non-partitioned join is
        // competitive (>= 60% of partitioned, often ahead)...
        assert!(first[1].unwrap() > 0.6 * first[0].unwrap());
        // ...and the partitioned join's relative advantage grows with size
        // while the non-partitioned join decays in absolute terms.
        let adv_small = first[0].unwrap() / first[1].unwrap();
        let adv_large = part / nonpart;
        assert!(adv_large > adv_small, "advantage: small {adv_small:.2}x, large {adv_large:.2}x");
        assert!(last[1].unwrap() < first[1].unwrap(), "non-partitioned must decay with size");
        // Bigger probe ratios steepen the partitioned advantage (paper:
        // "the improvement ... is steeper"): compare 1:1 vs 1:4 blocks.
        let part_1_4 = last[10].unwrap();
        let nonpart_1_4 = last[11].unwrap();
        assert!(part_1_4 / nonpart_1_4 >= adv_large, "ratio 1:4 must steepen the advantage");
    }
}
