//! One module per figure of the paper's evaluation section, plus the
//! ablation studies. Each returns a [`Table`] with the same series the
//! paper plots.

pub mod ablations;
pub mod common;
pub mod cross_device;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09_10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17_18;
pub mod fig19;
pub mod fig20;
pub mod fig21_22;
pub mod whatif;

use crate::{RunConfig, Table};

/// A figure runner: regenerates one experiment's table for a run config.
pub type FigureRunner = fn(&RunConfig) -> Table;

/// Every experiment, by id, with its runner. `repro all` walks this list.
pub fn registry() -> Vec<(&'static str, FigureRunner)> {
    vec![
        ("fig05", fig05::run as FigureRunner),
        ("fig06", fig06::run),
        ("fig07", fig07::run),
        ("fig08", fig08::run),
        ("fig09", fig09_10::run_fig09),
        ("fig10", fig09_10::run_fig10),
        ("fig11", fig11::run),
        ("fig12", fig12::run),
        ("fig13", fig13::run),
        ("fig14", fig14::run),
        ("fig15", fig15::run),
        ("fig16", fig16::run),
        ("fig17", fig17_18::run_fig17),
        ("fig18", fig17_18::run_fig18),
        ("fig19", fig19::run),
        ("fig20", fig20::run),
        ("fig21", fig21_22::run_fig21),
        ("fig22", fig21_22::run_fig22),
        ("ablations", ablations::run),
        ("cross-device", cross_device::run),
        ("whatif-interconnect", whatif::run_interconnect),
        ("whatif-devices", whatif::run_devices),
        ("whatif-threads", whatif::run_auto_threads),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_cover_all_figures() {
        let reg = registry();
        let mut ids: Vec<&str> = reg.iter().map(|(id, _)| *id).collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n, "duplicate experiment ids");
        for fig in 5..=22 {
            assert!(
                ids.iter().any(|id| id.contains(&format!("{fig:02}"))),
                "figure {fig} missing from the registry"
            );
        }
    }
}
