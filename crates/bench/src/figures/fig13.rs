//! Figure 13: scalability with CPU threads — co-processing vs the CPU
//! partitioned join (paper §V-D, "CPU Utilization").
//!
//! Expected shape: PRO scales roughly linearly with threads; co-processing
//! ramps much faster, overtakes the fastest CPU configuration with ~6
//! threads, plateaus around 16 (PCIe-bound), and dips slightly past ~26
//! when partitioning traffic saturates the memory system and squeezes the
//! DMA reads.

use hcj_core::{CoProcessingConfig, CoProcessingJoin, GpuJoinConfig};
use hcj_cpu_join::ProJoin;
use hcj_workload::generate::canonical_pair;

use crate::figures::common::{parallel_points, record_outcome, scaled_bits, scaled_device};
use crate::{btps, RunConfig, Table};

pub fn run(cfg: &RunConfig) -> Table {
    let extra = 16;
    let tuples = cfg.tuples(512_000_000 / extra);
    let mut table = Table::new(
        "fig13",
        "Scalability with CPU threads",
        "number of threads",
        "billion tuples/s",
        vec!["gpu co-processing".into(), "cpu-pro".into()],
    );
    table.note(format!("{tuples} tuples per side (paper-scale 512M / {})", cfg.scale * extra));

    let device = scaled_device(cfg).scaled_capacity(extra);
    let (r, s) = canonical_pair(tuples, tuples, 1300);
    let points = cfg.sweep(&[2u32, 6, 10, 14, 18, 22, 26, 30, 34, 38, 42, 46]);
    let results = parallel_points(&points, |&threads| {
        let join_cfg = GpuJoinConfig::paper_default(device.clone())
            .with_radix_bits(scaled_bits(15, cfg.scale))
            .with_tuned_buckets(tuples / 16);
        let co = CoProcessingJoin::new(
            CoProcessingConfig::paper_default(join_cfg).with_threads(threads),
        )
        .execute(&r, &s)
        .expect("co-processing needs only buffers");
        let pro = ProJoin::paper_default().with_threads(threads).execute(&r, &s);
        assert_eq!(co.check, pro.check);
        let row = vec![
            Some(btps(co.throughput_tuples_per_s())),
            Some(btps(pro.throughput_tuples_per_s())),
        ];
        (threads.to_string(), row, co)
    });
    for (label, row, _) in &results {
        table.row(label.clone(), row.clone());
    }
    if let Some((_, _, out)) = results.last() {
        record_outcome(cfg, &mut table, "fig13-coproc", out);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig13_coprocessing_overtakes_with_few_threads_then_plateaus() {
        let cfg =
            RunConfig { scale: 64, quick: false, out_dir: None, trace_dir: None, profile: false };
        let t = run(&cfg);
        let col = |i: usize, c: usize| t.rows[i].1[c].unwrap();
        let n = t.rows.len();
        // PRO grows monotonically (within noise) with threads.
        assert!(col(n - 1, 1) > 2.0 * col(0, 1), "PRO must scale with threads");
        // Co-processing with 6 threads (row 1) beats PRO with 46 (last).
        assert!(
            col(1, 0) > col(n - 1, 1),
            "co-proc@6 {} must beat PRO@46 {}",
            col(1, 0),
            col(n - 1, 1)
        );
        // Plateau: 18 threads (row 4) to 46 threads changes < 30%.
        let (mid, last) = (col(4, 0), col(n - 1, 0));
        assert!((mid / last).max(last / mid) < 1.3, "plateau violated: {mid} vs {last}");
    }
}
