//! Figures 17 & 18: skewed inputs, for GPU-resident data (Fig. 17, the
//! in-GPU partitioned join) and CPU-resident data (Fig. 18, the
//! co-processing join) — paper §V-E.
//!
//! Three placements of the skew: probe side only, build side only, and
//! identical skew on both (same hot keys — the worst case), each with
//! aggregation and with (row-capped) materialization. Expected shapes:
//! probe-only skew barely hurts; build-only skew costs more; identical
//! skew collapses past zipf ~0.75 as hot co-partitions stop fitting
//! shared memory and the output explodes. Out-of-GPU (Fig. 18) is far
//! more resilient — the PCIe bottleneck hides GPU-side slowdowns until
//! the same collapse point.

use hcj_core::{
    CoProcessingConfig, CoProcessingJoin, GpuJoinConfig, GpuPartitionedJoin, OutputMode,
};
use hcj_workload::{Relation, RelationSpec};

use crate::figures::common::{
    parallel_points, record_outcome, resident_config, scaled_bits, scaled_device,
};
use crate::{btps, RunConfig, Table};

const THETAS: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];

fn skewed_pair(n: usize, theta: f64, place: SkewPlace, seed: u64) -> (Relation, Relation) {
    let uniform = |s| RelationSpec::zipf(n, n as u64, 0.0, s).generate();
    let skewed = |s| RelationSpec::zipf(n, n as u64, theta, s).generate();
    match place {
        SkewPlace::Probe => (uniform(seed), skewed(seed + 1)),
        SkewPlace::Build => (skewed(seed), uniform(seed + 1)),
        // Identical: same distribution AND same hot values (same seed
        // stream ordering of ranks — the paper's worst case).
        SkewPlace::Identical => (skewed(seed), skewed(seed + 1)),
    }
}

#[derive(Clone, Copy)]
enum SkewPlace {
    Probe,
    Build,
    Identical,
}

fn series() -> Vec<String> {
    let mut s = Vec::new();
    for mode in ["agg", "mat"] {
        for place in ["probe-skew", "build-skew", "identical-skew"] {
            s.push(format!("{place} {mode}"));
        }
    }
    s
}

/// Figure 17: skew on GPU-resident data.
pub fn run_fig17(cfg: &RunConfig) -> Table {
    // Identical skew explodes quadratically; run this figure at a deeper
    // scale so the functional result stays enumerable.
    let extra = 16;
    let n = cfg.tuples(32_000_000 / extra);
    let mut table = Table::new(
        "fig17",
        "Skew on GPU-resident data",
        "zipf factor",
        "billion tuples/s",
        series(),
    );
    table.note(format!("{n} tuples/side (paper: 32M, scale 1/{})", cfg.scale * extra));
    table.note("materialization row-capped (paper overwrites results to isolate in-GPU perf)");

    let points = cfg.sweep(&THETAS);
    let results = parallel_points(&points, |&theta| {
        let mut values = Vec::new();
        let mut rep = None;
        for mode in [OutputMode::Aggregate, OutputMode::Materialize] {
            for place in [SkewPlace::Probe, SkewPlace::Build, SkewPlace::Identical] {
                let (r, s) = skewed_pair(n, theta, place, 1700);
                let config = resident_config(cfg, 15, n).with_output(mode).with_row_cap(1 << 18);
                let out = GpuPartitionedJoin::new(config).execute(&r, &s).unwrap();
                values.push(Some(btps(out.throughput_tuples_per_s())));
                rep = Some(out);
            }
        }
        (format!("{theta}"), values, rep)
    });
    for (label, values, _) in &results {
        table.row(label.clone(), values.clone());
    }
    if let Some((_, _, Some(out))) = results.last() {
        record_outcome(cfg, &mut table, "fig17-resident-skew", out);
    }
    table
}

/// Figure 18: skew on CPU-resident data (co-processing).
pub fn run_fig18(cfg: &RunConfig) -> Table {
    let extra = 64;
    let n = cfg.tuples(512_000_000 / extra);
    let device = scaled_device(cfg).scaled_capacity(extra);
    let mut table = Table::new(
        "fig18",
        "Skew on CPU-resident data (co-processing)",
        "zipf factor",
        "billion tuples/s",
        series(),
    );
    table.note(format!("{n} tuples/side (paper: 512M, scale 1/{})", cfg.scale * extra));

    let points = cfg.sweep(&THETAS);
    let results = parallel_points(&points, |&theta| {
        let mut values = Vec::new();
        let mut rep = None;
        for mode in [OutputMode::Aggregate, OutputMode::Materialize] {
            for place in [SkewPlace::Probe, SkewPlace::Build, SkewPlace::Identical] {
                let (r, s) = skewed_pair(n, theta, place, 1800);
                let join_cfg = GpuJoinConfig::paper_default(device.clone())
                    .with_radix_bits(scaled_bits(15, cfg.scale))
                    .with_tuned_buckets(n / 16)
                    .with_output(mode)
                    .with_row_cap(1 << 18);
                let out = CoProcessingJoin::new(CoProcessingConfig::paper_default(join_cfg))
                    .execute(&r, &s)
                    .expect("co-processing needs only buffers");
                values.push(Some(btps(out.throughput_tuples_per_s())));
                rep = Some(out);
            }
        }
        (format!("{theta}"), values, rep)
    });
    for (label, values, _) in &results {
        table.row(label.clone(), values.clone());
    }
    if let Some((_, _, Some(out))) = results.last() {
        record_outcome(cfg, &mut table, "fig18-coproc-skew", out);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> RunConfig {
        RunConfig { scale: 64, quick: false, out_dir: None, trace_dir: None, profile: false }
    }

    #[test]
    fn fig17_skew_shapes() {
        let t = run_fig17(&cfg());
        let get = |theta: &str, col: usize| {
            t.rows.iter().find(|(x, _)| x == theta).unwrap().1[col].unwrap()
        };
        // Probe-side skew at 0.75 (col 0) keeps most of the uniform
        // throughput.
        assert!(get("0.75", 0) > 0.5 * get("0", 0));
        // Identical skew collapses at zipf 1.0 (col 2).
        assert!(get("1", 2) < 0.5 * get("0", 2), "identical skew must collapse");
        // Build skew hurts more than probe skew at 1.0.
        assert!(get("1", 1) <= get("1", 0) * 1.05);
    }

    #[test]
    fn fig18_out_of_gpu_is_more_resilient() {
        let t17 = run_fig17(&cfg());
        let t18 = run_fig18(&cfg());
        let rel_drop = |t: &crate::Table, col: usize| {
            let base = t.rows.first().unwrap().1[col].unwrap();
            let at75 = t.rows.iter().find(|(x, _)| x == "0.75").unwrap().1[col].unwrap();
            at75 / base
        };
        // At zipf 0.75 with identical skew, the co-processing join keeps a
        // larger fraction of its uniform throughput than the in-GPU join
        // (the interconnect hides GPU-side slowdowns).
        assert!(
            rel_drop(&t18, 2) >= rel_drop(&t17, 2) * 0.9,
            "out-of-GPU should be at least as resilient: {} vs {}",
            rel_drop(&t18, 2),
            rel_drop(&t17, 2)
        );
    }
}
