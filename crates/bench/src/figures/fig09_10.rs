//! Figures 9 & 10: effect of payload width with late materialization
//! (paper §V-B).
//!
//! Payloads are fetched through tuple identifiers; the partitioned join
//! has reordered *both* sides, so its fetches are scattered, while the
//! non-partitioned join's probe side is still in scan order. Expected
//! shapes: growing the **probe-side** payload (Fig. 9) lets the
//! non-partitioned join overtake (its probe fetches stream); growing the
//! **build-side** payload (Fig. 10) keeps the partitioned join ahead,
//! with a shrinking gap.

use hcj_core::nonpart::{NonPartitionedJoin, NonPartitionedKind};
use hcj_core::output::late_materialization_cost;
use hcj_core::OutputMode;
use hcj_workload::generate::canonical_pair;

use crate::figures::common::{
    device, parallel_points, record_outcome, resident_config, run_resident,
};
use crate::{btps, RunConfig, Table};

fn run_payload_sweep(cfg: &RunConfig, vary_probe: bool, id: &'static str) -> Table {
    let tuples = cfg.mtuples(16);
    let side = if vary_probe { "probe" } else { "build" };
    let mut table = Table::new(
        id,
        format!("Effect of varying {side}-side payload size (late materialization)"),
        "payload size (bytes)",
        "billion tuples/s",
        vec!["gpu-partitioned".into(), "gpu-nonpartitioned".into()],
    );
    table.note(format!("{tuples} tuples per side; aggregation output (paper protocol)"));

    let points = cfg.sweep(&[16u32, 32, 48, 64, 80, 96, 112, 128]);
    let results = parallel_points(&points, |&width| {
        let (mut r, mut s) = canonical_pair(tuples, tuples, 900 + u64::from(width));
        if vary_probe {
            s.payload_width = width;
        } else {
            r.payload_width = width;
        }
        let part = run_resident(resident_config(cfg, 15, tuples), &r, &s);

        // Non-partitioned: build-side fetches are scattered either way
        // (rids hit a hash table's insertion order); probe-side fetches
        // stream because the probe relation is scanned in storage order.
        let np = NonPartitionedJoin::new(NonPartitionedKind::Chaining, OutputMode::Aggregate)
            .execute(&r, &s);
        let mut np_cost = np.build_cost + np.probe_cost;
        np_cost += late_materialization_cost(np.check.matches, r.payload_width, true);
        np_cost += late_materialization_cost(np.check.matches, s.payload_width, false);
        let np_seconds = np_cost.time(&device());
        assert_eq!(part.check, np.check);

        let row = vec![
            Some(btps(part.throughput_tuples_per_s())),
            Some(btps((r.len() + s.len()) as f64 / np_seconds)),
        ];
        (row, part)
    });
    for (width, (row, _)) in points.iter().zip(&results) {
        table.row(width.to_string(), row.clone());
    }
    if let Some((_, out)) = results.last() {
        record_outcome(cfg, &mut table, &format!("{id}-gpu-part"), out);
    }
    table
}

/// Figure 9: varying probe-side payload width.
pub fn run_fig09(cfg: &RunConfig) -> Table {
    run_payload_sweep(cfg, true, "fig09")
}

/// Figure 10: varying build-side payload width.
pub fn run_fig10(cfg: &RunConfig) -> Table {
    run_payload_sweep(cfg, false, "fig10")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> RunConfig {
        RunConfig { scale: 64, quick: true, out_dir: None, trace_dir: None, profile: false }
    }

    #[test]
    fn fig09_nonpartitioned_gains_with_probe_payload() {
        let t = run_fig09(&cfg());
        // The partitioned/non-partitioned ratio must shrink as the
        // probe payload grows (paper: NP overtakes for larger payloads).
        let ratio = |row: &Vec<Option<f64>>| row[0].unwrap() / row[1].unwrap();
        let first = ratio(&t.rows.first().unwrap().1);
        let last = ratio(&t.rows.last().unwrap().1);
        assert!(last < first, "ratio must shrink: first {first:.3}, last {last:.3}");
        assert!(
            t.rows.last().unwrap().1[1].unwrap() > t.rows.last().unwrap().1[0].unwrap() * 0.8,
            "NP must be at least competitive at 128 B probe payloads"
        );
    }

    #[test]
    fn fig10_partitioned_keeps_the_edge_on_build_payload() {
        let t = run_fig10(&cfg());
        for (x, vals) in &t.rows {
            assert!(
                vals[0].unwrap() > vals[1].unwrap() * 0.95,
                "{x}: partitioned must hold its edge (both sides random)"
            );
        }
        // But the gap narrows with width.
        let ratio = |row: &Vec<Option<f64>>| row[0].unwrap() / row[1].unwrap();
        assert!(ratio(&t.rows.last().unwrap().1) < ratio(&t.rows.first().unwrap().1));
    }
}
