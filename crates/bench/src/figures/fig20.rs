//! Figure 20: input size vs identically-skewed inputs for the
//! co-processing join (paper §V-E).
//!
//! Both inputs share the same zipf distribution and hot values at factors
//! 0 (uniform), 0.25 and 0.5, with aggregation and materialization.
//! Expected shape: up to zipf 0.5 there is no penalty vs uniform at small
//! sizes; as relations grow the skewed outputs explode (hot-key matches
//! grow quadratically) and the materializing runs collapse.

use hcj_core::{CoProcessingConfig, CoProcessingJoin, GpuJoinConfig, OutputMode};
use hcj_workload::RelationSpec;

use crate::figures::common::{
    fmt_tuples, parallel_points, record_outcome, scaled_bits, scaled_device,
};
use crate::{btps, RunConfig, Table};

pub fn run(cfg: &RunConfig) -> Table {
    let extra = 64;
    let device = scaled_device(cfg).scaled_capacity(extra);
    let mut series = Vec::new();
    for mode in ["agg", "mat"] {
        for theta in ["uniform", "zipf 0.25", "zipf 0.5"] {
            series.push(format!("{theta} {mode}"));
        }
    }
    let mut table = Table::new(
        "fig20",
        "Input size vs identically-skewed inputs (co-processing)",
        "probe/build relation size (tuples)",
        "billion tuples/s",
        series,
    );
    table.note(format!("paper sizes 256M-2048M divided by {}", cfg.scale * extra));

    let points = cfg.sweep(&[256u64, 512, 1024, 2048]);
    let results = parallel_points(&points, |&millions| {
        let n = cfg.tuples(millions * 1_000_000 / extra);
        let mut values = Vec::new();
        let mut rep = None;
        for mode in [OutputMode::Aggregate, OutputMode::Materialize] {
            for theta in [0.0, 0.25, 0.5] {
                let r = RelationSpec::zipf(n, n as u64, theta, 2000).generate();
                let s = RelationSpec::zipf(n, n as u64, theta, 2001).generate();
                let join_cfg = GpuJoinConfig::paper_default(device.clone())
                    .with_radix_bits(scaled_bits(15, cfg.scale))
                    .with_tuned_buckets(n / 16)
                    .with_output(mode)
                    .with_row_cap(1 << 18);
                let out = CoProcessingJoin::new(CoProcessingConfig::paper_default(join_cfg))
                    .execute(&r, &s)
                    .expect("co-processing needs only buffers");
                values.push(Some(btps(out.throughput_tuples_per_s())));
                rep = Some(out);
            }
        }
        (fmt_tuples(n), values, rep)
    });
    for (label, values, _) in &results {
        table.row(label.clone(), values.clone());
    }
    if let Some((_, _, Some(out))) = results.last() {
        record_outcome(cfg, &mut table, "fig20-coproc-skew-size", out);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig20_mild_skew_is_free_but_output_explosion_hurts_at_size() {
        let cfg =
            RunConfig { scale: 64, quick: true, out_dir: None, trace_dir: None, profile: false };
        let t = run(&cfg);
        let first = &t.rows.first().unwrap().1;
        // zipf 0.25 aggregation ~ uniform aggregation at the smallest size.
        assert!(first[1].unwrap() > 0.7 * first[0].unwrap());
        // At the largest size, zipf 0.5 materialization trails zipf 0.5
        // aggregation (output volume).
        let last = &t.rows.last().unwrap().1;
        assert!(last[5].unwrap() <= last[2].unwrap() * 1.01);
        // And the relative cost of skew grows with size for zipf 0.5 mat.
        let rel_first = first[5].unwrap() / first[3].unwrap();
        let rel_last = last[5].unwrap() / last[3].unwrap();
        assert!(rel_last <= rel_first * 1.05, "first {rel_first}, last {rel_last}");
    }
}
