//! Figure 11: the streamed-probe join (build side GPU-resident, probe side
//! streamed over PCIe) vs the CPU partitioned join, with aggregation and
//! with materialization (paper §V-C).
//!
//! Paper setup: build fixed at 64 M tuples; probe 64–2048 M with constant
//! distinct values; chunks of half the build size. Expected shape: GPU
//! throughput climbs toward the PCIe bound as the probe grows (the
//! outstanding computations amortize); materialization costs a little;
//! CPU PRO sits well below and declines.

use hcj_core::{OutputMode, StreamedProbeConfig, StreamedProbeJoin};
use hcj_cpu_join::ProJoin;
use hcj_workload::generate::canonical_pair;

use crate::figures::common::{fmt_tuples, parallel_points, record_outcome, resident_config};
use crate::{btps, RunConfig, Table};

pub fn run(cfg: &RunConfig) -> Table {
    // The streamed figures scale harder: the paper's probe reaches 2048M.
    let extra = 4;
    let build = cfg.tuples(64_000_000 / extra);
    let mut table = Table::new(
        "fig11",
        "Streamed probe-side join vs CPU PRO",
        "probe relation size (tuples)",
        "billion tuples/s",
        vec!["gpu aggregation".into(), "gpu materialization".into(), "cpu-pro".into()],
    );
    table
        .note(format!("build fixed at {build} tuples (paper: 64M, scale 1/{})", cfg.scale * extra));
    table.note("probe chunks are half the build size (paper's rule)");

    let points = cfg.sweep(&[1u64, 2, 4, 8, 16, 32]);
    let results = parallel_points(&points, |&mult| {
        let probe = build * mult as usize;
        let (r, s) = canonical_pair(build, probe, 1100 + mult);
        let base = resident_config(cfg, 15, build);
        let agg = StreamedProbeJoin::new(StreamedProbeConfig::paper_default(base.clone()))
            .execute(&r, &s)
            .expect("build side fits");
        let mat = StreamedProbeJoin::new(StreamedProbeConfig::paper_default(
            base.with_output(OutputMode::Materialize).with_row_cap(1 << 20),
        ))
        .execute(&r, &s)
        .expect("build side fits");
        let pro = ProJoin::paper_default().execute(&r, &s);
        assert_eq!(agg.check, mat.check);
        assert_eq!(agg.check, pro.check);
        let row = vec![
            Some(btps(agg.throughput_tuples_per_s())),
            Some(btps(mat.throughput_tuples_per_s())),
            Some(btps(pro.throughput_tuples_per_s())),
        ];
        (fmt_tuples(probe), row, agg)
    });
    for (label, row, _) in &results {
        table.row(label.clone(), row.clone());
    }
    if let Some((_, _, out)) = results.last() {
        record_outcome(cfg, &mut table, "fig11-streamed-agg", out);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig11_gpu_approaches_pcie_and_beats_cpu() {
        let cfg =
            RunConfig { scale: 64, quick: true, out_dir: None, trace_dir: None, profile: false };
        let t = run(&cfg);
        let first = &t.rows.first().unwrap().1;
        let last = &t.rows.last().unwrap().1;
        // Throughput grows with probe size.
        assert!(last[0].unwrap() > first[0].unwrap());
        // GPU beats PRO everywhere.
        for (x, vals) in &t.rows {
            assert!(vals[0].unwrap() > vals[2].unwrap(), "{x}: gpu must beat PRO");
        }
        // Materialization costs something but stays close.
        assert!(last[1].unwrap() <= last[0].unwrap());
        assert!(last[1].unwrap() > 0.55 * last[0].unwrap());
        // Near the PCIe bound: > 0.8 B tuples/s at the largest probe
        // (paper: ~1.4 B with aggregation).
        assert!(last[0].unwrap() > 0.8, "largest-probe throughput {}", last[0].unwrap());
    }
}
