//! Figure 5: partitioned hash join vs partitioned nested-loop join, total
//! and co-partition-join throughput, against partition size (paper §V-B).
//!
//! Paper setup: 2 M ⨝ 2 M unique uniform tuples; blocks of 1024 threads
//! with shared memory for 2048 elements and 256 hash buckets; the
//! partition count varies so that expected partition sizes sweep
//! 256–2048 elements. Expected shape: nested loops win slightly at small
//! partitions, hash join wins beyond ~1024, nested loops fall off
//! quadratically at 2048; totals stay close because partitioning
//! dominates.

use hcj_core::radix::bits_for_partition_size;
use hcj_core::{GpuJoinConfig, ProbeKind};
use hcj_workload::generate::canonical_pair;

use crate::figures::common::{device, parallel_points, record_outcome, run_resident};
use crate::{btps, RunConfig, Table};

pub fn run(cfg: &RunConfig) -> Table {
    let tuples = cfg.tuples(2_000_000);
    let mut table = Table::new(
        "fig05",
        "Partitioned joins: hash join vs nested loops",
        "partition size (#elements)",
        "billion tuples/s",
        vec![
            "hash total".into(),
            "hash join-copart".into(),
            "nl total".into(),
            "nl join-copart".into(),
        ],
    );
    table.note(format!("{} tuples per relation (paper: 2M, scale 1/{})", tuples, cfg.scale));
    table.note("block: 1024 threads, 2048-element smem, 256 hash buckets (paper Fig. 5 config)");

    let (r, s) = canonical_pair(tuples, tuples, 505);
    let points = cfg.sweep(&[256usize, 512, 1024, 2048]);
    let results = parallel_points(&points, |&part_size| {
        let bits = bits_for_partition_size(tuples, part_size);
        let base = {
            let mut c = GpuJoinConfig::paper_default(device());
            c.radix_bits = bits;
            c.smem_elements = 2048;
            c.hash_buckets = 256;
            c.join_block_threads = 1024;
            c.with_tuned_buckets(tuples)
        };
        let hash = run_resident(base.clone().with_probe(ProbeKind::HashJoin), &r, &s);
        let nl = run_resident(base.with_probe(ProbeKind::NestedLoop), &r, &s);
        assert_eq!(hash.check, nl.check, "probe kernels disagree");
        let row = vec![
            Some(btps(hash.throughput_tuples_per_s())),
            Some(btps(hash.join_phase_throughput())),
            Some(btps(nl.throughput_tuples_per_s())),
            Some(btps(nl.join_phase_throughput())),
        ];
        (row, hash)
    });
    for (part_size, (row, _)) in points.iter().zip(&results) {
        table.row(part_size.to_string(), row.clone());
    }
    if let Some((_, out)) = results.last() {
        record_outcome(cfg, &mut table, "fig05-hash", out);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig05_shape_holds() {
        let cfg =
            RunConfig { scale: 16, quick: false, out_dir: None, trace_dir: None, profile: false };
        let t = run(&cfg);
        assert_eq!(t.rows.len(), 4);
        // Column order: hash total, hash join, nl total, nl join.
        let col = |row: usize, col: usize| t.rows[row].1[col].unwrap();
        // Hash join-phase throughput beats nested loops at 2048 elements.
        assert!(col(3, 1) > col(3, 3), "hash {} vs nl {} at 2048", col(3, 1), col(3, 3));
        // Nested loops degrade going 1024 -> 2048 (quadratic).
        assert!(col(2, 3) > col(3, 3));
        // Totals stay reasonably close even at 2048 (the paper's own gap
        // there is ~3x) and genuinely close at 1024.
        assert!(col(2, 0) < 2.5 * col(2, 2), "1024: {} vs {}", col(2, 0), col(2, 2));
        assert!(col(3, 0) < 6.0 * col(3, 2), "2048: {} vs {}", col(3, 0), col(3, 2));
    }
}
