//! A minimal wall-clock micro-benchmark harness for the `harness = false`
//! bench targets (the workspace builds offline, without `criterion`).
//!
//! Calibrates iteration counts toward a fixed time budget per benchmark,
//! reports the best-of-runs nanoseconds per iteration, and — unlike a
//! statistics-heavy harness — stays dependency-free. The simulated-clock
//! reproduction numbers live in the `repro` binary; these track the host
//! cost of the library itself.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target measurement time per benchmark. Override the pace with
/// `HCJ_BENCH_BUDGET_MS` (e.g. `=5` for a smoke pass in CI).
fn budget() -> Duration {
    let ms = std::env::var("HCJ_BENCH_BUDGET_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(200);
    Duration::from_millis(ms.max(1))
}

/// Time `f`, printing `group/name: <ns>/iter`. Returns ns/iter.
pub fn bench<T>(group: &str, name: &str, mut f: impl FnMut() -> T) -> f64 {
    // Warm up and estimate a single-iteration cost.
    let t0 = Instant::now();
    black_box(f());
    let once = t0.elapsed().max(Duration::from_nanos(50));

    let budget = budget();
    let iters = (budget.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
    // Three runs of `iters`; keep the fastest (least-noise) run.
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let per_iter = t.elapsed().as_nanos() as f64 / iters as f64;
        if per_iter < best {
            best = per_iter;
        }
        if t.elapsed() > budget {
            break; // long benchmarks: one measured run is enough
        }
    }
    println!("{group}/{name}: {} ({iters} iters/run)", fmt_ns(best));
    best
}

/// Like [`fn@bench`], but rebuilds fresh input with `setup` outside the timed
/// region on every iteration (criterion's `iter_batched`).
pub fn bench_with_setup<S, T>(
    group: &str,
    name: &str,
    mut setup: impl FnMut() -> S,
    mut f: impl FnMut(S) -> T,
) -> f64 {
    let t0 = Instant::now();
    black_box(f(setup()));
    let once = t0.elapsed().max(Duration::from_nanos(50));

    let budget = budget();
    let iters = (budget.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let inputs: Vec<S> = (0..iters).map(|_| setup()).collect();
        let t = Instant::now();
        for input in inputs {
            black_box(f(input));
        }
        let per_iter = t.elapsed().as_nanos() as f64 / iters as f64;
        if per_iter < best {
            best = per_iter;
        }
        if t.elapsed() > budget {
            break;
        }
    }
    println!("{group}/{name}: {} ({iters} iters/run)", fmt_ns(best));
    best
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s/iter", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms/iter", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us/iter", ns / 1e3)
    } else {
        format!("{ns:.1} ns/iter")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_positive_time() {
        std::env::set_var("HCJ_BENCH_BUDGET_MS", "1");
        let ns = bench("test", "noop-sum", || (0..100u64).sum::<u64>());
        assert!(ns > 0.0);
        let ns = bench_with_setup(
            "test",
            "sort",
            || vec![3u32, 1, 2],
            |mut v| {
                v.sort_unstable();
                v
            },
        );
        assert!(ns > 0.0);
    }

    #[test]
    fn ns_formatting_picks_unit() {
        assert_eq!(fmt_ns(12.4), "12.4 ns/iter");
        assert_eq!(fmt_ns(12_400.0), "12.400 us/iter");
        assert_eq!(fmt_ns(12_400_000.0), "12.400 ms/iter");
        assert_eq!(fmt_ns(2_500_000_000.0), "2.500 s/iter");
    }
}
