//! Result tables: aligned terminal output + CSV files.

use std::fmt::Write as _;
use std::path::Path;

/// One figure's regenerated data: an x-column plus one y-column per series.
#[derive(Clone, Debug)]
pub struct Table {
    /// Stable id, e.g. `fig08`.
    pub id: &'static str,
    /// Human title matching the paper's caption.
    pub title: String,
    pub x_label: &'static str,
    pub y_label: &'static str,
    pub series: Vec<String>,
    /// `(x, y per series)`; `None` = the paper's "engine failed/absent".
    pub rows: Vec<(String, Vec<Option<f64>>)>,
    /// Scale factors, substitutions, commentary — printed under the table.
    pub notes: Vec<String>,
    /// Pre-rendered hardware-counter profile blocks (`repro --profile`),
    /// printed verbatim after the notes; empty without `--profile`.
    pub profiles: Vec<String>,
    /// Perf-gate probes: named baseline metrics (simulated cycles, counter
    /// totals, derived ratios) recorded by the figure's representative
    /// runs. Not printed; consumed by `repro --write/--check-baseline`.
    pub probes: Vec<(String, hcj_sim::baseline::Metric)>,
}

impl Table {
    pub fn new(
        id: &'static str,
        title: impl Into<String>,
        x_label: &'static str,
        y_label: &'static str,
        series: Vec<String>,
    ) -> Self {
        Table {
            id,
            title: title.into(),
            x_label,
            y_label,
            series,
            rows: Vec::new(),
            notes: Vec::new(),
            profiles: Vec::new(),
            probes: Vec::new(),
        }
    }

    /// Append one x-row; `values.len()` must equal the series count.
    pub fn row(&mut self, x: impl Into<String>, values: Vec<Option<f64>>) {
        assert_eq!(values.len(), self.series.len(), "row width != series count");
        self.rows.push((x.into(), values));
    }

    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Record one perf-gate probe metric. Probe order is insertion order;
    /// the baseline store sorts by name, so ordering here is free.
    pub fn probe(&mut self, name: impl Into<String>, metric: hcj_sim::baseline::Metric) {
        self.probes.push((name.into(), metric));
    }

    /// Attach a rendered per-kernel counter profile for one representative
    /// run (`--profile`); printed indented under a `profile [name]:` header.
    pub fn profile(&mut self, name: &str, rendered: &str) {
        let mut block = format!("  profile [{name}]:\n");
        for line in rendered.lines() {
            block.push_str("    ");
            block.push_str(line);
            block.push('\n');
        }
        self.profiles.push(block);
    }

    /// Aligned, human-readable rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        let _ = writeln!(out, "   ({} vs {})", self.y_label, self.x_label);
        let xw =
            self.rows.iter().map(|(x, _)| x.len()).chain([self.x_label.len()]).max().unwrap_or(8);
        let widths: Vec<usize> = self.series.iter().map(|s| s.len().max(10)).collect();
        let _ = write!(out, "{:>xw$}", self.x_label, xw = xw);
        for (s, w) in self.series.iter().zip(&widths) {
            let _ = write!(out, "  {s:>w$}", w = w);
        }
        out.push('\n');
        for (x, vals) in &self.rows {
            let _ = write!(out, "{x:>xw$}", xw = xw);
            for (v, w) in vals.iter().zip(&widths) {
                match v {
                    Some(v) => {
                        let _ = write!(out, "  {v:>w$.4}", w = w);
                    }
                    None => {
                        let _ = write!(out, "  {:>w$}", "-", w = w);
                    }
                }
            }
            out.push('\n');
        }
        for n in &self.notes {
            let _ = writeln!(out, "  note: {n}");
        }
        for p in &self.profiles {
            out.push_str(p);
        }
        out
    }

    /// CSV rendering (header row + one line per x).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{}", csv_escape(self.x_label));
        for s in &self.series {
            let _ = write!(out, ",{}", csv_escape(s));
        }
        out.push('\n');
        for (x, vals) in &self.rows {
            let _ = write!(out, "{}", csv_escape(x));
            for v in vals {
                match v {
                    Some(v) => {
                        let _ = write!(out, ",{v}");
                    }
                    None => out.push(','),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Write `<id>.csv` into `dir`.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join(format!("{}.csv", self.id)), self.to_csv())
    }
}

fn csv_escape(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(
            "fig99",
            "Sample",
            "size",
            "throughput",
            vec!["ours".into(), "theirs".into()],
        );
        t.row("1M", vec![Some(4.5), Some(1.25)]);
        t.row("2M", vec![Some(5.0), None]);
        t.note("scale 1/16");
        t
    }

    #[test]
    fn render_aligns_and_marks_missing() {
        let s = sample().render();
        assert!(s.contains("fig99"));
        assert!(s.contains("4.5000"));
        assert!(s.lines().any(|l| l.trim_end().ends_with('-')));
        assert!(s.contains("note: scale 1/16"));
    }

    #[test]
    fn csv_round_trips_structure() {
        let csv = sample().to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("size,ours,theirs"));
        assert_eq!(lines.next(), Some("1M,4.5,1.25"));
        assert_eq!(lines.next(), Some("2M,5,"));
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("a\"b"), "\"a\"\"b\"");
        assert_eq!(csv_escape("plain"), "plain");
    }

    #[test]
    fn write_csv_creates_file() {
        let dir = std::env::temp_dir().join("hcj-bench-test-report");
        sample().write_csv(&dir).unwrap();
        let content = std::fs::read_to_string(dir.join("fig99.csv")).unwrap();
        assert!(content.starts_with("size,"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let mut t = sample();
        t.row("bad", vec![Some(1.0)]);
    }
}
