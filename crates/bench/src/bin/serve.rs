//! `serve` — deterministic closed-loop soak of the multi-tenant join
//! service (`hcj_engines::service`).
//!
//! ```text
//! serve [--quick] [--seed S] [--jobs N] [--clients N] [--requests N]
//!       [--capacity-div K] [--chaos SEED] [--deadline-ms MS] [--trace DIR]
//!       [--cache] [--popularity-skew THETA]
//! ```
//!
//! Drives N seeded closed-loop clients with mixed relation sizes, skews
//! and payload widths against one shared (simulated) GPU, then prints the
//! service summary. The summary on stdout is byte-for-byte identical for
//! the same `--seed` at any `--jobs` count — the CI soak step diffs two
//! runs. Wall-clock timing goes to stderr. `--trace DIR` writes the whole
//! run as one Chrome `trace_event` timeline (a track per client, a
//! device-memory counter).
//!
//! Defaults contend hard on purpose: the device is the paper's GTX 1080
//! with capacity divided by `--capacity-div` (default 16384 → 512 KB), so
//! a few resident joins fill it and later arrivals must queue, back off
//! and degrade down the strategy ladder.
//!
//! `--chaos SEED` arms the deterministic fault plan (`FaultConfig::chaos`)
//! on the simulated device: transient transfer/kernel faults, stalls,
//! sticky device-lost, capacity shrinks. Seed 0 compiles the fault layer
//! in but disables every probability — output must match a run without
//! the flag. `--deadline-ms MS` gives every request a virtual-time budget;
//! expired requests cancel, release their reservation and report
//! `deadline-exceeded`. With either flag the exit check relaxes from
//! "everything completed" to "every request is accounted for (completed,
//! deadline-exceeded or typed error), every finished request passed the
//! oracle, and no internal invariant broke".
//!
//! `--cache` enables the device-resident build-side cache: requests whose
//! build side matches a resident cached table (same catalog id and
//! content version) skip the rebuild and probe it in place. `--popularity-
//! skew THETA` switches the workload to skewed serving traffic: build
//! sides drawn Zipf(THETA) from a catalog of 12 versioned dimension
//! tables (one content update every 40 draws), the traffic the cache is
//! for. The two compose — a skewed run without `--cache` is the baseline
//! a cached run's counters are compared against.

use std::process::ExitCode;
use std::time::Instant;

use hcj_core::GpuJoinConfig;
use hcj_engines::service::{mixed_workload, skewed_workload, JoinService, ServiceConfig};
use hcj_engines::{BuildCacheConfig, HcjEngine};
use hcj_gpu::{DeviceSpec, FaultConfig};
use hcj_sim::{SimTime, TraceExporter};

const USAGE: &str = "usage: serve [--quick] [--seed S] [--jobs N] [--clients N] [--requests N] \
                     [--capacity-div K] [--chaos SEED] [--deadline-ms MS] [--trace DIR] \
                     [--cache] [--popularity-skew THETA]";

/// Catalog size of the skewed-popularity workload.
const CATALOG_SIZE: usize = 12;
/// One catalog relation receives a content update every this many draws.
const BUMP_EVERY: usize = 40;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = 1u64;
    let mut quick = false;
    let mut clients = 16usize;
    let mut requests = 25usize;
    let mut capacity_div = 1u64 << 14; // 512 KB of the 8 GB part
    let mut chaos: Option<u64> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut trace_dir: Option<std::path::PathBuf> = None;
    let mut cache = false;
    let mut popularity_skew: Option<f64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--seed" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|v| v.parse::<u64>().ok()) else {
                    eprintln!("--seed needs an integer");
                    return ExitCode::FAILURE;
                };
                seed = v;
            }
            "--jobs" => {
                i += 1;
                let Some(v) = args
                    .get(i)
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|v| (1..=256).contains(v))
                else {
                    eprintln!("--jobs needs an integer between 1 and 256");
                    return ExitCode::FAILURE;
                };
                hcj_host::pool::set_jobs(v);
            }
            "--clients" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|v| v.parse::<usize>().ok()).filter(|&v| v >= 1)
                else {
                    eprintln!("--clients needs a positive integer");
                    return ExitCode::FAILURE;
                };
                clients = v;
            }
            "--requests" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|v| v.parse::<usize>().ok()).filter(|&v| v >= 1)
                else {
                    eprintln!("--requests needs a positive integer (per client)");
                    return ExitCode::FAILURE;
                };
                requests = v;
            }
            "--capacity-div" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|v| v.parse::<u64>().ok()).filter(|&v| v >= 1)
                else {
                    eprintln!("--capacity-div needs a positive integer");
                    return ExitCode::FAILURE;
                };
                capacity_div = v;
            }
            "--chaos" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|v| v.parse::<u64>().ok()) else {
                    eprintln!("--chaos needs an integer seed (0 disables every fault)");
                    return ExitCode::FAILURE;
                };
                chaos = Some(v);
            }
            "--deadline-ms" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|v| v.parse::<u64>().ok()).filter(|&v| v >= 1)
                else {
                    eprintln!("--deadline-ms needs a positive integer (virtual milliseconds)");
                    return ExitCode::FAILURE;
                };
                deadline_ms = Some(v);
            }
            "--trace" => {
                i += 1;
                let Some(dir) = args.get(i) else {
                    eprintln!("--trace needs a directory");
                    return ExitCode::FAILURE;
                };
                trace_dir = Some(dir.into());
            }
            "--cache" => cache = true,
            "--popularity-skew" => {
                i += 1;
                let Some(v) = args
                    .get(i)
                    .and_then(|v| v.parse::<f64>().ok())
                    .filter(|v| v.is_finite() && *v >= 0.0)
                else {
                    eprintln!("--popularity-skew needs a Zipf exponent >= 0 (0 = uniform)");
                    return ExitCode::FAILURE;
                };
                popularity_skew = Some(v);
            }
            other => {
                eprintln!("unknown option `{other}`\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    // Quick mode: the CI soak — 8 clients x 25 requests = 200, small
    // relations, same contention regime.
    let (clients, requests, base_tuples) =
        if quick { (8, 25, 1_000) } else { (clients, requests, 2_000) };

    let device = DeviceSpec::gtx1080().scaled_capacity(capacity_div);
    // Buckets tuned for the largest build side the workload can draw
    // (4 * base_tuples); radix bits stay above the co-processing CPU bits.
    let mut join_config = GpuJoinConfig::paper_default(device.clone())
        .with_radix_bits(8)
        .with_tuned_buckets(4 * base_tuples);
    if let Some(fault_seed) = chaos {
        // Seed 0: fault layer armed but every probability zero — a
        // determinism control, not a chaos run.
        let cfg =
            if fault_seed == 0 { FaultConfig::disabled(0) } else { FaultConfig::chaos(fault_seed) };
        join_config = join_config.with_faults(cfg);
    }
    let engine = HcjEngine::new(join_config);
    let deadline = deadline_ms.map(|ms| SimTime::from_nanos(ms * 1_000_000));
    let cache_config = cache.then(BuildCacheConfig::default);
    let service = JoinService::new(
        engine,
        ServiceConfig::default().with_deadline(deadline).with_cache(cache_config),
    );
    let workload = match popularity_skew {
        Some(theta) => {
            skewed_workload(clients, requests, base_tuples, CATALOG_SIZE, theta, BUMP_EVERY, seed)
        }
        None => mixed_workload(clients, requests, base_tuples, seed),
    };
    let total: usize = workload.iter().map(|c| c.requests.len()).sum();

    println!(
        "# hcj join service soak — seed {seed}, {clients} clients x {requests} requests, \
         device {} KB, chaos {}, deadline {}, cache {}, skew {}",
        device.device_mem_bytes >> 10,
        match chaos {
            Some(s) => format!("seed {s}"),
            None => "off".into(),
        },
        match deadline_ms {
            Some(ms) => format!("{ms} ms"),
            None => "none".into(),
        },
        if cache { "on" } else { "off" },
        match popularity_skew {
            Some(theta) => format!("zipf {theta}"),
            None => "mixed".into(),
        },
    );
    let started = Instant::now();
    let report = service.run(&workload);
    eprintln!("  [{total} requests served in {:.1?} wall-clock]", started.elapsed());

    print!("{}", report.summary());

    if let Some(dir) = &trace_dir {
        let path = dir.join(format!("service_seed{seed}.trace.json"));
        if let Err(e) = TraceExporter::new().write_timeline(&report.timeline, &path) {
            eprintln!("failed to write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("  [service timeline written to {}]", path.display());
    }

    if !report.invariant_violations.is_empty() {
        eprintln!("FAIL: {} internal invariant violation(s)", report.invariant_violations.len());
        for v in &report.invariant_violations {
            eprintln!("  - {v}");
        }
        return ExitCode::FAILURE;
    }
    let chaotic = chaos.is_some_and(|s| s != 0) || deadline_ms.is_some();
    if chaotic {
        // Under chaos/deadlines some requests may legitimately cancel or
        // fail — but every one must be accounted for with a typed outcome,
        // and every request that did finish must be oracle-correct.
        let accounted = report.completed() + report.deadline_exceeded() + report.errored();
        if accounted != total || report.checks_passed() != report.completed() {
            eprintln!(
                "FAIL: {accounted}/{total} accounted for, {}/{} finished requests passed the \
                 oracle",
                report.checks_passed(),
                report.completed()
            );
            return ExitCode::FAILURE;
        }
    } else if report.completed() != total || report.checks_passed() != total {
        eprintln!(
            "FAIL: {}/{} completed, {}/{} oracle checks passed",
            report.completed(),
            total,
            report.checks_passed(),
            total
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
