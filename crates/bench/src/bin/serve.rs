//! `serve` — deterministic closed-loop soak of the multi-tenant join
//! service (`hcj_engines::service`).
//!
//! ```text
//! serve [--quick] [--seed S] [--jobs N] [--clients N] [--requests N]
//!       [--capacity-div K] [--chaos SEED] [--deadline-ms MS] [--trace DIR]
//!       [--cache] [--popularity-skew THETA] [--plan {chain|star}]
//!       [--devices N] [--exchange] [--device-mix LIST]
//! ```
//!
//! Drives N seeded closed-loop clients with mixed relation sizes, skews
//! and payload widths against one shared (simulated) GPU, then prints the
//! service summary. The summary on stdout is byte-for-byte identical for
//! the same `--seed` at any `--jobs` count — the CI soak step diffs two
//! runs. Wall-clock timing goes to stderr. `--trace DIR` writes the whole
//! run as one Chrome `trace_event` timeline (a track per client, a
//! device-memory counter).
//!
//! Defaults contend hard on purpose: the device is the paper's GTX 1080
//! with capacity divided by `--capacity-div` (default 16384 → 512 KB), so
//! a few resident joins fill it and later arrivals must queue, back off
//! and degrade down the strategy ladder.
//!
//! `--chaos SEED` arms the deterministic fault plan (`FaultConfig::chaos`)
//! on the simulated device: transient transfer/kernel faults, stalls,
//! sticky device-lost, capacity shrinks. Seed 0 compiles the fault layer
//! in but disables every probability — output must match a run without
//! the flag. `--deadline-ms MS` gives every request a virtual-time budget;
//! expired requests cancel, release their reservation and report
//! `deadline-exceeded`. With either flag the exit check relaxes from
//! "everything completed" to "every request is accounted for (completed,
//! deadline-exceeded or typed error), every finished request passed the
//! oracle, and no internal invariant broke".
//!
//! `--cache` enables the device-resident build-side cache: requests whose
//! build side matches a resident cached table (same catalog id and
//! content version) skip the rebuild and probe it in place. `--popularity-
//! skew THETA` switches the workload to skewed serving traffic: build
//! sides drawn Zipf(THETA) from a catalog of 12 versioned dimension
//! tables (one content update every 40 draws), the traffic the cache is
//! for. The two compose — a skewed run without `--cache` is the baseline
//! a cached run's counters are compared against.
//!
//! `--plan {chain|star}` switches every request to a whole 2–4-join query
//! plan executed as an operator DAG on the service: dimension sides drawn
//! with Zipf popularity from the same catalog (THETA from
//! `--popularity-skew`, default 0.75), intermediates pinned device-
//! resident when they fit or spilled to the host, named build sides
//! consulting the cache when `--cache` is on. The summary gains plan
//! lines (requests, ops, pinned/spilled intermediates) and stays
//! byte-identical across `--jobs` counts.
//!
//! `--devices N` (N >= 2) shards the service across N simulated GPUs
//! (`hcj_engines::fleet`): consistent-hash tenant routing with
//! spill-to-least-loaded, per-device fault streams, circuit breakers and
//! device-lost failover — a lost device drains its admitted requests,
//! releases every reservation and cache pin, and re-routes the queue to
//! survivors (CPU when the fleet is saturated). The summary gains fleet
//! and per-device lines and stays byte-identical across `--jobs` counts.
//! `--devices 1` (the default) is the unsharded single-device service,
//! byte-identical to pre-fleet builds.
//!
//! `--exchange` (requires a fleet) lets the planner admit joins that
//! overflow every single device as cross-device partitioned exchanges
//! (`hcj_engines::exchange`): both inputs are radix-partitioned, the
//! partitions are spread over the serving devices by a weighted
//! consistent-hash ring, non-local partitions are shuffled over the
//! modeled interconnect, and the per-device partial joins are merged in
//! partition order. The summary gains `executed cross-device` and
//! `exchange out / in` lines when any request takes that path; without
//! the flag (the default) output is byte-identical to pre-exchange
//! builds. `--device-mix LIST` (comma-separated device names, e.g.
//! `gtx1080,v100,gtx1080`; implies a fleet of that size) serves on a
//! heterogeneous fleet — each device's capacity comes from its own spec
//! (scaled by `--capacity-div`) and exchange partition ownership is
//! weighted by device memory bandwidth, so the V100 owns more
//! partitions than a GTX 1080. See `FLEET.md` for the protocol.

use std::process::ExitCode;
use std::time::Instant;

use hcj_core::GpuJoinConfig;
use hcj_engines::service::{
    mixed_workload, plan_workload, skewed_workload, JoinService, PlanShape, ServiceConfig,
};
use hcj_engines::{BuildCacheConfig, FleetConfig, FleetService, HcjEngine};
use hcj_gpu::{DeviceSpec, FaultConfig};
use hcj_sim::{SimTime, TraceExporter};

const USAGE: &str = "usage: serve [--quick] [--seed S] [--jobs N] [--clients N] [--requests N] \
                     [--capacity-div K] [--chaos SEED] [--deadline-ms MS] [--trace DIR] \
                     [--cache] [--popularity-skew THETA] [--plan {chain|star}] [--devices N] \
                     [--exchange] [--device-mix LIST]";

/// Catalog size of the skewed-popularity and plan workloads.
const CATALOG_SIZE: usize = 12;
/// One catalog relation receives a content update every this many draws.
const BUMP_EVERY: usize = 40;

/// Everything the command line can configure, parsed before any of it is
/// acted on. Parsing is pure: a bad later flag must not leave earlier
/// flags half-applied (`--jobs` used to mutate the global pool from
/// inside the parse loop).
#[derive(Debug, PartialEq)]
struct Opts {
    seed: u64,
    quick: bool,
    jobs: Option<usize>,
    clients: usize,
    requests: usize,
    capacity_div: u64,
    chaos: Option<u64>,
    deadline_ms: Option<u64>,
    trace_dir: Option<std::path::PathBuf>,
    cache: bool,
    popularity_skew: Option<f64>,
    plan: Option<PlanShape>,
    devices: usize,
    exchange: bool,
    device_mix: Vec<String>,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            seed: 1,
            quick: false,
            jobs: None,
            clients: 16,
            requests: 25,
            capacity_div: 1 << 14, // 512 KB of the 8 GB part
            chaos: None,
            deadline_ms: None,
            trace_dir: None,
            cache: false,
            popularity_skew: None,
            plan: None,
            devices: 1,
            exchange: false,
            device_mix: Vec::new(),
        }
    }
}

/// Device names `--device-mix` accepts, mapped to their specs in
/// [`mix_spec`]. Kept as data so the error message stays in sync.
const MIX_NAMES: [&str; 2] = ["gtx1080", "v100"];

fn mix_spec(name: &str, capacity_div: u64) -> DeviceSpec {
    match name {
        "gtx1080" => DeviceSpec::gtx1080().scaled_capacity(capacity_div),
        "v100" => DeviceSpec::v100().scaled_capacity(capacity_div),
        other => unreachable!("parse_args validated device names, got `{other}`"),
    }
}

/// Parse the argument list into [`Opts`] without touching any global
/// state. `Err` carries the message to print; the caller decides what to
/// do about it (and only applies side effects after an `Ok`).
fn parse_args(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => opts.quick = true,
            "--seed" => {
                i += 1;
                let v = args
                    .get(i)
                    .and_then(|v| v.parse::<u64>().ok())
                    .ok_or("--seed needs an integer")?;
                opts.seed = v;
            }
            "--jobs" => {
                i += 1;
                let v = args
                    .get(i)
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|v| (1..=256).contains(v))
                    .ok_or("--jobs needs an integer between 1 and 256")?;
                opts.jobs = Some(v);
            }
            "--clients" => {
                i += 1;
                let v = args
                    .get(i)
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|&v| v >= 1)
                    .ok_or("--clients needs a positive integer")?;
                opts.clients = v;
            }
            "--requests" => {
                i += 1;
                let v = args
                    .get(i)
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|&v| v >= 1)
                    .ok_or("--requests needs a positive integer (per client)")?;
                opts.requests = v;
            }
            "--capacity-div" => {
                i += 1;
                let v = args
                    .get(i)
                    .and_then(|v| v.parse::<u64>().ok())
                    .filter(|&v| v >= 1)
                    .ok_or("--capacity-div needs a positive integer")?;
                opts.capacity_div = v;
            }
            "--chaos" => {
                i += 1;
                let v = args
                    .get(i)
                    .and_then(|v| v.parse::<u64>().ok())
                    .ok_or("--chaos needs an integer seed (0 disables every fault)")?;
                opts.chaos = Some(v);
            }
            "--deadline-ms" => {
                i += 1;
                let v = args
                    .get(i)
                    .and_then(|v| v.parse::<u64>().ok())
                    .filter(|&v| v >= 1)
                    .ok_or("--deadline-ms needs a positive integer (virtual milliseconds)")?;
                opts.deadline_ms = Some(v);
            }
            "--trace" => {
                i += 1;
                let dir = args.get(i).ok_or("--trace needs a directory")?;
                opts.trace_dir = Some(dir.into());
            }
            "--cache" => opts.cache = true,
            "--popularity-skew" => {
                i += 1;
                let v = args
                    .get(i)
                    .and_then(|v| v.parse::<f64>().ok())
                    .filter(|v| v.is_finite() && *v >= 0.0)
                    .ok_or("--popularity-skew needs a Zipf exponent >= 0 (0 = uniform)")?;
                opts.popularity_skew = Some(v);
            }
            "--plan" => {
                i += 1;
                let shape = match args.get(i).map(String::as_str) {
                    Some("chain") => PlanShape::Chain,
                    Some("star") => PlanShape::Star,
                    _ => return Err("--plan needs a shape: chain or star".into()),
                };
                opts.plan = Some(shape);
            }
            "--devices" => {
                i += 1;
                let v = args
                    .get(i)
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|v| (1..=32).contains(v))
                    .ok_or("--devices needs an integer between 1 and 32")?;
                opts.devices = v;
            }
            "--exchange" => opts.exchange = true,
            "--device-mix" => {
                i += 1;
                let list = args.get(i).ok_or("--device-mix needs a comma-separated list")?;
                let names: Vec<String> = list.split(',').map(str::to_string).collect();
                if names.len() < 2 || names.len() > 32 {
                    return Err("--device-mix needs between 2 and 32 devices".into());
                }
                if let Some(bad) = names.iter().find(|n| !MIX_NAMES.contains(&n.as_str())) {
                    return Err(format!(
                        "--device-mix: unknown device `{bad}` (known: {})",
                        MIX_NAMES.join(", ")
                    ));
                }
                opts.device_mix = names;
            }
            other => return Err(format!("unknown option `{other}`\n{USAGE}")),
        }
        i += 1;
    }
    // Cross-flag validation, still before any side effect.
    if !opts.device_mix.is_empty() && opts.devices > 1 {
        return Err("--device-mix already fixes the fleet size; drop --devices".into());
    }
    if opts.exchange && opts.devices < 2 && opts.device_mix.is_empty() {
        return Err("--exchange needs a fleet: pass --devices N (N >= 2) or --device-mix".into());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    // Side effects only after the whole command line parsed.
    if let Some(jobs) = opts.jobs {
        hcj_host::pool::set_jobs(jobs);
    }
    let Opts {
        seed,
        quick,
        clients,
        requests,
        capacity_div,
        chaos,
        deadline_ms,
        trace_dir,
        cache,
        popularity_skew,
        plan,
        devices,
        exchange,
        device_mix,
        ..
    } = opts;
    // A mix fixes the fleet width; parse_args rejected combining it with
    // --devices, so this count is the one the header and service use.
    let fleet_width = if device_mix.is_empty() { devices } else { device_mix.len() };
    // Quick mode: the CI soak — 8 clients x 25 requests = 200, small
    // relations, same contention regime. Plans carry 2-4 joins each, so
    // their quick run issues fewer, heavier requests.
    let (clients, requests, base_tuples) = match (quick, plan.is_some()) {
        (true, false) => (8, 25, 1_000),
        (true, true) => (4, 6, 1_000),
        (false, _) => (clients, requests, 2_000),
    };

    let device = DeviceSpec::gtx1080().scaled_capacity(capacity_div);
    // Buckets tuned for the largest build side the workload can draw
    // (4 * base_tuples); radix bits stay above the co-processing CPU bits.
    let mut join_config = GpuJoinConfig::paper_default(device.clone())
        .with_radix_bits(8)
        .with_tuned_buckets(4 * base_tuples);
    if let Some(fault_seed) = chaos {
        // Seed 0: fault layer armed but every probability zero — a
        // determinism control, not a chaos run.
        let cfg =
            if fault_seed == 0 { FaultConfig::disabled(0) } else { FaultConfig::chaos(fault_seed) };
        join_config = join_config.with_faults(cfg);
    }
    let engine = HcjEngine::new(join_config);
    let deadline = deadline_ms.map(|ms| SimTime::from_nanos(ms * 1_000_000));
    let cache_config = cache.then(BuildCacheConfig::default);
    let service_config = ServiceConfig::default().with_deadline(deadline).with_cache(cache_config);
    let workload = match (plan, popularity_skew) {
        (Some(shape), theta) => plan_workload(
            shape,
            clients,
            requests,
            base_tuples,
            CATALOG_SIZE,
            theta.unwrap_or(0.75),
            BUMP_EVERY,
            seed,
        ),
        (None, Some(theta)) => {
            skewed_workload(clients, requests, base_tuples, CATALOG_SIZE, theta, BUMP_EVERY, seed)
        }
        (None, None) => mixed_workload(clients, requests, base_tuples, seed),
    };
    let total: usize = workload.iter().map(|c| c.requests.len()).sum();

    println!(
        "# hcj join service soak — seed {seed}, {clients} clients x {requests} requests, \
         device {} KB, chaos {}, deadline {}, cache {}, skew {}{}{}",
        device.device_mem_bytes >> 10,
        match chaos {
            Some(s) => format!("seed {s}"),
            None => "off".into(),
        },
        match deadline_ms {
            Some(ms) => format!("{ms} ms"),
            None => "none".into(),
        },
        if cache { "on" } else { "off" },
        match (plan, popularity_skew) {
            (Some(_), theta) => format!("zipf {}", theta.unwrap_or(0.75)),
            (None, Some(theta)) => format!("zipf {theta}"),
            (None, None) => "mixed".into(),
        },
        match plan {
            Some(PlanShape::Chain) => ", plan chain",
            Some(PlanShape::Star) => ", plan star",
            None => "",
        },
        // Fleet runs announce their topology; --devices 1 keeps the
        // header (and everything after it) byte-identical to pre-fleet
        // builds.
        match (fleet_width > 1, device_mix.is_empty(), exchange) {
            (false, ..) => String::new(),
            (true, true, false) => format!(", fleet {fleet_width} devices"),
            (true, true, true) => format!(", fleet {fleet_width} devices, exchange on"),
            (true, false, false) => format!(", fleet mix {}", device_mix.join("+")),
            (true, false, true) => {
                format!(", fleet mix {}, exchange on", device_mix.join("+"))
            }
        },
    );
    let started = Instant::now();
    let report = if fleet_width > 1 {
        let mut fleet_config = if device_mix.is_empty() {
            FleetConfig::new(fleet_width)
        } else {
            let specs = device_mix.iter().map(|n| mix_spec(n, capacity_div)).collect();
            FleetConfig::new(0).with_device_mix(specs)
        };
        if exchange {
            fleet_config = fleet_config.with_exchange();
        }
        FleetService::new(engine, service_config, fleet_config).run(&workload)
    } else {
        JoinService::new(engine, service_config).run(&workload)
    };
    eprintln!("  [{total} requests served in {:.1?} wall-clock]", started.elapsed());

    print!("{}", report.summary());

    if let Some(dir) = &trace_dir {
        let path = dir.join(format!("service_seed{seed}.trace.json"));
        if let Err(e) = TraceExporter::new().write_timeline(&report.timeline, &path) {
            eprintln!("failed to write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("  [service timeline written to {}]", path.display());
    }

    if !report.invariant_violations.is_empty() {
        eprintln!("FAIL: {} internal invariant violation(s)", report.invariant_violations.len());
        for v in &report.invariant_violations {
            eprintln!("  - {v}");
        }
        return ExitCode::FAILURE;
    }
    let chaotic = chaos.is_some_and(|s| s != 0) || deadline_ms.is_some();
    if chaotic {
        // Under chaos/deadlines some requests may legitimately cancel or
        // fail — but every one must be accounted for with a typed outcome,
        // and every request that did finish must be oracle-correct.
        let accounted = report.completed() + report.deadline_exceeded() + report.errored();
        if accounted != total || report.checks_passed() != report.completed() {
            eprintln!(
                "FAIL: {accounted}/{total} accounted for, {}/{} finished requests passed the \
                 oracle",
                report.checks_passed(),
                report.completed()
            );
            return ExitCode::FAILURE;
        }
    } else if report.completed() != total || report.checks_passed() != total {
        eprintln!(
            "FAIL: {}/{} completed, {}/{} oracle checks passed",
            report.completed(),
            total,
            report.checks_passed(),
            total
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn failed_parses_are_side_effect_free() {
        // A parse that dies on a *later* flag must not have applied an
        // earlier one: `--jobs 7` parses fine here, but the bogus flag
        // fails the whole command line, and the global pool stays as it
        // was (set_jobs only runs in main, after a successful parse).
        hcj_host::pool::set_jobs(1);
        let before = hcj_host::pool::jobs();
        assert!(parse_args(&argv(&["--jobs", "7", "--bogus"])).is_err());
        assert!(parse_args(&argv(&["--jobs", "7", "--plan", "ring"])).is_err());
        assert!(parse_args(&argv(&["--jobs", "0"])).is_err());
        assert!(parse_args(&argv(&["--jobs", "999"])).is_err());
        assert!(parse_args(&argv(&["--jobs"])).is_err());
        assert_eq!(hcj_host::pool::jobs(), before, "failed parses must not touch the pool");
        // A successful parse records the request without applying it.
        let opts = parse_args(&argv(&["--jobs", "7"])).unwrap();
        assert_eq!(opts.jobs, Some(7));
        assert_eq!(hcj_host::pool::jobs(), before, "parsing must never touch the pool");
    }

    #[test]
    fn plan_flag_parses_both_shapes_and_rejects_junk() {
        assert_eq!(parse_args(&argv(&["--plan", "chain"])).unwrap().plan, Some(PlanShape::Chain));
        assert_eq!(parse_args(&argv(&["--plan", "star"])).unwrap().plan, Some(PlanShape::Star));
        assert!(parse_args(&argv(&["--plan"])).is_err());
        assert!(parse_args(&argv(&["--plan", "tree"])).is_err());
        assert_eq!(parse_args(&argv(&[])).unwrap().plan, None);
    }

    #[test]
    fn devices_flag_parses_and_rejects_out_of_range() {
        assert_eq!(parse_args(&argv(&["--devices", "3"])).unwrap().devices, 3);
        assert_eq!(parse_args(&argv(&["--devices", "1"])).unwrap().devices, 1);
        assert_eq!(parse_args(&argv(&[])).unwrap().devices, 1, "default is the unsharded service");
        assert!(parse_args(&argv(&["--devices", "0"])).is_err());
        assert!(parse_args(&argv(&["--devices", "33"])).is_err());
        assert!(parse_args(&argv(&["--devices"])).is_err());
    }

    #[test]
    fn exchange_flag_requires_a_fleet() {
        assert!(parse_args(&argv(&["--exchange"])).is_err(), "needs --devices or --device-mix");
        assert!(parse_args(&argv(&["--exchange", "--devices", "1"])).is_err());
        let opts = parse_args(&argv(&["--exchange", "--devices", "3"])).unwrap();
        assert!(opts.exchange);
        assert_eq!(opts.devices, 3);
        let opts = parse_args(&argv(&["--exchange", "--device-mix", "gtx1080,v100"])).unwrap();
        assert!(opts.exchange);
        assert!(!parse_args(&argv(&["--devices", "3"])).unwrap().exchange, "default is off");
    }

    #[test]
    fn device_mix_parses_known_names_and_rejects_junk() {
        let opts = parse_args(&argv(&["--device-mix", "gtx1080,v100,gtx1080"])).unwrap();
        assert_eq!(opts.device_mix, vec!["gtx1080", "v100", "gtx1080"]);
        assert!(parse_args(&argv(&["--device-mix"])).is_err());
        assert!(parse_args(&argv(&["--device-mix", "v100"])).is_err(), "one device is no fleet");
        assert!(parse_args(&argv(&["--device-mix", "gtx1080,titanx"])).is_err(), "unknown name");
        assert!(
            parse_args(&argv(&["--device-mix", "gtx1080,v100", "--devices", "3"])).is_err(),
            "the mix fixes the fleet size"
        );
        // Every accepted name maps to a spec without panicking.
        for name in MIX_NAMES {
            let _ = mix_spec(name, 1 << 14);
        }
    }

    #[test]
    fn defaults_survive_a_full_flag_soup() {
        let opts = parse_args(&argv(&[
            "--quick",
            "--seed",
            "9",
            "--cache",
            "--popularity-skew",
            "1.25",
            "--plan",
            "star",
            "--capacity-div",
            "256",
        ]))
        .unwrap();
        assert!(opts.quick && opts.cache);
        assert_eq!(opts.seed, 9);
        assert_eq!(opts.capacity_div, 256);
        assert_eq!(opts.popularity_skew, Some(1.25));
        assert_eq!(opts.plan, Some(PlanShape::Star));
        // Untouched flags keep their defaults.
        assert_eq!(opts.clients, 16);
        assert_eq!(opts.requests, 25);
        assert_eq!(opts.chaos, None);
    }
}
