//! `repro` — regenerate the paper's evaluation.
//!
//! ```text
//! repro all [--scale k] [--quick] [--jobs N] [--out DIR] [--trace DIR]
//! repro fig5 fig12 ... [--scale k] [--out DIR]
//! repro list
//! ```
//!
//! Figures print as aligned tables; `--out DIR` additionally writes one
//! CSV per figure, and `--trace DIR` writes a Chrome `trace_event` JSON
//! (`chrome://tracing` / Perfetto) of each figure's representative
//! schedule. `--scale` divides the paper's cardinalities (and, for
//! out-of-GPU figures, device capacity) — see DESIGN.md §5. `--jobs N`
//! (or `HCJ_JOBS=N`) sets the host worker count; results are identical
//! for every worker count, only wall-clock changes. Tables and CSV go to
//! stdout/files; timing diagnostics go to stderr so stdout is
//! byte-for-byte reproducible. `--chaos SEED` arms the ambient
//! deterministic fault plan on every simulated device the figures build
//! (seed 0 arms the layer with all probabilities zero — the CI
//! determinism control: output must match a run without the flag).
//! `--profile` prints an nvprof-style per-kernel hardware-counter table
//! under each figure, writes `<name>.profile.json` beside the CSVs
//! (`--out`) and overlays counter tracks on Chrome traces (`--trace`);
//! counters are simulated and deterministic, so profiled output is as
//! byte-reproducible as the tables.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use hcj_bench::figures::registry;
use hcj_bench::perfgate::{self, GateResult};
use hcj_bench::{RunConfig, MAX_SCALE};

const USAGE: &str = "usage: repro <all|list|figN...> [--scale K] [--quick] [--jobs N] \
                     [--chaos SEED] [--out DIR] [--trace DIR] [--profile] \
                     [--write-baseline DIR] [--check-baseline DIR]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    }

    let mut config = RunConfig::default();
    let mut wanted: Vec<String> = Vec::new();
    let mut run_all = false;
    let mut write_baseline: Option<PathBuf> = None;
    let mut check_baseline: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|v| v.parse::<u64>().ok()).filter(|&v| v >= 1)
                else {
                    eprintln!("--scale needs a positive integer");
                    return ExitCode::FAILURE;
                };
                if v > MAX_SCALE {
                    eprintln!(
                        "--scale {v} exceeds the maximum {MAX_SCALE}: every cardinality would \
                         floor to the 1024-tuple minimum and the figures would be meaningless"
                    );
                    return ExitCode::FAILURE;
                }
                config.scale = v;
            }
            "--quick" => config.quick = true,
            "--profile" => config.profile = true,
            "--jobs" => {
                i += 1;
                let Some(v) = args
                    .get(i)
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|v| (1..=256).contains(v))
                else {
                    eprintln!("--jobs needs an integer between 1 and 256");
                    return ExitCode::FAILURE;
                };
                hcj_host::pool::set_jobs(v);
            }
            "--chaos" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|v| v.parse::<u64>().ok()) else {
                    eprintln!("--chaos needs an integer seed (0 disables every fault)");
                    return ExitCode::FAILURE;
                };
                let cfg = if v == 0 {
                    hcj_gpu::FaultConfig::disabled(0)
                } else {
                    hcj_gpu::FaultConfig::chaos(v)
                };
                hcj_gpu::faults::set_ambient(Some(cfg));
            }
            "--out" => {
                i += 1;
                let Some(dir) = args.get(i) else {
                    eprintln!("--out needs a directory");
                    return ExitCode::FAILURE;
                };
                config.out_dir = Some(dir.into());
            }
            "--trace" => {
                i += 1;
                let Some(dir) = args.get(i) else {
                    eprintln!("--trace needs a directory");
                    return ExitCode::FAILURE;
                };
                config.trace_dir = Some(dir.into());
            }
            "--write-baseline" => {
                i += 1;
                let Some(dir) = args.get(i) else {
                    eprintln!("--write-baseline needs a directory");
                    return ExitCode::FAILURE;
                };
                write_baseline = Some(dir.into());
            }
            "--check-baseline" => {
                i += 1;
                let Some(dir) = args.get(i) else {
                    eprintln!("--check-baseline needs a directory");
                    return ExitCode::FAILURE;
                };
                check_baseline = Some(dir.into());
            }
            "all" => run_all = true,
            "list" => {
                for (id, _) in registry() {
                    println!("{id}");
                }
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown option `{other}`\n{USAGE}");
                return ExitCode::FAILURE;
            }
            other => {
                let id = normalize(other);
                if !wanted.contains(&id) {
                    wanted.push(id);
                }
            }
        }
        i += 1;
    }

    if config.scale_floors_sweeps() {
        eprintln!(
            "warning: --scale {} floors most cardinalities to the 1024-tuple minimum; \
             sweeps will look flat",
            config.scale
        );
    }

    let reg = registry();
    let selected: Vec<_> = if run_all {
        reg
    } else {
        let mut sel = Vec::new();
        for want in &wanted {
            match reg.iter().find(|(id, _)| *id == want) {
                Some(entry) => sel.push(*entry),
                None => {
                    eprintln!("unknown experiment `{want}`; try `repro list`");
                    return ExitCode::FAILURE;
                }
            }
        }
        sel
    };
    if selected.is_empty() {
        eprintln!("nothing to run; try `repro all`");
        return ExitCode::FAILURE;
    }

    println!(
        "# hardware-conscious hash-joins on GPUs — reproduction (scale 1/{}{})",
        config.scale,
        if config.quick { ", quick" } else { "" }
    );
    // Independent figures run concurrently on the worker pool; tables are
    // buffered and printed in selection order, so the output is identical
    // to a serial run.
    let total = Instant::now();
    let results = hcj_host::Pool::current().map(&selected, |_, &(id, runner)| {
        let started = Instant::now();
        let table = runner(&config);
        (id, table, started.elapsed())
    });
    for (id, table, elapsed) in &results {
        println!("\n{}", table.render());
        eprintln!("  [{} regenerated in {:.1?}]", id, elapsed);
        if let Some(dir) = &config.out_dir {
            if let Err(e) = table.write_csv(dir) {
                eprintln!("failed to write {id}.csv: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    eprintln!("  [{} figure(s) in {:.1?}]", results.len(), total.elapsed());

    if let Some(dir) = &write_baseline {
        for (id, table, _) in &results {
            if let Err(e) = perfgate::write_table(&config, dir, table) {
                eprintln!("failed to write baseline for {id}: {e}");
                return ExitCode::FAILURE;
            }
        }
        eprintln!("  [{} baseline(s) written to {}]", results.len(), dir.display());
    }

    if let Some(dir) = &check_baseline {
        // Check every selected figure; report all violations, then fail
        // once. Missing/corrupt baseline files are typed errors on stderr
        // and a nonzero exit, never a panic.
        let mut failures = 0usize;
        for (id, table, _) in &results {
            match perfgate::check_table(&config, dir, table) {
                GateResult::Pass => {}
                GateResult::Diffs(diffs) => {
                    failures += diffs.len();
                    for d in &diffs {
                        eprintln!("perf gate: {d}");
                    }
                }
                GateResult::Error(e) => {
                    failures += 1;
                    eprintln!("perf gate: {id}: {e}");
                }
            }
        }
        if failures > 0 {
            eprintln!(
                "perf gate FAILED: {failures} violation(s) against {} — if the change is \
                 intentional, regenerate with --write-baseline {}",
                dir.display(),
                dir.display()
            );
            return ExitCode::FAILURE;
        }
        eprintln!("  [perf gate passed: {} figure(s) vs {}]", results.len(), dir.display());
    }
    ExitCode::SUCCESS
}

/// Accept `fig5`, `fig05`, `5`, `Fig5`...
fn normalize(arg: &str) -> String {
    let lower = arg.to_ascii_lowercase();
    let digits: String = lower.chars().filter(|c| c.is_ascii_digit()).collect();
    if digits.is_empty() {
        return lower;
    }
    if let Ok(n) = digits.parse::<u32>() {
        if (5..=22).contains(&n) {
            return format!("fig{n:02}");
        }
    }
    lower
}
