//! The perf gate: turns rendered figures into [`FigureBaseline`]s and
//! enforces checked-in goldens (`repro --write-baseline` /
//! `--check-baseline`).
//!
//! Every figure contributes two kinds of pinned data:
//!
//! * the **probes** its runners recorded via
//!   [`crate::figures::common::record_outcome`] — simulated cycles and
//!   per-counter totals of each representative run (exact), plus derived
//!   ratios (coalescing efficiency, occupancy, roofline attainment —
//!   tolerance-banded);
//! * a **digest** of the full CSV rendering (`csv_fnv64`), so every sweep
//!   point gates against drift without one metric per cell.
//!
//! The run context (`scale`, `quick`) is recorded with each baseline and
//! gates exactly: checking goldens recorded under a different configuration
//! is reported as a `context:` violation instead of producing misleading
//! metric diffs.

use std::path::Path;

use hcj_sim::baseline::{fnv64_hex, BaselineError, FigureBaseline, Metric, MetricDiff};

use crate::report::Table;
use crate::RunConfig;

/// Relative tolerance for Float metrics; see
/// [`hcj_sim::baseline::FLOAT_TOLERANCE`].
pub use hcj_sim::baseline::FLOAT_TOLERANCE;

/// Build the baseline a figure's rendered table implies under `cfg`.
pub fn baseline_from_table(cfg: &RunConfig, table: &Table) -> FigureBaseline {
    let mut b = FigureBaseline::new(table.id);
    b.context("scale", cfg.scale.to_string());
    b.context("quick", cfg.quick.to_string());
    for (name, metric) in &table.probes {
        b.metric(name.clone(), metric.clone());
    }
    b.metric("csv_fnv64", Metric::Text(fnv64_hex(&table.to_csv())));
    b
}

/// The outcome of checking one figure against a baseline directory.
pub enum GateResult {
    /// Every metric within band.
    Pass,
    /// The named metric violations.
    Diffs(Vec<MetricDiff>),
    /// The baseline could not be loaded (missing/corrupt file).
    Error(BaselineError),
}

/// Check one figure's table against `<dir>/<id>.json`.
pub fn check_table(cfg: &RunConfig, dir: &Path, table: &Table) -> GateResult {
    let observed = baseline_from_table(cfg, table);
    match FigureBaseline::load(dir, table.id) {
        Ok(golden) => {
            let diffs = golden.compare(&observed, FLOAT_TOLERANCE);
            if diffs.is_empty() {
                GateResult::Pass
            } else {
                GateResult::Diffs(diffs)
            }
        }
        Err(e) => GateResult::Error(e),
    }
}

/// Write one figure's baseline into `dir`.
pub fn write_table(
    cfg: &RunConfig,
    dir: &Path,
    table: &Table,
) -> Result<std::path::PathBuf, BaselineError> {
    baseline_from_table(cfg, table).store(dir)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let mut t = Table::new("fig98", "Gate sample", "size", "tput", vec!["ours".into()]);
        t.row("1M", vec![Some(4.5)]);
        t.probe("cycles[run]", Metric::Exact(1_000_000));
        t.probe("coalescing[run]", Metric::Float(0.97));
        t
    }

    fn cfg() -> RunConfig {
        RunConfig { quick: true, ..RunConfig::default() }
    }

    #[test]
    fn round_trip_write_then_check_passes() {
        let dir = std::env::temp_dir().join("hcj-perfgate-roundtrip");
        let _ = std::fs::remove_dir_all(&dir);
        write_table(&cfg(), &dir, &table()).unwrap();
        assert!(matches!(check_table(&cfg(), &dir, &table()), GateResult::Pass));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cycle_inflation_fails_naming_figure_and_metric() {
        let dir = std::env::temp_dir().join("hcj-perfgate-inflate");
        let _ = std::fs::remove_dir_all(&dir);
        write_table(&cfg(), &dir, &table()).unwrap();
        let mut inflated = table();
        inflated.probes[0].1 = Metric::Exact(2_000_000);
        match check_table(&cfg(), &dir, &inflated) {
            GateResult::Diffs(diffs) => {
                assert_eq!(diffs.len(), 1);
                assert_eq!(diffs[0].figure, "fig98");
                assert_eq!(diffs[0].metric, "cycles[run]");
                assert_eq!(diffs[0].baseline, "1000000");
                assert_eq!(diffs[0].observed, "2000000");
            }
            GateResult::Pass => panic!("inflated cycles must fail the gate"),
            GateResult::Error(e) => panic!("unexpected load error: {e}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn csv_drift_fails_via_the_digest() {
        let dir = std::env::temp_dir().join("hcj-perfgate-csv");
        let _ = std::fs::remove_dir_all(&dir);
        write_table(&cfg(), &dir, &table()).unwrap();
        let mut drifted = table();
        drifted.rows[0].1[0] = Some(4.6);
        match check_table(&cfg(), &dir, &drifted) {
            GateResult::Diffs(diffs) => {
                assert!(diffs.iter().any(|d| d.metric == "csv_fnv64"), "{diffs:?}");
            }
            _ => panic!("csv drift must fail the gate"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn context_mismatch_is_reported_as_such() {
        let dir = std::env::temp_dir().join("hcj-perfgate-context");
        let _ = std::fs::remove_dir_all(&dir);
        write_table(&cfg(), &dir, &table()).unwrap();
        let full = RunConfig { quick: false, ..RunConfig::default() };
        match check_table(&full, &dir, &table()) {
            GateResult::Diffs(diffs) => {
                assert!(diffs.iter().any(|d| d.metric == "context:quick"), "{diffs:?}");
            }
            _ => panic!("context mismatch must fail the gate"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_baseline_is_a_typed_error() {
        let dir = std::env::temp_dir().join("hcj-perfgate-missing");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        match check_table(&cfg(), &dir, &table()) {
            GateResult::Error(BaselineError::Missing { .. }) => {}
            _ => panic!("missing baseline must be a typed error"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
