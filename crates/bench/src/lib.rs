//! The experiment harness: regenerates every table and figure of the
//! paper's evaluation section (Figs. 5–22) plus ablations of the design
//! choices, printing the same series the paper plots and writing CSV.
//!
//! Run via the `repro` binary:
//!
//! ```text
//! cargo run --release -p hcj-bench --bin repro -- all
//! cargo run --release -p hcj-bench --bin repro -- fig8 --scale 32
//! cargo run --release -p hcj-bench --bin repro -- ablations --out results/
//! ```
//!
//! ## Scale
//!
//! The paper's largest experiments use multi-billion-tuple relations on an
//! 8 GB GPU. `--scale k` divides every cardinality by `k` and shrinks
//! device capacity (and the engine models' internal limits) with it, so
//! capacity *ratios* — and therefore strategy crossovers and pipeline
//! bottlenecks — are preserved while bandwidths stay physical. Figures
//! whose effects are capacity-absolute (shared-memory sizing, Figs. 5–10)
//! keep the device unscaled and shrink only cardinalities. The default
//! scale per figure is chosen to complete in minutes on one core; the
//! scale used is printed in each table's notes and recorded in
//! EXPERIMENTS.md.

pub mod figures;
pub mod microbench;
pub mod perfgate;
pub mod report;

pub use report::Table;

use std::path::PathBuf;

/// Largest accepted `--scale`. Beyond this even the paper's biggest
/// cardinalities (2048 M tuples) divide below the 1024-tuple floor, so
/// every sweep collapses to one flat point and the figures say nothing.
pub const MAX_SCALE: u64 = 1 << 20;

/// Harness-wide run configuration.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Divide paper cardinalities (and out-of-GPU device capacity) by this.
    pub scale: u64,
    /// Reduce sweep points (for smoke tests / CI).
    pub quick: bool,
    /// Write `<id>.csv` per figure here.
    pub out_dir: Option<PathBuf>,
    /// Write `<name>.trace.json` Chrome traces of representative schedules
    /// here (`repro --trace DIR`); `None` disables tracing.
    pub trace_dir: Option<PathBuf>,
    /// Surface the simulated hardware counters (`repro --profile`): print
    /// an nvprof-style per-kernel table under each figure, write
    /// `<name>.profile.json` next to the CSVs, and overlay counter tracks
    /// on Chrome traces. Collection is always on; this only gates output.
    pub profile: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig { scale: 16, quick: false, out_dir: None, trace_dir: None, profile: false }
    }
}

impl RunConfig {
    /// Export `schedule` as `<trace_dir>/<name>.trace.json` when tracing is
    /// enabled. Trace failures warn rather than abort: a full repro run
    /// should not die on a read-only output directory.
    pub fn trace_schedule(&self, name: &str, schedule: &hcj_sim::Schedule) {
        let Some(dir) = &self.trace_dir else { return };
        let path = dir.join(format!("{name}.trace.json"));
        if let Err(e) = hcj_sim::TraceExporter::new().write(schedule, &path) {
            eprintln!("warning: failed to write trace {}: {e}", path.display());
        }
    }

    /// Export `schedule` with the counter tracks of `counters` overlaid
    /// (`--trace` + `--profile`); without `--profile` this is
    /// [`RunConfig::trace_schedule`]. Warns rather than aborts, like all
    /// output paths.
    pub fn trace_schedule_profiled(
        &self,
        name: &str,
        schedule: &hcj_sim::Schedule,
        counters: &hcj_gpu::CounterSet,
    ) {
        if !self.profile || counters.is_empty() {
            return self.trace_schedule(name, schedule);
        }
        let Some(dir) = &self.trace_dir else { return };
        let path = dir.join(format!("{name}.trace.json"));
        let overlay = counters.counter_timeline(schedule);
        if let Err(e) = hcj_sim::TraceExporter::new().write_with_counters(schedule, &overlay, &path)
        {
            eprintln!("warning: failed to write trace {}: {e}", path.display());
        }
    }

    /// Write `<out_dir>/<name>.profile.json` when `--profile` and `--out`
    /// are both active. Warns rather than aborts.
    pub fn write_profile(&self, name: &str, counters: &hcj_gpu::CounterSet) {
        if !self.profile {
            return;
        }
        let Some(dir) = &self.out_dir else { return };
        let path = dir.join(format!("{name}.profile.json"));
        let write =
            std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, counters.to_json()));
        if let Err(e) = write {
            eprintln!("warning: failed to write profile {}: {e}", path.display());
        }
    }
    /// A paper cardinality reduced by the configured scale (at least 1024
    /// tuples so shapes stay measurable).
    pub fn tuples(&self, paper_tuples: u64) -> usize {
        ((paper_tuples / self.scale).max(1024)) as usize
    }

    /// True when the scale floors even the paper's mid-size (16 M tuple)
    /// cardinalities to the 1024-tuple minimum — most sweeps then
    /// degenerate to flat lines and the run only smoke-tests the code.
    pub fn scale_floors_sweeps(&self) -> bool {
        self.scale > 16_000_000 / 1024
    }

    /// Millions of tuples, scaled.
    pub fn mtuples(&self, millions: u64) -> usize {
        self.tuples(millions * 1_000_000)
    }

    /// Thin a sweep to its endpoints + midpoint when `quick`.
    pub fn sweep<T: Copy>(&self, points: &[T]) -> Vec<T> {
        if !self.quick || points.len() <= 3 {
            return points.to_vec();
        }
        vec![points[0], points[points.len() / 2], points[points.len() - 1]]
    }
}

/// Billions of tuples per second, the y-axis unit of most figures.
pub fn btps(tuples_per_s: f64) -> f64 {
    tuples_per_s / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_math() {
        let cfg = RunConfig { scale: 16, ..RunConfig::default() };
        assert_eq!(cfg.mtuples(64), 4_000_000);
        assert_eq!(cfg.tuples(1_000), 1024); // floor
    }

    #[test]
    fn degenerate_scales_are_flagged() {
        let sane = RunConfig { scale: 64, ..RunConfig::default() };
        assert!(!sane.scale_floors_sweeps());
        let floored = RunConfig { scale: 20_000, ..sane.clone() };
        assert!(floored.scale_floors_sweeps());
        // Even at the acceptance bound the floor keeps runs non-zero.
        let max = RunConfig { scale: MAX_SCALE, ..sane };
        assert_eq!(max.tuples(2_048_000_000), 2_048_000_000 / MAX_SCALE as usize);
        assert_eq!(max.tuples(1_000_000), 1024);
    }

    #[test]
    fn quick_sweeps_thin_out() {
        let cfg = RunConfig { scale: 1, quick: true, ..RunConfig::default() };
        assert_eq!(cfg.sweep(&[1, 2, 3, 4, 5, 6, 7, 8]), vec![1, 5, 8]);
        assert_eq!(cfg.sweep(&[1, 2, 3]), vec![1, 2, 3]);
        let full = RunConfig { quick: false, ..cfg };
        assert_eq!(full.sweep(&[1, 2, 3, 4]), vec![1, 2, 3, 4]);
    }

    #[test]
    fn btps_scales() {
        assert_eq!(btps(4.5e9), 4.5);
    }
}
