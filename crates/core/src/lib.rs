//! Hardware-conscious hash joins on (modeled) GPUs.
//!
//! This crate implements the paper's contribution: a family of
//! radix-partitioned GPU join algorithms tuned to GPU hardware, plus the
//! two out-of-GPU execution strategies that keep them fast when data does
//! not fit in device memory.
//!
//! # The family
//!
//! * [`GpuPartitionedJoin`] — both relations GPU-resident (paper §III):
//!   multi-pass radix partitioning into shared-memory-sized co-partitions
//!   (bucket chains in device memory, §III-A), then a per-co-partition join
//!   with either the shared-memory hash join (atomic-exchange wait-free
//!   build, 16-bit offset chains, §III-C) or the warp-ballot nested loop
//!   (§III-B); results are aggregated or materialized through warp-level
//!   output buffering.
//! * [`NonPartitionedJoin`] — the hardware-oblivious comparator: one global
//!   chained hash table in device memory (or a perfect-hash best case).
//! * [`StreamedProbeJoin`] — build side fits on the GPU, probe side does
//!   not (§IV-A): the probe relation streams through double-buffered chunks
//!   with transfers overlapping execution on separate CUDA streams.
//! * [`CoProcessingJoin`] — neither side fits (§IV-B): the CPU radix
//!   partitions both relations into pinned memory (NUMA-staged), working
//!   sets of co-partitions stream to the GPU and are joined there, all
//!   phases pipelined; skew is handled by knapsack working-set packing
//!   (§IV-D).
//! * [`uva_exec`] — the same join executed over UVA zero-copy or Unified
//!   Memory, for the Fig. 21–22 comparisons.
//!
//! Every algorithm really computes its join (validated against an oracle);
//! the time it takes is computed by the device/host models in `hcj-gpu` and
//! `hcj-host` (see DESIGN.md for the substitution argument).

pub mod balance;
pub mod cached_build;
pub mod config;
pub mod coprocess;
pub mod gpu_resident;
pub mod handoff;
pub mod join;
pub mod nonpart;
pub mod outcome;
pub mod output;
pub mod packing;
pub mod partition;
pub mod radix;
pub mod streamprobe;
pub mod uva_exec;

pub use cached_build::{CachedBuild, CachedBuildJoin};
pub use config::{GpuJoinConfig, OutputMode, PassAssignment, ProbeKind};
pub use coprocess::{CoProcessingConfig, CoProcessingJoin};
pub use gpu_resident::GpuPartitionedJoin;
pub use handoff::OpOutput;
pub use nonpart::{NonPartitionedJoin, NonPartitionedKind};
pub use outcome::{JoinOutcome, Phase, PhaseBreakdown};
pub use streamprobe::{StreamedProbeConfig, StreamedProbeJoin};
