//! Out-of-GPU strategy 1: the streamed-probe join (paper §IV-A, Fig. 2
//! and Fig. 4; evaluated in Fig. 11).
//!
//! The build relation R fits in device memory and is partitioned there
//! once. The probe relation S lives in host memory and streams through the
//! GPU in chunks: while chunk *k* is being joined, chunk *k+1* is already
//! crossing PCIe on a separate stream, double-buffered, with CUDA events
//! ordering buffer reuse. The union of the chunk joins equals R ⨝ S, so
//! the whole join completes at near-transfer speed: total time ≈ transfer
//! time of S plus the processing of the final chunk.
//!
//! With materialization enabled, a mirrored double-buffered device→host
//! pipeline drains results on the second DMA engine (§IV-C, Fig. 4).
//!
//! Recovery: with a fault plan armed, every per-chunk transfer and join
//! carries bounded retry with exponential virtual-time backoff — a
//! transient fault costs one chunk a few backoff slots, never the whole
//! stream. The functional join result is computed exactly once per chunk
//! (retries re-issue only the simulated op), so matches are never double
//! counted. Device-lost aborts with a typed error for the facade's CPU
//! fallback.

use hcj_gpu::{JoinError, RetryPolicy, TransferKind};
use hcj_host::{tasks, HostMachine, HostSpec, Socket};
use hcj_sim::{OpId, Sim};
use hcj_workload::Relation;

use crate::config::{GpuJoinConfig, OutputMode};
use crate::join::join_all_copartitions;
use crate::outcome::JoinOutcome;
use crate::output::{late_materialization_cost, ROW_BYTES};
use crate::partition::GpuPartitioner;

/// Configuration of the streamed-probe strategy.
#[derive(Clone, Debug)]
pub struct StreamedProbeConfig {
    pub join: GpuJoinConfig,
    pub host: HostSpec,
    /// Probe chunk size in tuples. The paper uses half the build relation
    /// size; `None` selects that rule.
    pub chunk_tuples: Option<usize>,
    /// Host memory the probe relation is homed on (it is staged/pinned
    /// there before transfer).
    pub probe_socket: Socket,
    /// Pinned (paper's choice) or pageable host buffers — the transfer
    /// ablation.
    pub transfer: TransferKind,
    /// Input/output buffers per direction: 2 = the paper's double
    /// buffering; 1 serializes copy and join of each chunk (ablation).
    pub buffers: usize,
}

impl StreamedProbeConfig {
    pub fn paper_default(join: GpuJoinConfig) -> Self {
        StreamedProbeConfig {
            join,
            host: HostSpec::dual_xeon_e5_2650l_v3(),
            chunk_tuples: None,
            probe_socket: Socket::Near,
            transfer: TransferKind::Pinned,
            buffers: 2,
        }
    }

    pub fn with_transfer(mut self, transfer: TransferKind) -> Self {
        self.transfer = transfer;
        self
    }

    pub fn with_buffers(mut self, buffers: usize) -> Self {
        assert!((1..=4).contains(&buffers), "1-4 buffers supported");
        self.buffers = buffers;
        self
    }
}

/// The streamed-probe join strategy.
pub struct StreamedProbeJoin {
    pub config: StreamedProbeConfig,
}

impl StreamedProbeJoin {
    pub fn new(config: StreamedProbeConfig) -> Self {
        config.join.validate().expect("join configuration exceeds the device's shared memory");
        StreamedProbeJoin { config }
    }

    /// Execute with R GPU-resident and S streamed from host memory.
    pub fn execute(&self, r: &Relation, s: &Relation) -> Result<JoinOutcome, JoinError> {
        let cfg = &self.config.join;
        let mut sim = Sim::new();
        let gpu = cfg.build_gpu(&mut sim);
        let retry = RetryPolicy::default();
        let host = HostMachine::new(&mut sim, self.config.host.clone());

        let chunk_tuples = self.config.chunk_tuples.unwrap_or_else(|| (r.len() / 2).max(1));
        let chunk_bytes = (chunk_tuples * 8) as u64;
        let nbuf = self.config.buffers;
        let kind = self.config.transfer;

        // Device residency: R (recycled into its bucket chains — input and
        // partitioned form never coexist, as in the resident strategy) +
        // two S chunk input buffers (+ output buffers when materializing).
        let r_input = gpu.mem.reserve(r.bytes())?;
        let partitioner = GpuPartitioner::new(cfg);
        let r_out = partitioner.partition(r);
        drop(r_input);
        let _r_pool = gpu.mem.reserve(r_out.partitioned.pool.device_bytes())?;
        let _in_buffers = gpu.mem.reserve(nbuf as u64 * chunk_bytes)?;
        let _out_buffers = match cfg.output {
            OutputMode::Materialize => {
                // Double output buffers, bounded by a slice of the device.
                let want = 2 * u64::from(cfg.join_block_threads) * 64 * ROW_BYTES;
                Some(gpu.mem.reserve(want.min(cfg.device.device_mem_bytes / 8))?)
            }
            OutputMode::Aggregate => None,
        };

        // R starts in host memory (paper §V-C: "All tables are originally
        // in CPU memory"): it is transferred once, then partitioned on the
        // GPU, before the probe stream begins.
        let mut exec = gpu.stream();
        let mut xfer = gpu.stream();
        let mut drain = gpu.stream();
        let r_copy =
            gpu.copy_h2d_retrying(&mut sim, &mut xfer, "h2d r", r.bytes(), kind, &retry)?.op;
        let r_shadow = tasks::dma_host_traffic(
            &mut sim,
            &host,
            r.bytes(),
            self.config.probe_socket,
            cfg.device.pcie_bandwidth,
            &[],
        );
        exec.wait_op(r_copy);
        exec.wait_op(r_shadow);
        let part_shape = cfg.partition_launch_shape(r.len());
        for (i, pass) in r_out.passes.iter().enumerate() {
            gpu.kernel_costed_retrying(
                &mut sim,
                &mut exec,
                &format!("part r pass{i}"),
                pass.seconds,
                &pass.cost,
                part_shape,
                &retry,
            )?;
        }

        // Stream S chunk by chunk.
        let chunks = s.chunks(chunk_tuples);
        let mut sink = cfg.make_sink();
        let mut copy_done: Vec<OpId> = Vec::with_capacity(chunks.len());
        let mut join_done: Vec<OpId> = Vec::with_capacity(chunks.len());
        let mut drain_done: Vec<OpId> = Vec::with_capacity(chunks.len());

        for (k, chunk) in chunks.iter().enumerate() {
            // -- H2D copy of chunk k (double buffering: buffer k%2 is free
            // once join k-2 has consumed it).
            if k >= nbuf {
                xfer.wait_op(join_done[k - nbuf]);
            }
            let bytes = chunk.bytes();
            // The copy's host-side leg (the DMA engine reading source
            // DRAM) runs concurrently with the PCIe leg; align it with
            // the engine's queue so it cannot run ahead of its transfer.
            let shadow_deps: Vec<OpId> = xfer.last_op().into_iter().collect();
            // Chunk-level bounded retry: a transient PCIe fault re-issues
            // only this chunk's copy (after backoff), not the stream.
            let copy = gpu
                .copy_h2d_retrying(
                    &mut sim,
                    &mut xfer,
                    &format!("h2d s chunk{k}"),
                    bytes,
                    kind,
                    &retry,
                )?
                .op;
            let shadow = tasks::dma_host_traffic(
                &mut sim,
                &host,
                bytes,
                self.config.probe_socket,
                cfg.device.pcie_bandwidth,
                &shadow_deps,
            );
            let copy_fence = sim.op(hcj_sim::Op::latency(hcj_sim::SimTime::ZERO)
                .label(format!("h2d-fence{k}"))
                .after(copy)
                .after(shadow));
            copy_done.push(copy_fence);

            // -- join chunk k against R (functional: partition the chunk,
            // then join co-partitions).
            let matches_before = sink.matches();
            // Every chunk replays R's early-stop decisions (inert without
            // fusion) so its co-partitions line up with R's.
            let s_out = partitioner.partition_following(chunk, &r_out.refine_plan);
            let mut cost =
                join_all_copartitions(cfg, &r_out.partitioned, &s_out.partitioned, &mut sink);
            for p in &s_out.passes {
                cost += p.cost;
            }
            cost +=
                late_materialization_cost(sink.matches() - matches_before, r.payload_width, true);
            cost +=
                late_materialization_cost(sink.matches() - matches_before, s.payload_width, true);
            exec.wait_op(copy_fence);
            let join_shape = cfg.join_launch_shape(crate::join::live_copartitions(
                &r_out.partitioned,
                &s_out.partitioned,
            ));
            let join = gpu
                .kernel_costed_retrying(
                    &mut sim,
                    &mut exec,
                    &format!("join chunk{k}"),
                    cost.time(&gpu.spec),
                    &cost,
                    join_shape,
                    &retry,
                )?
                .op;
            join_done.push(join);

            // -- result drain (materialization only): D2H of this chunk's
            // rows, double-buffered on the output side.
            if cfg.output == OutputMode::Materialize {
                let out_bytes = (sink.matches() - matches_before) * ROW_BYTES;
                drain.wait_op(join);
                if drain_done.len() >= nbuf {
                    // Output buffer reuse: join k could only fill a buffer
                    // whose previous drain completed; order explicitly.
                    drain.wait_op(drain_done[drain_done.len() - nbuf]);
                }
                let d = gpu
                    .copy_d2h_retrying(
                        &mut sim,
                        &mut drain,
                        &format!("d2h rows chunk{k}"),
                        out_bytes,
                        kind,
                        &retry,
                    )?
                    .op;
                drain_done.push(d);
            }
        }
        // Account the output sink's device-side traffic on the final join
        // op's stream position (spread across chunks in reality; the total
        // is what matters for the timeline's last kernel).
        let sink_cost = sink.cost();
        if sink_cost != hcj_gpu::KernelCost::ZERO {
            gpu.kernel_retrying(&mut sim, &mut exec, "join output-flush", &sink_cost, &retry)?;
        }

        let schedule = sim.run();
        let faults = gpu.fault_log(&schedule);
        let counters = gpu.counters();
        let check = sink.check();
        let rows = match cfg.output {
            OutputMode::Materialize => Some(sink.into_rows()),
            OutputMode::Aggregate => None,
        };
        Ok(JoinOutcome::new(check, rows, schedule, (r.len() + s.len()) as u64)
            .with_faults(faults)
            .with_counters(counters))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcj_gpu::DeviceSpec;
    use hcj_workload::generate::canonical_pair;
    use hcj_workload::oracle::{assert_join_matches, JoinCheck};

    fn cfg(bits: u32, tuples: usize) -> GpuJoinConfig {
        GpuJoinConfig::paper_default(DeviceSpec::gtx1080())
            .with_radix_bits(bits)
            .with_tuned_buckets(tuples)
    }

    #[test]
    fn streamed_join_matches_oracle() {
        let (r, s) = canonical_pair(8192, 65_536, 41);
        let join = StreamedProbeJoin::new(StreamedProbeConfig::paper_default(cfg(8, 8192)));
        let out = join.execute(&r, &s).unwrap();
        assert_eq!(out.check, JoinCheck::compute(&r, &s));
        // 16 chunks of half the build size.
        assert_eq!(out.tuples_in, 8192 + 65_536);
    }

    #[test]
    fn materialized_stream_matches_oracle() {
        let (r, s) = canonical_pair(4096, 16_384, 42);
        let mut c =
            StreamedProbeConfig::paper_default(cfg(6, 4096).with_output(OutputMode::Materialize));
        c.chunk_tuples = Some(2048);
        let out = StreamedProbeJoin::new(c).execute(&r, &s).unwrap();
        assert_join_matches(&r, &s, out.rows.as_ref().unwrap());
    }

    #[test]
    fn fused_streamed_join_matches_oracle_and_unfused() {
        // Every S chunk must replay R's early-stop decisions; chunks
        // small enough to have finalized on their own still reach R's
        // depth, and vice versa.
        let (r, s) = canonical_pair(50_000, 400_000, 47);
        let unfused = StreamedProbeJoin::new(StreamedProbeConfig::paper_default(cfg(12, 50_000)))
            .execute(&r, &s)
            .unwrap();
        let fused = StreamedProbeJoin::new(StreamedProbeConfig::paper_default(
            cfg(12, 50_000).with_fused_refinement(true),
        ))
        .execute(&r, &s)
        .unwrap();
        assert_eq!(fused.check, JoinCheck::compute(&r, &s));
        assert_eq!(fused.check, unfused.check);
        assert!(fused.total_seconds() <= unfused.total_seconds());
    }

    #[test]
    fn transfers_overlap_execution() {
        let (r, s) = canonical_pair(16_384, 262_144, 43);
        let join = StreamedProbeJoin::new(StreamedProbeConfig::paper_default(cfg(8, 16_384)));
        let out = join.execute(&r, &s).unwrap();
        let overlap = out.schedule.overlap_time(
            |sp| sp.label.starts_with("join chunk"),
            |sp| sp.label.starts_with("h2d s chunk"),
        );
        let join_total = out.schedule.total_time_labeled("join chunk");
        assert!(
            overlap.as_secs_f64() > 0.5 * join_total.as_secs_f64(),
            "overlap {} of join time {}",
            overlap,
            join_total
        );
    }

    #[test]
    fn throughput_approaches_pcie_for_large_probes() {
        // 1M build, 16M probe: S transfer dominates; the total throughput
        // should exceed half of the PCIe-bound ceiling
        // (pcie_bw / 8 bytes-per-tuple counts only S; the metric counts
        // R+S over the same time, so the ceiling is slightly above S/time).
        let (r, s) = canonical_pair(1 << 20, 16 << 20, 44);
        let join = StreamedProbeJoin::new(StreamedProbeConfig::paper_default(cfg(12, 1 << 20)));
        let out = join.execute(&r, &s).unwrap();
        let pcie_ceiling = 12.0e9 / 8.0; // tuples of S per second
        let tput = out.throughput_tuples_per_s();
        assert!(tput > 0.5 * pcie_ceiling, "tput = {tput:.3e} vs ceiling {pcie_ceiling:.3e}");
        assert!(tput < 2.0 * pcie_ceiling, "tput = {tput:.3e} cannot beat PCIe by 2x");
    }

    #[test]
    fn build_too_large_for_device_errors() {
        let device = DeviceSpec::gtx1080().scaled_capacity(1 << 20); // 8 KB
        let config =
            GpuJoinConfig::paper_default(device).with_radix_bits(4).with_tuned_buckets(4096);
        let (r, s) = canonical_pair(4096, 8192, 45);
        let join = StreamedProbeJoin::new(StreamedProbeConfig::paper_default(config));
        assert!(join.execute(&r, &s).is_err());
    }
}
