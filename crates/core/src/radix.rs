//! Radix arithmetic and multi-pass planning.
//!
//! Radix partitioning assigns tuple `t` to partition `t.key & (2^B - 1)`,
//! where `B` is the total number of radix bits. A single pass with fanout
//! `2^B` would blow the shared-memory budget (each in-flight partition
//! needs metadata and shuffle space in shared memory, §III-A), so the bits
//! are split across passes: pass *i* refines on bits
//! `[done_i, done_i + b_i)`, exactly like the TLB-bounded multi-pass radix
//! join on CPUs (Boncz et al.).

/// The bit range one partitioning pass refines on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PassBits {
    /// Bits already consumed by earlier passes (shift amount).
    pub shift: u32,
    /// Bits this pass consumes (fanout = `2^bits`).
    pub bits: u32,
}

impl PassBits {
    /// Fanout of this pass.
    pub fn fanout(&self) -> u32 {
        1 << self.bits
    }

    /// The local partition index of `key` within its parent partition.
    pub fn local_index(&self, key: u32) -> u32 {
        (key >> self.shift) & (self.fanout() - 1)
    }

    /// The global partition index after this pass, given the parent's
    /// global index (which encodes the low `shift` bits).
    pub fn global_index(&self, parent: u32, key: u32) -> u32 {
        parent | (self.local_index(key) << self.shift)
    }
}

/// A multi-pass plan consuming `total_bits` in passes of at most
/// `max_bits_per_pass`.
///
/// ```
/// use hcj_core::radix::PassPlan;
///
/// // The paper's 2^15 partitions under an 8-bit-per-pass fanout limit.
/// let plan = PassPlan::new(15, 8);
/// assert_eq!(plan.num_passes(), 2);
/// assert_eq!(plan.fanout(), 1 << 15);
/// // Pass-local indices compose to the final radix partition.
/// let key = 0xDEAD_BEEFu32;
/// let mut global = 0;
/// for pass in plan.passes() {
///     global = pass.global_index(global, key);
/// }
/// assert_eq!(global, plan.partition_of(key));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PassPlan {
    passes: Vec<PassBits>,
    total_bits: u32,
}

impl PassPlan {
    /// Split `total_bits` as evenly as possible into
    /// `ceil(total / max_per_pass)` passes (even splits keep every pass
    /// under the shared-memory fanout limit with headroom).
    pub fn new(total_bits: u32, max_bits_per_pass: u32) -> Self {
        assert!(total_bits <= 27, "2^{total_bits} partitions is beyond any sane configuration");
        assert!(max_bits_per_pass >= 1, "need at least one bit per pass");
        let n_passes = total_bits.div_ceil(max_bits_per_pass).max(1);
        let mut passes = Vec::with_capacity(n_passes as usize);
        let mut remaining = total_bits;
        let mut shift = 0;
        for i in 0..n_passes {
            let left = n_passes - i;
            let bits = remaining.div_ceil(left);
            passes.push(PassBits { shift, bits });
            shift += bits;
            remaining -= bits;
        }
        PassPlan { passes, total_bits }
    }

    pub fn passes(&self) -> &[PassBits] {
        &self.passes
    }

    pub fn num_passes(&self) -> usize {
        self.passes.len()
    }

    pub fn total_bits(&self) -> u32 {
        self.total_bits
    }

    /// Total number of final partitions.
    pub fn fanout(&self) -> u32 {
        1 << self.total_bits
    }

    /// Final partition of `key`.
    pub fn partition_of(&self, key: u32) -> u32 {
        key & (self.fanout() - 1)
    }
}

/// Radix bits needed so that `tuples / 2^bits <= target_partition_size`
/// (expected size under a uniform distribution).
pub fn bits_for_partition_size(tuples: usize, target_partition_size: usize) -> u32 {
    assert!(target_partition_size > 0);
    let mut bits = 0u32;
    while (tuples >> bits) > target_partition_size {
        bits += 1;
    }
    bits
}

/// The key bits that may still differ between two keys of the same final
/// partition, bounded by the key domain: bits `[total_bits, bits_of(max))`.
/// This is the `{indexes of bits that may differ}` set of paper Listing 1.
pub fn differing_bits(total_partition_bits: u32, max_key: u32) -> Vec<u32> {
    let high = 32 - max_key.leading_zeros(); // bits needed for the domain
    (total_partition_bits..high.max(total_partition_bits)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcj_workload::rng::{Rng, SmallRng};

    #[test]
    fn single_pass_plan() {
        let p = PassPlan::new(6, 8);
        assert_eq!(p.num_passes(), 1);
        assert_eq!(p.passes()[0], PassBits { shift: 0, bits: 6 });
        assert_eq!(p.fanout(), 64);
    }

    #[test]
    fn two_even_passes_for_15_bits() {
        // The paper's 2^15 partitions in two passes.
        let p = PassPlan::new(15, 8);
        assert_eq!(p.num_passes(), 2);
        assert_eq!(p.passes()[0], PassBits { shift: 0, bits: 8 });
        assert_eq!(p.passes()[1], PassBits { shift: 8, bits: 7 });
        assert_eq!(p.fanout(), 1 << 15);
    }

    #[test]
    fn zero_bits_is_one_identity_pass() {
        let p = PassPlan::new(0, 8);
        assert_eq!(p.num_passes(), 1);
        assert_eq!(p.fanout(), 1);
        assert_eq!(p.partition_of(12345), 0);
    }

    #[test]
    fn pass_indices_compose_to_final_partition() {
        let plan = PassPlan::new(11, 4);
        for key in [0u32, 1, 255, 12345, 0xFFFF_FFFF, 0xDEAD_BEEF] {
            let mut global = 0u32;
            for pass in plan.passes() {
                global = pass.global_index(global, key);
            }
            assert_eq!(global, plan.partition_of(key), "key {key:#x}");
        }
    }

    #[test]
    fn bits_for_partition_size_hits_target() {
        assert_eq!(bits_for_partition_size(2_000_000, 1024), 11);
        assert_eq!(bits_for_partition_size(1024, 1024), 0);
        assert_eq!(bits_for_partition_size(1025, 1024), 1);
        assert_eq!(bits_for_partition_size(0, 16), 0);
    }

    #[test]
    fn differing_bits_covers_domain_above_partition_bits() {
        assert_eq!(differing_bits(4, 255), vec![4, 5, 6, 7]);
        assert_eq!(differing_bits(8, 255), Vec::<u32>::new());
        assert_eq!(differing_bits(0, 1), vec![0]);
        // 2M keys need 21 bits; with 15 partition bits, 6 bits can differ.
        assert_eq!(differing_bits(15, 2_000_000).len(), 6);
    }

    #[test]
    fn composition_matches_direct_partition_randomized() {
        let mut rng = SmallRng::seed_from_u64(0x5AD1);
        for total in 1u32..16 {
            for per_pass in 1u32..8 {
                let plan = PassPlan::new(total, per_pass);
                for _ in 0..8 {
                    let key = rng.next_u64() as u32;
                    let mut global = 0u32;
                    for pass in plan.passes() {
                        global = pass.global_index(global, key);
                    }
                    assert_eq!(global, plan.partition_of(key), "key {key:#x} {total}/{per_pass}");
                }
            }
        }
    }

    #[test]
    fn pass_bits_sum_to_total() {
        for total in 0u32..20 {
            for per_pass in 1u32..9 {
                let plan = PassPlan::new(total, per_pass);
                let sum: u32 = plan.passes().iter().map(|p| p.bits).sum();
                assert_eq!(sum, total, "{total}/{per_pass}");
                for p in plan.passes() {
                    assert!(p.bits <= per_pass);
                }
            }
        }
    }

    #[test]
    fn bits_for_size_is_minimal() {
        let mut rng = SmallRng::seed_from_u64(0xB175);
        for case in 0..256 {
            let tuples = rng.gen_range_u64(1, 4_999_999) as usize;
            let target = rng.gen_range_u64(1, 9_999) as usize;
            let bits = bits_for_partition_size(tuples, target);
            assert!((tuples >> bits) <= target, "case {case}: {tuples}/{target}");
            if bits > 0 {
                assert!((tuples >> (bits - 1)) > target, "case {case}: {bits} not minimal");
            }
        }
    }
}
