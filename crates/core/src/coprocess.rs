//! Out-of-GPU strategy 2: CPU–GPU co-processing (paper §IV-B–§IV-D,
//! Fig. 3; evaluated in Figs. 12, 13, 16, 18, 20).
//!
//! Neither relation fits in device memory, so a host-side radix
//! partitioning level is added: both relations are co-partitioned on the
//! CPU (16-way by default, paper §V-C) into pinned memory; working sets of
//! R partitions that fit the device budget are chosen (knapsack first,
//! greedy rest — §IV-D), and for each working set the matching S
//! partitions stream through the GPU where the in-GPU partitioned join of
//! §III finishes the job. CPU partitioning, PCIe transfers and GPU joins
//! all overlap; with enough partitioning threads the pipeline is
//! PCIe-bound end to end.
//!
//! NUMA handling (§IV-B): data homed on the far socket is staged into
//! near-socket pinned buffers by CPU threads before the DMA engine touches
//! it; the `numa_staging: false` ablation reads the far socket directly
//! across QPI and collides with partitioning coherence traffic (Fig. 16).
//!
//! Recovery is partition-granular: each working set's transfers and joins
//! are independently retried ops, so a transient fault in working set `w`
//! re-issues only the faulted op (after backoff) — working sets `0..w`
//! are checkpointed by construction and their charged cost is never paid
//! twice. Device-lost aborts with a typed error; the facade then falls
//! back to the CPU baseline.

use hcj_gpu::{JoinError, RetryPolicy, TransferKind};
use hcj_host::{tasks, CpuTaskKind, HostMachine, HostSpec, Socket};
use hcj_sim::{Op, OpId, Sim, SimTime};
use hcj_workload::{Relation, Tuple};

use crate::config::{GpuJoinConfig, OutputMode};
use crate::join::join_all_copartitions;
use crate::outcome::JoinOutcome;
use crate::output::{late_materialization_cost, ROW_BYTES};
use crate::packing::{naive_working_sets, pack_working_sets, PartitionSize};
use crate::partition::GpuPartitioner;

/// Configuration of the co-processing strategy.
#[derive(Clone, Debug)]
pub struct CoProcessingConfig {
    /// The in-GPU join configuration; `join.radix_bits` is the *total*
    /// partitioning depth including the CPU level.
    pub join: GpuJoinConfig,
    pub host: HostSpec,
    /// CPU partitioning threads (paper default: 16; Fig. 13 sweeps this).
    pub cpu_threads: u32,
    /// CPU-level radix bits (paper: 4 → 16-way).
    pub cpu_radix_bits: u32,
    /// Probe-relation chunk size in tuples; `None` = device memory / 16.
    pub s_chunk_tuples: Option<usize>,
    /// Stage far-socket data into near-socket pinned memory before DMA
    /// (paper's choice). `false` = the Fig. 16 "direct copy" ablation.
    pub numa_staging: bool,
    /// Fraction of device memory granted to the R working set.
    pub gpu_budget_fraction: f64,
    /// Device bytes a partition needs per input byte while being joined
    /// (data + sub-partition pools + padding, §IV-D).
    pub padding_factor: f64,
    /// Use non-temporal stores in CPU partitioning (paper's choice).
    pub non_temporal: bool,
    /// Working-set packing policy (paper §IV-D); `Naive` is the ablation.
    pub packing: PackingPolicy,
}

/// How partitions are grouped into working sets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PackingPolicy {
    /// Knapsack first set, greedy rest, oversize rule (the paper's).
    Knapsack,
    /// First-fit in index order, ignoring skew (the strawman).
    Naive,
}

impl CoProcessingConfig {
    /// The configuration of the paper's §V-C experiments: 16 threads,
    /// 16-way CPU partitioning, non-temporal stores, NUMA staging.
    pub fn paper_default(join: GpuJoinConfig) -> Self {
        CoProcessingConfig {
            join,
            host: HostSpec::dual_xeon_e5_2650l_v3(),
            cpu_threads: 16,
            cpu_radix_bits: 4,
            s_chunk_tuples: None,
            numa_staging: true,
            gpu_budget_fraction: 0.5,
            padding_factor: 3.0,
            non_temporal: true,
            packing: PackingPolicy::Knapsack,
        }
    }

    pub fn with_threads(mut self, threads: u32) -> Self {
        self.cpu_threads = threads;
        self
    }

    pub fn with_staging(mut self, staging: bool) -> Self {
        self.numa_staging = staging;
        self
    }

    pub fn with_packing(mut self, packing: PackingPolicy) -> Self {
        self.packing = packing;
        self
    }

    pub fn with_non_temporal(mut self, nt: bool) -> Self {
        self.non_temporal = nt;
        self
    }

    /// Pick the partitioning thread count automatically with the paper's
    /// rule (§IV-B): the most threads that still leave the near socket
    /// enough DRAM bandwidth for transfers at full PCIe rate. The paper
    /// configures this statically and leaves dynamic adjustment as future
    /// work; this implements the static rule from the machine model.
    pub fn with_auto_threads(mut self) -> Self {
        self.cpu_threads = self.host.recommended_partition_threads(self.join.device.pcie_bandwidth);
        self
    }
}

/// The CPU–GPU co-processing join.
pub struct CoProcessingJoin {
    pub config: CoProcessingConfig,
}

impl CoProcessingJoin {
    pub fn new(config: CoProcessingConfig) -> Self {
        config.join.validate().expect("join configuration exceeds the device's shared memory");
        assert!(
            config.cpu_radix_bits < config.join.radix_bits,
            "the CPU level must leave bits for GPU sub-partitioning"
        );
        assert!(config.cpu_threads >= 1);
        assert!(
            (0.0..1.0).contains(&config.gpu_budget_fraction) && config.gpu_budget_fraction > 0.0
        );
        CoProcessingJoin { config }
    }

    /// Execute with both relations in host memory.
    pub fn execute(&self, r: &Relation, s: &Relation) -> Result<JoinOutcome, JoinError> {
        let cfg = &self.config;
        let jcfg = &cfg.join;
        let device = &jcfg.device;

        // ---- functional CPU partitioning ----
        // Possibly deepen the CPU level until every partition fits the
        // device budget (paper §IV-B: oversized co-partitions "are further
        // partitioned"). Mono-key partitions cannot shrink; their padded
        // size is clamped and the GPU side degrades gracefully.
        let budget = (device.device_mem_bytes as f64 * cfg.gpu_budget_fraction) as u64;
        let mut cpu_bits = cfg.cpu_radix_bits;
        let max_cpu_bits = (jcfg.radix_bits - 1).min(cfg.cpu_radix_bits + 8);
        let r_parts = loop {
            let parts = cpu_radix_partition(r, cpu_bits);
            let oversized =
                parts.iter().any(|p| (p.bytes() as f64 * cfg.padding_factor) as u64 > budget);
            if !oversized || cpu_bits >= max_cpu_bits {
                break parts;
            }
            cpu_bits += 1;
        };
        // CPU radix passes needed at this fanout (TLB-bounded fanout per
        // pass, §II-B).
        let tlb_bits = 31 - cfg.host.tlb_entries.leading_zeros();
        let cpu_passes = cpu_bits.div_ceil(tlb_bits).max(1) as u64;

        // ---- working-set packing (§IV-D) ----
        let sizes: Vec<PartitionSize> = r_parts
            .iter()
            .enumerate()
            .map(|(id, part)| PartitionSize {
                id,
                tuples: part.len() as u64,
                padded_bytes: ((part.bytes() as f64 * cfg.padding_factor) as u64).min(budget),
            })
            .collect();
        let working_sets = match cfg.packing {
            PackingPolicy::Knapsack => pack_working_sets(&sizes, budget, budget / 4),
            PackingPolicy::Naive => naive_working_sets(&sizes, budget),
        };

        // ---- simulation setup ----
        let mut sim = Sim::new();
        let gpu = jcfg.build_gpu(&mut sim);
        let retry = RetryPolicy::default();
        let host = HostMachine::new(&mut sim, cfg.host.clone());
        let pool = host.thread_pool(&mut sim, "partition-threads", cfg.cpu_threads);

        // Chunks as large as the remaining device memory allows (paper:
        // "chunks that can be streamed through the remaining GPU memory"),
        // but with at least ~8 chunks so the pipeline has stages to
        // overlap. Too-small chunks re-stage the working set's R
        // co-partitions from device memory once per chunk and turn the
        // pipeline GPU-bound; too-few chunks leave nothing to pipeline.
        let chunk_tuples = cfg.s_chunk_tuples.unwrap_or_else(|| {
            // Budget arithmetic: working set 1/2 + two chunk buffers 2/6 +
            // output buffers 1/8 < 1 device.
            let cap = (device.device_mem_bytes / 6) / 8;
            let floor = (device.device_mem_bytes / 16) / 8;
            ((s.len() as u64 / 8).clamp(floor.min(cap), cap) as usize).max(1)
        });
        let chunk_bytes = (chunk_tuples * 8) as u64;

        // Device reservations: R working-set budget + double chunk input
        // buffers (+ double output buffers when materializing).
        let _ws_budget = gpu.mem.reserve(budget)?;
        let _in_buffers = gpu.mem.reserve(2 * chunk_bytes)?;
        let _out_buffers = match jcfg.output {
            OutputMode::Materialize => {
                // Double output buffers, bounded by a slice of the device.
                let want = 2 * u64::from(jcfg.join_block_threads) * 64 * ROW_BYTES;
                Some(gpu.mem.reserve(want.min(device.device_mem_bytes / 8))?)
            }
            OutputMode::Aggregate => None,
        };

        // ---- sim: CPU partitioning of R ----
        // R is split into thread-count chunks, each partitioned by one
        // local thread; chunks alternate home sockets.
        let r_chunk_count = cfg.cpu_threads as usize;
        let r_chunk_bytes = r.bytes().div_ceil(r_chunk_count as u64);
        let mut r_cpu_ops = Vec::new();
        for i in 0..r_chunk_count {
            let socket = if i % 2 == 0 { Socket::Near } else { Socket::Far };
            r_cpu_ops.push(tasks::cpu_task(
                &mut sim,
                &host,
                pool,
                CpuTaskKind::Partition { non_temporal: cfg.non_temporal },
                r_chunk_bytes * cpu_passes,
                socket,
                &[],
            ));
        }
        let r_ready = sim
            .op(Op::latency(SimTime::ZERO).label("cpu r partitioned").after_all(r_cpu_ops.clone()));

        // ---- functional chunking + per-chunk CPU partitions of S ----
        let s_chunks = s.chunks(chunk_tuples);
        let s_chunk_parts: Vec<Vec<Relation>> =
            s_chunks.iter().map(|c| cpu_radix_partition(c, cpu_bits)).collect();

        // ---- the pipeline ----
        // R working-set parts and S chunk parts are sub-partitioned in
        // different pipeline stages, so there is no build-side plan to
        // replay here: fused refinement stays off for the GPU sub-passes
        // (both sides must always reach the full sub-fanout).
        let sub_cfg = GpuJoinConfig {
            radix_bits: jcfg.radix_bits - cpu_bits,
            fuse_small_partitions: false,
            ..jcfg.clone()
        };
        let sub_partitioner = GpuPartitioner::new(&sub_cfg);
        let mut exec = gpu.stream();
        let mut xfer = gpu.stream();
        let mut drain = gpu.stream();
        let mut sink = jcfg.make_sink();
        let mut s_cpu_done: Vec<Option<OpId>> = vec![None; s_chunks.len()];
        let mut prev_ws_last_join: Option<OpId> = None;
        let mut drain_ops: Vec<OpId> = Vec::new();

        for (w, ws) in working_sets.sets.iter().enumerate() {
            // -- transfer the working set's R partitions (pinned) --
            let r_ws_bytes: u64 = ws.iter().map(|&p| r_parts[p].bytes()).sum();
            let mut deps = vec![r_ready];
            if let Some(j) = prev_ws_last_join {
                deps.push(j); // the budget region is reused across sets
            }
            // Half of the partitioned data lives on the far socket. With
            // staging, CPU threads prefetch this working set's far half
            // into near pinned buffers as soon as R is partitioned — the
            // "CPU phase of the pipeline after the first working set"
            // (§IV-B) — so the stages of later sets are long done before
            // their transfers begin.
            let far_half = if cfg.numa_staging {
                let far = r_ws_bytes / 2;
                let tasks_n = 2u64.min(u64::from(cfg.cpu_threads)).max(1);
                let stages: Vec<OpId> = (0..tasks_n)
                    .map(|_| {
                        tasks::cpu_task(
                            &mut sim,
                            &host,
                            pool,
                            CpuTaskKind::StagingCopy,
                            far.div_ceil(tasks_n),
                            Socket::Far,
                            &[r_ready],
                        )
                    })
                    .collect();
                deps.extend(stages);
                0
            } else {
                r_ws_bytes / 2
            };
            let near_half = r_ws_bytes - far_half;
            let r_xfer = self.transfer_h2d(
                &mut sim,
                &gpu,
                &mut xfer,
                &host,
                pool,
                format!("h2d r ws{w}"),
                near_half,
                far_half,
                &deps,
                &retry,
            )?;

            // -- GPU sub-partitioning of the working set's R side --
            let mut r_sub = Vec::with_capacity(ws.len());
            let mut part_seconds = 0.0;
            let mut part_cost = hcj_gpu::KernelCost::ZERO;
            for &p in ws {
                let out = sub_partitioner.partition_with_base(&r_parts[p], cpu_bits);
                part_seconds += out.total_seconds();
                for pass in &out.passes {
                    part_cost += pass.cost;
                }
                r_sub.push(out.partitioned);
            }
            exec.wait_op(r_xfer);
            let ws_tuples: usize = ws.iter().map(|&p| r_parts[p].len()).sum();
            gpu.kernel_costed_retrying(
                &mut sim,
                &mut exec,
                &format!("part r ws{w}"),
                part_seconds,
                &part_cost,
                sub_cfg.partition_launch_shape(ws_tuples),
                &retry,
            )?;

            // -- stream S chunk by chunk --
            let mut join_ops: Vec<OpId> = Vec::with_capacity(s_chunks.len());
            for (c, chunk_parts) in s_chunk_parts.iter().enumerate() {
                // During the first working set the CPU partitions each S
                // chunk just in time (overlapped with transfers); later
                // sets reuse the pinned partitions.
                if w == 0 {
                    let socket = if c % 2 == 0 { Socket::Near } else { Socket::Far };
                    let chunk_len_bytes: u64 = chunk_parts.iter().map(|p| p.bytes()).sum();
                    let mut op = tasks::cpu_task(
                        &mut sim,
                        &host,
                        pool,
                        CpuTaskKind::Partition { non_temporal: cfg.non_temporal },
                        chunk_len_bytes * cpu_passes,
                        socket,
                        &[],
                    );
                    if cfg.numa_staging {
                        // Prefetch the chunk's far-half into near pinned
                        // buffers as soon as it is partitioned.
                        let stage = tasks::cpu_task(
                            &mut sim,
                            &host,
                            pool,
                            CpuTaskKind::StagingCopy,
                            chunk_len_bytes / 2,
                            Socket::Far,
                            &[op],
                        );
                        op = sim.op(Op::latency(SimTime::ZERO)
                            .label(format!("stage s chunk{c} done"))
                            .after(op)
                            .after(stage));
                    }
                    s_cpu_done[c] = Some(op);
                }
                let s_bytes: u64 = ws.iter().map(|&p| chunk_parts[p].bytes()).sum();
                // Transfer deps: chunk partitioned; input buffer freed by
                // the join two chunks back (double buffering).
                let mut tdeps = Vec::new();
                if let Some(op) = s_cpu_done[c] {
                    tdeps.push(op);
                }
                if c >= 2 {
                    tdeps.push(join_ops[c - 2]);
                }
                let far_half = if cfg.numa_staging { 0 } else { s_bytes / 2 };
                let near_half = s_bytes - far_half;
                let s_xfer = self.transfer_h2d(
                    &mut sim,
                    &gpu,
                    &mut xfer,
                    &host,
                    pool,
                    format!("h2d s ws{w} c{c}"),
                    near_half,
                    far_half,
                    &tdeps,
                    &retry,
                )?;

                // -- GPU sub-partition + join of this chunk piece --
                let matches_before = sink.matches();
                let mut cost = hcj_gpu::KernelCost::ZERO;
                let mut sub_seconds = 0.0;
                let mut live = 0usize;
                for (i, &p) in ws.iter().enumerate() {
                    if chunk_parts[p].is_empty() {
                        continue;
                    }
                    let s_out = sub_partitioner.partition_with_base(&chunk_parts[p], cpu_bits);
                    sub_seconds += s_out.total_seconds();
                    for pass in &s_out.passes {
                        cost += pass.cost;
                    }
                    live += crate::join::live_copartitions(&r_sub[i], &s_out.partitioned);
                    cost += join_all_copartitions(jcfg, &r_sub[i], &s_out.partitioned, &mut sink);
                }
                let new_matches = sink.matches() - matches_before;
                cost += late_materialization_cost(new_matches, r.payload_width, true);
                cost += late_materialization_cost(new_matches, s.payload_width, true);
                exec.wait_op(s_xfer);
                let join = gpu
                    .kernel_costed_retrying(
                        &mut sim,
                        &mut exec,
                        &format!("join ws{w} c{c}"),
                        sub_seconds + cost.time(device),
                        &cost,
                        jcfg.join_launch_shape(live),
                        &retry,
                    )?
                    .op;
                join_ops.push(join);

                // -- drain results (materialization) --
                if jcfg.output == OutputMode::Materialize && new_matches > 0 {
                    drain.wait_op(join);
                    if drain_ops.len() >= 2 {
                        drain.wait_op(drain_ops[drain_ops.len() - 2]);
                    }
                    let d = gpu
                        .copy_d2h_retrying(
                            &mut sim,
                            &mut drain,
                            &format!("d2h ws{w} c{c}"),
                            new_matches * ROW_BYTES,
                            TransferKind::Pinned,
                            &retry,
                        )?
                        .op;
                    drain_ops.push(d);
                }
            }
            prev_ws_last_join = join_ops.last().copied().or(prev_ws_last_join);
        }

        // Account the output sink's device-side traffic.
        let sink_cost = sink.cost();
        if sink_cost != hcj_gpu::KernelCost::ZERO {
            gpu.kernel_retrying(&mut sim, &mut exec, "join output-flush", &sink_cost, &retry)?;
        }

        let schedule = sim.run();
        let faults = gpu.fault_log(&schedule);
        let counters = gpu.counters();
        let check = sink.check();
        let rows = match jcfg.output {
            OutputMode::Materialize => Some(sink.into_rows()),
            OutputMode::Aggregate => None,
        };
        Ok(JoinOutcome::new(check, rows, schedule, (r.len() + s.len()) as u64)
            .with_faults(faults)
            .with_counters(counters))
    }

    /// One host→device transfer: the PCIe copy and its host-side legs
    /// (DRAM reads; the QPI crossing for far-socket data) run
    /// concurrently — they are one transfer; the returned fence completes
    /// when all legs do. The far-socket span is throttled to the QPI
    /// peer-read rate *while it is being shipped* (legs are sequential
    /// within the buffer), which is why direct copies lose to staging
    /// (Fig. 16). With staging enabled the callers pass `far_bytes = 0`:
    /// the data was prefetched into near pinned buffers beforehand.
    #[allow(clippy::too_many_arguments)]
    fn transfer_h2d(
        &self,
        sim: &mut Sim,
        gpu: &hcj_gpu::Gpu,
        xfer: &mut hcj_gpu::Stream,
        host: &HostMachine,
        _pool: hcj_host::numa::ThreadPool,
        label: String,
        near_bytes: u64,
        far_bytes: u64,
        deps: &[OpId],
        retry: &RetryPolicy,
    ) -> Result<OpId, JoinError> {
        let pcie = gpu.spec.pcie_bandwidth;
        // Shadows align with the copy: they also wait for whatever the
        // copy engine was doing before this transfer.
        let mut shadow_deps: Vec<OpId> = deps.to_vec();
        if let Some(prev) = xfer.last_op() {
            shadow_deps.push(prev);
        }
        for d in deps {
            xfer.wait_op(*d);
        }
        let mut legs: Vec<OpId> = Vec::new();
        if near_bytes > 0 {
            let copy_near = gpu
                .copy_h2d_retrying(
                    sim,
                    xfer,
                    &format!("{label} near"),
                    near_bytes,
                    TransferKind::Pinned,
                    retry,
                )?
                .op;
            legs.push(copy_near);
            legs.push(tasks::dma_host_traffic(
                sim,
                host,
                near_bytes,
                Socket::Near,
                pcie,
                &shadow_deps,
            ));
        }
        if far_bytes > 0 {
            // Inflate the on-engine work so the engine runs this span at
            // `pcie * qpi_dma_efficiency`.
            let inflated = (far_bytes as f64 / host.spec.qpi_dma_efficiency) as u64;
            let copy_far = gpu
                .copy_h2d_retrying(
                    sim,
                    xfer,
                    &format!("{label} far"),
                    inflated,
                    TransferKind::Pinned,
                    retry,
                )?
                .op;
            legs.push(copy_far);
            legs.push(tasks::dma_host_traffic(
                sim,
                host,
                far_bytes,
                Socket::Far,
                pcie,
                &shadow_deps,
            ));
        }
        let fence = sim.op(Op::latency(SimTime::ZERO).label("h2d-fence").after_all(legs));
        // Later stream work must respect the full transfer, not just the
        // copy legs.
        xfer.wait_op(fence);
        Ok(fence)
    }
}

/// Functional CPU radix partitioning on the low `bits` of the key.
pub fn cpu_radix_partition(rel: &Relation, bits: u32) -> Vec<Relation> {
    let fanout = 1usize << bits;
    let mask = (fanout - 1) as u32;
    let mut out = vec![Relation::default(); fanout];
    for t in rel.iter() {
        out[(t.key & mask) as usize].push(Tuple { key: t.key, payload: t.payload });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcj_gpu::DeviceSpec;
    use hcj_workload::generate::canonical_pair;
    use hcj_workload::oracle::{assert_join_matches, JoinCheck};
    use hcj_workload::RelationSpec;

    fn small_device() -> DeviceSpec {
        // 8 MB device: forces out-of-GPU behaviour with test-sized data.
        DeviceSpec::gtx1080().scaled_capacity(1 << 10)
    }

    fn cfg(tuples: usize) -> CoProcessingConfig {
        let join = GpuJoinConfig::paper_default(small_device())
            .with_radix_bits(12)
            .with_tuned_buckets(tuples / 16);
        CoProcessingConfig::paper_default(join)
    }

    #[test]
    fn cpu_radix_partition_is_correct() {
        let rel = RelationSpec::unique(1000, 51).generate();
        let parts = cpu_radix_partition(&rel, 4);
        assert_eq!(parts.len(), 16);
        assert_eq!(parts.iter().map(Relation::len).sum::<usize>(), 1000);
        for (p, part) in parts.iter().enumerate() {
            assert!(part.keys.iter().all(|&k| (k & 15) as usize == p));
        }
    }

    #[test]
    fn coprocessing_matches_oracle() {
        let (r, s) = canonical_pair(100_000, 200_000, 52);
        let join = CoProcessingJoin::new(cfg(100_000));
        let out = join.execute(&r, &s).unwrap();
        assert_eq!(out.check, JoinCheck::compute(&r, &s));
        assert_eq!(out.tuples_in, 300_000);
    }

    #[test]
    fn materialized_coprocessing_matches_oracle() {
        let (r, s) = canonical_pair(30_000, 60_000, 53);
        let mut c = cfg(30_000);
        c.join = c.join.with_output(OutputMode::Materialize);
        let out = CoProcessingJoin::new(c).execute(&r, &s).unwrap();
        assert_join_matches(&r, &s, out.rows.as_ref().unwrap());
    }

    #[test]
    fn skewed_input_still_joins_correctly() {
        let r = RelationSpec::zipf(80_000, 1 << 16, 0.9, 54).generate();
        let s = RelationSpec::zipf(160_000, 1 << 16, 0.9, 55).generate();
        let join = CoProcessingJoin::new(cfg(80_000));
        let out = join.execute(&r, &s).unwrap();
        assert_eq!(out.check, JoinCheck::compute(&r, &s));
    }

    #[test]
    fn pipeline_overlaps_cpu_partitioning_with_transfers() {
        let (r, s) = canonical_pair(200_000, 800_000, 56);
        let join = CoProcessingJoin::new(cfg(200_000));
        let out = join.execute(&r, &s).unwrap();
        let overlap = out.schedule.overlap_time(
            |sp| sp.label.starts_with("cpu-Partition"),
            |sp| sp.label.starts_with("h2d"),
        );
        assert!(
            overlap.as_nanos() > 0,
            "CPU partitioning must overlap transfers\n{}",
            out.schedule.render_gantt(80)
        );
    }

    #[test]
    fn more_threads_do_not_slow_the_join() {
        let (r, s) = canonical_pair(150_000, 300_000, 57);
        let slow = CoProcessingJoin::new(cfg(150_000).with_threads(2)).execute(&r, &s).unwrap();
        let fast = CoProcessingJoin::new(cfg(150_000).with_threads(16)).execute(&r, &s).unwrap();
        assert_eq!(slow.check, fast.check);
        assert!(
            fast.total_seconds() <= slow.total_seconds() * 1.05,
            "16 threads {} vs 2 threads {}",
            fast.total_seconds(),
            slow.total_seconds()
        );
    }

    #[test]
    fn staging_beats_direct_copies() {
        let (r, s) = canonical_pair(400_000, 400_000, 58);
        let staged = CoProcessingJoin::new(cfg(400_000)).execute(&r, &s).unwrap();
        let direct =
            CoProcessingJoin::new(cfg(400_000).with_staging(false)).execute(&r, &s).unwrap();
        assert_eq!(staged.check, direct.check);
        assert!(
            staged.total_seconds() < direct.total_seconds(),
            "staged {} vs direct {}",
            staged.total_seconds(),
            direct.total_seconds()
        );
    }

    #[test]
    #[should_panic(expected = "CPU level must leave bits")]
    fn cpu_bits_must_leave_room() {
        let join = GpuJoinConfig::paper_default(small_device()).with_radix_bits(4);
        let mut c = CoProcessingConfig::paper_default(join);
        c.cpu_radix_bits = 4;
        let _ = CoProcessingJoin::new(c);
    }
}
