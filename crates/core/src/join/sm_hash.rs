//! The shared-memory hash join of co-partitions (paper §III-C).
//!
//! The build co-partition is staged into shared memory as a chained hash
//! table: `heads[bucket]` and `next[element]` are 16-bit offsets (the
//! partition is at most a few thousand elements, so trimming offsets to
//! 16 bits halves the table's footprint). The build is wait-free: each
//! thread atomically exchanges the bucket head with its own element's
//! offset and stores the old head as its `next` — Listing 2.
//!
//! When a (skewed) build partition exceeds the shared-memory budget, the
//! kernel degrades to hash-based *block* nested loops: the build side is
//! processed in shared-memory-sized blocks and the probe side is re-scanned
//! per block (paper §V-E) — correctness is preserved, throughput pays.

use hcj_gpu::KernelCost;
use hcj_host::Pool;

use crate::config::GpuJoinConfig;
use crate::join::bucket_hash;
use crate::join::PROBE_PAR_MIN;
use crate::output::OutputSink;

const NIL: u16 = u16::MAX;

/// Join one co-partition pair with the shared-memory hash table.
/// `shift` is the number of radix bits already equal within the partition.
pub fn sm_hash_join(
    config: &GpuJoinConfig,
    shift: u32,
    r_keys: &[u32],
    r_pays: &[u32],
    s_keys: &[u32],
    s_pays: &[u32],
    sink: &mut OutputSink,
) -> KernelCost {
    // The chain links are 16-bit and `u16::MAX` is the NIL sentinel, so a
    // build block may never exceed 65535 elements no matter how much shared
    // memory the config claims — larger blocks would silently wrap `i as
    // u16` below and drop or fabricate matches.
    let block = config.smem_elements.min(usize::from(u16::MAX));
    let buckets = config.hash_buckets;
    let mut cost = KernelCost::ZERO;
    let n_blocks = r_keys.len().div_ceil(block).max(1);
    // Oversized partitions degrade to block nested loops; each block
    // re-scans the whole probe partition.
    for blk in 0..n_blocks {
        let lo = blk * block;
        let hi = (lo + block).min(r_keys.len());
        let rk = &r_keys[lo..hi];
        let rp = &r_pays[lo..hi];
        debug_assert!(rk.len() <= usize::from(u16::MAX), "16-bit offsets require small blocks");

        // ---- build phase (Listing 2) ----
        let mut heads = vec![NIL; buckets];
        let mut next = vec![NIL; rk.len()];
        for (i, &key) in rk.iter().enumerate() {
            let h = bucket_hash(key, shift, buckets);
            // atomicExchange(&heads[h], i): wait-free front insertion.
            let old = heads[h];
            heads[h] = i as u16;
            next[i] = old;
        }
        // Staging the block into shared memory: coalesced read from the
        // bucket chain + shared-memory store of keys, payloads and links.
        cost.add_coalesced(8 * rk.len() as u64);
        cost.add_shared(10 * rk.len() as u64); // 8 B tuple + 2 B link
        cost.add_shared_atomics(rk.len() as u64);
        cost.add_instructions(6 * rk.len() as u64);
        // Fixed per-co-partition setup: zeroing the bucket heads and the
        // block's launch bookkeeping. This is what makes tiny partitions
        // underutilize the SM (the rising left side of paper Fig. 5).
        cost.add_shared(2 * buckets as u64);
        cost.add_instructions(buckets as u64 + 64);

        // ---- probe phase ----
        // Coalesced scan of the probe partition's bucket chain (re-read
        // once per build block — the nested-loop degradation).
        cost.add_coalesced(8 * s_keys.len() as u64);
        // Probe tuples are independent: split the probe side into chunks
        // executed on pool workers, each emitting into a forked sink, and
        // merge counters and sinks back in chunk order — bit-identical to
        // the serial scan for every worker count.
        let pool = Pool::current();
        let ranges = pool.chunks(s_keys.len(), PROBE_PAR_MIN);
        let mut chain_steps = 0u64;
        let mut head_reads = 0u64;
        let mut match_count = 0u64;
        let per_chunk = pool.map(&ranges, |_, range| {
            let mut local = sink.fork();
            let (mut heads_n, mut steps, mut matches) = (0u64, 0u64, 0u64);
            for j in range.clone() {
                let skey = s_keys[j];
                let h = bucket_hash(skey, shift, buckets);
                heads_n += 1;
                let mut idx = heads[h];
                while idx != NIL {
                    steps += 1;
                    let i = idx as usize;
                    if rk[i] == skey {
                        matches += 1;
                        local.emit(skey, rp[i], s_pays[j]);
                    }
                    idx = next[i];
                }
            }
            (heads_n, steps, matches, local)
        });
        for (heads_n, steps, matches, local) in per_chunk {
            head_reads += heads_n;
            chain_steps += steps;
            match_count += matches;
            sink.merge(local);
        }
        cost.add_shared(2 * head_reads); // 2 B head per probe
                                         // Chain walks diverge within the warp: each dependent step wastes
                                         // most of the warp's shared-memory bank transaction, so a step
                                         // costs a warp-wide access, not 6 B. Long chains (elements >>
                                         // buckets) are what bends hash-join throughput back down past the
                                         // paper's 1024-element sweet spot (Fig. 5).
        cost.add_shared(32 * chain_steps);
        cost.add_shared(4 * match_count); // matched payload read
        cost.add_instructions(4 * s_keys.len() as u64 + 3 * chain_steps);
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcj_gpu::DeviceSpec;
    use hcj_workload::oracle::reference_join;
    use hcj_workload::{Relation, Tuple};

    use crate::config::OutputMode;

    fn cfg() -> GpuJoinConfig {
        GpuJoinConfig::paper_default(DeviceSpec::gtx1080())
    }

    fn run(
        config: &GpuJoinConfig,
        r: &[(u32, u32)],
        s: &[(u32, u32)],
    ) -> (Vec<(u32, u32, u32)>, KernelCost) {
        let rk: Vec<u32> = r.iter().map(|t| t.0).collect();
        let rp: Vec<u32> = r.iter().map(|t| t.1).collect();
        let sk: Vec<u32> = s.iter().map(|t| t.0).collect();
        let sp: Vec<u32> = s.iter().map(|t| t.1).collect();
        let mut sink = OutputSink::new(OutputMode::Materialize, 512);
        let cost = sm_hash_join(config, 0, &rk, &rp, &sk, &sp, &mut sink);
        let mut rows = sink.into_rows();
        rows.sort_unstable();
        (rows, cost)
    }

    #[test]
    fn simple_join_finds_all_matches() {
        let r = [(1, 10), (2, 20), (3, 30)];
        let s = [(2, 200), (2, 201), (4, 400)];
        let (rows, _) = run(&cfg(), &r, &s);
        assert_eq!(rows, vec![(2, 20, 200), (2, 20, 201)]);
    }

    #[test]
    fn duplicate_build_keys_multiply() {
        let r = [(5, 1), (5, 2), (5, 3)];
        let s = [(5, 9)];
        let (rows, _) = run(&cfg(), &r, &s);
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn matches_oracle_on_random_data() {
        let r: Vec<(u32, u32)> = (0..3000u32).map(|i| (i * 7 % 601, i)).collect();
        let s: Vec<(u32, u32)> = (0..5000u32).map(|i| (i * 13 % 601, i + 1_000_000)).collect();
        let (rows, _) = run(&cfg(), &r, &s);
        let rr: Relation = r.iter().map(|&(k, p)| Tuple { key: k, payload: p }).collect();
        let ss: Relation = s.iter().map(|&(k, p)| Tuple { key: k, payload: p }).collect();
        let mut want = reference_join(&rr, &ss);
        want.sort_unstable();
        assert_eq!(rows, want);
    }

    #[test]
    fn oversized_partition_falls_back_to_block_nested_loops() {
        let mut config = cfg();
        config.smem_elements = 64; // force 4 blocks for 256 build tuples
        let r: Vec<(u32, u32)> = (0..256u32).map(|i| (i, i)).collect();
        let s: Vec<(u32, u32)> = (0..512u32).map(|i| (i % 256, i)).collect();
        let (rows, cost) = run(&config, &r, &s);
        assert_eq!(rows.len(), 512);
        // 4 blocks → probe side re-scanned 4 times.
        assert_eq!(cost.coalesced_bytes, 4 * 8 * 512 + 8 * 256);
    }

    #[test]
    fn chain_collisions_cost_shared_traffic() {
        let mut config = cfg();
        config.hash_buckets = 2; // everything collides
        let r: Vec<(u32, u32)> = (0..64u32).map(|i| (i, i)).collect();
        let s = [(63u32, 1u32)];
        let (rows, cost) = run(&config, &r, &s);
        assert_eq!(rows.len(), 1);
        // The single probe walks a ~32-element chain: shared traffic well
        // above the 2-byte head read.
        assert!(cost.shared_bytes > 64 * 10 + 100);
    }

    #[test]
    fn blocks_beyond_u16_offsets_are_split_not_wrapped() {
        // A config claiming room for >65535 elements must still cap blocks
        // at the 16-bit offset limit: element 65536 stored as `0u16` used
        // to shadow the real element 0 and corrupt the join.
        let mut config = cfg();
        config.smem_elements = 100_000;
        let n = 70_000u32;
        let r: Vec<(u32, u32)> = (0..n).map(|i| (i, i)).collect();
        // Probe keys on both sides of the 65535 boundary.
        let s: Vec<(u32, u32)> =
            [0, 1, 65_534, 65_535, 65_536, 69_999].into_iter().map(|k| (k, k + 1)).collect();
        let (rows, cost) = run(&config, &r, &s);
        let want: Vec<(u32, u32, u32)> = s.iter().map(|&(k, p)| (k, k, p)).collect();
        assert_eq!(rows, want);
        // Two build blocks → the probe side is re-scanned twice.
        assert_eq!(cost.coalesced_bytes, 2 * 8 * s.len() as u64 + 8 * u64::from(n));
    }

    #[test]
    fn empty_sides_produce_nothing() {
        let (rows, _) = run(&cfg(), &[], &[(1, 1)]);
        assert!(rows.is_empty());
        let (rows, _) = run(&cfg(), &[(1, 1)], &[]);
        assert!(rows.is_empty());
    }

    #[test]
    fn shift_aware_hashing_still_matches() {
        // Simulate a co-partition with 4 radix bits fixed: all keys share
        // the low nibble.
        let r: Vec<(u32, u32)> = (0..100u32).map(|i| ((i << 4) | 0x5, i)).collect();
        let s: Vec<(u32, u32)> = (0..100u32).map(|i| ((i << 4) | 0x5, i + 500)).collect();
        let rk: Vec<u32> = r.iter().map(|t| t.0).collect();
        let rp: Vec<u32> = r.iter().map(|t| t.1).collect();
        let sk: Vec<u32> = s.iter().map(|t| t.0).collect();
        let sp: Vec<u32> = s.iter().map(|t| t.1).collect();
        let mut sink = OutputSink::new(OutputMode::Aggregate, 512);
        let _ = sm_hash_join(&cfg(), 4, &rk, &rp, &sk, &sp, &mut sink);
        assert_eq!(sink.matches(), 100);
    }
}
