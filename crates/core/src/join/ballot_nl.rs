//! The warp-cooperative nested-loop join (paper §III-B, Listing 1).
//!
//! The build co-partition is copied contiguously into shared memory. Each
//! warp then takes 32 probe tuples (one per lane) and scans the build side
//! 32 elements at a time: every lane reads *one* build value, and the warp
//! discovers all 32×32 equalities through ballots over the key bits that
//! partitioning has not already fixed — a handful of ballot+mask
//! instructions replace 32 shared-memory reads per lane.

use hcj_gpu::warp::{ballot_match, Lanes};
use hcj_gpu::{KernelCost, WARP_SIZE};
use hcj_host::Pool;

use crate::config::GpuJoinConfig;
use crate::join::PROBE_PAR_MIN;
use crate::output::OutputSink;
use crate::radix::differing_bits;

/// Join one co-partition pair with the ballot nested loop. `shift` is the
/// number of radix bits fixed within the partition.
pub fn ballot_nl_join(
    config: &GpuJoinConfig,
    shift: u32,
    r_keys: &[u32],
    r_pays: &[u32],
    s_keys: &[u32],
    s_pays: &[u32],
    sink: &mut OutputSink,
) -> KernelCost {
    let mut cost = KernelCost::ZERO;
    if r_keys.is_empty() || s_keys.is_empty() {
        return cost;
    }
    // Bits that may differ between keys of this partition: everything the
    // partitioning did not fix, bounded by the key domain (line 6 of
    // Listing 1).
    let max_key = r_keys.iter().chain(s_keys).copied().max().unwrap_or(0);
    let bits = differing_bits(shift, max_key);

    // Build side processed in shared-memory-sized blocks (block nested
    // loops when oversized, as with the hash variant).
    let block = config.smem_elements;
    let n_blocks = r_keys.len().div_ceil(block);
    for blk in 0..n_blocks {
        let lo = blk * block;
        let hi = (lo + block).min(r_keys.len());
        let rk = &r_keys[lo..hi];
        let rp = &r_pays[lo..hi];
        // Stage the block contiguously into shared memory.
        cost.add_coalesced(8 * rk.len() as u64);
        cost.add_shared(8 * rk.len() as u64);
        // Probe scan (repeated per block).
        cost.add_coalesced(8 * s_keys.len() as u64);

        // Probe warps are independent: chunk the warp groups across pool
        // workers (chunk boundaries stay WARP_SIZE-aligned), emit into
        // forked sinks, and merge counters and sinks in chunk order —
        // bit-identical to the serial scan.
        let pool = Pool::current();
        let n_warps = s_keys.len().div_ceil(WARP_SIZE);
        let warp_ranges = pool.chunks(n_warps, PROBE_PAR_MIN.div_ceil(WARP_SIZE));
        let mut steps = 0u64;
        let mut match_count = 0u64;
        let per_chunk = pool.map(&warp_ranges, |_, wr| {
            let mut local = sink.fork();
            let (mut c_steps, mut c_matches) = (0u64, 0u64);
            for w in wr.clone() {
                let s0 = w * WARP_SIZE;
                let s_valid = (s_keys.len() - s0).min(WARP_SIZE);
                let mut s_lane: Lanes<u32> = [0; WARP_SIZE];
                s_lane[..s_valid].copy_from_slice(&s_keys[s0..s0 + s_valid]);

                for r0 in (0..rk.len()).step_by(WARP_SIZE) {
                    let r_valid = (rk.len() - r0).min(WARP_SIZE);
                    let mut r_lane: Lanes<u32> = [0; WARP_SIZE];
                    r_lane[..r_valid].copy_from_slice(&rk[r0..r0 + r_valid]);
                    let valid_mask =
                        if r_valid == WARP_SIZE { u32::MAX } else { (1u32 << r_valid) - 1 };
                    // Lines 4–9 of Listing 1, executed for real.
                    let masks = ballot_match(&r_lane, &s_lane, &bits, valid_mask);
                    c_steps += 1;
                    for (lane, &mask) in masks.iter().enumerate().take(s_valid) {
                        let mut m = mask;
                        while m != 0 {
                            let j = m.trailing_zeros() as usize;
                            m &= m - 1;
                            // Matched: fetch the build payload from shared
                            // memory and emit.
                            c_matches += 1;
                            local.emit(s_keys[s0 + lane], rp[r0 + j], s_pays[s0 + lane]);
                        }
                    }
                }
            }
            (c_steps, c_matches, local)
        });
        for (c_steps, c_matches, local) in per_chunk {
            steps += c_steps;
            match_count += c_matches;
            sink.merge(local);
        }
        // Matched payload reads.
        cost.add_shared(4 * match_count);
        // Per step: each of 32 lanes reads one 4-byte value from shared
        // memory (line 4), then |bits| ballots with a couple of mask ops
        // each (lines 6–9).
        cost.add_shared(steps * WARP_SIZE as u64 * 4);
        cost.add_instructions(steps * (bits.len() as u64 * 3 + 2) * WARP_SIZE as u64);
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcj_gpu::DeviceSpec;
    use hcj_workload::oracle::reference_join;
    use hcj_workload::{Relation, Tuple};

    use crate::config::OutputMode;

    fn cfg() -> GpuJoinConfig {
        GpuJoinConfig::paper_default(DeviceSpec::gtx1080())
    }

    fn run(
        config: &GpuJoinConfig,
        shift: u32,
        r: &[(u32, u32)],
        s: &[(u32, u32)],
    ) -> (Vec<(u32, u32, u32)>, KernelCost) {
        let rk: Vec<u32> = r.iter().map(|t| t.0).collect();
        let rp: Vec<u32> = r.iter().map(|t| t.1).collect();
        let sk: Vec<u32> = s.iter().map(|t| t.0).collect();
        let sp: Vec<u32> = s.iter().map(|t| t.1).collect();
        let mut sink = OutputSink::new(OutputMode::Materialize, 512);
        let cost = ballot_nl_join(config, shift, &rk, &rp, &sk, &sp, &mut sink);
        let mut rows = sink.into_rows();
        rows.sort_unstable();
        (rows, cost)
    }

    #[test]
    fn finds_simple_matches() {
        let r = [(1, 10), (2, 20), (3, 30)];
        let s = [(2, 200), (3, 300), (9, 900)];
        let (rows, _) = run(&cfg(), 0, &r, &s);
        assert_eq!(rows, vec![(2, 20, 200), (3, 30, 300)]);
    }

    #[test]
    fn matches_oracle_on_random_many_to_many() {
        let r: Vec<(u32, u32)> = (0..500u32).map(|i| (i * 3 % 97, i)).collect();
        let s: Vec<(u32, u32)> = (0..700u32).map(|i| (i * 5 % 97, i + 10_000)).collect();
        let (rows, _) = run(&cfg(), 0, &r, &s);
        let rr: Relation = r.iter().map(|&(k, p)| Tuple { key: k, payload: p }).collect();
        let ss: Relation = s.iter().map(|&(k, p)| Tuple { key: k, payload: p }).collect();
        let mut want = reference_join(&rr, &ss);
        want.sort_unstable();
        assert_eq!(rows, want);
    }

    #[test]
    fn handles_non_multiple_of_warp_sizes() {
        // 33 build and 65 probe tuples exercise the tail-lane masking.
        let r: Vec<(u32, u32)> = (0..33u32).map(|i| (i, i)).collect();
        let s: Vec<(u32, u32)> = (0..65u32).map(|i| (i % 33, i)).collect();
        let (rows, _) = run(&cfg(), 0, &r, &s);
        assert_eq!(rows.len(), 65);
    }

    #[test]
    fn shift_skips_partition_bits_correctly() {
        // All keys share the low byte (shift = 8); high bits carry the
        // identity.
        let r: Vec<(u32, u32)> = (0..50u32).map(|i| ((i << 8) | 0xAB, i)).collect();
        let s: Vec<(u32, u32)> = (0..50u32).map(|i| ((i << 8) | 0xAB, i + 99)).collect();
        let (rows, _) = run(&cfg(), 8, &r, &s);
        assert_eq!(rows.len(), 50);
        for (i, &(k, rp, sp)) in rows.iter().enumerate() {
            assert_eq!(k, ((i as u32) << 8) | 0xAB);
            assert_eq!(rp + 99, sp);
        }
    }

    #[test]
    fn quadratic_cost_in_partition_size() {
        let make = |n: u32| -> Vec<(u32, u32)> { (0..n).map(|i| (i, i)).collect() };
        let (_, c1) = run(&cfg(), 0, &make(256), &make(256));
        let (_, c2) = run(&cfg(), 0, &make(1024), &make(1024));
        let spec = DeviceSpec::gtx1080();
        let ratio = c2.time(&spec) / c1.time(&spec);
        // 4x inputs → ~16x pairwise work.
        assert!(ratio > 8.0, "ratio = {ratio}");
    }

    #[test]
    fn empty_inputs_cost_nothing() {
        let (rows, cost) = run(&cfg(), 0, &[], &[(1, 1)]);
        assert!(rows.is_empty());
        assert_eq!(cost, KernelCost::ZERO);
    }

    #[test]
    fn duplicate_keys_in_both_sides_multiply() {
        let r = [(7, 1), (7, 2)];
        let s = [(7, 10), (7, 20), (7, 30)];
        let (rows, _) = run(&cfg(), 0, &r, &s);
        assert_eq!(rows.len(), 6);
    }
}
