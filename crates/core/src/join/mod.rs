//! Per-co-partition join kernels (paper §III-B/§III-C).
//!
//! After partitioning, the join degenerates into many independent small
//! joins between co-partitions `(R_p, S_p)`. The kernels here are the
//! paper's three variants:
//!
//! * [`sm_hash::sm_hash_join`] — hash table in shared memory, 16-bit
//!   offset chains, wait-free atomic-exchange build (the default);
//! * [`ballot_nl::ballot_nl_join`] — warp-cooperative nested loop using
//!   ballot instructions (Listing 1);
//! * [`device_hash::device_hash_join`] — the same chained table kept in
//!   device memory (Fig. 6's strawman).
//!
//! [`join_all_copartitions`] drives one kernel over every co-partition
//! pair and accumulates traffic; long final chains are decomposed across
//! SMs (paper §III-A), so no imbalance factor applies to the probe phase.

pub mod ballot_nl;
pub mod device_hash;
pub mod sm_hash;

use hcj_gpu::KernelCost;
use hcj_host::Pool;

use crate::config::{GpuJoinConfig, ProbeKind};
use crate::output::OutputSink;
use crate::partition::PartitionedRelation;

/// Minimum probe tuples per worker chunk inside a single kernel: below
/// this, forking sinks and merging counters costs more than the loop, so
/// tiny co-partitions stay inline.
pub(crate) const PROBE_PAR_MIN: usize = 8192;

/// Join every co-partition pair of two identically-partitioned relations,
/// writing matches to `sink`. Returns the aggregate kernel traffic
/// (excluding the sink's own output traffic — add `sink.cost()` once at
/// the end of the probe phase).
pub fn join_all_copartitions(
    config: &GpuJoinConfig,
    r: &PartitionedRelation,
    s: &PartitionedRelation,
    sink: &mut OutputSink,
) -> KernelCost {
    assert_eq!(
        (r.fanout_bits, r.base_bits),
        (s.fanout_bits, s.base_bits),
        "co-partition join requires identically partitioned inputs"
    );
    let shift = r.fixed_bits();
    // Co-partition pairs are fully independent: run them on pool workers,
    // each joining into a forked sink, and fold costs and sinks back in
    // partition order so the outcome is identical to the serial loop.
    let live: Vec<usize> =
        (0..r.fanout()).filter(|&p| !r.chains[p].is_empty() && !s.chains[p].is_empty()).collect();
    let per_partition = Pool::current().map(&live, |_, &p| {
        let (r_keys, r_pays) = r.collect_partition(p);
        let (s_keys, s_pays) = s.collect_partition(p);
        let mut local = sink.fork();
        let c = match config.probe {
            ProbeKind::HashJoin => {
                sm_hash::sm_hash_join(config, shift, &r_keys, &r_pays, &s_keys, &s_pays, &mut local)
            }
            ProbeKind::NestedLoop => ballot_nl::ballot_nl_join(
                config, shift, &r_keys, &r_pays, &s_keys, &s_pays, &mut local,
            ),
            ProbeKind::DeviceHashJoin => device_hash::device_hash_join(
                config, shift, &r_keys, &r_pays, &s_keys, &s_pays, &mut local,
            ),
        };
        (c, local)
    });
    let mut cost = KernelCost::ZERO;
    for (c, local) in per_partition {
        cost += c;
        sink.merge(local);
    }
    cost
}

/// Number of co-partition pairs the join kernel actually launches blocks
/// for: partitions where both sides are non-empty (one thread block per
/// live pair — the grid dimension of the co-partition join, used for
/// occupancy accounting).
pub fn live_copartitions(r: &PartitionedRelation, s: &PartitionedRelation) -> usize {
    (0..r.fanout().min(s.fanout()))
        .filter(|&p| !r.chains[p].is_empty() && !s.chains[p].is_empty())
        .count()
}

/// The in-partition hash function: multiplicative hashing over the key
/// bits *above* the radix bits already equal within a partition
/// (paper §III-C uses a second hash `h2` independent of the partitioning
/// hash `h1`, Fig. 1).
#[inline]
pub fn bucket_hash(key: u32, shift: u32, buckets: usize) -> usize {
    debug_assert!(buckets.is_power_of_two());
    if buckets <= 1 {
        return 0; // a 1-bucket table degenerates to a single chain
    }
    let x = (key >> shift).wrapping_mul(0x9E37_79B1);
    // Take the high bits of the product: better avalanche than the low.
    ((x >> (32 - buckets.trailing_zeros())) as usize) & (buckets - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcj_gpu::DeviceSpec;
    use hcj_workload::oracle::JoinCheck;
    use hcj_workload::{KeyDistribution, RelationSpec};

    use crate::config::OutputMode;
    use crate::partition::GpuPartitioner;

    fn run(
        probe: ProbeKind,
        r_tuples: usize,
        s_tuples: usize,
        bits: u32,
    ) -> (JoinCheck, JoinCheck) {
        let mut cfg = GpuJoinConfig::paper_default(DeviceSpec::gtx1080());
        cfg.radix_bits = bits;
        cfg.bucket_capacity = 1024;
        cfg.probe = probe;
        let r = RelationSpec::unique(r_tuples, 11).generate();
        let s = RelationSpec {
            tuples: s_tuples,
            distribution: KeyDistribution::UniformFk { distinct: r_tuples as u64 },
            payload_width: 4,
            seed: 12,
        }
        .generate();
        let pr = GpuPartitioner::new(&cfg).partition(&r).partitioned;
        let ps = GpuPartitioner::new(&cfg).partition(&s).partitioned;
        let mut sink = OutputSink::new(OutputMode::Aggregate, 512);
        let cost = join_all_copartitions(&cfg, &pr, &ps, &mut sink);
        assert!(cost.time(&cfg.device) > 0.0);
        (sink.check(), JoinCheck::compute(&r, &s))
    }

    #[test]
    fn hash_join_matches_oracle() {
        let (got, want) = run(ProbeKind::HashJoin, 4096, 16384, 6);
        assert_eq!(got, want);
    }

    #[test]
    fn nested_loop_matches_oracle() {
        let (got, want) = run(ProbeKind::NestedLoop, 2048, 8192, 5);
        assert_eq!(got, want);
    }

    #[test]
    fn device_hash_matches_oracle() {
        let (got, want) = run(ProbeKind::DeviceHashJoin, 4096, 16384, 6);
        assert_eq!(got, want);
    }

    #[test]
    #[should_panic(expected = "identically partitioned")]
    fn mismatched_partitioning_rejected() {
        let cfg = GpuJoinConfig::paper_default(DeviceSpec::gtx1080());
        let r = PartitionedRelation::new(1024, 3);
        let s = PartitionedRelation::new(1024, 4);
        let mut sink = OutputSink::new(OutputMode::Aggregate, 512);
        let _ = join_all_copartitions(&cfg, &r, &s, &mut sink);
    }

    #[test]
    fn bucket_hash_ignores_partition_bits() {
        // Keys differing only in the low `shift` bits hash identically.
        assert_eq!(bucket_hash(0b1010_0011, 4, 256), bucket_hash(0b1010_1111, 4, 256));
        // Keys differing above the shift usually do not all collide.
        let distinct: std::collections::HashSet<usize> =
            (0..1024u32).map(|k| bucket_hash(k << 4, 4, 256)).collect();
        assert!(distinct.len() > 200, "hash too degenerate: {}", distinct.len());
    }

    #[test]
    fn bucket_hash_stays_in_range() {
        for k in (0..100_000u32).step_by(97) {
            assert!(bucket_hash(k, 8, 2048) < 2048);
        }
    }

    #[test]
    fn bucket_hash_single_bucket_degenerates_cleanly() {
        // buckets = 1 is a power of two and passes config validation; the
        // hash must not shift by 32 (debug-build overflow panic).
        for k in [0u32, 1, 12345, u32::MAX] {
            assert_eq!(bucket_hash(k, 0, 1), 0);
        }
    }
}
