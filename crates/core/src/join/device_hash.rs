//! Hash join of co-partitions with the table in *device* memory — the
//! comparator of paper Fig. 6. Identical logic to the shared-memory
//! variant, but every table access is a random device-memory transaction
//! instead of a shared-memory access, and offsets are full 32-bit.

use hcj_gpu::KernelCost;
use hcj_host::Pool;

use crate::config::GpuJoinConfig;
use crate::join::bucket_hash;
use crate::join::PROBE_PAR_MIN;
use crate::output::OutputSink;

const NIL: u32 = u32::MAX;

/// Join one co-partition pair with a device-memory chained hash table.
pub fn device_hash_join(
    config: &GpuJoinConfig,
    shift: u32,
    r_keys: &[u32],
    r_pays: &[u32],
    s_keys: &[u32],
    s_pays: &[u32],
    sink: &mut OutputSink,
) -> KernelCost {
    let buckets = config.hash_buckets;
    let mut cost = KernelCost::ZERO;
    // A co-partition's table (heads + links + tuples) is KB-sized: its
    // random traffic is served by the L2 cache, not DRAM. Oversized
    // (skewed) partitions spill to DRAM-random.
    let table_bytes = (buckets * 4 + r_keys.len() * 12) as u64;
    let in_l2 = table_bytes <= config.device.l2_bytes;
    let charge = |cost: &mut KernelCost, n: u64| {
        if in_l2 {
            cost.add_l2(n);
        } else {
            cost.add_random(n);
        }
    };

    // ---- build ----
    let mut heads = vec![NIL; buckets];
    let mut next = vec![NIL; r_keys.len()];
    for (i, &key) in r_keys.iter().enumerate() {
        let h = bucket_hash(key, shift, buckets);
        let old = heads[h];
        heads[h] = i as u32;
        next[i] = old;
    }
    // Coalesced read of the build chain; one global atomic (exchange) and
    // one random link write per element.
    cost.add_coalesced(8 * r_keys.len() as u64);
    cost.add_global_atomics(r_keys.len() as u64);
    charge(&mut cost, r_keys.len() as u64);
    cost.add_instructions(6 * r_keys.len() as u64);

    // ---- probe ----
    cost.add_coalesced(8 * s_keys.len() as u64);
    // Independent probe tuples: chunked across pool workers with forked
    // sinks merged in chunk order (bit-identical to the serial scan).
    let pool = Pool::current();
    let ranges = pool.chunks(s_keys.len(), PROBE_PAR_MIN);
    let mut chain_steps = 0u64;
    let mut match_count = 0u64;
    let per_chunk = pool.map(&ranges, |_, range| {
        let mut local = sink.fork();
        let (mut steps, mut matches) = (0u64, 0u64);
        for j in range.clone() {
            let skey = s_keys[j];
            let h = bucket_hash(skey, shift, buckets);
            let mut idx = heads[h];
            while idx != NIL {
                steps += 1;
                let i = idx as usize;
                if r_keys[i] == skey {
                    matches += 1;
                    local.emit(skey, r_pays[i], s_pays[j]);
                }
                idx = next[i];
            }
        }
        (steps, matches, local)
    });
    for (steps, matches, local) in per_chunk {
        chain_steps += steps;
        match_count += matches;
        sink.merge(local);
    }
    // One transaction per probe for the head slot; each chain step reads
    // the key and the next pointer: two transactions; each match adds a
    // payload read.
    charge(&mut cost, s_keys.len() as u64);
    charge(&mut cost, 2 * chain_steps + match_count);
    cost.add_instructions(4 * s_keys.len() as u64 + 3 * chain_steps);
    cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcj_gpu::DeviceSpec;
    use hcj_workload::oracle::reference_join;
    use hcj_workload::{Relation, Tuple};

    use crate::config::OutputMode;
    use crate::join::sm_hash::sm_hash_join;

    fn cfg() -> GpuJoinConfig {
        GpuJoinConfig::paper_default(DeviceSpec::gtx1080())
    }

    fn cols(v: &[(u32, u32)]) -> (Vec<u32>, Vec<u32>) {
        (v.iter().map(|t| t.0).collect(), v.iter().map(|t| t.1).collect())
    }

    #[test]
    fn matches_oracle() {
        let r: Vec<(u32, u32)> = (0..2000u32).map(|i| (i * 11 % 503, i)).collect();
        let s: Vec<(u32, u32)> = (0..3000u32).map(|i| (i * 17 % 503, i + 50_000)).collect();
        let (rk, rp) = cols(&r);
        let (sk, sp) = cols(&s);
        let mut sink = OutputSink::new(OutputMode::Materialize, 512);
        let _ = device_hash_join(&cfg(), 0, &rk, &rp, &sk, &sp, &mut sink);
        let mut rows = sink.into_rows();
        rows.sort_unstable();
        let rr: Relation = r.iter().map(|&(k, p)| Tuple { key: k, payload: p }).collect();
        let ss: Relation = s.iter().map(|&(k, p)| Tuple { key: k, payload: p }).collect();
        let mut want = reference_join(&rr, &ss);
        want.sort_unstable();
        assert_eq!(rows, want);
    }

    #[test]
    fn slower_than_shared_memory_variant() {
        let r: Vec<(u32, u32)> = (0..4000u32).map(|i| (i, i)).collect();
        let s: Vec<(u32, u32)> = (0..4000u32).map(|i| (i, i)).collect();
        let (rk, rp) = cols(&r);
        let (sk, sp) = cols(&s);
        let spec = DeviceSpec::gtx1080();
        let mut sink_d = OutputSink::new(OutputMode::Aggregate, 512);
        let dev = device_hash_join(&cfg(), 0, &rk, &rp, &sk, &sp, &mut sink_d);
        let mut sink_s = OutputSink::new(OutputMode::Aggregate, 512);
        let shm = sm_hash_join(&cfg(), 0, &rk, &rp, &sk, &sp, &mut sink_s);
        assert_eq!(sink_d.matches(), sink_s.matches());
        assert!(
            dev.time(&spec) > 2.0 * shm.time(&spec),
            "device {} vs shared {}",
            dev.time(&spec),
            shm.time(&spec)
        );
    }

    #[test]
    fn chains_beyond_bucket_count_cost_random_traffic() {
        let mut config = cfg();
        config.hash_buckets = 16;
        let r: Vec<(u32, u32)> = (0..1024u32).map(|i| (i, i)).collect();
        let s: Vec<(u32, u32)> = (0..64u32).map(|i| (i, i)).collect();
        let (rk, rp) = cols(&r);
        let (sk, sp) = cols(&s);
        let mut sink = OutputSink::new(OutputMode::Aggregate, 512);
        let cost = device_hash_join(&config, 0, &rk, &rp, &sk, &sp, &mut sink);
        assert_eq!(sink.matches(), 64);
        // 64 probes over ~64-element chains: thousands of (L2) steps.
        assert!(cost.l2_transactions > 5000, "l2 = {}", cost.l2_transactions);
    }

    #[test]
    fn no_block_splitting_needed_for_large_partitions() {
        // Unlike the shared-memory variant, a 100k-element build partition
        // is one table: the probe side is scanned exactly once.
        let r: Vec<(u32, u32)> = (0..100_000u32).map(|i| (i, i)).collect();
        let s: Vec<(u32, u32)> = (0..1000u32).map(|i| (i, i)).collect();
        let (rk, rp) = cols(&r);
        let (sk, sp) = cols(&s);
        let mut sink = OutputSink::new(OutputMode::Aggregate, 512);
        let cost = device_hash_join(&cfg(), 0, &rk, &rp, &sk, &sp, &mut sink);
        assert_eq!(cost.coalesced_bytes, 8 * 100_000 + 8 * 1000);
        assert_eq!(sink.matches(), 1000);
    }
}
