//! Load-balance arithmetic for work assigned to streaming multiprocessors.
//!
//! Kernel cost models aggregate traffic device-wide, which implicitly
//! assumes perfect balance across SMs. Pass assignment policies break that
//! assumption (paper §III-A): assigning whole bucket *chains* to CUDA
//! blocks leaves the block holding the longest chain running alone at the
//! end. The imbalance factor computed here scales a pass's execution time
//! accordingly: `time = balanced_time * imbalance`.

/// Greedy round-robin assignment of `unit_weights` work units to `workers`
/// equal workers, in order; returns `max_load / mean_load >= 1`.
///
/// Round-robin (not greedy-least-loaded) matches how the paper hands out
/// buckets/chains to CUDA blocks.
pub fn round_robin_imbalance(unit_weights: &[u64], workers: usize) -> f64 {
    assert!(workers > 0, "need at least one worker");
    let total: u64 = unit_weights.iter().sum();
    if total == 0 {
        return 1.0;
    }
    let mut loads = vec![0u64; workers];
    for (i, &w) in unit_weights.iter().enumerate() {
        loads[i % workers] += w;
    }
    let max = *loads.iter().max().expect("non-empty");
    let mean = total as f64 / workers as f64;
    (max as f64 / mean).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_units_are_balanced() {
        let units = vec![10u64; 64];
        let f = round_robin_imbalance(&units, 16);
        assert!((f - 1.0).abs() < 1e-12);
    }

    #[test]
    fn one_giant_unit_dominates() {
        // One unit carries 91 of 100 weight units across 10 workers:
        // max load ≈ 91+ vs mean 10 → ~9x.
        let mut units = vec![1u64; 9];
        units.push(91);
        let f = round_robin_imbalance(&units, 10);
        assert!(f > 8.0, "f = {f}");
    }

    #[test]
    fn decomposing_the_giant_restores_balance() {
        // The same weight split into capacity-sized buckets round-robins
        // evenly — the paper's bucket-at-a-time argument.
        let mut units = vec![1u64; 9];
        units.extend(std::iter::repeat(7).take(13)); // 91 split into 13 buckets
        let f = round_robin_imbalance(&units, 10);
        assert!(f < 1.6, "f = {f}");
    }

    #[test]
    fn fewer_units_than_workers() {
        let f = round_robin_imbalance(&[100], 20);
        assert!((f - 20.0).abs() < 1e-9);
    }

    #[test]
    fn empty_or_zero_weight_is_neutral() {
        assert_eq!(round_robin_imbalance(&[], 8), 1.0);
        assert_eq!(round_robin_imbalance(&[0, 0], 8), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = round_robin_imbalance(&[1], 0);
    }

    #[test]
    fn imbalance_is_at_least_one() {
        use hcj_workload::rng::{Rng, SmallRng};
        let mut rng = SmallRng::seed_from_u64(0xBA1A);
        for case in 0..256 {
            let len = rng.gen_range_u64(0, 199) as usize;
            let weights: Vec<u64> = (0..len).map(|_| rng.gen_range_u64(0, 999)).collect();
            let workers = rng.gen_range_u64(1, 63) as usize;
            let f = round_robin_imbalance(&weights, workers);
            assert!(f >= 1.0, "case {case}: imbalance {f} < 1");
            assert!(f <= workers as f64 + 1e-9, "case {case}: imbalance {f} > {workers}");
        }
    }
}
