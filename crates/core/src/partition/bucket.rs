//! Bucket pools and partition chains: the paper's partition output layout.

use hcj_workload::Tuple;

/// Sentinel for "no next bucket".
pub const NIL_BUCKET: u32 = u32::MAX;

/// A pool of fixed-capacity buckets storing keys and payloads columnar.
/// Buckets are linked into per-partition chains through `next` indices —
/// the array-of-buckets linked list of paper §III-A, which amortizes
/// pointer chasing over `capacity` coalesced elements.
#[derive(Clone, Debug)]
pub struct BucketPool {
    capacity: usize,
    keys: Vec<u32>,
    payloads: Vec<u32>,
    lens: Vec<u32>,
    next: Vec<u32>,
}

impl BucketPool {
    /// An empty pool of buckets holding `capacity` elements each.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "bucket capacity must be positive");
        BucketPool {
            capacity,
            keys: Vec::new(),
            payloads: Vec::new(),
            lens: Vec::new(),
            next: Vec::new(),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn num_buckets(&self) -> usize {
        self.lens.len()
    }

    /// Pool footprint in modeled device-memory bytes (keys + payloads +
    /// per-bucket metadata).
    pub fn device_bytes(&self) -> u64 {
        (self.keys.len() * 8 + self.lens.len() * 8) as u64
    }

    /// Allocate a fresh empty bucket; models the pool-allocation atomic.
    pub fn alloc(&mut self) -> u32 {
        let id = self.lens.len() as u32;
        self.keys.resize(self.keys.len() + self.capacity, 0);
        self.payloads.resize(self.payloads.len() + self.capacity, 0);
        self.lens.push(0);
        self.next.push(NIL_BUCKET);
        id
    }

    /// Try to append to `bucket`; `false` when full.
    pub fn push(&mut self, bucket: u32, t: Tuple) -> bool {
        let b = bucket as usize;
        let len = self.lens[b] as usize;
        if len == self.capacity {
            return false;
        }
        let at = b * self.capacity + len;
        self.keys[at] = t.key;
        self.payloads[at] = t.payload;
        self.lens[b] = (len + 1) as u32;
        true
    }

    pub fn len_of(&self, bucket: u32) -> usize {
        self.lens[bucket as usize] as usize
    }

    pub fn next_of(&self, bucket: u32) -> u32 {
        self.next[bucket as usize]
    }

    pub fn link(&mut self, from: u32, to: u32) {
        debug_assert_eq!(self.next[from as usize], NIL_BUCKET, "bucket already linked");
        self.next[from as usize] = to;
    }

    /// The filled key slice of `bucket`.
    pub fn keys_of(&self, bucket: u32) -> &[u32] {
        let b = bucket as usize;
        &self.keys[b * self.capacity..b * self.capacity + self.lens[b] as usize]
    }

    /// The filled payload slice of `bucket`.
    pub fn payloads_of(&self, bucket: u32) -> &[u32] {
        let b = bucket as usize;
        &self.payloads[b * self.capacity..b * self.capacity + self.lens[b] as usize]
    }
}

/// One partition: a chain of buckets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PartitionChain {
    pub head: u32,
    pub tail: u32,
    pub tuples: u64,
}

impl PartitionChain {
    pub const EMPTY: PartitionChain =
        PartitionChain { head: NIL_BUCKET, tail: NIL_BUCKET, tuples: 0 };

    pub fn is_empty(&self) -> bool {
        self.tuples == 0
    }
}

/// A relation partitioned into `2^fanout_bits` bucket chains on the key
/// bits `[base_bits, base_bits + fanout_bits)`.
///
/// `base_bits > 0` arises in the co-processing strategy (paper §IV-B):
/// the CPU already partitioned on the low `base_bits`, and the GPU refines
/// each CPU partition on the next bits. Within such a relation all keys
/// additionally share their low `base_bits`.
#[derive(Clone, Debug)]
pub struct PartitionedRelation {
    pub pool: BucketPool,
    pub chains: Vec<PartitionChain>,
    /// Bits this partitioning consumed: partition `p` holds exactly the
    /// tuples with `(key >> base_bits) & (2^fanout_bits - 1) == p`.
    pub fanout_bits: u32,
    /// Bits below `fanout_bits` that are constant across the whole
    /// relation (consumed by an earlier, external partitioning step).
    pub base_bits: u32,
}

impl PartitionedRelation {
    pub fn new(pool_capacity: usize, fanout_bits: u32) -> Self {
        Self::with_base(pool_capacity, fanout_bits, 0)
    }

    pub fn with_base(pool_capacity: usize, fanout_bits: u32, base_bits: u32) -> Self {
        PartitionedRelation {
            pool: BucketPool::new(pool_capacity),
            chains: vec![PartitionChain::EMPTY; 1 << fanout_bits],
            fanout_bits,
            base_bits,
        }
    }

    /// Total key bits known constant within one partition: the hash
    /// functions of the probe kernels skip exactly these.
    pub fn fixed_bits(&self) -> u32 {
        self.base_bits + self.fanout_bits
    }

    pub fn fanout(&self) -> usize {
        self.chains.len()
    }

    pub fn partition_len(&self, p: usize) -> u64 {
        self.chains[p].tuples
    }

    pub fn total_tuples(&self) -> u64 {
        self.chains.iter().map(|c| c.tuples).sum()
    }

    /// Number of buckets in partition `p`'s chain.
    pub fn chain_buckets(&self, p: usize) -> usize {
        let mut n = 0;
        let mut b = self.chains[p].head;
        while b != NIL_BUCKET {
            n += 1;
            b = self.pool.next_of(b);
        }
        n
    }

    /// Build a relation whose chain layout is fixed up front from the
    /// per-partition tuple `counts` — the scatter target of the two-phase
    /// parallel partitioners. Partition `p` receives *consecutive* bucket
    /// ids, so its tuples occupy one contiguous run of pool slots: tuple
    /// `i` of `p` lives at column slot `base[p] + i`, where `base` is the
    /// returned vector ([`columns_mut`](Self::columns_mut) exposes the
    /// columns). Every observable property — chain lengths, bucket counts,
    /// iteration order, pool footprint — matches a relation grown
    /// tuple-by-tuple with [`push`](Self::push) from the same counts;
    /// only the (unobservable) bucket-id assignment order differs.
    pub fn from_counts(
        pool_capacity: usize,
        fanout_bits: u32,
        base_bits: u32,
        counts: &[u64],
    ) -> (Self, Vec<usize>) {
        assert!(pool_capacity > 0, "bucket capacity must be positive");
        assert_eq!(counts.len(), 1 << fanout_bits, "one count per partition");
        let cap = pool_capacity;
        let total_buckets: usize = counts.iter().map(|&c| (c as usize).div_ceil(cap)).sum();
        let mut lens = Vec::with_capacity(total_buckets);
        let mut next = Vec::with_capacity(total_buckets);
        let mut chains = Vec::with_capacity(counts.len());
        let mut base = Vec::with_capacity(counts.len());
        for &count in counts {
            let count = count as usize;
            base.push(lens.len() * cap);
            if count == 0 {
                chains.push(PartitionChain::EMPTY);
                continue;
            }
            let head = lens.len() as u32;
            let n_buckets = count.div_ceil(cap);
            for b in 0..n_buckets {
                let last = b + 1 == n_buckets;
                lens.push(if last { (count - b * cap) as u32 } else { cap as u32 });
                next.push(if last { NIL_BUCKET } else { head + b as u32 + 1 });
            }
            let tail = head + (n_buckets - 1) as u32;
            chains.push(PartitionChain { head, tail, tuples: count as u64 });
        }
        let pool = BucketPool {
            capacity: cap,
            keys: vec![0u32; total_buckets * cap],
            payloads: vec![0u32; total_buckets * cap],
            lens,
            next,
        };
        (PartitionedRelation { pool, chains, fanout_bits, base_bits }, base)
    }

    /// Mutable key/payload columns of the backing pool, for disjoint
    /// parallel scatter into the slots advertised by
    /// [`from_counts`](Self::from_counts).
    pub fn columns_mut(&mut self) -> (&mut [u32], &mut [u32]) {
        (&mut self.pool.keys, &mut self.pool.payloads)
    }

    /// Append one tuple to partition `p`, extending the chain as needed.
    /// Returns `true` if a new bucket had to be allocated.
    pub fn push(&mut self, p: usize, t: Tuple) -> bool {
        let chain = &mut self.chains[p];
        if chain.head == NIL_BUCKET {
            let b = self.pool.alloc();
            chain.head = b;
            chain.tail = b;
            let ok = self.pool.push(b, t);
            debug_assert!(ok);
            chain.tuples += 1;
            return true;
        }
        if self.pool.push(chain.tail, t) {
            chain.tuples += 1;
            return false;
        }
        let b = self.pool.alloc();
        self.pool.link(chain.tail, b);
        chain.tail = b;
        let ok = self.pool.push(b, t);
        debug_assert!(ok);
        chain.tuples += 1;
        true
    }

    /// Iterate partition `p` bucket by bucket (coalesced chain scan).
    pub fn buckets_of(&self, p: usize) -> BucketIter<'_> {
        BucketIter { pool: &self.pool, bucket: self.chains[p].head }
    }

    /// Iterate all tuples of partition `p`.
    pub fn tuples_of(&self, p: usize) -> impl Iterator<Item = Tuple> + '_ {
        self.buckets_of(p).flat_map(|b| {
            self.pool
                .keys_of(b)
                .iter()
                .zip(self.pool.payloads_of(b))
                .map(|(&key, &payload)| Tuple { key, payload })
        })
    }

    /// Collect partition `p` into parallel key/payload vectors (the copy a
    /// join kernel stages into shared memory).
    pub fn collect_partition(&self, p: usize) -> (Vec<u32>, Vec<u32>) {
        let n = self.partition_len(p) as usize;
        let mut keys = Vec::with_capacity(n);
        let mut payloads = Vec::with_capacity(n);
        for b in self.buckets_of(p) {
            keys.extend_from_slice(self.pool.keys_of(b));
            payloads.extend_from_slice(self.pool.payloads_of(b));
        }
        (keys, payloads)
    }
}

/// Iterator over a partition's bucket ids.
pub struct BucketIter<'a> {
    pool: &'a BucketPool,
    bucket: u32,
}

impl Iterator for BucketIter<'_> {
    type Item = u32;
    fn next(&mut self) -> Option<u32> {
        if self.bucket == NIL_BUCKET {
            return None;
        }
        let b = self.bucket;
        self.bucket = self.pool.next_of(b);
        Some(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(key: u32) -> Tuple {
        Tuple { key, payload: key * 2 }
    }

    #[test]
    fn pool_alloc_and_push() {
        let mut pool = BucketPool::new(4);
        let b = pool.alloc();
        assert!(pool.push(b, t(1)));
        assert!(pool.push(b, t(2)));
        assert_eq!(pool.len_of(b), 2);
        assert_eq!(pool.keys_of(b), &[1, 2]);
        assert_eq!(pool.payloads_of(b), &[2, 4]);
    }

    #[test]
    fn push_to_full_bucket_fails() {
        let mut pool = BucketPool::new(2);
        let b = pool.alloc();
        assert!(pool.push(b, t(1)));
        assert!(pool.push(b, t(2)));
        assert!(!pool.push(b, t(3)));
        assert_eq!(pool.len_of(b), 2);
    }

    #[test]
    fn chains_grow_and_iterate_in_order() {
        let mut pr = PartitionedRelation::new(3, 1); // capacity 3, 2 partitions
        for k in 0..10u32 {
            pr.push((k % 2) as usize, t(k));
        }
        assert_eq!(pr.partition_len(0), 5);
        assert_eq!(pr.partition_len(1), 5);
        assert_eq!(pr.chain_buckets(0), 2); // 5 tuples / cap 3
        let keys: Vec<u32> = pr.tuples_of(0).map(|x| x.key).collect();
        assert_eq!(keys, vec![0, 2, 4, 6, 8]); // insertion order preserved
        assert_eq!(pr.total_tuples(), 10);
    }

    #[test]
    fn push_reports_bucket_allocations() {
        let mut pr = PartitionedRelation::new(2, 0);
        assert!(pr.push(0, t(1))); // first bucket
        assert!(!pr.push(0, t(2)));
        assert!(pr.push(0, t(3))); // overflow → new bucket
        assert!(!pr.push(0, t(4)));
        assert_eq!(pr.chain_buckets(0), 2);
    }

    #[test]
    fn collect_partition_round_trips() {
        let mut pr = PartitionedRelation::new(4, 2);
        for k in 0..20u32 {
            pr.push((k % 4) as usize, t(k));
        }
        let (keys, payloads) = pr.collect_partition(3);
        assert_eq!(keys, vec![3, 7, 11, 15, 19]);
        assert_eq!(payloads, vec![6, 14, 22, 30, 38]);
    }

    #[test]
    fn empty_partition_iterates_nothing() {
        let pr = PartitionedRelation::new(4, 2);
        assert_eq!(pr.tuples_of(2).count(), 0);
        assert_eq!(pr.chain_buckets(2), 0);
        assert!(pr.chains[2].is_empty());
    }

    #[test]
    fn device_bytes_track_pool_growth() {
        let mut pool = BucketPool::new(128);
        assert_eq!(pool.device_bytes(), 0);
        pool.alloc();
        assert_eq!(pool.device_bytes(), 128 * 8 + 8);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = BucketPool::new(0);
    }

    #[test]
    fn from_counts_matches_push_built_observables() {
        // Same tuples, pushed vs counted-then-scattered: every observable
        // must agree (partition 2 left empty, partition 1 spans buckets).
        let assign = |k: u32| (k % 4) as usize;
        let tuples: Vec<Tuple> = (0..23u32).filter(|&k| assign(k) != 2).map(t).collect();
        let mut pushed = PartitionedRelation::new(3, 2);
        let mut counts = vec![0u64; 4];
        for &tp in &tuples {
            pushed.push(assign(tp.key), tp);
            counts[assign(tp.key)] += 1;
        }
        let (mut packed, base) = PartitionedRelation::from_counts(3, 2, 0, &counts);
        {
            let (keys, pays) = packed.columns_mut();
            let mut cursor = base.clone();
            for &tp in &tuples {
                let p = assign(tp.key);
                keys[cursor[p]] = tp.key;
                pays[cursor[p]] = tp.payload;
                cursor[p] += 1;
            }
        }
        assert_eq!(packed.pool.device_bytes(), pushed.pool.device_bytes());
        assert_eq!(packed.pool.num_buckets(), pushed.pool.num_buckets());
        for p in 0..4 {
            assert_eq!(packed.partition_len(p), pushed.partition_len(p), "partition {p}");
            assert_eq!(packed.chain_buckets(p), pushed.chain_buckets(p), "partition {p}");
            let a: Vec<Tuple> = packed.tuples_of(p).collect();
            let b: Vec<Tuple> = pushed.tuples_of(p).collect();
            assert_eq!(a, b, "partition {p}");
        }
    }
}
