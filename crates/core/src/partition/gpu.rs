//! The multi-pass GPU radix partitioner (paper §III-A), execution-driven:
//! it really moves every tuple into bucket chains while counting the
//! hardware traffic each pass generates.

use hcj_gpu::KernelCost;
use hcj_host::{DisjointSlice, Pool};
use hcj_workload::Relation;

use crate::balance::round_robin_imbalance;
use crate::config::{GpuJoinConfig, PassAssignment};
use crate::partition::bucket::PartitionedRelation;
use crate::partition::PART_PAR_MIN;
use crate::radix::PassBits;

/// Per-pass traffic and timing statistics.
#[derive(Clone, Debug)]
pub struct PassStats {
    pub cost: KernelCost,
    /// Modeled execution time: `cost.time(device) * imbalance`.
    pub seconds: f64,
    /// Load-imbalance factor across SMs (1.0 = perfectly balanced).
    pub imbalance: f64,
    /// Buckets drawn from the pool (each draw is one global atomic).
    pub buckets_allocated: u64,
    /// Parents this pass finalized early (fused refinement): their chains
    /// were re-linked, not re-scattered, and contribute no tuple traffic.
    pub fused_parents: u64,
}

/// Which parents each refinement pass finalized early: `finalized[k][p]`
/// is true when refinement pass `k` (pass `k + 1` of the plan) carried
/// parent `p`'s chain over instead of splitting it. A pass whose parents
/// all finalized was skipped outright and the plan ends there.
///
/// The plan is decided on the *build* side and replayed verbatim on the
/// probe side ([`GpuPartitioner::partition_following`]): co-partitions
/// pair by index, so both relations must stop refining the same parents
/// at the same depth even though their sizes differ.
#[derive(Clone, Debug, Default)]
pub struct RefinePlan {
    pub finalized: Vec<Vec<bool>>,
}

impl RefinePlan {
    /// True when some parent was finalized early somewhere in the plan.
    pub fn any_fused(&self) -> bool {
        self.finalized.iter().any(|pass| pass.iter().any(|&f| f))
    }
}

/// The result of fully partitioning one relation.
#[derive(Clone, Debug)]
pub struct PartitionOutcome {
    pub partitioned: PartitionedRelation,
    pub passes: Vec<PassStats>,
    /// The early-stop decisions taken (all-false without fusion); feed to
    /// [`GpuPartitioner::partition_following`] for the other side.
    pub refine_plan: RefinePlan,
}

impl PartitionOutcome {
    /// Sum of the per-pass modeled times.
    pub fn total_seconds(&self) -> f64 {
        self.passes.iter().map(|p| p.seconds).sum()
    }

    /// Peak device memory held by partition buffers during the passes:
    /// input + output pools coexist within a pass.
    pub fn peak_pool_bytes(&self) -> u64 {
        // Both the final pool and (transiently) its predecessor of equal
        // tuple count existed; a 2x bound is what the strategies reserve.
        2 * self.partitioned.pool.device_bytes()
    }
}

/// Multi-pass GPU radix partitioner for a fixed configuration.
pub struct GpuPartitioner<'a> {
    pub config: &'a GpuJoinConfig,
}

impl<'a> GpuPartitioner<'a> {
    pub fn new(config: &'a GpuJoinConfig) -> Self {
        GpuPartitioner { config }
    }

    /// Partition `rel` into `2^config.radix_bits` bucket chains on the
    /// low radix bits.
    pub fn partition(&self, rel: &Relation) -> PartitionOutcome {
        self.partition_with_base(rel, 0)
    }

    /// Partition `rel` replaying the early-stop decisions of a previous
    /// [`GpuPartitioner::partition`] — the probe side of a fused join must
    /// stop refining exactly where the build side did so co-partition
    /// indices keep matching. With fusion off the plan is all-false and
    /// this is identical to [`GpuPartitioner::partition`].
    pub fn partition_following(&self, rel: &Relation, plan: &RefinePlan) -> PartitionOutcome {
        self.run(rel, 0, Some(plan))
    }

    /// Partition on the key bits `[base_bits, base_bits +
    /// config.radix_bits)` — the GPU-side refinement of a CPU partition in
    /// the co-processing strategy (all of `rel` already shares its low
    /// `base_bits`).
    pub fn partition_with_base(&self, rel: &Relation, base_bits: u32) -> PartitionOutcome {
        self.run(rel, base_bits, None)
    }

    /// Decide the early-stop fate of every parent before a refinement
    /// pass: finalized parents (small enough to build in shared memory
    /// already, empty ones included) are carried; the rest split.
    fn decide(&self, parent: &PartitionedRelation) -> Vec<bool> {
        let active = self.config.fusion_active();
        let threshold = self.config.fuse_threshold();
        (0..parent.fanout()).map(|p| active && parent.partition_len(p) <= threshold).collect()
    }

    fn run(&self, rel: &Relation, base_bits: u32, follow: Option<&RefinePlan>) -> PartitionOutcome {
        let plan = self.config.pass_plan();
        let mut passes = Vec::with_capacity(plan.num_passes());

        // First pass: coalesced scan of the input columns, parallelized as
        // count → prefix → scatter. Per-chunk histograms fix every tuple's
        // output slot before any worker writes, so the result is
        // bit-identical to a serial tuple-by-tuple scan for any worker
        // count (tuple order within a partition is input order either way).
        let first = plan.passes()[0];
        let fanout = first.fanout() as usize;
        let pool = Pool::current();
        let ranges = pool.chunks(rel.len(), PART_PAR_MIN);
        let hists = pool.map(&ranges, |_, range| {
            let mut h = vec![0u64; fanout];
            for &k in &rel.keys[range.clone()] {
                h[first.local_index(k >> base_bits) as usize] += 1;
            }
            h
        });
        let mut counts = vec![0u64; fanout];
        for h in &hists {
            for (p, &c) in h.iter().enumerate() {
                counts[p] += c;
            }
        }
        let (mut current, base) = PartitionedRelation::from_counts(
            self.config.bucket_capacity,
            first.bits,
            base_bits,
            &counts,
        );
        let allocs = current.pool.num_buckets() as u64;
        // Exclusive per-chunk write cursors: chunk c starts partition p at
        // base[p] plus everything earlier chunks contribute to p.
        let chunk_starts: Vec<Vec<usize>> = {
            let mut cursor = base;
            hists
                .iter()
                .map(|h| {
                    let start = cursor.clone();
                    for (p, &c) in h.iter().enumerate() {
                        cursor[p] += c as usize;
                    }
                    start
                })
                .collect()
        };
        {
            let (keys, pays) = current.columns_mut();
            let key_slots = DisjointSlice::new(keys);
            let pay_slots = DisjointSlice::new(pays);
            pool.map(&ranges, |c, range| {
                let mut cursor = chunk_starts[c].clone();
                for i in range.clone() {
                    let p = first.local_index(rel.keys[i] >> base_bits) as usize;
                    // SAFETY: the prefix sums give every (chunk, partition)
                    // a private slot range; each slot has one writer.
                    unsafe {
                        key_slots.write(cursor[p], rel.keys[i]);
                        pay_slots.write(cursor[p], rel.payloads[i]);
                    }
                    cursor[p] += 1;
                }
            });
        }
        passes.push(self.pass_stats(first, rel.len() as u64, allocs, 1.0, 1, 0));

        // Refinement passes: scan the previous pass's bucket chains.
        // Fused refinement may finalize parents early (or skip a pass
        // wholesale when every parent finalized); a follower replays the
        // recorded decisions instead of consulting its own sizes.
        let mut refine_plan = RefinePlan::default();
        for (k, &pass) in plan.passes()[1..].iter().enumerate() {
            let finalized = match follow {
                Some(plan) => {
                    let decisions = plan
                        .finalized
                        .get(k)
                        .cloned()
                        .unwrap_or_else(|| vec![false; current.fanout()]);
                    assert_eq!(
                        decisions.len(),
                        current.fanout(),
                        "followed refine plan disagrees with the pass structure"
                    );
                    decisions
                }
                None => self.decide(&current),
            };
            if finalized.iter().all(|&f| f) {
                // Every parent already fits the build budget: the pass is
                // not launched at all and the plan ends at this depth.
                refine_plan.finalized.push(finalized);
                continue;
            }
            let (next, stats) = self.refine(&current, pass, &finalized);
            refine_plan.finalized.push(finalized);
            current = next;
            passes.push(stats);
        }

        PartitionOutcome { partitioned: current, passes, refine_plan }
    }

    fn refine(
        &self,
        parent: &PartitionedRelation,
        pass: PassBits,
        finalized: &[bool],
    ) -> (PartitionedRelation, PassStats) {
        let new_bits = pass.shift + pass.bits;
        let local_fanout = pass.fanout() as usize;
        let shift = pass.shift as usize;
        let live: Vec<usize> =
            (0..parent.fanout()).filter(|&p| !parent.chains[p].is_empty()).collect();
        // Finalized parents carry over whole: their tuples land at child
        // index `p` (local digit 0) and the kernel never touches them —
        // the chain is re-linked under its new index, one random write.
        let refined: Vec<usize> = live.iter().copied().filter(|&p| !finalized[p]).collect();
        let carried: Vec<usize> = live.iter().copied().filter(|&p| finalized[p]).collect();
        // Work units for load balancing: buckets (bucket-at-a-time) or
        // whole chains (partition-at-a-time). The functional result is
        // identical; only the imbalance factor and the per-unit metadata
        // re-initialization differ (paper §III-A).
        let mut unit_weights: Vec<u64> = Vec::new();
        for &p in &refined {
            match self.config.assignment {
                PassAssignment::BucketAtATime => {
                    for b in parent.buckets_of(p) {
                        unit_weights.push(parent.pool.len_of(b) as u64);
                    }
                }
                PassAssignment::PartitionAtATime => {
                    unit_weights.push(parent.partition_len(p));
                }
            }
        }
        // Parents refine independently: every child partition
        // `p | (local << shift)` belongs to exactly one parent `p`, so
        // per-parent counting and scattering touch disjoint slot ranges
        // with no cross-parent offsets, and each child's tuple order is
        // its parent's chain order — identical to the serial scan. A
        // carried parent's child index `p` collides with no refined child:
        // those are `q | (local << shift)` with `q` refined, and `q ≠ p`.
        let pool = Pool::current();
        let per_parent = pool.map(&refined, |_, &p| {
            let mut h = vec![0u64; local_fanout];
            for t in parent.tuples_of(p) {
                h[pass.local_index(t.key >> parent.base_bits) as usize] += 1;
            }
            h
        });
        let mut counts = vec![0u64; 1 << new_bits];
        for (h, &p) in per_parent.iter().zip(&refined) {
            for (local, &c) in h.iter().enumerate() {
                counts[p | (local << shift)] = c;
            }
        }
        for &p in &carried {
            counts[p] = parent.partition_len(p);
        }
        let (mut next, base) = PartitionedRelation::from_counts(
            self.config.bucket_capacity,
            new_bits,
            parent.base_bits,
            &counts,
        );
        // Carried chains keep their buckets; only refined children draw
        // from the pool. (The physical copy below is simulation
        // bookkeeping — the modeled kernel re-links, it does not move.)
        let carried_buckets: u64 = carried.iter().map(|&p| next.chain_buckets(p) as u64).sum();
        let allocs = next.pool.num_buckets() as u64 - carried_buckets;
        {
            let (keys, pays) = next.columns_mut();
            let key_slots = DisjointSlice::new(keys);
            let pay_slots = DisjointSlice::new(pays);
            pool.map(&live, |_, &p| {
                if finalized[p] {
                    for (cursor, t) in (base[p]..).zip(parent.tuples_of(p)) {
                        // SAFETY: the carried child `p` is a partition of
                        // its own; every slot has exactly one writer.
                        unsafe {
                            key_slots.write(cursor, t.key);
                            pay_slots.write(cursor, t.payload);
                        }
                    }
                    return;
                }
                let mut cursor: Vec<usize> =
                    (0..local_fanout).map(|local| base[p | (local << shift)]).collect();
                for t in parent.tuples_of(p) {
                    let local = pass.local_index(t.key >> parent.base_bits) as usize;
                    // SAFETY: children of distinct parents are disjoint
                    // partitions, so every slot has exactly one writer.
                    unsafe {
                        key_slots.write(cursor[local], t.key);
                        pay_slots.write(cursor[local], t.payload);
                    }
                    cursor[local] += 1;
                }
            });
        }
        let sms = self.config.device.sms as usize;
        let imbalance = round_robin_imbalance(&unit_weights, sms);
        let n: u64 = refined.iter().map(|&p| parent.partition_len(p)).sum();
        let stats = self.pass_stats(
            pass,
            n,
            allocs,
            imbalance,
            unit_weights.len().max(1) as u64,
            carried.len() as u64,
        );
        (next, stats)
    }

    /// Traffic model of one pass over `n` tuples with `units` work units
    /// (each unit re-initializes the per-partition metadata in shared
    /// memory); `fused` parents were carried whole (one chain re-link
    /// each, no tuple traffic).
    fn pass_stats(
        &self,
        pass: PassBits,
        n: u64,
        buckets_allocated: u64,
        imbalance: f64,
        units: u64,
        fused: u64,
    ) -> PassStats {
        let mut cost = KernelCost::ZERO;
        cost.add_coalesced(8 * n); // read keys+payloads
        if self.config.write_combining {
            // Software write-combining (§III-A): tuples stage into and out
            // of the shared-memory shuffle tile, and the bucket writes
            // leave the SM as full coalesced sectors.
            cost.add_coalesced(8 * n); // write to bucket chains
            cost.add_shared(2 * 8 * n);
        } else {
            // Naive scatter straight from registers: no staging traffic,
            // but a warp's 32 stores land in up to `min(32, fanout)`
            // distinct sectors — each a separate memory transaction.
            let sectors_per_warp = u64::from(pass.fanout()).min(32);
            cost.add_random(n.div_ceil(32) * sectors_per_warp);
        }
        // One shared-memory atomic per tuple: the partition's offset
        // counter.
        cost.add_shared_atomics(n);
        // Partition-index arithmetic and flow control.
        cost.add_instructions(10 * n);
        // Pool allocations are device-memory atomics plus a random write
        // linking the chain.
        cost.add_global_atomics(buckets_allocated);
        cost.add_random(buckets_allocated);
        // Per-unit metadata (re)initialization: one offset + one bucket
        // pointer per in-flight partition of this pass, plus fetching the
        // unit's chain descriptors from device memory — the "more time
        // initializing internal data structures and accessing data in the
        // GPU memory" that bucket-at-a-time pays on uniform inputs
        // (paper §III-A; fine units = many fetches).
        let fanout = u64::from(pass.fanout());
        cost.add_shared(units * fanout * 8);
        cost.add_instructions(units * fanout);
        cost.add_random(2 * units);
        // Re-linking a finalized parent's chain under its child index is
        // one random pointer write.
        cost.add_random(fused);
        let seconds = cost.time(&self.config.device) * imbalance;
        PassStats { cost, seconds, imbalance, buckets_allocated, fused_parents: fused }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcj_gpu::DeviceSpec;
    use hcj_workload::{KeyDistribution, RelationSpec};
    use std::collections::HashMap;

    fn config(radix_bits: u32) -> GpuJoinConfig {
        let mut c = GpuJoinConfig::paper_default(DeviceSpec::gtx1080());
        c.radix_bits = radix_bits;
        c.bucket_capacity = 1024;
        c.partition_block_threads = 1024;
        c
    }

    fn check_is_correct_partition(rel: &Relation, out: &PartitionedRelation) {
        let mask = (out.fanout() - 1) as u32;
        let mut seen = 0u64;
        for p in 0..out.fanout() {
            for t in out.tuples_of(p) {
                assert_eq!(t.key & mask, p as u32, "tuple in wrong partition");
                seen += 1;
            }
        }
        assert_eq!(seen, rel.len() as u64, "tuples lost or duplicated");
        // Multiset equality via key counts.
        let mut want: HashMap<u32, i64> = HashMap::new();
        for t in rel.iter() {
            *want.entry(t.key).or_default() += 1;
        }
        for p in 0..out.fanout() {
            for t in out.tuples_of(p) {
                *want.entry(t.key).or_default() -= 1;
            }
        }
        assert!(want.values().all(|&c| c == 0), "multiset mismatch");
    }

    #[test]
    fn single_pass_partitions_correctly() {
        let rel = RelationSpec::unique(10_000, 1).generate();
        let cfg = config(6);
        let out = GpuPartitioner::new(&cfg).partition(&rel);
        assert_eq!(out.passes.len(), 1);
        check_is_correct_partition(&rel, &out.partitioned);
    }

    #[test]
    fn multi_pass_partitions_correctly() {
        let rel = RelationSpec::unique(50_000, 2).generate();
        let cfg = config(12); // two passes of 6 bits
        let out = GpuPartitioner::new(&cfg).partition(&rel);
        assert_eq!(out.passes.len(), 2);
        assert_eq!(out.partitioned.fanout(), 1 << 12);
        check_is_correct_partition(&rel, &out.partitioned);
    }

    #[test]
    fn zero_bits_gives_one_partition() {
        let rel = RelationSpec::unique(1000, 3).generate();
        let cfg = config(0);
        let out = GpuPartitioner::new(&cfg).partition(&rel);
        assert_eq!(out.partitioned.fanout(), 1);
        assert_eq!(out.partitioned.partition_len(0), 1000);
    }

    #[test]
    fn uniform_partition_sizes_are_even() {
        let rel = RelationSpec::unique(1 << 16, 4).generate();
        let cfg = config(8);
        let out = GpuPartitioner::new(&cfg).partition(&rel);
        for p in 0..256 {
            assert_eq!(out.partitioned.partition_len(p), 256);
        }
    }

    #[test]
    fn passes_report_positive_time_and_traffic() {
        let rel = RelationSpec::unique(100_000, 5).generate();
        let cfg = config(10);
        let out = GpuPartitioner::new(&cfg).partition(&rel);
        for pass in &out.passes {
            assert!(pass.seconds > 0.0);
            assert!(pass.cost.coalesced_bytes >= 2 * 8 * 100_000);
            assert!(pass.imbalance >= 1.0);
        }
        assert!(out.total_seconds() > 0.0);
        assert!(out.peak_pool_bytes() > 0);
    }

    #[test]
    fn skew_hurts_partition_at_a_time_more() {
        let rel = RelationSpec {
            tuples: 200_000,
            distribution: KeyDistribution::Zipf { distinct: 1 << 20, theta: 1.0 },
            payload_width: 4,
            seed: 6,
        }
        .generate();
        let mut bucket_cfg = config(12);
        bucket_cfg.assignment = PassAssignment::BucketAtATime;
        let mut chain_cfg = config(12);
        chain_cfg.assignment = PassAssignment::PartitionAtATime;
        let by_bucket = GpuPartitioner::new(&bucket_cfg).partition(&rel);
        let by_chain = GpuPartitioner::new(&chain_cfg).partition(&rel);
        // Functional results agree.
        assert_eq!(by_bucket.partitioned.total_tuples(), by_chain.partitioned.total_tuples());
        // The refinement pass (index 1) must be more imbalanced per chain.
        assert!(
            by_chain.passes[1].imbalance > by_bucket.passes[1].imbalance,
            "chain {} vs bucket {}",
            by_chain.passes[1].imbalance,
            by_bucket.passes[1].imbalance
        );
        assert!(by_chain.passes[1].seconds > by_bucket.passes[1].seconds);
    }

    #[test]
    fn uniform_favors_partition_at_a_time() {
        // For uniform data, bucket-at-a-time pays more metadata
        // re-initialization (the trade-off the paper accepts).
        let rel = RelationSpec::unique(1 << 18, 7).generate();
        let mut bucket_cfg = config(14);
        bucket_cfg.assignment = PassAssignment::BucketAtATime;
        bucket_cfg.bucket_capacity = 1024;
        let mut chain_cfg = bucket_cfg.clone();
        chain_cfg.assignment = PassAssignment::PartitionAtATime;
        let by_bucket = GpuPartitioner::new(&bucket_cfg).partition(&rel);
        let by_chain = GpuPartitioner::new(&chain_cfg).partition(&rel);
        assert!(
            by_bucket.passes[1].cost.shared_bytes > by_chain.passes[1].cost.shared_bytes,
            "bucket-at-a-time must pay more per-unit init traffic"
        );
    }

    #[test]
    fn base_shift_partitions_on_higher_bits() {
        // All keys share the low nibble 0x3 (as if CPU-partitioned 16-way);
        // the GPU refines on bits [4, 10).
        let rel: Relation =
            (0..4096u32).map(|i| hcj_workload::Tuple { key: (i << 4) | 0x3, payload: i }).collect();
        let cfg = config(6);
        let out = GpuPartitioner::new(&cfg).partition_with_base(&rel, 4);
        assert_eq!(out.partitioned.base_bits, 4);
        assert_eq!(out.partitioned.fixed_bits(), 10);
        let mut seen = 0u64;
        for p in 0..out.partitioned.fanout() {
            for t in out.partitioned.tuples_of(p) {
                assert_eq!(((t.key >> 4) & 0x3F) as usize, p);
                assert_eq!(t.key & 0xF, 0x3);
                seen += 1;
            }
        }
        assert_eq!(seen, 4096);
    }

    /// Fusion-aware invariant: the fixed low bits every tuple of a child
    /// partition shares are the child's index bits up to the depth its
    /// refinement actually reached — carried parents stop at their pass's
    /// shift, refined children carry the full index. The weakest common
    /// guarantee is agreement on the *first* pass's bits, plus multiset
    /// preservation; the join kernels compare full keys, so deeper
    /// disagreement only lengthens chains.
    fn check_is_fused_partition(rel: &Relation, out: &PartitionedRelation, first_bits: u32) {
        let mask = (1u32 << first_bits) - 1;
        let mut seen = 0u64;
        for p in 0..out.fanout() {
            for t in out.tuples_of(p) {
                assert_eq!(t.key & mask, (p as u32) & mask, "tuple in wrong parent");
                seen += 1;
            }
        }
        assert_eq!(seen, rel.len() as u64, "tuples lost or duplicated");
        let mut want: HashMap<u32, i64> = HashMap::new();
        for t in rel.iter() {
            *want.entry(t.key).or_default() += 1;
        }
        for p in 0..out.fanout() {
            for t in out.tuples_of(p) {
                *want.entry(t.key).or_default() -= 1;
            }
        }
        assert!(want.values().all(|&c| c == 0), "multiset mismatch");
    }

    #[test]
    fn fused_refinement_skips_a_pass_when_every_parent_fits() {
        // 50K tuples, radix 12 (two 6-bit passes): after pass 1 each of
        // the 64 parents holds ~780 tuples ≤ the 4096-element budget, so
        // the refinement pass is never launched.
        let rel = RelationSpec::unique(50_000, 2).generate();
        let mut cfg = config(12);
        cfg.fuse_small_partitions = true;
        let out = GpuPartitioner::new(&cfg).partition(&rel);
        assert_eq!(out.passes.len(), 1, "refinement pass must be skipped");
        assert_eq!(out.partitioned.fanout(), 1 << 6);
        assert!(out.refine_plan.any_fused());
        check_is_correct_partition(&rel, &out.partitioned);
        let unfused = GpuPartitioner::new(&config(12)).partition(&rel);
        assert!(
            out.total_seconds() < unfused.total_seconds(),
            "skipping a pass must be faster: {} vs {}",
            out.total_seconds(),
            unfused.total_seconds()
        );
    }

    #[test]
    fn fused_refinement_carries_only_small_parents_under_skew() {
        // Zipf keys leave some pass-1 parents above the budget (they
        // split) and some below (they carry): a genuinely mixed pass.
        let rel = RelationSpec {
            tuples: 300_000,
            distribution: KeyDistribution::Zipf { distinct: 1 << 20, theta: 1.0 },
            payload_width: 4,
            seed: 9,
        }
        .generate();
        let mut cfg = config(12);
        cfg.fuse_small_partitions = true;
        let partitioner = GpuPartitioner::new(&cfg);
        let out = partitioner.partition(&rel);
        assert_eq!(out.passes.len(), 2, "hot parents must still refine");
        let fused = out.passes[1].fused_parents;
        assert!(fused > 0, "cold parents must carry");
        assert!(out.refine_plan.any_fused());
        check_is_fused_partition(&rel, &out.partitioned, 6);
        // The mixed pass moves fewer tuples than the unfused one.
        let unfused = GpuPartitioner::new(&config(12)).partition(&rel);
        assert!(
            out.passes[1].cost.coalesced_bytes < unfused.passes[1].cost.coalesced_bytes,
            "carried parents contribute no tuple traffic"
        );
        assert!(out.total_seconds() < unfused.total_seconds());
    }

    #[test]
    fn followers_replay_the_build_sides_decisions() {
        // The build side (small) finalizes everything after pass 1; the
        // probe side (large) would have refined on its own. Following
        // must reproduce the build side's structure regardless.
        let r = RelationSpec::unique(50_000, 2).generate();
        let s = RelationSpec::unique(400_000, 9).generate();
        let mut cfg = config(12);
        cfg.fuse_small_partitions = true;
        let partitioner = GpuPartitioner::new(&cfg);
        let r_out = partitioner.partition(&r);
        let s_out = partitioner.partition_following(&s, &r_out.refine_plan);
        assert_eq!(s_out.partitioned.fanout_bits, r_out.partitioned.fanout_bits);
        assert_eq!(s_out.partitioned.fanout(), 1 << 6);
        check_is_correct_partition(&s, &s_out.partitioned);
        // Left to its own devices, s (6250 tuples/parent) refines fully.
        let s_alone = partitioner.partition(&s);
        assert_eq!(s_alone.partitioned.fanout(), 1 << 12);
    }

    #[test]
    fn following_an_all_false_plan_is_plain_partitioning() {
        let rel = RelationSpec::unique(60_000, 10).generate();
        let cfg = config(12); // fusion off
        let partitioner = GpuPartitioner::new(&cfg);
        let a = partitioner.partition(&rel);
        assert!(!a.refine_plan.any_fused());
        let b = partitioner.partition_following(&rel, &a.refine_plan);
        assert_eq!(a.partitioned.fanout(), b.partitioned.fanout());
        assert_eq!(a.total_seconds(), b.total_seconds());
        for p in 0..a.partitioned.fanout() {
            assert_eq!(a.partitioned.partition_len(p), b.partitioned.partition_len(p));
        }
    }

    #[test]
    fn naive_scatter_is_slower_and_more_random() {
        let rel = RelationSpec::unique(200_000, 11).generate();
        let wc_cfg = config(8);
        let mut naive_cfg = config(8);
        naive_cfg.write_combining = false;
        let wc = GpuPartitioner::new(&wc_cfg).partition(&rel);
        let naive = GpuPartitioner::new(&naive_cfg).partition(&rel);
        // Functionally identical — write-combining is a traffic model.
        check_is_correct_partition(&rel, &naive.partitioned);
        assert_eq!(wc.partitioned.total_tuples(), naive.partitioned.total_tuples());
        assert!(
            naive.passes[0].cost.random_transactions > wc.passes[0].cost.random_transactions,
            "uncombined warp stores must issue per-sector transactions"
        );
        assert!(naive.passes[0].cost.coalesced_bytes < wc.passes[0].cost.coalesced_bytes);
        assert!(
            naive.total_seconds() > wc.total_seconds(),
            "naive {} vs combined {}",
            naive.total_seconds(),
            wc.total_seconds()
        );
    }

    #[test]
    fn bucket_allocations_match_chain_structure() {
        let rel = RelationSpec::unique(10_000, 8).generate();
        let cfg = config(4);
        let out = GpuPartitioner::new(&cfg).partition(&rel);
        let total_buckets: usize =
            (0..out.partitioned.fanout()).map(|p| out.partitioned.chain_buckets(p)).sum();
        assert_eq!(out.passes[0].buckets_allocated, total_buckets as u64);
    }
}
