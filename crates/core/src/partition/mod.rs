//! Radix partitioning on the (modeled) GPU.
//!
//! The output layout follows paper §III-A: each partition is a linked list
//! of fixed-capacity buckets drawn from a preallocated pool. Bucket
//! capacity is a multiple of the thread-block size so that chain scans stay
//! coalesced; metadata (per-partition fill offset + current bucket) lives
//! in shared memory during a pass.

mod bucket;
pub(crate) mod gpu;
mod histogram;

/// Minimum tuples per worker chunk inside a partitioning pass: below this
/// the per-chunk histogram and cursor bookkeeping outweighs the scan.
pub(crate) const PART_PAR_MIN: usize = 1 << 15;

pub use bucket::{BucketPool, PartitionChain, PartitionedRelation, NIL_BUCKET};
pub use gpu::{GpuPartitioner, PartitionOutcome, PassStats, RefinePlan};
pub use histogram::HistogramPartitioner;
