//! The histogram-based GPU radix partitioner — the alternative the paper
//! argues against (§VI, vs. Rui & Tu SSDBM'17: "our approach avoids an
//! extra pass on each partitioning step by using GPU atomic operations
//! instead of building histograms").
//!
//! Classic two-phase structure per pass: (1) a counting pass builds a
//! per-block histogram of partition sizes; (2) a prefix sum turns counts
//! into exact write offsets; (3) a scatter pass re-reads the input and
//! writes every tuple to its final, contiguous position. The output is
//! dense (no bucket chains, no pool slack) — but every pass reads the
//! input *twice* and runs an extra kernel, which is exactly the traffic
//! the paper's chained-bucket design eliminates.

use hcj_gpu::KernelCost;
use hcj_host::{DisjointSlice, Pool};
use hcj_workload::Relation;

use crate::config::GpuJoinConfig;
use crate::partition::gpu::{PartitionOutcome, PassStats};
use crate::partition::PartitionedRelation;

/// The two-phase histogram partitioner (comparator to
/// [`crate::partition::GpuPartitioner`]).
pub struct HistogramPartitioner<'a> {
    pub config: &'a GpuJoinConfig,
}

impl<'a> HistogramPartitioner<'a> {
    pub fn new(config: &'a GpuJoinConfig) -> Self {
        HistogramPartitioner { config }
    }

    /// Partition `rel` on the low `config.radix_bits`, producing the same
    /// logical result as the bucket-chain partitioner (partitions are
    /// stored as single exact-size "buckets").
    pub fn partition(&self, rel: &Relation) -> PartitionOutcome {
        let plan = self.config.pass_plan();
        let mut passes = Vec::with_capacity(plan.num_passes());

        // Work through the passes over dense intermediate vectors.
        let pool = Pool::current();
        let mut keys: Vec<u32> = rel.keys.clone();
        let mut pays: Vec<u32> = rel.payloads.clone();
        let mut bounds: Vec<usize> = vec![0, keys.len()]; // partition boundaries so far
        for &pass in plan.passes() {
            let fanout = pass.fanout() as usize;
            let n = keys.len() as u64;
            let mut new_keys = vec![0u32; keys.len()];
            let mut new_pays = vec![0u32; pays.len()];
            // Windows are disjoint input ranges whose output also stays
            // inside [lo, hi): each can run on its own pool worker writing
            // through disjoint slots, identical to the serial loop.
            let windows: Vec<(usize, usize)> = bounds.windows(2).map(|w| (w[0], w[1])).collect();
            let hists = {
                let key_slots = DisjointSlice::new(&mut new_keys);
                let pay_slots = DisjointSlice::new(&mut new_pays);
                pool.map(&windows, |_, &(lo, hi)| {
                    // Phase 1: histogram.
                    let mut hist = vec![0usize; fanout];
                    for &k in &keys[lo..hi] {
                        hist[pass.local_index(k) as usize] += 1;
                    }
                    // Phase 2: exclusive prefix sum -> write cursors.
                    let mut cursors = vec![0usize; fanout];
                    let mut acc = lo;
                    for q in 0..fanout {
                        cursors[q] = acc;
                        acc += hist[q];
                    }
                    // Phase 3: scatter.
                    for i in lo..hi {
                        let q = pass.local_index(keys[i]) as usize;
                        // SAFETY: cursors stay within this window's
                        // [lo, hi); windows are disjoint → one writer per
                        // slot.
                        unsafe {
                            key_slots.write(cursors[q], keys[i]);
                            pay_slots.write(cursors[q], pays[i]);
                        }
                        cursors[q] += 1;
                    }
                    hist
                })
            };
            let mut new_bounds = Vec::with_capacity(windows.len() * fanout + 1);
            new_bounds.push(0usize);
            for (&(lo, _), hist) in windows.iter().zip(&hists) {
                let mut acc = lo;
                for &h in hist {
                    acc += h;
                    new_bounds.push(acc);
                }
            }
            keys = new_keys;
            pays = new_pays;
            bounds = new_bounds;

            // Traffic: the histogram pass re-reads every key; the scatter
            // pass reads tuples and writes them (coalesced through the
            // same shared-memory shuffle as the chained variant); prefix
            // sums are cheap. Two kernels per pass.
            let mut cost = KernelCost::ZERO;
            cost.add_coalesced(4 * n); // histogram: keys only
            cost.add_shared_atomics(n); // histogram counters
            cost.add_coalesced(8 * n); // scatter: read tuples
            cost.add_coalesced(8 * n); // scatter: write tuples
            cost.add_shared(2 * 8 * n); // shuffle staging
            cost.add_shared_atomics(n); // scatter cursors
            cost.add_instructions(14 * n + (bounds.len() as u64) * 4);
            let seconds =
                cost.time(&self.config.device) + 2.0 * self.config.device.launch_overhead_s;
            passes.push(PassStats {
                cost,
                seconds,
                imbalance: 1.0,
                buckets_allocated: 0,
                fused_parents: 0,
            });
        }

        // Materialize into the common PartitionedRelation shape (each
        // partition one exact chain; capacity can hold the largest).
        let largest = bounds.windows(2).map(|w| w[1] - w[0]).max().unwrap_or(1).max(1);
        let capacity = largest.next_multiple_of(32);
        // Segments are contiguous runs of one radix partition, but the
        // multi-pass refinement leaves them in parent-major order: derive
        // the partition index from the keys themselves.
        let segments: Vec<(usize, usize, usize)> = bounds
            .windows(2)
            .filter(|w| w[0] < w[1])
            .map(|w| (plan.partition_of(keys[w[0]]) as usize, w[0], w[1]))
            .collect();
        let mut counts = vec![0u64; 1 << plan.total_bits()];
        for &(p, lo, hi) in &segments {
            counts[p] += (hi - lo) as u64;
        }
        let (mut out, base) =
            PartitionedRelation::from_counts(capacity, plan.total_bits(), 0, &counts);
        {
            let mut cursor = base;
            let starts: Vec<usize> = segments
                .iter()
                .map(|&(p, lo, hi)| {
                    let s = cursor[p];
                    cursor[p] += hi - lo;
                    s
                })
                .collect();
            let (out_keys, out_pays) = out.columns_mut();
            let key_slots = DisjointSlice::new(out_keys);
            let pay_slots = DisjointSlice::new(out_pays);
            pool.map(&segments, |s, &(p, lo, hi)| {
                for i in lo..hi {
                    debug_assert_eq!(plan.partition_of(keys[i]) as usize, p);
                    // SAFETY: the running cursors give every segment a
                    // private slot run; one writer per slot.
                    unsafe {
                        key_slots.write(starts[s] + (i - lo), keys[i]);
                        pay_slots.write(starts[s] + (i - lo), pays[i]);
                    }
                }
            });
        }
        PartitionOutcome { partitioned: out, passes, refine_plan: Default::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::GpuPartitioner;
    use hcj_gpu::DeviceSpec;
    use hcj_workload::RelationSpec;

    fn config(bits: u32) -> GpuJoinConfig {
        GpuJoinConfig::paper_default(DeviceSpec::gtx1080())
            .with_radix_bits(bits)
            .with_tuned_buckets(1 << 14)
    }

    #[test]
    fn produces_a_correct_radix_partition() {
        let rel = RelationSpec::unique(20_000, 91).generate();
        let cfg = config(7);
        let out = HistogramPartitioner::new(&cfg).partition(&rel);
        assert_eq!(out.partitioned.fanout(), 128);
        let mut seen = 0u64;
        for p in 0..128 {
            for t in out.partitioned.tuples_of(p) {
                assert_eq!(t.key & 127, p as u32);
                seen += 1;
            }
        }
        assert_eq!(seen, 20_000);
    }

    #[test]
    fn agrees_with_the_chained_partitioner_per_partition() {
        let rel = RelationSpec::zipf(30_000, 1 << 16, 0.8, 92).generate();
        let cfg = config(9);
        let hist = HistogramPartitioner::new(&cfg).partition(&rel);
        let chain = GpuPartitioner::new(&cfg).partition(&rel);
        for p in 0..hist.partitioned.fanout() {
            let mut a: Vec<u32> = hist.partitioned.tuples_of(p).map(|t| t.key).collect();
            let mut b: Vec<u32> = chain.partitioned.tuples_of(p).map(|t| t.key).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "partition {p}");
        }
    }

    #[test]
    fn histogram_pays_extra_read_traffic() {
        // Per pass, the histogram variant reads every key twice — the §VI
        // argument for the paper's atomic bucket chains.
        let rel = RelationSpec::unique(1 << 18, 93).generate();
        let cfg = config(12);
        let hist = HistogramPartitioner::new(&cfg).partition(&rel);
        let chain = GpuPartitioner::new(&cfg).partition(&rel);
        let h_bytes: u64 = hist.passes.iter().map(|p| p.cost.coalesced_bytes).sum();
        let c_bytes: u64 = chain.passes.iter().map(|p| p.cost.coalesced_bytes).sum();
        assert!(h_bytes > c_bytes, "histogram {h_bytes} vs chained {c_bytes}");
        assert!(
            hist.total_seconds() > chain.total_seconds(),
            "histogram {} vs chained {}",
            hist.total_seconds(),
            chain.total_seconds()
        );
    }

    #[test]
    fn multi_pass_matches_direct_radix() {
        let rel = RelationSpec::unique(4096, 94).generate();
        let cfg = config(10); // 2 passes
        let out = HistogramPartitioner::new(&cfg).partition(&rel);
        assert_eq!(out.passes.len(), 2);
        for p in 0..out.partitioned.fanout() {
            for t in out.partitioned.tuples_of(p) {
                assert_eq!((t.key & 1023) as usize, p);
            }
        }
    }
}
