//! Executing the partitioned join over alternative data-transfer
//! mechanisms: UVA zero-copy and Unified Memory (paper §V-F, Figs. 21–22).
//!
//! These variants run the *same* functional join; what changes is which
//! phase's memory traffic crosses PCIe instead of staying in device
//! memory. The comparison demonstrates why the paper manages transfers
//! explicitly: the partitioning scatter and the probe's irregular reads
//! are exactly the access patterns UVA and UM serve worst.

use hcj_gpu::{KernelCost, UnifiedMemory, UvaAccessPattern};
use hcj_workload::oracle::JoinCheck;
use hcj_workload::Relation;

use crate::config::GpuJoinConfig;
use crate::join::join_all_copartitions;
use crate::output::OutputSink;
use crate::partition::GpuPartitioner;

/// Which phase is the last to run over the slow mechanism
/// (Fig. 21's x-axis: "last step using technique Y").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransferMechanism {
    /// Baseline: data already GPU-resident (the §III join as-is).
    GpuResident,
    /// Inputs are read over UVA (sequential zero-copy) by the first
    /// partitioning pass; everything after runs in device memory.
    UvaLoad,
    /// Partitioning runs over UVA: input reads stream, but every bucket
    /// write is a scattered zero-copy store across PCIe.
    UvaPartition,
    /// The whole algorithm over UVA: partitioning as above, and the join
    /// phase's co-partition reads also cross PCIe.
    UvaJoin,
    /// Inputs mapped through Unified Memory: pages migrate on first touch
    /// (sequential scan → one fault per page), then the algorithm runs in
    /// device memory.
    UnifiedLoad,
}

/// Throughput and correctness summary of one mechanism variant.
#[derive(Clone, Debug)]
pub struct MechanismOutcome {
    pub mechanism: TransferMechanism,
    pub check: JoinCheck,
    pub seconds: f64,
    pub tuples_in: u64,
}

impl MechanismOutcome {
    pub fn throughput_tuples_per_s(&self) -> f64 {
        self.tuples_in as f64 / self.seconds
    }
}

/// Run the partitioned join with the given mechanism for in-GPU-sized data
/// (Fig. 21).
pub fn run_with_mechanism(
    config: &GpuJoinConfig,
    r: &Relation,
    s: &Relation,
    mechanism: TransferMechanism,
) -> MechanismOutcome {
    let device = &config.device;
    let partitioner = GpuPartitioner::new(config);
    let r_out = partitioner.partition(r);
    let s_out = partitioner.partition_following(s, &r_out.refine_plan);
    let mut sink = OutputSink::new(config.output, u64::from(config.join_block_threads));
    let mut join_cost =
        join_all_copartitions(config, &r_out.partitioned, &s_out.partitioned, &mut sink);
    join_cost += sink.cost();

    let part_seconds = r_out.total_seconds() + s_out.total_seconds();
    let join_seconds = join_cost.time(device);
    let input_bytes = r.bytes() + s.bytes();
    let moved_bytes = 8 * (r_out.partitioned.total_tuples() + s_out.partitioned.total_tuples());
    let passes = r_out.passes.len() as u64;

    let seconds = match mechanism {
        TransferMechanism::GpuResident => part_seconds + join_seconds,
        TransferMechanism::UvaLoad => {
            // The first pass's input scan streams over PCIe; it cannot go
            // faster than the link, and the pass's own compute overlaps.
            let load = UvaAccessPattern::Sequential.transfer_time(device, input_bytes);
            part_seconds.max(load) + join_seconds
        }
        TransferMechanism::UvaPartition => {
            // Every pass writes its buckets as scattered 8-byte zero-copy
            // stores, and later passes read them back over the link.
            let scatter = UvaAccessPattern::RandomSector { access_bytes: 8 }
                .transfer_time(device, moved_bytes * passes);
            let reads = UvaAccessPattern::Sequential.transfer_time(device, input_bytes * passes);
            part_seconds.max(scatter + reads) + join_seconds
        }
        TransferMechanism::UvaJoin => {
            let scatter = UvaAccessPattern::RandomSector { access_bytes: 8 }
                .transfer_time(device, moved_bytes * passes);
            let reads = UvaAccessPattern::Sequential.transfer_time(device, input_bytes * passes);
            // The join phase re-reads both partitioned relations across
            // the link: co-partition staging is sequential per chain, the
            // hash-table traffic itself stays in shared memory.
            let join_reads = UvaAccessPattern::Sequential.transfer_time(device, moved_bytes);
            part_seconds.max(scatter + reads) + join_seconds.max(join_reads)
        }
        TransferMechanism::UnifiedLoad => {
            // One page fault per input page; the pager then holds
            // everything (this variant is for GPU-sized data).
            let mut um = UnifiedMemory::new(device.um_page_bytes, device.device_mem_bytes);
            um.access_range(0, input_bytes, false);
            let fault_overhead_s = 20.0e-6; // driver fault handling per page
            let load = um.total_bus_bytes() as f64 / device.pcie_bandwidth
                + um.faults() as f64 * fault_overhead_s;
            part_seconds.max(load) + join_seconds
        }
    };

    MechanismOutcome {
        mechanism,
        check: sink.check(),
        seconds,
        tuples_in: (r.len() + s.len()) as u64,
    }
}

/// Fig. 22's out-of-GPU comparison: the same join when the working set
/// exceeds device memory, per mechanism. Returns `(um, uva)` outcomes; the
/// co-processing bar comes from [`crate::CoProcessingJoin`].
pub fn run_out_of_gpu_mechanisms(
    config: &GpuJoinConfig,
    r: &Relation,
    s: &Relation,
) -> (MechanismOutcome, MechanismOutcome) {
    let device = &config.device;
    let partitioner = GpuPartitioner::new(config);
    let r_out = partitioner.partition(r);
    let s_out = partitioner.partition_following(s, &r_out.refine_plan);
    let mut sink = OutputSink::new(config.output, u64::from(config.join_block_threads));
    let mut join_cost =
        join_all_copartitions(config, &r_out.partitioned, &s_out.partitioned, &mut sink);
    join_cost += sink.cost();
    let part_seconds = r_out.total_seconds() + s_out.total_seconds();
    let join_seconds = join_cost.time(device);
    let input_bytes = r.bytes() + s.bytes();
    let moved_bytes = 8 * (r_out.partitioned.total_tuples() + s_out.partitioned.total_tuples());
    let passes = r_out.passes.len() as u64;
    let tuples_in = (r.len() + s.len()) as u64;

    // --- Unified Memory: the partitioning scatter touches bucket pages all
    // over an output region larger than device memory; the LRU pager
    // thrashes, re-migrating pages whose buckets are revisited after
    // eviction. Drive the real pager with the real bucket-write trace.
    let um_seconds = {
        let mut um = UnifiedMemory::new(device.um_page_bytes, device.device_mem_bytes);
        // Input scan faults (sequential, read-only).
        um.access_range(0, input_bytes, false);
        // Scatter trace: one write per tuple at its final partition's
        // region, laid out after the input.
        let fanout = r_out.partitioned.fanout() as u64;
        let region = (moved_bytes / fanout).max(1);
        let mut cursor = vec![0u64; fanout as usize];
        for pr in [&r_out.partitioned, &s_out.partitioned] {
            for (p, cur) in cursor.iter_mut().enumerate().take(pr.fanout()) {
                for t in pr.tuples_of(p) {
                    let _ = t;
                    let off = input_bytes + p as u64 * region + (*cur * 8) % region;
                    *cur += 1;
                    um.access_range(off, 8, true);
                }
            }
        }
        let fault_overhead_s = 20.0e-6;
        let bus = um.total_bus_bytes() as f64 / device.pcie_bandwidth
            + um.faults() as f64 * fault_overhead_s;
        part_seconds.max(bus) + join_seconds
    };
    let um = MechanismOutcome {
        mechanism: TransferMechanism::UnifiedLoad,
        check: sink.check(),
        seconds: um_seconds,
        tuples_in,
    };

    // --- UVA: as UvaJoin, all passes and the join stream across the link.
    let uva_seconds = {
        let scatter = UvaAccessPattern::RandomSector { access_bytes: 8 }
            .transfer_time(device, moved_bytes * passes);
        let reads = UvaAccessPattern::Sequential.transfer_time(device, input_bytes * passes);
        let join_reads = UvaAccessPattern::Sequential.transfer_time(device, moved_bytes);
        part_seconds.max(scatter + reads) + join_seconds.max(join_reads)
    };
    let uva = MechanismOutcome {
        mechanism: TransferMechanism::UvaJoin,
        check: sink.check(),
        seconds: uva_seconds,
        tuples_in,
    };
    (um, uva)
}

/// Convenience: the extra kernel cost is exposed for tests that inspect
/// which path dominates a variant.
pub fn baseline_join_cost(config: &GpuJoinConfig, r: &Relation, s: &Relation) -> KernelCost {
    let partitioner = GpuPartitioner::new(config);
    let r_out = partitioner.partition(r);
    let s_out = partitioner.partition_following(s, &r_out.refine_plan);
    let mut sink = OutputSink::new(config.output, u64::from(config.join_block_threads));
    join_all_copartitions(config, &r_out.partitioned, &s_out.partitioned, &mut sink)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcj_gpu::DeviceSpec;
    use hcj_workload::generate::canonical_pair;

    fn cfg(tuples: usize) -> GpuJoinConfig {
        GpuJoinConfig::paper_default(DeviceSpec::gtx1080())
            .with_radix_bits(10)
            .with_tuned_buckets(tuples)
    }

    #[test]
    fn all_mechanisms_compute_the_same_join() {
        let (r, s) = canonical_pair(50_000, 50_000, 61);
        let config = cfg(50_000);
        let want = JoinCheck::compute(&r, &s);
        for m in [
            TransferMechanism::GpuResident,
            TransferMechanism::UvaLoad,
            TransferMechanism::UvaPartition,
            TransferMechanism::UvaJoin,
            TransferMechanism::UnifiedLoad,
        ] {
            let out = run_with_mechanism(&config, &r, &s, m);
            assert_eq!(out.check, want, "{m:?}");
        }
    }

    #[test]
    fn fig21_ordering_holds() {
        // GPU-resident >= UVA-load >= UVA-partition >= UVA-join, and
        // UM-load below GPU-resident.
        let (r, s) = canonical_pair(500_000, 500_000, 62);
        let config = cfg(500_000);
        let t = |m| run_with_mechanism(&config, &r, &s, m).throughput_tuples_per_s();
        let resident = t(TransferMechanism::GpuResident);
        let uva_load = t(TransferMechanism::UvaLoad);
        let uva_part = t(TransferMechanism::UvaPartition);
        let uva_join = t(TransferMechanism::UvaJoin);
        let um = t(TransferMechanism::UnifiedLoad);
        assert!(resident >= uva_load, "resident {resident:.3e} vs uva_load {uva_load:.3e}");
        assert!(uva_load > uva_part, "uva_load {uva_load:.3e} vs uva_part {uva_part:.3e}");
        assert!(uva_part >= uva_join, "uva_part {uva_part:.3e} vs uva_join {uva_join:.3e}");
        assert!(um < resident, "um {um:.3e} vs resident {resident:.3e}");
        // The partition-over-UVA collapse is the dramatic one (scattered
        // stores): at least 3x below streaming UVA loads.
        assert!(uva_load > 3.0 * uva_part, "uva_load {uva_load:.3e} vs uva_part {uva_part:.3e}");
    }

    #[test]
    fn out_of_gpu_mechanisms_thrash() {
        // Data 4x the (scaled) device memory: UM must re-migrate pages.
        let device = DeviceSpec::gtx1080().scaled_capacity(1 << 12); // 2 MB
        let config = GpuJoinConfig { device, ..cfg(200_000) };
        let (r, s) = canonical_pair(200_000, 200_000, 63); // 3.2 MB of input
        let (um, uva) = run_out_of_gpu_mechanisms(&config, &r, &s);
        assert_eq!(um.check, JoinCheck::compute(&r, &s));
        assert_eq!(um.check, uva.check);
        // Both collapse well below the PCIe streaming bound of the
        // explicit co-processing approach.
        let pcie_stream_tput = config.device.pcie_bandwidth / 8.0;
        assert!(um.throughput_tuples_per_s() < 0.5 * pcie_stream_tput);
        assert!(uva.throughput_tuples_per_s() < 0.5 * pcie_stream_tput);
    }
}
