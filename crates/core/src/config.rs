//! Configuration of the GPU partitioned join and validation against the
//! device's shared-memory budget.

use hcj_gpu::{DeviceSpec, FaultConfig, Gpu, SharedMemLayout, SharedMemOverflow};
use hcj_sim::Sim;

use crate::radix::PassPlan;

/// Which per-co-partition probe kernel to run (paper §III-B/§III-C, Fig. 5
/// and Fig. 6).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProbeKind {
    /// Shared-memory hash join: hash table with 16-bit offset chains built
    /// by atomic exchange. The paper's default.
    HashJoin,
    /// Warp-ballot nested-loop join (Listing 1).
    NestedLoop,
    /// Hash join with the table in device memory (Fig. 6's comparator).
    DeviceHashJoin,
}

/// What happens to join matches (paper §III-C, Fig. 7).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OutputMode {
    /// Aggregate payloads into per-thread sums merged atomically.
    Aggregate,
    /// Materialize `(key, r_payload, s_payload)` rows via warp-level
    /// shared-memory output buffering.
    Materialize,
}

/// How refinement passes assign work to CUDA blocks (paper §III-A).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PassAssignment {
    /// One bucket at a time, round-robin: balanced under skew (the paper's
    /// choice), at the price of re-initializing partition state per bucket.
    BucketAtATime,
    /// A whole partition chain at a time: cheaper bookkeeping but the
    /// longest chain straggles under skew.
    PartitionAtATime,
}

/// Full configuration of the in-GPU partitioned join.
#[derive(Clone, Debug)]
pub struct GpuJoinConfig {
    pub device: DeviceSpec,
    /// Total radix bits (final fanout = `2^radix_bits`).
    pub radix_bits: u32,
    /// Per-pass fanout cap in bits (shared-memory metadata limit).
    pub max_bits_per_pass: u32,
    /// Threads per block in partitioning kernels (paper: 1024).
    pub partition_block_threads: u32,
    /// Threads per block in join kernels (paper: 512).
    pub join_block_threads: u32,
    /// Shared-memory element budget per co-partition build side
    /// (paper: 4096 elements; Fig. 5 uses 2048).
    pub smem_elements: usize,
    /// Hash-table bucket count in shared memory (paper: 2048; Fig. 5: 256).
    pub hash_buckets: usize,
    /// Bucket capacity in elements; a multiple of the block size to keep
    /// chain scans coalesced (§III-A).
    pub bucket_capacity: usize,
    pub probe: ProbeKind,
    pub output: OutputMode,
    pub assignment: PassAssignment,
    /// In materialization mode, keep at most this many result rows in a
    /// fixed device buffer, overwriting beyond it — the paper's device for
    /// isolating in-GPU performance when skew makes the output explode
    /// (§V-E). `None` materializes everything.
    pub row_cap: Option<usize>,
    /// Deterministic fault injection for the simulated device (`--chaos`).
    /// `None` = no fault layer; every strategy then behaves exactly as
    /// before the layer existed.
    pub faults: Option<FaultConfig>,
    /// Software write-combining in the partitioning kernels (§III-A): stage
    /// tuples through the shared-memory shuffle tile so bucket writes leave
    /// the SM as full coalesced sectors. `false` models the naive kernel
    /// that scatters straight from registers — the tile is not reserved,
    /// and every warp's stores pay one memory transaction per distinct
    /// sector they touch. An ablation knob; the paper's kernel combines.
    pub write_combining: bool,
    /// Fused early-stop refinement: a refinement pass skips any parent
    /// partition that already fits the shared-memory build budget
    /// (`smem_elements`), carrying its bucket chain to the child level
    /// untouched instead of re-scattering it. The probe side must replay
    /// the build side's decisions ([`crate::partition::RefinePlan`]) so
    /// co-partition indices keep matching; strategies handle that. Off by
    /// default — the paper's kernel always runs the full pass plan — and
    /// inert for nested-loop probes, whose cost is quadratic in partition
    /// size (see [`GpuJoinConfig::fusion_active`]).
    pub fuse_small_partitions: bool,
}

impl GpuJoinConfig {
    /// The paper's default configuration ("Annotation & configuration",
    /// §V-B): 2^15 partitions, 4096-element shared memory, 2048 hash
    /// buckets, 1024-thread partition blocks, 512-thread join blocks,
    /// shared-memory hash join, aggregation output.
    pub fn paper_default(device: DeviceSpec) -> Self {
        GpuJoinConfig {
            device,
            radix_bits: 15,
            max_bits_per_pass: 8,
            partition_block_threads: 1024,
            join_block_threads: 512,
            smem_elements: 4096,
            hash_buckets: 2048,
            bucket_capacity: 4096,
            probe: ProbeKind::HashJoin,
            output: OutputMode::Aggregate,
            assignment: PassAssignment::BucketAtATime,
            row_cap: None,
            // Binaries can arm a process-wide chaos config (`repro
            // --chaos`); libraries and tests see `None` unless they opt in
            // via `with_faults`.
            faults: hcj_gpu::faults::ambient(),
            write_combining: true,
            fuse_small_partitions: false,
        }
    }

    /// Toggle software write-combining in the partitioning kernels.
    pub fn with_write_combining(mut self, on: bool) -> Self {
        self.write_combining = on;
        self
    }

    /// Toggle fused early-stop refinement (see the field docs).
    pub fn with_fused_refinement(mut self, on: bool) -> Self {
        self.fuse_small_partitions = on;
        self
    }

    /// Whether refinement passes may finalize small parents early. The
    /// point of partitioning to `smem_elements` is that the *build* side
    /// fits a shared-memory hash table; nested-loop probes gain nothing
    /// from early stopping (their per-pair work is quadratic), so fusion
    /// stays off for them regardless of the flag.
    pub fn fusion_active(&self) -> bool {
        self.fuse_small_partitions && self.probe != ProbeKind::NestedLoop
    }

    /// Largest parent partition a refinement pass may finalize early: the
    /// shared-memory build budget the partitioning is working toward.
    pub fn fuse_threshold(&self) -> u64 {
        self.smem_elements as u64
    }

    pub fn with_radix_bits(mut self, bits: u32) -> Self {
        self.radix_bits = bits;
        self
    }

    /// Arm deterministic device-fault injection for every execution using
    /// this configuration.
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Register this configuration's device with `sim`, arming the fault
    /// plan when one is configured. All strategies build their `Gpu` here
    /// so fault injection covers every path uniformly.
    pub fn build_gpu(&self, sim: &mut Sim) -> Gpu {
        let mut gpu = Gpu::new(sim, self.device.clone());
        if let Some(f) = &self.faults {
            gpu.arm_faults(f.clone());
        }
        gpu
    }

    pub fn with_probe(mut self, probe: ProbeKind) -> Self {
        self.probe = probe;
        self
    }

    /// Set the output mode. Switching to materialization re-fits the
    /// shared-memory layout if needed: the warp-level output buffer must
    /// coexist with the hash table, so the co-partition element budget
    /// shrinks until the block fits (the paper's materialization runs
    /// trade shared-memory elements for the buffer the same way).
    pub fn with_output(mut self, output: OutputMode) -> Self {
        self.output = output;
        while self.smem_elements > 512 && self.validate_join_kernel().is_err() {
            self.smem_elements -= 512;
        }
        self
    }

    pub fn with_assignment(mut self, assignment: PassAssignment) -> Self {
        self.assignment = assignment;
        self
    }

    /// See the `row_cap` field.
    pub fn with_row_cap(mut self, cap: usize) -> Self {
        self.row_cap = Some(cap);
        self
    }

    /// Build the output sink this configuration implies.
    pub fn make_sink(&self) -> crate::output::OutputSink {
        let sink = crate::output::OutputSink::new(self.output, u64::from(self.join_block_threads));
        match self.row_cap {
            Some(cap) => sink.with_row_cap(cap),
            None => sink,
        }
    }

    /// Device bytes a materialized result of `matches` rows occupies,
    /// honoring the row cap (the capped buffer is fixed-size).
    pub fn result_buffer_bytes(&self, matches: u64) -> u64 {
        match (self.output, self.row_cap) {
            (OutputMode::Aggregate, _) => 0,
            (OutputMode::Materialize, Some(cap)) => {
                matches.min(cap as u64) * crate::output::ROW_BYTES
            }
            (OutputMode::Materialize, None) => matches * crate::output::ROW_BYTES,
        }
    }

    /// Pick a bucket capacity suited to `tuples` inputs: roughly twice the
    /// expected final partition size, warp-aligned and clamped to
    /// `[32, 4096]`. Keeps the bucket pool's slack bounded when the fixed
    /// `2^radix_bits` fanout meets a small relation (each non-empty
    /// partition holds at least one bucket).
    pub fn with_tuned_buckets(mut self, tuples: usize) -> Self {
        let per_partition = (2 * tuples) >> self.radix_bits;
        let aligned = per_partition.next_multiple_of(32);
        self.bucket_capacity = aligned.clamp(32, 4096);
        self
    }

    /// The multi-pass partitioning plan implied by this configuration.
    pub fn pass_plan(&self) -> PassPlan {
        PassPlan::new(self.radix_bits, self.max_bits_per_pass)
    }

    /// Grid shape of a partitioning pass over `tuples` inputs, for
    /// occupancy accounting: one `partition_block_threads`-wide block per
    /// tile, with the pass kernel's reserved shared memory per block.
    pub fn partition_launch_shape(&self, tuples: usize) -> hcj_gpu::LaunchShape {
        hcj_gpu::LaunchShape {
            blocks: (tuples as u64).div_ceil(u64::from(self.partition_block_threads)).max(1),
            threads_per_block: self.partition_block_threads,
            shared_bytes_per_block: self
                .validate_partition_kernel()
                .map(|l| l.reserved())
                .unwrap_or(0),
        }
    }

    /// Grid shape of the co-partition join kernel: one
    /// `join_block_threads`-wide block per live co-partition pair, with
    /// the join kernel's reserved shared memory (hash table, chains,
    /// output buffer) per block.
    pub fn join_launch_shape(&self, live_copartitions: usize) -> hcj_gpu::LaunchShape {
        hcj_gpu::LaunchShape {
            blocks: (live_copartitions as u64).max(1),
            threads_per_block: self.join_block_threads,
            shared_bytes_per_block: self.validate_join_kernel().map(|l| l.reserved()).unwrap_or(0),
        }
    }

    /// Validate the join kernel's shared-memory footprint against the
    /// device budget, mirroring a CUDA launch-configuration failure.
    ///
    /// Layout (paper §III): the build co-partition's keys and payloads
    /// (8 B/element), the hash-table bucket heads (2 B, 16-bit offsets),
    /// the chain links (2 B/element), and a warp-level output buffer.
    pub fn validate_join_kernel(&self) -> Result<SharedMemLayout, SharedMemOverflow> {
        let mut l = SharedMemLayout::new(self.device.shared_mem_per_block);
        l.reserve::<u32>("build keys", self.smem_elements)?;
        l.reserve::<u32>("build payloads", self.smem_elements)?;
        match self.probe {
            ProbeKind::HashJoin => {
                l.reserve::<u16>("hash bucket heads", self.hash_buckets)?;
                l.reserve::<u16>("chain links", self.smem_elements)?;
            }
            ProbeKind::NestedLoop => {}
            ProbeKind::DeviceHashJoin => {
                // Table lives in device memory; shared memory only stages
                // the probe tile.
            }
        }
        if self.output == OutputMode::Materialize {
            // One 12-byte result slot per thread of the block.
            l.reserve_bytes("output buffer", u64::from(self.join_block_threads) * 12)?;
        }
        Ok(l)
    }

    /// Validate the partitioning kernel's shared-memory footprint for the
    /// largest pass: per-partition metadata (a 4-byte offset counter and a
    /// 4-byte bucket pointer) plus — when software write-combining is on —
    /// one block-sized shuffle tile. The naive scatter kernel writes
    /// straight from registers and reserves no tile.
    pub fn validate_partition_kernel(&self) -> Result<SharedMemLayout, SharedMemOverflow> {
        let fanout = self.pass_plan().passes().iter().map(|p| p.fanout()).max().unwrap_or(1);
        let mut l = SharedMemLayout::new(self.device.shared_mem_per_block);
        l.reserve::<u32>("partition offsets", fanout as usize)?;
        l.reserve::<u32>("partition bucket ptrs", fanout as usize)?;
        if self.write_combining {
            l.reserve_bytes("shuffle tile", u64::from(self.partition_block_threads) * 8)?;
        }
        Ok(l)
    }

    /// Validate the whole configuration. Called by every strategy before
    /// executing.
    pub fn validate(&self) -> Result<(), SharedMemOverflow> {
        assert!(
            self.smem_elements <= u16::MAX as usize + 1,
            "16-bit chain offsets require shared-memory partitions of at most 65536 elements"
        );
        assert!(self.hash_buckets.is_power_of_two(), "hash bucket count must be a power of two");
        assert!(self.bucket_capacity > 0, "bucket capacity must be positive");
        assert!(
            self.bucket_capacity % 32 == 0,
            "bucket capacity must be a multiple of the warp size for coalesced chain scans"
        );
        assert!(
            self.join_block_threads <= self.device.max_threads_per_block
                && self.partition_block_threads <= self.device.max_threads_per_block,
            "block size exceeds the device limit"
        );
        self.validate_join_kernel()?;
        self.validate_partition_kernel()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_fits_gtx1080() {
        let c = GpuJoinConfig::paper_default(DeviceSpec::gtx1080());
        c.validate().expect("the paper's configuration must fit its own GPU");
        // The join kernel budget is tight: > 40 KB of the 48 KB block.
        let layout = c.validate_join_kernel().unwrap();
        assert!(layout.reserved() > 40 * 1024, "reserved = {}", layout.reserved());
    }

    #[test]
    fn fig5_configuration_fits() {
        // Fig. 5: 2048-element shared memory, 1024 threads, 256 buckets.
        let mut c = GpuJoinConfig::paper_default(DeviceSpec::gtx1080());
        c.smem_elements = 2048;
        c.hash_buckets = 256;
        c.join_block_threads = 1024;
        c.bucket_capacity = 2048;
        c.validate().unwrap();
    }

    #[test]
    fn oversized_smem_elements_fail_validation() {
        let mut c = GpuJoinConfig::paper_default(DeviceSpec::gtx1080());
        c.smem_elements = 8192; // 64 KB of keys+payloads alone
        let err = c.validate_join_kernel().unwrap_err();
        assert!(err.budget == 48 * 1024);
    }

    #[test]
    fn materialization_needs_output_buffer_space() {
        let mut c = GpuJoinConfig::paper_default(DeviceSpec::gtx1080());
        c.output = OutputMode::Materialize;
        // 4096*8 + 2048*2 + 4096*2 + 512*12 = 50 KB > 48 KB: must fail...
        let res = c.validate_join_kernel();
        assert!(res.is_err(), "paper default + materialization exceeds 48 KB");
        // ...and shrinking the co-partition budget fixes it (the paper's
        // materialization runs trade smem elements for the buffer).
        c.smem_elements = 3584;
        c.validate_join_kernel().unwrap();
    }

    #[test]
    fn partition_kernel_fanout_is_bounded() {
        // A single 13-bit pass means 8192 in-flight partitions: 64 KB of
        // metadata alone, over the 48 KB block.
        let mut c = GpuJoinConfig::paper_default(DeviceSpec::gtx1080());
        c.radix_bits = 13;
        c.max_bits_per_pass = 13;
        assert!(c.validate_partition_kernel().is_err());
        // The same depth in two passes fits easily.
        c.max_bits_per_pass = 8;
        c.validate_partition_kernel().unwrap();
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_buckets_rejected() {
        let mut c = GpuJoinConfig::paper_default(DeviceSpec::gtx1080());
        c.hash_buckets = 1000;
        let _ = c.validate();
    }

    #[test]
    #[should_panic(expected = "multiple of the warp size")]
    fn misaligned_bucket_capacity_rejected() {
        let mut c = GpuJoinConfig::paper_default(DeviceSpec::gtx1080());
        c.bucket_capacity = 1000;
        let _ = c.validate();
    }

    #[test]
    fn write_combining_gates_the_shuffle_tile() {
        let wc = GpuJoinConfig::paper_default(DeviceSpec::gtx1080());
        let naive = wc.clone().with_write_combining(false);
        let with_tile = wc.validate_partition_kernel().unwrap().reserved();
        let without = naive.validate_partition_kernel().unwrap().reserved();
        assert_eq!(with_tile - without, 1024 * 8, "tile is one 8-byte slot per thread");
    }

    #[test]
    fn fusion_is_inert_for_nested_loop_probes() {
        let c = GpuJoinConfig::paper_default(DeviceSpec::gtx1080()).with_fused_refinement(true);
        assert!(c.fusion_active());
        assert_eq!(c.fuse_threshold(), 4096);
        assert!(!c.with_probe(ProbeKind::NestedLoop).fusion_active());
        assert!(!GpuJoinConfig::paper_default(DeviceSpec::gtx1080()).fusion_active());
    }

    #[test]
    fn builder_methods_chain() {
        let c = GpuJoinConfig::paper_default(DeviceSpec::gtx1080())
            .with_radix_bits(11)
            .with_probe(ProbeKind::NestedLoop)
            .with_output(OutputMode::Materialize)
            .with_assignment(PassAssignment::PartitionAtATime);
        assert_eq!(c.radix_bits, 11);
        assert_eq!(c.probe, ProbeKind::NestedLoop);
        assert_eq!(c.output, OutputMode::Materialize);
        assert_eq!(c.assignment, PassAssignment::PartitionAtATime);
        assert_eq!(c.pass_plan().num_passes(), 2);
    }
}
