//! Working-set packing for the co-processing strategy under skew
//! (paper §IV-D).
//!
//! Skewed CPU partitions are unevenly sized, so naively grouping them into
//! GPU-sized working sets either overflows device memory (too many big
//! partitions together) or starves the PCIe pipeline (a too-small first
//! working set finishes transferring before the CPU has partitioned the
//! rest). The paper's remedy, implemented here:
//!
//! 1. the **first** working set is chosen by a 0/1-knapsack maximizing the
//!    number of tuples under the device-memory budget (padding included) —
//!    the biggest possible overlap window for the CPU partitioning phase;
//! 2. the remaining partitions are packed **greedily**, with at most one
//!    partition per working set whose sub-partitioning scratch space
//!    exceeds a threshold (oversized partitions need extra room for the
//!    GPU-side first-pass intermediates).

/// One CPU partition to pack.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PartitionSize {
    /// Index of the partition in the CPU fanout.
    pub id: usize,
    /// Tuples in the partition.
    pub tuples: u64,
    /// Device bytes this partition needs while being joined: both sides'
    /// data plus sub-partitioning scratch, padding included.
    pub padded_bytes: u64,
}

/// The packing result: working sets in processing order; each is a list of
/// partition ids.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkingSets {
    pub sets: Vec<Vec<usize>>,
}

impl WorkingSets {
    /// Total number of working sets.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }
}

/// Pack `partitions` into working sets under a `budget_bytes` device
/// budget. `oversize_threshold_bytes` marks partitions that may not share
/// a working set with another oversized one.
///
/// Panics if any single partition exceeds the budget (callers must
/// sub-partition such a monster first, paper §IV-B's recursive rule).
///
/// ```
/// use hcj_core::packing::{pack_working_sets, PartitionSize};
///
/// // One hot partition and three cold ones, budget for ~two partitions.
/// let parts = vec![
///     PartitionSize { id: 0, tuples: 10, padded_bytes: 30 },
///     PartitionSize { id: 1, tuples: 9_000, padded_bytes: 60 }, // hot
///     PartitionSize { id: 2, tuples: 12, padded_bytes: 30 },
///     PartitionSize { id: 3, tuples: 11, padded_bytes: 30 },
/// ];
/// let ws = pack_working_sets(&parts, 100, 50);
/// // The knapsack first set grabs the hot partition (plus what fits).
/// assert!(ws.sets[0].contains(&1));
/// // Everything is packed exactly once.
/// let total: usize = ws.sets.iter().map(Vec::len).sum();
/// assert_eq!(total, 4);
/// ```
pub fn pack_working_sets(
    partitions: &[PartitionSize],
    budget_bytes: u64,
    oversize_threshold_bytes: u64,
) -> WorkingSets {
    assert!(budget_bytes > 0, "device budget must be positive");
    for p in partitions {
        assert!(
            p.padded_bytes <= budget_bytes,
            "partition {} ({} B) exceeds the device budget ({} B); sub-partition it first",
            p.id,
            p.padded_bytes,
            budget_bytes
        );
    }
    let mut sets = Vec::new();
    let mut remaining: Vec<PartitionSize> =
        partitions.iter().copied().filter(|p| p.tuples > 0).collect();
    if remaining.is_empty() {
        return WorkingSets { sets };
    }

    // Step 1: knapsack the first working set, maximizing tuples.
    let first = knapsack_max_tuples(&remaining, budget_bytes);
    let first_ids: std::collections::HashSet<usize> = first.iter().copied().collect();
    sets.push(first);
    remaining.retain(|p| !first_ids.contains(&p.id));

    // Step 2: greedy packing, big partitions first, honoring the
    // one-oversized-per-set rule.
    remaining.sort_by(|a, b| b.padded_bytes.cmp(&a.padded_bytes).then(a.id.cmp(&b.id)));
    let mut open: Vec<(u64, bool, Vec<usize>)> = Vec::new(); // (used, has_oversized, ids)
    for p in &remaining {
        let oversized = p.padded_bytes > oversize_threshold_bytes;
        let slot = open.iter_mut().find(|(used, has_big, _)| {
            used + p.padded_bytes <= budget_bytes && !(oversized && *has_big)
        });
        match slot {
            Some((used, has_big, ids)) => {
                *used += p.padded_bytes;
                *has_big |= oversized;
                ids.push(p.id);
            }
            None => open.push((p.padded_bytes, oversized, vec![p.id])),
        }
    }
    sets.extend(open.into_iter().map(|(_, _, ids)| ids));
    WorkingSets { sets }
}

/// The strawman packer (ablation baseline): first-fit in partition-index
/// order, no knapsack, no oversize rule. Under skew the first working set
/// may carry few tuples (starving the transfer pipeline while the CPU
/// still partitions) — exactly the failure §IV-D motivates against.
pub fn naive_working_sets(partitions: &[PartitionSize], budget_bytes: u64) -> WorkingSets {
    assert!(budget_bytes > 0, "device budget must be positive");
    let mut sets: Vec<Vec<usize>> = Vec::new();
    let mut used = 0u64;
    let mut current: Vec<usize> = Vec::new();
    for p in partitions.iter().filter(|p| p.tuples > 0) {
        assert!(p.padded_bytes <= budget_bytes, "partition exceeds the device budget");
        if used + p.padded_bytes > budget_bytes && !current.is_empty() {
            sets.push(std::mem::take(&mut current));
            used = 0;
        }
        current.push(p.id);
        used += p.padded_bytes;
    }
    if !current.is_empty() {
        sets.push(current);
    }
    WorkingSets { sets }
}

/// 0/1 knapsack maximizing tuples under the byte budget. Partition counts
/// are small (the paper uses a 16-way CPU fanout), but weights are large,
/// so the DP runs over a quantized capacity grid.
fn knapsack_max_tuples(partitions: &[PartitionSize], budget_bytes: u64) -> Vec<usize> {
    const GRID: u64 = 4096;
    let unit = (budget_bytes / GRID).max(1);
    // Round weights *up* so the quantized solution never overflows the
    // real budget.
    let weights: Vec<u64> = partitions.iter().map(|p| p.padded_bytes.div_ceil(unit)).collect();
    let cap = (budget_bytes / unit) as usize;
    // dp[w] = (best tuples, chosen set as bitmask index chain)
    let mut best = vec![0u64; cap + 1];
    let mut choice: Vec<Vec<bool>> = vec![vec![false; partitions.len()]; cap + 1];
    for (i, p) in partitions.iter().enumerate() {
        let w = weights[i] as usize;
        if w > cap {
            continue;
        }
        for c in (w..=cap).rev() {
            let cand = best[c - w] + p.tuples;
            if cand > best[c] {
                best[c] = cand;
                let mut chosen = choice[c - w].clone();
                chosen[i] = true;
                choice[c] = chosen;
            }
        }
    }
    let argmax = (0..=cap).max_by_key(|&c| best[c]).unwrap_or(0);
    partitions.iter().enumerate().filter(|(i, _)| choice[argmax][*i]).map(|(_, p)| p.id).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcj_workload::rng::{Rng, SmallRng};

    fn part(id: usize, tuples: u64, bytes: u64) -> PartitionSize {
        PartitionSize { id, tuples, padded_bytes: bytes }
    }

    fn total_bytes(set: &[usize], parts: &[PartitionSize]) -> u64 {
        set.iter().map(|&id| parts.iter().find(|p| p.id == id).unwrap().padded_bytes).sum()
    }

    #[test]
    fn uniform_partitions_pack_evenly() {
        // 16 equal partitions, budget for 5: first set = 5 (knapsack), the
        // rest greedily in groups of 5 → [5,5,5,1].
        let parts: Vec<_> = (0..16).map(|i| part(i, 100, 10)).collect();
        let ws = pack_working_sets(&parts, 50, 40);
        assert_eq!(ws.sets[0].len(), 5);
        let sizes: Vec<usize> = ws.sets.iter().map(Vec::len).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 16);
        for s in &ws.sets {
            assert!(total_bytes(s, &parts) <= 50);
        }
    }

    #[test]
    fn first_set_maximizes_tuples_under_skew() {
        // One hot partition (many tuples, big) and many cold ones. The
        // knapsack should prefer the hot partition plus whatever fits.
        let mut parts = vec![part(0, 10_000, 60)];
        parts.extend((1..10).map(|i| part(i, 100, 10)));
        let ws = pack_working_sets(&parts, 100, 50);
        assert!(ws.sets[0].contains(&0), "first set must include the hot partition");
        let tuples: u64 =
            ws.sets[0].iter().map(|&id| parts.iter().find(|p| p.id == id).unwrap().tuples).sum();
        assert!(tuples >= 10_000 + 4 * 100);
    }

    #[test]
    fn at_most_one_oversized_partition_per_greedy_set() {
        // The oversize rule governs the greedily-packed sets; the first
        // (knapsack) set is constrained only by the budget (paper §IV-D).
        let parts: Vec<_> = (0..6).map(|i| part(i, 1000, 45)).collect();
        let ws = pack_working_sets(&parts, 100, 40);
        for s in ws.sets.iter().skip(1) {
            let oversized = s
                .iter()
                .filter(|&&id| parts.iter().find(|p| p.id == id).unwrap().padded_bytes > 40)
                .count();
            assert!(oversized <= 1, "greedy set {s:?} has {oversized} oversized partitions");
        }
        // The knapsack set is allowed to pack two 45s into the 100 budget.
        assert!(ws.sets[0].len() == 2);
    }

    #[test]
    fn empty_partitions_are_skipped() {
        let parts = vec![part(0, 0, 0), part(1, 10, 5)];
        let ws = pack_working_sets(&parts, 100, 50);
        assert_eq!(ws.sets, vec![vec![1]]);
        assert_eq!(ws.len(), 1);
        assert!(!ws.is_empty());
    }

    #[test]
    fn all_empty_gives_no_sets() {
        let parts = vec![part(0, 0, 0)];
        let ws = pack_working_sets(&parts, 100, 50);
        assert!(ws.is_empty());
    }

    #[test]
    fn naive_packs_everything_in_order() {
        let parts: Vec<_> = (0..7).map(|i| part(i, 10, 30)).collect();
        let ws = naive_working_sets(&parts, 100);
        assert_eq!(ws.sets, vec![vec![0, 1, 2], vec![3, 4, 5], vec![6]]);
    }

    #[test]
    fn naive_first_set_can_be_tuple_poor_under_skew() {
        // Low-index partitions are tiny, the hot one sits at index 5: the
        // naive first set misses most tuples, the knapsack one grabs them.
        let mut parts: Vec<_> = (0..5).map(|i| part(i, 10, 10)).collect();
        parts.push(part(5, 100_000, 50));
        let tuples_of = |set: &[usize]| -> u64 {
            set.iter().map(|&id| parts.iter().find(|p| p.id == id).unwrap().tuples).sum()
        };
        let naive = naive_working_sets(&parts, 60);
        let smart = pack_working_sets(&parts, 60, 40);
        assert!(tuples_of(&smart.sets[0]) > 10 * tuples_of(&naive.sets[0]));
    }

    #[test]
    #[should_panic(expected = "exceeds the device budget")]
    fn monster_partition_rejected() {
        let parts = vec![part(0, 10, 200)];
        let _ = pack_working_sets(&parts, 100, 50);
    }

    #[test]
    fn every_partition_packed_exactly_once() {
        let mut rng = SmallRng::seed_from_u64(0x9ACC);
        for case in 0..256 {
            let len = rng.gen_range_u64(1, 39) as usize;
            let parts: Vec<_> = (0..len)
                .map(|i| part(i, rng.gen_range_u64(1, 999), rng.gen_range_u64(1, 49)))
                .collect();
            let ws = pack_working_sets(&parts, 100, 60);
            let mut seen: Vec<usize> = ws.sets.iter().flatten().copied().collect();
            seen.sort_unstable();
            let want: Vec<usize> = (0..parts.len()).collect();
            assert_eq!(seen, want, "case {case}");
        }
    }

    #[test]
    fn no_set_overflows_budget() {
        let mut rng = SmallRng::seed_from_u64(0xB0D9);
        for case in 0..256 {
            let len = rng.gen_range_u64(1, 39) as usize;
            let parts: Vec<_> = (0..len)
                .map(|i| part(i, rng.gen_range_u64(1, 999), rng.gen_range_u64(1, 79)))
                .collect();
            let budget = rng.gen_range_u64(80, 199);
            let ws = pack_working_sets(&parts, budget, budget / 2);
            for s in &ws.sets {
                assert!(total_bytes(s, &parts) <= budget, "case {case}: budget {budget}");
            }
        }
    }
}
