//! Non-partitioned GPU hash joins — the hardware-oblivious comparators of
//! paper Fig. 8.
//!
//! * **Chaining**: one global hash table in device memory over the whole
//!   build relation. Probing costs three to four *random* device-memory
//!   accesses per tuple (head slot, key, successor check, matched payload
//!   — paper §V-B), which is why throughput decays as the table outgrows
//!   what latency hiding can cover.
//! * **Perfect hash**: the best case the paper constructs for the
//!   non-partitioned family — unique keys from a contiguous range index a
//!   dense payload array directly, one random access per probe.

use hcj_gpu::{DeviceSpec, KernelCost};
use hcj_host::Pool;
use hcj_workload::oracle::JoinCheck;
use hcj_workload::Relation;

use crate::config::OutputMode;
use crate::join::PROBE_PAR_MIN;
use crate::output::OutputSink;

/// Which non-partitioned variant to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NonPartitionedKind {
    /// Chained global hash table (the realistic variant).
    Chaining,
    /// Dense perfect-hash payload array (requires unique keys in a
    /// contiguous range; panics otherwise).
    PerfectHash,
}

/// Result of a non-partitioned join: correctness summary plus the traffic
/// of the build and probe kernels.
#[derive(Clone, Debug)]
pub struct NonPartitionedOutcome {
    pub check: JoinCheck,
    pub rows: Vec<(u32, u32, u32)>,
    pub build_cost: KernelCost,
    pub probe_cost: KernelCost,
}

impl NonPartitionedOutcome {
    /// Total kernel seconds on `device`, including the two launch
    /// overheads (build kernel + probe kernel).
    pub fn kernel_seconds(&self, device: &DeviceSpec) -> f64 {
        self.build_cost.time(device) + self.probe_cost.time(device) + 2.0 * device.launch_overhead_s
    }

    /// Hardware-counter snapshot on `device`. The non-partitioned variants
    /// are pure kernel-cost models (they never run through a simulated
    /// [`hcj_gpu::Gpu`]), so the counters are synthesized from the build
    /// and probe traffic at the same charge points a `Gpu` launch would
    /// record them.
    pub fn counters(&self, device: &DeviceSpec) -> hcj_gpu::CounterSet {
        let mut set = hcj_gpu::CounterSet::for_device(device);
        set.record_kernel(
            None,
            "build global table",
            &self.build_cost,
            hcj_gpu::LaunchShape::UNSHAPED,
            self.build_cost.time(device) + device.launch_overhead_s,
            device,
        );
        set.record_kernel(
            None,
            "probe global table",
            &self.probe_cost,
            hcj_gpu::LaunchShape::UNSHAPED,
            self.probe_cost.time(device) + device.launch_overhead_s,
            device,
        );
        set
    }
}

/// The non-partitioned GPU hash join.
#[derive(Clone, Debug)]
pub struct NonPartitionedJoin {
    pub kind: NonPartitionedKind,
    pub output: OutputMode,
    /// The device whose L2 capacity decides when the global table's
    /// random traffic is cache-resident (defaults to the paper's GPU).
    pub device: DeviceSpec,
}

impl NonPartitionedJoin {
    pub fn new(kind: NonPartitionedKind, output: OutputMode) -> Self {
        NonPartitionedJoin { kind, output, device: DeviceSpec::gtx1080() }
    }

    pub fn on_device(mut self, device: DeviceSpec) -> Self {
        self.device = device;
        self
    }

    /// Execute over GPU-resident relations.
    pub fn execute(&self, r: &Relation, s: &Relation) -> NonPartitionedOutcome {
        match self.kind {
            NonPartitionedKind::Chaining => self.chaining(r, s),
            NonPartitionedKind::PerfectHash => self.perfect(r, s),
        }
    }

    fn chaining(&self, r: &Relation, s: &Relation) -> NonPartitionedOutcome {
        let slots = r.len().next_power_of_two().max(2);
        let mask = slots - 1;
        const NIL: u32 = u32::MAX;
        let mut heads = vec![NIL; slots];
        let mut next = vec![NIL; r.len()];
        // While the global table still fits the L2 cache its random
        // traffic is cheap — the reason non-partitioned joins look good on
        // small inputs before decaying (Fig. 8).
        let table_bytes = (slots * 4 + r.len() * 16) as u64;
        let in_l2 = table_bytes <= self.device.l2_bytes;
        let charge = |cost: &mut hcj_gpu::KernelCost, n: u64| {
            if in_l2 {
                cost.add_l2(n);
            } else {
                cost.add_random(n);
            }
        };

        let mut build_cost = KernelCost::ZERO;
        for (i, &key) in r.keys.iter().enumerate() {
            let h = (key as usize).wrapping_mul(0x9E37_79B1) >> 16 & mask;
            let old = heads[h];
            heads[h] = i as u32;
            next[i] = old;
        }
        build_cost.add_coalesced(8 * r.len() as u64); // scan build input
        build_cost.add_global_atomics(r.len() as u64); // atomicExch per insert
        charge(&mut build_cost, r.len() as u64); // link write
        build_cost.add_instructions(6 * r.len() as u64);

        let mut probe_cost = KernelCost::ZERO;
        probe_cost.add_coalesced(8 * s.len() as u64); // scan probe input
        let mut sink = OutputSink::new(self.output, 512);
        // Independent probe tuples: chunked across pool workers, forked
        // sinks merged in chunk order (identical to the serial scan).
        let pool = Pool::current();
        let ranges = pool.chunks(s.len(), PROBE_PAR_MIN);
        let mut chain_steps = 0u64;
        let mut matches = 0u64;
        let per_chunk = pool.map(&ranges, |_, range| {
            let mut local = sink.fork();
            let (mut steps, mut m) = (0u64, 0u64);
            for j in range.clone() {
                let skey = s.keys[j];
                let h = (skey as usize).wrapping_mul(0x9E37_79B1) >> 16 & mask;
                let mut idx = heads[h];
                while idx != NIL {
                    steps += 1;
                    let i = idx as usize;
                    if r.keys[i] == skey {
                        m += 1;
                        local.emit(skey, r.payloads[i], s.payloads[j]);
                    }
                    idx = next[i];
                }
            }
            (steps, m, local)
        });
        for (steps, m, local) in per_chunk {
            chain_steps += steps;
            matches += m;
            sink.merge(local);
        }
        charge(&mut probe_cost, s.len() as u64); // head slot per probe
                                                 // Key read + successor check per step; matched payload read.
        charge(&mut probe_cost, 2 * chain_steps + matches);
        probe_cost.add_instructions(4 * s.len() as u64 + 3 * chain_steps);
        probe_cost += sink.cost();

        NonPartitionedOutcome {
            check: sink.check(),
            rows: sink.into_rows(),
            build_cost,
            probe_cost,
        }
    }

    fn perfect(&self, r: &Relation, s: &Relation) -> NonPartitionedOutcome {
        // Dense array indexed by key: requires the micro-benchmark's
        // unique contiguous keys.
        let max_key = r.keys.iter().copied().max().unwrap_or(0);
        assert!(
            (max_key as usize) < r.len() * 2 + 2,
            "perfect hashing requires keys from a contiguous range"
        );
        const EMPTY: u32 = u32::MAX;
        let mut table = vec![EMPTY; max_key as usize + 1];
        let mut build_cost = KernelCost::ZERO;
        for (i, &key) in r.keys.iter().enumerate() {
            assert!(table[key as usize] == EMPTY, "perfect hashing requires unique keys");
            table[key as usize] = r.payloads[i];
        }
        let in_l2 = (table.len() * 4) as u64 <= self.device.l2_bytes;
        let charge = |cost: &mut hcj_gpu::KernelCost, n: u64| {
            if in_l2 {
                cost.add_l2(n);
            } else {
                cost.add_random(n);
            }
        };
        build_cost.add_coalesced(8 * r.len() as u64);
        charge(&mut build_cost, r.len() as u64); // one scattered store per tuple
        build_cost.add_instructions(3 * r.len() as u64);

        let mut probe_cost = KernelCost::ZERO;
        probe_cost.add_coalesced(8 * s.len() as u64);
        let mut sink = OutputSink::new(self.output, 512);
        let pool = Pool::current();
        let ranges = pool.chunks(s.len(), PROBE_PAR_MIN);
        let per_chunk = pool.map(&ranges, |_, range| {
            let mut local = sink.fork();
            for j in range.clone() {
                let skey = s.keys[j];
                if let Some(&pay) = table.get(skey as usize) {
                    if pay != EMPTY {
                        local.emit(skey, pay, s.payloads[j]);
                    }
                }
            }
            local
        });
        for local in per_chunk {
            sink.merge(local);
        }
        charge(&mut probe_cost, s.len() as u64); // the single dense-array load
        probe_cost.add_instructions(3 * s.len() as u64);
        probe_cost += sink.cost();

        NonPartitionedOutcome {
            check: sink.check(),
            rows: sink.into_rows(),
            build_cost,
            probe_cost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcj_workload::generate::canonical_pair;
    use hcj_workload::oracle::{assert_join_matches, JoinCheck};

    #[test]
    fn chaining_matches_oracle() {
        let (r, s) = canonical_pair(4096, 16384, 21);
        let out = NonPartitionedJoin::new(NonPartitionedKind::Chaining, OutputMode::Materialize)
            .execute(&r, &s);
        assert_join_matches(&r, &s, &out.rows);
        assert_eq!(out.check, JoinCheck::compute(&r, &s));
    }

    #[test]
    fn perfect_hash_matches_oracle() {
        let (r, s) = canonical_pair(4096, 16384, 22);
        let out = NonPartitionedJoin::new(NonPartitionedKind::PerfectHash, OutputMode::Materialize)
            .execute(&r, &s);
        assert_join_matches(&r, &s, &out.rows);
    }

    #[test]
    fn perfect_hash_needs_fewer_random_accesses() {
        let (r, s) = canonical_pair(8192, 8192, 23);
        let chain = NonPartitionedJoin::new(NonPartitionedKind::Chaining, OutputMode::Aggregate)
            .execute(&r, &s);
        let perfect =
            NonPartitionedJoin::new(NonPartitionedKind::PerfectHash, OutputMode::Aggregate)
                .execute(&r, &s);
        assert_eq!(chain.check, perfect.check);
        // 8K tuples: both tables are L2-resident; chaining needs ~3-4
        // transactions per probe vs exactly one for perfect hashing.
        let chain_tx = chain.probe_cost.random_transactions + chain.probe_cost.l2_transactions;
        let perfect_tx =
            perfect.probe_cost.random_transactions + perfect.probe_cost.l2_transactions;
        assert!(chain_tx > 2 * perfect_tx, "chaining {chain_tx} vs perfect {perfect_tx}");
    }

    #[test]
    fn aggregate_mode_keeps_no_rows() {
        let (r, s) = canonical_pair(512, 512, 24);
        let out = NonPartitionedJoin::new(NonPartitionedKind::Chaining, OutputMode::Aggregate)
            .execute(&r, &s);
        assert!(out.rows.is_empty());
        assert_eq!(out.check.matches, 512);
    }

    #[test]
    fn probe_miss_heavy_workload() {
        // Probe keys outside the build domain: no matches, chains walked
        // only on hash collisions.
        let (r, _) = canonical_pair(1024, 1, 25);
        let s: Relation =
            (0..2048u32).map(|i| hcj_workload::Tuple { key: 1_000_000 + i, payload: i }).collect();
        let out = NonPartitionedJoin::new(NonPartitionedKind::Chaining, OutputMode::Aggregate)
            .execute(&r, &s);
        assert_eq!(out.check.matches, 0);
    }

    #[test]
    #[should_panic(expected = "contiguous range")]
    fn perfect_hash_rejects_sparse_keys() {
        let r: Relation =
            [1u32, 1_000_000].iter().map(|&k| hcj_workload::Tuple { key: k, payload: k }).collect();
        let s = r.clone();
        let _ = NonPartitionedJoin::new(NonPartitionedKind::PerfectHash, OutputMode::Aggregate)
            .execute(&r, &s);
    }

    #[test]
    fn kernel_seconds_positive() {
        let (r, s) = canonical_pair(1000, 1000, 26);
        let out = NonPartitionedJoin::new(NonPartitionedKind::Chaining, OutputMode::Aggregate)
            .execute(&r, &s);
        assert!(out.kernel_seconds(&DeviceSpec::gtx1080()) > 0.0);
    }
}
