//! Op-output handoff between plan operators: the type a DAG executor
//! threads from one join to the next.
//!
//! A multi-join plan needs a join to consume a *prior join's* output as
//! one of its inputs. Strategies materialize results as unordered
//! [`JoinRow`]s whose order depends on the
//! worker count, so handing them over raw would leak scheduling
//! nondeterminism into downstream joins. [`OpOutput`] closes that hole:
//! it canonicalizes the rows (via
//! [`rows_to_relation`] — sorted,
//! payloads combined) into an ordinary [`Relation`] any strategy or the
//! CPU oracle can consume, and records where the bytes live:
//!
//! * **pinned** — a [`Reservation`] keeps the materialized output in
//!   device memory, visible to admission control like a cache entry; the
//!   consuming join skips the H2D transfer for that side.
//! * **spilled** — no reservation; the output took the host round trip
//!   and the consumer stages it over PCIe like any base relation.

use hcj_gpu::memory::Reservation;
use hcj_workload::oracle::JoinRow;
use hcj_workload::plan::rows_to_relation;
use hcj_workload::Relation;

/// The materialized output of one plan operator, canonicalized for
/// downstream consumption, plus its device residency.
#[derive(Debug)]
pub struct OpOutput {
    /// Canonical intermediate relation: join rows sorted, payloads
    /// combined — byte-identical however (and wherever) it was produced.
    pub relation: Relation,
    /// Device pin holding the bytes resident; `None` means the output
    /// was spilled to the host.
    pub pin: Option<Reservation>,
}

impl OpOutput {
    /// Wrap a base relation (a scan output): always host-side.
    pub fn scanned(relation: Relation) -> Self {
        OpOutput { relation, pin: None }
    }

    /// Canonicalize a join's materialized rows into a spilled handoff.
    /// Attach a pin afterwards with [`OpOutput::pinned`] if the bytes
    /// stay on the device.
    pub fn from_join_rows(rows: &[JoinRow]) -> Self {
        OpOutput { relation: rows_to_relation(rows), pin: None }
    }

    /// Mark this output device-resident, backed by `pin` (which must
    /// cover [`OpOutput::bytes`]; the caller reserved it from the shared
    /// device budget so admission control sees it).
    pub fn pinned(mut self, pin: Reservation) -> Self {
        debug_assert!(pin.size_bytes() >= self.relation.bytes());
        self.pin = Some(pin);
        self
    }

    /// Whether the bytes are resident in device memory.
    pub fn is_resident(&self) -> bool {
        self.pin.is_some()
    }

    /// Physical bytes of the narrow columnar intermediate.
    pub fn bytes(&self) -> u64 {
        self.relation.bytes()
    }

    /// Drop the device pin (if any), releasing the reserved bytes; the
    /// relation itself stays usable host-side.
    pub fn release(&mut self) -> Option<Reservation> {
        self.pin.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcj_gpu::memory::DeviceMemory;

    #[test]
    fn canonicalization_is_production_order_free() {
        let rows = vec![(5, 50, 500), (1, 10, 100), (3, 30, 300)];
        let mut reversed = rows.clone();
        reversed.reverse();
        let a = OpOutput::from_join_rows(&rows);
        let b = OpOutput::from_join_rows(&reversed);
        assert_eq!(a.relation, b.relation);
        assert_eq!(a.relation.keys, vec![1, 3, 5]);
        assert!(!a.is_resident());
        assert_eq!(a.bytes(), 24);
    }

    #[test]
    fn pin_lifecycle_is_visible_to_the_device_budget() {
        let mem = DeviceMemory::new(1 << 20);
        let mut out = OpOutput::from_join_rows(&[(1, 1, 1), (2, 2, 2)]);
        let pin = mem.reserve(out.bytes()).expect("fits");
        assert_eq!(mem.used(), 16);
        out = out.pinned(pin);
        assert!(out.is_resident());
        drop(out.release());
        assert_eq!(mem.used(), 0, "releasing the pin frees the bytes");
    }
}
