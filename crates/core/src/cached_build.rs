//! Build-once, probe-many: the staging-aware variant of the GPU-resident
//! partitioned join that the serving layer's build-side cache is made of.
//!
//! [`GpuPartitionedJoin`](crate::GpuPartitionedJoin) assumes both inputs
//! are already device-resident, which is the right model for the paper's
//! warm micro-benchmarks but hides exactly the cost a cache saves. This
//! module splits the join into the two halves a serving system sees
//! (He et al., "Revisiting Co-Processing for Hash Joins on the Coupled
//! CPU-GPU Architecture": keep the hot build-side hash table resident and
//! probe it in place):
//!
//! * [`CachedBuildJoin::execute_cold`] stages *both* relations over PCIe,
//!   partitions both on the GPU and joins — and hands back a
//!   [`CachedBuild`]: the build side's partitioned bucket chains plus the
//!   byte/second cost of rebuilding them, ready to be pinned in device
//!   memory by a cache.
//! * [`CachedBuildJoin::execute_hot`] takes a previously built
//!   [`CachedBuild`] and only stages + partitions the probe side; the
//!   build side is neither transferred nor partitioned. A hit therefore
//!   issues strictly fewer kernel launches, H2D bytes, and device-memory
//!   transactions than the cold path on the same inputs — the saving is
//!   visible in the hardware counters, not asserted by fiat.
//!
//! Correctness stays oracle-observable: the hot path joins the *cached*
//! tuples against the request's probe side, so if a cache ever serves a
//! stale table (content version bumped underneath it) the join result
//! diverges from `JoinCheck::compute` on the request's own inputs and the
//! serving tests catch it.

use hcj_gpu::stream::TransferKind;
use hcj_gpu::{JoinError, RetryPolicy};
use hcj_sim::Sim;
use hcj_workload::Relation;

use crate::config::{GpuJoinConfig, OutputMode};
use crate::join::{join_all_copartitions, live_copartitions};
use crate::outcome::JoinOutcome;
use crate::output::late_materialization_cost;
use crate::partition::{GpuPartitioner, PartitionedRelation};

/// A build side that survived its cold join: the partitioned bucket
/// chains, ready to be probed again, plus what rebuilding them would cost
/// (the currency of cost-aware eviction).
#[derive(Clone, Debug)]
pub struct CachedBuild {
    /// The build relation, radix-partitioned exactly as the cold join
    /// left it on the device.
    pub partitioned: PartitionedRelation,
    /// Logical payload width of the build side (late-materialization
    /// traffic of future probes depends on it).
    pub payload_width: u32,
    /// Build-side cardinality (for `tuples_in` accounting of hot joins).
    pub build_tuples: u64,
    /// Device bytes the partitioned table occupies — what a cache must
    /// keep reserved for as long as the entry lives.
    pub table_bytes: u64,
    /// Simulated seconds the staging + partitioning of the build side
    /// took: the rebuild cost a cache avoids on every hit, and the
    /// numerator of the GreedyDual-Size eviction priority.
    pub build_seconds: f64,
    /// The build partitioning's early-stop decisions (all-false without
    /// fused refinement); every hot probe replays them so its
    /// co-partitions line up with the cached table's.
    pub refine_plan: crate::partition::RefinePlan,
}

/// The cold/hot pair of the build-side cache; shares its configuration
/// (radix bits, bucket tuning, device, fault plan) with every other
/// strategy so cached and uncached partitionings are interchangeable.
#[derive(Clone, Debug)]
pub struct CachedBuildJoin {
    /// Join configuration; the same `fanout_bits`/`base_bits` derive from
    /// it for cold and hot runs, so cached tables always co-partition
    /// with freshly partitioned probe sides.
    pub config: GpuJoinConfig,
}

impl CachedBuildJoin {
    /// Create the strategy; panics if the configuration's kernels cannot
    /// launch on the configured device (mirrors a CUDA launch failure).
    pub fn new(config: GpuJoinConfig) -> Self {
        config.validate().expect("join configuration exceeds the device's shared memory");
        CachedBuildJoin { config }
    }

    /// Cold path: stage both relations over PCIe, partition both on the
    /// GPU, join — and return the reusable build side next to the
    /// outcome. `Err` on OOM, exhausted retries, or device loss, exactly
    /// like the resident strategy.
    pub fn execute_cold(
        &self,
        r: &Relation,
        s: &Relation,
    ) -> Result<(JoinOutcome, CachedBuild), JoinError> {
        self.execute_staged(r, s, false, false)
    }

    /// The residency-aware cold path the plan executor uses: a side
    /// marked resident is a pinned intermediate already in device memory
    /// (a prior join's materialized output), so its PCIe transfer is
    /// skipped — its bytes are still reserved and it is still
    /// radix-partitioned, because pinning preserves materialized rows,
    /// not bucket chains. `execute_staged(r, s, false, false)` is exactly
    /// [`CachedBuildJoin::execute_cold`].
    pub fn execute_staged(
        &self,
        r: &Relation,
        s: &Relation,
        r_resident: bool,
        s_resident: bool,
    ) -> Result<(JoinOutcome, CachedBuild), JoinError> {
        let mut sim = Sim::new();
        let gpu = self.config.build_gpu(&mut sim);
        let retry = RetryPolicy::default();
        let mut stream = gpu.stream();
        let partitioner = GpuPartitioner::new(&self.config);

        // ---- stage + partition the build side ----
        let r_input = gpu.mem.reserve(r.bytes())?;
        if !r_resident {
            gpu.copy_h2d_retrying(
                &mut sim,
                &mut stream,
                "h2d build",
                r.bytes(),
                TransferKind::Pinned,
                &retry,
            )?;
        }
        let r_out = partitioner.partition(r);
        drop(r_input); // bucket-pool recycling, as in the resident join
        let _r_pool = gpu.mem.reserve(r_out.partitioned.pool.device_bytes())?;
        let r_shape = self.config.partition_launch_shape(r.len());
        for (i, pass) in r_out.passes.iter().enumerate() {
            gpu.kernel_costed_retrying(
                &mut sim,
                &mut stream,
                &format!("part build pass{i}"),
                pass.seconds,
                &pass.cost,
                r_shape,
                &retry,
            )?;
        }
        // Rebuild cost of the table just built: all H2D seconds so far
        // belong to the build side (the probe has not been staged yet).
        let build_seconds: f64 =
            gpu.counters().h2d.seconds + r_out.passes.iter().map(|p| p.seconds).sum::<f64>();

        // ---- stage + partition the probe side ----
        let s_input = gpu.mem.reserve(s.bytes())?;
        if !s_resident {
            gpu.copy_h2d_retrying(
                &mut sim,
                &mut stream,
                "h2d probe",
                s.bytes(),
                TransferKind::Pinned,
                &retry,
            )?;
        }
        let s_out = partitioner.partition_following(s, &r_out.refine_plan);
        drop(s_input);
        let _s_pool = gpu.mem.reserve(s_out.partitioned.pool.device_bytes())?;
        let s_shape = self.config.partition_launch_shape(s.len());
        for (i, pass) in s_out.passes.iter().enumerate() {
            gpu.kernel_costed_retrying(
                &mut sim,
                &mut stream,
                &format!("part probe pass{i}"),
                pass.seconds,
                &pass.cost,
                s_shape,
                &retry,
            )?;
        }

        let outcome = self.join_partitioned(
            sim,
            &gpu,
            &mut stream,
            &retry,
            &r_out.partitioned,
            r.payload_width,
            &s_out.partitioned,
            s.payload_width,
            (r.len() + s.len()) as u64,
        )?;
        let table_bytes = r_out.partitioned.pool.device_bytes();
        let cached = CachedBuild {
            partitioned: r_out.partitioned,
            payload_width: r.payload_width,
            build_tuples: r.len() as u64,
            table_bytes,
            build_seconds,
            refine_plan: r_out.refine_plan,
        };
        Ok((outcome, cached))
    }

    /// Hot path: the build side is already partitioned and resident
    /// (`cached`); only the probe side is staged and partitioned. The
    /// cached table's bytes are reserved for the duration of the join, as
    /// they are on the real device.
    pub fn execute_hot(
        &self,
        cached: &CachedBuild,
        s: &Relation,
    ) -> Result<JoinOutcome, JoinError> {
        self.execute_hot_from(cached, s, false)
    }

    /// The residency-aware hot path: like
    /// [`CachedBuildJoin::execute_hot`], but a probe side that is itself a
    /// pinned intermediate skips its PCIe transfer too — the fully warm
    /// case of a chain plan reusing a cached dimension build against a
    /// device-resident prior join output.
    pub fn execute_hot_from(
        &self,
        cached: &CachedBuild,
        s: &Relation,
        s_resident: bool,
    ) -> Result<JoinOutcome, JoinError> {
        let mut sim = Sim::new();
        let gpu = self.config.build_gpu(&mut sim);
        let retry = RetryPolicy::default();
        let mut stream = gpu.stream();
        let partitioner = GpuPartitioner::new(&self.config);

        // The resident table occupies its bytes throughout.
        let _table = gpu.mem.reserve(cached.table_bytes)?;

        let s_input = gpu.mem.reserve(s.bytes())?;
        if !s_resident {
            gpu.copy_h2d_retrying(
                &mut sim,
                &mut stream,
                "h2d probe",
                s.bytes(),
                TransferKind::Pinned,
                &retry,
            )?;
        }
        let s_out = partitioner.partition_following(s, &cached.refine_plan);
        drop(s_input);
        let _s_pool = gpu.mem.reserve(s_out.partitioned.pool.device_bytes())?;
        let s_shape = self.config.partition_launch_shape(s.len());
        for (i, pass) in s_out.passes.iter().enumerate() {
            gpu.kernel_costed_retrying(
                &mut sim,
                &mut stream,
                &format!("part probe pass{i}"),
                pass.seconds,
                &pass.cost,
                s_shape,
                &retry,
            )?;
        }

        self.join_partitioned(
            sim,
            &gpu,
            &mut stream,
            &retry,
            &cached.partitioned,
            cached.payload_width,
            &s_out.partitioned,
            s.payload_width,
            cached.build_tuples + s.len() as u64,
        )
    }

    /// The shared tail of both paths: join two partitioned relations,
    /// charge the one co-partition join kernel, and package the outcome.
    #[allow(clippy::too_many_arguments)]
    fn join_partitioned(
        &self,
        mut sim: Sim,
        gpu: &hcj_gpu::stream::Gpu,
        stream: &mut hcj_gpu::stream::Stream,
        retry: &RetryPolicy,
        r_part: &PartitionedRelation,
        r_width: u32,
        s_part: &PartitionedRelation,
        s_width: u32,
        tuples_in: u64,
    ) -> Result<JoinOutcome, JoinError> {
        let mut sink = self.config.make_sink();
        let mut join_cost = join_all_copartitions(&self.config, r_part, s_part, &mut sink);
        join_cost += sink.cost();
        join_cost += late_materialization_cost(sink.matches(), r_width, true);
        join_cost += late_materialization_cost(sink.matches(), s_width, true);
        let _result_buf = match self.config.output {
            OutputMode::Materialize => {
                Some(gpu.mem.reserve(self.config.result_buffer_bytes(sink.matches()))?)
            }
            OutputMode::Aggregate => None,
        };
        let join_shape = self.config.join_launch_shape(live_copartitions(r_part, s_part));
        gpu.kernel_costed_retrying(
            &mut sim,
            stream,
            "join copartitions",
            join_cost.time(&gpu.spec),
            &join_cost,
            join_shape,
            retry,
        )?;

        let schedule = sim.run();
        let faults = gpu.fault_log(&schedule);
        let counters = gpu.counters();
        let check = sink.check();
        let rows = match self.config.output {
            OutputMode::Materialize => Some(sink.into_rows()),
            OutputMode::Aggregate => None,
        };
        Ok(JoinOutcome::new(check, rows, schedule, tuples_in)
            .with_faults(faults)
            .with_counters(counters))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcj_gpu::DeviceSpec;
    use hcj_workload::generate::canonical_pair;
    use hcj_workload::oracle::JoinCheck;

    fn config(bits: u32, tuples: usize) -> GpuJoinConfig {
        GpuJoinConfig::paper_default(DeviceSpec::gtx1080())
            .with_radix_bits(bits)
            .with_tuned_buckets(tuples)
    }

    #[test]
    fn cold_then_hot_both_match_oracle() {
        let (r, s) = canonical_pair(8_192, 32_768, 61);
        let join = CachedBuildJoin::new(config(8, 8_192));
        let expected = JoinCheck::compute(&r, &s);
        let (cold, cached) = join.execute_cold(&r, &s).unwrap();
        assert_eq!(cold.check, expected);
        let hot = join.execute_hot(&cached, &s).unwrap();
        assert_eq!(hot.check, expected, "probing the cached table gives the same join");
        assert!(cached.table_bytes > 0);
        assert!(cached.build_seconds > 0.0);
        assert_eq!(cached.build_tuples, 8_192);
    }

    #[test]
    fn hot_path_issues_strictly_less_work_than_cold() {
        let (r, s) = canonical_pair(16_384, 16_384, 62);
        let join = CachedBuildJoin::new(config(8, 16_384));
        let (cold, cached) = join.execute_cold(&r, &s).unwrap();
        let hot = join.execute_hot(&cached, &s).unwrap();
        let (c, h) = (cold.counters.rollup(), hot.counters.rollup());
        assert!(h.h2d_bytes < c.h2d_bytes, "hot skips the build-side transfer: {h:?} vs {c:?}");
        assert_eq!(h.h2d_bytes, s.bytes(), "hot stages exactly the probe side");
        assert!(h.kernel_launches < c.kernel_launches, "hot skips the build partition passes");
        assert!(h.issued_transactions < c.issued_transactions);
        assert!(h.device_bytes < c.device_bytes);
        assert!(
            hot.total_seconds() < cold.total_seconds(),
            "reuse must be faster: {} vs {}",
            hot.total_seconds(),
            cold.total_seconds()
        );
    }

    #[test]
    fn hot_join_against_stale_content_diverges_from_fresh_oracle() {
        // The stale-cache failure mode the service's version bumps guard
        // against: a content update grows the build relation's key domain,
        // so probing the *old* cached table misses the new keys and the
        // check no longer matches the fresh inputs' oracle. (A reshuffle
        // alone would be oracle-invisible — unique relations with the same
        // cardinality have the same key set — which is why versioned
        // relations must change their domain, not just their seed.)
        use hcj_workload::{KeyDistribution, RelationSpec};
        let r_old = RelationSpec::unique(4_096, 63).generate();
        let r_new = RelationSpec::unique(4_160, 63).generate();
        let s = RelationSpec {
            tuples: 8_192,
            distribution: KeyDistribution::UniformFk { distinct: 4_160 },
            payload_width: 4,
            seed: 99,
        }
        .generate();
        let join = CachedBuildJoin::new(config(7, 4_096));
        let (_, cached_old) = join.execute_cold(&r_old, &s).unwrap();
        let stale = join.execute_hot(&cached_old, &s).unwrap();
        let fresh = JoinCheck::compute(&r_new, &s);
        assert_ne!(stale.check, fresh, "stale reuse is detectable");
        // Rebuilding against the new content restores agreement.
        let (_, cached_new) = join.execute_cold(&r_new, &s).unwrap();
        assert_eq!(join.execute_hot(&cached_new, &s).unwrap().check, fresh);
    }

    #[test]
    fn resident_sides_skip_exactly_their_transfer() {
        let (r, s) = canonical_pair(8_192, 24_576, 66);
        let join = CachedBuildJoin::new(config(8, 8_192));
        let expected = JoinCheck::compute(&r, &s);
        let (cold, _) = join.execute_staged(&r, &s, false, false).unwrap();
        let (probe_res, _) = join.execute_staged(&r, &s, false, true).unwrap();
        let (both_res, cached) = join.execute_staged(&r, &s, true, true).unwrap();
        for outcome in [&cold, &probe_res, &both_res] {
            assert_eq!(outcome.check, expected, "residency never changes the result");
        }
        let (c, p, b) =
            (cold.counters.rollup(), probe_res.counters.rollup(), both_res.counters.rollup());
        assert_eq!(c.h2d_bytes, r.bytes() + s.bytes(), "cold stages both sides");
        assert_eq!(p.h2d_bytes, r.bytes(), "resident probe skips its transfer");
        assert_eq!(b.h2d_bytes, 0, "both resident: no PCIe at all");
        // Partitioning still runs for resident inputs: same kernel count.
        assert_eq!(c.kernel_launches, b.kernel_launches);
        // Fully-warm hot path: cached build + resident probe.
        let warm = join.execute_hot_from(&cached, &s, true).unwrap();
        assert_eq!(warm.check, expected);
        assert_eq!(warm.counters.rollup().h2d_bytes, 0);
        let hot = join.execute_hot_from(&cached, &s, false).unwrap();
        assert_eq!(hot.counters.rollup().h2d_bytes, s.bytes());
    }

    #[test]
    fn cold_and_hot_are_deterministic() {
        let (r, s) = canonical_pair(4_096, 12_288, 65);
        let join = CachedBuildJoin::new(config(7, 4_096));
        let (a, ca) = join.execute_cold(&r, &s).unwrap();
        let (b, cb) = join.execute_cold(&r, &s).unwrap();
        assert_eq!(a.check, b.check);
        assert_eq!(ca.table_bytes, cb.table_bytes);
        assert_eq!(ca.build_seconds, cb.build_seconds);
        let ha = join.execute_hot(&ca, &s).unwrap();
        let hb = join.execute_hot(&cb, &s).unwrap();
        assert_eq!(ha.counters.rollup(), hb.counters.rollup());
        assert_eq!(ha.total_seconds(), hb.total_seconds());
    }
}
