//! Results of a join execution: correctness artifacts plus the solved
//! timeline and the throughput metrics the paper reports.

use hcj_gpu::{CounterSet, FaultLog};
use hcj_sim::{Schedule, SimTime};
use hcj_workload::oracle::{JoinCheck, JoinRow};

/// Phases of a join execution, recognized by span-label prefix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// GPU partitioning passes (`part`).
    GpuPartition,
    /// Per-co-partition join kernels (`join`).
    Join,
    /// Host→device transfers (`h2d`).
    TransferIn,
    /// Device→host transfers (`d2h`).
    TransferOut,
    /// CPU-side partitioning (`cpu`).
    CpuPartition,
    /// NUMA staging copies (`stage`).
    Staging,
}

impl Phase {
    /// The label prefix strategies use for this phase's spans.
    pub fn prefix(self) -> &'static str {
        match self {
            Phase::GpuPartition => "part",
            Phase::Join => "join",
            Phase::TransferIn => "h2d",
            Phase::TransferOut => "d2h",
            Phase::CpuPartition => "cpu",
            Phase::Staging => "stage",
        }
    }

    pub const ALL: [Phase; 6] = [
        Phase::GpuPartition,
        Phase::Join,
        Phase::TransferIn,
        Phase::TransferOut,
        Phase::CpuPartition,
        Phase::Staging,
    ];
}

/// Summed span durations per phase (durations, not wall-clock union:
/// overlapped pipeline phases can sum past the makespan).
#[derive(Clone, Debug, Default)]
pub struct PhaseBreakdown {
    times: [SimTime; 6],
    pub makespan: SimTime,
}

impl PhaseBreakdown {
    pub fn from_schedule(schedule: &Schedule) -> Self {
        let mut b = PhaseBreakdown { times: [SimTime::ZERO; 6], makespan: schedule.makespan() };
        for (i, phase) in Phase::ALL.iter().enumerate() {
            b.times[i] = schedule.total_time_labeled(phase.prefix());
        }
        b
    }

    pub fn time(&self, phase: Phase) -> SimTime {
        let idx = Phase::ALL.iter().position(|p| *p == phase).expect("phase in ALL");
        self.times[idx]
    }
}

/// The complete result of executing one join strategy.
#[derive(Debug)]
pub struct JoinOutcome {
    /// Aggregate summary of the matches (always computed; compare against
    /// [`JoinCheck::compute`]).
    pub check: JoinCheck,
    /// Materialized rows when the strategy ran in materialization mode.
    pub rows: Option<Vec<JoinRow>>,
    /// The solved execution timeline.
    pub schedule: Schedule,
    /// `|R| + |S|`: the paper's throughput denominator counts both inputs.
    pub tuples_in: u64,
    pub phases: PhaseBreakdown,
    /// Every injected fault, retry and capacity-shrink event, stamped with
    /// virtual time. Empty unless the execution ran with faults armed.
    pub faults: FaultLog,
    /// Simulated hardware counters accumulated at every charge point
    /// (kernel launches, DMA copies); see [`hcj_gpu::counters`]. Empty for
    /// strategies that never touch a simulated device (CPU fallback).
    pub counters: CounterSet,
}

impl JoinOutcome {
    pub fn new(
        check: JoinCheck,
        rows: Option<Vec<JoinRow>>,
        schedule: Schedule,
        tuples_in: u64,
    ) -> Self {
        let phases = PhaseBreakdown::from_schedule(&schedule);
        JoinOutcome {
            check,
            rows,
            schedule,
            tuples_in,
            phases,
            faults: FaultLog::default(),
            counters: CounterSet::default(),
        }
    }

    /// Attach the device's fault log (resolved against this outcome's
    /// schedule).
    pub fn with_faults(mut self, faults: FaultLog) -> Self {
        self.faults = faults;
        self
    }

    /// Attach the device's hardware-counter snapshot.
    pub fn with_counters(mut self, counters: CounterSet) -> Self {
        self.counters = counters;
        self
    }

    /// End-to-end simulated seconds.
    pub fn total_seconds(&self) -> f64 {
        self.schedule.makespan().as_secs_f64()
    }

    /// The paper's headline metric: `(|R| + |S|) / runtime`, tuples/second.
    pub fn throughput_tuples_per_s(&self) -> f64 {
        self.tuples_in as f64 / self.total_seconds()
    }

    /// Throughput of the co-partition join phase alone (the "join
    /// co-partitions" series of Figs. 5–6).
    pub fn join_phase_throughput(&self) -> f64 {
        let t = self.phases.time(Phase::Join).as_secs_f64();
        if t == 0.0 {
            f64::INFINITY
        } else {
            self.tuples_in as f64 / t
        }
    }

    /// End-to-end throughput in GB/s of input bytes (Fig. 16's metric),
    /// with 8-byte tuples.
    pub fn throughput_gbps(&self) -> f64 {
        self.tuples_in as f64 * 8.0 / self.total_seconds() / 1e9
    }

    /// Per-resource utilization over the makespan: `(name, busy fraction)`
    /// for every resource that saw work, sorted by utilization. This is
    /// how the pipelined strategies demonstrate the paper's saturation
    /// claims ("the transfer unit will always be busy", §IV-A).
    pub fn resource_report(&self) -> Vec<(String, f64)> {
        let mut resources: Vec<hcj_sim::ResourceId> =
            self.schedule.spans().iter().filter_map(|sp| sp.resource).collect();
        resources.sort_unstable();
        resources.dedup();
        let mut report: Vec<(String, f64)> = resources
            .into_iter()
            .map(|r| (self.schedule.resource_name(r).to_string(), self.schedule.utilization(r)))
            .collect();
        report.sort_by(|a, b| b.1.total_cmp(&a.1));
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcj_sim::{Op, Sim};

    fn schedule_with_phases() -> Schedule {
        let mut sim = Sim::new();
        let r = sim.fifo_resource("r", 1.0, 4);
        sim.op(Op::new(r, 1.0).label("part pass0"));
        sim.op(Op::new(r, 2.0).label("join copartitions"));
        sim.op(Op::new(r, 0.5).label("h2d chunk0"));
        sim.op(Op::new(r, 0.25).label("cpu partition c0"));
        sim.run()
    }

    #[test]
    fn breakdown_groups_by_prefix() {
        let s = schedule_with_phases();
        let b = PhaseBreakdown::from_schedule(&s);
        assert_eq!(b.time(Phase::GpuPartition).as_secs_f64(), 1.0);
        assert_eq!(b.time(Phase::Join).as_secs_f64(), 2.0);
        assert_eq!(b.time(Phase::TransferIn).as_secs_f64(), 0.5);
        assert_eq!(b.time(Phase::CpuPartition).as_secs_f64(), 0.25);
        assert_eq!(b.time(Phase::TransferOut).as_secs_f64(), 0.0);
    }

    #[test]
    fn outcome_metrics() {
        let s = schedule_with_phases();
        let check = JoinCheck { matches: 10, sum_r_payload: 1, sum_s_payload: 2 };
        let o = JoinOutcome::new(check, None, s, 4_000_000);
        assert_eq!(o.total_seconds(), 2.0); // 4 lanes: makespan = longest op
        assert_eq!(o.throughput_tuples_per_s(), 2_000_000.0);
        assert_eq!(o.join_phase_throughput(), 2_000_000.0);
        assert!((o.throughput_gbps() - 0.016).abs() < 1e-12);
    }

    #[test]
    fn resource_report_sorts_by_utilization() {
        let mut sim = Sim::new();
        let busy = sim.fifo_resource("busy", 1.0, 1);
        let idle = sim.fifo_resource("idle", 1.0, 1);
        sim.op(Op::new(busy, 4.0).label("work"));
        sim.op(Op::new(idle, 1.0).label("blip"));
        let s = sim.run();
        let check = JoinCheck { matches: 0, sum_r_payload: 0, sum_s_payload: 0 };
        let o = JoinOutcome::new(check, None, s, 1);
        let report = o.resource_report();
        assert_eq!(report.len(), 2);
        assert_eq!(report[0].0, "busy");
        assert!((report[0].1 - 1.0).abs() < 1e-9);
        assert!((report[1].1 - 0.25).abs() < 1e-9);
    }

    #[test]
    fn missing_join_phase_reports_infinite() {
        let mut sim = Sim::new();
        let r = sim.fifo_resource("r", 1.0, 1);
        sim.op(Op::new(r, 1.0).label("h2d only"));
        let s = sim.run();
        let check = JoinCheck { matches: 0, sum_r_payload: 0, sum_s_payload: 0 };
        let o = JoinOutcome::new(check, None, s, 100);
        assert!(o.join_phase_throughput().is_infinite());
    }
}
