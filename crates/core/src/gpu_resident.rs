//! The end-to-end GPU-resident partitioned join (paper §III, Figs. 5–10).
//!
//! Orchestration: both relations are radix-partitioned on the GPU into
//! shared-memory-sized bucket chains, then every co-partition pair is
//! joined by the configured probe kernel. All phases run as kernels on one
//! stream (each pass reads the previous pass's output, so in-GPU execution
//! is inherently serial); the simulated timeline therefore reflects kernel
//! durations plus launch overheads.
//!
//! Device-memory pressure is enforced: inputs, bucket pools (input and
//! output pools of a pass coexist) and materialized results all reserve
//! accounted capacity, and the strategy reports a typed
//! [`JoinError::OutOfDeviceMemory`] when the working set cannot fit — the
//! condition that sends callers to the out-of-GPU strategies of §IV.
//! With a fault plan armed ([`GpuJoinConfig::faults`]) transient kernel
//! faults are retried with backoff; device-lost propagates for the engine
//! facade to handle (CPU fallback).

use hcj_gpu::{JoinError, KernelCost, RetryPolicy};
use hcj_sim::Sim;
use hcj_workload::Relation;

use crate::config::{GpuJoinConfig, OutputMode};
use crate::join::join_all_copartitions;
use crate::outcome::JoinOutcome;
use crate::output::{late_materialization_cost, OutputSink};
use crate::partition::GpuPartitioner;

/// The paper's in-GPU partitioned hash/nested-loop join.
#[derive(Clone, Debug)]
pub struct GpuPartitionedJoin {
    pub config: GpuJoinConfig,
}

impl GpuPartitionedJoin {
    /// Create the strategy; panics if the configuration's kernels cannot
    /// launch on the configured device (mirrors a CUDA launch failure).
    pub fn new(config: GpuJoinConfig) -> Self {
        config.validate().expect("join configuration exceeds the device's shared memory");
        GpuPartitionedJoin { config }
    }

    /// Execute over GPU-resident relations; `Err` when device memory
    /// cannot hold the working set, a device fault survives its retries,
    /// or the device is lost.
    pub fn execute(&self, r: &Relation, s: &Relation) -> Result<JoinOutcome, JoinError> {
        let mut sim = Sim::new();
        let gpu = self.config.build_gpu(&mut sim);
        let retry = RetryPolicy::default();
        let mut stream = gpu.stream();

        // Inputs are resident for this scenario.
        let r_input = gpu.mem.reserve(r.bytes())?;
        let s_input = gpu.mem.reserve(s.bytes())?;

        // ---- partition both relations ----
        // Bucket-pool recycling: a partitioning pass frees its source
        // buffers as it drains them, so a relation's input and its full
        // partitioned form never coexist (this is how a ~5 GB TPC-H
        // working set fits the paper's 8 GB card, §V-C). The accounting
        // below mirrors that: each input reservation drops when its
        // partitioning completes.
        let partitioner = GpuPartitioner::new(&self.config);
        let r_out = partitioner.partition(r);
        drop(r_input);
        let _r_pool = gpu.mem.reserve(r_out.partitioned.pool.device_bytes())?;
        let r_shape = self.config.partition_launch_shape(r.len());
        for (i, pass) in r_out.passes.iter().enumerate() {
            gpu.kernel_costed_retrying(
                &mut sim,
                &mut stream,
                &format!("part r pass{i}"),
                pass.seconds,
                &pass.cost,
                r_shape,
                &retry,
            )?;
        }
        // The probe side replays the build side's early-stop decisions
        // (inert without fusion) so co-partition indices keep matching.
        let s_out = partitioner.partition_following(s, &r_out.refine_plan);
        drop(s_input);
        let _s_pool = gpu.mem.reserve(s_out.partitioned.pool.device_bytes())?;
        let s_shape = self.config.partition_launch_shape(s.len());
        for (i, pass) in s_out.passes.iter().enumerate() {
            gpu.kernel_costed_retrying(
                &mut sim,
                &mut stream,
                &format!("part s pass{i}"),
                pass.seconds,
                &pass.cost,
                s_shape,
                &retry,
            )?;
        }

        // ---- join co-partitions ----
        let mut sink = self.config.make_sink();
        let mut join_cost =
            join_all_copartitions(&self.config, &r_out.partitioned, &s_out.partitioned, &mut sink);
        join_cost += sink.cost();
        // Late materialization of wide payloads: both sides were reordered
        // by partitioning, so every fetch is scattered (Figs. 9–10).
        join_cost += late_materialization_cost(sink.matches(), r.payload_width, true);
        join_cost += late_materialization_cost(sink.matches(), s.payload_width, true);
        let _result_buf = match self.config.output {
            OutputMode::Materialize => {
                Some(gpu.mem.reserve(self.config.result_buffer_bytes(sink.matches()))?)
            }
            OutputMode::Aggregate => None,
        };
        let join_shape = self.config.join_launch_shape(crate::join::live_copartitions(
            &r_out.partitioned,
            &s_out.partitioned,
        ));
        gpu.kernel_costed_retrying(
            &mut sim,
            &mut stream,
            "join copartitions",
            join_cost.time(&gpu.spec),
            &join_cost,
            join_shape,
            &retry,
        )?;

        let schedule = sim.run();
        let faults = gpu.fault_log(&schedule);
        let counters = gpu.counters();
        let check = sink.check();
        let rows = match self.config.output {
            OutputMode::Materialize => Some(sink.into_rows()),
            OutputMode::Aggregate => None,
        };
        Ok(JoinOutcome::new(check, rows, schedule, (r.len() + s.len()) as u64)
            .with_faults(faults)
            .with_counters(counters))
    }

    /// The join-kernel traffic of the last phase for external composition
    /// (used by the out-of-GPU strategies, which run the same co-partition
    /// join per chunk).
    pub fn join_kernel_cost(
        &self,
        r: &crate::partition::PartitionedRelation,
        s: &crate::partition::PartitionedRelation,
        sink: &mut OutputSink,
    ) -> KernelCost {
        join_all_copartitions(&self.config, r, s, sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcj_gpu::DeviceSpec;
    use hcj_workload::generate::canonical_pair;
    use hcj_workload::oracle::{assert_join_matches, JoinCheck};
    use hcj_workload::RelationSpec;

    use crate::config::ProbeKind;

    fn small_config(bits: u32, tuples: usize) -> GpuJoinConfig {
        GpuJoinConfig::paper_default(DeviceSpec::gtx1080())
            .with_radix_bits(bits)
            .with_tuned_buckets(tuples)
    }

    #[test]
    fn aggregates_match_oracle() {
        let (r, s) = canonical_pair(16_384, 65_536, 31);
        let join = GpuPartitionedJoin::new(small_config(8, 16_384));
        let out = join.execute(&r, &s).unwrap();
        assert_eq!(out.check, JoinCheck::compute(&r, &s));
        assert!(out.rows.is_none());
        assert!(out.total_seconds() > 0.0);
        assert!(out.throughput_tuples_per_s() > 0.0);
    }

    #[test]
    fn materialization_matches_oracle() {
        let (r, s) = canonical_pair(4096, 8192, 32);
        let join =
            GpuPartitionedJoin::new(small_config(6, 4096).with_output(OutputMode::Materialize));
        let out = join.execute(&r, &s).unwrap();
        assert_join_matches(&r, &s, out.rows.as_ref().unwrap());
    }

    #[test]
    fn materialization_is_slower_but_not_catastrophic() {
        let (r, s) = canonical_pair(32_768, 32_768, 33);
        let agg = GpuPartitionedJoin::new(small_config(9, 32_768)).execute(&r, &s).unwrap();
        let mat =
            GpuPartitionedJoin::new(small_config(9, 32_768).with_output(OutputMode::Materialize))
                .execute(&r, &s)
                .unwrap();
        let t_agg = agg.total_seconds();
        let t_mat = mat.total_seconds();
        assert!(t_mat >= t_agg);
        // Fig. 7: materialization "traces" aggregation — under 2x here.
        assert!(t_mat < 2.0 * t_agg, "agg {t_agg} mat {t_mat}");
    }

    #[test]
    fn nested_loop_probe_matches_oracle() {
        let (r, s) = canonical_pair(4096, 4096, 34);
        let join = GpuPartitionedJoin::new(small_config(7, 4096).with_probe(ProbeKind::NestedLoop));
        let out = join.execute(&r, &s).unwrap();
        assert_eq!(out.check, JoinCheck::compute(&r, &s));
    }

    #[test]
    fn phases_are_populated() {
        let (r, s) = canonical_pair(8192, 8192, 35);
        let out = GpuPartitionedJoin::new(small_config(8, 8192)).execute(&r, &s).unwrap();
        use crate::outcome::Phase;
        assert!(out.phases.time(Phase::GpuPartition).as_nanos() > 0);
        assert!(out.phases.time(Phase::Join).as_nanos() > 0);
        assert_eq!(out.phases.time(Phase::TransferIn).as_nanos(), 0);
        assert!(out.join_phase_throughput() > out.throughput_tuples_per_s());
    }

    #[test]
    fn too_large_working_set_reports_oom() {
        // A 1 GB-capacity device cannot hold two 400 MB relations plus
        // their bucket pools.
        let device = DeviceSpec::gtx1080().scaled_capacity(8);
        let cfg = GpuJoinConfig::paper_default(device).with_radix_bits(8);
        let r = RelationSpec::unique(50_000_000 / 8 * 8, 1); // ~50M tuples = 400 MB
                                                             // Generating 50M tuples for real is wasteful here; fake the size
                                                             // with a small relation and an explicit byte check instead.
        let _ = r;
        let small = RelationSpec::unique(1024, 36).generate();
        // Shrink the device below even the small inputs to exercise the path.
        let tiny = DeviceSpec::gtx1080().scaled_capacity(1 << 24); // 512 B
        let cfg = GpuJoinConfig { device: tiny, ..cfg };
        let join = GpuPartitionedJoin::new(cfg.with_tuned_buckets(1024));
        let err = join.execute(&small, &small).unwrap_err();
        assert!(err.is_transient());
        match err {
            JoinError::OutOfDeviceMemory(oom) => assert!(oom.requested > 0),
            other => panic!("expected OOM, got {other}"),
        }
    }

    #[test]
    fn fused_refinement_matches_unfused_and_is_no_slower() {
        // Uniform and skewed workloads, fused vs unfused: identical join
        // results (the oracle-differential guarantee the speed campaign
        // rests on), with fused runs at least as fast.
        let workloads = [
            canonical_pair(50_000, 200_000, 41),
            (
                RelationSpec::zipf(30_000, 1 << 16, 1.0, 42).generate(),
                RelationSpec::zipf(120_000, 1 << 16, 1.0, 43).generate(),
            ),
        ];
        for (r, s) in &workloads {
            let base = small_config(12, r.len());
            let unfused = GpuPartitionedJoin::new(base.clone()).execute(r, s).unwrap();
            let fused =
                GpuPartitionedJoin::new(base.with_fused_refinement(true)).execute(r, s).unwrap();
            assert_eq!(fused.check, JoinCheck::compute(r, s));
            assert_eq!(fused.check, unfused.check);
            assert!(
                fused.total_seconds() <= unfused.total_seconds(),
                "fused {} vs unfused {}",
                fused.total_seconds(),
                unfused.total_seconds()
            );
        }
    }

    #[test]
    fn fused_materialization_matches_oracle() {
        let (r, s) = canonical_pair(20_000, 40_000, 44);
        let join = GpuPartitionedJoin::new(
            small_config(10, 20_000)
                .with_fused_refinement(true)
                .with_output(OutputMode::Materialize),
        );
        let out = join.execute(&r, &s).unwrap();
        assert_join_matches(&r, &s, out.rows.as_ref().unwrap());
    }

    #[test]
    fn skewed_inputs_still_join_correctly() {
        let r = RelationSpec::zipf(20_000, 4096, 0.9, 37).generate();
        let s = RelationSpec::zipf(20_000, 4096, 0.9, 38).generate();
        let join = GpuPartitionedJoin::new(small_config(6, 20_000));
        let out = join.execute(&r, &s).unwrap();
        assert_eq!(out.check, JoinCheck::compute(&r, &s));
    }

    #[test]
    fn wide_payloads_slow_the_join() {
        let (mut r, mut s) = canonical_pair(32_768, 32_768, 39);
        let narrow = GpuPartitionedJoin::new(small_config(9, 32_768)).execute(&r, &s).unwrap();
        r.payload_width = 128;
        s.payload_width = 128;
        let wide = GpuPartitionedJoin::new(small_config(9, 32_768)).execute(&r, &s).unwrap();
        assert_eq!(narrow.check, wide.check);
        assert!(wide.total_seconds() > narrow.total_seconds());
    }
}
