//! A catalog of named, versioned build relations for serving workloads.
//!
//! Production join traffic is heavily skewed toward a few dimension
//! tables; the serving layer's build-side cache only matters if requests
//! actually *name* the relation they join against, so reuse is
//! identifiable. This module provides that identity: a [`BuildCatalog`]
//! of [`CatalogRelation`]s, each addressed by a stable id plus a content
//! version, and a Zipf [`PopularityStream`] for drawing which relation
//! the next request wants (rank 1 = hottest).
//!
//! **Version bumps change the content, observably.** A bump grows the
//! relation by [`VERSION_GROWTH_TUPLES`] unique keys (and reshuffles).
//! Growing the key domain — rather than just reseeding the shuffle — is
//! deliberate: two unique-key relations of equal cardinality contain the
//! *same key set*, so a stale cached build of the old version would pass
//! every oracle check. With the domain grown, probe keys drawn over the
//! new domain miss in a stale table and the join check diverges — cache
//! invalidation bugs fail tests instead of hiding.

use crate::generate::RelationSpec;
use crate::rng::{Rng, SmallRng};
use crate::zipf::ZipfSampler;

/// Tuples added to a catalog relation per content-version bump.
pub const VERSION_GROWTH_TUPLES: usize = 64;

/// What a request's build side refers to: which catalog relation, at
/// which content version. The cache key of the serving layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BuildRef {
    /// Stable catalog identity of the relation.
    pub id: u64,
    /// Content version the request was generated against; a cached build
    /// of an older version is stale and must be invalidated.
    pub version: u64,
}

/// One named build relation of the catalog, at its current version.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CatalogRelation {
    /// Stable identity (the cache key, with `version`).
    pub id: u64,
    /// Current content version; starts at 0, bumped by updates.
    pub version: u64,
    /// Cardinality at version 0; the current cardinality grows with the
    /// version (see [`VERSION_GROWTH_TUPLES`]).
    pub base_tuples: usize,
    /// Logical payload width in bytes.
    pub payload_width: u32,
    /// Generation seed of the version-0 content.
    pub seed: u64,
}

impl CatalogRelation {
    /// Current cardinality: the base plus the growth of every bump.
    pub fn tuples(&self) -> usize {
        self.base_tuples + VERSION_GROWTH_TUPLES * self.version as usize
    }

    /// The cache key of this relation at its current version.
    pub fn build_ref(&self) -> BuildRef {
        BuildRef { id: self.id, version: self.version }
    }

    /// Generator spec of the current content: unique keys over the
    /// version's (grown) domain, reshuffled per version.
    pub fn spec(&self) -> RelationSpec {
        RelationSpec::unique(
            self.tuples(),
            self.seed ^ self.version.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        )
        .with_payload_width(self.payload_width)
    }
}

/// A deterministic catalog of versioned build relations.
#[derive(Clone, Debug)]
pub struct BuildCatalog {
    relations: Vec<CatalogRelation>,
}

impl BuildCatalog {
    /// `n` dimension tables with cardinalities in `[base, 3*base]`, all
    /// derived from `seed`. Ids are `0..n`; every relation starts at
    /// version 0.
    pub fn dimension_tables(n: usize, base_tuples: usize, seed: u64) -> Self {
        assert!(n >= 1, "a catalog needs at least one relation");
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xD1B5_4A32_D192_ED03);
        let relations = (0..n)
            .map(|id| CatalogRelation {
                id: id as u64,
                version: 0,
                base_tuples: base_tuples * rng.gen_range_u64(1, 3) as usize,
                payload_width: 4,
                seed: seed.wrapping_mul(0x100_0000_01B3).wrapping_add(id as u64),
            })
            .collect();
        BuildCatalog { relations }
    }

    /// Number of relations in the catalog.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// True when the catalog holds no relations (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// The relation at catalog index `idx` (not id — though they coincide
    /// for [`BuildCatalog::dimension_tables`]).
    pub fn get(&self, idx: usize) -> &CatalogRelation {
        &self.relations[idx]
    }

    /// A content update: bump the version of the relation at `idx`. Its
    /// key domain grows and reshuffles; cached builds of the old version
    /// are stale from this point on.
    pub fn bump_version(&mut self, idx: usize) {
        self.relations[idx].version += 1;
    }
}

/// A Zipf-skewed stream of catalog indices: which relation the next
/// request's build side is (rank 1, index 0 = the hottest relation).
#[derive(Clone, Debug)]
pub struct PopularityStream {
    zipf: ZipfSampler,
    rng: SmallRng,
}

impl PopularityStream {
    /// Draw over `n` relations with Zipf exponent `theta` (`0` =
    /// uniform), seeded for reproducibility.
    pub fn new(n: usize, theta: f64, seed: u64) -> Self {
        PopularityStream {
            zipf: ZipfSampler::new(n as u64, theta),
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// The catalog index of the next request's build relation.
    pub fn next_index(&mut self) -> usize {
        (self.zipf.sample(&mut self.rng) - 1) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn catalog_is_deterministic_and_sized() {
        let a = BuildCatalog::dimension_tables(8, 1_000, 7);
        let b = BuildCatalog::dimension_tables(8, 1_000, 7);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert_eq!(a.len(), 8);
        assert!(!a.is_empty());
        for idx in 0..a.len() {
            let rel = a.get(idx);
            assert_eq!(rel.id, idx as u64);
            assert_eq!(rel.version, 0);
            assert!((1_000..=3_000).contains(&rel.tuples()));
        }
        let sizes: HashSet<usize> = (0..a.len()).map(|i| a.get(i).tuples()).collect();
        assert!(sizes.len() > 1, "cardinalities vary: {sizes:?}");
    }

    #[test]
    fn version_bump_grows_the_key_domain() {
        let mut cat = BuildCatalog::dimension_tables(2, 500, 3);
        let before = *cat.get(1);
        cat.bump_version(1);
        let after = *cat.get(1);
        assert_eq!(after.version, before.version + 1);
        assert_eq!(after.tuples(), before.tuples() + VERSION_GROWTH_TUPLES);
        assert_ne!(after.build_ref(), before.build_ref());
        assert_eq!(after.build_ref().id, before.build_ref().id);
        // The new content has keys the old content lacks.
        let old_keys: HashSet<u32> = before.spec().generate().keys.iter().copied().collect();
        let new_keys: HashSet<u32> = after.spec().generate().keys.iter().copied().collect();
        assert!(new_keys.len() > old_keys.len());
        assert!(old_keys.is_subset(&new_keys));
    }

    #[test]
    fn popularity_stream_is_skewed_and_deterministic() {
        let draw = |seed| {
            let mut s = PopularityStream::new(8, 1.0, seed);
            (0..500).map(|_| s.next_index()).collect::<Vec<usize>>()
        };
        assert_eq!(draw(9), draw(9));
        let seq = draw(9);
        assert!(seq.iter().all(|&i| i < 8));
        let head = seq.iter().filter(|&&i| i == 0).count();
        let tail = seq.iter().filter(|&&i| i == 7).count();
        assert!(head > 3 * tail.max(1), "rank 1 dominates: head={head} tail={tail}");
    }
}
