//! Multi-join query plans: operator DAGs over the catalog, plus the
//! plan-level oracle that composes the per-join CPU reference oracle in
//! dependency order.
//!
//! The serving layer's unit of work grows here from one join to a small
//! TPC-H-shaped plan: scans feed joins, joins feed further joins, and a
//! final materialize folds the root(s). A [`PlanSpec`] is a topologically
//! ordered op list (every op only references smaller op ids), which makes
//! the DAG acyclic *by construction* and gives the scheduler a canonical
//! op order for deterministic tie-breaking.
//!
//! Two generated shapes cover the interesting regimes:
//!
//! * **chain** — a left-deep pipeline `(((F ⨝ D1) ⨝ D2) ⨝ D3)`: each
//!   join consumes the previous join's materialized output as its probe
//!   side, which is what exercises the pin-vs-spill decision for
//!   intermediates.
//! * **star** — `F ⨝ D1`, `F ⨝ D2`, `F ⨝ D3` sharing one fact scan:
//!   the joins become ready simultaneously (ready-batch fan-out onto the
//!   host pool) and every dimension is a named, cacheable build side.
//!
//! Intermediate results are canonicalized ([`rows_to_relation`] sorts the
//! join rows before packing them) so a downstream join sees byte-identical
//! input no matter which strategy — or the CPU oracle — produced it.

use crate::catalog::{BuildCatalog, BuildRef};
use crate::generate::RelationSpec;
use crate::oracle::{reference_join, JoinCheck, JoinRow};
use crate::relation::{Relation, Tuple};

/// One operator of a query plan. Input indices always reference earlier
/// ops (`input < own id`), so any `Vec<PlanOp>` with valid indices is a
/// DAG in topological order.
#[derive(Clone, Debug, PartialEq)]
pub enum PlanOp {
    /// Produce a base relation from its generator spec. `build` names the
    /// catalog relation when this scan is a cacheable dimension table.
    Scan {
        /// Generator of the scanned relation.
        spec: RelationSpec,
        /// Catalog identity, when the relation is named (cacheable).
        build: Option<BuildRef>,
    },
    /// Equi-join the outputs of two earlier ops. Which side builds is
    /// decided by size at execution time (see [`build_is_left`]).
    Join {
        /// Op id of the left input.
        left: usize,
        /// Op id of the right input.
        right: usize,
    },
    /// Terminal sink folding the listed join outputs into the final
    /// result. Always the last op of a well-formed plan.
    Materialize {
        /// Op ids of the join outputs to fold.
        inputs: Vec<usize>,
    },
}

impl PlanOp {
    /// The op ids this op consumes (empty for scans).
    pub fn inputs(&self) -> Vec<usize> {
        match self {
            PlanOp::Scan { .. } => Vec::new(),
            PlanOp::Join { left, right } => vec![*left, *right],
            PlanOp::Materialize { inputs } => inputs.clone(),
        }
    }

    /// Short kind tag for labels and summaries.
    pub fn kind(&self) -> &'static str {
        match self {
            PlanOp::Scan { .. } => "scan",
            PlanOp::Join { .. } => "join",
            PlanOp::Materialize { .. } => "materialize",
        }
    }
}

/// A multi-join query plan: ops in topological order, ending in one
/// [`PlanOp::Materialize`] sink.
#[derive(Clone, Debug, PartialEq)]
pub struct PlanSpec {
    /// The operators, in topological order (inputs < own id).
    pub ops: Vec<PlanOp>,
}

impl PlanSpec {
    /// Check the structural invariants every consumer of a plan relies
    /// on. Returns the first violation as a message.
    ///
    /// * ops non-empty, every input id smaller than the op's own id;
    /// * exactly one materialize, and it is the last op;
    /// * at least one join; join inputs distinct; materialize folds joins;
    /// * no dangling ops: everything except the sink is consumed.
    pub fn validate(&self) -> Result<(), String> {
        if self.ops.is_empty() {
            return Err("empty plan".into());
        }
        let n = self.ops.len();
        let mut consumed = vec![false; n];
        for (id, op) in self.ops.iter().enumerate() {
            for input in op.inputs() {
                if input >= id {
                    return Err(format!("op {id} references op {input} (not topological)"));
                }
                consumed[input] = true;
            }
            match op {
                PlanOp::Join { left, right } if left == right => {
                    return Err(format!("op {id} joins op {left} with itself"));
                }
                PlanOp::Materialize { inputs } => {
                    if id != n - 1 {
                        return Err(format!("materialize at op {id} is not the last op"));
                    }
                    if inputs.is_empty() {
                        return Err("materialize folds no inputs".into());
                    }
                    for &input in inputs {
                        if !matches!(self.ops[input], PlanOp::Join { .. }) {
                            return Err(format!("materialize folds non-join op {input}"));
                        }
                    }
                }
                _ => {}
            }
        }
        if !matches!(self.ops[n - 1], PlanOp::Materialize { .. }) {
            return Err("last op is not a materialize sink".into());
        }
        if self.join_count() == 0 {
            return Err("plan has no joins".into());
        }
        if let Some(id) = (0..n - 1).find(|&id| !consumed[id]) {
            return Err(format!("op {id} is dangling (never consumed)"));
        }
        Ok(())
    }

    /// Number of join ops.
    pub fn join_count(&self) -> usize {
        self.ops.iter().filter(|op| matches!(op, PlanOp::Join { .. })).count()
    }

    /// For every op, the ops that consume its output.
    pub fn consumers(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.ops.len()];
        for (id, op) in self.ops.iter().enumerate() {
            for input in op.inputs() {
                out[input].push(id);
            }
        }
        out
    }

    /// Estimated output cardinality per op, from the specs alone (no
    /// generation): scans report their spec cardinality; a join reports
    /// the larger input (an upper bound for unique-build joins, the shape
    /// the generators emit); the sink reports the sum of its inputs.
    /// Feeds the admission-control footprint envelope.
    pub fn estimated_rows(&self) -> Vec<u64> {
        let mut rows = vec![0u64; self.ops.len()];
        for (id, op) in self.ops.iter().enumerate() {
            rows[id] = match op {
                PlanOp::Scan { spec, .. } => spec.tuples as u64,
                PlanOp::Join { left, right } => rows[*left].max(rows[*right]),
                PlanOp::Materialize { inputs } => inputs.iter().map(|&i| rows[i]).sum(),
            };
        }
        rows
    }
}

/// The build-side orientation rule, shared by the executor and the plan
/// oracle: the smaller input (by staged bytes) builds, ties go left.
pub fn build_is_left(left: &Relation, right: &Relation) -> bool {
    left.bytes() <= right.bytes()
}

/// Combine the two payloads of a join row into the payload of the
/// intermediate tuple handed to downstream joins. Any deterministic
/// mixing works — both the executor and the oracle use this one, so
/// downstream checks agree exactly.
pub fn combine_payloads(r_payload: u32, s_payload: u32) -> u32 {
    r_payload.wrapping_mul(31).wrapping_add(s_payload.rotate_left(16))
}

/// Canonicalize materialized join rows into the intermediate relation a
/// downstream join consumes: rows sorted (strategy output order is
/// worker-count dependent; the sorted order is not), payloads combined
/// via [`combine_payloads`], 4-byte payload width.
pub fn rows_to_relation(rows: &[JoinRow]) -> Relation {
    let mut sorted = rows.to_vec();
    sorted.sort_unstable();
    let mut rel = Relation::with_capacity(sorted.len());
    for (key, rp, sp) in sorted {
        rel.push(Tuple { key, payload: combine_payloads(rp, sp) });
    }
    rel
}

/// Ground truth for one plan, composed op by op with the CPU reference
/// oracle in dependency order.
#[derive(Clone, Debug)]
pub struct PlanOracle {
    /// Per-op expected join summary (`None` for scans and the sink).
    pub checks: Vec<Option<JoinCheck>>,
    /// Per-op output relation (scans and joins; `None` for the sink).
    pub outputs: Vec<Option<Relation>>,
    /// Total matches across the sink's folded join outputs.
    pub final_matches: u64,
}

/// Execute the plan entirely on the CPU oracle: generate every scan,
/// run [`reference_join`] per join in dependency order (same build
/// orientation and payload combination as the real executor), and fold
/// the sink. The per-op `checks` are what any correct executor must
/// reproduce op by op.
pub fn plan_oracle(plan: &PlanSpec) -> PlanOracle {
    plan.validate().expect("oracle requires a well-formed plan");
    let n = plan.ops.len();
    let mut outputs: Vec<Option<Relation>> = vec![None; n];
    let mut checks: Vec<Option<JoinCheck>> = vec![None; n];
    let mut final_matches = 0u64;
    for (id, op) in plan.ops.iter().enumerate() {
        match op {
            PlanOp::Scan { spec, .. } => outputs[id] = Some(spec.generate()),
            PlanOp::Join { left, right } => {
                let l = outputs[*left].as_ref().expect("topological order");
                let r = outputs[*right].as_ref().expect("topological order");
                let (build, probe) = if build_is_left(l, r) { (l, r) } else { (r, l) };
                let rows = reference_join(build, probe);
                checks[id] = Some(JoinCheck::from_rows(&rows));
                outputs[id] = Some(rows_to_relation(&rows));
            }
            PlanOp::Materialize { inputs } => {
                final_matches =
                    inputs.iter().map(|&i| checks[i].expect("sink folds joins").matches).sum();
            }
        }
    }
    PlanOracle { checks, outputs, final_matches }
}

/// A left-deep chain over the catalog: `F ⨝ D1`, then each further
/// dimension joins the previous intermediate. `dims` are catalog indices
/// (one join per entry, 2–4 of them); the fact side draws `fact_tuples`
/// foreign keys over the first dimension's domain so the root join is
/// dense and later joins thin out over the smaller shared domains.
pub fn chain_plan(
    catalog: &BuildCatalog,
    dims: &[usize],
    fact_tuples: usize,
    seed: u64,
) -> PlanSpec {
    let mut ops = scan_ops(catalog, dims, fact_tuples, seed);
    let n = dims.len();
    // Join 1 pairs the first dimension scan (op 1) with the fact scan
    // (op 0); join i pairs dimension scan i with the previous join.
    ops.push(PlanOp::Join { left: 1, right: 0 });
    for i in 2..=n {
        ops.push(PlanOp::Join { left: i, right: n + i - 1 });
    }
    ops.push(PlanOp::Materialize { inputs: vec![2 * n] });
    let plan = PlanSpec { ops };
    debug_assert!(plan.validate().is_ok());
    plan
}

/// A star over the catalog: every dimension joins the same fact scan
/// directly, so all joins become ready in one batch and the sink folds
/// them all.
pub fn star_plan(
    catalog: &BuildCatalog,
    dims: &[usize],
    fact_tuples: usize,
    seed: u64,
) -> PlanSpec {
    let mut ops = scan_ops(catalog, dims, fact_tuples, seed);
    let n = dims.len();
    for i in 1..=n {
        ops.push(PlanOp::Join { left: i, right: 0 });
    }
    ops.push(PlanOp::Materialize { inputs: (n + 1..=2 * n).collect() });
    let plan = PlanSpec { ops };
    debug_assert!(plan.validate().is_ok());
    plan
}

/// Shared scan prefix of both shapes: op 0 scans the fact side (foreign
/// keys over the first dimension's current domain), ops `1..=dims.len()`
/// scan the named dimension tables at their current versions.
fn scan_ops(catalog: &BuildCatalog, dims: &[usize], fact_tuples: usize, seed: u64) -> Vec<PlanOp> {
    assert!((2..=4).contains(&dims.len()), "plans carry 2-4 joins, got {} dimensions", dims.len());
    let first = catalog.get(dims[0]);
    let fact = RelationSpec {
        tuples: fact_tuples,
        distribution: crate::generate::KeyDistribution::UniformFk {
            distinct: first.tuples() as u64,
        },
        payload_width: 4,
        seed: seed ^ 0xA076_1D64_78BD_642F,
    };
    let mut ops = vec![PlanOp::Scan { spec: fact, build: None }];
    for &idx in dims {
        let rel = catalog.get(idx);
        ops.push(PlanOp::Scan { spec: rel.spec(), build: Some(rel.build_ref()) });
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::assert_join_matches;

    fn catalog() -> BuildCatalog {
        BuildCatalog::dimension_tables(6, 800, 7)
    }

    #[test]
    fn generated_shapes_are_well_formed() {
        let cat = catalog();
        for dims in [vec![0, 1], vec![2, 0, 4], vec![0, 1, 2, 3]] {
            let chain = chain_plan(&cat, &dims, 4_000, 11);
            let star = star_plan(&cat, &dims, 4_000, 11);
            chain.validate().expect("chain well-formed");
            star.validate().expect("star well-formed");
            assert_eq!(chain.join_count(), dims.len());
            assert_eq!(star.join_count(), dims.len());
            // 1 fact scan + n dim scans + n joins + sink.
            assert_eq!(chain.ops.len(), 2 * dims.len() + 2);
            assert_eq!(star.ops.len(), 2 * dims.len() + 2);
        }
    }

    #[test]
    fn validation_rejects_malformed_plans() {
        let scan = PlanOp::Scan { spec: RelationSpec::unique(8, 1), build: None };
        let cases: Vec<(PlanSpec, &str)> = vec![
            (PlanSpec { ops: vec![] }, "empty"),
            (
                PlanSpec {
                    ops: vec![
                        scan.clone(),
                        PlanOp::Join { left: 0, right: 2 },
                        PlanOp::Materialize { inputs: vec![1] },
                    ],
                },
                "not topological",
            ),
            (
                PlanSpec {
                    ops: vec![
                        scan.clone(),
                        PlanOp::Join { left: 0, right: 0 },
                        PlanOp::Materialize { inputs: vec![1] },
                    ],
                },
                "with itself",
            ),
            (
                PlanSpec { ops: vec![scan.clone(), PlanOp::Materialize { inputs: vec![0] }] },
                "non-join",
            ),
            (PlanSpec { ops: vec![scan.clone()] }, "not a materialize"),
            (
                PlanSpec {
                    ops: vec![
                        scan.clone(),
                        scan.clone(),
                        scan.clone(),
                        PlanOp::Join { left: 0, right: 1 },
                        PlanOp::Materialize { inputs: vec![3] },
                    ],
                },
                "dangling",
            ),
        ];
        for (plan, needle) in cases {
            let err = plan.validate().expect_err("must reject");
            assert!(err.contains(needle), "{err:?} lacks {needle:?}");
        }
    }

    #[test]
    fn rows_to_relation_is_order_free_and_checkable() {
        let rows = vec![(3, 30, 300), (1, 10, 100), (2, 20, 200), (1, 11, 100)];
        let mut shuffled = rows.clone();
        shuffled.reverse();
        let a = rows_to_relation(&rows);
        let b = rows_to_relation(&shuffled);
        assert_eq!(a, b, "canonicalization erases production order");
        assert_eq!(a.keys, vec![1, 1, 2, 3]);
        assert_eq!(a.payloads[0], combine_payloads(10, 100));
    }

    #[test]
    fn plan_oracle_composes_the_per_join_oracle() {
        let cat = catalog();
        let plan = chain_plan(&cat, &[0, 1, 2], 3_000, 5);
        let oracle = plan_oracle(&plan);
        // Root join: every fact key hits the first dimension (FK domain).
        let root = oracle.checks[4].expect("join op");
        assert_eq!(root.matches, 3_000);
        // Each join's rows must equal the pairwise reference join of its
        // (canonicalized) inputs, in the shared build orientation.
        for (id, op) in plan.ops.iter().enumerate() {
            if let PlanOp::Join { left, right } = op {
                let l = oracle.outputs[*left].as_ref().unwrap();
                let r = oracle.outputs[*right].as_ref().unwrap();
                let (b, p) = if build_is_left(l, r) { (l, r) } else { (r, l) };
                let check = oracle.checks[id].unwrap();
                assert_eq!(check, JoinCheck::compute(b, p), "op {id}");
                let out = oracle.outputs[id].as_ref().unwrap();
                let rows: Vec<JoinRow> = reference_join(b, p);
                assert_join_matches(b, p, &rows);
                assert_eq!(out.len() as u64, check.matches);
            }
        }
        // The sink folds the single chain root.
        let last_join = oracle.checks[6].unwrap();
        assert_eq!(oracle.final_matches, last_join.matches);
    }

    #[test]
    fn star_oracle_folds_every_arm() {
        let cat = catalog();
        let plan = star_plan(&cat, &[1, 3, 5], 2_000, 9);
        let oracle = plan_oracle(&plan);
        let arms: u64 = (4..=6).map(|id| oracle.checks[id].unwrap().matches).sum();
        assert_eq!(oracle.final_matches, arms);
        // The first arm is dense by construction.
        assert_eq!(oracle.checks[4].unwrap().matches, 2_000);
    }

    #[test]
    fn oracle_is_deterministic() {
        let cat = catalog();
        let plan = star_plan(&cat, &[0, 2], 1_500, 3);
        let a = plan_oracle(&plan);
        let b = plan_oracle(&plan);
        assert_eq!(a.checks, b.checks);
        assert_eq!(a.final_matches, b.final_matches);
    }
}
