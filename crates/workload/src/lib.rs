//! Workload generation for the join experiments.
//!
//! The paper adopts the workload used by the CPU-join literature
//! (Balkesen et al., Kim et al., Blanas et al.): two narrow tables of
//! `(4-byte key, 4-byte payload)` tuples in columnar layout, the smaller
//! used as build side. Key distributions vary per experiment:
//!
//! * unique uniform keys (most figures),
//! * Zipf-skewed foreign keys on the probe side, the build side, or both
//!   with identical skew (Figs. 17–18, 20),
//! * uniform with a fixed number of replicas per key (Fig. 19),
//! * TPC-H `customer`/`orders`/`lineitem` join columns (Fig. 14).
//!
//! Payload-width experiments (Figs. 9–10) use late materialization: the
//! 4-byte payload column holds row identifiers into a wide attribute table,
//! so functional execution stays 8 bytes/tuple and only the modeled
//! late-materialization traffic changes; [`Relation::payload_width`]
//! records the logical width.

pub mod catalog;
pub mod generate;
pub mod oracle;
pub mod plan;
pub mod relation;
pub mod rng;
pub mod tpch;
pub mod zipf;

pub use catalog::{BuildCatalog, BuildRef, CatalogRelation, PopularityStream};
pub use generate::{KeyDistribution, RelationSpec};
pub use oracle::{
    composed_join_check, exchange_partition, partition_by_key, reference_join, JoinCheck,
};
pub use plan::{chain_plan, plan_oracle, star_plan, PlanOp, PlanOracle, PlanSpec};
pub use relation::{Relation, Tuple};
pub use rng::{Rng, SmallRng};
pub use zipf::ZipfSampler;
