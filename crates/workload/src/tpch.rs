//! TPC-H join-column generator (paper Fig. 14).
//!
//! Figure 14 joins `lineitem` with `customer` and with `orders`. Only the
//! join key columns and a 4-byte payload participate (the systems under
//! test all run late-materialized column joins), so this module generates
//! exactly those columns with the cardinalities and key distributions of
//! the TPC-H specification §4.2.3:
//!
//! * `customer`: `SF * 150_000` rows, dense `c_custkey`;
//! * `orders`: `SF * 1_500_000` rows, **sparse** `o_orderkey` (8 keys
//!   populated in every group of 32), `o_custkey` drawn from the third of
//!   customers that have orders filtered out (custkey ≢ 0 (mod 3) in
//!   spirit: dbgen skips every third customer);
//! * `lineitem`: 1–7 lines per order (≈ `SF * 6_000_000` rows), carrying
//!   the parent `l_orderkey` and, denormalized for the customer join, the
//!   parent order's `o_custkey`.
//!
//! Fractional scale factors are supported so the harness can run reduced
//! scales with the same shape (DESIGN.md §5).

use crate::generate::payload_of;
use crate::relation::{Relation, Tuple};
use crate::rng::{Rng, SmallRng};

/// The generated join columns of one TPC-H instance.
#[derive(Clone, Debug)]
pub struct TpchTables {
    /// `c_custkey` (build side of the customer join).
    pub customer: Relation,
    /// `o_orderkey` (build side of the orders join).
    pub orders: Relation,
    /// `l_orderkey` (probe side of the orders join).
    pub lineitem_orderkey: Relation,
    /// Denormalized customer key per lineitem (probe side of the customer
    /// join).
    pub lineitem_custkey: Relation,
}

/// dbgen's sparse order keys: in every group of 32 consecutive key values,
/// only the first 8 are used.
pub fn sparse_orderkey(ordinal: u64) -> u32 {
    let group = ordinal / 8;
    let within = ordinal % 8;
    u32::try_from(group * 32 + within + 1).expect("orderkey overflows u32")
}

impl TpchTables {
    /// Generate at scale factor `sf` (fractional allowed, > 0).
    pub fn generate(sf: f64, seed: u64) -> TpchTables {
        assert!(sf > 0.0 && sf.is_finite(), "scale factor must be positive");
        let n_cust = ((150_000.0 * sf) as usize).max(1);
        let n_orders = ((1_500_000.0 * sf) as usize).max(1);
        let mut rng = SmallRng::seed_from_u64(seed);

        let customer: Relation =
            (1..=n_cust as u32).map(|k| Tuple { key: k, payload: payload_of(k) }).collect();

        let mut orders = Relation::with_capacity(n_orders);
        let mut lineitem_orderkey = Relation::with_capacity(n_orders * 4);
        let mut lineitem_custkey = Relation::with_capacity(n_orders * 4);
        for i in 0..n_orders as u64 {
            let okey = sparse_orderkey(i);
            // dbgen: a third of customers never appear in orders.
            let custkey = loop {
                let c = rng.gen_range_u64(1, n_cust as u64) as u32;
                if c % 3 != 0 || n_cust < 3 {
                    break c;
                }
            };
            orders.push(Tuple { key: okey, payload: payload_of(okey) });
            let lines = rng.gen_range_u64(1, 7) as u32;
            for _ in 0..lines {
                lineitem_orderkey.push(Tuple { key: okey, payload: payload_of(okey) });
                lineitem_custkey.push(Tuple { key: custkey, payload: payload_of(custkey) });
            }
        }
        TpchTables { customer, orders, lineitem_orderkey, lineitem_custkey }
    }

    /// Combined size in bytes of the two relations of the customer join
    /// (what the paper quotes as the "working set", ~500 MB at SF 10).
    pub fn customer_join_bytes(&self) -> u64 {
        self.customer.bytes() + self.lineitem_custkey.bytes()
    }

    /// Combined size of the orders-join relations (~600 MB at SF 10).
    pub fn orders_join_bytes(&self) -> u64 {
        self.orders.bytes() + self.lineitem_orderkey.bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::reference_join;
    use std::collections::HashSet;

    #[test]
    fn cardinalities_scale() {
        let t = TpchTables::generate(0.001, 1);
        assert_eq!(t.customer.len(), 150);
        assert_eq!(t.orders.len(), 1500);
        let lpo = t.lineitem_orderkey.len() as f64 / t.orders.len() as f64;
        assert!((3.0..5.0).contains(&lpo), "lines/order = {lpo}");
        assert_eq!(t.lineitem_orderkey.len(), t.lineitem_custkey.len());
    }

    #[test]
    fn orderkeys_are_sparse() {
        assert_eq!(sparse_orderkey(0), 1);
        assert_eq!(sparse_orderkey(7), 8);
        assert_eq!(sparse_orderkey(8), 33);
        assert_eq!(sparse_orderkey(15), 40);
        assert_eq!(sparse_orderkey(16), 65);
    }

    #[test]
    fn every_lineitem_orderkey_exists_in_orders() {
        let t = TpchTables::generate(0.001, 2);
        let okeys: HashSet<u32> = t.orders.keys.iter().copied().collect();
        assert!(t.lineitem_orderkey.keys.iter().all(|k| okeys.contains(k)));
        assert_eq!(okeys.len(), t.orders.len(), "orderkeys are unique");
    }

    #[test]
    fn a_third_of_customers_have_no_orders() {
        let t = TpchTables::generate(0.01, 3);
        let with_orders: HashSet<u32> = t.lineitem_custkey.keys.iter().copied().collect();
        let frac = with_orders.len() as f64 / t.customer.len() as f64;
        assert!((0.55..0.72).contains(&frac), "fraction with orders = {frac}");
        assert!(t.lineitem_custkey.keys.iter().all(|k| k % 3 != 0));
    }

    #[test]
    fn joins_produce_one_match_per_lineitem() {
        // Both joins are FK joins onto unique build keys: result
        // cardinality equals |lineitem|.
        let t = TpchTables::generate(0.002, 4);
        let jc = reference_join(&t.customer, &t.lineitem_custkey);
        assert_eq!(jc.len(), t.lineitem_custkey.len());
        let jo = reference_join(&t.orders, &t.lineitem_orderkey);
        assert_eq!(jo.len(), t.lineitem_orderkey.len());
    }

    #[test]
    fn sf10_working_sets_match_the_papers_quotes() {
        // Compute the sizes analytically at SF 10 without generating 60M
        // rows: 60M lineitems * 8 B + 1.5M customers * 8 B ≈ 0.49 GB and
        // + 15M orders * 8 B ≈ 0.6 GB. Verify via a small SF and linear
        // scaling of the generator's actual output.
        let t = TpchTables::generate(0.01, 5);
        let scale = 10.0 / 0.01;
        let cust_ws = t.customer_join_bytes() as f64 * scale / 1e6;
        let ord_ws = t.orders_join_bytes() as f64 * scale / 1e6;
        assert!((400.0..600.0).contains(&cust_ws), "customer WS = {cust_ws} MB");
        assert!((500.0..700.0).contains(&ord_ws), "orders WS = {ord_ws} MB");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = TpchTables::generate(0.001, 9);
        let b = TpchTables::generate(0.001, 9);
        assert_eq!(a.lineitem_custkey.keys, b.lineitem_custkey.keys);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_sf_rejected() {
        let _ = TpchTables::generate(0.0, 1);
    }
}
