//! Reference join oracle: a simple, obviously-correct equi-join used to
//! validate every join strategy in the workspace.

use std::collections::HashMap;

use crate::relation::Relation;

/// One materialized join result row: `(key, r_payload, s_payload)`.
pub type JoinRow = (u32, u32, u32);

/// Hash-join the two relations with a plain `HashMap`, returning the
/// result rows sorted (so strategy outputs can be compared order-free).
pub fn reference_join(r: &Relation, s: &Relation) -> Vec<JoinRow> {
    let mut table: HashMap<u32, Vec<u32>> = HashMap::with_capacity(r.len());
    for t in r.iter() {
        table.entry(t.key).or_default().push(t.payload);
    }
    let mut out = Vec::new();
    for t in s.iter() {
        if let Some(pays) = table.get(&t.key) {
            for &rp in pays {
                out.push((t.key, rp, t.payload));
            }
        }
    }
    out.sort_unstable();
    out
}

/// Summary facts about the correct join result, for cheap validation of
/// aggregate-only strategies (the paper's aggregation output mode sums the
/// payload columns instead of materializing).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JoinCheck {
    /// Number of result rows.
    pub matches: u64,
    /// Sum over results of `r_payload` (wrapping).
    pub sum_r_payload: u64,
    /// Sum over results of `s_payload` (wrapping).
    pub sum_s_payload: u64,
}

impl JoinCheck {
    /// Compute the ground truth from the two inputs.
    pub fn compute(r: &Relation, s: &Relation) -> JoinCheck {
        let mut table: HashMap<u32, (u64, u64)> = HashMap::with_capacity(r.len());
        for t in r.iter() {
            let e = table.entry(t.key).or_insert((0, 0));
            e.0 += 1;
            e.1 += u64::from(t.payload);
        }
        let mut check = JoinCheck { matches: 0, sum_r_payload: 0, sum_s_payload: 0 };
        for t in s.iter() {
            if let Some(&(count, pay_sum)) = table.get(&t.key) {
                check.matches += count;
                check.sum_r_payload = check.sum_r_payload.wrapping_add(pay_sum);
                check.sum_s_payload =
                    check.sum_s_payload.wrapping_add(count * u64::from(t.payload));
            }
        }
        check
    }

    /// Fold a materialized result into the same summary shape.
    pub fn from_rows(rows: &[JoinRow]) -> JoinCheck {
        let mut check =
            JoinCheck { matches: rows.len() as u64, sum_r_payload: 0, sum_s_payload: 0 };
        for &(_, rp, sp) in rows {
            check.sum_r_payload = check.sum_r_payload.wrapping_add(u64::from(rp));
            check.sum_s_payload = check.sum_s_payload.wrapping_add(u64::from(sp));
        }
        check
    }

    /// The empty check: additive identity for [`JoinCheck::absorb`].
    pub const ZERO: JoinCheck = JoinCheck { matches: 0, sum_r_payload: 0, sum_s_payload: 0 };

    /// Accumulate a partial (per-partition) check into this one. Because
    /// [`exchange_partition`] partitions by key, partitions join
    /// disjointly and the sum of partial checks equals the full check —
    /// which is what makes the composed cross-device oracle sound.
    pub fn absorb(&mut self, other: &JoinCheck) {
        self.matches += other.matches;
        self.sum_r_payload = self.sum_r_payload.wrapping_add(other.sum_r_payload);
        self.sum_s_payload = self.sum_s_payload.wrapping_add(other.sum_s_payload);
    }
}

/// The exchange partition of `key` among `partitions` buckets: a
/// splitmix64-finalized hash reduced mod the partition count. This is the
/// **single source of truth** shared by the cross-device exchange executor
/// and the composed oracle below — both sides of a join agree on partition
/// membership by construction, and a change here changes both together.
pub fn exchange_partition(key: u32, partitions: usize) -> usize {
    assert!(partitions > 0, "at least one partition");
    let mut z = u64::from(key).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z = z ^ (z >> 31);
    (z % partitions as u64) as usize
}

/// Split `rel` into `partitions` relations by [`exchange_partition`] of
/// each tuple's key, preserving input order inside every partition and the
/// relation's logical payload width.
pub fn partition_by_key(rel: &Relation, partitions: usize) -> Vec<Relation> {
    let mut parts: Vec<Relation> = (0..partitions)
        .map(|_| Relation { payload_width: rel.payload_width, ..Relation::default() })
        .collect();
    for t in rel.iter() {
        let p = &mut parts[exchange_partition(t.key, partitions)];
        p.keys.push(t.key);
        p.payloads.push(t.payload);
    }
    parts
}

/// The composed cross-device oracle: partition both inputs by key, join
/// each partition pair with the reference oracle, and merge the partial
/// checks in ascending partition order. Equal to [`JoinCheck::compute`] on
/// the whole inputs for every partition count (tested below), so a
/// cross-device exchange join can be validated partition by partition.
pub fn composed_join_check(r: &Relation, s: &Relation, partitions: usize) -> JoinCheck {
    let (r_parts, s_parts) = (partition_by_key(r, partitions), partition_by_key(s, partitions));
    let mut check = JoinCheck::ZERO;
    for (rp, sp) in r_parts.iter().zip(&s_parts) {
        check.absorb(&JoinCheck::compute(rp, sp));
    }
    check
}

/// Assert that `rows` (any order) equals the reference join of `r ⨝ s`.
/// Panics with a diff-oriented message on mismatch. Test helper.
pub fn assert_join_matches(r: &Relation, s: &Relation, rows: &[JoinRow]) {
    let expected = reference_join(r, s);
    let mut got = rows.to_vec();
    got.sort_unstable();
    assert_eq!(
        got.len(),
        expected.len(),
        "result cardinality mismatch: got {}, expected {}",
        got.len(),
        expected.len()
    );
    if got != expected {
        for (i, (g, e)) in got.iter().zip(&expected).enumerate() {
            assert_eq!(g, e, "first divergence at sorted row {i}");
        }
        unreachable!("lengths equal and rows compared");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{canonical_pair, payload_of, RelationSpec};
    use crate::relation::Tuple;

    #[test]
    fn one_to_one_join() {
        let r: Relation = [(1, 10), (2, 20), (3, 30)]
            .map(|(k, p)| Tuple { key: k, payload: p })
            .into_iter()
            .collect();
        let s: Relation = [(2, 200), (3, 300), (4, 400)]
            .map(|(k, p)| Tuple { key: k, payload: p })
            .into_iter()
            .collect();
        let rows = reference_join(&r, &s);
        assert_eq!(rows, vec![(2, 20, 200), (3, 30, 300)]);
    }

    #[test]
    fn many_to_many_multiplicity() {
        let r: Relation =
            [(7, 1), (7, 2)].map(|(k, p)| Tuple { key: k, payload: p }).into_iter().collect();
        let s: Relation = [(7, 10), (7, 20), (7, 30)]
            .map(|(k, p)| Tuple { key: k, payload: p })
            .into_iter()
            .collect();
        let rows = reference_join(&r, &s);
        assert_eq!(rows.len(), 6);
    }

    #[test]
    fn check_matches_rows_on_canonical_pair() {
        let (r, s) = canonical_pair(128, 512, 11);
        let rows = reference_join(&r, &s);
        assert_eq!(rows.len(), 512); // unique build keys: one match per probe
        let from_rows = JoinCheck::from_rows(&rows);
        let computed = JoinCheck::compute(&r, &s);
        assert_eq!(from_rows, computed);
        // Payloads are payload_of(key) on both sides here.
        assert_eq!(computed.sum_r_payload, computed.sum_s_payload);
        let expect: u64 = s.keys.iter().map(|&k| u64::from(payload_of(k))).sum();
        assert_eq!(computed.sum_s_payload, expect);
    }

    #[test]
    fn skewed_many_to_many_check_consistency() {
        let r = RelationSpec::zipf(500, 40, 0.8, 1).generate();
        let s = RelationSpec::zipf(800, 40, 0.8, 2).generate();
        let rows = reference_join(&r, &s);
        assert_eq!(JoinCheck::from_rows(&rows), JoinCheck::compute(&r, &s));
        assert!(rows.len() as u64 > 800); // data explosion under identical skew
    }

    #[test]
    fn empty_inputs_empty_output() {
        let e = Relation::default();
        let (r, _) = canonical_pair(8, 8, 1);
        assert!(reference_join(&e, &r).is_empty());
        assert!(reference_join(&r, &e).is_empty());
        assert_eq!(
            JoinCheck::compute(&e, &e),
            JoinCheck { matches: 0, sum_r_payload: 0, sum_s_payload: 0 }
        );
    }

    #[test]
    fn composed_check_equals_full_check_for_every_partition_count() {
        for (r, s) in [
            canonical_pair(128, 512, 11),
            (
                RelationSpec::zipf(500, 40, 0.9, 1).generate(),
                RelationSpec::zipf(800, 40, 0.9, 2).generate(),
            ),
        ] {
            let full = JoinCheck::compute(&r, &s);
            for parts in [1usize, 2, 3, 4, 7, 64] {
                assert_eq!(
                    composed_join_check(&r, &s, parts),
                    full,
                    "composed oracle diverges at {parts} partitions"
                );
            }
        }
    }

    #[test]
    fn partition_by_key_conserves_tuples_and_is_key_disjoint() {
        let (r, _) = canonical_pair(1000, 1000, 5);
        let parts = partition_by_key(&r, 8);
        assert_eq!(parts.iter().map(Relation::len).sum::<usize>(), r.len());
        for (i, p) in parts.iter().enumerate() {
            assert_eq!(p.payload_width, r.payload_width);
            for t in p.iter() {
                assert_eq!(exchange_partition(t.key, 8), i, "key {} misplaced", t.key);
            }
        }
        // Same key always lands in the same partition (determinism).
        assert_eq!(exchange_partition(42, 8), exchange_partition(42, 8));
    }

    #[test]
    fn assert_join_matches_accepts_shuffled_rows() {
        let (r, s) = canonical_pair(16, 32, 3);
        let mut rows = reference_join(&r, &s);
        rows.reverse();
        assert_join_matches(&r, &s, &rows);
    }

    #[test]
    #[should_panic(expected = "cardinality mismatch")]
    fn assert_join_matches_rejects_missing_row() {
        let (r, s) = canonical_pair(16, 32, 3);
        let mut rows = reference_join(&r, &s);
        rows.pop();
        assert_join_matches(&r, &s, &rows);
    }
}
