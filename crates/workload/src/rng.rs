//! Self-contained deterministic pseudo-randomness for workload generation.
//!
//! The workspace builds offline, so instead of the `rand` crate the
//! generators use this small module: a seeded xoshiro256** generator (the
//! same family `rand`'s `SmallRng` uses) behind a minimal [`Rng`] trait.
//! Everything downstream — relation generation, Zipf sampling, shuffles —
//! is a pure function of the seed, which the reproducibility of every
//! experiment (EXPERIMENTS.md) depends on.

/// Minimal random-source trait: a `u64` stream plus derived draws.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from the inclusive range `lo..=hi`.
    fn gen_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        // Lemire's multiply-shift: maps the 64-bit stream onto the span
        // with bias below 2^-64 per draw — far under statistical noise.
        let mapped = ((u128::from(self.next_u64()) * u128::from(span + 1)) >> 64) as u64;
        lo + mapped
    }

    /// Fisher–Yates shuffle of `slice` in place.
    fn shuffle<T>(&mut self, slice: &mut [T])
    where
        Self: Sized,
    {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range_u64(0, i as u64) as usize;
            slice.swap(i, j);
        }
    }
}

/// A small, fast, seedable generator: xoshiro256** seeded via splitmix64.
#[derive(Clone, Debug)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// Seed the full 256-bit state from one `u64` (splitmix64 expansion,
    /// the initialization xoshiro's authors recommend).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        SmallRng { s: [next(), next(), next(), next()] }
    }
}

impl Rng for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let va: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(va, (0..32).map(|_| c.next_u64()).collect::<Vec<_>>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_is_inclusive_and_covering() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = rng.gen_range_u64(10, 14);
            assert!((10..=14).contains(&v));
            seen[(v - 10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 5 values drawn in 1000 tries");
    }

    #[test]
    fn range_mean_is_centered() {
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 100_000;
        let sum: u64 = (0..n).map(|_| rng.gen_range_u64(0, 100)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 50.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..1000).collect();
        rng.shuffle(&mut v);
        assert_ne!(v[..10], (0..10).collect::<Vec<u32>>()[..]);
        v.sort_unstable();
        assert_eq!(v, (0..1000).collect::<Vec<u32>>());
    }

    #[test]
    fn degenerate_ranges() {
        let mut rng = SmallRng::seed_from_u64(5);
        assert_eq!(rng.gen_range_u64(42, 42), 42);
        let _ = rng.gen_range_u64(0, u64::MAX); // full span does not overflow
        let mut single = [1u32];
        rng.shuffle(&mut single);
        let mut empty: [u32; 0] = [];
        rng.shuffle(&mut empty);
    }
}
