//! Zipf-distributed key sampling.
//!
//! The skew experiments (paper Figs. 17–18, 20) draw keys from a Zipf
//! distribution over `n` distinct values with exponent `theta` (the "zipf
//! factor" on the x-axes): value `k` (1-based rank) has probability
//! proportional to `1 / k^theta`. `theta = 0` degenerates to uniform;
//! `theta = 1` is the classic heavy skew where the hottest key dominates.
//!
//! Sampling uses the rejection-inversion method of Hörmann & Derflinger,
//! which is O(1) per sample with no per-distribution table, so generating
//! the paper's multi-hundred-million-tuple skewed relations stays cheap.

use crate::rng::Rng;

/// A sampler for `Zipf(n, theta)` over ranks `1..=n`.
///
/// ```
/// use hcj_workload::{SmallRng, ZipfSampler};
///
/// let zipf = ZipfSampler::new(1_000_000, 1.1);
/// let mut rng = SmallRng::seed_from_u64(1);
/// let mut head = 0;
/// for _ in 0..10_000 {
///     if zipf.sample(&mut rng) == 1 {
///         head += 1;
///     }
/// }
/// // At theta > 1 the hottest of a million values carries ~10% of all mass.
/// assert!(head > 300);
/// ```
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    n: u64,
    theta: f64,
    // Precomputed constants of rejection inversion.
    h_integral_x1: f64,
    h_integral_num_elements: f64,
    s: f64,
}

impl ZipfSampler {
    /// `n` distinct values, exponent `theta >= 0`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n >= 1, "need at least one element");
        assert!(theta >= 0.0 && theta.is_finite(), "theta must be finite and >= 0");
        let h_integral_x1 = h_integral(1.5, theta) - 1.0;
        let h_integral_num_elements = h_integral(n as f64 + 0.5, theta);
        let s = 2.0 - h_integral_inverse(h_integral(2.5, theta) - h(2.0, theta), theta);
        ZipfSampler { n, theta, h_integral_x1, h_integral_num_elements, s }
    }

    pub fn n(&self) -> u64 {
        self.n
    }

    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Draw one rank in `1..=n` (rank 1 is the most popular value).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.theta == 0.0 {
            return rng.gen_range_u64(1, self.n);
        }
        loop {
            let u = self.h_integral_num_elements
                + rng.gen_f64() * (self.h_integral_x1 - self.h_integral_num_elements);
            let x = h_integral_inverse(u, self.theta);
            let k = x.round().clamp(1.0, self.n as f64);
            if k - x <= self.s || u >= h_integral(k + 0.5, self.theta) - h(k, self.theta) {
                return k as u64;
            }
        }
    }
}

/// `H(x)`: integral of `h(x) = x^-theta`, with the theta→1 limit handled.
fn h_integral(x: f64, theta: f64) -> f64 {
    let log_x = x.ln();
    helper2((1.0 - theta) * log_x) * log_x
}

fn h(x: f64, theta: f64) -> f64 {
    (-theta * x.ln()).exp()
}

fn h_integral_inverse(x: f64, theta: f64) -> f64 {
    let mut t = x * (1.0 - theta);
    if t < -1.0 {
        t = -1.0;
    }
    (helper1(t) * x).exp()
}

/// `log1p(x)/x`, stable near zero.
fn helper1(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.ln_1p() / x
    } else {
        1.0 - x * (0.5 - x * (1.0 / 3.0 - 0.25 * x))
    }
}

/// `expm1(x)/x`, stable near zero.
fn helper2(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.exp_m1() / x
    } else {
        1.0 + x * 0.5 * (1.0 + x / 3.0 * (1.0 + 0.25 * x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SmallRng;

    fn histogram(n: u64, theta: f64, samples: usize) -> Vec<u64> {
        let z = ZipfSampler::new(n, theta);
        let mut rng = SmallRng::seed_from_u64(42);
        let mut counts = vec![0u64; n as usize];
        for _ in 0..samples {
            let k = z.sample(&mut rng);
            counts[(k - 1) as usize] += 1;
        }
        counts
    }

    #[test]
    fn samples_stay_in_range() {
        let z = ZipfSampler::new(100, 0.75);
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let k = z.sample(&mut rng);
            assert!((1..=100).contains(&k));
        }
    }

    #[test]
    fn theta_zero_is_uniform() {
        let counts = histogram(10, 0.0, 100_000);
        for &c in &counts {
            let expect = 10_000.0;
            assert!((c as f64 - expect).abs() < expect * 0.15, "counts={counts:?}");
        }
    }

    #[test]
    fn theta_one_matches_harmonic_law() {
        let n = 100u64;
        let samples = 200_000;
        let counts = histogram(n, 1.0, samples);
        let hn: f64 = (1..=n).map(|k| 1.0 / k as f64).sum();
        // Check the first few ranks against 1/(k * H_n).
        for k in 1..=5u64 {
            let expect = samples as f64 / (k as f64 * hn);
            let got = counts[(k - 1) as usize] as f64;
            assert!((got - expect).abs() < expect * 0.15, "rank {k}: got {got}, expected {expect}");
        }
    }

    #[test]
    fn higher_theta_concentrates_mass() {
        let c25 = histogram(1000, 0.25, 100_000);
        let c75 = histogram(1000, 0.75, 100_000);
        let c100 = histogram(1000, 1.0, 100_000);
        assert!(c75[0] > 2 * c25[0], "0.75 head {} vs 0.25 head {}", c75[0], c25[0]);
        assert!(c100[0] > c75[0]);
    }

    #[test]
    fn rank_frequencies_are_monotone_under_skew() {
        let counts = histogram(50, 0.9, 300_000);
        // Allow small sampling noise, but the trend must be decreasing.
        for w in counts.windows(2).take(10) {
            assert!(w[0] as f64 >= w[1] as f64 * 0.8, "head not decreasing: {counts:?}");
        }
    }

    #[test]
    fn single_element_always_returns_one() {
        let z = ZipfSampler::new(1, 0.9);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 1);
        }
    }

    #[test]
    fn single_element_is_safe_for_any_theta() {
        // Boundary audit: n = 1 must return rank 1 for every exponent,
        // including theta = 0 (uniform path) and an extreme theta where
        // the rejection constants are driven to their limits.
        for theta in [0.0, 0.1, 0.5, 1.0, 2.0, 10.0, 50.0] {
            let z = ZipfSampler::new(1, theta);
            assert!(z.s.is_finite(), "theta={theta}: s={}", z.s);
            assert!(z.h_integral_x1.is_finite(), "theta={theta}");
            assert!(z.h_integral_num_elements.is_finite(), "theta={theta}");
            let mut rng = SmallRng::seed_from_u64(11);
            for _ in 0..1_000 {
                assert_eq!(z.sample(&mut rng), 1, "theta={theta}");
            }
        }
    }

    #[test]
    fn extreme_theta_stays_in_range_without_nan() {
        // Boundary audit: theta = 50 collapses essentially all mass onto
        // rank 1; the sampler must neither panic, hang, nor emit a
        // NaN-derived rank (a NaN x would clamp-round into range silently,
        // so check the precomputed constants too).
        let z = ZipfSampler::new(1_000, 50.0);
        assert!(z.s.is_finite() && z.h_integral_x1.is_finite());
        assert!(z.h_integral_num_elements.is_finite());
        let mut rng = SmallRng::seed_from_u64(5);
        let mut head = 0u64;
        for _ in 0..10_000 {
            let k = z.sample(&mut rng);
            assert!((1..=1_000).contains(&k), "rank out of range: {k}");
            if k == 1 {
                head += 1;
            }
        }
        assert!(head >= 9_990, "theta=50 must concentrate on rank 1: head={head}");
    }

    #[test]
    fn deterministic_under_seed() {
        let z = ZipfSampler::new(1000, 0.5);
        let a: Vec<u64> =
            (0..50).scan(SmallRng::seed_from_u64(9), |r, _| Some(z.sample(r))).collect();
        let b: Vec<u64> =
            (0..50).scan(SmallRng::seed_from_u64(9), |r, _| Some(z.sample(r))).collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one element")]
    fn zero_elements_rejected() {
        let _ = ZipfSampler::new(0, 0.5);
    }
}
