//! Columnar relations of narrow tuples.

/// One `(key, payload)` tuple. Both fields are 4 bytes, matching the
/// canonical join micro-benchmark schema the paper adopts (§V-A).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Tuple {
    pub key: u32,
    /// 4-byte payload, or a row identifier when payloads are late
    /// materialized (Figs. 9–10).
    pub payload: u32,
}

/// A columnar relation: parallel `keys` / `payloads` columns.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Relation {
    pub keys: Vec<u32>,
    pub payloads: Vec<u32>,
    /// Logical payload width in bytes for late-materialization cost
    /// modeling; the functional payload column stays 4 bytes. Defaults to 4
    /// (payload *is* the value).
    pub payload_width: u32,
}

impl Relation {
    /// An empty relation with capacity for `n` tuples.
    pub fn with_capacity(n: usize) -> Self {
        Relation { keys: Vec::with_capacity(n), payloads: Vec::with_capacity(n), payload_width: 4 }
    }

    /// Build from parallel columns.
    pub fn from_columns(keys: Vec<u32>, payloads: Vec<u32>) -> Self {
        assert_eq!(keys.len(), payloads.len(), "column lengths differ");
        Relation { keys, payloads, payload_width: 4 }
    }

    /// Build from tuples.
    pub fn from_tuples(tuples: impl IntoIterator<Item = Tuple>) -> Self {
        let mut r = Relation { payload_width: 4, ..Relation::default() };
        for t in tuples {
            r.push(t);
        }
        r
    }

    pub fn push(&mut self, t: Tuple) {
        self.keys.push(t.key);
        self.payloads.push(t.payload);
    }

    pub fn len(&self) -> usize {
        self.keys.len()
    }

    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    pub fn tuple(&self, i: usize) -> Tuple {
        Tuple { key: self.keys[i], payload: self.payloads[i] }
    }

    pub fn iter(&self) -> impl Iterator<Item = Tuple> + '_ {
        self.keys.iter().zip(&self.payloads).map(|(&key, &payload)| Tuple { key, payload })
    }

    /// Physical bytes of the narrow columnar representation (8 B/tuple).
    pub fn bytes(&self) -> u64 {
        self.len() as u64 * 8
    }

    /// Logical bytes including the late-materialized payload width.
    pub fn logical_bytes(&self) -> u64 {
        self.len() as u64 * (4 + u64::from(self.payload_width))
    }

    /// Borrow a contiguous chunk `[start, start+len)` as a new relation
    /// (copies; chunking for the streamed out-of-GPU strategies).
    pub fn chunk(&self, start: usize, len: usize) -> Relation {
        let end = (start + len).min(self.len());
        Relation {
            keys: self.keys[start..end].to_vec(),
            payloads: self.payloads[start..end].to_vec(),
            payload_width: self.payload_width,
        }
    }

    /// Split into `ceil(len / chunk_len)` contiguous chunks.
    pub fn chunks(&self, chunk_len: usize) -> Vec<Relation> {
        assert!(chunk_len > 0, "chunk length must be positive");
        (0..self.len()).step_by(chunk_len).map(|s| self.chunk(s, chunk_len)).collect()
    }
}

impl FromIterator<Tuple> for Relation {
    fn from_iter<I: IntoIterator<Item = Tuple>>(iter: I) -> Self {
        Relation::from_tuples(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(n: u32) -> Relation {
        (0..n).map(|i| Tuple { key: i, payload: i * 10 }).collect()
    }

    #[test]
    fn construction_and_access() {
        let r = rel(4);
        assert_eq!(r.len(), 4);
        assert!(!r.is_empty());
        assert_eq!(r.tuple(2), Tuple { key: 2, payload: 20 });
        assert_eq!(r.bytes(), 32);
        assert_eq!(r.logical_bytes(), 32);
    }

    #[test]
    fn payload_width_affects_logical_bytes_only() {
        let mut r = rel(10);
        r.payload_width = 64;
        assert_eq!(r.bytes(), 80);
        assert_eq!(r.logical_bytes(), 10 * 68);
    }

    #[test]
    fn chunking_covers_everything_once() {
        let r = rel(10);
        let chunks = r.chunks(3);
        assert_eq!(chunks.len(), 4);
        assert_eq!(chunks[3].len(), 1);
        let total: usize = chunks.iter().map(Relation::len).sum();
        assert_eq!(total, 10);
        let rejoined: Relation = chunks.iter().flat_map(|c| c.iter().collect::<Vec<_>>()).collect();
        assert_eq!(rejoined.keys, r.keys);
    }

    #[test]
    fn chunk_past_end_truncates() {
        let r = rel(5);
        let c = r.chunk(3, 10);
        assert_eq!(c.len(), 2);
        assert_eq!(c.keys, vec![3, 4]);
    }

    #[test]
    #[should_panic(expected = "column lengths differ")]
    fn mismatched_columns_rejected() {
        let _ = Relation::from_columns(vec![1, 2], vec![1]);
    }

    #[test]
    fn iter_yields_tuples_in_order() {
        let r = rel(3);
        let v: Vec<Tuple> = r.iter().collect();
        assert_eq!(v.len(), 3);
        assert_eq!(v[1].payload, 10);
    }
}
