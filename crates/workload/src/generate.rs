//! Relation generators for every distribution the evaluation uses.

use crate::relation::{Relation, Tuple};
use crate::rng::{Rng, SmallRng};
use crate::zipf::ZipfSampler;

/// Key distribution of a generated relation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum KeyDistribution {
    /// Every key in `1..=n` exactly once, in random order — the paper's
    /// default micro-benchmark input ("unique and uniform", §V-B).
    UniqueShuffled,
    /// Foreign keys drawn uniformly from `1..=distinct`.
    UniformFk { distinct: u64 },
    /// Foreign keys drawn `Zipf(distinct, theta)`; rank 1 = hottest key.
    Zipf { distinct: u64, theta: f64 },
    /// Every key in `1..=n/replicas` exactly `replicas` times, shuffled —
    /// the uniform-number-of-replicas workload of Fig. 19.
    Replicated { replicas: u32 },
}

/// Specification of one relation to generate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RelationSpec {
    pub tuples: usize,
    pub distribution: KeyDistribution,
    /// Logical payload width in bytes (cost model only; ≥ 4).
    pub payload_width: u32,
    pub seed: u64,
}

impl RelationSpec {
    /// Unique shuffled keys, 4-byte payload.
    pub fn unique(tuples: usize, seed: u64) -> Self {
        RelationSpec {
            tuples,
            distribution: KeyDistribution::UniqueShuffled,
            payload_width: 4,
            seed,
        }
    }

    /// Zipf-skewed foreign keys over `distinct` values.
    pub fn zipf(tuples: usize, distinct: u64, theta: f64, seed: u64) -> Self {
        RelationSpec {
            tuples,
            distribution: KeyDistribution::Zipf { distinct, theta },
            payload_width: 4,
            seed,
        }
    }

    pub fn with_payload_width(mut self, width: u32) -> Self {
        assert!(width >= 4, "payload width is at least the 4-byte rid");
        self.payload_width = width;
        self
    }

    /// Generate the relation. Payloads are `key * 31 + 7` (checkable by the
    /// oracle) unless payloads are late-materialized row ids, in which case
    /// they are the row index — either way deterministic.
    pub fn generate(&self) -> Relation {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut rel = Relation::with_capacity(self.tuples);
        rel.payload_width = self.payload_width;
        match self.distribution {
            KeyDistribution::UniqueShuffled => {
                let mut keys: Vec<u32> = (1..=self.tuples as u32).collect();
                rng.shuffle(&mut keys);
                for k in keys {
                    rel.push(Tuple { key: k, payload: payload_of(k) });
                }
            }
            KeyDistribution::UniformFk { distinct } => {
                assert!(distinct >= 1 && distinct <= u64::from(u32::MAX));
                for _ in 0..self.tuples {
                    let k = rng.gen_range_u64(1, distinct) as u32;
                    rel.push(Tuple { key: k, payload: payload_of(k) });
                }
            }
            KeyDistribution::Zipf { distinct, theta } => {
                assert!(distinct >= 1 && distinct <= u64::from(u32::MAX));
                let z = ZipfSampler::new(distinct, theta);
                for _ in 0..self.tuples {
                    let k = z.sample(&mut rng) as u32;
                    rel.push(Tuple { key: k, payload: payload_of(k) });
                }
            }
            KeyDistribution::Replicated { replicas } => {
                assert!(replicas >= 1);
                let distinct = self.tuples / replicas as usize;
                assert!(distinct >= 1, "need tuples >= replicas");
                let mut keys: Vec<u32> = (1..=distinct as u32)
                    .flat_map(|k| std::iter::repeat(k).take(replicas as usize))
                    .collect();
                // Top up to the exact cardinality with wrap-around keys.
                let mut next = 1u32;
                while keys.len() < self.tuples {
                    keys.push(next);
                    next = next % distinct as u32 + 1;
                }
                rng.shuffle(&mut keys);
                for k in keys {
                    rel.push(Tuple { key: k, payload: payload_of(k) });
                }
            }
        }
        rel
    }
}

/// Deterministic payload for key `k`; the oracle and the aggregation
/// checks rely on this mapping.
pub fn payload_of(k: u32) -> u32 {
    k.wrapping_mul(31).wrapping_add(7)
}

/// Convenience: the paper's canonical pair of relations — a build side of
/// `r_tuples` unique keys and a probe side of `s_tuples` tuples whose keys
/// all hit the build side (same distinct set, §V-B "for each build-side
/// table size, we keep the same set of distinct values in the probe-side").
pub fn canonical_pair(r_tuples: usize, s_tuples: usize, seed: u64) -> (Relation, Relation) {
    let r = RelationSpec::unique(r_tuples, seed).generate();
    let s = RelationSpec {
        tuples: s_tuples,
        distribution: KeyDistribution::UniformFk { distinct: r_tuples as u64 },
        payload_width: 4,
        seed: seed ^ 0x9E37_79B9_7F4A_7C15,
    }
    .generate();
    (r, s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn unique_shuffled_is_a_permutation() {
        let r = RelationSpec::unique(1000, 1).generate();
        let mut keys = r.keys.clone();
        keys.sort_unstable();
        assert_eq!(keys, (1..=1000).collect::<Vec<u32>>());
        // Shuffled: the first few keys are not simply 1,2,3,...
        assert_ne!(&r.keys[..10], &(1..=10).collect::<Vec<u32>>()[..]);
    }

    #[test]
    fn payloads_follow_the_checkable_mapping() {
        let r = RelationSpec::unique(100, 2).generate();
        for t in r.iter() {
            assert_eq!(t.payload, payload_of(t.key));
        }
    }

    #[test]
    fn uniform_fk_stays_in_domain() {
        let s = RelationSpec {
            tuples: 5000,
            distribution: KeyDistribution::UniformFk { distinct: 64 },
            payload_width: 4,
            seed: 3,
        }
        .generate();
        assert!(s.keys.iter().all(|&k| (1..=64).contains(&k)));
        // All 64 values should appear in 5000 draws.
        let distinct: std::collections::HashSet<u32> = s.keys.iter().copied().collect();
        assert_eq!(distinct.len(), 64);
    }

    #[test]
    fn zipf_skews_toward_rank_one() {
        let s = RelationSpec::zipf(50_000, 1000, 1.0, 4).generate();
        let mut counts: HashMap<u32, usize> = HashMap::new();
        for &k in &s.keys {
            *counts.entry(k).or_default() += 1;
        }
        let hot = counts.get(&1).copied().unwrap_or(0);
        let cold = counts.get(&900).copied().unwrap_or(0);
        assert!(hot > 50 * cold.max(1), "hot={hot} cold={cold}");
    }

    #[test]
    fn replicated_has_exact_multiplicity() {
        let r = RelationSpec {
            tuples: 4000,
            distribution: KeyDistribution::Replicated { replicas: 4 },
            payload_width: 4,
            seed: 5,
        }
        .generate();
        let mut counts: HashMap<u32, usize> = HashMap::new();
        for &k in &r.keys {
            *counts.entry(k).or_default() += 1;
        }
        assert_eq!(counts.len(), 1000);
        assert!(counts.values().all(|&c| c == 4));
    }

    #[test]
    fn replicated_tops_up_non_divisible_cardinality() {
        let r = RelationSpec {
            tuples: 10,
            distribution: KeyDistribution::Replicated { replicas: 3 },
            payload_width: 4,
            seed: 6,
        }
        .generate();
        assert_eq!(r.len(), 10);
    }

    #[test]
    fn canonical_pair_probe_keys_all_match() {
        let (r, s) = canonical_pair(256, 1024, 9);
        let rset: std::collections::HashSet<u32> = r.keys.iter().copied().collect();
        assert!(s.keys.iter().all(|k| rset.contains(k)));
        assert_eq!(r.len(), 256);
        assert_eq!(s.len(), 1024);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = RelationSpec::zipf(1000, 100, 0.5, 77).generate();
        let b = RelationSpec::zipf(1000, 100, 0.5, 77).generate();
        assert_eq!(a, b);
        let c = RelationSpec::zipf(1000, 100, 0.5, 78).generate();
        assert_ne!(a, c);
    }

    #[test]
    fn payload_width_is_recorded() {
        let r = RelationSpec::unique(10, 1).with_payload_width(64).generate();
        assert_eq!(r.payload_width, 64);
        assert_eq!(r.logical_bytes(), 10 * 68);
    }

    #[test]
    #[should_panic(expected = "at least the 4-byte rid")]
    fn tiny_payload_rejected() {
        let _ = RelationSpec::unique(10, 1).with_payload_width(2);
    }
}
