//! Property-based tests of the workload generators and the oracle.

use proptest::prelude::*;

use hcj_workload::generate::{canonical_pair, payload_of};
use hcj_workload::oracle::{reference_join, JoinCheck};
use hcj_workload::{KeyDistribution, Relation, RelationSpec, Tuple};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Unique-shuffled relations are exact permutations of 1..=n.
    #[test]
    fn unique_is_a_permutation(n in 1usize..5000, seed in any::<u64>()) {
        let r = RelationSpec::unique(n, seed).generate();
        let mut keys = r.keys.clone();
        keys.sort_unstable();
        prop_assert_eq!(keys, (1..=n as u32).collect::<Vec<_>>());
    }

    /// Zipf keys stay within the declared domain, at any skew.
    #[test]
    fn zipf_stays_in_domain(
        n in 1usize..4000,
        distinct in 1u64..10_000,
        theta in 0.0f64..1.5,
        seed in any::<u64>(),
    ) {
        let r = RelationSpec::zipf(n, distinct, theta, seed).generate();
        prop_assert_eq!(r.len(), n);
        prop_assert!(r.keys.iter().all(|&k| 1 <= k && u64::from(k) <= distinct));
    }

    /// Payloads always follow the checkable mapping, for every generator.
    #[test]
    fn payload_mapping_is_universal(
        n in 1usize..2000,
        distinct in 1u64..1000,
        seed in any::<u64>(),
    ) {
        for dist in [
            KeyDistribution::UniqueShuffled,
            KeyDistribution::UniformFk { distinct },
            KeyDistribution::Zipf { distinct, theta: 0.8 },
            KeyDistribution::Replicated { replicas: 3 },
        ] {
            if matches!(dist, KeyDistribution::Replicated { replicas } if n < replicas as usize) {
                continue;
            }
            let r = RelationSpec { tuples: n, distribution: dist, payload_width: 4, seed }
                .generate();
            prop_assert!(r.iter().all(|t| t.payload == payload_of(t.key)));
        }
    }

    /// The oracle's summary agrees with its own materialized rows, and a
    /// join is symmetric in cardinality: |R ⨝ S| == |S ⨝ R|.
    #[test]
    fn oracle_is_self_consistent_and_symmetric(
        r_tuples in 1usize..800,
        s_tuples in 1usize..800,
        distinct in 1u64..200,
        seed in any::<u64>(),
    ) {
        let r = RelationSpec::zipf(r_tuples, distinct, 0.6, seed).generate();
        let s = RelationSpec::zipf(s_tuples, distinct, 0.6, seed ^ 1).generate();
        let rows = reference_join(&r, &s);
        prop_assert_eq!(JoinCheck::from_rows(&rows), JoinCheck::compute(&r, &s));
        let flipped = reference_join(&s, &r);
        prop_assert_eq!(rows.len(), flipped.len());
        // Flipping swaps the payload columns row-by-row (after sorting).
        let mut reflipped: Vec<_> =
            flipped.into_iter().map(|(k, a, b)| (k, b, a)).collect();
        reflipped.sort_unstable();
        prop_assert_eq!(rows, reflipped);
    }

    /// canonical_pair: every probe key hits exactly one build tuple, so
    /// the match count equals the probe cardinality.
    #[test]
    fn canonical_pair_matches_equal_probe_size(
        build in 1usize..2000,
        probe in 1usize..4000,
        seed in any::<u64>(),
    ) {
        let (r, s) = canonical_pair(build, probe, seed);
        prop_assert_eq!(JoinCheck::compute(&r, &s).matches, probe as u64);
    }

    /// Chunking is a partition of the relation: concatenating chunks
    /// reproduces it exactly.
    #[test]
    fn chunks_concatenate_back(
        n in 1usize..3000,
        chunk in 1usize..500,
        seed in any::<u64>(),
    ) {
        let r = RelationSpec::unique(n, seed).generate();
        let chunks = r.chunks(chunk);
        let glued: Relation = chunks
            .iter()
            .flat_map(|c| c.iter().collect::<Vec<Tuple>>())
            .collect();
        prop_assert_eq!(glued.keys, r.keys);
        prop_assert_eq!(glued.payloads, r.payloads);
        prop_assert!(chunks.iter().take(chunks.len() - 1).all(|c| c.len() == chunk));
    }
}
