//! Property-style tests of the workload generators and the oracle, over
//! seeded randomized parameter sweeps (reproducible: each case's inputs
//! derive from the case index).

use hcj_workload::generate::{canonical_pair, payload_of};
use hcj_workload::oracle::{reference_join, JoinCheck};
use hcj_workload::rng::{Rng, SmallRng};
use hcj_workload::{KeyDistribution, Relation, RelationSpec, Tuple};

const CASES: u64 = 48;

fn params(case: u64) -> SmallRng {
    SmallRng::seed_from_u64(0xC0FFEE ^ case.wrapping_mul(0x9E37_79B9))
}

/// Unique-shuffled relations are exact permutations of 1..=n.
#[test]
fn unique_is_a_permutation() {
    for case in 0..CASES {
        let mut p = params(case);
        let n = p.gen_range_u64(1, 4999) as usize;
        let r = RelationSpec::unique(n, p.next_u64()).generate();
        let mut keys = r.keys.clone();
        keys.sort_unstable();
        assert_eq!(keys, (1..=n as u32).collect::<Vec<_>>(), "case {case}, n {n}");
    }
}

/// Zipf keys stay within the declared domain, at any skew.
#[test]
fn zipf_stays_in_domain() {
    for case in 0..CASES {
        let mut p = params(100 + case);
        let n = p.gen_range_u64(1, 3999) as usize;
        let distinct = p.gen_range_u64(1, 9_999);
        let theta = p.gen_f64() * 1.5;
        let r = RelationSpec::zipf(n, distinct, theta, p.next_u64()).generate();
        assert_eq!(r.len(), n);
        assert!(
            r.keys.iter().all(|&k| 1 <= k && u64::from(k) <= distinct),
            "case {case}: key out of 1..={distinct}"
        );
    }
}

/// Payloads always follow the checkable mapping, for every generator.
#[test]
fn payload_mapping_is_universal() {
    for case in 0..CASES {
        let mut p = params(200 + case);
        let n = p.gen_range_u64(1, 1999) as usize;
        let distinct = p.gen_range_u64(1, 999);
        let seed = p.next_u64();
        for dist in [
            KeyDistribution::UniqueShuffled,
            KeyDistribution::UniformFk { distinct },
            KeyDistribution::Zipf { distinct, theta: 0.8 },
            KeyDistribution::Replicated { replicas: 3 },
        ] {
            if matches!(dist, KeyDistribution::Replicated { replicas } if n < replicas as usize) {
                continue;
            }
            let r =
                RelationSpec { tuples: n, distribution: dist, payload_width: 4, seed }.generate();
            assert!(r.iter().all(|t| t.payload == payload_of(t.key)), "case {case} {dist:?}");
        }
    }
}

/// The oracle's summary agrees with its own materialized rows, and a join
/// is symmetric in cardinality: |R ⨝ S| == |S ⨝ R|.
#[test]
fn oracle_is_self_consistent_and_symmetric() {
    for case in 0..CASES {
        let mut p = params(300 + case);
        let r_tuples = p.gen_range_u64(1, 799) as usize;
        let s_tuples = p.gen_range_u64(1, 799) as usize;
        let distinct = p.gen_range_u64(1, 199);
        let seed = p.next_u64();
        let r = RelationSpec::zipf(r_tuples, distinct, 0.6, seed).generate();
        let s = RelationSpec::zipf(s_tuples, distinct, 0.6, seed ^ 1).generate();
        let rows = reference_join(&r, &s);
        assert_eq!(JoinCheck::from_rows(&rows), JoinCheck::compute(&r, &s), "case {case}");
        let flipped = reference_join(&s, &r);
        assert_eq!(rows.len(), flipped.len(), "case {case}");
        // Flipping swaps the payload columns row-by-row (after sorting).
        let mut reflipped: Vec<_> = flipped.into_iter().map(|(k, a, b)| (k, b, a)).collect();
        reflipped.sort_unstable();
        assert_eq!(rows, reflipped, "case {case}");
    }
}

/// canonical_pair: every probe key hits exactly one build tuple, so the
/// match count equals the probe cardinality.
#[test]
fn canonical_pair_matches_equal_probe_size() {
    for case in 0..CASES {
        let mut p = params(400 + case);
        let build = p.gen_range_u64(1, 1999) as usize;
        let probe = p.gen_range_u64(1, 3999) as usize;
        let (r, s) = canonical_pair(build, probe, p.next_u64());
        assert_eq!(JoinCheck::compute(&r, &s).matches, probe as u64, "case {case}");
    }
}

/// Chunking is a partition of the relation: concatenating chunks
/// reproduces it exactly.
#[test]
fn chunks_concatenate_back() {
    for case in 0..CASES {
        let mut p = params(500 + case);
        let n = p.gen_range_u64(1, 2999) as usize;
        let chunk = p.gen_range_u64(1, 499) as usize;
        let r = RelationSpec::unique(n, p.next_u64()).generate();
        let chunks = r.chunks(chunk);
        let glued: Relation =
            chunks.iter().flat_map(|c| c.iter().collect::<Vec<Tuple>>()).collect();
        assert_eq!(glued.keys, r.keys, "case {case}");
        assert_eq!(glued.payloads, r.payloads, "case {case}");
        assert!(
            chunks.iter().take(chunks.len() - 1).all(|c| c.len() == chunk),
            "case {case}: non-final chunk not full"
        );
    }
}
