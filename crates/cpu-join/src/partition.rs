//! Parallel CPU radix partitioning: the first phase of PRO and the host
//! side of the co-processing strategy.
//!
//! Classic structure (Balkesen et al.): the input is split into one chunk
//! per thread; each thread builds a local histogram over the radix of its
//! chunk, scatters its tuples into thread-local per-partition buffers
//! (software-managed, cache-line sized in the original; plain vectors
//! here), and the per-thread buffers of each partition are concatenated.
//! Fanout per pass is bounded by the TLB (paper §II-B); deeper fanouts
//! take multiple passes.

use hcj_workload::{Relation, Tuple};

/// Histogram of partition sizes for one radix range.
pub fn histogram(rel: &Relation, bits: u32, shift: u32) -> Vec<u64> {
    let fanout = 1usize << bits;
    let mask = (fanout - 1) as u32;
    let mut h = vec![0u64; fanout];
    for &k in &rel.keys {
        h[((k >> shift) & mask) as usize] += 1;
    }
    h
}

/// Partition `rel` on key bits `[shift, shift+bits)` using `threads`
/// worker threads. Returns one `Relation` per partition (tuples in
/// thread-chunk order, matching the concatenation step of the original).
pub fn parallel_radix_partition(
    rel: &Relation,
    bits: u32,
    shift: u32,
    threads: usize,
) -> Vec<Relation> {
    assert!(threads >= 1, "need at least one thread");
    let fanout = 1usize << bits;
    let mask = (fanout - 1) as u32;
    let chunk_len = rel.len().div_ceil(threads).max(1);

    // Each thread partitions its chunk into local buffers.
    let chunks: Vec<(usize, usize)> =
        (0..rel.len()).step_by(chunk_len).map(|s| (s, (s + chunk_len).min(rel.len()))).collect();
    let mut per_thread: Vec<Vec<Relation>> = Vec::with_capacity(chunks.len());
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(chunks.len());
        for &(lo, hi) in &chunks {
            let keys = &rel.keys[lo..hi];
            let pays = &rel.payloads[lo..hi];
            handles.push(scope.spawn(move || {
                let mut local = vec![Relation::default(); fanout];
                for (&k, &p) in keys.iter().zip(pays) {
                    local[((k >> shift) & mask) as usize].push(Tuple { key: k, payload: p });
                }
                local
            }));
        }
        for h in handles {
            per_thread.push(h.join().expect("partition worker panicked"));
        }
    });

    // Concatenate the per-thread buffers of each partition.
    let mut out = vec![Relation::default(); fanout];
    for local in per_thread {
        for (p, part) in local.into_iter().enumerate() {
            out[p].keys.extend_from_slice(&part.keys);
            out[p].payloads.extend_from_slice(&part.payloads);
        }
    }
    for part in &mut out {
        part.payload_width = rel.payload_width;
    }
    out
}

/// Multi-pass partitioning to `total_bits`, each pass at most
/// `bits_per_pass` (the TLB bound).
pub fn multi_pass_partition(
    rel: &Relation,
    total_bits: u32,
    bits_per_pass: u32,
    threads: usize,
) -> Vec<Relation> {
    assert!(bits_per_pass >= 1);
    if total_bits == 0 {
        return vec![rel.clone()];
    }
    let first = total_bits.min(bits_per_pass);
    let mut parts = parallel_radix_partition(rel, first, 0, threads);
    let mut done = first;
    while done < total_bits {
        let bits = (total_bits - done).min(bits_per_pass);
        // Radix index composition: sub-partition `q` (bits `[done,
        // done+bits)`) of parent `p` (low `done` bits) is the global
        // partition `p | (q << done)` — final index == `key & mask`.
        let mut next = vec![Relation::default(); parts.len() << bits];
        for (p, part) in parts.iter().enumerate() {
            for (q, sub) in
                parallel_radix_partition(part, bits, done, threads).into_iter().enumerate()
            {
                next[p | (q << done)] = sub;
            }
        }
        parts = next;
        done += bits;
    }
    parts
}

/// Number of passes PRO needs for `total_bits` at the TLB-bounded fanout.
pub fn passes_needed(total_bits: u32, bits_per_pass: u32) -> u32 {
    total_bits.div_ceil(bits_per_pass).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcj_workload::RelationSpec;

    #[test]
    fn histogram_counts_every_tuple() {
        let rel = RelationSpec::unique(4096, 1).generate();
        let h = histogram(&rel, 4, 0);
        assert_eq!(h.len(), 16);
        assert_eq!(h.iter().sum::<u64>(), 4096);
        assert!(h.iter().all(|&c| c == 256)); // unique 1..=4096 → even
    }

    #[test]
    fn single_pass_partition_is_correct() {
        let rel = RelationSpec::unique(10_000, 2).generate();
        let parts = parallel_radix_partition(&rel, 4, 0, 4);
        assert_eq!(parts.iter().map(Relation::len).sum::<usize>(), 10_000);
        for (p, part) in parts.iter().enumerate() {
            assert!(part.keys.iter().all(|&k| (k & 15) as usize == p));
        }
    }

    #[test]
    fn shifted_partition_uses_high_bits() {
        let rel = RelationSpec::unique(4096, 3).generate();
        let parts = parallel_radix_partition(&rel, 3, 5, 2);
        for (p, part) in parts.iter().enumerate() {
            assert!(part.keys.iter().all(|&k| ((k >> 5) & 7) as usize == p));
        }
    }

    #[test]
    fn multi_pass_equals_single_pass_contents() {
        let rel = RelationSpec::unique(8192, 4).generate();
        let single = parallel_radix_partition(&rel, 6, 0, 3);
        let multi = multi_pass_partition(&rel, 6, 3, 3);
        assert_eq!(multi.len(), single.len());
        for (a, b) in single.iter().zip(&multi) {
            let mut ka = a.keys.clone();
            let mut kb = b.keys.clone();
            ka.sort_unstable();
            kb.sort_unstable();
            assert_eq!(ka, kb);
        }
    }

    #[test]
    fn thread_count_does_not_change_the_multiset() {
        let rel = RelationSpec::zipf(5000, 512, 0.8, 5).generate();
        let one = parallel_radix_partition(&rel, 5, 0, 1);
        let eight = parallel_radix_partition(&rel, 5, 0, 8);
        for (a, b) in one.iter().zip(&eight) {
            let mut ka = a.keys.clone();
            let mut kb = b.keys.clone();
            ka.sort_unstable();
            kb.sort_unstable();
            assert_eq!(ka, kb);
        }
    }

    #[test]
    fn zero_bits_is_identity() {
        let rel = RelationSpec::unique(100, 6).generate();
        let parts = multi_pass_partition(&rel, 0, 6, 2);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].keys, rel.keys);
    }

    #[test]
    fn passes_math() {
        assert_eq!(passes_needed(0, 6), 1);
        assert_eq!(passes_needed(6, 6), 1);
        assert_eq!(passes_needed(7, 6), 2);
        assert_eq!(passes_needed(12, 6), 2);
        assert_eq!(passes_needed(13, 6), 3);
    }

    #[test]
    fn payload_width_propagates() {
        let rel = RelationSpec::unique(128, 7).with_payload_width(64).generate();
        let parts = parallel_radix_partition(&rel, 2, 0, 2);
        assert!(parts.iter().all(|p| p.payload_width == 64));
    }
}
