//! NPO: the non-partitioned shared hash join (Blanas et al., SIGMOD'11).
//!
//! One global chained hash table over the build side, built by all threads
//! with atomic head swaps, probed in parallel. Hardware-oblivious by
//! design: no partitioning pass, but every probe of a larger-than-LLC
//! table eats a cache (and possibly TLB) miss — the decay visible in the
//! paper's Figures 8 and 12.

use hcj_host::HostSpec;
use hcj_workload::oracle::{JoinCheck, JoinRow};
use hcj_workload::Relation;

use std::sync::atomic::{AtomicU32, Ordering};

use crate::model::{join_seconds, probe_rate, CpuJoinOutcome};

const NIL: u32 = u32::MAX;

/// The NPO join.
#[derive(Clone, Debug)]
pub struct NpoJoin {
    pub host: HostSpec,
    pub threads: u32,
    pub materialize: bool,
}

impl NpoJoin {
    /// NPO as run in the paper: all 48 hardware threads.
    pub fn paper_default() -> Self {
        let host = HostSpec::dual_xeon_e5_2650l_v3();
        let threads = host.total_threads();
        NpoJoin { host, threads, materialize: false }
    }

    pub fn with_threads(mut self, threads: u32) -> Self {
        assert!(threads >= 1 && threads <= self.host.total_threads());
        self.threads = threads;
        self
    }

    /// Execute R ⨝ S.
    pub fn execute(&self, r: &Relation, s: &Relation) -> CpuJoinOutcome {
        let slots = r.len().next_power_of_two().max(2);
        let mask = (slots - 1) as u32;
        let fthreads = (self.threads as usize).min(4);

        // ---- build: lock-free front insertion into a shared table ----
        let heads: Vec<AtomicU32> = (0..slots).map(|_| AtomicU32::new(NIL)).collect();
        let next: Vec<AtomicU32> = (0..r.len()).map(|_| AtomicU32::new(NIL)).collect();
        let chunk = r.len().div_ceil(fthreads).max(1);
        std::thread::scope(|scope| {
            for t in 0..fthreads {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(r.len());
                let heads = &heads;
                let next = &next;
                let keys = &r.keys;
                scope.spawn(move || {
                    for i in lo..hi {
                        let h = hash(keys[i]) & mask;
                        // atomic exchange + link: wait-free front insert.
                        let old = heads[h as usize].swap(i as u32, Ordering::AcqRel);
                        next[i].store(old, Ordering::Release);
                    }
                });
            }
        });

        // ---- probe in parallel ----
        let chunk = s.len().div_ceil(fthreads).max(1);
        let mut partials: Vec<(u64, u64, u64, Vec<JoinRow>)> = Vec::with_capacity(fthreads);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(fthreads);
            for t in 0..fthreads {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(s.len());
                let heads = &heads;
                let next = &next;
                let materialize = self.materialize;
                let (rk, rp) = (&r.keys, &r.payloads);
                let (sk, sp) = (&s.keys, &s.payloads);
                handles.push(scope.spawn(move || {
                    let mut matches = 0u64;
                    let (mut sum_r, mut sum_s) = (0u64, 0u64);
                    let mut rows = Vec::new();
                    for j in lo..hi {
                        let h = hash(sk[j]) & mask;
                        let mut idx = heads[h as usize].load(Ordering::Acquire);
                        while idx != NIL {
                            let i = idx as usize;
                            if rk[i] == sk[j] {
                                matches += 1;
                                sum_r = sum_r.wrapping_add(u64::from(rp[i]));
                                sum_s = sum_s.wrapping_add(u64::from(sp[j]));
                                if materialize {
                                    rows.push((sk[j], rp[i], sp[j]));
                                }
                            }
                            idx = next[i].load(Ordering::Acquire);
                        }
                    }
                    (matches, sum_r, sum_s, rows)
                }));
            }
            for h in handles {
                partials.push(h.join().expect("probe worker panicked"));
            }
        });

        let mut check = JoinCheck { matches: 0, sum_r_payload: 0, sum_s_payload: 0 };
        let mut rows = Vec::new();
        for (m, sr, ss, mut rw) in partials {
            check.matches += m;
            check.sum_r_payload = check.sum_r_payload.wrapping_add(sr);
            check.sum_s_payload = check.sum_s_payload.wrapping_add(ss);
            rows.append(&mut rw);
        }

        // ---- timing model ----
        // Working set = the shared table (heads + links + tuples ≈ 16 B per
        // build tuple + 4 B per slot) probed by every thread; the whole
        // LLC of the machine is available to it.
        let table_bytes = r.bytes() * 2 + slots as u64 * 4;
        let llc_total = self.host.llc_bytes_per_core * u64::from(self.host.total_cores());
        let rate = probe_rate(&self.host, table_bytes, llc_total);
        let seconds = join_seconds(self.threads, (r.len() + s.len()) as u64, rate);

        CpuJoinOutcome {
            check,
            rows: if self.materialize { Some(rows) } else { None },
            seconds,
            tuples_in: (r.len() + s.len()) as u64,
        }
    }
}

#[inline]
fn hash(key: u32) -> u32 {
    (key.wrapping_mul(0x9E37_79B1)) >> 8
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcj_workload::generate::canonical_pair;
    use hcj_workload::oracle::{assert_join_matches, JoinCheck};
    use hcj_workload::RelationSpec;

    #[test]
    fn npo_matches_oracle() {
        let (r, s) = canonical_pair(10_000, 40_000, 81);
        let out = NpoJoin::paper_default().execute(&r, &s);
        assert_eq!(out.check, JoinCheck::compute(&r, &s));
    }

    #[test]
    fn npo_materialization_matches_oracle() {
        let (r, s) = canonical_pair(3_000, 9_000, 82);
        let mut npo = NpoJoin::paper_default();
        npo.materialize = true;
        let out = npo.execute(&r, &s);
        assert_join_matches(&r, &s, out.rows.as_ref().unwrap());
    }

    #[test]
    fn skewed_probe_matches_oracle() {
        let r = RelationSpec::unique(4096, 83).generate();
        let s = RelationSpec::zipf(20_000, 4096, 1.0, 84).generate();
        let out = NpoJoin::paper_default().execute(&r, &s);
        assert_eq!(out.check, JoinCheck::compute(&r, &s));
    }

    #[test]
    fn small_tables_probe_fast_large_tables_slow() {
        // The modeled per-tuple rate decays once the table exceeds the
        // machine's LLC (Fig. 8's NPO decay).
        let (r_small, s_small) = canonical_pair(100_000, 100_000, 85);
        let small = NpoJoin::paper_default().execute(&r_small, &s_small);
        let (r_big, s_big) = canonical_pair(8_000_000, 8_000_000, 86);
        let big = NpoJoin::paper_default().execute(&r_big, &s_big);
        assert!(
            small.throughput_tuples_per_s() > 1.5 * big.throughput_tuples_per_s(),
            "small {:.3e} vs big {:.3e}",
            small.throughput_tuples_per_s(),
            big.throughput_tuples_per_s()
        );
    }

    #[test]
    fn many_to_many_duplicates_counted() {
        let r: Relation =
            (0..100u32).map(|i| hcj_workload::Tuple { key: i % 10, payload: i }).collect();
        let s = r.clone();
        let out = NpoJoin::paper_default().execute(&r, &s);
        assert_eq!(out.check.matches, 1000); // 10 keys x 10 x 10
    }
}
