//! CPU join baselines: the state-of-the-art algorithms the paper compares
//! against (§V-B, "we directly use the source code provided by these
//! studies"):
//!
//! * **PRO** — the parallel radix join of Balkesen et al.: multi-pass,
//!   TLB-bounded radix partitioning with per-thread histograms and
//!   software-managed buffers, followed by cache-sized per-partition hash
//!   joins;
//! * **NPO** — the non-partitioned shared hash join of Blanas et al.: one
//!   global chained hash table built by all threads, probed in parallel.
//!
//! Both are *functionally real* (multithreaded via std::thread::scope, outputs
//! validated against the oracle). Execution time comes from the calibrated
//! host model in `hcj-host`, scaled by thread count and cache behaviour —
//! see DESIGN.md for the calibration argument. The machine defaults to the
//! paper's dual 12-core Xeon, on which both algorithms run all 48 hardware
//! threads in the figures.

pub mod model;
pub mod npo;
pub mod partition;
pub mod pro;

pub use model::CpuJoinOutcome;
pub use npo::NpoJoin;
pub use pro::ProJoin;
