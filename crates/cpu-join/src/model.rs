//! The timing model for the CPU baselines.
//!
//! Functional execution validates *what* PRO/NPO compute; this module
//! computes *how long* the paper's 48-thread Xeon box takes, from the
//! calibrated per-thread rates in [`HostSpec`]:
//!
//! * partitioning consumes input at `per_thread_partition_bw` per thread
//!   per pass, capped by the machine's aggregate DRAM bandwidth;
//! * cache-resident per-partition joins run at
//!   `per_thread_join_tuples_per_s`;
//! * probes whose working set outgrows the LLC decay toward
//!   `per_thread_uncached_probe_tuples_per_s` in proportion to the miss
//!   ratio `1 - llc/working_set` — the mechanism behind both NPO's decay
//!   with table size (Fig. 8) and PRO's slow decline at huge inputs where
//!   the TLB-bounded fanout can no longer produce cache-sized partitions
//!   (Fig. 12).

use hcj_host::HostSpec;
use hcj_workload::oracle::{JoinCheck, JoinRow};

/// Result of a CPU baseline join.
#[derive(Clone, Debug)]
pub struct CpuJoinOutcome {
    pub check: JoinCheck,
    pub rows: Option<Vec<JoinRow>>,
    pub seconds: f64,
    pub tuples_in: u64,
}

impl CpuJoinOutcome {
    pub fn throughput_tuples_per_s(&self) -> f64 {
        self.tuples_in as f64 / self.seconds
    }
}

/// Effective aggregate partitioning bandwidth (bytes of input consumed per
/// second) for `threads` threads: linear scaling capped by DRAM.
pub fn partition_bw(host: &HostSpec, threads: u32) -> f64 {
    let linear = host.partition_bw(threads);
    let mem_cap = 0.9 * host.socket_mem_bandwidth * f64::from(host.sockets)
        / host.partition_mem_amplification;
    linear.min(mem_cap)
}

/// Seconds to radix-partition `bytes` of input in `passes` passes.
pub fn partition_seconds(host: &HostSpec, threads: u32, bytes: u64, passes: u32) -> f64 {
    bytes as f64 * f64::from(passes) / partition_bw(host, threads)
}

/// Per-thread probe/join rate (tuples/s) for a working set of
/// `working_set_bytes` against `llc_bytes` of cache: full speed when it
/// fits, linear blend toward the uncached rate with the miss fraction.
pub fn probe_rate(host: &HostSpec, working_set_bytes: u64, llc_bytes: u64) -> f64 {
    let cached = host.per_thread_join_tuples_per_s;
    let uncached = host.per_thread_uncached_probe_tuples_per_s;
    if working_set_bytes <= llc_bytes {
        return cached;
    }
    let hit = llc_bytes as f64 / working_set_bytes as f64;
    uncached + (cached - uncached) * hit
}

/// Seconds for `tuples` of build+probe work across `threads` threads at a
/// per-thread `rate`.
pub fn join_seconds(threads: u32, tuples: u64, rate: f64) -> f64 {
    tuples as f64 / (f64::from(threads) * rate)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn host() -> HostSpec {
        HostSpec::dual_xeon_e5_2650l_v3()
    }

    #[test]
    fn partition_bw_scales_then_caps() {
        let h = host();
        assert_eq!(partition_bw(&h, 4), 10.0e9);
        assert_eq!(partition_bw(&h, 16), 40.0e9);
        // 48 threads would demand 120 GB/s of input; DRAM caps it.
        let cap = partition_bw(&h, 48);
        assert!(cap < 120.0e9 * 0.9);
        assert!((cap - 0.9 * 2.0 * 55.0e9 / 2.0).abs() < 1e6);
    }

    #[test]
    fn probe_rate_decays_with_working_set() {
        let h = host();
        let llc = 30 * 1024 * 1024;
        let fast = probe_rate(&h, llc / 2, llc);
        let half = probe_rate(&h, 2 * llc, llc);
        let slow = probe_rate(&h, 100 * llc, llc);
        assert_eq!(fast, h.per_thread_join_tuples_per_s);
        assert!(half < fast && half > slow);
        assert!(slow < 1.2 * h.per_thread_uncached_probe_tuples_per_s);
    }

    #[test]
    fn pro_at_48_threads_lands_near_the_papers_half_billion() {
        // Sanity-check the calibration end to end: 2 x 64M tuples, 2-pass
        // partitioning, cache-resident partitions.
        let h = host();
        let tuples = 128_000_000u64;
        let bytes = tuples * 8;
        let t = partition_seconds(&h, 48, bytes, 2)
            + join_seconds(48, tuples, h.per_thread_join_tuples_per_s);
        let tput = tuples as f64 / t;
        assert!((0.3e9..0.8e9).contains(&tput), "PRO-shaped throughput at 48 threads = {tput:.3e}");
    }

    #[test]
    fn outcome_throughput() {
        let o = CpuJoinOutcome {
            check: JoinCheck { matches: 0, sum_r_payload: 0, sum_s_payload: 0 },
            rows: None,
            seconds: 2.0,
            tuples_in: 10,
        };
        assert_eq!(o.throughput_tuples_per_s(), 5.0);
    }
}
