//! PRO: the parallel radix join (Balkesen et al., "Multi-core, main-memory
//! joins: sort vs. hash revisited", VLDB'13) — the paper's strongest CPU
//! comparator.
//!
//! Phases: (1) multi-pass TLB-bounded radix partitioning of both inputs to
//! cache-sized co-partitions; (2) a hash join per co-partition, each small
//! enough that its hash table lives in a core's share of the LLC. The
//! partition depth adapts to the input size; at very large inputs the
//! bounded fanout leaves partitions larger than the cache share and the
//! cache advantage erodes (paper §V-D).

use hcj_host::HostSpec;
use hcj_workload::oracle::JoinRow;
use hcj_workload::Relation;
use std::collections::HashMap;

use crate::model::{join_seconds, partition_seconds, probe_rate, CpuJoinOutcome};
use crate::partition::{multi_pass_partition, passes_needed};

/// The PRO join.
#[derive(Clone, Debug)]
pub struct ProJoin {
    pub host: HostSpec,
    pub threads: u32,
    /// Collect result rows (otherwise aggregate-only, as in the figures).
    pub materialize: bool,
}

impl ProJoin {
    /// PRO as run in the paper: all 48 hardware threads.
    pub fn paper_default() -> Self {
        let host = HostSpec::dual_xeon_e5_2650l_v3();
        let threads = host.total_threads();
        ProJoin { host, threads, materialize: false }
    }

    pub fn with_threads(mut self, threads: u32) -> Self {
        assert!(threads >= 1 && threads <= self.host.total_threads());
        self.threads = threads;
        self
    }

    /// Radix depth for a build side of `r_tuples`: enough bits that the
    /// expected partition (16 B/tuple of table) fits half a core's LLC
    /// share, capped at two TLB-bounded passes (PRO's standard maximum).
    pub fn radix_bits_for(&self, r_tuples: usize) -> u32 {
        let tlb_bits = 31 - self.host.tlb_entries.leading_zeros();
        let target = (self.host.llc_bytes_per_core / 2 / 16).max(1) as usize;
        let mut bits = 0;
        while (r_tuples >> bits) > target && bits < 2 * tlb_bits {
            bits += 1;
        }
        bits
    }

    /// Execute R ⨝ S.
    pub fn execute(&self, r: &Relation, s: &Relation) -> CpuJoinOutcome {
        let tlb_bits = 31 - self.host.tlb_entries.leading_zeros();
        let bits = self.radix_bits_for(r.len());
        let passes = passes_needed(bits, tlb_bits);
        // Cap the functional thread count (determinism and 1-core CI
        // friendliness); the *model* uses the configured count.
        let fthreads = (self.threads as usize).min(4);

        // ---- functional execution ----
        let r_parts = multi_pass_partition(r, bits, tlb_bits, fthreads);
        let s_parts = multi_pass_partition(s, bits, tlb_bits, fthreads);
        let mut matches = 0u64;
        let mut sum_r = 0u64;
        let mut sum_s = 0u64;
        let mut rows: Vec<JoinRow> = Vec::new();
        for (rp, sp) in r_parts.iter().zip(&s_parts) {
            let mut table: HashMap<u32, Vec<u32>> = HashMap::with_capacity(rp.len());
            for t in rp.iter() {
                table.entry(t.key).or_default().push(t.payload);
            }
            for t in sp.iter() {
                if let Some(pays) = table.get(&t.key) {
                    for &p in pays {
                        matches += 1;
                        sum_r = sum_r.wrapping_add(u64::from(p));
                        sum_s = sum_s.wrapping_add(u64::from(t.payload));
                        if self.materialize {
                            rows.push((t.key, p, t.payload));
                        }
                    }
                }
            }
        }

        // ---- timing model ----
        let total_bytes = r.bytes() + s.bytes();
        let t_part = partition_seconds(&self.host, self.threads, total_bytes, passes);
        // Join-phase working set per partition: build table (~16 B/tuple)
        // plus the streamed probe slice.
        let partition_table_bytes = (r.bytes() / (1u64 << bits)).max(1) * 2;
        let rate = probe_rate(&self.host, partition_table_bytes, self.host.llc_bytes_per_core);
        let t_join = join_seconds(self.threads, (r.len() + s.len()) as u64, rate);

        CpuJoinOutcome {
            check: hcj_workload::oracle::JoinCheck {
                matches,
                sum_r_payload: sum_r,
                sum_s_payload: sum_s,
            },
            rows: if self.materialize { Some(rows) } else { None },
            seconds: t_part + t_join,
            tuples_in: (r.len() + s.len()) as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcj_workload::generate::canonical_pair;
    use hcj_workload::oracle::{assert_join_matches, JoinCheck};

    #[test]
    fn pro_matches_oracle() {
        let (r, s) = canonical_pair(20_000, 80_000, 71);
        let out = ProJoin::paper_default().execute(&r, &s);
        assert_eq!(out.check, JoinCheck::compute(&r, &s));
        assert!(out.seconds > 0.0);
    }

    #[test]
    fn pro_materialization_matches_oracle() {
        let (r, s) = canonical_pair(5_000, 10_000, 72);
        let mut pro = ProJoin::paper_default();
        pro.materialize = true;
        let out = pro.execute(&r, &s);
        assert_join_matches(&r, &s, out.rows.as_ref().unwrap());
    }

    #[test]
    fn throughput_scales_with_threads() {
        let (r, s) = canonical_pair(50_000, 50_000, 73);
        let t8 = ProJoin::paper_default().with_threads(8).execute(&r, &s);
        let t32 = ProJoin::paper_default().with_threads(32).execute(&r, &s);
        assert_eq!(t8.check, t32.check);
        let speedup = t8.seconds / t32.seconds;
        assert!((3.0..4.5).contains(&speedup), "speedup = {speedup}");
    }

    #[test]
    fn radix_depth_adapts_to_input_size() {
        let pro = ProJoin::paper_default();
        let small = pro.radix_bits_for(100_000);
        let large = pro.radix_bits_for(1_000_000_000);
        assert!(small < large);
        // Two TLB-bounded passes cap the depth.
        let tlb_bits = 31 - pro.host.tlb_entries.leading_zeros();
        assert!(large <= 2 * tlb_bits);
        assert_eq!(pro.radix_bits_for(2_000_000_000), 2 * tlb_bits);
    }

    #[test]
    fn huge_inputs_lose_the_cache_advantage() {
        // Model-level check: per-tuple throughput at 2B tuples is lower
        // than at 64M because partitions outgrow the cache share.
        let pro = ProJoin::paper_default();
        let model_tput = |tuples: u64| {
            let bits = pro.radix_bits_for(tuples as usize);
            let passes = passes_needed(bits, 31 - pro.host.tlb_entries.leading_zeros());
            let t_part = partition_seconds(&pro.host, 48, tuples * 16, passes);
            let table = (tuples * 8 / (1u64 << bits)).max(1) * 2;
            let rate = probe_rate(&pro.host, table, pro.host.llc_bytes_per_core);
            let t_join = join_seconds(48, 2 * tuples, rate);
            2.0 * tuples as f64 / (t_part + t_join)
        };
        let at_64m = model_tput(64_000_000);
        let at_2g = model_tput(2_048_000_000);
        assert!(at_2g < at_64m, "64M: {at_64m:.3e}, 2G: {at_2g:.3e}");
    }
}
