//! Property-style tests of the discrete-event engine's scheduling
//! invariants: work conservation, capacity limits, dependency ordering,
//! and determinism — over seeded randomized DAGs and resource mixes.
//!
//! Randomness comes from a local splitmix64 stream (the workspace builds
//! offline, without `proptest`), so every case is reproducible: a failure
//! message names the case index, and re-running replays it exactly.

use hcj_sim::{Op, OpId, Sim, SimTime};

/// A randomized op description: work, optional rate cap, and dependencies
/// on earlier ops (by index).
#[derive(Clone, Debug)]
struct OpSpec {
    work: f64,
    cap: Option<f64>,
    deps: Vec<usize>,
    shared: bool,
}

struct Gen(u64);

impl Gen {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }

    fn usize_below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

fn op_specs(gen: &mut Gen, max_ops: usize) -> Vec<OpSpec> {
    let count = 1 + gen.usize_below(max_ops - 1);
    (0..count)
        .map(|i| {
            let n_deps = gen.usize_below(4);
            OpSpec {
                work: gen.f64_in(0.1, 100.0),
                cap: gen.bool().then(|| gen.f64_in(0.5, 20.0)),
                // Deps may only point at strictly earlier ops.
                deps: (0..n_deps).filter(|_| i > 0).map(|_| gen.usize_below(i)).collect(),
                shared: gen.bool(),
            }
        })
        .collect()
}

fn build_and_run(specs: &[OpSpec]) -> (Vec<SimTime>, Vec<SimTime>, SimTime) {
    let mut sim = Sim::new();
    let fifo = sim.fifo_resource("fifo", 10.0, 2);
    let shared = sim.shared_resource("shared", 10.0, 0.8);
    let mut ids: Vec<OpId> = Vec::new();
    for spec in specs {
        let res = if spec.shared { shared } else { fifo };
        let mut op = Op::new(res, spec.work);
        if spec.shared {
            if let Some(cap) = spec.cap {
                op = op.rate_cap(cap);
            }
        }
        for &d in &spec.deps {
            op = op.after(ids[d]);
        }
        ids.push(sim.op(op));
    }
    let schedule = sim.run();
    let starts = ids.iter().map(|&id| schedule.start(id)).collect();
    let ends = ids.iter().map(|&id| schedule.finish(id)).collect();
    (starts, ends, schedule.makespan())
}

const CASES: u64 = 64;

/// Every op finishes; no op starts before its dependencies end; the
/// makespan is the max finish.
#[test]
fn dependencies_are_respected() {
    for case in 0..CASES {
        let specs = op_specs(&mut Gen(case), 40);
        let (starts, ends, makespan) = build_and_run(&specs);
        for (i, spec) in specs.iter().enumerate() {
            assert!(ends[i] >= starts[i], "case {case}");
            for &d in &spec.deps {
                assert!(
                    starts[i] >= ends[d],
                    "case {case}: op {i} started {} before dep {d} ended {}",
                    starts[i],
                    ends[d]
                );
            }
        }
        let max_end = ends.iter().copied().max().unwrap();
        assert_eq!(makespan, max_end, "case {case}");
    }
}

/// Work conservation: the whole DAG cannot finish faster than the total
/// work divided by the aggregate service capacity, nor faster than any
/// single op's best-case duration along a dependency chain.
#[test]
fn makespan_respects_capacity() {
    for case in 0..CASES {
        let specs = op_specs(&mut Gen(1000 + case), 40);
        let (_, ends, makespan) = build_and_run(&specs);
        let fifo_work: f64 = specs.iter().filter(|s| !s.shared).map(|s| s.work).sum();
        let shared_work: f64 = specs.iter().filter(|s| s.shared).map(|s| s.work).sum();
        // FIFO: 2 lanes x 10/s; shared: 10/s total (x0.8 only when classes
        // mix, and all ops here share class 0, so full rate applies).
        let lower = (fifo_work / 20.0).max(shared_work / 10.0);
        assert!(
            makespan.as_secs_f64() >= lower * (1.0 - 1e-6) - 1e-9,
            "case {case}: makespan {} below capacity bound {lower}",
            makespan.as_secs_f64()
        );
        // And no op finished faster than its own work at its own best rate.
        for (i, spec) in specs.iter().enumerate() {
            let best_rate = if spec.shared { spec.cap.map_or(10.0, |c| c.min(10.0)) } else { 10.0 };
            let min_dur = spec.work / best_rate;
            assert!(
                ends[i].as_secs_f64() >= min_dur * (1.0 - 1e-6) - 1e-9,
                "case {case}: op {i} finished at {} under its minimum duration {min_dur}",
                ends[i].as_secs_f64()
            );
        }
    }
}

/// Determinism: running the same DAG twice gives identical schedules.
#[test]
fn schedules_are_deterministic() {
    for case in 0..CASES {
        let specs = op_specs(&mut Gen(2000 + case), 30);
        let a = build_and_run(&specs);
        let b = build_and_run(&specs);
        assert_eq!(a.0, b.0, "case {case}");
        assert_eq!(a.1, b.1, "case {case}");
        assert_eq!(a.2, b.2, "case {case}");
    }
}

/// Chains serialize exactly: a linear chain's makespan on a dedicated
/// FIFO equals the sum of its op durations.
#[test]
fn chain_makespan_is_sum() {
    for case in 0..CASES {
        let mut gen = Gen(3000 + case);
        let len = 1 + gen.usize_below(19);
        let works: Vec<f64> = (0..len).map(|_| gen.f64_in(0.1, 50.0)).collect();
        let mut sim = Sim::new();
        let r = sim.fifo_resource("r", 4.0, 1);
        let mut prev: Option<OpId> = None;
        for &w in &works {
            let mut op = Op::new(r, w);
            if let Some(p) = prev {
                op = op.after(p);
            }
            prev = Some(sim.op(op));
        }
        let schedule = sim.run();
        let want: f64 = works.iter().map(|w| w / 4.0).sum();
        let got = schedule.makespan().as_secs_f64();
        assert!((got - want).abs() < 1e-6 + want * 1e-9, "case {case}: got {got}, want {want}");
    }
}

/// Independent ops on an unlimited-lane FIFO all run at full rate:
/// makespan equals the longest op.
#[test]
fn wide_fifo_runs_everything_in_parallel() {
    for case in 0..CASES {
        let mut gen = Gen(4000 + case);
        let len = 1 + gen.usize_below(31);
        let works: Vec<f64> = (0..len).map(|_| gen.f64_in(0.1, 50.0)).collect();
        let mut sim = Sim::new();
        let r = sim.fifo_resource("r", 2.0, 64);
        for &w in &works {
            sim.op(Op::new(r, w));
        }
        let schedule = sim.run();
        let want = works.iter().cloned().fold(0.0f64, f64::max) / 2.0;
        let got = schedule.makespan().as_secs_f64();
        assert!((got - want).abs() < 1e-6, "case {case}: got {got}, want {want}");
    }
}

/// Shared-resource completion order follows remaining-work order for
/// same-size caps: ops submitted with strictly increasing work finish in
/// submission order.
#[test]
fn shared_resource_orders_by_work() {
    for count in 2usize..12 {
        let mut sim = Sim::new();
        let bus = sim.shared_resource("bus", 10.0, 1.0);
        let ids: Vec<OpId> =
            (0..count).map(|i| sim.op(Op::new(bus, (i + 1) as f64 * 5.0))).collect();
        let schedule = sim.run();
        for w in ids.windows(2) {
            assert!(schedule.finish(w[0]) <= schedule.finish(w[1]), "count {count}");
        }
    }
}
