//! Virtual time. Nanosecond-resolution `u64` wrapped in a newtype so that
//! simulated durations can never be confused with wall-clock durations.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point on (or a distance along) the simulated clock, in nanoseconds.
///
/// `SimTime` is totally ordered and supports saturating-free arithmetic;
/// the engine guarantees monotone, non-negative times, and subtraction of a
/// later time from an earlier one is a programming error (panics in debug).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero: the instant the simulation starts.
    pub const ZERO: SimTime = SimTime(0);

    /// Largest representable time; used as "never" by the engine.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from integer nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from (non-negative, finite) seconds, rounding to the
    /// nearest nanosecond.
    pub fn from_secs_f64(secs: f64) -> Self {
        debug_assert!(secs.is_finite() && secs >= 0.0, "bad duration: {secs}");
        SimTime((secs * 1e9).round() as u64)
    }

    /// Nanoseconds since time zero.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since time zero, as `f64` (lossy for very large times).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// `max(self, other)`.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Checked difference: `None` when `earlier > self`.
    pub fn checked_sub(self, earlier: SimTime) -> Option<SimTime> {
        self.0.checked_sub(earlier.0).map(SimTime)
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow: subtracting a later time"))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn rounding_is_nearest() {
        // 0.4 ns rounds down, 0.6 ns rounds up.
        assert_eq!(SimTime::from_secs_f64(0.4e-9).as_nanos(), 0);
        assert_eq!(SimTime::from_secs_f64(0.6e-9).as_nanos(), 1);
    }

    #[test]
    fn ordering_and_arithmetic() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(25);
        assert!(a < b);
        assert_eq!((b - a).as_nanos(), 15);
        assert_eq!((a + b).as_nanos(), 35);
        assert_eq!(a.max(b), b);
        assert_eq!(a.checked_sub(b), None);
        assert_eq!(b.checked_sub(a), Some(SimTime::from_nanos(15)));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtracting_later_time_panics() {
        let _ = SimTime::from_nanos(1) - SimTime::from_nanos(2);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimTime::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimTime::from_nanos(12_000).to_string(), "12.000us");
        assert_eq!(SimTime::from_nanos(12_000_000).to_string(), "12.000ms");
        assert_eq!(SimTime::from_nanos(12_000_000_000).to_string(), "12.000s");
    }
}
