//! Discrete-event simulation engine used by the GPU and host hardware models.
//!
//! The join algorithms in this workspace execute *functionally* (they really
//! partition, build, probe and materialize), while the time they would take
//! on the paper's hardware is computed by this engine. A strategy describes
//! its execution as a DAG of [`Op`]s bound to [`ResourceId`]s (PCIe links, DMA
//! engines, GPU compute, socket memory buses, CPU threads); the engine then
//! solves the schedule: every operation starts when its dependencies finish
//! and its resource admits it, and runs at a rate determined by the
//! resource's sharing discipline.
//!
//! Two disciplines are supported:
//!
//! * **FIFO** resources ([`Sim::fifo_resource`]) serve up to `lanes`
//!   operations concurrently, each at the full rate. A DMA copy engine is a
//!   1-lane FIFO; the GPU compute engine is a 1-lane FIFO (one grid at a
//!   time, which matches how the paper's kernels saturate the device).
//! * **Shared** resources ([`Sim::shared_resource`]) divide their rate
//!   evenly among all concurrently running operations (processor sharing).
//!   This models memory buses: a socket's DRAM bandwidth is split between
//!   partitioning threads and DMA reads, which is exactly the interference
//!   the paper works around in §IV-B. An optional *contention factor*
//!   degrades the total rate while operations of different [`Op::class`]es
//!   overlap, modeling cache-coherence traffic on QPI (paper Fig. 16).
//!
//! The result of [`Sim::run`] is a [`Schedule`]: per-op start/finish spans on
//! a virtual clock plus analysis helpers (makespan, per-resource busy time,
//! overlap between phases) that the tests use to assert that pipelines
//! actually overlap transfers with execution.
//!
//! ```
//! use hcj_sim::{Sim, Op};
//!
//! let mut sim = Sim::new();
//! let pcie = sim.fifo_resource("pcie-h2d", 12.0e9, 1); // 12 GB/s, one DMA engine
//! let gpu = sim.fifo_resource("gpu", 1.0, 1);          // rate 1.0: work given in seconds
//!
//! // Double-buffered pipeline: copy chunk k, then process it while chunk k+1 copies.
//! let c0 = sim.op(Op::new(pcie, 1.2e9).label("copy-0"));
//! let k0 = sim.op(Op::new(gpu, 0.05).label("join-0").after(c0));
//! let c1 = sim.op(Op::new(pcie, 1.2e9).label("copy-1").after(c0));
//! let k1 = sim.op(Op::new(gpu, 0.05).label("join-1").after(c1).after(k0));
//! let schedule = sim.run();
//! assert!(schedule.finish(k1) > schedule.finish(c1));
//! // The two copies run back-to-back; join-0 overlaps copy-1 entirely.
//! assert_eq!(schedule.start(c1), schedule.finish(c0));
//! ```

pub mod baseline;
mod engine;
mod op;
mod resource;
mod schedule;
mod time;
pub mod trace;
pub mod validate;

pub use engine::Sim;
pub use op::{Op, OpId};
pub use resource::{ResourceId, ResourceKind};
pub use schedule::{RateSegment, ResourceMeta, Schedule, Span};
pub use time::SimTime;
pub use trace::{CounterId, Timeline, TimelineSpan, TraceExporter, TrackId};
pub use validate::{Invariant, ScheduleValidator, ValidationError, Violation};

/// Convenience: bytes-per-second rate from GB/s (decimal gigabytes).
pub const fn gbps(x: f64) -> f64 {
    // `const fn` floating multiplication is stable.
    x * 1.0e9
}

/// Convenience: mebibytes to bytes, as f64 work units.
pub const fn mib(x: f64) -> f64 {
    x * (1024.0 * 1024.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gbps_and_mib_scale() {
        assert_eq!(gbps(12.0), 12.0e9);
        assert_eq!(mib(1.0), 1048576.0);
    }
}
