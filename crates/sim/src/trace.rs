//! Export a [`Schedule`] as Chrome `trace_event` JSON.
//!
//! The emitted file loads directly into `chrome://tracing`, Perfetto
//! (<https://ui.perfetto.dev>) or `about:tracing`: one track (thread) per
//! simulated resource, one complete event per span, and a counter track per
//! `Shared` resource showing the total rate it hands out over time. This
//! turns the textual gantt of [`Schedule::render_gantt`] into a zoomable
//! timeline for debugging pipeline structure.
//!
//! The format is the "JSON Object Format" of the Trace Event spec: a
//! top-level object with a `traceEvents` array; `ph: "X"` complete events
//! carry microsecond `ts`/`dur`; `ph: "M"` metadata events name the
//! process and threads; `ph: "C"` counter events plot the rates. All JSON
//! is rendered by hand — the workspace is dependency-free by design.

use std::fmt::Write as _;
use std::path::Path;

use crate::resource::ResourceKind;
use crate::schedule::Schedule;
use crate::time::SimTime;

/// A hand-built timeline for trace export: named tracks of closed spans
/// plus counter series, in the same `trace_event` vocabulary a
/// [`Schedule`] exports to. Layers above the simulator (e.g. a join
/// *service* multiplexing many schedules over one device) use this to
/// render their own virtual-time history — queue waits, admissions,
/// device-memory pressure — as one Chrome/Perfetto timeline.
#[derive(Clone, Debug, Default)]
pub struct Timeline {
    process_name: String,
    tracks: Vec<(String, Vec<TimelineSpan>)>,
    counters: Vec<(String, Vec<(SimTime, f64)>)>,
}

/// One closed `[start, end]` span on a [`Timeline`] track. `class` maps to
/// the trace category (colors groups of spans alike in viewers).
#[derive(Clone, Debug)]
pub struct TimelineSpan {
    pub label: String,
    pub class: u32,
    pub start: SimTime,
    pub end: SimTime,
}

/// Index of a track within its [`Timeline`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TrackId(usize);

/// Index of a counter series within its [`Timeline`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterId(usize);

impl Timeline {
    pub fn new(process_name: impl Into<String>) -> Self {
        Timeline { process_name: process_name.into(), tracks: Vec::new(), counters: Vec::new() }
    }

    /// Add a named track; spans land on it via [`Timeline::span`].
    pub fn track(&mut self, name: impl Into<String>) -> TrackId {
        self.tracks.push((name.into(), Vec::new()));
        TrackId(self.tracks.len() - 1)
    }

    /// Record a closed span on `track`. Zero-length spans are kept (they
    /// export with their true zero duration and mark instants).
    pub fn span(
        &mut self,
        track: TrackId,
        label: impl Into<String>,
        class: u32,
        start: SimTime,
        end: SimTime,
    ) {
        debug_assert!(start <= end, "span must close after it opens");
        self.tracks[track.0].1.push(TimelineSpan { label: label.into(), class, start, end });
    }

    /// Record an instant (zero-length span) on `track` — fault injections,
    /// retries and deadline cancellations render as markers this way.
    pub fn instant(&mut self, track: TrackId, label: impl Into<String>, class: u32, at: SimTime) {
        self.span(track, label, class, at, at);
    }

    /// Add a counter series; points land on it via [`Timeline::sample`].
    pub fn counter(&mut self, name: impl Into<String>) -> CounterId {
        self.counters.push((name.into(), Vec::new()));
        CounterId(self.counters.len() - 1)
    }

    /// Record that `counter` has `value` from `at` onward.
    pub fn sample(&mut self, counter: CounterId, at: SimTime, value: f64) {
        self.counters[counter.0].1.push((at, value));
    }

    /// Number of spans across all tracks.
    pub fn span_count(&self) -> usize {
        self.tracks.iter().map(|(_, s)| s.len()).sum()
    }

    /// Merge another timeline into this one, prefixing every absorbed
    /// track and counter name with `prefix`. This is how a multi-device
    /// layer aggregates per-device sub-timelines into one fleet view:
    /// each device records its own history independently, then the fleet
    /// absorbs them (`"device 0 · exec"`, `"device 1 · reserved (B)"`,
    /// …) so the whole run still exports as a single Chrome trace.
    /// Absorption preserves span/sample order within each source track.
    pub fn absorb(&mut self, other: Timeline, prefix: &str) {
        for (name, spans) in other.tracks {
            let id = self.track(format!("{prefix}{name}"));
            self.tracks[id.0].1 = spans;
        }
        for (name, samples) in other.counters {
            let id = self.counter(format!("{prefix}{name}"));
            self.counters[id.0].1 = samples;
        }
    }
}

/// Serializes schedules to Chrome trace JSON; see the module docs.
#[derive(Clone, Copy, Debug, Default)]
pub struct TraceExporter;

impl TraceExporter {
    pub fn new() -> Self {
        TraceExporter
    }

    /// Render `schedule` as a Chrome trace JSON document.
    pub fn to_json(&self, schedule: &Schedule) -> String {
        assemble(self.schedule_events(schedule))
    }

    /// Render `schedule` plus the counter series of `counters` (its tracks
    /// are ignored) as one Chrome trace document. This is how `--profile`
    /// overlays hardware-counter tracks — bandwidth per direction,
    /// occupancy — on a figure's schedule trace.
    pub fn to_json_with_counters(&self, schedule: &Schedule, counters: &Timeline) -> String {
        let mut events = self.schedule_events(schedule);
        push_counter_events(counters, &mut events);
        assemble(events)
    }

    /// Write the schedule-plus-counter-tracks trace to `path`.
    pub fn write_with_counters(
        &self,
        schedule: &Schedule,
        counters: &Timeline,
        path: &Path,
    ) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_json_with_counters(schedule, counters))
    }

    /// The event list of a schedule trace (metadata, spans, shared-resource
    /// rate counters), before assembly into a document.
    fn schedule_events(&self, schedule: &Schedule) -> Vec<String> {
        let mut events: Vec<String> = Vec::new();
        events.push(
            r#"{"name":"process_name","ph":"M","pid":0,"tid":0,"args":{"name":"hcj-sim"}}"#
                .to_string(),
        );

        // One named track per resource; latency-only ops share a final track.
        let latency_tid = schedule.resources().len() as u32;
        for (i, meta) in schedule.resources().iter().enumerate() {
            let kind = match meta.kind {
                ResourceKind::Fifo { lanes } => format!("fifo x{lanes}"),
                ResourceKind::Shared { .. } => "shared".to_string(),
            };
            events.push(format!(
                r#"{{"name":"thread_name","ph":"M","pid":0,"tid":{},"args":{{"name":{}}}}}"#,
                i,
                json_string(&format!("{} ({kind}, {:.3e}/s)", meta.name, meta.rate)),
            ));
        }
        if schedule.spans().iter().any(|sp| sp.resource.is_none()) {
            events.push(format!(
                r#"{{"name":"thread_name","ph":"M","pid":0,"tid":{latency_tid},"args":{{"name":"(latency)"}}}}"#,
            ));
        }

        // Complete events, one per span.
        for sp in schedule.spans() {
            let tid = sp.resource.map_or(latency_tid, |r| r.index() as u32);
            let name =
                if sp.label.is_empty() { format!("op{}", sp.op.index()) } else { sp.label.clone() };
            events.push(format!(
                r#"{{"name":{},"cat":{},"ph":"X","pid":0,"tid":{},"ts":{},"dur":{},"args":{{"op":{},"class":{},"work":{}}}}}"#,
                json_string(&name),
                json_string(&format!("class-{}", sp.class)),
                tid,
                micros(sp.start),
                micros(sp.duration()),
                sp.op.index(),
                sp.class,
                json_f64(sp.work),
            ));
        }

        // Counter tracks: total allocated rate per shared resource.
        for (i, meta) in schedule.resources().iter().enumerate() {
            if !matches!(meta.kind, ResourceKind::Shared { .. }) {
                continue;
            }
            let segs: Vec<_> = schedule
                .rate_segments()
                .iter()
                .filter(|g| g.resource.index() == i && g.end > g.start)
                .collect();
            if segs.is_empty() {
                continue;
            }
            let mut bounds: Vec<SimTime> = segs.iter().flat_map(|g| [g.start, g.end]).collect();
            bounds.sort_unstable();
            bounds.dedup();
            let counter = json_string(&format!("{} rate", meta.name));
            for w in bounds.windows(2) {
                let total: f64 =
                    segs.iter().filter(|g| g.start <= w[0] && g.end >= w[1]).map(|g| g.rate).sum();
                events.push(format!(
                    r#"{{"name":{counter},"ph":"C","pid":0,"ts":{},"args":{{"rate":{}}}}}"#,
                    micros(w[0]),
                    json_f64(total),
                ));
            }
            // Drop the counter back to zero at the end of the last segment.
            events.push(format!(
                r#"{{"name":{counter},"ph":"C","pid":0,"ts":{},"args":{{"rate":0}}}}"#,
                micros(*bounds.last().expect("non-empty bounds")),
            ));
        }
        events
    }

    /// Write the trace to `path`, creating parent directories as needed.
    pub fn write(&self, schedule: &Schedule, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_json(schedule))
    }

    /// Render a hand-built [`Timeline`] as a Chrome trace JSON document:
    /// one thread per track, one complete event per span, one counter
    /// track per series.
    pub fn timeline_to_json(&self, timeline: &Timeline) -> String {
        let mut events: Vec<String> = Vec::new();
        events.push(format!(
            r#"{{"name":"process_name","ph":"M","pid":0,"tid":0,"args":{{"name":{}}}}}"#,
            json_string(&timeline.process_name),
        ));
        for (tid, (name, _)) in timeline.tracks.iter().enumerate() {
            events.push(format!(
                r#"{{"name":"thread_name","ph":"M","pid":0,"tid":{tid},"args":{{"name":{}}}}}"#,
                json_string(name),
            ));
        }
        for (tid, (_, spans)) in timeline.tracks.iter().enumerate() {
            for sp in spans {
                events.push(format!(
                    r#"{{"name":{},"cat":{},"ph":"X","pid":0,"tid":{tid},"ts":{},"dur":{},"args":{{"class":{}}}}}"#,
                    json_string(&sp.label),
                    json_string(&format!("class-{}", sp.class)),
                    micros(sp.start),
                    micros(sp.end - sp.start),
                    sp.class,
                ));
            }
        }
        push_counter_events(timeline, &mut events);
        assemble(events)
    }

    /// Write a [`Timeline`] to `path`, creating parent directories.
    pub fn write_timeline(&self, timeline: &Timeline, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.timeline_to_json(timeline))
    }
}

/// Append one `ph: "C"` event per sample of every counter series.
fn push_counter_events(timeline: &Timeline, events: &mut Vec<String>) {
    for (name, points) in &timeline.counters {
        let counter = json_string(name);
        for (at, value) in points {
            events.push(format!(
                r#"{{"name":{counter},"ph":"C","pid":0,"ts":{},"args":{{"value":{}}}}}"#,
                micros(*at),
                json_f64(*value),
            ));
        }
    }
}

/// Wrap an event list into the trace-document object.
fn assemble(events: Vec<String>) -> String {
    let mut out = String::with_capacity(events.iter().map(|e| e.len() + 4).sum::<usize>() + 64);
    out.push_str("{\"traceEvents\":[\n");
    for (i, ev) in events.iter().enumerate() {
        out.push_str(ev);
        out.push_str(if i + 1 < events.len() { ",\n" } else { "\n" });
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Microseconds with nanosecond precision (trace `ts`/`dur` unit).
fn micros(t: SimTime) -> String {
    let ns = t.as_nanos();
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

/// A finite f64 as a JSON number (trace args never need inf/NaN).
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// JSON string literal with escaping.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Op, Sim};

    /// Minimal recursive-descent JSON syntax checker so the tests prove the
    /// hand-rolled output is structurally valid, not merely non-empty.
    mod json {
        pub fn parse(s: &str) -> Result<(), String> {
            let b = s.as_bytes();
            let mut i = 0;
            value(b, &mut i)?;
            skip_ws(b, &mut i);
            if i != b.len() {
                return Err(format!("trailing bytes at {i}"));
            }
            Ok(())
        }

        fn skip_ws(b: &[u8], i: &mut usize) {
            while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
                *i += 1;
            }
        }

        fn value(b: &[u8], i: &mut usize) -> Result<(), String> {
            skip_ws(b, i);
            match b.get(*i) {
                Some(b'{') => object(b, i),
                Some(b'[') => array(b, i),
                Some(b'"') => string(b, i),
                Some(b't') => literal(b, i, b"true"),
                Some(b'f') => literal(b, i, b"false"),
                Some(b'n') => literal(b, i, b"null"),
                Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, i),
                other => Err(format!("unexpected {other:?} at {i}")),
            }
        }

        fn object(b: &[u8], i: &mut usize) -> Result<(), String> {
            *i += 1; // {
            skip_ws(b, i);
            if b.get(*i) == Some(&b'}') {
                *i += 1;
                return Ok(());
            }
            loop {
                skip_ws(b, i);
                string(b, i)?;
                skip_ws(b, i);
                if b.get(*i) != Some(&b':') {
                    return Err(format!("expected ':' at {i}"));
                }
                *i += 1;
                value(b, i)?;
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b'}') => {
                        *i += 1;
                        return Ok(());
                    }
                    other => return Err(format!("expected ',' or '}}', got {other:?} at {i}")),
                }
            }
        }

        fn array(b: &[u8], i: &mut usize) -> Result<(), String> {
            *i += 1; // [
            skip_ws(b, i);
            if b.get(*i) == Some(&b']') {
                *i += 1;
                return Ok(());
            }
            loop {
                value(b, i)?;
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b']') => {
                        *i += 1;
                        return Ok(());
                    }
                    other => return Err(format!("expected ',' or ']', got {other:?} at {i}")),
                }
            }
        }

        fn string(b: &[u8], i: &mut usize) -> Result<(), String> {
            if b.get(*i) != Some(&b'"') {
                return Err(format!("expected string at {i}"));
            }
            *i += 1;
            while let Some(&c) = b.get(*i) {
                match c {
                    b'"' => {
                        *i += 1;
                        return Ok(());
                    }
                    b'\\' => *i += 2,
                    c if c < 0x20 => return Err(format!("raw control byte in string at {i}")),
                    _ => *i += 1,
                }
            }
            Err("unterminated string".to_string())
        }

        fn number(b: &[u8], i: &mut usize) -> Result<(), String> {
            let start = *i;
            while *i < b.len() && matches!(b[*i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
                *i += 1;
            }
            std::str::from_utf8(&b[start..*i])
                .ok()
                .and_then(|s| s.parse::<f64>().ok())
                .map(|_| ())
                .ok_or_else(|| format!("bad number at {start}"))
        }

        fn literal(b: &[u8], i: &mut usize, want: &[u8]) -> Result<(), String> {
            if b.len() - *i >= want.len() && &b[*i..*i + want.len()] == want {
                *i += want.len();
                Ok(())
            } else {
                Err(format!("bad literal at {i}"))
            }
        }
    }

    fn sample_schedule() -> Schedule {
        let mut sim = Sim::new();
        let pcie = sim.fifo_resource("pcie-h2d", 12.0e9, 1);
        let bus = sim.shared_resource("dram", 60.0e9, 0.8);
        let gpu = sim.fifo_resource("gpu", 1.0, 1);
        let c = sim.op(Op::new(pcie, 1.0e9).label("h2d chunk \"0\""));
        let k = sim.op(Op::new(gpu, 0.05).label("join0").after(c));
        sim.op(Op::new(bus, 10.0e9).class(1).rate_cap(30.0e9).after(k));
        sim.op(Op::new(bus, 5.0e9).class(2));
        sim.op(Op::latency(SimTime::from_nanos(1500)));
        sim.run()
    }

    #[test]
    fn trace_is_valid_json() {
        let json = TraceExporter::new().to_json(&sample_schedule());
        json::parse(&json).expect("trace must parse as JSON");
    }

    #[test]
    fn trace_contains_tracks_spans_and_counters() {
        let json = TraceExporter::new().to_json(&sample_schedule());
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("pcie-h2d"));
        assert!(json.contains("join0"));
        assert!(json.contains("\\\"0\\\"")); // label quotes escaped
        assert!(json.contains("(latency)"));
        assert!(json.contains("dram rate")); // shared counter track
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"C\""));
    }

    #[test]
    fn write_creates_parent_dirs() {
        let dir = std::env::temp_dir().join("hcj-trace-test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested").join("pipeline.trace.json");
        TraceExporter::new().write(&sample_schedule(), &path).expect("write trace");
        let body = std::fs::read_to_string(&path).expect("read trace back");
        json::parse(&body).expect("written trace must parse");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn micros_formats_nanosecond_precision() {
        assert_eq!(micros(SimTime::from_nanos(1500)), "1.500");
        assert_eq!(micros(SimTime::from_nanos(42)), "0.042");
        assert_eq!(micros(SimTime::from_nanos(2_000_000)), "2000.000");
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c\n"), r#""a\"b\\c\n""#);
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn empty_schedule_still_valid() {
        let json = TraceExporter::new().to_json(&Sim::new().run());
        json::parse(&json).expect("empty trace must parse");
    }

    fn sample_timeline() -> Timeline {
        let mut tl = Timeline::new("join-service");
        let c0 = tl.track("client 0");
        let c1 = tl.track("client \"1\"");
        tl.span(c0, "wait r0.0", 1, SimTime::ZERO, SimTime::from_nanos(2_000));
        tl.span(c0, "GpuResident r0.0", 2, SimTime::from_nanos(2_000), SimTime::from_nanos(9_000));
        tl.instant(c1, "instant", 3, SimTime::from_nanos(500));
        let mem = tl.counter("device used");
        tl.sample(mem, SimTime::ZERO, 0.0);
        tl.sample(mem, SimTime::from_nanos(2_000), 4096.0);
        tl.sample(mem, SimTime::from_nanos(9_000), 0.0);
        tl
    }

    #[test]
    fn timeline_is_valid_json_with_tracks_and_counters() {
        let tl = sample_timeline();
        assert_eq!(tl.span_count(), 3);
        let json = TraceExporter::new().timeline_to_json(&tl);
        json::parse(&json).expect("timeline must parse as JSON");
        assert!(json.contains("join-service"));
        assert!(json.contains("client 0"));
        assert!(json.contains("\\\"1\\\"")); // track-name quotes escaped
        assert!(json.contains("GpuResident r0.0"));
        assert!(json.contains("device used"));
        assert!(json.contains("\"ph\":\"C\""));
        // The zero-length span exports with zero duration, not dropped.
        assert!(json.contains(
            r#""name":"instant","cat":"class-3","ph":"X","pid":0,"tid":1,"ts":0.500,"dur":0.000"#
        ));
    }

    #[test]
    fn timeline_write_creates_parent_dirs() {
        let dir = std::env::temp_dir().join("hcj-timeline-test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested").join("service.trace.json");
        TraceExporter::new().write_timeline(&sample_timeline(), &path).expect("write timeline");
        let body = std::fs::read_to_string(&path).expect("read timeline back");
        json::parse(&body).expect("written timeline must parse");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn schedule_with_counter_overlay_merges_both() {
        let schedule = sample_schedule();
        let mut overlay = Timeline::new("counters");
        let bw = overlay.counter("device-mem GB/s");
        overlay.sample(bw, SimTime::ZERO, 120.0);
        overlay.sample(bw, SimTime::from_nanos(50_000), 0.0);
        let json = TraceExporter::new().to_json_with_counters(&schedule, &overlay);
        json::parse(&json).expect("merged trace must parse as JSON");
        assert!(json.contains("join0"), "schedule spans present");
        assert!(json.contains("device-mem GB/s"), "overlay counters present");
        // The overlay's tracks would collide with schedule tids; only its
        // counter series are merged.
        assert!(!json.contains("\"name\":\"counters\""));
    }

    #[test]
    fn empty_timeline_still_valid() {
        let json = TraceExporter::new().timeline_to_json(&Timeline::new("empty"));
        json::parse(&json).expect("empty timeline must parse");
    }

    #[test]
    fn absorb_prefixes_and_preserves_device_subtimelines() {
        let mut fleet = Timeline::new("fleet");
        let own = fleet.track("router");
        fleet.span(own, "route r0", 1, SimTime::ZERO, SimTime::from_nanos(10));
        for d in 0..2u32 {
            let mut dev = Timeline::new("device");
            let t = dev.track("exec");
            dev.span(t, format!("join d{d}"), 2, SimTime::ZERO, SimTime::from_nanos(100));
            let c = dev.counter("reserved (B)");
            dev.sample(c, SimTime::ZERO, 42.0 * f64::from(d + 1));
            fleet.absorb(dev, &format!("device {d} · "));
        }
        assert_eq!(fleet.span_count(), 3);
        let json = TraceExporter::new().timeline_to_json(&fleet);
        json::parse(&json).expect("aggregated fleet timeline must parse");
        for needle in ["router", "device 0 · exec", "device 1 · exec", "device 1 · reserved (B)"]
        {
            assert!(json.contains(needle), "missing aggregated track `{needle}`");
        }
    }
}
