//! Resource descriptions: the hardware units operations contend for.

/// Identifies a resource registered with [`crate::Sim`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ResourceId(pub(crate) u32);

impl ResourceId {
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }
}

/// The sharing discipline of a resource.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ResourceKind {
    /// Serve up to `lanes` operations at once, each at the full rate, in
    /// arrival order. A copy engine is `Fifo { lanes: 1 }`.
    Fifo { lanes: u32 },
    /// Processor sharing: the rate is divided evenly among all running
    /// operations. While operations of at least two distinct
    /// [`crate::Op::class`]es are running, the *total* rate is multiplied by
    /// `contention_factor` (≤ 1.0), modeling cross-traffic penalties such as
    /// cache-coherence interference on an interconnect.
    Shared { contention_factor: f64 },
}

#[derive(Debug)]
pub(crate) struct Resource {
    pub name: String,
    /// Work units per second (bytes/s for links and buses, seconds/s = 1.0
    /// for resources whose work is expressed directly in seconds).
    pub rate: f64,
    pub kind: ResourceKind,
}

impl Resource {
    pub(crate) fn new(name: impl Into<String>, rate: f64, kind: ResourceKind) -> Self {
        let name = name.into();
        assert!(rate > 0.0 && rate.is_finite(), "resource {name}: rate must be positive");
        if let ResourceKind::Shared { contention_factor } = kind {
            assert!(
                (0.0..=1.0).contains(&contention_factor) && contention_factor > 0.0,
                "resource {name}: contention factor must be in (0, 1]"
            );
        }
        if let ResourceKind::Fifo { lanes } = kind {
            assert!(lanes > 0, "resource {name}: need at least one lane");
        }
        Resource { name, rate, kind }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_resources_construct() {
        let r = Resource::new("pcie", 12.0e9, ResourceKind::Fifo { lanes: 1 });
        assert_eq!(r.name, "pcie");
        let r = Resource::new("dram", 60.0e9, ResourceKind::Shared { contention_factor: 0.8 });
        assert_eq!(r.rate, 60.0e9);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_rejected() {
        Resource::new("bad", 0.0, ResourceKind::Fifo { lanes: 1 });
    }

    #[test]
    #[should_panic(expected = "contention factor")]
    fn bad_contention_rejected() {
        Resource::new("bad", 1.0, ResourceKind::Shared { contention_factor: 1.5 });
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn zero_lanes_rejected() {
        Resource::new("bad", 1.0, ResourceKind::Fifo { lanes: 0 });
    }
}
