//! Golden performance baselines and the perf-gate comparison engine.
//!
//! A [`FigureBaseline`] pins one figure's simulated performance: exact
//! integer metrics (cycle counts, byte totals, transaction counts), derived
//! floating-point ratios (coalescing efficiency, occupancy, roofline
//! attainment) compared within a relative tolerance band, and opaque text
//! metrics (output digests) compared exactly. Baselines serialize to a
//! stable hand-emitted JSON file per figure (`baselines/<figure>.json`);
//! parsing uses a minimal std-only JSON reader so a corrupt file is a typed
//! [`BaselineError`], never a panic.
//!
//! The comparison rule is deliberately asymmetric in strictness:
//!
//! * **Exact** metrics gate bit-for-bit — the simulation is deterministic,
//!   so any drift in a cycle or byte total is a real model change.
//! * **Float** metrics gate within `tolerance` *relative* error — they are
//!   stored as decimal text, so the band absorbs formatting round-trips
//!   while still catching real ratio regressions.
//! * **Text** metrics gate exactly — they are digests.
//!
//! [`FigureBaseline::compare`] returns every violation as a [`MetricDiff`]
//! naming the figure, the metric, the baseline value and the observed
//! value, so a gate failure reads as an actionable report rather than a
//! boolean.

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// Relative tolerance applied to [`Metric::Float`] comparisons by default:
/// wide enough to absorb decimal round-trips of values printed with 12
/// significant digits, narrow enough that any real ratio change trips.
pub const FLOAT_TOLERANCE: f64 = 1e-6;

/// One pinned metric value.
#[derive(Clone, Debug, PartialEq)]
pub enum Metric {
    /// Bit-exact integer quantity (cycles, bytes, transactions, launches).
    Exact(u64),
    /// Derived ratio compared within a relative tolerance band.
    Float(f64),
    /// Opaque text compared exactly (digests, config echoes).
    Text(String),
}

impl fmt::Display for Metric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Metric::Exact(v) => write!(f, "{v}"),
            Metric::Float(v) => write!(f, "{v:.9}"),
            Metric::Text(v) => write!(f, "{v}"),
        }
    }
}

/// One figure's golden baseline: a named bag of metrics plus the run
/// context (scale, quick, ...) it was recorded under. Context keys gate
/// exactly like text metrics — checking a baseline recorded at another
/// scale is a configuration error the gate must name, not silently accept.
#[derive(Clone, Debug, PartialEq)]
pub struct FigureBaseline {
    pub figure: String,
    pub context: BTreeMap<String, String>,
    pub metrics: BTreeMap<String, Metric>,
}

/// One gate violation: the figure, the metric, and both values.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricDiff {
    pub figure: String,
    pub metric: String,
    pub baseline: String,
    pub observed: String,
}

impl fmt::Display for MetricDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}: baseline {}, observed {}",
            self.figure, self.metric, self.baseline, self.observed
        )
    }
}

/// Typed failure loading or storing a baseline file. `Missing` is split
/// from `Io` so callers can tell "never recorded" from "unreadable".
#[derive(Debug)]
pub enum BaselineError {
    /// The baseline file does not exist.
    Missing { path: PathBuf },
    /// The file exists but could not be read/written.
    Io { path: PathBuf, source: std::io::Error },
    /// The file was read but is not a valid baseline document.
    Parse { path: PathBuf, detail: String },
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::Missing { path } => {
                write!(f, "baseline file {} does not exist (run --write-baseline)", path.display())
            }
            BaselineError::Io { path, source } => {
                write!(f, "baseline file {}: {source}", path.display())
            }
            BaselineError::Parse { path, detail } => {
                write!(f, "baseline file {} is corrupt: {detail}", path.display())
            }
        }
    }
}

impl std::error::Error for BaselineError {}

impl FigureBaseline {
    pub fn new(figure: impl Into<String>) -> Self {
        FigureBaseline { figure: figure.into(), context: BTreeMap::new(), metrics: BTreeMap::new() }
    }

    /// Record a context key (e.g. `scale` → `16`).
    pub fn context(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.context.insert(key.into(), value.into());
    }

    /// Record one metric.
    pub fn metric(&mut self, name: impl Into<String>, value: Metric) {
        self.metrics.insert(name.into(), value);
    }

    /// File name this baseline stores under inside a baseline directory.
    pub fn file_name(&self) -> String {
        format!("{}.json", self.figure)
    }

    /// Compare `observed` against this baseline. Returns every violation;
    /// an empty vector means the gate passes. Exact/Text metrics and
    /// context keys compare bit-for-bit; Float metrics pass within
    /// `tolerance` relative error. Metrics present on only one side are
    /// violations too — a silently vanished counter is a regression in the
    /// harness itself.
    pub fn compare(&self, observed: &FigureBaseline, tolerance: f64) -> Vec<MetricDiff> {
        let mut diffs = Vec::new();
        let diff = |metric: &str, base: String, obs: String| MetricDiff {
            figure: self.figure.clone(),
            metric: metric.to_string(),
            baseline: base,
            observed: obs,
        };
        if self.figure != observed.figure {
            diffs.push(diff("figure", self.figure.clone(), observed.figure.clone()));
        }
        for (key, base) in &self.context {
            match observed.context.get(key) {
                Some(obs) if obs == base => {}
                Some(obs) => diffs.push(diff(&format!("context:{key}"), base.clone(), obs.clone())),
                None => {
                    diffs.push(diff(&format!("context:{key}"), base.clone(), "<absent>".into()))
                }
            }
        }
        for (key, obs) in &observed.context {
            if !self.context.contains_key(key) {
                diffs.push(diff(&format!("context:{key}"), "<absent>".into(), obs.clone()));
            }
        }
        for (name, base) in &self.metrics {
            let Some(obs) = observed.metrics.get(name) else {
                diffs.push(diff(name, base.to_string(), "<absent>".into()));
                continue;
            };
            let equal = match (base, obs) {
                (Metric::Exact(b), Metric::Exact(o)) => b == o,
                (Metric::Float(b), Metric::Float(o)) => {
                    let scale = b.abs().max(o.abs()).max(f64::MIN_POSITIVE);
                    (b - o).abs() <= tolerance * scale
                }
                (Metric::Text(b), Metric::Text(o)) => b == o,
                // A metric that changed representation is a violation.
                _ => false,
            };
            if !equal {
                diffs.push(diff(name, base.to_string(), obs.to_string()));
            }
        }
        for (name, obs) in &observed.metrics {
            if !self.metrics.contains_key(name) {
                diffs.push(diff(name, "<absent>".into(), obs.to_string()));
            }
        }
        diffs
    }

    /// Stable JSON rendering: keys sorted (BTreeMap order), floats printed
    /// with enough digits to round-trip within [`FLOAT_TOLERANCE`].
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"figure\": {},\n", json_string(&self.figure)));
        out.push_str("  \"context\": {");
        for (i, (k, v)) in self.context.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: {}", json_string(k), json_string(v)));
        }
        if !self.context.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n");
        out.push_str("  \"metrics\": {");
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let body = match v {
                Metric::Exact(n) => format!("{{ \"kind\": \"exact\", \"value\": {n} }}"),
                Metric::Float(x) => format!("{{ \"kind\": \"float\", \"value\": {x:.12e} }}"),
                Metric::Text(s) => {
                    format!("{{ \"kind\": \"text\", \"value\": {} }}", json_string(s))
                }
            };
            out.push_str(&format!("\n    {}: {body}", json_string(k)));
        }
        if !self.metrics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }

    /// Parse a baseline document; `Err` carries a human-readable detail.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let value = JsonParser::new(text).parse_document()?;
        let obj = value.as_object().ok_or("top level must be an object")?;
        let figure = obj
            .get("figure")
            .and_then(Json::as_str)
            .ok_or("missing string field \"figure\"")?
            .to_string();
        let mut baseline = FigureBaseline::new(figure);
        if let Some(ctx) = obj.get("context") {
            let ctx = ctx.as_object().ok_or("\"context\" must be an object")?;
            for (k, v) in ctx {
                let v = v.as_str().ok_or("context values must be strings")?;
                baseline.context.insert(k.clone(), v.to_string());
            }
        }
        let metrics = obj
            .get("metrics")
            .and_then(Json::as_object)
            .ok_or("missing object field \"metrics\"")?;
        for (name, entry) in metrics {
            let entry = entry.as_object().ok_or("metric entries must be objects")?;
            let kind = entry.get("kind").and_then(Json::as_str).ok_or("metric without \"kind\"")?;
            let value = entry.get("value").ok_or("metric without \"value\"")?;
            let metric = match kind {
                "exact" => Metric::Exact(
                    value.as_u64().ok_or("exact metric value must be a non-negative integer")?,
                ),
                "float" => {
                    Metric::Float(value.as_f64().ok_or("float metric value must be a number")?)
                }
                "text" => {
                    Metric::Text(value.as_str().ok_or("text metric value must be a string")?.into())
                }
                other => return Err(format!("unknown metric kind {other:?}")),
            };
            baseline.metrics.insert(name.clone(), metric);
        }
        Ok(baseline)
    }

    /// Load `<dir>/<figure>.json`; typed errors for missing/corrupt files.
    pub fn load(dir: &Path, figure: &str) -> Result<Self, BaselineError> {
        let path = dir.join(format!("{figure}.json"));
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(BaselineError::Missing { path })
            }
            Err(e) => return Err(BaselineError::Io { path, source: e }),
        };
        let parsed = Self::from_json(&text)
            .map_err(|detail| BaselineError::Parse { path: path.clone(), detail })?;
        if parsed.figure != figure {
            return Err(BaselineError::Parse {
                path,
                detail: format!("file is for figure {:?}, expected {figure:?}", parsed.figure),
            });
        }
        Ok(parsed)
    }

    /// Write `<dir>/<figure>.json`, creating `dir` as needed.
    pub fn store(&self, dir: &Path) -> Result<PathBuf, BaselineError> {
        let path = dir.join(self.file_name());
        std::fs::create_dir_all(dir)
            .and_then(|()| std::fs::write(&path, self.to_json()))
            .map_err(|source| BaselineError::Io { path: path.clone(), source })?;
        Ok(path)
    }
}

/// FNV-1a 64-bit digest, hex-rendered: the checked-in fingerprint of whole
/// table renderings (covers every sweep point without a metric per cell).
pub fn fnv64_hex(data: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in data.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Minimal JSON value for the baseline document subset. Baseline files
/// only ever contain objects, strings, and numbers; booleans, nulls, and
/// arrays still *parse* (so corrupt-file diagnostics stay precise) but
/// carry no payload — a baseline field of such a kind is simply invalid.
#[derive(Clone, Debug)]
enum Json {
    Object(BTreeMap<String, Json>),
    String(String),
    Number(f64),
    Bool,
    Null,
    Array,
}

impl Json {
    fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Object(m) => Some(m),
            _ => None,
        }
    }
    fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }
    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }
    fn as_u64(&self) -> Option<u64> {
        match self {
            // Exact metrics are written as plain integers; f64 represents
            // them exactly up to 2^53, far above any simulated total here.
            Json::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }
}

/// Hand-rolled recursive-descent parser for the JSON subset the baseline
/// files use (objects, arrays, strings, numbers, booleans, null). Std-only
/// by design: the workspace vendors no serde.
struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn new(text: &'a str) -> Self {
        JsonParser { bytes: text.as_bytes(), pos: 0 }
    }

    fn parse_document(mut self) -> Result<Json, String> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(format!("trailing data at byte {}", self.pos));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes.get(self.pos).copied().ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        let got = self.peek()?;
        if got != b {
            return Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char, self.pos, got as char
            ));
        }
        self.pos += 1;
        Ok(())
    }

    fn parse_value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'{' => self.parse_object(),
            b'[' => self.parse_array(),
            b'"' => Ok(Json::String(self.parse_string()?)),
            b't' => self.parse_keyword("true", Json::Bool),
            b'f' => self.parse_keyword("false", Json::Bool),
            b'n' => self.parse_keyword("null", Json::Null),
            b'-' | b'0'..=b'9' => self.parse_number(),
            other => Err(format!("unexpected character {:?} at byte {}", other as char, self.pos)),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn parse_object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos, other as char
                    ))
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Array);
        }
        loop {
            self.parse_value()?;
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Array);
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos, other as char
                    ))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self.bytes.get(self.pos).ok_or_else(|| "unterminated string".to_string())?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "invalid \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("invalid \\u escape {hex:?}"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("invalid codepoint \\u{hex}"))?,
                            );
                        }
                        other => return Err(format!("invalid escape \\{}", other as char)),
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: the input is a &str, so the sequence
                    // is valid; copy it through byte-accurately.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && self.bytes[end] & 0xC0 == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid number".to_string())?;
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FigureBaseline {
        let mut b = FigureBaseline::new("fig99");
        b.context("scale", "16");
        b.context("quick", "true");
        b.metric("cycles[gpu 4M]", Metric::Exact(8_123_456));
        b.metric("coalescing[gpu 4M]", Metric::Float(0.998_877_665_5));
        b.metric("csv_fnv64", Metric::Text("deadbeef01234567".into()));
        b
    }

    #[test]
    fn json_round_trips_exactly() {
        let b = sample();
        let parsed = FigureBaseline::from_json(&b.to_json()).unwrap();
        assert_eq!(parsed.figure, b.figure);
        assert_eq!(parsed.context, b.context);
        assert_eq!(parsed.metrics.len(), b.metrics.len());
        assert_eq!(parsed.metrics["cycles[gpu 4M]"], Metric::Exact(8_123_456));
        assert_eq!(parsed.metrics["csv_fnv64"], Metric::Text("deadbeef01234567".into()));
        match parsed.metrics["coalescing[gpu 4M]"] {
            Metric::Float(v) => assert!((v - 0.998_877_665_5).abs() < 1e-12),
            ref other => panic!("wrong kind: {other:?}"),
        }
        // And a re-emit is byte-identical (stable key order, stable floats).
        assert_eq!(parsed.to_json(), b.to_json());
    }

    #[test]
    fn identical_baselines_produce_no_diffs() {
        assert!(sample().compare(&sample(), FLOAT_TOLERANCE).is_empty());
    }

    #[test]
    fn exact_drift_names_figure_and_metric() {
        let base = sample();
        let mut obs = sample();
        obs.metric("cycles[gpu 4M]", Metric::Exact(8_123_457));
        let diffs = base.compare(&obs, FLOAT_TOLERANCE);
        assert_eq!(diffs.len(), 1);
        assert_eq!(diffs[0].figure, "fig99");
        assert_eq!(diffs[0].metric, "cycles[gpu 4M]");
        assert_eq!(diffs[0].baseline, "8123456");
        assert_eq!(diffs[0].observed, "8123457");
        let line = diffs[0].to_string();
        assert!(line.contains("fig99") && line.contains("cycles[gpu 4M]"), "{line}");
    }

    #[test]
    fn float_band_absorbs_rounding_but_not_regressions() {
        let base = sample();
        let mut rounded = sample();
        rounded.metric("coalescing[gpu 4M]", Metric::Float(0.998_877_665_5 * (1.0 + 1e-9)));
        assert!(base.compare(&rounded, FLOAT_TOLERANCE).is_empty());
        let mut regressed = sample();
        regressed.metric("coalescing[gpu 4M]", Metric::Float(0.90));
        let diffs = base.compare(&regressed, FLOAT_TOLERANCE);
        assert_eq!(diffs.len(), 1);
        assert_eq!(diffs[0].metric, "coalescing[gpu 4M]");
    }

    #[test]
    fn missing_and_extra_metrics_are_violations() {
        let base = sample();
        let mut obs = sample();
        obs.metrics.remove("csv_fnv64");
        obs.metric("new_counter", Metric::Exact(1));
        let diffs = base.compare(&obs, FLOAT_TOLERANCE);
        assert_eq!(diffs.len(), 2);
        assert!(diffs.iter().any(|d| d.metric == "csv_fnv64" && d.observed == "<absent>"));
        assert!(diffs.iter().any(|d| d.metric == "new_counter" && d.baseline == "<absent>"));
    }

    #[test]
    fn context_mismatch_is_a_violation() {
        let base = sample();
        let mut obs = sample();
        obs.context("scale", "32");
        let diffs = base.compare(&obs, FLOAT_TOLERANCE);
        assert_eq!(diffs.len(), 1);
        assert_eq!(diffs[0].metric, "context:scale");
        assert_eq!(diffs[0].baseline, "16");
        assert_eq!(diffs[0].observed, "32");
    }

    #[test]
    fn kind_change_is_a_violation() {
        let base = sample();
        let mut obs = sample();
        obs.metric("cycles[gpu 4M]", Metric::Float(8_123_456.0));
        assert_eq!(base.compare(&obs, FLOAT_TOLERANCE).len(), 1);
    }

    #[test]
    fn load_missing_file_is_typed_not_a_panic() {
        let dir = std::env::temp_dir().join("hcj-baseline-missing");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        match FigureBaseline::load(&dir, "fig99") {
            Err(BaselineError::Missing { path }) => {
                assert!(path.ends_with("fig99.json"));
            }
            other => panic!("expected Missing, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_corrupt_file_is_typed_not_a_panic() {
        let dir = std::env::temp_dir().join("hcj-baseline-corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        for bad in ["{ not json", "[1,2,3]", "{\"figure\": 5, \"metrics\": {}}", ""] {
            std::fs::write(dir.join("fig99.json"), bad).unwrap();
            match FigureBaseline::load(&dir, "fig99") {
                Err(BaselineError::Parse { detail, .. }) => {
                    assert!(!detail.is_empty(), "input {bad:?}");
                }
                other => panic!("input {bad:?}: expected Parse, got {other:?}"),
            }
        }
        // A valid file for the wrong figure is also a parse error.
        std::fs::write(dir.join("fig99.json"), FigureBaseline::new("fig01").to_json()).unwrap();
        assert!(matches!(FigureBaseline::load(&dir, "fig99"), Err(BaselineError::Parse { .. })));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_then_load_round_trips() {
        let dir = std::env::temp_dir().join("hcj-baseline-roundtrip");
        let _ = std::fs::remove_dir_all(&dir);
        let b = sample();
        let path = b.store(&dir).unwrap();
        assert!(path.exists());
        let loaded = FigureBaseline::load(&dir, "fig99").unwrap();
        assert!(b.compare(&loaded, FLOAT_TOLERANCE).is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fnv_digest_is_stable_and_sensitive() {
        let a = fnv64_hex("size,ours\n1M,4.5\n");
        assert_eq!(a, fnv64_hex("size,ours\n1M,4.5\n"));
        assert_ne!(a, fnv64_hex("size,ours\n1M,4.6\n"));
        assert_eq!(a.len(), 16);
    }

    #[test]
    fn escaped_strings_round_trip() {
        let mut b = FigureBaseline::new("fig\"odd\"");
        b.metric("line\nbreak", Metric::Text("tab\there \\ done".into()));
        let parsed = FigureBaseline::from_json(&b.to_json()).unwrap();
        assert_eq!(parsed.figure, "fig\"odd\"");
        assert_eq!(parsed.metrics["line\nbreak"], Metric::Text("tab\there \\ done".into()));
    }
}
