//! Schedule validation: checks a solved [`Schedule`] against the hard
//! invariants the solver is supposed to uphold.
//!
//! The engine is the single source of truth for every simulated number the
//! workspace reports, so a silent scheduling bug (an over-admitted FIFO, a
//! shared bus handing out more bandwidth than it has) would corrupt every
//! figure downstream without failing a single join-correctness check. The
//! [`ScheduleValidator`] re-derives the constraints from the schedule's
//! recorded metadata and rejects any timeline that violates them:
//!
//! 1. **Span bounds** — every span has `start <= end` and ends at or before
//!    the makespan.
//! 2. **Dependency ordering** — no op starts before all of its dependencies
//!    have finished.
//! 3. **FIFO lane limits** — at every instant, a FIFO resource runs at most
//!    `lanes` overlapping spans.
//! 4. **Fixed-op timing** — a FIFO span lasts exactly `work / rate +
//!    pre_latency`; a latency-only span lasts exactly its latency.
//! 5. **Shared capacity conservation** — at every instant, the rates a
//!    shared resource hands out sum to at most `rate * contention_factor`
//!    (the factor applying only while ops of >= 2 classes coexist), and no
//!    op exceeds its declared cap.
//! 6. **Shared work conservation** — integrating each shared op's recorded
//!    rate segments over time recovers exactly its submitted work.
//! 7. **Busy-time sanity** — no resource is busy for longer than the
//!    makespan.
//!
//! [`crate::Sim::run`] applies the validator automatically in debug builds
//! (opt in/out anywhere with the `HCJ_VALIDATE` environment variable), so
//! the entire test suite doubles as a continuous audit of the solver.

use std::fmt;

use crate::resource::ResourceKind;
use crate::schedule::Schedule;
use crate::time::SimTime;

/// The invariant classes a schedule can violate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Invariant {
    /// Span start/end outside `[0, makespan]` or inverted.
    SpanBounds,
    /// An op started before a dependency finished.
    DepOrdering,
    /// A FIFO resource ran more concurrent spans than it has lanes.
    FifoLanes,
    /// A fixed-duration span's length disagrees with `work / rate`.
    FixedTiming,
    /// A shared resource's handed-out rates exceeded its capacity.
    SharedCapacity,
    /// A shared op ran above its declared rate cap.
    SharedRateCap,
    /// A shared op's integrated rate does not equal its work.
    WorkConservation,
    /// A resource's busy time exceeds the makespan.
    BusyTime,
}

/// One detected violation, with a human-readable diagnosis.
#[derive(Clone, Debug)]
pub struct Violation {
    pub invariant: Invariant,
    pub message: String,
}

/// All violations found in one validation pass.
#[derive(Clone, Debug)]
pub struct ValidationError {
    pub violations: Vec<Violation>,
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} schedule invariant violation(s):", self.violations.len())?;
        for v in &self.violations {
            writeln!(f, "  [{:?}] {}", v.invariant, v.message)?;
        }
        Ok(())
    }
}

impl std::error::Error for ValidationError {}

/// Relative tolerance on rate sums and work integrals. Rates are exact
/// f64s but interval lengths are rounded to the 1 ns clock, so integrals
/// drift by up to one rate-times-nanosecond per segment.
const REL_EPS: f64 = 1e-6;

/// Validates [`Schedule`]s; see the module docs for the invariant list.
#[derive(Clone, Copy, Debug, Default)]
pub struct ScheduleValidator;

impl ScheduleValidator {
    pub fn new() -> Self {
        ScheduleValidator
    }

    /// Check every invariant, returning all violations (not just the first).
    pub fn validate(&self, schedule: &Schedule) -> Result<(), ValidationError> {
        let mut violations = Vec::new();
        self.check_span_bounds(schedule, &mut violations);
        self.check_dep_ordering(schedule, &mut violations);
        self.check_fifo_lanes(schedule, &mut violations);
        self.check_fixed_timing(schedule, &mut violations);
        self.check_shared_capacity(schedule, &mut violations);
        self.check_work_conservation(schedule, &mut violations);
        self.check_busy_time(schedule, &mut violations);
        if violations.is_empty() {
            Ok(())
        } else {
            Err(ValidationError { violations })
        }
    }

    fn check_span_bounds(&self, s: &Schedule, out: &mut Vec<Violation>) {
        let makespan = s.makespan();
        for sp in s.spans() {
            if sp.end < sp.start {
                out.push(Violation {
                    invariant: Invariant::SpanBounds,
                    message: format!(
                        "op {:?} ({}) ends at {} before it starts at {}",
                        sp.op, sp.label, sp.end, sp.start
                    ),
                });
            }
            if sp.end > makespan {
                out.push(Violation {
                    invariant: Invariant::SpanBounds,
                    message: format!(
                        "op {:?} ({}) ends at {} past the makespan {}",
                        sp.op, sp.label, sp.end, makespan
                    ),
                });
            }
        }
    }

    fn check_dep_ordering(&self, s: &Schedule, out: &mut Vec<Violation>) {
        let spans = s.spans();
        for sp in spans {
            for d in &sp.deps {
                let Some(dep) = spans.get(d.index()) else {
                    out.push(Violation {
                        invariant: Invariant::DepOrdering,
                        message: format!("op {:?} depends on unknown op {d:?}", sp.op),
                    });
                    continue;
                };
                if sp.start < dep.end {
                    out.push(Violation {
                        invariant: Invariant::DepOrdering,
                        message: format!(
                            "op {:?} ({}) starts at {} before its dependency {:?} ({}) \
                             finishes at {}",
                            sp.op, sp.label, sp.start, dep.op, dep.label, dep.end
                        ),
                    });
                }
            }
        }
    }

    fn check_fifo_lanes(&self, s: &Schedule, out: &mut Vec<Violation>) {
        for (idx, meta) in s.resources().iter().enumerate() {
            let ResourceKind::Fifo { lanes } = meta.kind else { continue };
            // Sweep span starts (+1) / ends (-1); spans are half-open, so
            // ends sort before starts at the same instant and zero-length
            // spans never occupy a lane.
            let mut events: Vec<(SimTime, i64)> = Vec::new();
            for sp in s.spans() {
                if sp.resource.map(|r| r.index()) == Some(idx) && sp.end > sp.start {
                    events.push((sp.start, 1));
                    events.push((sp.end, -1));
                }
            }
            events.sort_unstable_by_key(|&(t, delta)| (t, delta));
            let mut occupied = 0i64;
            for (t, delta) in events {
                occupied += delta;
                if occupied > i64::from(lanes) {
                    out.push(Violation {
                        invariant: Invariant::FifoLanes,
                        message: format!(
                            "resource {} runs {} concurrent spans at {} but has {} lane(s)",
                            meta.name, occupied, t, lanes
                        ),
                    });
                    break; // one report per resource is enough
                }
            }
        }
    }

    fn check_fixed_timing(&self, s: &Schedule, out: &mut Vec<Violation>) {
        // The solver computes FIFO durations as `from_secs_f64(work/rate) +
        // latency`; recomputing the same expression must agree to the clock
        // tick (1 ns of slack absorbs the double rounding).
        let tick = SimTime::from_nanos(1);
        for sp in s.spans() {
            if sp.end < sp.start {
                continue; // already reported by the bounds check
            }
            let expected = match sp.resource {
                None => sp.pre_latency,
                Some(r) => {
                    let meta = &s.resources()[r.index()];
                    match meta.kind {
                        ResourceKind::Shared { .. } => continue, // rate varies
                        ResourceKind::Fifo { .. } => {
                            SimTime::from_secs_f64(sp.work / meta.rate) + sp.pre_latency
                        }
                    }
                }
            };
            let got = sp.duration();
            let diff = if got > expected { got - expected } else { expected - got };
            if diff > tick {
                out.push(Violation {
                    invariant: Invariant::FixedTiming,
                    message: format!(
                        "op {:?} ({}) ran for {} but its work implies {}",
                        sp.op, sp.label, got, expected
                    ),
                });
            }
        }
    }

    fn check_shared_capacity(&self, s: &Schedule, out: &mut Vec<Violation>) {
        for (idx, meta) in s.resources().iter().enumerate() {
            let ResourceKind::Shared { contention_factor } = meta.kind else { continue };
            let segs: Vec<_> = s
                .rate_segments()
                .iter()
                .filter(|g| g.resource.index() == idx && g.end > g.start)
                .collect();
            if segs.is_empty() {
                continue;
            }
            // Per-op cap check.
            for g in &segs {
                let Some(sp) = s.spans().get(g.op.index()) else { continue };
                if let Some(cap) = sp.cap {
                    if g.rate > cap * (1.0 + REL_EPS) {
                        out.push(Violation {
                            invariant: Invariant::SharedRateCap,
                            message: format!(
                                "op {:?} ({}) ran at {:.3e}/s over its cap {:.3e}/s on {}",
                                g.op, sp.label, g.rate, cap, meta.name
                            ),
                        });
                    }
                }
            }
            // Conservation: sum the rates over every elementary interval
            // between segment boundaries.
            let mut bounds: Vec<SimTime> = segs.iter().flat_map(|g| [g.start, g.end]).collect();
            bounds.sort_unstable();
            bounds.dedup();
            for w in bounds.windows(2) {
                let (lo, hi) = (w[0], w[1]);
                let covering: Vec<_> =
                    segs.iter().filter(|g| g.start <= lo && g.end >= hi).collect();
                if covering.is_empty() {
                    continue;
                }
                let total: f64 = covering.iter().map(|g| g.rate).sum();
                let mut classes: Vec<u32> = covering
                    .iter()
                    .filter_map(|g| s.spans().get(g.op.index()).map(|sp| sp.class))
                    .collect();
                classes.sort_unstable();
                classes.dedup();
                let factor = if classes.len() >= 2 { contention_factor } else { 1.0 };
                let budget = meta.rate * factor;
                if total > budget * (1.0 + REL_EPS) {
                    out.push(Violation {
                        invariant: Invariant::SharedCapacity,
                        message: format!(
                            "resource {} hands out {:.6e}/s in [{lo} .. {hi}] but has \
                             {:.6e}/s ({} class(es) present)",
                            meta.name,
                            total,
                            budget,
                            classes.len()
                        ),
                    });
                    break; // one report per resource is enough
                }
            }
        }
    }

    fn check_work_conservation(&self, s: &Schedule, out: &mut Vec<Violation>) {
        for sp in s.spans() {
            let Some(r) = sp.resource else { continue };
            let Some(meta) = s.resources().get(r.index()) else { continue };
            if !matches!(meta.kind, ResourceKind::Shared { .. }) {
                continue;
            }
            let mut done = 0.0f64;
            for g in s.rate_segments() {
                if g.op == sp.op {
                    done += g.rate * (g.end - g.start).as_secs_f64();
                }
            }
            // Completion fires once remaining work dips under the solver's
            // epsilon (~2 ns at the resource's rate), so allow that much
            // slack on top of the relative tolerance. The resource rate (not
            // the observed segment rate) bounds the slack: a tiny op can
            // finish inside one clock tick with *no* recorded segment.
            let tol = sp.work * REL_EPS + meta.rate * 8e-9 + 1e-9;
            if (done - sp.work).abs() > tol {
                out.push(Violation {
                    invariant: Invariant::WorkConservation,
                    message: format!(
                        "op {:?} ({}) integrated {:.6e} work units over its rate \
                         segments but was submitted with {:.6e}",
                        sp.op, sp.label, done, sp.work
                    ),
                });
            }
        }
    }

    fn check_busy_time(&self, s: &Schedule, out: &mut Vec<Violation>) {
        for (idx, meta) in s.resources().iter().enumerate() {
            let busy = s.busy_time(crate::resource::ResourceId(idx as u32));
            if busy > s.makespan() {
                out.push(Violation {
                    invariant: Invariant::BusyTime,
                    message: format!(
                        "resource {} is busy for {} but the makespan is only {}",
                        meta.name,
                        busy,
                        s.makespan()
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::OpId;
    use crate::resource::ResourceId;
    use crate::schedule::{RateSegment, ResourceMeta, Span};
    use crate::{Op, Sim};

    fn secs(x: f64) -> SimTime {
        SimTime::from_secs_f64(x)
    }

    /// A hand-built span on `resource` with sane defaults.
    fn span(op: u32, resource: Option<u32>, start: f64, end: f64, work: f64) -> Span {
        Span {
            op: OpId(op),
            resource: resource.map(ResourceId),
            label: format!("op{op}"),
            class: 0,
            start: secs(start),
            end: secs(end),
            work,
            pre_latency: SimTime::ZERO,
            cap: None,
            deps: Vec::new(),
        }
    }

    fn fifo_meta(name: &str, rate: f64, lanes: u32) -> ResourceMeta {
        ResourceMeta { name: name.into(), rate, kind: ResourceKind::Fifo { lanes } }
    }

    fn shared_meta(name: &str, rate: f64, factor: f64) -> ResourceMeta {
        ResourceMeta {
            name: name.into(),
            rate,
            kind: ResourceKind::Shared { contention_factor: factor },
        }
    }

    fn violations_of(s: &Schedule) -> Vec<Invariant> {
        match ScheduleValidator::new().validate(s) {
            Ok(()) => Vec::new(),
            Err(e) => e.violations.iter().map(|v| v.invariant).collect(),
        }
    }

    #[test]
    fn valid_solver_output_passes() {
        let mut sim = Sim::new();
        let link = sim.fifo_resource("link", 2.0, 1);
        let bus = sim.shared_resource("bus", 10.0, 0.8);
        let a = sim.op(Op::new(link, 4.0).label("copy"));
        sim.op(Op::new(bus, 10.0).class(1).after(a));
        sim.op(Op::new(bus, 5.0).class(2).rate_cap(4.0));
        let s = sim.run(); // run() itself validates in debug builds
        assert!(s.validate().is_ok());
        assert!(!s.rate_segments().is_empty());
    }

    #[test]
    fn overcommitted_fifo_lanes_fail() {
        // Two overlapping spans on a 1-lane FIFO.
        let meta = vec![fifo_meta("link", 1.0, 1)];
        let spans = vec![span(0, Some(0), 0.0, 1.0, 1.0), span(1, Some(0), 0.5, 1.5, 1.0)];
        let s = Schedule::new(spans, meta, Vec::new());
        let v = violations_of(&s);
        assert!(v.contains(&Invariant::FifoLanes), "got {v:?}");
    }

    #[test]
    fn back_to_back_fifo_spans_pass() {
        // Touching half-open spans are legal on one lane.
        let meta = vec![fifo_meta("link", 1.0, 1)];
        let spans = vec![span(0, Some(0), 0.0, 1.0, 1.0), span(1, Some(0), 1.0, 2.0, 1.0)];
        let s = Schedule::new(spans, meta, Vec::new());
        assert_eq!(violations_of(&s), Vec::new());
    }

    #[test]
    fn rate_overcommitment_fails_conservation() {
        // Two ops on a 10/s bus each recorded at 8/s: 16/s handed out.
        let meta = vec![shared_meta("bus", 10.0, 1.0)];
        let spans = vec![span(0, Some(0), 0.0, 1.0, 8.0), span(1, Some(0), 0.0, 1.0, 8.0)];
        let segs = vec![
            RateSegment {
                resource: ResourceId(0),
                op: OpId(0),
                start: secs(0.0),
                end: secs(1.0),
                rate: 8.0,
            },
            RateSegment {
                resource: ResourceId(0),
                op: OpId(1),
                start: secs(0.0),
                end: secs(1.0),
                rate: 8.0,
            },
        ];
        let s = Schedule::new(spans, meta, segs);
        let v = violations_of(&s);
        assert!(v.contains(&Invariant::SharedCapacity), "got {v:?}");
    }

    #[test]
    fn contention_factor_tightens_the_budget() {
        // 6/s + 3/s fits a 10/s bus — but not when two classes shrink the
        // budget to 10 * 0.5 = 5/s.
        let meta = vec![shared_meta("bus", 10.0, 0.5)];
        let mut s0 = span(0, Some(0), 0.0, 1.0, 6.0);
        let mut s1 = span(1, Some(0), 0.0, 1.0, 3.0);
        s0.class = 1;
        s1.class = 2;
        let segs = vec![
            RateSegment {
                resource: ResourceId(0),
                op: OpId(0),
                start: secs(0.0),
                end: secs(1.0),
                rate: 6.0,
            },
            RateSegment {
                resource: ResourceId(0),
                op: OpId(1),
                start: secs(0.0),
                end: secs(1.0),
                rate: 3.0,
            },
        ];
        let s = Schedule::new(vec![s0, s1], meta, segs);
        let v = violations_of(&s);
        assert!(v.contains(&Invariant::SharedCapacity), "got {v:?}");
    }

    #[test]
    fn dep_ordering_violation_fails() {
        let meta = vec![fifo_meta("link", 1.0, 2)];
        let mut dependent = span(1, Some(0), 0.5, 1.5, 1.0);
        dependent.deps = vec![OpId(0)]; // dep finishes at 1.0 > start 0.5
        let spans = vec![span(0, Some(0), 0.0, 1.0, 1.0), dependent];
        let s = Schedule::new(spans, meta, Vec::new());
        let v = violations_of(&s);
        assert!(v.contains(&Invariant::DepOrdering), "got {v:?}");
    }

    #[test]
    fn inverted_span_fails_bounds() {
        let meta = vec![fifo_meta("link", 1.0, 1)];
        let mut sp = span(0, Some(0), 2.0, 1.0, 0.0);
        sp.work = 0.0;
        let s = Schedule::new(vec![sp], meta, Vec::new());
        let v = violations_of(&s);
        assert!(v.contains(&Invariant::SpanBounds), "got {v:?}");
    }

    #[test]
    fn wrong_fifo_duration_fails_timing() {
        // 4 units at 2/s must take 2 s, not 3.
        let meta = vec![fifo_meta("link", 2.0, 1)];
        let s = Schedule::new(vec![span(0, Some(0), 0.0, 3.0, 4.0)], meta, Vec::new());
        let v = violations_of(&s);
        assert!(v.contains(&Invariant::FixedTiming), "got {v:?}");
    }

    #[test]
    fn cap_overrun_fails() {
        let meta = vec![shared_meta("bus", 10.0, 1.0)];
        let mut sp = span(0, Some(0), 0.0, 1.0, 6.0);
        sp.cap = Some(3.0);
        let segs = vec![RateSegment {
            resource: ResourceId(0),
            op: OpId(0),
            start: secs(0.0),
            end: secs(1.0),
            rate: 6.0,
        }];
        let s = Schedule::new(vec![sp], meta, segs);
        let v = violations_of(&s);
        assert!(v.contains(&Invariant::SharedRateCap), "got {v:?}");
    }

    #[test]
    fn missing_work_fails_conservation() {
        // Op claims 10 units of work but its segments only integrate 5.
        let meta = vec![shared_meta("bus", 10.0, 1.0)];
        let sp = span(0, Some(0), 0.0, 1.0, 10.0);
        let segs = vec![RateSegment {
            resource: ResourceId(0),
            op: OpId(0),
            start: secs(0.0),
            end: secs(1.0),
            rate: 5.0,
        }];
        let s = Schedule::new(vec![sp], meta, segs);
        let v = violations_of(&s);
        assert!(v.contains(&Invariant::WorkConservation), "got {v:?}");
    }

    #[test]
    fn every_violation_is_reported_not_just_the_first() {
        // Inverted span AND an over-long FIFO op: both must surface.
        let meta = vec![fifo_meta("link", 1.0, 1)];
        let spans = vec![span(0, Some(0), 2.0, 1.0, 0.0), span(1, Some(0), 3.0, 9.0, 1.0)];
        let s = Schedule::new(spans, meta, Vec::new());
        let err = ScheduleValidator::new().validate(&s).unwrap_err();
        assert!(err.violations.len() >= 2, "{err}");
        let text = err.to_string();
        assert!(text.contains("SpanBounds") && text.contains("FixedTiming"), "{text}");
    }

    #[test]
    fn shared_pipeline_with_churn_passes() {
        // Joins and departures at many instants: segments must still tile
        // and conserve work.
        let mut sim = Sim::new();
        let bus = sim.shared_resource("bus", 64.0, 0.7);
        let gate = sim.fifo_resource("gate", 1.0, 1);
        let mut prev = None;
        for i in 0..6 {
            let mut g = Op::new(gate, 0.3).label(format!("gate{i}"));
            if let Some(p) = prev {
                g = g.after(p);
            }
            let g = sim.op(g);
            sim.op(Op::new(bus, 40.0).class(i % 3).rate_cap(30.0 + i as f64).after(g));
            prev = Some(g);
        }
        let s = sim.run();
        assert!(s.validate().is_ok(), "{:?}", s.validate().err());
    }
}
