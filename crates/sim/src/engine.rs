//! The schedule solver: an event-driven executor over the op DAG.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use crate::op::{Op, OpId};
use crate::resource::{Resource, ResourceId, ResourceKind};
use crate::schedule::{RateSegment, ResourceMeta, Schedule, Span};
use crate::time::SimTime;
use crate::validate::ScheduleValidator;

/// The simulation: a set of resources plus a DAG of operations.
///
/// Usage is two-phase: register resources, submit operations (possibly
/// interleaved with the functional execution of the algorithm being
/// modeled), then call [`Sim::run`] to obtain the [`Schedule`].
#[derive(Default)]
pub struct Sim {
    resources: Vec<Resource>,
    ops: Vec<Op>,
}

impl Sim {
    pub fn new() -> Self {
        Sim::default()
    }

    /// Register a FIFO resource with `lanes` parallel servers of `rate`
    /// work-units/second each.
    pub fn fifo_resource(&mut self, name: impl Into<String>, rate: f64, lanes: u32) -> ResourceId {
        self.add(Resource::new(name, rate, ResourceKind::Fifo { lanes }))
    }

    /// Register a processor-sharing resource (see
    /// [`ResourceKind::Shared`]); `contention_factor = 1.0` disables the
    /// cross-class penalty.
    pub fn shared_resource(
        &mut self,
        name: impl Into<String>,
        rate: f64,
        contention_factor: f64,
    ) -> ResourceId {
        self.add(Resource::new(name, rate, ResourceKind::Shared { contention_factor }))
    }

    fn add(&mut self, r: Resource) -> ResourceId {
        let id = ResourceId(u32::try_from(self.resources.len()).expect("too many resources"));
        self.resources.push(r);
        id
    }

    /// Submit an operation; returns its id for use in dependencies.
    pub fn op(&mut self, op: Op) -> OpId {
        if let Some(r) = op.resource {
            assert!(r.index() < self.resources.len(), "op references unknown resource");
        }
        for d in &op.deps {
            assert!(d.index() < self.ops.len(), "op depends on not-yet-submitted op {d:?}");
        }
        let id = OpId(u32::try_from(self.ops.len()).expect("too many ops"));
        self.ops.push(op);
        id
    }

    /// Number of submitted operations.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Solve the schedule. Panics if the DAG cannot complete (which, given
    /// the acyclicity enforced at submission time, cannot happen unless the
    /// engine itself is buggy).
    ///
    /// In debug builds (and whenever `HCJ_VALIDATE` is set to anything but
    /// `0`/`off`/`false`) the solved schedule is checked against the hard
    /// invariants of [`ScheduleValidator`] before being returned, so every
    /// test run doubles as a self-check of the solver.
    pub fn run(self) -> Schedule {
        let schedule = Solver::new(&self.resources, &self.ops).run();
        if validation_enabled() {
            if let Err(e) = ScheduleValidator::new().validate(&schedule) {
                panic!("solver produced an invalid schedule:\n{e}");
            }
        }
        schedule
    }
}

fn validation_enabled() -> bool {
    match std::env::var("HCJ_VALIDATE") {
        Ok(v) => !(v == "0" || v.eq_ignore_ascii_case("off") || v.eq_ignore_ascii_case("false")),
        Err(_) => cfg!(debug_assertions),
    }
}

// ---------------------------------------------------------------------------
// Solver internals
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum EventKind {
    /// A FIFO or latency op completes.
    FixedFinish { op: u32 },
    /// A shared-resource op may complete (stale if generation mismatches).
    SharedFinish { op: u32, generation: u32 },
    /// A shared op's pre-latency elapsed; it now joins the sharing set.
    SharedJoin { op: u32 },
}

#[derive(PartialEq, Eq)]
struct Event {
    time: SimTime,
    seq: u64,
    kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Clone, Copy, PartialEq, Debug)]
enum OpState {
    Waiting,
    Queued,
    Running,
    Done,
}

struct SharedRes {
    /// Ops currently progressing (having passed any pre-latency).
    members: Vec<u32>,
    /// Remaining work per member (parallel to `members`).
    remaining: Vec<f64>,
    /// Current allocated rate per member (parallel to `members`).
    rates: Vec<f64>,
    last_update: SimTime,
    generation: u32,
}

struct FifoRes {
    queue: VecDeque<u32>,
    busy_lanes: u32,
}

struct Solver<'a> {
    resources: &'a [Resource],
    ops: &'a [Op],
    state: Vec<OpState>,
    pending_deps: Vec<u32>,
    children: Vec<Vec<u32>>,
    start: Vec<SimTime>,
    finish: Vec<SimTime>,
    fifo: Vec<FifoRes>,
    shared: Vec<SharedRes>,
    segments: Vec<RateSegment>,
    heap: BinaryHeap<Reverse<Event>>,
    seq: u64,
    now: SimTime,
    done_count: usize,
}

/// Remaining work below this many seconds-at-current-rate is treated as
/// zero. This must be at least the clock resolution (1 ns): a completion
/// whose residual time rounds to zero nanoseconds would otherwise fire an
/// event at the *same* timestamp without progressing, rescheduling forever.
const EPS_SECONDS: f64 = 2e-9;

impl<'a> Solver<'a> {
    fn new(resources: &'a [Resource], ops: &'a [Op]) -> Self {
        let n = ops.len();
        let mut children = vec![Vec::new(); n];
        let mut pending = vec![0u32; n];
        for (i, op) in ops.iter().enumerate() {
            // Dedup deps so an op listed twice doesn't double-count.
            let mut deps = op.deps.clone();
            deps.sort_unstable();
            deps.dedup();
            pending[i] = deps.len() as u32;
            for d in deps {
                children[d.index()].push(i as u32);
            }
        }
        let fifo =
            resources.iter().map(|_| FifoRes { queue: VecDeque::new(), busy_lanes: 0 }).collect();
        let shared = resources
            .iter()
            .map(|_| SharedRes {
                members: Vec::new(),
                remaining: Vec::new(),
                rates: Vec::new(),
                last_update: SimTime::ZERO,
                generation: 0,
            })
            .collect();
        Solver {
            resources,
            ops,
            state: vec![OpState::Waiting; n],
            pending_deps: pending,
            children,
            start: vec![SimTime::ZERO; n],
            finish: vec![SimTime::ZERO; n],
            fifo,
            shared,
            segments: Vec::new(),
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            done_count: 0,
        }
    }

    fn push_event(&mut self, time: SimTime, kind: EventKind) {
        self.seq += 1;
        self.heap.push(Reverse(Event { time, seq: self.seq, kind }));
    }

    fn run(mut self) -> Schedule {
        // Seed: all ops with no dependencies become ready at t = 0.
        let roots: Vec<u32> =
            (0..self.ops.len() as u32).filter(|&i| self.pending_deps[i as usize] == 0).collect();
        for i in roots {
            self.make_ready(i);
        }
        while let Some(Reverse(ev)) = self.heap.pop() {
            debug_assert!(ev.time >= self.now, "time went backwards");
            self.now = ev.time;
            match ev.kind {
                EventKind::FixedFinish { op } => self.complete(op),
                EventKind::SharedJoin { op } => self.shared_join(op),
                EventKind::SharedFinish { op, generation } => {
                    let res = self.ops[op as usize].resource.unwrap().index();
                    if self.shared[res].generation != generation {
                        continue; // stale: membership changed since scheduling
                    }
                    // Settle progress, then complete every member that hit zero.
                    self.shared_settle(res);
                    self.shared_complete_finished(res);
                }
            }
        }
        assert_eq!(
            self.done_count,
            self.ops.len(),
            "simulation stalled: {} of {} ops incomplete (dependency cycle?)",
            self.ops.len() - self.done_count,
            self.ops.len()
        );
        let spans = self
            .ops
            .iter()
            .enumerate()
            .map(|(i, op)| {
                let mut deps = op.deps.clone();
                deps.sort_unstable();
                deps.dedup();
                Span {
                    op: OpId(i as u32),
                    resource: op.resource,
                    label: op.label.clone(),
                    class: op.class,
                    start: self.start[i],
                    end: self.finish[i],
                    work: op.work,
                    pre_latency: op.latency,
                    cap: op.cap,
                    deps,
                }
            })
            .collect();
        let resources = self
            .resources
            .iter()
            .map(|r| ResourceMeta { name: r.name.clone(), rate: r.rate, kind: r.kind })
            .collect();
        Schedule::new(spans, resources, self.segments)
    }

    /// An op's dependencies are all satisfied: route it to its resource.
    fn make_ready(&mut self, op: u32) {
        debug_assert_eq!(self.state[op as usize], OpState::Waiting);
        self.state[op as usize] = OpState::Queued;
        let o = &self.ops[op as usize];
        match o.resource {
            None => {
                // Latency-only op.
                self.state[op as usize] = OpState::Running;
                self.start[op as usize] = self.now;
                self.push_event(self.now + o.latency, EventKind::FixedFinish { op });
            }
            Some(r) => match self.resources[r.index()].kind {
                ResourceKind::Fifo { .. } => {
                    self.fifo[r.index()].queue.push_back(op);
                    self.fifo_admit(r.index());
                }
                ResourceKind::Shared { .. } => {
                    self.state[op as usize] = OpState::Running;
                    self.start[op as usize] = self.now;
                    if o.latency > SimTime::ZERO {
                        self.push_event(self.now + o.latency, EventKind::SharedJoin { op });
                    } else {
                        self.shared_join(op);
                    }
                }
            },
        }
    }

    fn fifo_admit(&mut self, res: usize) {
        let ResourceKind::Fifo { lanes } = self.resources[res].kind else { unreachable!() };
        while self.fifo[res].busy_lanes < lanes {
            let Some(op) = self.fifo[res].queue.pop_front() else { break };
            self.fifo[res].busy_lanes += 1;
            self.state[op as usize] = OpState::Running;
            self.start[op as usize] = self.now;
            let o = &self.ops[op as usize];
            let dur = SimTime::from_secs_f64(o.work / self.resources[res].rate) + o.latency;
            self.push_event(self.now + dur, EventKind::FixedFinish { op });
        }
    }

    /// Advance a shared resource's members to `self.now`, recording the
    /// constant-rate interval each member just completed on the timeline.
    fn shared_settle(&mut self, res: usize) {
        let s = &mut self.shared[res];
        let dt = (self.now - s.last_update).as_secs_f64();
        if dt > 0.0 && !s.members.is_empty() {
            for ((rem, &rate), &m) in s.remaining.iter_mut().zip(&s.rates).zip(&s.members) {
                *rem = (*rem - rate * dt).max(0.0);
                if rate > 0.0 {
                    self.segments.push(RateSegment {
                        resource: ResourceId(res as u32),
                        op: OpId(m),
                        start: s.last_update,
                        end: self.now,
                        rate,
                    });
                }
            }
        }
        s.last_update = self.now;
    }

    /// Recompute rates after membership change and (re)schedule the next
    /// completion event. Capacity is divided by weighted max-min fairness
    /// (water-filling): each op's weight is its rate cap (its standalone
    /// demand) or 1.0 when uncapped, and no op receives more than its cap.
    /// Below saturation everyone runs at demand; above, all are squeezed
    /// proportionally.
    fn shared_rebalance(&mut self, res: usize) {
        let n = self.shared[res].members.len();
        self.shared[res].generation += 1;
        if n == 0 {
            return;
        }
        let ResourceKind::Shared { contention_factor } = self.resources[res].kind else {
            unreachable!()
        };
        // The contention penalty applies while ops of >= 2 classes coexist.
        let mut classes: Vec<u32> =
            self.shared[res].members.iter().map(|&m| self.ops[m as usize].class).collect();
        classes.sort_unstable();
        classes.dedup();
        let factor = if classes.len() >= 2 { contention_factor } else { 1.0 };
        let total = self.resources[res].rate * factor;

        // Weighted water-filling.
        let caps: Vec<f64> = self.shared[res]
            .members
            .iter()
            .map(|&m| self.ops[m as usize].cap.unwrap_or(f64::INFINITY))
            .collect();
        let weights: Vec<f64> = caps.iter().map(|&c| if c.is_finite() { c } else { 1.0 }).collect();
        let mut rates = vec![0.0f64; n];
        let mut active: Vec<usize> = (0..n).collect();
        let mut remaining_rate = total;
        loop {
            // Guaranteed by `Op::rate_cap` rejecting non-positive and
            // non-finite caps, but a zero divisor here would silently yield
            // NaN rates and hang the event loop, so check in release too.
            let weight_sum: f64 = active.iter().map(|&i| weights[i]).sum();
            assert!(
                weight_sum > 0.0,
                "shared resource {}: water-filling weight sum must be positive",
                self.resources[res].name
            );
            let mut saturated = Vec::new();
            for &i in &active {
                let share = remaining_rate * weights[i] / weight_sum;
                if share >= caps[i] {
                    saturated.push(i);
                }
            }
            if saturated.is_empty() {
                for &i in &active {
                    rates[i] = remaining_rate * weights[i] / weight_sum;
                }
                break;
            }
            for &i in &saturated {
                rates[i] = caps[i];
                remaining_rate -= caps[i];
            }
            active.retain(|i| !saturated.contains(i));
            if active.is_empty() {
                break;
            }
        }
        self.shared[res].rates = rates;

        // Next completion: the member finishing soonest at its rate.
        let next_time = self.shared[res]
            .remaining
            .iter()
            .zip(&self.shared[res].rates)
            .map(|(&rem, &rate)| rem / rate)
            .fold(f64::INFINITY, f64::min);
        let dt = if next_time < EPS_SECONDS { 0.0 } else { next_time };
        let generation = self.shared[res].generation;
        // Any member whose op id we pass works: the handler completes all
        // members that reached zero at that instant.
        let op = self.shared[res].members[0];
        self.push_event(
            self.now + SimTime::from_secs_f64(dt),
            EventKind::SharedFinish { op, generation },
        );
    }

    fn shared_join(&mut self, op: u32) {
        let res = self.ops[op as usize].resource.unwrap().index();
        self.shared_settle(res);
        let work = self.ops[op as usize].work;
        self.shared[res].members.push(op);
        self.shared[res].remaining.push(work);
        self.shared[res].rates.push(0.0);
        self.shared_rebalance(res);
    }

    fn shared_complete_finished(&mut self, res: usize) {
        let mut finished = Vec::new();
        {
            let s = &mut self.shared[res];
            let mut i = 0;
            while i < s.members.len() {
                if s.remaining[i] <= s.rates[i] * EPS_SECONDS {
                    finished.push(s.members[i]);
                    s.members.swap_remove(i);
                    s.remaining.swap_remove(i);
                    s.rates.swap_remove(i);
                } else {
                    i += 1;
                }
            }
        }
        // Deterministic completion order within the same instant.
        finished.sort_unstable();
        self.shared_rebalance(res);
        for op in finished {
            self.complete(op);
        }
    }

    fn complete(&mut self, op: u32) {
        debug_assert_eq!(self.state[op as usize], OpState::Running, "op {op} not running");
        self.state[op as usize] = OpState::Done;
        self.finish[op as usize] = self.now;
        self.done_count += 1;
        // Free a FIFO lane if applicable.
        if let Some(r) = self.ops[op as usize].resource {
            if matches!(self.resources[r.index()].kind, ResourceKind::Fifo { .. }) {
                self.fifo[r.index()].busy_lanes -= 1;
                self.fifo_admit(r.index());
            }
        }
        // Wake children.
        let kids = std::mem::take(&mut self.children[op as usize]);
        for child in kids {
            let p = &mut self.pending_deps[child as usize];
            *p -= 1;
            if *p == 0 {
                self.make_ready(child);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Op;

    fn secs(s: &Schedule, op: OpId) -> f64 {
        s.finish(op).as_secs_f64()
    }

    #[test]
    fn single_op_duration() {
        let mut sim = Sim::new();
        let link = sim.fifo_resource("link", 10.0, 1);
        let a = sim.op(Op::new(link, 50.0).label("a"));
        let s = sim.run();
        assert_eq!(s.finish(a), SimTime::from_secs_f64(5.0));
        assert_eq!(s.start(a), SimTime::ZERO);
    }

    #[test]
    fn fifo_serializes_in_order() {
        let mut sim = Sim::new();
        let link = sim.fifo_resource("link", 1.0, 1);
        let a = sim.op(Op::new(link, 2.0));
        let b = sim.op(Op::new(link, 3.0));
        let s = sim.run();
        assert_eq!(secs(&s, a), 2.0);
        assert_eq!(s.start(b).as_secs_f64(), 2.0);
        assert_eq!(secs(&s, b), 5.0);
    }

    #[test]
    fn fifo_multiple_lanes_run_concurrently() {
        let mut sim = Sim::new();
        let link = sim.fifo_resource("link", 1.0, 2);
        let a = sim.op(Op::new(link, 2.0));
        let b = sim.op(Op::new(link, 2.0));
        let c = sim.op(Op::new(link, 2.0));
        let s = sim.run();
        assert_eq!(secs(&s, a), 2.0);
        assert_eq!(secs(&s, b), 2.0);
        assert_eq!(secs(&s, c), 4.0); // waits for a lane
    }

    #[test]
    fn dependencies_serialize_across_resources() {
        let mut sim = Sim::new();
        let r1 = sim.fifo_resource("r1", 1.0, 1);
        let r2 = sim.fifo_resource("r2", 1.0, 1);
        let a = sim.op(Op::new(r1, 1.0));
        let b = sim.op(Op::new(r2, 1.0).after(a));
        let s = sim.run();
        assert_eq!(s.start(b), s.finish(a));
        assert_eq!(secs(&s, b), 2.0);
    }

    #[test]
    fn latency_ops_take_fixed_time() {
        let mut sim = Sim::new();
        let a = sim.op(Op::latency(SimTime::from_nanos(500)));
        let b = sim.op(Op::latency(SimTime::from_nanos(300)).after(a));
        let s = sim.run();
        assert_eq!(s.finish(b).as_nanos(), 800);
    }

    #[test]
    fn shared_resource_splits_bandwidth_evenly() {
        let mut sim = Sim::new();
        let bus = sim.shared_resource("bus", 10.0, 1.0);
        let a = sim.op(Op::new(bus, 10.0));
        let b = sim.op(Op::new(bus, 10.0));
        let s = sim.run();
        // Two equal ops sharing rate 10 → each at 5 → 2 s.
        assert!((secs(&s, a) - 2.0).abs() < 1e-9);
        assert!((secs(&s, b) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn shared_resource_speeds_up_after_departure() {
        let mut sim = Sim::new();
        let bus = sim.shared_resource("bus", 10.0, 1.0);
        let a = sim.op(Op::new(bus, 10.0)); // alone it would take 1 s
        let b = sim.op(Op::new(bus, 30.0)); // alone it would take 3 s
        let s = sim.run();
        // Shared at 5/s until a finishes at t=2 (a's 10 units), leaving b
        // with 30-10=20 units at full 10/s → b finishes at 2 + 2 = 4 s.
        assert!((secs(&s, a) - 2.0).abs() < 1e-9, "a={}", secs(&s, a));
        assert!((secs(&s, b) - 4.0).abs() < 1e-9, "b={}", secs(&s, b));
    }

    #[test]
    fn shared_late_arrival_slows_existing_op() {
        let mut sim = Sim::new();
        let bus = sim.shared_resource("bus", 10.0, 1.0);
        let gate = sim.fifo_resource("gate", 1.0, 1);
        let a = sim.op(Op::new(bus, 20.0)); // alone: 2 s
        let g = sim.op(Op::new(gate, 1.0)); // finishes at t=1
        let b = sim.op(Op::new(bus, 10.0).after(g)); // joins at t=1
        let s = sim.run();
        // t in [0,1): a alone at 10/s, does 10 units (10 left).
        // t >= 1: share at 5/s each. b needs 2 s → t=3; a needs 2 s → t=3.
        assert!((secs(&s, a) - 3.0).abs() < 1e-9, "a={}", secs(&s, a));
        assert!((secs(&s, b) - 3.0).abs() < 1e-9, "b={}", secs(&s, b));
    }

    #[test]
    fn contention_factor_penalizes_mixed_classes() {
        // Same-class pair: no penalty.
        let mut sim = Sim::new();
        let bus = sim.shared_resource("bus", 10.0, 0.5);
        let a = sim.op(Op::new(bus, 10.0).class(1));
        let b = sim.op(Op::new(bus, 10.0).class(1));
        let s = sim.run();
        assert!((secs(&s, a) - 2.0).abs() < 1e-9);
        drop(s);

        // Mixed classes: total rate halves → each op at 2.5/s → 4 s.
        let mut sim = Sim::new();
        let bus = sim.shared_resource("bus", 10.0, 0.5);
        let a = sim.op(Op::new(bus, 10.0).class(1));
        let b2 = sim.op(Op::new(bus, 10.0).class(2));
        let s = sim.run();
        assert!((secs(&s, a) - 4.0).abs() < 1e-9, "a={}", secs(&s, a));
        assert!((secs(&s, b2) - 4.0).abs() < 1e-9);
        let _ = b;
    }

    #[test]
    fn capped_ops_below_saturation_run_at_demand() {
        let mut sim = Sim::new();
        let bus = sim.shared_resource("bus", 55.0, 1.0);
        // Demands 12 + 30 = 42 < 55: both run at their caps.
        let dma = sim.op(Op::new(bus, 12.0).rate_cap(12.0));
        let cpu = sim.op(Op::new(bus, 60.0).rate_cap(30.0));
        let s = sim.run();
        assert!((secs(&s, dma) - 1.0).abs() < 1e-9, "dma={}", secs(&s, dma));
        assert!((secs(&s, cpu) - 2.0).abs() < 1e-9, "cpu={}", secs(&s, cpu));
    }

    #[test]
    fn capped_ops_above_saturation_squeeze_proportionally() {
        let mut sim = Sim::new();
        let bus = sim.shared_resource("bus", 55.0, 1.0);
        // Demands 12 + 65 = 77 > 55: each gets demand/77*55.
        let dma = sim.op(Op::new(bus, 12.0).rate_cap(12.0));
        let cpu = sim.op(Op::new(bus, 65.0).rate_cap(65.0));
        let s = sim.run();
        // Both finish together at 77/55 seconds (work/rate identical).
        let want = 77.0 / 55.0;
        assert!((secs(&s, dma) - want).abs() < 1e-6, "dma={}", secs(&s, dma));
        assert!((secs(&s, cpu) - want).abs() < 1e-6);
    }

    #[test]
    fn water_filling_redistributes_capped_slack() {
        let mut sim = Sim::new();
        let bus = sim.shared_resource("bus", 100.0, 1.0);
        // A 10-capped op and an uncapped op: uncapped gets the remaining 90.
        let small = sim.op(Op::new(bus, 10.0).rate_cap(10.0));
        let big = sim.op(Op::new(bus, 90.0));
        let s = sim.run();
        assert!((secs(&s, small) - 1.0).abs() < 1e-6);
        assert!((secs(&s, big) - 1.0).abs() < 1e-6, "big={}", secs(&s, big));
    }

    #[test]
    fn pre_latency_delays_fifo_work() {
        let mut sim = Sim::new();
        let r = sim.fifo_resource("r", 1.0, 1);
        let a = sim.op(Op::new(r, 1.0).pre_latency(SimTime::from_secs_f64(0.5)));
        let s = sim.run();
        assert!((secs(&s, a) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn pre_latency_delays_shared_join() {
        let mut sim = Sim::new();
        let bus = sim.shared_resource("bus", 10.0, 1.0);
        let a = sim.op(Op::new(bus, 10.0)); // starts immediately
        let b = sim.op(Op::new(bus, 10.0).pre_latency(SimTime::from_secs_f64(1.0)));
        let s = sim.run();
        // a runs alone for 1 s (10 units done)... a actually finishes at
        // exactly t=1 as b joins; b then runs alone 1 s after its latency.
        assert!((secs(&s, a) - 1.0).abs() < 1e-6, "a={}", secs(&s, a));
        assert!((secs(&s, b) - 2.0).abs() < 1e-6, "b={}", secs(&s, b));
    }

    #[test]
    fn diamond_dag_joins_on_slowest_parent() {
        let mut sim = Sim::new();
        let r = sim.fifo_resource("r", 1.0, 4);
        let root = sim.op(Op::new(r, 1.0));
        let fast = sim.op(Op::new(r, 1.0).after(root));
        let slow = sim.op(Op::new(r, 5.0).after(root));
        let join = sim.op(Op::new(r, 1.0).after(fast).after(slow));
        let s = sim.run();
        assert_eq!(s.start(join), s.finish(slow));
        assert!((secs(&s, join) - 7.0).abs() < 1e-9);
    }

    #[test]
    fn zero_work_completes_instantly() {
        let mut sim = Sim::new();
        let r = sim.fifo_resource("r", 1.0, 1);
        let bus = sim.shared_resource("bus", 1.0, 1.0);
        let a = sim.op(Op::new(r, 0.0));
        let b = sim.op(Op::new(bus, 0.0));
        let s = sim.run();
        assert_eq!(s.finish(a), SimTime::ZERO);
        assert_eq!(s.finish(b), SimTime::ZERO);
    }

    #[test]
    fn duplicate_deps_counted_once() {
        let mut sim = Sim::new();
        let r = sim.fifo_resource("r", 1.0, 1);
        let a = sim.op(Op::new(r, 1.0));
        let b = sim.op(Op::new(r, 1.0).after(a).after(a));
        let s = sim.run();
        assert!((secs(&s, b) - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "unknown resource")]
    fn unknown_resource_rejected() {
        let mut sim = Sim::new();
        sim.op(Op::new(ResourceId(7), 1.0));
    }

    #[test]
    #[should_panic(expected = "not-yet-submitted")]
    fn forward_dependency_rejected() {
        let mut sim = Sim::new();
        let r = sim.fifo_resource("r", 1.0, 1);
        sim.op(Op::new(r, 1.0).after(OpId(5)));
    }

    #[test]
    fn large_pipeline_is_transfer_bound() {
        // The canonical double-buffer pipeline from the paper's Fig. 2:
        // N chunks, copy at 1 chunk/s, process at 4 chunks/s. Total should
        // be N * copy + one final process.
        let n = 16;
        let mut sim = Sim::new();
        let pcie = sim.fifo_resource("pcie", 1.0, 1);
        let gpu = sim.fifo_resource("gpu", 4.0, 1);
        let mut copies = Vec::new();
        let mut joins = Vec::new();
        for i in 0..n {
            let mut c = Op::new(pcie, 1.0).label(format!("copy{i}"));
            if i > 0 {
                c = c.after(copies[i - 1]);
            }
            // Double buffering: copy i must wait for join i-2 (buffer reuse).
            if i >= 2 {
                c = c.after(joins[i - 2]);
            }
            let c = sim.op(c);
            let mut j = Op::new(gpu, 1.0).label(format!("join{i}")).after(c);
            if i > 0 {
                j = j.after(joins[i - 1]);
            }
            copies.push(c);
            joins.push(sim.op(j));
        }
        let s = sim.run();
        let total = s.makespan().as_secs_f64();
        assert!((total - (n as f64 + 0.25)).abs() < 1e-9, "total={total}");
    }
}
