//! Operation descriptions: units of work bound to a resource.

use crate::resource::ResourceId;
use crate::time::SimTime;

/// Identifies an operation submitted to [`crate::Sim`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct OpId(pub(crate) u32);

impl OpId {
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }
}

/// A unit of work to schedule.
///
/// Build one with [`Op::new`] (resource-bound work) or [`Op::latency`]
/// (a fixed-duration step that occupies no resource, e.g. a kernel-launch
/// overhead or an event-synchronization stub), then submit it with
/// [`crate::Sim::op`].
#[derive(Clone, Debug)]
pub struct Op {
    pub(crate) resource: Option<ResourceId>,
    /// Work in the resource's units (bytes for links, seconds for rate-1.0
    /// resources). For latency ops this is unused.
    pub(crate) work: f64,
    /// Fixed duration for latency ops; extra pre-latency for resource ops.
    pub(crate) latency: SimTime,
    pub(crate) deps: Vec<OpId>,
    pub(crate) label: String,
    /// Traffic class, used by `Shared` resources' contention factor and by
    /// timeline analysis to group spans into phases.
    pub(crate) class: u32,
    /// On a `Shared` resource: the most work/second this op can consume
    /// (its standalone demand). `None` = unlimited.
    pub(crate) cap: Option<f64>,
}

impl Op {
    /// Work of size `work` (resource units) on `resource`.
    pub fn new(resource: ResourceId, work: f64) -> Self {
        assert!(work >= 0.0 && work.is_finite(), "op work must be finite and >= 0");
        Op {
            resource: Some(resource),
            work,
            latency: SimTime::ZERO,
            deps: Vec::new(),
            label: String::new(),
            class: 0,
            cap: None,
        }
    }

    /// A pure-latency step of fixed `duration` (no resource contention).
    pub fn latency(duration: SimTime) -> Self {
        Op {
            resource: None,
            work: 0.0,
            latency: duration,
            deps: Vec::new(),
            label: String::new(),
            class: 0,
            cap: None,
        }
    }

    /// Add a dependency: this op starts only after `dep` finishes.
    pub fn after(mut self, dep: OpId) -> Self {
        self.deps.push(dep);
        self
    }

    /// Add several dependencies at once.
    pub fn after_all(mut self, deps: impl IntoIterator<Item = OpId>) -> Self {
        self.deps.extend(deps);
        self
    }

    /// Human-readable label recorded on the timeline span.
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Traffic class (see [`crate::ResourceKind::Shared`]).
    pub fn class(mut self, class: u32) -> Self {
        self.class = class;
        self
    }

    /// Fixed latency added *before* the resource work begins (e.g. a kernel
    /// launch overhead preceding the kernel's execution).
    pub fn pre_latency(mut self, latency: SimTime) -> Self {
        self.latency = latency;
        self
    }

    /// On a `Shared` resource, cap this op's consumption at `cap`
    /// work-units/second — its standalone demand. Shared capacity is then
    /// divided *demand-proportionally* (weighted max-min/water-filling):
    /// below saturation every op runs at its own cap; above, everyone is
    /// squeezed in proportion. Ignored on FIFO resources.
    pub fn rate_cap(mut self, cap: f64) -> Self {
        assert!(cap > 0.0 && cap.is_finite(), "rate cap must be positive");
        self.cap = Some(cap);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates() {
        let r = ResourceId(0);
        let op = Op::new(r, 100.0)
            .label("copy")
            .class(2)
            .after(OpId(0))
            .after_all([OpId(1), OpId(2)])
            .pre_latency(SimTime::from_nanos(5));
        assert_eq!(op.deps, vec![OpId(0), OpId(1), OpId(2)]);
        assert_eq!(op.label, "copy");
        assert_eq!(op.class, 2);
        assert_eq!(op.latency.as_nanos(), 5);
        assert_eq!(op.work, 100.0);
    }

    #[test]
    fn latency_op_has_no_resource() {
        let op = Op::latency(SimTime::from_nanos(42));
        assert!(op.resource.is_none());
        assert_eq!(op.latency.as_nanos(), 42);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn negative_work_rejected() {
        let _ = Op::new(ResourceId(0), -1.0);
    }

    #[test]
    #[should_panic(expected = "rate cap must be positive")]
    fn zero_rate_cap_rejected() {
        let _ = Op::new(ResourceId(0), 1.0).rate_cap(0.0);
    }

    #[test]
    #[should_panic(expected = "rate cap must be positive")]
    fn negative_rate_cap_rejected() {
        let _ = Op::new(ResourceId(0), 1.0).rate_cap(-4.0);
    }

    #[test]
    #[should_panic(expected = "rate cap must be positive")]
    fn nan_rate_cap_rejected() {
        let _ = Op::new(ResourceId(0), 1.0).rate_cap(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "rate cap must be positive")]
    fn infinite_rate_cap_rejected() {
        let _ = Op::new(ResourceId(0), 1.0).rate_cap(f64::INFINITY);
    }
}
