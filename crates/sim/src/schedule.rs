//! The solved timeline: spans, makespan, busy-time and overlap analysis.

use crate::op::OpId;
use crate::resource::{ResourceId, ResourceKind};
use crate::time::SimTime;

/// One operation's occupancy on the timeline.
#[derive(Clone, Debug)]
pub struct Span {
    pub op: OpId,
    /// `None` for pure-latency ops.
    pub resource: Option<ResourceId>,
    pub label: String,
    pub class: u32,
    pub start: SimTime,
    pub end: SimTime,
    /// The op's work in resource units (0 for latency-only ops).
    pub work: f64,
    /// Pre-latency for resource ops; the whole duration for latency ops.
    pub pre_latency: SimTime,
    /// Rate cap the op declared on a `Shared` resource.
    pub cap: Option<f64>,
    /// Dependencies the op was submitted with (deduplicated).
    pub deps: Vec<OpId>,
}

impl Span {
    pub fn duration(&self) -> SimTime {
        self.end - self.start
    }
}

/// Description of a resource as registered with [`crate::Sim`], retained on
/// the schedule so validators and exporters can interpret the spans.
#[derive(Clone, Debug)]
pub struct ResourceMeta {
    pub name: String,
    /// Work units per second.
    pub rate: f64,
    pub kind: ResourceKind,
}

/// A constant-rate interval of one op's progress on a `Shared` resource.
///
/// The solver emits one segment per member every time allocations change
/// (a member joins or departs), so the segments of an op tile the interval
/// from its join (start + pre-latency) to its finish, and
/// `sum(rate * duration)` recovers the op's work.
#[derive(Clone, Copy, Debug)]
pub struct RateSegment {
    pub resource: ResourceId,
    pub op: OpId,
    pub start: SimTime,
    pub end: SimTime,
    /// Work units per second allocated to `op` during the interval.
    pub rate: f64,
}

/// The solved schedule produced by [`crate::Sim::run`].
#[derive(Clone, Debug)]
pub struct Schedule {
    spans: Vec<Span>,
    resources: Vec<ResourceMeta>,
    rate_segments: Vec<RateSegment>,
    makespan: SimTime,
}

impl Schedule {
    pub(crate) fn new(
        spans: Vec<Span>,
        resources: Vec<ResourceMeta>,
        rate_segments: Vec<RateSegment>,
    ) -> Self {
        let makespan = spans.iter().map(|s| s.end).max().unwrap_or(SimTime::ZERO);
        Schedule { spans, resources, rate_segments, makespan }
    }

    /// Name the given resource was registered with.
    pub fn resource_name(&self, resource: ResourceId) -> &str {
        &self.resources[resource.index()].name
    }

    /// Metadata of every registered resource, in registration order.
    pub fn resources(&self) -> &[ResourceMeta] {
        &self.resources
    }

    /// Constant-rate allocation intervals on `Shared` resources (empty when
    /// no shared resource saw work).
    pub fn rate_segments(&self) -> &[RateSegment] {
        &self.rate_segments
    }

    /// Check this schedule against the engine's hard invariants; see
    /// [`crate::validate::ScheduleValidator`].
    pub fn validate(&self) -> Result<(), crate::validate::ValidationError> {
        crate::validate::ScheduleValidator::new().validate(self)
    }

    /// When `op` began executing (after deps and queueing).
    pub fn start(&self, op: OpId) -> SimTime {
        self.spans[op.index()].start
    }

    /// When `op` finished.
    pub fn finish(&self, op: OpId) -> SimTime {
        self.spans[op.index()].end
    }

    /// Completion time of the whole DAG.
    pub fn makespan(&self) -> SimTime {
        self.makespan
    }

    /// All spans, in op-submission order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Total time during which at least one span on `resource` was active
    /// (union of intervals, not the sum of durations).
    pub fn busy_time(&self, resource: ResourceId) -> SimTime {
        let mut intervals: Vec<(SimTime, SimTime)> = self
            .spans
            .iter()
            .filter(|s| s.resource == Some(resource) && s.end > s.start)
            .map(|s| (s.start, s.end))
            .collect();
        union_length(&mut intervals)
    }

    /// Utilization of `resource` over the makespan, in `[0, 1]`.
    pub fn utilization(&self, resource: ResourceId) -> f64 {
        if self.makespan == SimTime::ZERO {
            return 0.0;
        }
        self.busy_time(resource).as_secs_f64() / self.makespan.as_secs_f64()
    }

    /// Length of time during which spans matching `a` and spans matching
    /// `b` were simultaneously active. Used by tests to assert that
    /// pipelines genuinely overlap transfers with execution.
    pub fn overlap_time(&self, a: impl Fn(&Span) -> bool, b: impl Fn(&Span) -> bool) -> SimTime {
        let mut ia: Vec<(SimTime, SimTime)> = self
            .spans
            .iter()
            .filter(|s| a(s) && s.end > s.start)
            .map(|s| (s.start, s.end))
            .collect();
        let mut ib: Vec<(SimTime, SimTime)> = self
            .spans
            .iter()
            .filter(|s| b(s) && s.end > s.start)
            .map(|s| (s.start, s.end))
            .collect();
        let ua = union_intervals(&mut ia);
        let ub = union_intervals(&mut ib);
        intersection_length(&ua, &ub)
    }

    /// Sum of durations of spans whose label starts with `prefix`.
    pub fn total_time_labeled(&self, prefix: &str) -> SimTime {
        let ns: u64 = self
            .spans
            .iter()
            .filter(|s| s.label.starts_with(prefix))
            .map(|s| s.duration().as_nanos())
            .sum();
        SimTime::from_nanos(ns)
    }

    /// A compact textual gantt chart (one row per resource-bound span),
    /// useful when debugging pipeline structure. `width` is the number of
    /// character cells representing the makespan.
    pub fn render_gantt(&self, width: usize) -> String {
        let mut out = String::new();
        let total = self.makespan.as_secs_f64().max(1e-12);
        for s in &self.spans {
            if s.resource.is_none() && s.duration() == SimTime::ZERO {
                continue;
            }
            let a = ((s.start.as_secs_f64() / total) * width as f64) as usize;
            let b = ((s.end.as_secs_f64() / total) * width as f64).ceil() as usize;
            let b = b.clamp(a + 1, width.max(a + 1));
            out.push_str(&" ".repeat(a));
            out.push_str(&"#".repeat(b - a));
            out.push_str(&" ".repeat(width.saturating_sub(b)));
            let res = s.resource.map_or("-", |r| self.resource_name(r));
            out.push_str(&format!(" | {res}: {} [{} .. {}]\n", s.label, s.start, s.end));
        }
        out
    }
}

/// Sort + merge intervals, returning their union as disjoint intervals.
fn union_intervals(intervals: &mut [(SimTime, SimTime)]) -> Vec<(SimTime, SimTime)> {
    intervals.sort_unstable();
    let mut merged: Vec<(SimTime, SimTime)> = Vec::with_capacity(intervals.len());
    for &(s, e) in intervals.iter() {
        match merged.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => merged.push((s, e)),
        }
    }
    merged
}

fn union_length(intervals: &mut [(SimTime, SimTime)]) -> SimTime {
    let merged = union_intervals(intervals);
    let ns: u64 = merged.iter().map(|(s, e)| (*e - *s).as_nanos()).sum();
    SimTime::from_nanos(ns)
}

fn intersection_length(a: &[(SimTime, SimTime)], b: &[(SimTime, SimTime)]) -> SimTime {
    let (mut i, mut j) = (0, 0);
    let mut total = 0u64;
    while i < a.len() && j < b.len() {
        let s = a[i].0.max(b[j].0);
        let e = a[i].1.min(b[j].1);
        if e > s {
            total += (e - s).as_nanos();
        }
        if a[i].1 <= b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    SimTime::from_nanos(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Op, Sim};

    #[test]
    fn busy_time_unions_overlapping_spans() {
        let mut sim = Sim::new();
        let r = sim.fifo_resource("r", 1.0, 2);
        // Two overlapping 2 s spans on the same 2-lane resource.
        sim.op(Op::new(r, 2.0));
        sim.op(Op::new(r, 2.0));
        let s = sim.run();
        assert_eq!(s.busy_time(r).as_secs_f64(), 2.0); // union, not 4
        assert!((s.utilization(r) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn overlap_time_between_phases() {
        let mut sim = Sim::new();
        let copy = sim.fifo_resource("copy", 1.0, 1);
        let exec = sim.fifo_resource("exec", 1.0, 1);
        let c0 = sim.op(Op::new(copy, 2.0).label("copy0"));
        let _k0 = sim.op(Op::new(exec, 2.0).label("exec0").after(c0));
        let _c1 = sim.op(Op::new(copy, 2.0).label("copy1").after(c0));
        let s = sim.run();
        // exec0 runs [2,4) while copy1 runs [2,4): full 2 s overlap.
        let ov =
            s.overlap_time(|sp| sp.label.starts_with("exec"), |sp| sp.label.starts_with("copy"));
        assert_eq!(ov.as_secs_f64(), 2.0);
    }

    #[test]
    fn total_time_labeled_sums_durations() {
        let mut sim = Sim::new();
        let r = sim.fifo_resource("r", 1.0, 1);
        sim.op(Op::new(r, 1.0).label("x-a"));
        sim.op(Op::new(r, 2.0).label("x-b"));
        sim.op(Op::new(r, 4.0).label("y-a"));
        let s = sim.run();
        assert_eq!(s.total_time_labeled("x-").as_secs_f64(), 3.0);
        assert_eq!(s.total_time_labeled("y-").as_secs_f64(), 4.0);
    }

    #[test]
    fn gantt_renders_rows() {
        let mut sim = Sim::new();
        let r = sim.fifo_resource("r", 1.0, 1);
        sim.op(Op::new(r, 1.0).label("first"));
        sim.op(Op::new(r, 1.0).label("second"));
        let s = sim.run();
        let g = s.render_gantt(20);
        assert!(g.contains("first"));
        assert!(g.contains("second"));
        assert_eq!(g.lines().count(), 2);
    }

    #[test]
    fn empty_schedule_makespan_zero() {
        let sim = Sim::new();
        let s = sim.run();
        assert_eq!(s.makespan(), SimTime::ZERO);
    }

    #[test]
    fn interval_helpers() {
        let mut v = vec![
            (SimTime::from_nanos(0), SimTime::from_nanos(10)),
            (SimTime::from_nanos(5), SimTime::from_nanos(15)),
            (SimTime::from_nanos(20), SimTime::from_nanos(25)),
        ];
        assert_eq!(union_length(&mut v).as_nanos(), 20);
        let a = [(SimTime::from_nanos(0), SimTime::from_nanos(10))];
        let b = [(SimTime::from_nanos(5), SimTime::from_nanos(20))];
        assert_eq!(intersection_length(&a, &b).as_nanos(), 5);
    }
}
