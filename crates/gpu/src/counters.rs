//! Simulated hardware performance counters.
//!
//! The cost model ([`KernelCost`]) already counts every byte and every
//! transaction a kernel generates — that is how simulated time is charged.
//! This module stops discarding that breakdown: a [`CounterSet`] lives on
//! every [`crate::Gpu`] and accumulates, at the exact points where
//! [`crate::Gpu::kernel`]/[`crate::Gpu::copy_h2d`] charge time, the same
//! quantities `nvprof`/Nsight would report on real hardware:
//!
//! * device-memory transactions **issued** vs. the **coalesced minimum**
//!   (their ratio is the coalescing efficiency the paper's §III analysis
//!   is built on);
//! * bytes moved per interconnect direction (H2D, D2H, device memory);
//! * shared-memory bytes reserved per block and bank-conflict-equivalent
//!   charges (shared atomics serialize like conflicts in the cost model);
//! * warp-level operation counts ([`crate::WARP_SIZE`]-wide instruction
//!   bundles);
//! * achieved vs. roofline device-memory bandwidth per kernel;
//! * occupancy: blocks resident vs. SM capacity, from the launch shape.
//!
//! Counters are **deterministic by construction**: they are pure functions
//! of the work the strategies charge, recorded once per successfully
//! issued logical op in issue order (which is serial in every strategy —
//! host-side parallelism only splits the *functional* work). They are
//! therefore byte-identical across `--jobs` values, and identical with the
//! fault layer armed-but-disabled; under active chaos a completed run
//! still reports the same useful traffic because faulted partial attempts
//! and backoffs are never counted as kernel work.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

use hcj_sim::{Schedule, Timeline};

use hcj_sim::OpId;

use crate::cost::KernelCost;
use crate::spec::DeviceSpec;
use crate::SECTOR_BYTES;
use crate::WARP_SIZE;

/// Useful payload bytes assumed per random sector transaction when
/// computing the coalesced minimum: a hash-table entry or tuple touched by
/// a random probe is 4–8 bytes, of which the device still fetches a full
/// [`SECTOR_BYTES`] sector. 8 is the paper's tuple-column width and gives
/// the *most favorable* minimum, so reported efficiency is a lower bound.
pub const RANDOM_USEFUL_BYTES: u64 = 8;

/// Shared handle to a [`CounterSet`], cloned into everything that records
/// (mirrors [`crate::faults::FaultHandle`]).
pub type CounterHandle = Arc<Mutex<CounterSet>>;

/// The grid configuration of a kernel launch, for occupancy accounting.
///
/// Strategies that know their launch geometry pass it via
/// [`crate::Gpu::kernel_costed`]; launches made through the shape-less
/// entry points record [`LaunchShape::UNSHAPED`] and report no occupancy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LaunchShape {
    /// Thread blocks in the grid.
    pub blocks: u64,
    /// Threads per block.
    pub threads_per_block: u32,
    /// Shared memory reserved per block, bytes.
    pub shared_bytes_per_block: u64,
}

impl LaunchShape {
    /// The unknown shape: no occupancy is derived from it.
    pub const UNSHAPED: LaunchShape =
        LaunchShape { blocks: 0, threads_per_block: 0, shared_bytes_per_block: 0 };

    /// Achieved occupancy: resident blocks over device block capacity,
    /// clamped to 1. Co-residency per SM is bounded by the thread budget
    /// (`max_threads_per_block / threads_per_block`); `None` when the
    /// shape is [`LaunchShape::UNSHAPED`].
    pub fn occupancy(&self, spec: &DeviceSpec) -> Option<f64> {
        if self.blocks == 0 || self.threads_per_block == 0 {
            return None;
        }
        let per_sm = (spec.max_threads_per_block / self.threads_per_block).max(1);
        let capacity = u64::from(spec.sms) * u64::from(per_sm);
        Some((self.blocks as f64 / capacity as f64).min(1.0))
    }
}

/// Accumulated counters for one kernel (all launches sharing a normalized
/// label, e.g. every `join chunk<k>` launch lands in `join chunk`).
#[derive(Clone, Debug, Default)]
pub struct KernelStats {
    /// Number of launches.
    pub launches: u64,
    /// Total charged kernel seconds (excluding launch overhead).
    pub seconds: f64,
    /// Accumulated traffic across all launches.
    pub cost: KernelCost,
    /// Representative grid: the largest launch recorded under this label.
    pub shape: LaunchShape,
    /// Occupancy of the representative grid, when the shape is known.
    pub occupancy: Option<f64>,
    /// Roofline path bounding the accumulated cost (`"device-mem"`, …).
    pub bottleneck: &'static str,
}

impl KernelStats {
    /// Device-memory transactions actually issued: one sector per
    /// [`SECTOR_BYTES`] of coalesced traffic plus one per random/L2 access.
    pub fn issued_transactions(&self) -> u64 {
        self.cost.coalesced_bytes.div_ceil(SECTOR_BYTES)
            + self.cost.random_transactions
            + self.cost.l2_transactions
    }

    /// The coalesced minimum: transactions a perfectly coalesced kernel
    /// would need to move the same useful bytes (random accesses carry
    /// [`RANDOM_USEFUL_BYTES`] useful bytes each).
    pub fn minimum_transactions(&self) -> u64 {
        let useful = self.cost.coalesced_bytes
            + RANDOM_USEFUL_BYTES * (self.cost.random_transactions + self.cost.l2_transactions);
        useful.div_ceil(SECTOR_BYTES)
    }

    /// Coalescing efficiency = minimum / issued transactions, in `(0, 1]`.
    /// A kernel with no device traffic is perfectly coalesced by
    /// convention.
    pub fn coalescing_efficiency(&self) -> f64 {
        let issued = self.issued_transactions();
        if issued == 0 {
            1.0
        } else {
            self.minimum_transactions() as f64 / issued as f64
        }
    }

    /// Total device-memory bytes moved (each random/L2 access pays a full
    /// sector — this is what the bus actually carries).
    pub fn device_bytes(&self) -> u64 {
        self.cost.coalesced_bytes
            + SECTOR_BYTES * (self.cost.random_transactions + self.cost.l2_transactions)
    }

    /// Warp-level operations: instructions bundled [`WARP_SIZE`] lanes at
    /// a time (lockstep execution issues per warp, not per thread).
    pub fn warp_ops(&self) -> u64 {
        self.cost.instructions.div_ceil(WARP_SIZE as u64)
    }

    /// Achieved device-memory bandwidth, bytes/second (0 for instant
    /// kernels).
    pub fn achieved_bandwidth(&self) -> f64 {
        if self.seconds > 0.0 {
            self.device_bytes() as f64 / self.seconds
        } else {
            0.0
        }
    }
}

/// Accumulated counters for one PCIe direction.
#[derive(Clone, Copy, Debug, Default)]
pub struct TransferStats {
    /// Number of copies.
    pub transfers: u64,
    /// Payload bytes moved.
    pub bytes: u64,
    /// Subset of `bytes` moved from/to pageable host memory (bounced
    /// through a staging buffer at roughly half bandwidth).
    pub pageable_bytes: u64,
    /// Total charged transfer seconds.
    pub seconds: f64,
}

impl TransferStats {
    /// Achieved bandwidth, bytes/second (0 when nothing moved).
    pub fn achieved_bandwidth(&self) -> f64 {
        if self.seconds > 0.0 {
            self.bytes as f64 / self.seconds
        } else {
            0.0
        }
    }
}

/// What one recorded launch was, for the per-launch timeline samples.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum LaunchClass {
    Kernel,
    H2D,
    D2H,
    ExchangeOut,
    ExchangeIn,
}

/// One issued op with the per-launch values the counter tracks plot.
#[derive(Clone, Copy, Debug)]
struct LaunchSample {
    op: OpId,
    class: LaunchClass,
    bytes: u64,
    occupancy: Option<f64>,
}

/// Build-side cache activity, in the same "count what the hardware layer
/// observed" spirit as the kernel/transfer counters. The serving layer's
/// device-resident hash-table cache records here so `repro --profile`
/// tables, profile JSON, and the serve rollups all carry cache behaviour.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Requests served from a cached build-side table (rebuild skipped).
    pub hits: u64,
    /// Cache consultations that found no reusable entry.
    pub misses: u64,
    /// Entries evicted by the cache's own capacity policy (cost-aware
    /// LRU at install time).
    pub evictions: u64,
    /// Entries evicted because device admission control needed the bytes
    /// back (memory-pressure reclaim, including `--chaos` capacity
    /// shrinks).
    pub reclaims: u64,
    /// Entries dropped because their relation's content version bumped.
    pub invalidations: u64,
    /// Device bytes released by pressure reclaims.
    pub reclaimed_bytes: u64,
}

impl CacheCounters {
    /// Accumulate another set of cache counters into this one.
    pub fn absorb(&mut self, other: &CacheCounters) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.reclaims += other.reclaims;
        self.invalidations += other.invalidations;
        self.reclaimed_bytes += other.reclaimed_bytes;
    }

    /// True when no cache activity was recorded (e.g. the cache is off).
    pub fn is_empty(&self) -> bool {
        *self == CacheCounters::default()
    }

    /// Hit rate over all consultations (0 when the cache was never
    /// consulted).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A compact per-request rollup of a [`CounterSet`], cheap enough to keep
/// per request in the join service's metrics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CounterRollup {
    /// Kernel launches recorded.
    pub kernel_launches: u64,
    /// PCIe copies recorded (both directions).
    pub transfers: u64,
    /// Device-memory bytes moved by kernels.
    pub device_bytes: u64,
    /// Host→device payload bytes.
    pub h2d_bytes: u64,
    /// Device→host payload bytes.
    pub d2h_bytes: u64,
    /// Device transactions issued, across all kernels.
    pub issued_transactions: u64,
    /// Coalesced-minimum transactions, across all kernels.
    pub minimum_transactions: u64,
    /// Inter-device exchange copies (both directions) recorded by
    /// cross-device joins; zero for single-device executions.
    pub exchange_transfers: u64,
    /// Bytes this device shipped to peer devices over the interconnect.
    pub exchange_out_bytes: u64,
    /// Bytes this device received from peer devices over the interconnect.
    pub exchange_in_bytes: u64,
    /// Build-side cache activity attributed to this request/run.
    pub cache: CacheCounters,
}

impl CounterRollup {
    /// Accumulate another rollup into this one.
    pub fn absorb(&mut self, other: &CounterRollup) {
        self.kernel_launches += other.kernel_launches;
        self.transfers += other.transfers;
        self.device_bytes += other.device_bytes;
        self.h2d_bytes += other.h2d_bytes;
        self.d2h_bytes += other.d2h_bytes;
        self.issued_transactions += other.issued_transactions;
        self.minimum_transactions += other.minimum_transactions;
        self.exchange_transfers += other.exchange_transfers;
        self.exchange_out_bytes += other.exchange_out_bytes;
        self.exchange_in_bytes += other.exchange_in_bytes;
        self.cache.absorb(&other.cache);
    }

    /// Aggregate coalescing efficiency (1.0 when no device traffic).
    pub fn coalescing_efficiency(&self) -> f64 {
        if self.issued_transactions == 0 {
            1.0
        } else {
            self.minimum_transactions as f64 / self.issued_transactions as f64
        }
    }
}

/// Per-device accumulated hardware counters; see the module docs.
///
/// Kernels aggregate under a *normalized* label — digit runs are stripped,
/// so `join chunk0` … `join chunk17` report as one `join chunk` line, the
/// way `nvprof` groups launches of one kernel symbol.
#[derive(Clone, Debug, Default)]
pub struct CounterSet {
    device: String,
    mem_bandwidth: f64,
    kernels: BTreeMap<String, KernelStats>,
    /// Host→device transfer totals.
    pub h2d: TransferStats,
    /// Device→host transfer totals.
    pub d2h: TransferStats,
    /// Build-side cache activity (recorded by the serving layer; always
    /// zero for standalone strategy executions).
    pub cache: CacheCounters,
    /// Bytes shipped to peer devices over the inter-device interconnect
    /// (cross-device exchange egress; zero for single-device runs).
    pub exchange_out: TransferStats,
    /// Bytes received from peer devices over the interconnect (exchange
    /// ingress).
    pub exchange_in: TransferStats,
    samples: Vec<LaunchSample>,
}

impl CounterSet {
    /// An empty set attributed to `spec` (knows the roofline bandwidth).
    pub fn for_device(spec: &DeviceSpec) -> Self {
        CounterSet {
            device: spec.name.to_string(),
            mem_bandwidth: spec.mem_bandwidth,
            ..CounterSet::default()
        }
    }

    /// A shareable handle to a fresh set for `spec`.
    pub fn handle(spec: &DeviceSpec) -> CounterHandle {
        Arc::new(Mutex::new(CounterSet::for_device(spec)))
    }

    /// The device name this set was recorded on.
    pub fn device(&self) -> &str {
        &self.device
    }

    /// Peak device-memory bandwidth of the recording device, bytes/second
    /// (0 when the set never saw a device) — the denominator of the
    /// roofline-attainment column and of the perf-gate roofline metric.
    pub fn roofline_bandwidth(&self) -> f64 {
        self.mem_bandwidth
    }

    /// Launch-seconds-weighted mean occupancy across kernels whose grid
    /// shape was recorded; `None` when no kernel carried a shape. One
    /// number per run for the perf gate's occupancy band.
    pub fn mean_occupancy(&self) -> Option<f64> {
        let mut weight = 0.0;
        let mut acc = 0.0;
        for stats in self.kernels.values() {
            if let Some(o) = stats.occupancy {
                weight += stats.seconds;
                acc += o * stats.seconds;
            }
        }
        if weight > 0.0 {
            Some(acc / weight)
        } else {
            None
        }
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.kernels.is_empty()
            && self.h2d.transfers == 0
            && self.d2h.transfers == 0
            && self.exchange_out.transfers == 0
            && self.exchange_in.transfers == 0
    }

    /// Per-kernel stats, keyed by normalized label (sorted).
    pub fn kernels(&self) -> &BTreeMap<String, KernelStats> {
        &self.kernels
    }

    /// Look up one kernel's stats by its normalized label.
    pub fn kernel(&self, label: &str) -> Option<&KernelStats> {
        self.kernels.get(&normalize_label(label))
    }

    /// Record one successfully issued kernel launch. `seconds` is the
    /// charged duration (externally scaled costs pass their scaled time);
    /// `op` ties the launch to a schedule span for the counter tracks
    /// (`None` for synthetic recordings outside a [`crate::Gpu`]).
    pub fn record_kernel(
        &mut self,
        op: Option<OpId>,
        label: &str,
        cost: &KernelCost,
        shape: LaunchShape,
        seconds: f64,
        spec: &DeviceSpec,
    ) {
        let stats = self.kernels.entry(normalize_label(label)).or_default();
        stats.launches += 1;
        stats.seconds += seconds;
        stats.cost += *cost;
        if shape.blocks >= stats.shape.blocks {
            stats.shape = shape;
            stats.occupancy = shape.occupancy(spec);
        }
        stats.bottleneck = stats.cost.bottleneck(spec);
        let device_bytes =
            cost.coalesced_bytes + SECTOR_BYTES * (cost.random_transactions + cost.l2_transactions);
        if let Some(op) = op {
            self.samples.push(LaunchSample {
                op,
                class: LaunchClass::Kernel,
                bytes: device_bytes,
                occupancy: shape.occupancy(spec),
            });
        }
    }

    /// Record one successfully completed PCIe copy of `bytes` payload
    /// bytes taking `seconds` (h2d when `to_device`, d2h otherwise).
    pub fn record_transfer(
        &mut self,
        op: Option<OpId>,
        to_device: bool,
        bytes: u64,
        pageable: bool,
        seconds: f64,
    ) {
        let dir = if to_device { &mut self.h2d } else { &mut self.d2h };
        dir.transfers += 1;
        dir.bytes += bytes;
        if pageable {
            dir.pageable_bytes += bytes;
        }
        dir.seconds += seconds;
        if let Some(op) = op {
            self.samples.push(LaunchSample {
                op,
                class: if to_device { LaunchClass::H2D } else { LaunchClass::D2H },
                bytes,
                occupancy: None,
            });
        }
    }

    /// Record one completed inter-device exchange copy of `bytes` payload
    /// bytes taking `seconds` over the modeled interconnect. Each shuffled
    /// partition is recorded twice — as egress (`outgoing`) on the sender's
    /// counter set and as ingress on the receiver's — so per-direction
    /// exchange traffic is visible per device in `repro --profile` output
    /// and serve rollups, at the same layer every other transfer records.
    pub fn record_exchange(&mut self, op: Option<OpId>, outgoing: bool, bytes: u64, seconds: f64) {
        let dir = if outgoing { &mut self.exchange_out } else { &mut self.exchange_in };
        dir.transfers += 1;
        dir.bytes += bytes;
        dir.seconds += seconds;
        if let Some(op) = op {
            self.samples.push(LaunchSample {
                op,
                class: if outgoing { LaunchClass::ExchangeOut } else { LaunchClass::ExchangeIn },
                bytes,
                occupancy: None,
            });
        }
    }

    /// Merge every counter of `other` into this set (used by outcomes that
    /// combine work from several devices or phases).
    pub fn absorb(&mut self, other: &CounterSet) {
        if self.device.is_empty() {
            self.device = other.device.clone();
            self.mem_bandwidth = other.mem_bandwidth;
        }
        for (label, stats) in &other.kernels {
            let mine = self.kernels.entry(label.clone()).or_default();
            mine.launches += stats.launches;
            mine.seconds += stats.seconds;
            mine.cost += stats.cost;
            if stats.shape.blocks >= mine.shape.blocks {
                mine.shape = stats.shape;
                mine.occupancy = stats.occupancy;
            }
            mine.bottleneck = stats.bottleneck;
        }
        for (mine, theirs) in [
            (&mut self.h2d, &other.h2d),
            (&mut self.d2h, &other.d2h),
            (&mut self.exchange_out, &other.exchange_out),
            (&mut self.exchange_in, &other.exchange_in),
        ] {
            mine.transfers += theirs.transfers;
            mine.bytes += theirs.bytes;
            mine.pageable_bytes += theirs.pageable_bytes;
            mine.seconds += theirs.seconds;
        }
        self.cache.absorb(&other.cache);
        self.samples.extend(other.samples.iter().copied());
    }

    /// Kernel totals across all labels.
    pub fn kernel_totals(&self) -> KernelStats {
        let mut total = KernelStats::default();
        for stats in self.kernels.values() {
            total.launches += stats.launches;
            total.seconds += stats.seconds;
            total.cost += stats.cost;
        }
        total
    }

    /// The compact rollup the join service keeps per request.
    pub fn rollup(&self) -> CounterRollup {
        let mut roll = CounterRollup::default();
        for stats in self.kernels.values() {
            roll.kernel_launches += stats.launches;
            roll.device_bytes += stats.device_bytes();
            roll.issued_transactions += stats.issued_transactions();
            roll.minimum_transactions += stats.minimum_transactions();
        }
        roll.transfers = self.h2d.transfers + self.d2h.transfers;
        roll.h2d_bytes = self.h2d.bytes;
        roll.d2h_bytes = self.d2h.bytes;
        roll.exchange_transfers = self.exchange_out.transfers + self.exchange_in.transfers;
        roll.exchange_out_bytes = self.exchange_out.bytes;
        roll.exchange_in_bytes = self.exchange_in.bytes;
        roll.cache = self.cache;
        roll
    }

    /// An `nvprof`-style aligned per-kernel table plus per-direction
    /// transfer totals; deterministic, for `repro --profile` stdout.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let name_w =
            self.kernels.keys().map(|k| k.len()).chain(["kernel".len()]).max().unwrap_or(6).max(6);
        let _ = writeln!(
            out,
            "{:<name_w$}  {:>7} {:>10} {:>9} {:>6} {:>8} {:>5} {:>8} {:>6}  bottleneck",
            "kernel",
            "launch",
            "time-ms",
            "dev-MB",
            "coal",
            "smem-KB",
            "occ",
            "GB/s",
            "roof",
            name_w = name_w,
        );
        for (label, stats) in &self.kernels {
            let occ = match stats.occupancy {
                Some(o) => format!("{o:.2}"),
                None => "-".to_string(),
            };
            let roof = if self.mem_bandwidth > 0.0 {
                format!("{:.0}%", 100.0 * stats.achieved_bandwidth() / self.mem_bandwidth)
            } else {
                "-".to_string()
            };
            let _ = writeln!(
                out,
                "{:<name_w$}  {:>7} {:>10.3} {:>9.1} {:>6.2} {:>8.1} {:>5} {:>8.1} {:>6}  {}",
                label,
                stats.launches,
                stats.seconds * 1e3,
                stats.device_bytes() as f64 / 1e6,
                stats.coalescing_efficiency(),
                stats.shape.shared_bytes_per_block as f64 / 1024.0,
                occ,
                stats.achieved_bandwidth() / 1e9,
                roof,
                stats.bottleneck,
                name_w = name_w,
            );
        }
        for (name, dir) in [("h2d", &self.h2d), ("d2h", &self.d2h)] {
            let _ = writeln!(
                out,
                "{name}: {} transfer(s), {} B ({} B pageable), {:.3} ms, {:.1} GB/s",
                dir.transfers,
                dir.bytes,
                dir.pageable_bytes,
                dir.seconds * 1e3,
                dir.achieved_bandwidth() / 1e9,
            );
        }
        // Exchange lines are conditional so single-device profiles stay
        // byte-identical to their pre-fleet goldens.
        for (name, dir) in
            [("exchange-out", &self.exchange_out), ("exchange-in", &self.exchange_in)]
        {
            if dir.transfers == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "{name}: {} transfer(s), {} B, {:.3} ms, {:.1} GB/s",
                dir.transfers,
                dir.bytes,
                dir.seconds * 1e3,
                dir.achieved_bandwidth() / 1e9,
            );
        }
        let cc = &self.cache;
        let _ = writeln!(
            out,
            "cache: {} hit(s), {} miss(es), {} eviction(s), {} reclaim(s) ({} B), {} \
             invalidation(s)",
            cc.hits, cc.misses, cc.evictions, cc.reclaims, cc.reclaimed_bytes, cc.invalidations,
        );
        out
    }

    /// The whole set as a deterministic JSON document (sorted kernel keys,
    /// every [`KernelCost`] field plus the derived metrics), for the
    /// `<figure>.profile.json` files written next to the CSVs.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"device\": {},", json_string(&self.device));
        let _ = writeln!(out, "  \"mem_bandwidth\": {},", json_f64(self.mem_bandwidth));
        out.push_str("  \"kernels\": {\n");
        for (i, (label, stats)) in self.kernels.iter().enumerate() {
            let _ = writeln!(out, "    {}: {{", json_string(label));
            let _ = writeln!(out, "      \"launches\": {},", stats.launches);
            let _ = writeln!(out, "      \"seconds\": {},", json_f64(stats.seconds));
            let c = &stats.cost;
            let _ = writeln!(out, "      \"coalesced_bytes\": {},", c.coalesced_bytes);
            let _ = writeln!(out, "      \"random_transactions\": {},", c.random_transactions);
            let _ = writeln!(out, "      \"l2_transactions\": {},", c.l2_transactions);
            let _ = writeln!(out, "      \"shared_bytes\": {},", c.shared_bytes);
            let _ = writeln!(out, "      \"shared_atomics\": {},", c.shared_atomics);
            let _ = writeln!(out, "      \"global_atomics\": {},", c.global_atomics);
            let _ = writeln!(out, "      \"instructions\": {},", c.instructions);
            let _ = writeln!(out, "      \"warp_ops\": {},", stats.warp_ops());
            let _ =
                writeln!(out, "      \"issued_transactions\": {},", stats.issued_transactions());
            let _ =
                writeln!(out, "      \"minimum_transactions\": {},", stats.minimum_transactions());
            let _ = writeln!(
                out,
                "      \"coalescing_efficiency\": {},",
                json_f64(stats.coalescing_efficiency())
            );
            let _ = writeln!(out, "      \"device_bytes\": {},", stats.device_bytes());
            let _ = writeln!(
                out,
                "      \"achieved_bandwidth\": {},",
                json_f64(stats.achieved_bandwidth())
            );
            let roof = if self.mem_bandwidth > 0.0 {
                stats.achieved_bandwidth() / self.mem_bandwidth
            } else {
                0.0
            };
            let _ = writeln!(out, "      \"roofline_fraction\": {},", json_f64(roof));
            let _ = writeln!(out, "      \"blocks\": {},", stats.shape.blocks);
            let _ =
                writeln!(out, "      \"threads_per_block\": {},", stats.shape.threads_per_block);
            let _ = writeln!(
                out,
                "      \"shared_bytes_per_block\": {},",
                stats.shape.shared_bytes_per_block
            );
            let occ = match stats.occupancy {
                Some(o) => json_f64(o),
                None => "null".to_string(),
            };
            let _ = writeln!(out, "      \"occupancy\": {occ},");
            let _ = writeln!(out, "      \"bottleneck\": {}", json_string(stats.bottleneck));
            let _ = writeln!(out, "    }}{}", if i + 1 < self.kernels.len() { "," } else { "" });
        }
        out.push_str("  },\n");
        for (name, dir) in [
            ("h2d", &self.h2d),
            ("d2h", &self.d2h),
            ("exchange_out", &self.exchange_out),
            ("exchange_in", &self.exchange_in),
        ] {
            let _ = writeln!(
                out,
                "  \"{name}\": {{ \"transfers\": {}, \"bytes\": {}, \"pageable_bytes\": {}, \
                 \"seconds\": {} }},",
                dir.transfers,
                dir.bytes,
                dir.pageable_bytes,
                json_f64(dir.seconds),
            );
        }
        let cc = &self.cache;
        let _ = writeln!(
            out,
            "  \"cache\": {{ \"hits\": {}, \"misses\": {}, \"evictions\": {}, \"reclaims\": {}, \
             \"invalidations\": {}, \"reclaimed_bytes\": {}, \"hit_rate\": {} }},",
            cc.hits,
            cc.misses,
            cc.evictions,
            cc.reclaims,
            cc.invalidations,
            cc.reclaimed_bytes,
            json_f64(cc.hit_rate()),
        );
        let roll = self.rollup();
        let _ = writeln!(
            out,
            "  \"totals\": {{ \"kernel_launches\": {}, \"transfers\": {}, \"device_bytes\": {}, \
             \"h2d_bytes\": {}, \"d2h_bytes\": {}, \"exchange_out_bytes\": {}, \
             \"exchange_in_bytes\": {}, \"issued_transactions\": {}, \
             \"minimum_transactions\": {}, \"coalescing_efficiency\": {} }}",
            roll.kernel_launches,
            roll.transfers,
            roll.device_bytes,
            roll.h2d_bytes,
            roll.d2h_bytes,
            roll.exchange_out_bytes,
            roll.exchange_in_bytes,
            roll.issued_transactions,
            roll.minimum_transactions,
            json_f64(roll.coalescing_efficiency()),
        );
        out.push_str("}\n");
        out
    }

    /// Counter tracks for Chrome tracing, resolved against the solved
    /// `schedule`: per-direction achieved bandwidth (GB/s) while each
    /// recorded op runs, plus kernel occupancy. Merge into a schedule
    /// trace with `TraceExporter::to_json_with_counters`.
    pub fn counter_timeline(&self, schedule: &Schedule) -> Timeline {
        let mut points: [Vec<(hcj_sim::SimTime, f64)>; 6] = std::array::from_fn(|_| Vec::new());
        for sample in &self.samples {
            let (start, end) = (schedule.start(sample.op), schedule.finish(sample.op));
            if end <= start {
                continue;
            }
            let secs = (end - start).as_secs_f64();
            let gbps = sample.bytes as f64 / secs / 1e9;
            let series = match sample.class {
                LaunchClass::Kernel => 0,
                LaunchClass::H2D => 1,
                LaunchClass::D2H => 2,
                LaunchClass::ExchangeOut => 4,
                LaunchClass::ExchangeIn => 5,
            };
            points[series].push((start, gbps));
            points[series].push((end, 0.0));
            if sample.class == LaunchClass::Kernel {
                if let Some(occ) = sample.occupancy {
                    points[3].push((start, occ));
                    points[3].push((end, 0.0));
                }
            }
        }
        let mut timeline = Timeline::new("hcj-counters");
        let names = [
            "device-mem GB/s",
            "h2d GB/s",
            "d2h GB/s",
            "occupancy",
            "xchg-out GB/s",
            "xchg-in GB/s",
        ];
        for (name, mut series) in names.into_iter().zip(points) {
            if series.is_empty() {
                continue;
            }
            // At a shared boundary the closing 0-sample sorts before the
            // opening rate so the counter never dips spuriously.
            series.sort_by(|a, b| (a.0, a.1).partial_cmp(&(b.0, b.1)).expect("finite samples"));
            let id = timeline.counter(name);
            for (at, value) in series {
                timeline.sample(id, at, value);
            }
        }
        timeline
    }
}

/// Strip digit runs so per-chunk/per-pass launches of one kernel aggregate
/// under one label, and drop any ` [retry n]` suffix so retried launches
/// count with their original kernel.
fn normalize_label(label: &str) -> String {
    let base = label.split(" [").next().unwrap_or(label);
    let mut out = String::with_capacity(base.len());
    for c in base.chars() {
        if !c.is_ascii_digit() {
            out.push(c);
        }
    }
    out.trim_end().to_string()
}

/// A finite f64 as a JSON number.
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// JSON string literal with minimal escaping (labels are ASCII here).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> DeviceSpec {
        DeviceSpec::gtx1080()
    }

    fn coalesced_stats(bytes: u64) -> KernelStats {
        let mut set = CounterSet::for_device(&spec());
        set.record_kernel(
            None,
            "scan",
            &KernelCost::coalesced(bytes),
            LaunchShape::UNSHAPED,
            1.0,
            &spec(),
        );
        set.kernel("scan").unwrap().clone()
    }

    #[test]
    fn pure_coalesced_kernel_has_unit_efficiency() {
        let stats = coalesced_stats(1 << 20);
        assert_eq!(stats.coalescing_efficiency(), 1.0);
        assert_eq!(stats.issued_transactions(), (1 << 20) / SECTOR_BYTES);
        assert_eq!(stats.device_bytes(), 1 << 20);
    }

    #[test]
    fn random_traffic_pulls_efficiency_toward_the_payload_ratio() {
        let mut set = CounterSet::for_device(&spec());
        let mut cost = KernelCost::ZERO;
        cost.add_random(1_000_000);
        set.record_kernel(None, "probe", &cost, LaunchShape::UNSHAPED, 1.0, &spec());
        let stats = set.kernel("probe").unwrap();
        let eff = stats.coalescing_efficiency();
        let expect = RANDOM_USEFUL_BYTES as f64 / SECTOR_BYTES as f64;
        assert!((eff - expect).abs() < 1e-9, "eff={eff}");
    }

    #[test]
    fn efficiency_always_in_unit_interval() {
        // Sweep mixes of coalesced and random traffic; every combination
        // must land in (0, 1].
        for coal in [0u64, 1, 31, 32, 33, 1 << 20] {
            for rand in [0u64, 1, 7, 1_000_003] {
                let mut set = CounterSet::for_device(&spec());
                let mut cost = KernelCost::coalesced(coal);
                cost.add_random(rand);
                cost.add_l2(rand / 2);
                set.record_kernel(None, "k", &cost, LaunchShape::UNSHAPED, 0.5, &spec());
                let eff = set.kernel("k").unwrap().coalescing_efficiency();
                assert!(eff > 0.0 && eff <= 1.0, "coal={coal} rand={rand} eff={eff}");
            }
        }
    }

    #[test]
    fn occupancy_is_clamped_and_thread_limited() {
        let s = spec(); // 20 SMs, 1024 max threads/block
        let full = LaunchShape { blocks: 40, threads_per_block: 512, shared_bytes_per_block: 0 };
        // 512-thread blocks co-reside 2/SM → capacity 40 → exactly full.
        assert_eq!(full.occupancy(&s), Some(1.0));
        let tiny = LaunchShape { blocks: 1, threads_per_block: 512, ..full };
        assert_eq!(tiny.occupancy(&s), Some(1.0 / 40.0));
        let over = LaunchShape { blocks: 10_000, threads_per_block: 1024, ..full };
        assert_eq!(over.occupancy(&s), Some(1.0), "occupancy must clamp at 1");
        assert_eq!(LaunchShape::UNSHAPED.occupancy(&s), None);
        for blocks in [1u64, 3, 19, 20, 21, 1000] {
            let shape = LaunchShape { blocks, threads_per_block: 1024, shared_bytes_per_block: 0 };
            let occ = shape.occupancy(&s).unwrap();
            assert!(occ > 0.0 && occ <= 1.0, "blocks={blocks} occ={occ}");
        }
    }

    #[test]
    fn transfers_conserve_bytes_per_direction() {
        let mut set = CounterSet::for_device(&spec());
        set.record_transfer(None, true, 1000, false, 1e-6);
        set.record_transfer(None, true, 500, true, 1e-6);
        set.record_transfer(None, false, 250, false, 1e-6);
        assert_eq!(set.h2d.transfers, 2);
        assert_eq!(set.h2d.bytes, 1500);
        assert_eq!(set.h2d.pageable_bytes, 500);
        assert_eq!(set.d2h.bytes, 250);
        let roll = set.rollup();
        assert_eq!(roll.h2d_bytes, 1500);
        assert_eq!(roll.d2h_bytes, 250);
        assert_eq!(roll.transfers, 3);
    }

    #[test]
    fn labels_normalize_and_aggregate() {
        let mut set = CounterSet::for_device(&spec());
        for i in 0..3 {
            set.record_kernel(
                None,
                &format!("join chunk{i}"),
                &KernelCost::coalesced(100),
                LaunchShape::UNSHAPED,
                0.1,
                &spec(),
            );
        }
        set.record_kernel(
            None,
            "join chunk1 [retry 1]",
            &KernelCost::coalesced(100),
            LaunchShape::UNSHAPED,
            0.1,
            &spec(),
        );
        assert_eq!(set.kernels().len(), 1);
        let stats = set.kernel("join chunk").unwrap();
        assert_eq!(stats.launches, 4);
        assert_eq!(stats.cost.coalesced_bytes, 400);
    }

    #[test]
    fn warp_ops_round_up() {
        let mut set = CounterSet::for_device(&spec());
        let mut cost = KernelCost::ZERO;
        cost.add_instructions(33);
        set.record_kernel(None, "k", &cost, LaunchShape::UNSHAPED, 0.0, &spec());
        assert_eq!(set.kernel("k").unwrap().warp_ops(), 2);
    }

    #[test]
    fn rollup_absorb_accumulates() {
        let mut a = CounterRollup {
            kernel_launches: 1,
            transfers: 2,
            device_bytes: 10,
            h2d_bytes: 5,
            d2h_bytes: 1,
            issued_transactions: 8,
            minimum_transactions: 4,
            exchange_transfers: 3,
            exchange_out_bytes: 7,
            exchange_in_bytes: 9,
            cache: CacheCounters { hits: 3, misses: 1, ..CacheCounters::default() },
        };
        a.absorb(&a.clone());
        assert_eq!(a.kernel_launches, 2);
        assert_eq!(a.device_bytes, 20);
        assert_eq!(a.exchange_transfers, 6);
        assert_eq!(a.exchange_out_bytes, 14);
        assert_eq!(a.exchange_in_bytes, 18);
        assert_eq!(a.cache.hits, 6);
        assert_eq!(a.cache.misses, 2);
        assert_eq!(a.coalescing_efficiency(), 0.5);
        assert_eq!(CounterRollup::default().coalescing_efficiency(), 1.0);
    }

    #[test]
    fn cache_counters_absorb_and_render() {
        let mut set = CounterSet::for_device(&spec());
        set.cache =
            CacheCounters { hits: 5, misses: 3, evictions: 2, reclaims: 1, ..Default::default() };
        set.cache.reclaimed_bytes = 4096;
        set.cache.invalidations = 1;
        assert!((set.cache.hit_rate() - 5.0 / 8.0).abs() < 1e-12);
        assert!(!set.cache.is_empty());
        assert!(CacheCounters::default().is_empty());
        assert_eq!(CacheCounters::default().hit_rate(), 0.0);
        let roll = set.rollup();
        assert_eq!(roll.cache.hits, 5);
        let table = set.render_table();
        assert!(table.contains("cache: 5 hit(s), 3 miss(es), 2 eviction(s), 1 reclaim(s)"));
        let json = set.to_json();
        assert!(json.contains("\"cache\": { \"hits\": 5, \"misses\": 3"));
        let mut other = CounterSet::for_device(&spec());
        other.absorb(&set);
        assert_eq!(other.cache.hits, 5);
        assert_eq!(other.cache.reclaimed_bytes, 4096);
    }

    #[test]
    fn json_and_table_are_deterministic_and_sorted() {
        let build = |n: u64| {
            let mut set = CounterSet::for_device(&spec());
            let mut cost = KernelCost::coalesced(n);
            cost.add_random(n / 8);
            set.record_kernel(
                None,
                "part r pass0",
                &cost,
                LaunchShape { blocks: 64, threads_per_block: 1024, shared_bytes_per_block: 16384 },
                0.002,
                &spec(),
            );
            set.record_kernel(None, "join", &cost, LaunchShape::UNSHAPED, 0.001, &spec());
            set.record_transfer(None, true, n, false, n as f64 / 12e9);
            set
        };
        let (a, b) = (build(1 << 20), build(1 << 20));
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.render_table(), b.render_table());
        let json = a.to_json();
        assert!(json.find("\"join\"").unwrap() < json.find("\"part r pass\"").unwrap());
        assert!(json.contains("\"occupancy\": null"));
        assert!(json.contains("\"totals\""));
        let table = a.render_table();
        assert!(table.contains("bottleneck"));
        assert!(table.contains("h2d: 1 transfer(s)"));
    }

    #[test]
    fn exchange_counters_accumulate_and_render_conditionally() {
        let mut set = CounterSet::for_device(&spec());
        // No exchange recorded: no exchange lines, so single-device
        // profiles stay byte-identical to their goldens.
        assert!(!set.render_table().contains("exchange"));
        set.record_exchange(None, true, 4096, 1e-6);
        set.record_exchange(None, true, 4096, 1e-6);
        set.record_exchange(None, false, 1024, 1e-6);
        assert!(!set.is_empty());
        assert_eq!(set.exchange_out.transfers, 2);
        assert_eq!(set.exchange_out.bytes, 8192);
        assert_eq!(set.exchange_in.bytes, 1024);
        let roll = set.rollup();
        assert_eq!(roll.exchange_transfers, 3);
        assert_eq!(roll.exchange_out_bytes, 8192);
        assert_eq!(roll.exchange_in_bytes, 1024);
        let table = set.render_table();
        assert!(table.contains("exchange-out: 2 transfer(s), 8192 B"));
        assert!(table.contains("exchange-in: 1 transfer(s), 1024 B"));
        let json = set.to_json();
        assert!(json.contains("\"exchange_out\": { \"transfers\": 2, \"bytes\": 8192"));
        assert!(json.contains("\"exchange_out_bytes\": 8192"));
        let mut other = CounterSet::for_device(&spec());
        other.absorb(&set);
        assert_eq!(other.exchange_out.bytes, 8192);
        assert_eq!(other.exchange_in.transfers, 1);
    }

    #[test]
    fn absorb_merges_kernels_and_transfers() {
        let mut a = CounterSet::for_device(&spec());
        a.record_kernel(
            None,
            "join",
            &KernelCost::coalesced(64),
            LaunchShape::UNSHAPED,
            0.1,
            &spec(),
        );
        let mut b = CounterSet::for_device(&spec());
        b.record_kernel(
            None,
            "join",
            &KernelCost::coalesced(64),
            LaunchShape::UNSHAPED,
            0.1,
            &spec(),
        );
        b.record_transfer(None, false, 99, true, 1e-6);
        a.absorb(&b);
        assert_eq!(a.kernel("join").unwrap().launches, 2);
        assert_eq!(a.kernel("join").unwrap().cost.coalesced_bytes, 128);
        assert_eq!(a.d2h.pageable_bytes, 99);
        assert_eq!(a.kernel_totals().launches, 2);
    }
}
