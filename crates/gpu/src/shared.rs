//! Per-thread-block shared-memory budgets.
//!
//! CUDA kernels declare their shared-memory needs at launch; a configuration
//! exceeding the block's limit fails to launch. The paper leans on exactly
//! this constraint: partition metadata, the bucket shuffle space, the
//! per-partition hash table and the warp-level output buffer must *all* fit
//! in the 48 KB block budget of a GTX 1080, which bounds the partitioning
//! fanout to "a few thousand" (paper §III-A).
//!
//! [`SharedMemLayout`] is a tiny builder: kernels reserve named regions and
//! either get a validated layout or a [`SharedMemOverflow`] naming the
//! offending region — the same hard feedback a real launch failure gives.

use std::fmt;

/// Error: the block's shared-memory budget was exceeded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SharedMemOverflow {
    /// The region whose reservation overflowed the budget.
    pub region: String,
    /// Bytes the reservation asked for.
    pub requested: u64,
    /// Bytes already reserved by other regions.
    pub in_use: u64,
    /// The block's total shared-memory budget.
    pub budget: u64,
}

impl fmt::Display for SharedMemOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shared memory overflow reserving `{}`: {} B requested, {} B already reserved, {} B budget",
            self.region, self.requested, self.in_use, self.budget
        )
    }
}

impl std::error::Error for SharedMemOverflow {}

/// A shared-memory reservation plan for one thread block.
#[derive(Clone, Debug)]
pub struct SharedMemLayout {
    budget: u64,
    reserved: u64,
    regions: Vec<(String, u64)>,
}

impl SharedMemLayout {
    /// Start a layout against a block budget (normally
    /// [`crate::DeviceSpec::shared_mem_per_block`]).
    pub fn new(budget: u64) -> Self {
        SharedMemLayout { budget, reserved: 0, regions: Vec::new() }
    }

    /// Reserve space for `len` elements of `T` under `name`.
    pub fn reserve<T>(&mut self, name: &str, len: usize) -> Result<(), SharedMemOverflow> {
        self.reserve_bytes(name, (len * std::mem::size_of::<T>()) as u64)
    }

    /// Reserve raw bytes under `name`.
    pub fn reserve_bytes(&mut self, name: &str, bytes: u64) -> Result<(), SharedMemOverflow> {
        if self.budget - self.reserved < bytes {
            return Err(SharedMemOverflow {
                region: name.to_string(),
                requested: bytes,
                in_use: self.reserved,
                budget: self.budget,
            });
        }
        self.reserved += bytes;
        self.regions.push((name.to_string(), bytes));
        Ok(())
    }

    /// Total bytes reserved so far.
    pub fn reserved(&self) -> u64 {
        self.reserved
    }

    /// Bytes still available.
    pub fn remaining(&self) -> u64 {
        self.budget - self.reserved
    }

    /// The block budget this layout validates against.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Named regions in reservation order.
    pub fn regions(&self) -> &[(String, u64)] {
        &self.regions
    }
}

/// Maximum single-pass partitioning fanout that fits the block budget,
/// given the per-partition shared-memory cost (metadata + shuffle space).
///
/// This is the GPU analogue of the TLB-bound fanout of CPU radix joins
/// (paper §III-A): `fanout * bytes_per_partition + fixed_bytes <= budget`.
pub fn max_fanout(budget: u64, bytes_per_partition: u64, fixed_bytes: u64) -> u32 {
    if budget <= fixed_bytes || bytes_per_partition == 0 {
        return if budget > fixed_bytes { u32::MAX } else { 0 };
    }
    u32::try_from((budget - fixed_bytes) / bytes_per_partition).unwrap_or(u32::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reservations_accumulate() {
        let mut l = SharedMemLayout::new(1024);
        l.reserve::<u32>("hash table", 128).unwrap();
        l.reserve::<u16>("offsets", 64).unwrap();
        assert_eq!(l.reserved(), 512 + 128);
        assert_eq!(l.remaining(), 1024 - 640);
        assert_eq!(l.regions().len(), 2);
    }

    #[test]
    fn overflow_names_the_region() {
        let mut l = SharedMemLayout::new(100);
        l.reserve_bytes("meta", 80).unwrap();
        let err = l.reserve_bytes("shuffle", 30).unwrap_err();
        assert_eq!(err.region, "shuffle");
        assert_eq!(err.requested, 30);
        assert_eq!(err.in_use, 80);
        assert_eq!(err.budget, 100);
        // A failed reservation leaves the layout unchanged.
        assert_eq!(l.reserved(), 80);
    }

    #[test]
    fn exact_fit_succeeds() {
        let mut l = SharedMemLayout::new(64);
        l.reserve::<u64>("all", 8).unwrap();
        assert_eq!(l.remaining(), 0);
        assert!(l.reserve_bytes("more", 1).is_err());
    }

    #[test]
    fn gtx1080_fanout_is_a_few_thousand() {
        // 48 KB budget, ~16 B of metadata + shuffle per partition, 2 KB fixed:
        // the fanout lands in the low thousands, matching the paper's claim.
        let f = max_fanout(48 * 1024, 16, 2048);
        assert!((1000..10_000).contains(&f), "fanout = {f}");
    }

    #[test]
    fn degenerate_fanouts() {
        assert_eq!(max_fanout(100, 16, 100), 0);
        assert_eq!(max_fanout(100, 16, 200), 0);
        assert_eq!(max_fanout(100, 0, 0), u32::MAX);
    }
}
