//! The one typed error taxonomy for join execution.
//!
//! Every layer — `Gpu` ops, the strategies in `hcj-core`, the engine
//! facade and the comparator models in `hcj-engines`, and the multi-tenant
//! service — reports failure as a [`JoinError`], classified into
//! [`ErrorClass::Transient`] (retry/degrade may help),
//! [`ErrorClass::Fatal`] (it will not), and
//! [`ErrorClass::DeadlineExceeded`] (the request ran out of time, not the
//! device out of resources).

use std::fmt;

use hcj_sim::SimTime;

use crate::faults::{DeviceFault, FaultKind};
use crate::memory::OutOfDeviceMemory;

/// Coarse classification driving recovery policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorClass {
    /// Retrying, degrading down the strategy ladder, or backing off for
    /// memory may succeed.
    Transient,
    /// No amount of retrying helps (device lost, engine limits, broken
    /// invariants).
    Fatal,
    /// The request exceeded its deadline; the work was cancelled.
    DeadlineExceeded,
}

/// Why a join (or one of its device operations) failed.
#[derive(Clone, Debug, PartialEq)]
pub enum JoinError {
    /// A device allocation or reservation did not fit.
    OutOfDeviceMemory(OutOfDeviceMemory),
    /// A device-layer fault (transfer failure, kernel fault, device-lost).
    Device(DeviceFault),
    /// The request's deadline expired before the join completed.
    DeadlineExceeded {
        /// The per-request budget that was exceeded.
        deadline: SimTime,
        /// How far the request had gotten when it was cancelled.
        elapsed: SimTime,
    },
    /// The engine refused or crashed on this working-set size (the
    /// comparator models' documented failures, Figs. 14–15).
    WorkingSetTooLarge {
        /// Working-set size that was rejected.
        bytes: u64,
        /// The engine's documented limit.
        limit: u64,
        /// Which engine/limit refused, for the error message.
        detail: &'static str,
    },
    /// Data loading failed (CoGaDB's internal resize failure at SF 100).
    LoadFailed {
        /// Size of the load that failed.
        bytes: u64,
        /// Which loader failed, for the error message.
        detail: &'static str,
    },
    /// A "cannot happen" internal invariant was violated; surfaced as a
    /// typed error instead of a panic so a service run degrades, not dies.
    Internal {
        /// What broke, for the error message.
        detail: String,
    },
}

impl JoinError {
    /// Transient (retry/degrade) or permanent (fall back / give up)?
    pub fn class(&self) -> ErrorClass {
        match self {
            JoinError::OutOfDeviceMemory(_) => ErrorClass::Transient,
            JoinError::Device(f) => match f.kind {
                FaultKind::Transient => ErrorClass::Transient,
                FaultKind::DeviceLost => ErrorClass::Fatal,
            },
            JoinError::DeadlineExceeded { .. } => ErrorClass::DeadlineExceeded,
            JoinError::WorkingSetTooLarge { .. }
            | JoinError::LoadFailed { .. }
            | JoinError::Internal { .. } => ErrorClass::Fatal,
        }
    }

    /// Would retrying (or degrading down the ladder) plausibly help?
    pub fn is_transient(&self) -> bool {
        self.class() == ErrorClass::Transient
    }

    /// Sticky device-lost: the GPU is gone for this context; the only
    /// recovery is falling back to the CPU baselines.
    pub fn is_device_lost(&self) -> bool {
        matches!(self, JoinError::Device(f) if f.kind == FaultKind::DeviceLost)
    }

    /// Short stable tag for summaries and CSVs (no payload, so counts
    /// aggregate across requests).
    pub fn tag(&self) -> &'static str {
        match self {
            JoinError::OutOfDeviceMemory(_) => "out-of-device-memory",
            JoinError::Device(f) => match f.kind {
                FaultKind::Transient => "device-fault",
                FaultKind::DeviceLost => "device-lost",
            },
            JoinError::DeadlineExceeded { .. } => "deadline-exceeded",
            JoinError::WorkingSetTooLarge { .. } => "working-set-too-large",
            JoinError::LoadFailed { .. } => "load-failed",
            JoinError::Internal { .. } => "internal",
        }
    }
}

impl fmt::Display for JoinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JoinError::OutOfDeviceMemory(e) => e.fmt(f),
            JoinError::Device(e) => e.fmt(f),
            JoinError::DeadlineExceeded { deadline, elapsed } => write!(
                f,
                "deadline exceeded: {:.6} s budget, cancelled at {:.6} s",
                deadline.as_secs_f64(),
                elapsed.as_secs_f64()
            ),
            JoinError::WorkingSetTooLarge { bytes, limit, detail } => {
                write!(f, "working set of {bytes} B exceeds engine limit {limit} B: {detail}")
            }
            JoinError::LoadFailed { bytes, detail } => {
                write!(f, "failed to load {bytes} B: {detail}")
            }
            JoinError::Internal { detail } => write!(f, "internal invariant violated: {detail}"),
        }
    }
}

impl std::error::Error for JoinError {}

impl From<OutOfDeviceMemory> for JoinError {
    fn from(e: OutOfDeviceMemory) -> Self {
        JoinError::OutOfDeviceMemory(e)
    }
}

impl From<DeviceFault> for JoinError {
    fn from(e: DeviceFault) -> Self {
        JoinError::Device(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultSite;

    fn device(kind: FaultKind) -> JoinError {
        JoinError::Device(DeviceFault { site: FaultSite::Kernel, kind, label: "join p0".into() })
    }

    #[test]
    fn classification_matches_recovery_policy() {
        let oom = JoinError::from(OutOfDeviceMemory { requested: 10, available: 5, capacity: 20 });
        assert!(oom.is_transient());
        assert_eq!(oom.class(), ErrorClass::Transient);

        assert!(device(FaultKind::Transient).is_transient());
        assert!(!device(FaultKind::Transient).is_device_lost());

        let lost = device(FaultKind::DeviceLost);
        assert!(!lost.is_transient());
        assert!(lost.is_device_lost());
        assert_eq!(lost.class(), ErrorClass::Fatal);

        let dl = JoinError::DeadlineExceeded {
            deadline: SimTime::from_nanos(1_000),
            elapsed: SimTime::from_nanos(2_000),
        };
        assert_eq!(dl.class(), ErrorClass::DeadlineExceeded);
        assert!(!dl.is_transient());

        for fatal in [
            JoinError::WorkingSetTooLarge { bytes: 1, limit: 0, detail: "x" },
            JoinError::LoadFailed { bytes: 1, detail: "y" },
            JoinError::Internal { detail: "z".into() },
        ] {
            assert_eq!(fatal.class(), ErrorClass::Fatal);
        }
    }

    #[test]
    fn tags_are_stable_and_distinct() {
        let mut tags: Vec<&str> = vec![
            JoinError::from(OutOfDeviceMemory { requested: 1, available: 0, capacity: 1 }).tag(),
            device(FaultKind::Transient).tag(),
            device(FaultKind::DeviceLost).tag(),
            JoinError::DeadlineExceeded { deadline: SimTime::ZERO, elapsed: SimTime::ZERO }.tag(),
            JoinError::WorkingSetTooLarge { bytes: 1, limit: 0, detail: "x" }.tag(),
            JoinError::LoadFailed { bytes: 1, detail: "y" }.tag(),
            JoinError::Internal { detail: "z".into() }.tag(),
        ];
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), 7);
    }

    #[test]
    fn displays_mention_the_cause() {
        assert!(device(FaultKind::Transient).to_string().contains("transient"));
        assert!(device(FaultKind::DeviceLost).to_string().contains("device lost"));
        let dl = JoinError::DeadlineExceeded {
            deadline: SimTime::from_secs_f64(0.5),
            elapsed: SimTime::from_secs_f64(0.75),
        };
        assert!(dl.to_string().contains("deadline exceeded"));
    }
}
