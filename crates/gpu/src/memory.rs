//! Device-memory accounting: typed buffers with strict capacity limits.
//!
//! Out-of-memory is a first-class, observable condition here: the paper's
//! whole out-of-GPU section (§IV) exists because allocations fail on an
//! 8 GB part. The algorithms in `hcj-core` ask [`DeviceMemory`] before
//! choosing a strategy, and integration tests exercise the failure path.
//!
//! Buffers physically live in host RAM (this is a simulation), but are
//! owned by the device-memory accountant: allocating consumes capacity,
//! dropping returns it.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

use std::sync::Mutex;

use crate::faults::{FaultEventKind, FaultHandle, FaultSite};

/// Error returned when a device allocation does not fit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OutOfDeviceMemory {
    /// Bytes the allocation asked for.
    pub requested: u64,
    /// Bytes that were free at the time.
    pub available: u64,
    /// Total device capacity.
    pub capacity: u64,
}

impl fmt::Display for OutOfDeviceMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "out of device memory: requested {} B, {} B free of {} B",
            self.requested, self.available, self.capacity
        )
    }
}

impl std::error::Error for OutOfDeviceMemory {}

#[derive(Debug)]
struct Accountant {
    capacity: u64,
    used: u64,
    peak: u64,
    /// Bytes currently held by the simulated co-tenant (capacity-shrink
    /// fault events). Included in `used`, released by
    /// [`DeviceMemory::evict_co_tenant`].
    stolen: u64,
}

/// The device-memory allocator: capacity accounting over the modeled
/// device-memory size. Cloning shares the same accountant.
#[derive(Clone, Debug)]
pub struct DeviceMemory {
    inner: Arc<Mutex<Accountant>>,
    /// Armed fault plan: allocation attempts draw capacity-shrink events
    /// from it (a co-tenant stealing free bytes mid-run).
    faults: Option<FaultHandle>,
}

impl DeviceMemory {
    /// A device with `capacity` bytes of global memory.
    pub fn new(capacity: u64) -> Self {
        DeviceMemory {
            inner: Arc::new(Mutex::new(Accountant { capacity, used: 0, peak: 0, stolen: 0 })),
            faults: None,
        }
    }

    /// Arm fault injection: every subsequent allocation attempt may draw a
    /// capacity-shrink event. (Usually called via
    /// [`crate::Gpu::arm_faults`], which shares one plan between ops and
    /// allocations.) Only this handle's clones see the plan; the shared
    /// accountant is unaffected.
    pub fn arm_faults(&mut self, plan: FaultHandle) {
        self.faults = Some(plan);
    }

    /// Bytes currently held by the simulated co-tenant (shrink events).
    pub fn stolen(&self) -> u64 {
        self.inner.lock().expect("device-memory accountant poisoned").stolen
    }

    /// Release everything the co-tenant stole (modeling the co-tenant
    /// finishing); used by tests and teardown paths.
    pub fn evict_co_tenant(&self) {
        let mut g = self.inner.lock().expect("device-memory accountant poisoned");
        g.used -= g.stolen;
        g.stolen = 0;
    }

    /// Draw a capacity-shrink event (if armed) before an allocation of
    /// `requested` bytes: the co-tenant steals a slice of the *free* bytes,
    /// so `used` can never exceed `capacity` — the shrink squeezes the
    /// allocation, it does not corrupt accounting.
    fn maybe_shrink(&self, requested: u64) {
        let Some(plan) = &self.faults else { return };
        let mut plan = plan.lock().expect("fault plan poisoned");
        let mut g = self.inner.lock().expect("device-memory accountant poisoned");
        if let Some(steal) = plan.shrink_bytes(g.capacity - g.used) {
            g.used += steal;
            g.stolen += steal;
            g.peak = g.peak.max(g.used);
            plan.record(
                FaultSite::Alloc,
                FaultEventKind::Shrink { bytes: steal },
                format!("co-tenant steals {steal} B (alloc of {requested} B pending)"),
                None,
            );
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.inner.lock().expect("device-memory accountant poisoned").capacity
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.inner.lock().expect("device-memory accountant poisoned").used
    }

    /// High-water mark of allocated bytes over the accountant's lifetime.
    pub fn peak(&self) -> u64 {
        self.inner.lock().expect("device-memory accountant poisoned").peak
    }

    /// Bytes currently free.
    pub fn available(&self) -> u64 {
        let g = self.inner.lock().expect("device-memory accountant poisoned");
        g.capacity - g.used
    }

    /// Would an allocation of `bytes` succeed right now?
    pub fn fits(&self, bytes: u64) -> bool {
        self.available() >= bytes
    }

    /// Allocate a zero-initialized typed buffer of `len` elements.
    pub fn alloc_zeroed<T: Copy + Default>(
        &self,
        len: usize,
    ) -> Result<DeviceBuffer<T>, OutOfDeviceMemory> {
        self.alloc_with(len, |n| vec![T::default(); n])
    }

    /// Allocate a buffer holding a copy of `src`.
    ///
    /// Note: this performs the *functional* copy only. The simulated cost
    /// of moving the bytes over PCIe is charged separately by
    /// [`crate::Gpu::copy_h2d`]; callers that model a transfer must issue
    /// that op themselves (the strategies in `hcj-core` always do).
    pub fn alloc_from_slice<T: Copy>(
        &self,
        src: &[T],
    ) -> Result<DeviceBuffer<T>, OutOfDeviceMemory> {
        self.alloc_with(src.len(), |_| src.to_vec())
    }

    /// Reserve `bytes` of device memory without backing storage — used for
    /// large working buffers whose contents the simulation keeps in other
    /// host-side structures (e.g. partition bucket pools). The reservation
    /// participates fully in capacity accounting and frees on drop.
    pub fn reserve(&self, bytes: u64) -> Result<Reservation, OutOfDeviceMemory> {
        self.maybe_shrink(bytes);
        {
            let mut g = self.inner.lock().expect("device-memory accountant poisoned");
            if g.capacity - g.used < bytes {
                return Err(OutOfDeviceMemory {
                    requested: bytes,
                    available: g.capacity - g.used,
                    capacity: g.capacity,
                });
            }
            g.used += bytes;
            g.peak = g.peak.max(g.used);
        }
        Ok(Reservation { bytes, owner: Arc::clone(&self.inner) })
    }

    fn alloc_with<T>(
        &self,
        len: usize,
        make: impl FnOnce(usize) -> Vec<T>,
    ) -> Result<DeviceBuffer<T>, OutOfDeviceMemory> {
        let bytes = (len * std::mem::size_of::<T>()) as u64;
        self.maybe_shrink(bytes);
        {
            let mut g = self.inner.lock().expect("device-memory accountant poisoned");
            if g.capacity - g.used < bytes {
                return Err(OutOfDeviceMemory {
                    requested: bytes,
                    available: g.capacity - g.used,
                    capacity: g.capacity,
                });
            }
            g.used += bytes;
            g.peak = g.peak.max(g.used);
        }
        Ok(DeviceBuffer { data: make(len), bytes, owner: Arc::clone(&self.inner) })
    }
}

/// An accounting-only device-memory reservation (see
/// [`DeviceMemory::reserve`]). Frees on drop.
#[derive(Debug)]
pub struct Reservation {
    bytes: u64,
    owner: Arc<Mutex<Accountant>>,
}

impl Reservation {
    /// Accounted size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.bytes
    }
}

impl Drop for Reservation {
    fn drop(&mut self) {
        let mut g = self.owner.lock().expect("device-memory accountant poisoned");
        g.used -= self.bytes;
    }
}

/// A typed allocation in modeled device memory. Dereferences to a slice;
/// frees its accounted bytes on drop.
pub struct DeviceBuffer<T> {
    data: Vec<T>,
    bytes: u64,
    owner: Arc<Mutex<Accountant>>,
}

impl<T> DeviceBuffer<T> {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Accounted size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.bytes
    }
}

impl<T> Deref for DeviceBuffer<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        &self.data
    }
}

impl<T> DerefMut for DeviceBuffer<T> {
    fn deref_mut(&mut self) -> &mut [T] {
        &mut self.data
    }
}

impl<T> Drop for DeviceBuffer<T> {
    fn drop(&mut self) {
        let mut g = self.owner.lock().expect("device-memory accountant poisoned");
        g.used -= self.bytes;
    }
}

impl<T: fmt::Debug> fmt::Debug for DeviceBuffer<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DeviceBuffer({} elems, {} B)", self.data.len(), self.bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_free_round_trip() {
        let mem = DeviceMemory::new(1024);
        assert_eq!(mem.available(), 1024);
        let buf = mem.alloc_zeroed::<u64>(64).unwrap();
        assert_eq!(buf.len(), 64);
        assert_eq!(mem.used(), 512);
        assert_eq!(mem.available(), 512);
        drop(buf);
        assert_eq!(mem.used(), 0);
        assert_eq!(mem.peak(), 512);
    }

    #[test]
    fn oom_reports_sizes() {
        let mem = DeviceMemory::new(100);
        let _a = mem.alloc_zeroed::<u8>(60).unwrap();
        let err = mem.alloc_zeroed::<u8>(50).unwrap_err();
        assert_eq!(err.requested, 50);
        assert_eq!(err.available, 40);
        assert_eq!(err.capacity, 100);
        assert!(err.to_string().contains("out of device memory"));
    }

    #[test]
    fn failed_alloc_does_not_leak_accounting() {
        let mem = DeviceMemory::new(100);
        let _a = mem.alloc_zeroed::<u8>(90).unwrap();
        assert!(mem.alloc_zeroed::<u8>(20).is_err());
        assert_eq!(mem.used(), 90);
    }

    #[test]
    fn from_slice_copies_contents() {
        let mem = DeviceMemory::new(1 << 20);
        let src = [1u32, 2, 3, 4];
        let buf = mem.alloc_from_slice(&src).unwrap();
        assert_eq!(&*buf, &src);
        assert_eq!(buf.size_bytes(), 16);
    }

    #[test]
    fn buffers_are_writable() {
        let mem = DeviceMemory::new(1 << 10);
        let mut buf = mem.alloc_zeroed::<u32>(8).unwrap();
        buf[3] = 42;
        assert_eq!(buf[3], 42);
        assert_eq!(buf[0], 0);
    }

    #[test]
    fn clones_share_accounting() {
        let mem = DeviceMemory::new(1000);
        let view = mem.clone();
        let _buf = mem.alloc_zeroed::<u8>(600).unwrap();
        assert_eq!(view.used(), 600);
        assert!(!view.fits(500));
        assert!(view.fits(400));
    }

    #[test]
    fn zero_sized_alloc_ok() {
        let mem = DeviceMemory::new(0);
        let buf = mem.alloc_zeroed::<u64>(0).unwrap();
        assert!(buf.is_empty());
    }

    #[test]
    fn reservation_accounts_without_storage() {
        let mem = DeviceMemory::new(1000);
        let r = mem.reserve(700).unwrap();
        assert_eq!(mem.used(), 700);
        assert_eq!(r.size_bytes(), 700);
        assert!(mem.reserve(400).is_err());
        drop(r);
        assert_eq!(mem.used(), 0);
        assert_eq!(mem.peak(), 700);
    }

    #[test]
    fn reservation_dropped_mid_execution_releases_bytes() {
        // A fault or cancellation drops the Reservation early, out of
        // allocation order; accounting must return every byte regardless.
        let mem = DeviceMemory::new(1000);
        let r = mem.reserve(500).unwrap();
        let buf = mem.alloc_zeroed::<u8>(200).unwrap();
        drop(r); // "mid-execution" release, before the buffer
        assert_eq!(mem.used(), 200);
        drop(buf);
        assert_eq!(mem.used(), 0);
        assert_eq!(mem.peak(), 700);
    }

    #[test]
    fn shrink_steals_free_bytes_and_peak_stays_within_capacity() {
        use crate::faults::{FaultConfig, FaultPlan};
        let cfg = FaultConfig { shrink_p: 1.0, shrink_fraction: 0.5, ..FaultConfig::disabled(5) };
        let mut mem = DeviceMemory::new(1000);
        mem.arm_faults(FaultPlan::handle(cfg));
        // Every allocation attempt first loses half the free bytes to the
        // co-tenant: 1000 free → steal 500 → 300 fits in the remaining 500.
        let a = mem.reserve(300).unwrap();
        assert_eq!(mem.stolen(), 500);
        assert_eq!(mem.used(), 800);
        // Next attempt shrinks again (steal 100 of the 200 free) and the
        // request no longer fits — typed OOM, accounting intact.
        let err = mem.reserve(150).unwrap_err();
        assert_eq!(err.capacity, 1000);
        assert!(err.available < 150);
        assert!(mem.peak() <= mem.capacity(), "peak must never exceed capacity under shrink");
        assert_eq!(mem.used(), 300 + mem.stolen());
        drop(a);
        mem.evict_co_tenant();
        assert_eq!(mem.used(), 0);
        assert!(mem.peak() <= mem.capacity());
    }

    #[test]
    fn shrink_under_pressure_never_overflows_capacity() {
        use crate::faults::{FaultConfig, FaultPlan};
        let cfg = FaultConfig { shrink_p: 1.0, shrink_fraction: 0.9, ..FaultConfig::disabled(9) };
        let mut mem = DeviceMemory::new(4096);
        mem.arm_faults(FaultPlan::handle(cfg));
        let mut held = Vec::new();
        for _ in 0..64 {
            if let Ok(r) = mem.reserve(64) {
                held.push(r);
            }
            assert!(mem.used() <= mem.capacity());
            assert!(mem.peak() <= mem.capacity());
        }
        // At least one allocation must eventually fail under 90% steals.
        assert!(held.len() < 64);
        held.clear();
        mem.evict_co_tenant();
        assert_eq!(mem.used(), 0);
    }

    #[test]
    fn unarmed_memory_never_shrinks() {
        let mem = DeviceMemory::new(1000);
        for _ in 0..100 {
            let r = mem.reserve(1000).unwrap();
            drop(r);
        }
        assert_eq!(mem.stolen(), 0);
        assert_eq!(mem.peak(), 1000);
    }

    #[test]
    fn peak_tracks_high_water() {
        let mem = DeviceMemory::new(1000);
        let a = mem.alloc_zeroed::<u8>(400).unwrap();
        let b = mem.alloc_zeroed::<u8>(300).unwrap();
        drop(a);
        let _c = mem.alloc_zeroed::<u8>(100).unwrap();
        drop(b);
        assert_eq!(mem.peak(), 700);
    }
}
