//! Lockstep 32-lane warp primitives.
//!
//! CUDA warps execute one instruction across 32 lanes; intra-warp
//! communication instructions (`__ballot_sync`, `__shfl_sync`) let lanes
//! exchange registers without touching memory. The paper's nested-loop
//! probe (Listing 1) and its warp-buffered output materialization both
//! depend on these, so they are emulated faithfully here: each primitive
//! takes all 32 lanes' inputs and produces all 32 lanes' outputs, exactly
//! as the lockstep hardware would.

use crate::WARP_SIZE;

/// One register value per lane of a warp.
pub type Lanes<T> = [T; WARP_SIZE];

/// `__ballot_sync(FULL_MASK, pred)`: collect each lane's predicate into a
/// 32-bit mask (bit *i* = lane *i*'s predicate) broadcast to every lane.
pub fn ballot(preds: &Lanes<bool>) -> u32 {
    preds.iter().enumerate().fold(0u32, |m, (i, &p)| if p { m | (1 << i) } else { m })
}

/// `__shfl_sync(FULL_MASK, value, src_lane)`: every lane reads
/// `values[src_lane]`.
pub fn shfl<T: Copy>(values: &Lanes<T>, src_lane: usize) -> T {
    assert!(src_lane < WARP_SIZE, "shfl source lane out of range");
    values[src_lane]
}

/// `__any_sync`: true iff any lane's predicate holds.
pub fn any(preds: &Lanes<bool>) -> bool {
    preds.iter().any(|&p| p)
}

/// `__all_sync`: true iff every lane's predicate holds.
pub fn all(preds: &Lanes<bool>) -> bool {
    preds.iter().all(|&p| p)
}

/// Number of lanes whose bit is set below `lane` — the classic
/// `__popc(mask & lanemask_lt())` idiom used to compute compacted write
/// offsets inside a warp.
pub fn rank_below(mask: u32, lane: usize) -> u32 {
    assert!(lane < WARP_SIZE);
    (mask & ((1u32 << lane) - 1)).count_ones()
}

/// Exclusive prefix sum across lanes plus the warp-wide total; the building
/// block of the warp-level output buffering in paper §III-C (each matching
/// lane gets a distinct slot in the shared-memory result buffer).
pub fn prefix_sum_exclusive(values: &Lanes<u32>) -> (Lanes<u32>, u32) {
    let mut out = [0u32; WARP_SIZE];
    let mut acc = 0u32;
    for i in 0..WARP_SIZE {
        out[i] = acc;
        acc += values[i];
    }
    (out, acc)
}

/// The ballot-based bit-comparison at the heart of paper Listing 1.
///
/// Each lane holds one value `r` from the inner (build) partition in its
/// register; every lane also holds its own outer (probe) value `s`. For
/// each bit position in `bit_indexes` (the key bits *not* already equal by
/// virtue of partitioning), the warp ballots the `r` bits and each lane
/// keeps only the lanes whose bit agrees with its own `s` bit. The result,
/// per lane, is a 32-bit mask of which of the 32 `r` values equal that
/// lane's `s` on all tested bits.
///
/// `valid_r` masks out lanes that loaded padding (partition tail).
pub fn ballot_match(
    r: &Lanes<u32>,
    s: &Lanes<u32>,
    bit_indexes: &[u32],
    valid_r: u32,
) -> Lanes<u32> {
    let mut masks = [valid_r; WARP_SIZE];
    for &i in bit_indexes {
        debug_assert!(i < 32);
        let bit = 1u32 << i;
        // One ballot: every lane contributes the i-th bit of its r value.
        let votes = {
            let mut preds = [false; WARP_SIZE];
            for lane in 0..WARP_SIZE {
                preds[lane] = r[lane] & bit != 0;
            }
            ballot(&preds)
        };
        // Each lane narrows its candidate set using only register math.
        for lane in 0..WARP_SIZE {
            let keep = if s[lane] & bit != 0 { votes } else { !votes };
            masks[lane] &= keep;
        }
    }
    masks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lanes_from_fn<T: Copy + Default>(f: impl Fn(usize) -> T) -> Lanes<T> {
        let mut out = [T::default(); WARP_SIZE];
        for (i, v) in out.iter_mut().enumerate() {
            *v = f(i);
        }
        out
    }

    #[test]
    fn ballot_collects_bits() {
        let preds = lanes_from_fn(|i| i % 2 == 0);
        assert_eq!(ballot(&preds), 0x5555_5555);
        assert_eq!(ballot(&[false; WARP_SIZE]), 0);
        assert_eq!(ballot(&[true; WARP_SIZE]), u32::MAX);
    }

    #[test]
    fn shfl_broadcasts() {
        let vals = lanes_from_fn(|i| i as u64 * 10);
        assert_eq!(shfl(&vals, 0), 0);
        assert_eq!(shfl(&vals, 31), 310);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn shfl_bad_lane_panics() {
        let vals = [0u32; WARP_SIZE];
        let _ = shfl(&vals, 32);
    }

    #[test]
    fn any_all() {
        let mut preds = [false; WARP_SIZE];
        assert!(!any(&preds));
        assert!(!all(&preds));
        preds[7] = true;
        assert!(any(&preds));
        assert!(!all(&preds));
        assert!(all(&[true; WARP_SIZE]));
    }

    #[test]
    fn rank_below_counts_earlier_lanes() {
        let mask = 0b1011; // lanes 0, 1, 3
        assert_eq!(rank_below(mask, 0), 0);
        assert_eq!(rank_below(mask, 1), 1);
        assert_eq!(rank_below(mask, 2), 2);
        assert_eq!(rank_below(mask, 3), 2);
        assert_eq!(rank_below(mask, 31), 3);
    }

    #[test]
    fn prefix_sum_matches_scalar() {
        let vals = lanes_from_fn(|i| i as u32);
        let (pre, total) = prefix_sum_exclusive(&vals);
        assert_eq!(pre[0], 0);
        assert_eq!(pre[5], 1 + 2 + 3 + 4);
        assert_eq!(total, (0..32).sum::<u32>());
    }

    #[test]
    fn ballot_match_finds_exact_equalities() {
        // r holds values 0..32; each lane probes with s = lane ^ 1.
        let r = lanes_from_fn(|i| i as u32);
        let s = lanes_from_fn(|i| (i as u32) ^ 1);
        // All 5 low bits may differ (values 0..32 share no partition bits).
        let bits: Vec<u32> = (0..5).collect();
        let masks = ballot_match(&r, &s, &bits, u32::MAX);
        for (lane, &mask) in masks.iter().enumerate() {
            // s[lane] = lane^1 equals exactly r[lane^1].
            assert_eq!(mask, 1 << (lane ^ 1), "lane {lane}");
        }
    }

    #[test]
    fn ballot_match_respects_partition_bits() {
        // All values share high bits (same partition); only bits 0..2 vary.
        let r = lanes_from_fn(|i| 0xABCD_0000 | (i as u32 % 8));
        let s = lanes_from_fn(|i| 0xABCD_0000 | ((i as u32 + 1) % 8));
        let masks = ballot_match(&r, &s, &[0, 1, 2], u32::MAX);
        for (lane, &mask) in masks.iter().enumerate() {
            let want = (0..WARP_SIZE).filter(|&j| r[j] == s[lane]).fold(0u32, |m, j| m | (1 << j));
            assert_eq!(mask, want, "lane {lane}");
        }
    }

    #[test]
    fn ballot_match_honors_validity_mask() {
        let r = lanes_from_fn(|i| i as u32 % 4);
        let s = lanes_from_fn(|_| 0u32);
        // Only the first 4 r lanes hold real data.
        let masks = ballot_match(&r, &s, &[0, 1], 0b1111);
        for (lane, &mask) in masks.iter().enumerate() {
            assert_eq!(mask, 0b0001, "lane {lane}"); // r[0] == 0 only
        }
    }

    #[test]
    fn ballot_match_untested_bits_are_ignored() {
        // Values differ in bit 7, but we only test bits 0..1 → they "match".
        let r = lanes_from_fn(|_| 0b1000_0000u32);
        let s = lanes_from_fn(|_| 0b0000_0000u32);
        let masks = ballot_match(&r, &s, &[0, 1], u32::MAX);
        assert_eq!(masks[0], u32::MAX);
    }
}
