//! An execution-driven model of a discrete CUDA-class GPU.
//!
//! This crate is the substrate beneath the join algorithms in `hcj-core`.
//! It does **not** emulate an instruction set; instead it provides:
//!
//! * [`DeviceSpec`] — the physical parameters the paper's results depend on
//!   (shared-memory size, device-memory capacity and bandwidth, PCIe
//!   bandwidth, SM count, warp width, atomic throughput), with presets for
//!   the paper's GTX 1080 and a V100;
//! * [`DeviceMemory`] / [`DeviceBuffer`] — typed device allocations with
//!   strict capacity accounting, so out-of-memory is a real, observable
//!   condition that drives the out-of-GPU execution strategies;
//! * [`SharedMemLayout`] — a per-thread-block shared-memory budget; kernel
//!   configurations that exceed the block's shared memory fail loudly,
//!   which is what bounds the partitioning fanout (paper §III-A);
//! * [`warp`] — lockstep 32-lane warp primitives (`ballot`, `shfl`,
//!   `match_bits`) that the ballot-based nested-loop join (paper Listing 1)
//!   actually executes;
//! * [`KernelCost`] — the roofline-style cost model converting a kernel's
//!   observed memory traffic (coalesced bytes, random transactions, shared
//!   accesses, atomics) into simulated execution time;
//! * [`Gpu`] + [`Stream`] / [`GpuEvent`] — CUDA-like streams, events and the
//!   two DMA copy engines, mapped onto `hcj-sim` resources so that
//!   transfers and kernels overlap exactly as the hardware allows;
//! * [`uva`] / [`unified`] — models of zero-copy (UVA) access and Unified
//!   Memory page migration, used by the paper's Figure 21–22 comparisons.
//!
//! Everything a kernel computes is computed for real on host-side buffers;
//! the model only decides how long it took.

#![warn(missing_docs)]

pub mod cost;
pub mod counters;
pub mod error;
pub mod faults;
pub mod interconnect;
pub mod memory;
pub mod shared;
pub mod spec;
pub mod stream;
pub mod unified;
pub mod uva;
pub mod warp;

pub use cost::KernelCost;
pub use counters::{
    CacheCounters, CounterRollup, CounterSet, KernelStats, LaunchShape, TransferStats,
};
pub use error::{ErrorClass, JoinError};
pub use faults::{
    DeviceFault, FaultConfig, FaultEvent, FaultEventKind, FaultKind, FaultLog, FaultPlan,
    FaultSite, FaultSummary, RetryPolicy,
};
pub use interconnect::InterconnectLink;
pub use memory::{DeviceBuffer, DeviceMemory, OutOfDeviceMemory, Reservation};
pub use shared::{SharedMemLayout, SharedMemOverflow};
pub use spec::DeviceSpec;
pub use stream::{Gpu, GpuEvent, Retried, Stream, TransferKind};
pub use unified::UnifiedMemory;
pub use uva::UvaAccessPattern;

/// Warp width on every CUDA-capable device this crate models.
pub const WARP_SIZE: usize = 32;

/// Memory transaction (sector) granularity in bytes: the unit a random
/// access pays for even when it uses only a few bytes of it.
pub const SECTOR_BYTES: u64 = 32;
