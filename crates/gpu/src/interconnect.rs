//! Modeled inter-device interconnect for cross-device exchange.
//!
//! When a partitioned join spans devices, non-local partitions are shuffled
//! from the device that staged them to the device that owns them. Discrete
//! GPUs in this model have no NVLink: a peer copy is a staged
//! PCIe-to-PCIe hop through host memory, so a link's bandwidth is bounded
//! by the slower endpoint's PCIe bandwidth and every copy pays both
//! endpoints' launch/setup overheads. The exchange executor charges every
//! shuffled partition through [`InterconnectLink::transfer_seconds`] and
//! records the same bytes on both endpoints' counter sets
//! ([`crate::CounterSet::record_exchange`]), which is how exchange traffic
//! becomes visible per direction in `repro --profile` output.

use crate::spec::DeviceSpec;

/// One directed inter-device link, derived from the two endpoint specs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InterconnectLink {
    /// Sustained link bandwidth, bytes/second: the staged peer copy is
    /// bounded by the slower of the two endpoints' PCIe links.
    pub bandwidth: f64,
    /// Fixed per-copy latency, seconds: both endpoints' launch overheads
    /// (source D2H issue + destination H2D issue through the host bounce
    /// buffer).
    pub latency_s: f64,
}

impl InterconnectLink {
    /// The link between `src` and `dst`, from their device specs.
    pub fn between(src: &DeviceSpec, dst: &DeviceSpec) -> InterconnectLink {
        InterconnectLink {
            bandwidth: src.pcie_bandwidth.min(dst.pcie_bandwidth),
            latency_s: src.launch_overhead_s + dst.launch_overhead_s,
        }
    }

    /// Seconds to move `bytes` payload bytes over this link (one staged
    /// copy: fixed latency plus serialized bandwidth time). Zero-byte
    /// shuffles are free — no copy is issued for an empty partition.
    pub fn transfer_seconds(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            0.0
        } else {
            self.latency_s + bytes as f64 / self.bandwidth
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_is_bounded_by_the_slower_endpoint() {
        let slow = DeviceSpec::gtx1080(); // 12 GB/s PCIe
        let fast = DeviceSpec::v100(); // faster PCIe
        let link = InterconnectLink::between(&slow, &fast);
        assert_eq!(link.bandwidth, slow.pcie_bandwidth.min(fast.pcie_bandwidth));
        // Symmetric bandwidth, both directions pay the same serialization.
        let back = InterconnectLink::between(&fast, &slow);
        assert_eq!(link.bandwidth, back.bandwidth);
    }

    #[test]
    fn transfer_time_is_latency_plus_serialization_and_empty_is_free() {
        let spec = DeviceSpec::gtx1080();
        let link = InterconnectLink::between(&spec, &spec);
        assert_eq!(link.transfer_seconds(0), 0.0);
        let t = link.transfer_seconds(1 << 20);
        let expect = 2.0 * spec.launch_overhead_s + (1u64 << 20) as f64 / spec.pcie_bandwidth;
        assert!((t - expect).abs() < 1e-15, "t={t} expect={expect}");
        assert!(link.transfer_seconds(1 << 21) > t, "monotone in bytes");
    }
}
