//! CUDA-like streams, events and DMA copy engines over the sim engine.
//!
//! A [`Gpu`] registers three `hcj-sim` resources: the compute engine (one
//! grid at a time — the paper's kernels each saturate the device) and the
//! two DMA copy engines, one per PCIe direction, which is what lets input
//! transfers, kernel execution and result write-back all overlap
//! (paper §IV-A/§IV-C, Figs. 2–4).
//!
//! [`Stream`] reproduces CUDA stream semantics: operations issued to the
//! same stream serialize in issue order; operations in different streams
//! overlap unless ordered through a recorded [`GpuEvent`] that another
//! stream waits on.

use hcj_sim::{Op, OpId, ResourceId, Schedule, Sim, SimTime};

use crate::cost::KernelCost;
use crate::counters::{CounterHandle, CounterSet, LaunchShape};
use crate::error::JoinError;
use crate::faults::{
    DeviceFault, FaultConfig, FaultEventKind, FaultHandle, FaultKind, FaultLog, FaultPlan,
    FaultSite, OpVerdict, RetryPolicy,
};
use crate::memory::DeviceMemory;
use crate::spec::DeviceSpec;

/// Traffic-class tag carried on kernel sim spans, for timeline analysis.
pub const CLASS_KERNEL: u32 = 1;
/// Traffic-class tag for host→device transfer spans.
pub const CLASS_H2D: u32 = 2;
/// Traffic-class tag for device→host transfer spans.
pub const CLASS_D2H: u32 = 3;
/// Partial work charged by an op that faulted mid-flight.
pub const CLASS_FAULT: u32 = 4;
/// Virtual-time backoff before a retry of a faulted op.
pub const CLASS_RETRY: u32 = 5;

/// Whether a host buffer participating in a transfer is pinned
/// (page-locked) or pageable. Pageable transfers bounce through a driver
/// staging buffer and achieve roughly half the bandwidth, which is why the
/// co-processing strategy stores partitions in pinned memory (paper §IV-B).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransferKind {
    /// Page-locked host memory: full PCIe bandwidth.
    Pinned,
    /// Pageable host memory: staged through the driver at reduced rate.
    Pageable,
}

/// A modeled GPU: spec + device-memory accountant + sim resources.
pub struct Gpu {
    /// Physical parameters of the modeled device.
    pub spec: DeviceSpec,
    /// The device-memory accountant (strict capacity, typed OOM).
    pub mem: DeviceMemory,
    compute: ResourceId,
    dma_h2d: ResourceId,
    dma_d2h: ResourceId,
    /// Armed fault plan, shared with `mem` so allocation-time shrink
    /// events draw from the same deterministic stream. `None` = the
    /// fault layer is compiled in but inert (zero overhead on the op
    /// stream, identical schedules).
    faults: Option<FaultHandle>,
    /// Always-on hardware counters, updated once per successfully issued
    /// logical op (see [`crate::counters`]). Collection is a map update
    /// per op; only *surfacing* is gated behind `--profile`.
    counters: CounterHandle,
}

impl Gpu {
    /// Register the device's resources with `sim`.
    pub fn new(sim: &mut Sim, spec: DeviceSpec) -> Self {
        let mem = DeviceMemory::new(spec.device_mem_bytes);
        let compute = sim.fifo_resource(format!("{} compute", spec.name), 1.0, 1);
        let dma_h2d = sim.fifo_resource(format!("{} dma-h2d", spec.name), spec.pcie_bandwidth, 1);
        let dma_d2h = sim.fifo_resource(format!("{} dma-d2h", spec.name), spec.pcie_bandwidth, 1);
        let counters = CounterSet::handle(&spec);
        Gpu { spec, mem, compute, dma_h2d, dma_d2h, faults: None, counters }
    }

    /// Arm deterministic fault injection for this device (and its memory
    /// accountant). Every subsequently issued op consults the seeded plan
    /// in issue order.
    pub fn arm_faults(&mut self, cfg: FaultConfig) {
        let plan = FaultPlan::handle(cfg);
        self.mem.arm_faults(FaultHandle::clone(&plan));
        self.faults = Some(plan);
    }

    /// The armed fault plan, if any (shared with [`DeviceMemory`]).
    pub fn fault_plan(&self) -> Option<&FaultHandle> {
        self.faults.as_ref()
    }

    /// Has a sticky device-lost fault fired?
    pub fn device_lost(&self) -> bool {
        self.faults.as_ref().is_some_and(|p| p.lock().expect("fault plan poisoned").device_lost())
    }

    /// The fault log resolved against a solved schedule: every injection,
    /// retry and shrink stamped with virtual time. Empty when unarmed.
    pub fn fault_log(&self, schedule: &Schedule) -> FaultLog {
        match &self.faults {
            None => FaultLog::default(),
            Some(p) => {
                FaultLog::resolve(p.lock().expect("fault plan poisoned").records(), schedule)
            }
        }
    }

    /// A snapshot of the hardware counters accumulated so far.
    pub fn counters(&self) -> CounterSet {
        self.counters.lock().expect("counter set poisoned").clone()
    }

    /// The shared counter handle (e.g. to keep after the `Gpu` is gone).
    pub fn counter_handle(&self) -> CounterHandle {
        CounterHandle::clone(&self.counters)
    }

    /// Record one successfully issued kernel into the counters.
    fn note_kernel(&self, op: OpId, label: &str, cost: &KernelCost, shape: LaunchShape, secs: f64) {
        self.counters.lock().expect("counter set poisoned").record_kernel(
            Some(op),
            label,
            cost,
            shape,
            secs,
            &self.spec,
        );
    }

    /// Record one successfully completed transfer into the counters.
    fn note_transfer(&self, op: OpId, to_device: bool, bytes: u64, kind: TransferKind) {
        let seconds = bytes as f64 * self.pageable_slowdown(kind) / self.spec.pcie_bandwidth;
        self.counters.lock().expect("counter set poisoned").record_transfer(
            Some(op),
            to_device,
            bytes,
            kind == TransferKind::Pageable,
            seconds,
        );
    }

    /// A fresh stream (no prior work).
    pub fn stream(&self) -> Stream {
        Stream { last: None, waits: Vec::new() }
    }

    /// The compute resource id (for timeline queries).
    pub fn compute_resource(&self) -> ResourceId {
        self.compute
    }

    /// The host→device DMA engine resource id.
    pub fn h2d_resource(&self) -> ResourceId {
        self.dma_h2d
    }

    /// The device→host DMA engine resource id.
    pub fn d2h_resource(&self) -> ResourceId {
        self.dma_d2h
    }

    /// Launch a kernel on `stream`: executes for `cost.time(spec)` plus the
    /// launch overhead, after all stream-order and waited-event deps.
    /// `Err` only when an armed fault plan injects a fault into this op.
    pub fn kernel(
        &self,
        sim: &mut Sim,
        stream: &mut Stream,
        label: impl Into<String>,
        cost: &KernelCost,
    ) -> Result<OpId, JoinError> {
        self.kernel_costed(sim, stream, label, cost.time(&self.spec), cost, LaunchShape::UNSHAPED)
    }

    /// [`kernel`](Self::kernel) with full counter attribution: `seconds`
    /// is the externally computed duration (e.g. a cost scaled by a
    /// load-imbalance factor), `cost` the traffic behind it, and `shape`
    /// the grid geometry for occupancy accounting.
    pub fn kernel_costed(
        &self,
        sim: &mut Sim,
        stream: &mut Stream,
        label: impl Into<String>,
        seconds: f64,
        cost: &KernelCost,
        shape: LaunchShape,
    ) -> Result<OpId, JoinError> {
        let label = label.into();
        let op =
            self.launch(sim, stream, label.clone(), self.compute, CLASS_KERNEL, seconds, true)?;
        self.note_kernel(op, &label, cost, shape, seconds);
        Ok(op)
    }

    /// Launch a kernel whose duration was computed externally (e.g. a cost
    /// already scaled by a load-imbalance factor). `seconds` excludes the
    /// launch overhead, which is added as on a normal launch.
    pub fn kernel_raw(
        &self,
        sim: &mut Sim,
        stream: &mut Stream,
        label: impl Into<String>,
        seconds: f64,
    ) -> Result<OpId, JoinError> {
        self.kernel_costed(sim, stream, label, seconds, &KernelCost::ZERO, LaunchShape::UNSHAPED)
    }

    /// Asynchronous host→device copy of `bytes` on `stream`.
    pub fn copy_h2d(
        &self,
        sim: &mut Sim,
        stream: &mut Stream,
        label: impl Into<String>,
        bytes: u64,
        kind: TransferKind,
    ) -> Result<OpId, JoinError> {
        let op = self.launch(
            sim,
            stream,
            label.into(),
            self.dma_h2d,
            CLASS_H2D,
            bytes as f64 * self.pageable_slowdown(kind),
            false,
        )?;
        self.note_transfer(op, true, bytes, kind);
        Ok(op)
    }

    /// Asynchronous device→host copy of `bytes` on `stream`.
    pub fn copy_d2h(
        &self,
        sim: &mut Sim,
        stream: &mut Stream,
        label: impl Into<String>,
        bytes: u64,
        kind: TransferKind,
    ) -> Result<OpId, JoinError> {
        let op = self.launch(
            sim,
            stream,
            label.into(),
            self.dma_d2h,
            CLASS_D2H,
            bytes as f64 * self.pageable_slowdown(kind),
            false,
        )?;
        self.note_transfer(op, false, bytes, kind);
        Ok(op)
    }

    /// [`kernel`](Self::kernel) with bounded retry: transient faults are
    /// retried after an exponential virtual-time backoff charged to the
    /// stream; device-lost and retry exhaustion propagate.
    pub fn kernel_retrying(
        &self,
        sim: &mut Sim,
        stream: &mut Stream,
        label: &str,
        cost: &KernelCost,
        policy: &RetryPolicy,
    ) -> Result<Retried, JoinError> {
        let work = cost.time(&self.spec);
        self.kernel_costed_retrying(sim, stream, label, work, cost, LaunchShape::UNSHAPED, policy)
    }

    /// [`kernel_raw`](Self::kernel_raw) with bounded retry.
    pub fn kernel_raw_retrying(
        &self,
        sim: &mut Sim,
        stream: &mut Stream,
        label: &str,
        seconds: f64,
        policy: &RetryPolicy,
    ) -> Result<Retried, JoinError> {
        let zero = KernelCost::ZERO;
        self.kernel_costed_retrying(
            sim,
            stream,
            label,
            seconds,
            &zero,
            LaunchShape::UNSHAPED,
            policy,
        )
    }

    /// [`kernel_costed`](Self::kernel_costed) with bounded retry. Counters
    /// record the launch once, on overall success — faulted attempts and
    /// backoffs charge schedule time but never count as kernel work, which
    /// keeps counters chaos-invariant for runs that complete.
    #[allow(clippy::too_many_arguments)]
    pub fn kernel_costed_retrying(
        &self,
        sim: &mut Sim,
        stream: &mut Stream,
        label: &str,
        seconds: f64,
        cost: &KernelCost,
        shape: LaunchShape,
        policy: &RetryPolicy,
    ) -> Result<Retried, JoinError> {
        let r = self.with_retries(
            sim,
            stream,
            label,
            FaultSite::Kernel,
            policy,
            |g, sim, stream, l| g.launch(sim, stream, l, g.compute, CLASS_KERNEL, seconds, true),
        )?;
        self.note_kernel(r.op, label, cost, shape, seconds);
        Ok(r)
    }

    /// [`copy_h2d`](Self::copy_h2d) with bounded retry.
    pub fn copy_h2d_retrying(
        &self,
        sim: &mut Sim,
        stream: &mut Stream,
        label: &str,
        bytes: u64,
        kind: TransferKind,
        policy: &RetryPolicy,
    ) -> Result<Retried, JoinError> {
        let work = bytes as f64 * self.pageable_slowdown(kind);
        let r =
            self.with_retries(sim, stream, label, FaultSite::H2D, policy, |g, sim, stream, l| {
                g.launch(sim, stream, l, g.dma_h2d, CLASS_H2D, work, false)
            })?;
        self.note_transfer(r.op, true, bytes, kind);
        Ok(r)
    }

    /// [`copy_d2h`](Self::copy_d2h) with bounded retry.
    pub fn copy_d2h_retrying(
        &self,
        sim: &mut Sim,
        stream: &mut Stream,
        label: &str,
        bytes: u64,
        kind: TransferKind,
        policy: &RetryPolicy,
    ) -> Result<Retried, JoinError> {
        let work = bytes as f64 * self.pageable_slowdown(kind);
        let r =
            self.with_retries(sim, stream, label, FaultSite::D2H, policy, |g, sim, stream, l| {
                g.launch(sim, stream, l, g.dma_d2h, CLASS_D2H, work, false)
            })?;
        self.note_transfer(r.op, false, bytes, kind);
        Ok(r)
    }

    fn pageable_slowdown(&self, kind: TransferKind) -> f64 {
        // The DMA resource rate is the pinned bandwidth; pageable copies
        // are modeled as proportionally more work on the same engine.
        match kind {
            TransferKind::Pinned => 1.0,
            TransferKind::Pageable => self.spec.pcie_bandwidth / self.spec.pcie_pageable_bandwidth,
        }
    }

    /// Issue one op, consulting the fault plan (if armed) exactly once.
    /// Faulted ops still charge a partial amount of work on the resource
    /// (tagged [`CLASS_FAULT`]), and the failed attempt stays in stream
    /// order so a retry serializes after it.
    #[allow(clippy::too_many_arguments)]
    fn launch(
        &self,
        sim: &mut Sim,
        stream: &mut Stream,
        label: String,
        resource: ResourceId,
        class: u32,
        work: f64,
        launch_overhead: bool,
    ) -> Result<OpId, JoinError> {
        let site = match class {
            CLASS_H2D => FaultSite::H2D,
            CLASS_D2H => FaultSite::D2H,
            _ => FaultSite::Kernel,
        };
        let pre = if launch_overhead {
            SimTime::from_secs_f64(self.spec.launch_overhead_s)
        } else {
            SimTime::ZERO
        };
        let issue = |sim: &mut Sim, stream: &mut Stream, label: String, work: f64, class: u32| {
            let op = Op::new(resource, work)
                .label(label)
                .class(class)
                .pre_latency(pre)
                .after_all(stream.take_deps());
            let id = sim.op(op);
            stream.last = Some(id);
            id
        };
        let Some(plan) = &self.faults else {
            return Ok(issue(sim, stream, label, work, class));
        };
        let mut plan = plan.lock().expect("fault plan poisoned");
        match plan.verdict(site) {
            OpVerdict::Run => Ok(issue(sim, stream, label, work, class)),
            OpVerdict::Stall(factor) => {
                let id = issue(sim, stream, label.clone(), work * factor, class);
                plan.record(site, FaultEventKind::Stall, label, Some(id));
                Ok(id)
            }
            OpVerdict::Lost => {
                // The device is already gone: nothing to charge, nothing
                // runs. (The op that killed the device was recorded.)
                Err(JoinError::Device(DeviceFault { site, kind: FaultKind::DeviceLost, label }))
            }
            OpVerdict::Fault(kind) => {
                let fraction = plan.partial_fraction();
                let id =
                    issue(sim, stream, format!("{label} [fault]"), work * fraction, CLASS_FAULT);
                let event = match kind {
                    FaultKind::Transient => FaultEventKind::Transient,
                    FaultKind::DeviceLost => FaultEventKind::DeviceLost,
                };
                plan.record(site, event, label.clone(), Some(id));
                Err(JoinError::Device(DeviceFault { site, kind, label }))
            }
        }
    }

    /// Bounded-retry driver shared by the `*_retrying` variants. Each
    /// retry is preceded by a [`CLASS_RETRY`] virtual-time backoff op in
    /// stream order, so recovery costs show up on the timeline.
    fn with_retries(
        &self,
        sim: &mut Sim,
        stream: &mut Stream,
        label: &str,
        site: FaultSite,
        policy: &RetryPolicy,
        attempt: impl Fn(&Gpu, &mut Sim, &mut Stream, String) -> Result<OpId, JoinError>,
    ) -> Result<Retried, JoinError> {
        let mut retries = 0u32;
        loop {
            let lbl =
                if retries == 0 { label.to_string() } else { format!("{label} [retry {retries}]") };
            match attempt(self, sim, stream, lbl) {
                Ok(op) => return Ok(Retried { op, retries }),
                Err(e) if e.is_transient() && retries + 1 < policy.max_attempts => {
                    retries += 1;
                    let backoff = Op::latency(policy.delay(retries))
                        .label(format!("{label} [backoff {retries}]"))
                        .class(CLASS_RETRY)
                        .after_all(stream.take_deps());
                    let id = sim.op(backoff);
                    stream.last = Some(id);
                    if let Some(plan) = &self.faults {
                        plan.lock().expect("fault plan poisoned").record(
                            site,
                            FaultEventKind::Retry { attempt: retries },
                            label.to_string(),
                            Some(id),
                        );
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// The outcome of a successful `*_retrying` op: the final op id plus how
/// many faulted attempts preceded it.
#[derive(Clone, Copy, Debug)]
pub struct Retried {
    /// The op that finally succeeded.
    pub op: OpId,
    /// Faulted attempts before it (0 = first try succeeded).
    pub retries: u32,
}

/// An ordered queue of GPU operations (CUDA stream semantics).
#[derive(Clone, Debug, Default)]
pub struct Stream {
    last: Option<OpId>,
    waits: Vec<OpId>,
}

impl Stream {
    /// Record an event capturing everything issued to this stream so far.
    /// Waiting on the event (from any stream) orders after that work.
    pub fn record_event(&self) -> GpuEvent {
        GpuEvent { after: self.last }
    }

    /// Make the *next* operation issued to this stream wait for `event`.
    pub fn wait_event(&mut self, event: &GpuEvent) {
        if let Some(op) = event.after {
            self.waits.push(op);
        }
    }

    /// Make the next operation wait for an arbitrary sim op (used to tie
    /// GPU work to host-side phases like CPU partitioning).
    pub fn wait_op(&mut self, op: OpId) {
        self.waits.push(op);
    }

    /// The op id of the last operation issued to this stream, if any.
    /// Depending on it is equivalent to `cudaStreamSynchronize`.
    pub fn last_op(&self) -> Option<OpId> {
        self.last
    }

    fn take_deps(&mut self) -> Vec<OpId> {
        let mut deps = std::mem::take(&mut self.waits);
        if let Some(last) = self.last {
            deps.push(last);
        }
        deps
    }
}

/// A recorded point in a stream's history (CUDA event).
#[derive(Clone, Copy, Debug)]
pub struct GpuEvent {
    after: Option<OpId>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu(sim: &mut Sim) -> Gpu {
        Gpu::new(sim, DeviceSpec::gtx1080())
    }

    #[test]
    fn same_stream_serializes() {
        let mut sim = Sim::new();
        let g = gpu(&mut sim);
        let mut s = g.stream();
        let a = g.copy_h2d(&mut sim, &mut s, "copy", 12_000_000_000, TransferKind::Pinned).unwrap();
        let k = g.kernel(&mut sim, &mut s, "join", &KernelCost::coalesced(320_000_000)).unwrap();
        let sched = sim.run();
        // 12 GB at 12 GB/s = 1 s; kernel starts after.
        assert_eq!(sched.finish(a).as_secs_f64(), 1.0);
        assert_eq!(sched.start(k), sched.finish(a));
    }

    #[test]
    fn different_streams_overlap() {
        let mut sim = Sim::new();
        let g = gpu(&mut sim);
        let mut copy_stream = g.stream();
        let mut exec_stream = g.stream();
        let c = g
            .copy_h2d(&mut sim, &mut copy_stream, "copy", 12_000_000_000, TransferKind::Pinned)
            .unwrap();
        let k = g
            .kernel(&mut sim, &mut exec_stream, "join", &KernelCost::coalesced(320_000_000_000))
            .unwrap();
        let sched = sim.run();
        // Both start at t≈0: the copy does not wait for the kernel.
        assert_eq!(sched.start(c), SimTime::ZERO);
        assert_eq!(sched.start(k), SimTime::ZERO);
        let _ = (c, k);
    }

    #[test]
    fn events_order_across_streams() {
        let mut sim = Sim::new();
        let g = gpu(&mut sim);
        let mut copy_stream = g.stream();
        let mut exec_stream = g.stream();
        let c = g
            .copy_h2d(&mut sim, &mut copy_stream, "copy", 1_200_000_000, TransferKind::Pinned)
            .unwrap();
        let ev = copy_stream.record_event();
        exec_stream.wait_event(&ev);
        let k = g.kernel(&mut sim, &mut exec_stream, "join", &KernelCost::coalesced(1)).unwrap();
        let sched = sim.run();
        assert!(sched.start(k) >= sched.finish(c));
    }

    #[test]
    fn h2d_and_d2h_use_separate_engines() {
        let mut sim = Sim::new();
        let g = gpu(&mut sim);
        let mut up = g.stream();
        let mut down = g.stream();
        let a = g.copy_h2d(&mut sim, &mut up, "in", 12_000_000_000, TransferKind::Pinned).unwrap();
        let b =
            g.copy_d2h(&mut sim, &mut down, "out", 12_000_000_000, TransferKind::Pinned).unwrap();
        let sched = sim.run();
        // Full-duplex: both 1 s transfers complete at t = 1 s.
        assert_eq!(sched.finish(a).as_secs_f64(), 1.0);
        assert_eq!(sched.finish(b).as_secs_f64(), 1.0);
    }

    #[test]
    fn two_h2d_copies_share_one_engine() {
        let mut sim = Sim::new();
        let g = gpu(&mut sim);
        let mut s1 = g.stream();
        let mut s2 = g.stream();
        let a = g.copy_h2d(&mut sim, &mut s1, "a", 12_000_000_000, TransferKind::Pinned).unwrap();
        let b = g.copy_h2d(&mut sim, &mut s2, "b", 12_000_000_000, TransferKind::Pinned).unwrap();
        let sched = sim.run();
        // Serialized on the single H2D engine: 1 s then 1 s.
        assert_eq!(sched.finish(a).as_secs_f64(), 1.0);
        assert_eq!(sched.finish(b).as_secs_f64(), 2.0);
    }

    #[test]
    fn pageable_is_slower_than_pinned() {
        let mut sim = Sim::new();
        let g = gpu(&mut sim);
        let mut s = g.stream();
        let a = g
            .copy_h2d(&mut sim, &mut s, "pageable", 6_000_000_000, TransferKind::Pageable)
            .unwrap();
        let sched = sim.run();
        // 6 GB at 6 GB/s pageable = 1 s.
        assert_eq!(sched.finish(a).as_secs_f64(), 1.0);
    }

    #[test]
    fn kernel_includes_launch_overhead() {
        let mut sim = Sim::new();
        let g = gpu(&mut sim);
        let mut s = g.stream();
        let k = g.kernel(&mut sim, &mut s, "empty", &KernelCost::ZERO).unwrap();
        let sched = sim.run();
        assert_eq!(sched.finish(k).as_secs_f64(), g.spec.launch_overhead_s);
    }

    #[test]
    fn armed_but_disabled_faults_change_nothing() {
        // The CI determinism check in miniature: arming the fault layer
        // with zero probabilities must produce the identical schedule.
        let run = |arm: bool| {
            let mut sim = Sim::new();
            let mut g = gpu(&mut sim);
            if arm {
                g.arm_faults(crate::faults::FaultConfig::disabled(7));
            }
            let mut s = g.stream();
            g.copy_h2d(&mut sim, &mut s, "copy", 12_000_000_000, TransferKind::Pinned).unwrap();
            g.kernel(&mut sim, &mut s, "join", &KernelCost::coalesced(320_000_000)).unwrap();
            let sched = sim.run();
            (sched.makespan(), sched.spans().len())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn transfer_fault_charges_partial_work_and_errors() {
        let cfg = crate::faults::FaultConfig {
            transfer_fault_p: 1.0,
            ..crate::faults::FaultConfig::disabled(1)
        };
        let mut sim = Sim::new();
        let mut g = gpu(&mut sim);
        g.arm_faults(cfg);
        let mut s = g.stream();
        let err = g
            .copy_h2d(&mut sim, &mut s, "h2d r", 12_000_000_000, TransferKind::Pinned)
            .unwrap_err();
        assert!(err.is_transient());
        assert!(err.to_string().contains("transient h2d fault"));
        let sched = sim.run();
        // The failed attempt still charged partial time on the DMA engine.
        assert_eq!(sched.spans().len(), 1);
        let span = &sched.spans()[0];
        assert_eq!(span.class, CLASS_FAULT);
        assert!(span.label.contains("[fault]"));
        let t = (span.end - span.start).as_secs_f64();
        assert!(t > 0.0 && t < 1.0, "partial work must be a strict fraction of the 1 s copy");
        let log = g.fault_log(&sched);
        assert_eq!(log.summary().transfer_faults, 1);
        assert!(log.events[0].at.is_some());
    }

    #[test]
    fn retrying_copy_survives_transient_faults_with_backoff() {
        // Fault probability 1 on the first draws, then... still 1: with
        // max_attempts 4 the op fails. Use a seed-dependent plan instead:
        // moderate probability so some attempt succeeds.
        let cfg = crate::faults::FaultConfig {
            transfer_fault_p: 0.5,
            ..crate::faults::FaultConfig::disabled(3)
        };
        let mut sim = Sim::new();
        let mut g = gpu(&mut sim);
        g.arm_faults(cfg);
        let mut s = g.stream();
        let policy = RetryPolicy::default();
        let mut recovered_retries = 0;
        let mut exhausted = 0;
        for i in 0..32 {
            match g.copy_h2d_retrying(
                &mut sim,
                &mut s,
                &format!("h2d chunk{i}"),
                1_200_000,
                TransferKind::Pinned,
                &policy,
            ) {
                Ok(r) => recovered_retries += r.retries,
                // A chain that exhausts its 4 attempts is still a *typed*
                // transient error, never a panic.
                Err(e) => {
                    assert!(e.is_transient());
                    exhausted += 1;
                }
            }
        }
        assert!(recovered_retries > 0, "seed 3 at p=0.5 must recover via retry at least once");
        let sched = sim.run();
        let log = g.fault_log(&sched);
        // The log counts every backoff, including those of exhausted chains.
        assert!(log.summary().retries >= recovered_retries);
        assert_eq!(
            log.summary().retries,
            recovered_retries + 3 * exhausted,
            "an exhausted chain backs off exactly max_attempts-1 times"
        );
        // Backoff ops appear on the timeline between attempts.
        assert!(sched.spans().iter().any(|sp| sp.class == CLASS_RETRY));
        // Failed attempts and their retries serialize in stream order.
        assert!(sched.spans().iter().any(|sp| sp.label.contains("[retry ")));
    }

    #[test]
    fn device_lost_is_sticky_across_ops_and_streams() {
        let cfg = crate::faults::FaultConfig {
            kernel_fault_p: 1.0,
            device_lost_p: 1.0,
            ..crate::faults::FaultConfig::disabled(2)
        };
        let mut sim = Sim::new();
        let mut g = gpu(&mut sim);
        g.arm_faults(cfg);
        let mut s = g.stream();
        let err =
            g.kernel(&mut sim, &mut s, "join p0", &KernelCost::coalesced(1 << 20)).unwrap_err();
        assert!(err.is_device_lost());
        assert!(g.device_lost());
        // Every subsequent op fails without charging new work...
        let mut other = g.stream();
        let before = sim.op_count();
        let err2 =
            g.copy_h2d(&mut sim, &mut other, "h2d", 1_000, TransferKind::Pinned).unwrap_err();
        assert!(err2.is_device_lost());
        assert_eq!(sim.op_count(), before, "ops after device-lost must not be issued");
        // ...and retrying does not help (fatal, not transient).
        assert!(g
            .kernel_retrying(
                &mut sim,
                &mut s,
                "join p1",
                &KernelCost::coalesced(1),
                &RetryPolicy::default()
            )
            .unwrap_err()
            .is_device_lost());
    }

    #[test]
    fn stalls_inflate_charged_time_deterministically() {
        let cfg = crate::faults::FaultConfig {
            stall_p: 1.0,
            stall_factor: 4.0,
            ..crate::faults::FaultConfig::disabled(4)
        };
        let run = |arm: bool| {
            let mut sim = Sim::new();
            let mut g = gpu(&mut sim);
            if arm {
                g.arm_faults(cfg.clone());
            }
            let mut s = g.stream();
            let op = g
                .copy_h2d(&mut sim, &mut s, "h2d r", 12_000_000_000, TransferKind::Pinned)
                .unwrap();
            let sched = sim.run();
            (sched.finish(op).as_secs_f64(), g.fault_log(&sched).summary().stalls)
        };
        let (clean, stalls_clean) = run(false);
        let (stalled, stalls) = run(true);
        assert_eq!(clean, 1.0);
        assert_eq!(stalled, 4.0, "stall factor 4 must charge 4x the transfer time");
        assert_eq!((stalls_clean, stalls), (0, 1));
    }

    #[test]
    fn faulted_attempt_stays_in_stream_order() {
        // A faulted op's partial work must still serialize the stream: the
        // retry starts only after the failed attempt (plus backoff).
        let cfg = crate::faults::FaultConfig {
            transfer_fault_p: 0.9,
            ..crate::faults::FaultConfig::disabled(12)
        };
        let mut sim = Sim::new();
        let mut g = gpu(&mut sim);
        g.arm_faults(cfg);
        let mut s = g.stream();
        if let Ok(r) = g.copy_h2d_retrying(
            &mut sim,
            &mut s,
            "h2d r",
            1_200_000_000,
            TransferKind::Pinned,
            &RetryPolicy::default(),
        ) {
            let sched = sim.run();
            let final_start = sched.start(r.op);
            for sp in sched.spans() {
                if sp.label.contains("[fault]") || sp.label.contains("[backoff") {
                    assert!(sp.end <= final_start, "recovery work precedes the final attempt");
                }
            }
        }
    }

    #[test]
    fn counters_record_charged_work_at_launch_points() {
        let mut sim = Sim::new();
        let g = gpu(&mut sim);
        let mut s = g.stream();
        g.copy_h2d(&mut sim, &mut s, "h2d r", 1_000, TransferKind::Pinned).unwrap();
        g.copy_h2d(&mut sim, &mut s, "h2d s chunk0", 500, TransferKind::Pageable).unwrap();
        let cost = KernelCost::coalesced(3200);
        let shape =
            LaunchShape { blocks: 20, threads_per_block: 1024, shared_bytes_per_block: 1024 };
        g.kernel_costed(&mut sim, &mut s, "join chunk0", cost.time(&g.spec), &cost, shape).unwrap();
        g.copy_d2h(&mut sim, &mut s, "d2h rows chunk0", 64, TransferKind::Pinned).unwrap();
        let sched = sim.run();
        let counters = g.counters();
        assert_eq!(counters.h2d.bytes, 1_500);
        assert_eq!(counters.h2d.pageable_bytes, 500);
        assert_eq!(counters.d2h.bytes, 64);
        let join = counters.kernel("join chunk0").expect("kernel recorded");
        assert_eq!(join.launches, 1);
        assert_eq!(join.cost, cost);
        assert_eq!(join.occupancy, Some(1.0));
        // The counter timeline resolves against the solved schedule.
        let tl = counters.counter_timeline(&sched);
        let json = hcj_sim::TraceExporter::new().timeline_to_json(&tl);
        assert!(json.contains("h2d GB/s"));
        assert!(json.contains("occupancy"));
    }

    #[test]
    fn counters_skip_faulted_attempts_and_count_success_once() {
        // A retried transfer records its payload exactly once, no matter
        // how many faulted attempts preceded success: counters reflect
        // useful charged work, so they are chaos-invariant for completed
        // runs.
        let cfg = crate::faults::FaultConfig {
            transfer_fault_p: 0.9,
            ..crate::faults::FaultConfig::disabled(12)
        };
        let mut sim = Sim::new();
        let mut g = gpu(&mut sim);
        g.arm_faults(cfg);
        let mut s = g.stream();
        if let Ok(r) = g.copy_h2d_retrying(
            &mut sim,
            &mut s,
            "h2d r",
            1_200_000_000,
            TransferKind::Pinned,
            &RetryPolicy::default(),
        ) {
            let _ = r;
            let counters = g.counters();
            assert_eq!(counters.h2d.transfers, 1);
            assert_eq!(counters.h2d.bytes, 1_200_000_000);
        }
    }

    #[test]
    fn wait_op_ties_to_host_work() {
        let mut sim = Sim::new();
        let cpu = sim.fifo_resource("cpu", 1.0, 1);
        let part = sim.op(Op::new(cpu, 2.0).label("cpu-partition"));
        let g = gpu(&mut sim);
        let mut s = g.stream();
        s.wait_op(part);
        let c = g.copy_h2d(&mut sim, &mut s, "copy", 1, TransferKind::Pinned).unwrap();
        let sched = sim.run();
        assert!(sched.start(c) >= sched.finish(part));
    }
}
