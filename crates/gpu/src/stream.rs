//! CUDA-like streams, events and DMA copy engines over the sim engine.
//!
//! A [`Gpu`] registers three `hcj-sim` resources: the compute engine (one
//! grid at a time — the paper's kernels each saturate the device) and the
//! two DMA copy engines, one per PCIe direction, which is what lets input
//! transfers, kernel execution and result write-back all overlap
//! (paper §IV-A/§IV-C, Figs. 2–4).
//!
//! [`Stream`] reproduces CUDA stream semantics: operations issued to the
//! same stream serialize in issue order; operations in different streams
//! overlap unless ordered through a recorded [`GpuEvent`] that another
//! stream waits on.

use hcj_sim::{Op, OpId, ResourceId, Sim, SimTime};

use crate::cost::KernelCost;
use crate::memory::DeviceMemory;
use crate::spec::DeviceSpec;

/// Traffic-class tags carried on sim spans, for timeline analysis.
pub const CLASS_KERNEL: u32 = 1;
pub const CLASS_H2D: u32 = 2;
pub const CLASS_D2H: u32 = 3;

/// Whether a host buffer participating in a transfer is pinned
/// (page-locked) or pageable. Pageable transfers bounce through a driver
/// staging buffer and achieve roughly half the bandwidth, which is why the
/// co-processing strategy stores partitions in pinned memory (paper §IV-B).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransferKind {
    Pinned,
    Pageable,
}

/// A modeled GPU: spec + device-memory accountant + sim resources.
pub struct Gpu {
    pub spec: DeviceSpec,
    pub mem: DeviceMemory,
    compute: ResourceId,
    dma_h2d: ResourceId,
    dma_d2h: ResourceId,
}

impl Gpu {
    /// Register the device's resources with `sim`.
    pub fn new(sim: &mut Sim, spec: DeviceSpec) -> Self {
        let mem = DeviceMemory::new(spec.device_mem_bytes);
        let compute = sim.fifo_resource(format!("{} compute", spec.name), 1.0, 1);
        let dma_h2d = sim.fifo_resource(format!("{} dma-h2d", spec.name), spec.pcie_bandwidth, 1);
        let dma_d2h = sim.fifo_resource(format!("{} dma-d2h", spec.name), spec.pcie_bandwidth, 1);
        Gpu { spec, mem, compute, dma_h2d, dma_d2h }
    }

    /// A fresh stream (no prior work).
    pub fn stream(&self) -> Stream {
        Stream { last: None, waits: Vec::new() }
    }

    /// The compute resource id (for timeline queries).
    pub fn compute_resource(&self) -> ResourceId {
        self.compute
    }

    /// The host→device DMA engine resource id.
    pub fn h2d_resource(&self) -> ResourceId {
        self.dma_h2d
    }

    /// The device→host DMA engine resource id.
    pub fn d2h_resource(&self) -> ResourceId {
        self.dma_d2h
    }

    /// Launch a kernel on `stream`: executes for `cost.time(spec)` plus the
    /// launch overhead, after all stream-order and waited-event deps.
    pub fn kernel(
        &self,
        sim: &mut Sim,
        stream: &mut Stream,
        label: impl Into<String>,
        cost: &KernelCost,
    ) -> OpId {
        let work = cost.time(&self.spec);
        let op = Op::new(self.compute, work)
            .label(label)
            .class(CLASS_KERNEL)
            .pre_latency(SimTime::from_secs_f64(self.spec.launch_overhead_s))
            .after_all(stream.take_deps());
        let id = sim.op(op);
        stream.last = Some(id);
        id
    }

    /// Launch a kernel whose duration was computed externally (e.g. a cost
    /// already scaled by a load-imbalance factor). `seconds` excludes the
    /// launch overhead, which is added as on a normal launch.
    pub fn kernel_raw(
        &self,
        sim: &mut Sim,
        stream: &mut Stream,
        label: impl Into<String>,
        seconds: f64,
    ) -> OpId {
        let op = Op::new(self.compute, seconds)
            .label(label)
            .class(CLASS_KERNEL)
            .pre_latency(SimTime::from_secs_f64(self.spec.launch_overhead_s))
            .after_all(stream.take_deps());
        let id = sim.op(op);
        stream.last = Some(id);
        id
    }

    /// Asynchronous host→device copy of `bytes` on `stream`.
    pub fn copy_h2d(
        &self,
        sim: &mut Sim,
        stream: &mut Stream,
        label: impl Into<String>,
        bytes: u64,
        kind: TransferKind,
    ) -> OpId {
        self.copy(sim, stream, label, bytes, kind, self.dma_h2d, CLASS_H2D)
    }

    /// Asynchronous device→host copy of `bytes` on `stream`.
    pub fn copy_d2h(
        &self,
        sim: &mut Sim,
        stream: &mut Stream,
        label: impl Into<String>,
        bytes: u64,
        kind: TransferKind,
    ) -> OpId {
        self.copy(sim, stream, label, bytes, kind, self.dma_d2h, CLASS_D2H)
    }

    fn copy(
        &self,
        sim: &mut Sim,
        stream: &mut Stream,
        label: impl Into<String>,
        bytes: u64,
        kind: TransferKind,
        engine: ResourceId,
        class: u32,
    ) -> OpId {
        // The DMA resource rate is the pinned bandwidth; pageable copies
        // are modeled as proportionally more work on the same engine.
        let slowdown = match kind {
            TransferKind::Pinned => 1.0,
            TransferKind::Pageable => self.spec.pcie_bandwidth / self.spec.pcie_pageable_bandwidth,
        };
        let op = Op::new(engine, bytes as f64 * slowdown)
            .label(label)
            .class(class)
            .after_all(stream.take_deps());
        let id = sim.op(op);
        stream.last = Some(id);
        id
    }
}

/// An ordered queue of GPU operations (CUDA stream semantics).
#[derive(Clone, Debug, Default)]
pub struct Stream {
    last: Option<OpId>,
    waits: Vec<OpId>,
}

impl Stream {
    /// Record an event capturing everything issued to this stream so far.
    /// Waiting on the event (from any stream) orders after that work.
    pub fn record_event(&self) -> GpuEvent {
        GpuEvent { after: self.last }
    }

    /// Make the *next* operation issued to this stream wait for `event`.
    pub fn wait_event(&mut self, event: &GpuEvent) {
        if let Some(op) = event.after {
            self.waits.push(op);
        }
    }

    /// Make the next operation wait for an arbitrary sim op (used to tie
    /// GPU work to host-side phases like CPU partitioning).
    pub fn wait_op(&mut self, op: OpId) {
        self.waits.push(op);
    }

    /// The op id of the last operation issued to this stream, if any.
    /// Depending on it is equivalent to `cudaStreamSynchronize`.
    pub fn last_op(&self) -> Option<OpId> {
        self.last
    }

    fn take_deps(&mut self) -> Vec<OpId> {
        let mut deps = std::mem::take(&mut self.waits);
        if let Some(last) = self.last {
            deps.push(last);
        }
        deps
    }
}

/// A recorded point in a stream's history (CUDA event).
#[derive(Clone, Copy, Debug)]
pub struct GpuEvent {
    after: Option<OpId>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu(sim: &mut Sim) -> Gpu {
        Gpu::new(sim, DeviceSpec::gtx1080())
    }

    #[test]
    fn same_stream_serializes() {
        let mut sim = Sim::new();
        let g = gpu(&mut sim);
        let mut s = g.stream();
        let a = g.copy_h2d(&mut sim, &mut s, "copy", 12_000_000_000, TransferKind::Pinned);
        let k = g.kernel(&mut sim, &mut s, "join", &KernelCost::coalesced(320_000_000));
        let sched = sim.run();
        // 12 GB at 12 GB/s = 1 s; kernel starts after.
        assert_eq!(sched.finish(a).as_secs_f64(), 1.0);
        assert_eq!(sched.start(k), sched.finish(a));
    }

    #[test]
    fn different_streams_overlap() {
        let mut sim = Sim::new();
        let g = gpu(&mut sim);
        let mut copy_stream = g.stream();
        let mut exec_stream = g.stream();
        let c =
            g.copy_h2d(&mut sim, &mut copy_stream, "copy", 12_000_000_000, TransferKind::Pinned);
        let k =
            g.kernel(&mut sim, &mut exec_stream, "join", &KernelCost::coalesced(320_000_000_000));
        let sched = sim.run();
        // Both start at t≈0: the copy does not wait for the kernel.
        assert_eq!(sched.start(c), SimTime::ZERO);
        assert_eq!(sched.start(k), SimTime::ZERO);
        let _ = (c, k);
    }

    #[test]
    fn events_order_across_streams() {
        let mut sim = Sim::new();
        let g = gpu(&mut sim);
        let mut copy_stream = g.stream();
        let mut exec_stream = g.stream();
        let c = g.copy_h2d(&mut sim, &mut copy_stream, "copy", 1_200_000_000, TransferKind::Pinned);
        let ev = copy_stream.record_event();
        exec_stream.wait_event(&ev);
        let k = g.kernel(&mut sim, &mut exec_stream, "join", &KernelCost::coalesced(1));
        let sched = sim.run();
        assert!(sched.start(k) >= sched.finish(c));
    }

    #[test]
    fn h2d_and_d2h_use_separate_engines() {
        let mut sim = Sim::new();
        let g = gpu(&mut sim);
        let mut up = g.stream();
        let mut down = g.stream();
        let a = g.copy_h2d(&mut sim, &mut up, "in", 12_000_000_000, TransferKind::Pinned);
        let b = g.copy_d2h(&mut sim, &mut down, "out", 12_000_000_000, TransferKind::Pinned);
        let sched = sim.run();
        // Full-duplex: both 1 s transfers complete at t = 1 s.
        assert_eq!(sched.finish(a).as_secs_f64(), 1.0);
        assert_eq!(sched.finish(b).as_secs_f64(), 1.0);
    }

    #[test]
    fn two_h2d_copies_share_one_engine() {
        let mut sim = Sim::new();
        let g = gpu(&mut sim);
        let mut s1 = g.stream();
        let mut s2 = g.stream();
        let a = g.copy_h2d(&mut sim, &mut s1, "a", 12_000_000_000, TransferKind::Pinned);
        let b = g.copy_h2d(&mut sim, &mut s2, "b", 12_000_000_000, TransferKind::Pinned);
        let sched = sim.run();
        // Serialized on the single H2D engine: 1 s then 1 s.
        assert_eq!(sched.finish(a).as_secs_f64(), 1.0);
        assert_eq!(sched.finish(b).as_secs_f64(), 2.0);
    }

    #[test]
    fn pageable_is_slower_than_pinned() {
        let mut sim = Sim::new();
        let g = gpu(&mut sim);
        let mut s = g.stream();
        let a = g.copy_h2d(&mut sim, &mut s, "pageable", 6_000_000_000, TransferKind::Pageable);
        let sched = sim.run();
        // 6 GB at 6 GB/s pageable = 1 s.
        assert_eq!(sched.finish(a).as_secs_f64(), 1.0);
    }

    #[test]
    fn kernel_includes_launch_overhead() {
        let mut sim = Sim::new();
        let g = gpu(&mut sim);
        let mut s = g.stream();
        let k = g.kernel(&mut sim, &mut s, "empty", &KernelCost::ZERO);
        let sched = sim.run();
        assert_eq!(sched.finish(k).as_secs_f64(), g.spec.launch_overhead_s);
    }

    #[test]
    fn wait_op_ties_to_host_work() {
        let mut sim = Sim::new();
        let cpu = sim.fifo_resource("cpu", 1.0, 1);
        let part = sim.op(Op::new(cpu, 2.0).label("cpu-partition"));
        let g = gpu(&mut sim);
        let mut s = g.stream();
        s.wait_op(part);
        let c = g.copy_h2d(&mut sim, &mut s, "copy", 1, TransferKind::Pinned);
        let sched = sim.run();
        assert!(sched.start(c) >= sched.finish(part));
    }
}
