//! Unified Memory (on-demand page migration) model.
//!
//! CUDA Unified Memory moves whole pages between host and device on fault.
//! For streaming scans it approaches PCIe bandwidth (each page is fetched
//! once and fully used); for the join's partitioning scatter it thrashes —
//! only a small part of each migrated page is touched before it is evicted,
//! so the effective useful bandwidth collapses. The pager here is a real
//! LRU over a bounded device-page frame pool; the experiments drive it with
//! the page-access traces of the actual algorithms.

use std::collections::HashMap;

/// Outcome of a single page access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PageAccess {
    /// Page was device-resident.
    Hit,
    /// Page was migrated in (and possibly another evicted).
    Fault {
        /// Whether the evicted page was dirty (costs a write-back).
        evicted_dirty: bool,
    },
}

/// An LRU page pool modeling Unified Memory oversubscription.
#[derive(Debug)]
pub struct UnifiedMemory {
    page_bytes: u64,
    capacity_pages: usize,
    // Intrusive doubly-linked LRU over a slab; O(1) per access.
    map: HashMap<u64, usize>,
    nodes: Vec<Node>,
    free: Vec<usize>,
    head: usize, // most recent
    tail: usize, // least recent
    faults: u64,
    hits: u64,
    evictions_clean: u64,
    evictions_dirty: u64,
}

#[derive(Clone, Copy, Debug)]
struct Node {
    page: u64,
    dirty: bool,
    prev: usize,
    next: usize,
}

const NIL: usize = usize::MAX;

impl UnifiedMemory {
    /// A pager with `device_bytes` of frame capacity in `page_bytes` pages.
    pub fn new(page_bytes: u64, device_bytes: u64) -> Self {
        assert!(page_bytes > 0, "page size must be positive");
        let capacity_pages = (device_bytes / page_bytes) as usize;
        assert!(capacity_pages > 0, "device must hold at least one page");
        UnifiedMemory {
            page_bytes,
            capacity_pages,
            map: HashMap::new(),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            faults: 0,
            hits: 0,
            evictions_clean: 0,
            evictions_dirty: 0,
        }
    }

    /// Bytes per migrated page.
    pub fn page_bytes(&self) -> u64 {
        self.page_bytes
    }

    /// Device capacity in pages.
    pub fn capacity_pages(&self) -> usize {
        self.capacity_pages
    }

    /// Pages currently device-resident.
    pub fn resident_pages(&self) -> usize {
        self.map.len()
    }

    /// Access one page by number; `write` marks it dirty.
    pub fn access_page(&mut self, page: u64, write: bool) -> PageAccess {
        if let Some(&idx) = self.map.get(&page) {
            self.hits += 1;
            self.nodes[idx].dirty |= write;
            self.move_to_head(idx);
            return PageAccess::Hit;
        }
        self.faults += 1;
        let mut evicted_dirty = false;
        if self.map.len() == self.capacity_pages {
            evicted_dirty = self.evict_lru();
        }
        let idx = self.alloc_node(Node { page, dirty: write, prev: NIL, next: NIL });
        self.map.insert(page, idx);
        self.push_head(idx);
        PageAccess::Fault { evicted_dirty }
    }

    /// Access a byte range: touches each covered page in order.
    pub fn access_range(&mut self, start_byte: u64, len_bytes: u64, write: bool) {
        if len_bytes == 0 {
            return;
        }
        let first = start_byte / self.page_bytes;
        let last = (start_byte + len_bytes - 1) / self.page_bytes;
        for p in first..=last {
            self.access_page(p, write);
        }
    }

    /// Pages migrated host→device so far.
    pub fn faults(&self) -> u64 {
        self.faults
    }

    /// Accesses served from device-resident pages.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Bytes moved host→device by faults.
    pub fn bytes_migrated_in(&self) -> u64 {
        self.faults * self.page_bytes
    }

    /// Bytes moved device→host by dirty evictions.
    pub fn bytes_written_back(&self) -> u64 {
        self.evictions_dirty * self.page_bytes
    }

    /// Total PCIe traffic caused by the pager, both directions.
    pub fn total_bus_bytes(&self) -> u64 {
        self.bytes_migrated_in() + self.bytes_written_back()
    }

    fn evict_lru(&mut self) -> bool {
        let idx = self.tail;
        debug_assert_ne!(idx, NIL, "evict from empty pool");
        let node = self.nodes[idx];
        self.unlink(idx);
        self.map.remove(&node.page);
        self.free.push(idx);
        if node.dirty {
            self.evictions_dirty += 1;
        } else {
            self.evictions_clean += 1;
        }
        node.dirty
    }

    fn alloc_node(&mut self, node: Node) -> usize {
        if let Some(idx) = self.free.pop() {
            self.nodes[idx] = node;
            idx
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        }
    }

    fn push_head(&mut self, idx: usize) {
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn unlink(&mut self, idx: usize) {
        let Node { prev, next, .. } = self.nodes[idx];
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn move_to_head(&mut self, idx: usize) {
        if self.head == idx {
            return;
        }
        self.unlink(idx);
        self.push_head(idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_scan_faults_once_per_page() {
        let mut um = UnifiedMemory::new(64 * 1024, 1 << 20); // 16 frames
        um.access_range(0, 8 * 64 * 1024, false); // 8 pages
        assert_eq!(um.faults(), 8);
        assert_eq!(um.hits(), 0);
        // Re-scan is all hits: pages fit.
        um.access_range(0, 8 * 64 * 1024, false);
        assert_eq!(um.faults(), 8);
        assert_eq!(um.hits(), 8);
    }

    #[test]
    fn oversubscribed_scan_thrashes() {
        let mut um = UnifiedMemory::new(4096, 4 * 4096); // 4 frames
                                                         // Scan 8 pages twice: LRU keeps none of the needed pages → all faults.
        for _ in 0..2 {
            for p in 0..8 {
                um.access_page(p, false);
            }
        }
        assert_eq!(um.faults(), 16);
        assert_eq!(um.hits(), 0);
    }

    #[test]
    fn lru_keeps_hot_page() {
        let mut um = UnifiedMemory::new(4096, 2 * 4096); // 2 frames
        um.access_page(0, false);
        um.access_page(1, false);
        um.access_page(0, false); // refresh 0
        um.access_page(2, false); // evicts 1, not 0
        assert_eq!(um.access_page(0, false), PageAccess::Hit);
        assert!(matches!(um.access_page(1, false), PageAccess::Fault { .. }));
    }

    #[test]
    fn dirty_eviction_counts_write_back() {
        let mut um = UnifiedMemory::new(4096, 4096); // 1 frame
        um.access_page(0, true);
        let out = um.access_page(1, false);
        assert_eq!(out, PageAccess::Fault { evicted_dirty: true });
        assert_eq!(um.bytes_written_back(), 4096);
        assert_eq!(um.total_bus_bytes(), 2 * 4096 + 4096);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut um = UnifiedMemory::new(4096, 4096);
        um.access_page(0, false);
        um.access_page(0, true); // dirty via hit
        let out = um.access_page(1, false);
        assert_eq!(out, PageAccess::Fault { evicted_dirty: true });
    }

    #[test]
    fn range_spanning_partial_pages() {
        let mut um = UnifiedMemory::new(100, 1000);
        um.access_range(50, 100, false); // bytes 50..150 → pages 0 and 1
        assert_eq!(um.faults(), 2);
        um.access_range(0, 0, false); // empty range: no touch
        assert_eq!(um.faults(), 2);
    }

    #[test]
    fn random_scatter_migrates_full_pages_for_tiny_writes() {
        // The partitioning scatter under UM: an 8-byte write per page still
        // moves the whole 64 KB page both ways — the Fig. 22 collapse.
        let mut um = UnifiedMemory::new(64 * 1024, 64 * 1024); // 1 frame
        for p in 0..100 {
            um.access_page(p, true);
        }
        assert_eq!(um.faults(), 100);
        assert_eq!(um.bytes_written_back(), 99 * 64 * 1024);
        let useful = 100 * 8u64;
        assert!(um.total_bus_bytes() > 1000 * useful);
    }

    #[test]
    #[should_panic(expected = "at least one page")]
    fn zero_capacity_rejected() {
        let _ = UnifiedMemory::new(4096, 100);
    }

    #[test]
    fn resident_count_is_bounded() {
        let mut um = UnifiedMemory::new(10, 30);
        for p in 0..50 {
            um.access_page(p, false);
            assert!(um.resident_pages() <= um.capacity_pages());
        }
        assert_eq!(um.resident_pages(), 3);
    }
}
