//! Physical device parameters.

/// The physical parameters of a modeled GPU.
///
/// Only quantities that the paper's results actually depend on are modeled.
/// Rates are in bytes/second or operations/second; capacities in bytes.
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceSpec {
    /// Marketing name, for reports.
    pub name: &'static str,
    /// Number of streaming multiprocessors.
    pub sms: u32,
    /// CUDA cores per SM.
    pub cores_per_sm: u32,
    /// Core clock in Hz (boost clock; kernels here are memory-bound, so the
    /// precise value matters little).
    pub clock_hz: f64,
    /// Device (global) memory capacity in bytes.
    pub device_mem_bytes: u64,
    /// Peak device-memory bandwidth, bytes/second.
    pub mem_bandwidth: f64,
    /// Fraction of peak bandwidth achievable by random sector-granular
    /// access (row activation and partial-sector waste).
    pub random_access_efficiency: f64,
    /// L2 cache size, bytes (shared by all SMs).
    pub l2_bytes: u64,
    /// Effective L2 bandwidth for sector-granular access, bytes/second.
    pub l2_bandwidth: f64,
    /// Shared memory available to one thread block, bytes.
    pub shared_mem_per_block: u64,
    /// Aggregate shared-memory bandwidth across the device, bytes/second.
    /// On Pascal-class parts this is several TB/s — an order of magnitude
    /// above device memory, which is why the paper pins hash tables there.
    pub shared_mem_bandwidth: f64,
    /// Maximum threads per block.
    pub max_threads_per_block: u32,
    /// Aggregate throughput of shared-memory atomics, ops/second.
    pub shared_atomic_throughput: f64,
    /// Aggregate throughput of device-memory atomics, ops/second.
    pub global_atomic_throughput: f64,
    /// Effective host→device / device→host PCIe bandwidth for pinned
    /// memory, bytes/second (per direction; the engines are independent).
    pub pcie_bandwidth: f64,
    /// Effective PCIe bandwidth for pageable memory (extra host-side
    /// staging copy halves it, roughly).
    pub pcie_pageable_bandwidth: f64,
    /// Fixed kernel-launch overhead, seconds.
    pub launch_overhead_s: f64,
    /// Unified-memory page size, bytes.
    pub um_page_bytes: u64,
}

impl DeviceSpec {
    /// The paper's evaluation GPU: NVIDIA GTX 1080 (Pascal), 8 GB GDDR5X,
    /// on PCIe 3.0 x16 with CUDA 9.
    pub fn gtx1080() -> Self {
        DeviceSpec {
            name: "GTX 1080",
            sms: 20,
            cores_per_sm: 128,
            clock_hz: 1.607e9,
            device_mem_bytes: 8 * (1 << 30),
            mem_bandwidth: 320.0e9,
            random_access_efficiency: 0.45,
            l2_bytes: 2 * 1024 * 1024,
            l2_bandwidth: 1.2e12,
            shared_mem_per_block: 48 * 1024,
            shared_mem_bandwidth: 4.0e12,
            max_threads_per_block: 1024,
            shared_atomic_throughput: 200.0e9,
            global_atomic_throughput: 2.5e9,
            pcie_bandwidth: 12.0e9,
            pcie_pageable_bandwidth: 6.0e9,
            launch_overhead_s: 5.0e-6,
            um_page_bytes: 64 * 1024,
        }
    }

    /// A Tesla V100 (Volta): 80 SMs, HBM2 at 900 GB/s, 16 GB. Used by the
    /// discussion in the paper's introduction; offered here so downstream
    /// users can explore a newer part.
    pub fn v100() -> Self {
        DeviceSpec {
            name: "Tesla V100",
            sms: 80,
            cores_per_sm: 64,
            clock_hz: 1.53e9,
            device_mem_bytes: 16 * (1 << 30),
            mem_bandwidth: 900.0e9,
            random_access_efficiency: 0.5,
            l2_bytes: 6 * 1024 * 1024,
            l2_bandwidth: 2.5e12,
            shared_mem_per_block: 96 * 1024,
            shared_mem_bandwidth: 13.0e12,
            max_threads_per_block: 1024,
            shared_atomic_throughput: 600.0e9,
            global_atomic_throughput: 6.0e9,
            pcie_bandwidth: 12.0e9,
            pcie_pageable_bandwidth: 6.0e9,
            launch_overhead_s: 5.0e-6,
            um_page_bytes: 64 * 1024,
        }
    }

    /// Scale device-memory capacity down by `k` for reduced-scale
    /// experiments (bandwidths and per-block shared memory stay physical;
    /// see DESIGN.md §5). `k = 1` returns the spec unchanged.
    ///
    /// Fixed per-operation overheads (kernel launch) scale down with the
    /// capacity: when every buffer shrinks by `k`, phase durations shrink
    /// by `k` too, and overheads must follow or they would dominate the
    /// scaled pipeline in a way they do not dominate the real one.
    pub fn scaled_capacity(mut self, k: u64) -> Self {
        assert!(k >= 1, "scale factor must be >= 1");
        self.device_mem_bytes /= k;
        self.launch_overhead_s /= k as f64;
        self
    }

    /// Peak integer-operation throughput of the device, ops/second.
    pub fn instruction_throughput(&self) -> f64 {
        f64::from(self.sms) * f64::from(self.cores_per_sm) * self.clock_hz
    }

    /// Effective bandwidth of random sector-granularity access.
    pub fn random_access_bandwidth(&self) -> f64 {
        self.mem_bandwidth * self.random_access_efficiency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gtx1080_matches_paper_hardware() {
        let s = DeviceSpec::gtx1080();
        assert_eq!(s.device_mem_bytes, 8 << 30);
        assert_eq!(s.sms, 20);
        assert_eq!(s.shared_mem_per_block, 48 * 1024);
        // The paper quotes 15.8 GB/s theoretical PCIe 3.0 x16; effective
        // pinned bandwidth must be below that.
        assert!(s.pcie_bandwidth < 15.8e9);
    }

    #[test]
    fn v100_is_bigger_in_every_dimension_that_matters() {
        let g = DeviceSpec::gtx1080();
        let v = DeviceSpec::v100();
        assert!(v.mem_bandwidth > g.mem_bandwidth);
        assert!(v.device_mem_bytes > g.device_mem_bytes);
        assert!(v.instruction_throughput() > g.instruction_throughput());
    }

    #[test]
    fn scaling_shrinks_only_capacity() {
        let s = DeviceSpec::gtx1080().scaled_capacity(8);
        assert_eq!(s.device_mem_bytes, 1 << 30);
        assert_eq!(s.shared_mem_per_block, 48 * 1024);
        assert_eq!(s.mem_bandwidth, 320.0e9);
        assert!((s.launch_overhead_s - 5.0e-6 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn derived_rates() {
        let s = DeviceSpec::gtx1080();
        assert!((s.instruction_throughput() - 20.0 * 128.0 * 1.607e9).abs() < 1.0);
        assert!(s.random_access_bandwidth() < s.mem_bandwidth);
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn zero_scale_rejected() {
        let _ = DeviceSpec::gtx1080().scaled_capacity(0);
    }
}
